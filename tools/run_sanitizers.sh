#!/usr/bin/env bash
# Builds and runs the test suite under ThreadSanitizer and AddressSanitizer
# (separate build trees, so they don't disturb the regular ./build).
#
#   tools/run_sanitizers.sh            # all three sanitizers, full suite
#   tools/run_sanitizers.sh thread     # TSan only
#   tools/run_sanitizers.sh address -R 'thread_pool|parallel|sharded'
#   tools/run_sanitizers.sh undefined  # UBSan only
#   tools/run_sanitizers.sh faults     # fault-injection suites under TSan
#   tools/run_sanitizers.sh obs        # metrics/trace concurrency under TSan
#   tools/run_sanitizers.sh batch      # batched write/delete suites under TSan
#   tools/run_sanitizers.sh kernels    # SIMD kernel + skip-index suites
#   tools/run_sanitizers.sh wal        # WAL group commit (TSan) + replay (ASan)
#   tools/run_sanitizers.sh snapshots  # epoch/snapshot concurrency (TSan+ASan)
#   tools/run_sanitizers.sh telemetry  # flight recorder seqlock + exporters
#   tools/run_sanitizers.sh resolve    # candidate resolution: intersection
#                                      # kernels, NIX/B-tree, hot tier
#   tools/run_sanitizers.sh joins      # set-containment join executor
#
# Extra arguments after the sanitizer name are passed to ctest, which is
# how you scope a TSan run to the concurrency tests (they are the ones
# that exercise cross-thread interleavings; the rest are single-threaded).
#
# The `faults` mode runs the fault-injection and crash-recovery suites
# (DESIGN.md §9) under ThreadSanitizer: the failpoint registry and the
# FaultInjector are shared mutable state hit from query worker threads, so
# their locking is exactly what TSan should vet.

set -euo pipefail

cd "$(dirname "$0")/.."

run_one() {
  local sanitizer="$1"
  shift
  local build_dir="build-${sanitizer}san"
  echo "=== ${sanitizer} sanitizer: configuring ${build_dir} ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSIGSET_SANITIZE="${sanitizer}" > /dev/null
  cmake --build "${build_dir}" -j "$(nproc)"
  echo "=== ${sanitizer} sanitizer: running tests ==="
  (cd "${build_dir}" && ctest --output-on-failure "$@")
}

case "${1:-all}" in
  thread)
    shift
    run_one thread "$@"
    ;;
  address)
    shift
    run_one address "$@"
    ;;
  undefined)
    shift
    run_one undefined "$@"
    ;;
  obs)
    # The observability hot paths are relaxed atomics read by concurrent
    # snapshots (MetricsRegistry, IoStats deltas, traced parallel queries);
    # TSan vets exactly those interleavings.
    shift
    run_one thread -R \
      'metrics_test|io_stats_delta|query_trace|parallel_executor' \
      "$@"
    ;;
  faults)
    shift
    run_one thread -R \
      'failpoint|fault_injection|crash_recovery|model_vs_measured|sharded_buffer_pool' \
      "$@"
    ;;
  batch)
    # The grouped write path (WriteBatch / ApplyBatch / Compact) mutates
    # every facility plus the store under one SynchronizedSetIndex lock and
    # is queried from 4-thread pools mid-churn; TSan vets the batch-vs-query
    # interleavings, ASan the slot-reuse and compaction rewrites.
    shift
    run_one thread -R 'write_batch|delete_query|synchronized_set_index' "$@"
    run_one address -R 'write_batch|delete_query|oid_file|ssf|bssf' "$@"
    ;;
  kernels)
    # The dispatched kernels do unaligned 256-bit loads right up to buffer
    # tails (ASan's bread and butter), and the skip-index summaries are
    # consulted from 4-thread query pools while the differential fuzz
    # churns the store (TSan's).  Both runs repeat with the AVX2 path
    # forced off so the portable loops get the same scrutiny.
    shift
    run_one address -R 'kernels_test|bitvector|query_differential_fuzz' "$@"
    SIGSET_DISABLE_AVX2=1 run_one address \
      -R 'kernels_test|bitvector|query_differential_fuzz' "$@"
    run_one thread -R 'kernels_test|query_differential_fuzz|model_vs_measured' \
      "$@"
    SIGSET_DISABLE_AVX2=1 run_one thread \
      -R 'kernels_test|query_differential_fuzz|model_vs_measured' "$@"
    ;;
  wal)
    # Group commit is a leader/follower protocol over a mutex and two
    # condvars with concurrent committers — TSan vets the handoff (the
    # crash-fuzz suite also drives 4-thread replicas through it).  Replay
    # parses raw frame bytes from torn, bit-flipped, and truncated logs —
    # ASan vets the scanner's bounds.
    shift
    run_one thread -R 'wal_log|crash_recovery|query_differential_fuzz' "$@"
    run_one address -R 'wal_log|crash_recovery|query_differential_fuzz' "$@"
    ;;
  snapshots)
    # The MVCC-lite read path is lock-free by design: writers push CoW page
    # versions and publish epochs while pinned readers walk the version
    # chains with acquire loads, and the reclaimer concurrently frees
    # superseded nodes.  TSan vets the publish/pin/reclaim interleavings
    # (the concurrent differential fuzz drives 10 reader threads through
    # them); ASan vets the version-chain allocation and reclamation.
    shift
    run_one thread -R \
      'epoch_test|query_differential_fuzz|synchronized_set_index' "$@"
    run_one address -R \
      'epoch_test|query_differential_fuzz|synchronized_set_index' "$@"
    ;;
  resolve)
    # The candidate-resolution path end to end: intersect_u64 does
    # unaligned 256-bit loads and a mask-indexed left-pack store guarded
    # against the last 3 slots of an exactly-min(na,nb) buffer (ASan's
    # bread and butter), the nested index merges posting lists and the ∅
    # roster, and the hot tier's pinned map is read from 4-thread query
    # pools while write paths refresh pinned copies (TSan's).  Both
    # sanitizers repeat with AVX2 forced off so the portable merge and
    # galloping paths get the same scrutiny, and the dispatched bench gate
    # asserts the >= 2x claim on 64k posting lists where the hardware can.
    shift
    run_one address -R \
      'kernels_test|btree|nested_index|query_differential_fuzz' "$@"
    SIGSET_DISABLE_AVX2=1 run_one address -R \
      'kernels_test|btree|nested_index|query_differential_fuzz' "$@"
    run_one thread -R \
      'kernels_test|nested_index|query_differential_fuzz' "$@"
    SIGSET_DISABLE_AVX2=1 run_one thread -R \
      'kernels_test|nested_index|query_differential_fuzz' "$@"
    # Timing under a sanitizer is meaningless, so the speedup gate runs the
    # regular build's bench — when it exists and the host dispatches avx2
    # (the portable merge has no 2x bar).
    if [[ -d build ]] && ./build-addresssan/bench/bench_kernels 2>/dev/null \
        | grep -q "dispatched to: avx2"; then
      cmake --build build --target bench_kernels -j "$(nproc)"
      ./build/bench/bench_kernels --min-intersect-speedup 2
    fi
    ;;
  joins)
    # The join executor partitions S by signature prefix, then probe
    # workers verify candidates with the unaligned-load intersection
    # kernels and merge per-worker pair vectors in worker order — ASan
    # vets the kernel tails and partition buffers, TSan the 4-thread
    # probe pools racing the differential fuzz's churn (both repeated
    # with AVX2 forced off so the portable kernels get the same
    # scrutiny).  model_vs_measured rides along so the join cost rows
    # are exercised under both sanitizers too.
    shift
    run_one address -R 'join_test|join_differential_fuzz|model_vs_measured' \
      "$@"
    SIGSET_DISABLE_AVX2=1 run_one address \
      -R 'join_test|join_differential_fuzz|model_vs_measured' "$@"
    run_one thread -R 'join_test|join_differential_fuzz' "$@"
    SIGSET_DISABLE_AVX2=1 run_one thread \
      -R 'join_test|join_differential_fuzz' "$@"
    ;;
  telemetry)
    # The flight recorder is a seqlock ring: writers claim slots with a
    # fetch_add and publish via per-slot sequence counters while readers
    # retry torn snapshots — TSan vets exactly that protocol (the
    # flight_recorder stress runs 4 writers against 2 dumping readers).
    # The telemetry integration suite then drives every wrapped entry
    # point, and ASan sweeps the exporters' string assembly.
    shift
    run_one thread -R \
      'flight_recorder|telemetry_test|metrics_test|query_trace' "$@"
    run_one address -R \
      'flight_recorder|telemetry_test|exporters_test|metrics_test' "$@"
    ;;
  all)
    run_one thread
    run_one address
    run_one undefined
    ;;
  *)
    echo "usage: $0 [thread|address|undefined|all|faults|obs|batch|kernels|wal|snapshots|telemetry|resolve|joins]" \
      "[ctest args...]" >&2
    exit 1
    ;;
esac

echo "sanitizer runs passed"
