#include "query/advisor.h"

#include <gtest/gtest.h>

#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"

namespace sigsetdb {
namespace {

DatabaseParams Paper() { return DatabaseParams{}; }

TEST(AdvisorTest, RanksAscendingByCost) {
  auto choices = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 3,
                                   QueryKind::kSuperset, true);
  ASSERT_TRUE(choices.ok());
  ASSERT_GE(choices->size(), 3u);
  for (size_t i = 1; i < choices->size(); ++i) {
    EXPECT_LE((*choices)[i - 1].cost_pages, (*choices)[i].cost_pages);
  }
}

TEST(AdvisorTest, NixWinsSingleElementSuperset) {
  // Paper §6: "for Dq = 1, NIX is more efficient than BSSF in all cases."
  auto best = BestAccessPath(Paper(), {500, 2}, NixParams{}, 10, 1,
                             QueryKind::kSuperset, true);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->facility, "nix");
}

TEST(AdvisorTest, BssfWinsSubsetQueries) {
  // Paper §6: "For the query T ⊆ Q, BSSF ... overwhelms NIX."
  for (int64_t dq : {20, 50, 100, 300}) {
    auto best = BestAccessPath(Paper(), {500, 2}, NixParams{}, 10, dq,
                               QueryKind::kSubset, true);
    ASSERT_TRUE(best.ok());
    EXPECT_EQ(best->facility, "bssf") << "dq=" << dq;
  }
}

TEST(AdvisorTest, SsfNeverWinsRetrieval) {
  // SSF's full scan dominates; it should never be the best retrieval plan
  // at the paper's operating points.
  for (int64_t dq : {1, 2, 5, 10}) {
    auto best = BestAccessPath(Paper(), {250, 2}, NixParams{}, 10, dq,
                               QueryKind::kSuperset, true);
    ASSERT_TRUE(best.ok());
    EXPECT_NE(best->facility, "ssf") << "dq=" << dq;
  }
}

TEST(AdvisorTest, SmartStrategiesOnlyWhenRequested) {
  auto plain = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 5,
                                 QueryKind::kSuperset, false);
  ASSERT_TRUE(plain.ok());
  for (const auto& c : *plain) EXPECT_EQ(c.strategy, "plain");
  auto smart = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 5,
                                 QueryKind::kSuperset, true);
  ASSERT_TRUE(smart.ok());
  bool has_smart = false;
  for (const auto& c : *smart) {
    if (c.strategy.rfind("smart", 0) == 0) has_smart = true;
  }
  EXPECT_TRUE(has_smart);
}

TEST(AdvisorTest, CostsMatchModelFunctions) {
  DatabaseParams db = Paper();
  SignatureParams sig{500, 2};
  NixParams nix;
  auto choices =
      AdviseAccessPaths(db, sig, nix, 10, 4, QueryKind::kSuperset, false);
  ASSERT_TRUE(choices.ok());
  for (const auto& c : *choices) {
    if (c.facility == "ssf") {
      EXPECT_DOUBLE_EQ(c.cost_pages,
                       SsfRetrievalCost(db, sig, 10, 4, QueryKind::kSuperset));
    } else if (c.facility == "bssf") {
      EXPECT_DOUBLE_EQ(c.cost_pages, BssfRetrievalSuperset(db, sig, 10, 4));
    } else {
      EXPECT_DOUBLE_EQ(c.cost_pages, NixRetrievalSuperset(db, nix, 10, 4));
    }
  }
}

TEST(AdvisorTest, RejectsEmptyQueries) {
  EXPECT_EQ(AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 0,
                              QueryKind::kSuperset, true)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(AdvisorTest, ExtensionOperatorsPriced) {
  // Equality: NIX's Dq intersections beat BSSF's all-F slice scan at the
  // paper's parameters; SSF's full scan never wins.
  auto eq = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 10,
                              QueryKind::kEquals, true);
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ((*eq)[0].facility, "nix");
  // Overlap: the NIX union is exact, but fetching every overlapping object
  // (A ≈ N·Dq·Dt/V) dominates; BSSF pays the same fetches plus m·Dq slice
  // reads, so NIX should rank first among the three.
  auto ov = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 5,
                              QueryKind::kOverlaps, true);
  ASSERT_TRUE(ov.ok());
  EXPECT_EQ((*ov)[0].facility, "nix");
  for (const auto& c : *ov) EXPECT_GT(c.cost_pages, 0.0);
}

TEST(AdvisorTest, ProperVariantsPriceLikeNonStrict) {
  auto strict = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 3,
                                  QueryKind::kProperSuperset, true);
  auto plain = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 3,
                                 QueryKind::kSuperset, true);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(strict->size(), plain->size());
  for (size_t i = 0; i < strict->size(); ++i) {
    EXPECT_DOUBLE_EQ((*strict)[i].cost_pages, (*plain)[i].cost_pages);
  }
}

TEST(AdvisorTest, SmartBssfCompetitiveForMultiElementSuperset) {
  // The paper's headline conclusion, as the advisor sees it: with smart
  // strategies enabled, BSSF is within a whisker of the winner for
  // Dq >= 2 superset queries.
  for (int64_t dq = 2; dq <= 10; ++dq) {
    auto choices = AdviseAccessPaths(Paper(), {250, 2}, NixParams{}, 10, dq,
                                     QueryKind::kSuperset, true);
    ASSERT_TRUE(choices.ok());
    double best = (*choices)[0].cost_pages;
    double bssf_best = 1e18;
    for (const auto& c : *choices) {
      if (c.facility == "bssf") bssf_best = std::min(bssf_best, c.cost_pages);
    }
    EXPECT_LE(bssf_best, best * 1.1) << "dq=" << dq;
  }
}

}  // namespace
}  // namespace sigsetdb
