#include "query/advisor.h"

#include <gtest/gtest.h>

#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"

namespace sigsetdb {
namespace {

DatabaseParams Paper() { return DatabaseParams{}; }

TEST(AdvisorTest, RanksAscendingByCost) {
  auto choices = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 3,
                                   QueryKind::kSuperset, true);
  ASSERT_TRUE(choices.ok());
  ASSERT_GE(choices->size(), 3u);
  for (size_t i = 1; i < choices->size(); ++i) {
    EXPECT_LE((*choices)[i - 1].cost_pages, (*choices)[i].cost_pages);
  }
}

TEST(AdvisorTest, NixWinsSingleElementSuperset) {
  // Paper §6: "for Dq = 1, NIX is more efficient than BSSF in all cases."
  auto best = BestAccessPath(Paper(), {500, 2}, NixParams{}, 10, 1,
                             QueryKind::kSuperset, true);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->facility, "nix");
}

TEST(AdvisorTest, BssfWinsSubsetQueries) {
  // Paper §6: "For the query T ⊆ Q, BSSF ... overwhelms NIX."
  for (int64_t dq : {20, 50, 100, 300}) {
    auto best = BestAccessPath(Paper(), {500, 2}, NixParams{}, 10, dq,
                               QueryKind::kSubset, true);
    ASSERT_TRUE(best.ok());
    EXPECT_EQ(best->facility, "bssf") << "dq=" << dq;
  }
}

TEST(AdvisorTest, SsfNeverWinsRetrieval) {
  // SSF's full scan dominates; it should never be the best retrieval plan
  // at the paper's operating points.
  for (int64_t dq : {1, 2, 5, 10}) {
    auto best = BestAccessPath(Paper(), {250, 2}, NixParams{}, 10, dq,
                               QueryKind::kSuperset, true);
    ASSERT_TRUE(best.ok());
    EXPECT_NE(best->facility, "ssf") << "dq=" << dq;
  }
}

TEST(AdvisorTest, SmartStrategiesOnlyWhenRequested) {
  auto plain = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 5,
                                 QueryKind::kSuperset, false);
  ASSERT_TRUE(plain.ok());
  for (const auto& c : *plain) EXPECT_EQ(c.strategy, "plain");
  auto smart = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 5,
                                 QueryKind::kSuperset, true);
  ASSERT_TRUE(smart.ok());
  bool has_smart = false;
  for (const auto& c : *smart) {
    if (c.strategy.rfind("smart", 0) == 0) has_smart = true;
  }
  EXPECT_TRUE(has_smart);
}

TEST(AdvisorTest, CostsMatchModelFunctions) {
  DatabaseParams db = Paper();
  SignatureParams sig{500, 2};
  NixParams nix;
  auto choices =
      AdviseAccessPaths(db, sig, nix, 10, 4, QueryKind::kSuperset, false);
  ASSERT_TRUE(choices.ok());
  for (const auto& c : *choices) {
    if (c.facility == "ssf") {
      EXPECT_DOUBLE_EQ(c.cost_pages,
                       SsfRetrievalCost(db, sig, 10, 4, QueryKind::kSuperset));
    } else if (c.facility == "bssf") {
      EXPECT_DOUBLE_EQ(c.cost_pages, BssfRetrievalSuperset(db, sig, 10, 4));
    } else {
      EXPECT_DOUBLE_EQ(c.cost_pages, NixRetrievalSuperset(db, nix, 10, 4));
    }
  }
}

TEST(AdvisorTest, RejectsEmptyQueries) {
  EXPECT_EQ(AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 0,
                              QueryKind::kSuperset, true)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(AdvisorTest, ExtensionOperatorsPriced) {
  // Equality: NIX's Dq intersections beat BSSF's all-F slice scan at the
  // paper's parameters; SSF's full scan never wins.
  auto eq = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 10,
                              QueryKind::kEquals, true);
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ((*eq)[0].facility, "nix");
  // Overlap: the NIX union is exact, but fetching every overlapping object
  // (A ≈ N·Dq·Dt/V) dominates; BSSF pays the same fetches plus m·Dq slice
  // reads, so NIX should rank first among the three.
  auto ov = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 5,
                              QueryKind::kOverlaps, true);
  ASSERT_TRUE(ov.ok());
  EXPECT_EQ((*ov)[0].facility, "nix");
  for (const auto& c : *ov) EXPECT_GT(c.cost_pages, 0.0);
}

TEST(AdvisorTest, ProperVariantsPriceLikeNonStrict) {
  auto strict = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 3,
                                  QueryKind::kProperSuperset, true);
  auto plain = AdviseAccessPaths(Paper(), {500, 2}, NixParams{}, 10, 3,
                                 QueryKind::kSuperset, true);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(strict->size(), plain->size());
  for (size_t i = 0; i < strict->size(); ++i) {
    EXPECT_DOUBLE_EQ((*strict)[i].cost_pages, (*plain)[i].cost_pages);
  }
}

TEST(AdvisorTest, SmartBssfCompetitiveForMultiElementSuperset) {
  // The paper's headline conclusion, as the advisor sees it: with smart
  // strategies enabled, BSSF is within a whisker of the winner for
  // Dq >= 2 superset queries.
  for (int64_t dq = 2; dq <= 10; ++dq) {
    auto choices = AdviseAccessPaths(Paper(), {250, 2}, NixParams{}, 10, dq,
                                     QueryKind::kSuperset, true);
    ASSERT_TRUE(choices.ok());
    double best = (*choices)[0].cost_pages;
    double bssf_best = 1e18;
    for (const auto& c : *choices) {
      if (c.facility == "bssf") bssf_best = std::min(bssf_best, c.cost_pages);
    }
    EXPECT_LE(bssf_best, best * 1.1) << "dq=" << dq;
  }
}

// --- set-containment join strategies ---------------------------------------

TEST(JoinAdvisorTest, RanksThreeConcreteStrategiesAscending) {
  DatabaseParams db_r = Paper();
  DatabaseParams db_s = Paper();
  auto choices =
      AdviseJoinStrategies(db_r, 4, db_s, 10, {250, 2}, NixParams{});
  ASSERT_TRUE(choices.ok());
  ASSERT_EQ(choices->size(), 3u);
  for (size_t i = 1; i < choices->size(); ++i) {
    EXPECT_LE((*choices)[i - 1].cost_pages, (*choices)[i].cost_pages);
  }
  // All three concrete strategies are present, never kAuto.
  bool saw_nl = false, saw_sh = false, saw_ad = false;
  for (const JoinStrategyChoice& c : *choices) {
    EXPECT_NE(c.strategy, JoinStrategy::kAuto);
    EXPECT_GT(c.cost_pages, 0.0) << c.name;
    saw_nl = saw_nl || c.strategy == JoinStrategy::kNestedLoop;
    saw_sh = saw_sh || c.strategy == JoinStrategy::kSignatureHash;
    saw_ad = saw_ad || c.strategy == JoinStrategy::kAdaptive;
  }
  EXPECT_TRUE(saw_nl && saw_sh && saw_ad);
}

TEST(JoinAdvisorTest, SigHashPrecedesIdenticallyPricedAdaptive) {
  // Adaptive is priced as sig-hash; the stable sort must keep the plain
  // method ahead on the tie (no per-partition overhead).
  auto choices = AdviseJoinStrategies(Paper(), 4, Paper(), 10, {250, 2},
                                      NixParams{});
  ASSERT_TRUE(choices.ok());
  size_t sh = 99, ad = 99;
  for (size_t i = 0; i < choices->size(); ++i) {
    if ((*choices)[i].strategy == JoinStrategy::kSignatureHash) sh = i;
    if ((*choices)[i].strategy == JoinStrategy::kAdaptive) ad = i;
  }
  EXPECT_DOUBLE_EQ((*choices)[sh].cost_pages, (*choices)[ad].cost_pages);
  EXPECT_LT(sh, ad);
}

// The crossover the model predicts: nested-loop-of-selections wins while
// |R| · RC_sel(S) < scan(R) + scan(S), i.e. for SMALL outer relations; once
// |R| grows past the crossover the single S scan of sig-hash is cheaper.
// Pin both regimes and the transition's monotonicity.
TEST(JoinAdvisorTest, NestedLoopWinsSmallOuterRelationsOnly) {
  DatabaseParams db_s = Paper();  // N = 1,000,000 paper-sized inner side
  const SignatureParams sig{250, 2};

  DatabaseParams tiny_r = db_s;
  tiny_r.n = 2;  // two probes against S beat scanning all of S
  auto tiny = BestJoinStrategy(tiny_r, 4, db_s, 10, sig, NixParams{});
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->strategy, JoinStrategy::kNestedLoop);

  DatabaseParams big_r = db_s;
  big_r.n = 100000;  // 100k probes dwarf one S scan
  auto big = BestJoinStrategy(big_r, 4, db_s, 10, sig, NixParams{});
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->strategy, JoinStrategy::kSignatureHash);

  // Monotone crossover: once sig-hash wins at n_r, it keeps winning for
  // every larger outer relation (nested-loop cost grows linearly in |R|
  // while the sig-hash S-scan term is constant).
  bool crossed = false;
  for (int64_t n_r : {2, 8, 32, 128, 512, 2048, 8192, 32768, 131072}) {
    DatabaseParams db_r = db_s;
    db_r.n = n_r;
    auto best = BestJoinStrategy(db_r, 4, db_s, 10, sig, NixParams{});
    ASSERT_TRUE(best.ok()) << n_r;
    const bool nl = best->strategy == JoinStrategy::kNestedLoop;
    if (crossed) {
      EXPECT_FALSE(nl) << "nested-loop re-won at n_r=" << n_r;
    }
    if (!nl) crossed = true;
  }
  EXPECT_TRUE(crossed);
}

TEST(JoinAdvisorTest, BreakdownMatchesRankedCostAndRejectsAuto) {
  const SignatureParams sig{250, 2};
  auto choices =
      AdviseJoinStrategies(Paper(), 4, Paper(), 10, sig, NixParams{});
  ASSERT_TRUE(choices.ok());
  for (const JoinStrategyChoice& c : *choices) {
    auto bd = BreakdownForJoinStrategy(Paper(), 4, Paper(), 10, sig,
                                       NixParams{}, c.strategy);
    ASSERT_TRUE(bd.ok()) << c.name;
    EXPECT_NEAR(bd->total(), c.cost_pages, 1e-9) << c.name;
    EXPECT_NEAR(bd->expected_candidate_pairs, c.candidate_pairs, 1e-9);
    EXPECT_NEAR(bd->expected_result_pairs, c.result_pairs, 1e-9);
  }
  EXPECT_EQ(BreakdownForJoinStrategy(Paper(), 4, Paper(), 10, sig,
                                     NixParams{}, JoinStrategy::kAuto)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sigsetdb
