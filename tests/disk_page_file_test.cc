#include "storage/disk_page_file.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace sigsetdb {
namespace {

// Creates a unique temp path per test.
std::string TempPath(const std::string& tag) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = tmp != nullptr ? tmp : "/tmp";
  return dir + "/sigsetdb_" + tag + "_" + std::to_string(::getpid()) +
         ".pages";
}

class DiskPageFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(DiskPageFileTest, CreateEmptyFile) {
  path_ = TempPath("create");
  auto file = OnDiskPageFile::Open("t", path_);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ((*file)->num_pages(), 0u);
}

TEST_F(DiskPageFileTest, WriteReadRoundTrip) {
  path_ = TempPath("roundtrip");
  auto file = OnDiskPageFile::Open("t", path_);
  ASSERT_TRUE(file.ok());
  auto id = (*file)->Allocate();
  ASSERT_TRUE(id.ok());
  Page out;
  out.WriteAt<uint64_t>(100, 0xfeedfaceULL);
  ASSERT_TRUE((*file)->Write(*id, out).ok());
  Page in;
  ASSERT_TRUE((*file)->Read(*id, &in).ok());
  EXPECT_EQ(in.ReadAt<uint64_t>(100), 0xfeedfaceULL);
}

TEST_F(DiskPageFileTest, AllocatedPagesAreZeroed) {
  path_ = TempPath("zeroed");
  auto file = OnDiskPageFile::Open("t", path_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Allocate().ok());
  Page page;
  page.bytes.fill(0xcc);
  ASSERT_TRUE((*file)->Read(0, &page).ok());
  for (uint8_t b : page.bytes) ASSERT_EQ(b, 0);
}

TEST_F(DiskPageFileTest, PersistsAcrossReopen) {
  path_ = TempPath("reopen");
  {
    auto file = OnDiskPageFile::Open("t", path_);
    ASSERT_TRUE(file.ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE((*file)->Allocate().ok());
    Page page;
    page.WriteAt<uint32_t>(0, 42u);
    ASSERT_TRUE((*file)->Write(2, page).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  auto reopened = OnDiskPageFile::Open("t", path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_pages(), 3u);
  Page page;
  ASSERT_TRUE((*reopened)->Read(2, &page).ok());
  EXPECT_EQ(page.ReadAt<uint32_t>(0), 42u);
}

TEST_F(DiskPageFileTest, OutOfRangeAccessRejected) {
  path_ = TempPath("oob");
  auto file = OnDiskPageFile::Open("t", path_);
  ASSERT_TRUE(file.ok());
  Page page;
  EXPECT_EQ((*file)->Read(0, &page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ((*file)->Write(0, page).code(), StatusCode::kOutOfRange);
}

TEST_F(DiskPageFileTest, MisalignedFileRejected) {
  path_ = TempPath("misaligned");
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a page", f);
  std::fclose(f);
  auto file = OnDiskPageFile::Open("t", path_);
  EXPECT_EQ(file.status().code(), StatusCode::kCorruption);
}

TEST_F(DiskPageFileTest, CountsAccesses) {
  path_ = TempPath("stats");
  auto file = OnDiskPageFile::Open("t", path_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Allocate().ok());
  Page page;
  ASSERT_TRUE((*file)->Read(0, &page).ok());
  ASSERT_TRUE((*file)->Write(0, page).ok());
  EXPECT_EQ((*file)->stats().page_reads, 1u);
  EXPECT_EQ((*file)->stats().page_writes, 1u);
}

TEST_F(DiskPageFileTest, OpenFailsOnBadDirectory) {
  auto file = OnDiskPageFile::Open("t", "/nonexistent_dir_xyz/file.pages");
  EXPECT_EQ(file.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace sigsetdb
