// Direct tests of the facility recovery factories (CreateFromExisting):
// round trips over populated files, partially filled tail pages, and the
// corruption guards that reject inconsistent metadata.

#include <algorithm>

#include <gtest/gtest.h>

#include "nix/btree.h"
#include "sig/bssf.h"
#include "sig/ssf.h"
#include "storage/page_file.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

Oid MakeOid(uint64_t i) {
  return Oid::FromLocation(static_cast<PageId>(i), 0);
}

TEST(SsfRecoveryTest, RoundTripAcrossPartialTailPages) {
  InMemoryPageFile sig_file("sig"), oid_file("oid");
  const SignatureConfig config{250, 2};
  Rng rng(1);
  std::vector<ElementSet> sets;
  // 200 signatures: 131 fill page 0, 69 leave page 1 partially filled, and
  // the OID file tail page holds 200 < 512 entries.
  {
    auto ssf = SequentialSignatureFile::Create(config, &sig_file, &oid_file);
    ASSERT_TRUE(ssf.ok());
    for (uint64_t i = 0; i < 200; ++i) {
      sets.push_back(rng.SampleWithoutReplacement(500, 6));
      ASSERT_TRUE((*ssf)->Insert(MakeOid(i), sets.back()).ok());
    }
  }
  auto reopened = SequentialSignatureFile::CreateFromExisting(
      config, &sig_file, &oid_file, 200);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_signatures(), 200u);
  // Existing data answers queries.
  ElementSet query = {sets[42][0], sets[42][3]};
  NormalizeSet(&query);
  auto result = (*reopened)->Candidates(QueryKind::kSuperset, query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::find(result->oids.begin(), result->oids.end(),
                        MakeOid(42)) != result->oids.end());
  // Appends continue on the partial tail pages without clobbering them.
  ASSERT_TRUE((*reopened)->Insert(MakeOid(200), {1, 2, 3}).ok());
  auto again = (*reopened)->Candidates(QueryKind::kSuperset, query);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->oids, result->oids);
}

TEST(SsfRecoveryTest, RejectsWrongCount) {
  InMemoryPageFile sig_file("sig"), oid_file("oid");
  const SignatureConfig config{250, 2};
  {
    auto ssf = SequentialSignatureFile::Create(config, &sig_file, &oid_file);
    ASSERT_TRUE(ssf.ok());
    for (uint64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE((*ssf)->Insert(MakeOid(i), {i}).ok());
    }
  }
  // A count implying a different page tally must be rejected.
  EXPECT_EQ(SequentialSignatureFile::CreateFromExisting(config, &sig_file,
                                                        &oid_file, 600)
                .status()
                .code(),
            StatusCode::kCorruption);
}

TEST(BssfRecoveryTest, RoundTripAndContinuedInserts) {
  InMemoryPageFile slice_file("slices"), oid_file("oid");
  const SignatureConfig config{128, 2};
  Rng rng(2);
  std::vector<ElementSet> sets;
  {
    auto bssf = BitSlicedSignatureFile::Create(
        config, 1024, &slice_file, &oid_file, BssfInsertMode::kSparse);
    ASSERT_TRUE(bssf.ok());
    for (uint64_t i = 0; i < 300; ++i) {
      sets.push_back(rng.SampleWithoutReplacement(200, 5));
      ASSERT_TRUE((*bssf)->Insert(MakeOid(i), sets.back()).ok());
    }
  }
  auto reopened = BitSlicedSignatureFile::CreateFromExisting(
      config, 1024, &slice_file, &oid_file, BssfInsertMode::kSparse, 300);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_signatures(), 300u);
  ElementSet query = {sets[7][1], sets[7][4]};
  NormalizeSet(&query);
  auto result = (*reopened)->Candidates(QueryKind::kSuperset, query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::find(result->oids.begin(), result->oids.end(),
                        MakeOid(7)) != result->oids.end());
  ASSERT_TRUE((*reopened)->Insert(MakeOid(300), sets[7]).ok());
  auto after = (*reopened)->Candidates(QueryKind::kSuperset, query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->oids.size(), result->oids.size() + 1);
}

TEST(BssfRecoveryTest, Guards) {
  InMemoryPageFile slice_file("slices"), oid_file("oid");
  const SignatureConfig config{128, 2};
  {
    auto bssf = BitSlicedSignatureFile::Create(
        config, 1024, &slice_file, &oid_file, BssfInsertMode::kSparse);
    ASSERT_TRUE(bssf.ok());
    ASSERT_TRUE((*bssf)->Insert(MakeOid(0), {1}).ok());
  }
  // Count above capacity.
  EXPECT_EQ(BitSlicedSignatureFile::CreateFromExisting(
                config, 1024, &slice_file, &oid_file,
                BssfInsertMode::kSparse, 2048)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Wrong F: slice store page count mismatch.
  EXPECT_EQ(BitSlicedSignatureFile::CreateFromExisting(
                {256, 2}, 1024, &slice_file, &oid_file,
                BssfInsertMode::kSparse, 1)
                .status()
                .code(),
            StatusCode::kCorruption);
}

TEST(BTreeRecoveryTest, RoundTripWithFreeList) {
  InMemoryPageFile file("tree");
  PageId root;
  uint32_t height;
  uint64_t leaves, internal, overflow, free_pages;
  PageId free_head;
  {
    auto tree = BTree::Create(&file, 8);
    ASSERT_TRUE(tree.ok());
    for (uint64_t i = 0; i < 800; ++i) {
      ASSERT_TRUE((*tree)->Insert(7, MakeOid(i)).ok());
      ASSERT_TRUE((*tree)->Insert(10000 + i, MakeOid(i)).ok());
    }
    // Drain the hot key so the free list is non-empty at "checkpoint".
    for (uint64_t i = 0; i < 800; ++i) {
      ASSERT_TRUE((*tree)->Remove(7, MakeOid(i)).ok());
    }
    ASSERT_GT((*tree)->free_pages(), 0u);
    root = (*tree)->root();
    height = (*tree)->height();
    leaves = (*tree)->leaf_pages();
    internal = (*tree)->internal_pages();
    overflow = (*tree)->overflow_pages();
    free_head = (*tree)->free_list_head();
    free_pages = (*tree)->free_pages();
  }
  auto reopened = BTree::CreateFromExisting(&file, 8, root, height, leaves,
                                            internal, overflow);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  (*reopened)->RestoreFreeList(free_head, free_pages);
  // Contents intact: the drained hot key is gone, the others answer.
  EXPECT_TRUE((*reopened)->Lookup(7)->empty());
  for (uint64_t i = 0; i < 800; i += 97) {
    auto postings = (*reopened)->Lookup(10000 + i);
    ASSERT_TRUE(postings.ok());
    EXPECT_EQ(postings->size(), 1u) << i;
  }
  // New overflow chains recycle the freed pages.
  PageId pages_before = file.num_pages();
  for (uint64_t i = 0; i < 800; ++i) {
    ASSERT_TRUE((*reopened)->Insert(9999, MakeOid(i)).ok());
  }
  EXPECT_EQ(file.num_pages(), pages_before);
}

TEST(BTreeRecoveryTest, RejectsBadMetadata) {
  InMemoryPageFile file("tree");
  {
    auto tree = BTree::Create(&file, 8);
    ASSERT_TRUE(tree.ok());
    ASSERT_TRUE((*tree)->Insert(1, MakeOid(1)).ok());
  }
  // Root out of range.
  EXPECT_EQ(BTree::CreateFromExisting(&file, 8, 99, 0, 1, 0).status().code(),
            StatusCode::kCorruption);
  // Height claims an internal root but page 0 is a leaf.
  EXPECT_EQ(BTree::CreateFromExisting(&file, 8, 0, 2, 1, 2).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace sigsetdb
