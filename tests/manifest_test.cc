#include "db/manifest.h"

#include <gtest/gtest.h>

namespace sigsetdb {
namespace {

TEST(ManifestTest, RoundTrip) {
  InMemoryPageFile file("m");
  Manifest::Values values = {{"a", 1}, {"num_objects", 32000},
                             {"nix_root", 690}};
  ASSERT_TRUE(Manifest::Write(&file, values).ok());
  auto read = Manifest::Read(&file);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, values);
}

TEST(ManifestTest, OverwriteReplacesValues) {
  InMemoryPageFile file("m");
  ASSERT_TRUE(Manifest::Write(&file, {{"x", 1}}).ok());
  ASSERT_TRUE(Manifest::Write(&file, {{"y", 2}}).ok());
  auto read = Manifest::Read(&file);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 1u);
  EXPECT_EQ((*read)["y"], 2u);
}

TEST(ManifestTest, EmptyValuesAllowed) {
  InMemoryPageFile file("m");
  ASSERT_TRUE(Manifest::Write(&file, {}).ok());
  auto read = Manifest::Read(&file);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST(ManifestTest, MissingFileReportsNotFound) {
  InMemoryPageFile file("m");
  EXPECT_EQ(Manifest::Read(&file).status().code(), StatusCode::kNotFound);
}

TEST(ManifestTest, CorruptMagicRejected) {
  InMemoryPageFile file("m");
  ASSERT_TRUE(Manifest::Write(&file, {{"x", 1}}).ok());
  Page page;
  ASSERT_TRUE(file.Read(0, &page).ok());
  page.WriteAt<uint32_t>(0, 0xdeadbeef);
  ASSERT_TRUE(file.Write(0, page).ok());
  EXPECT_EQ(Manifest::Read(&file).status().code(), StatusCode::kCorruption);
}

TEST(ManifestTest, GetFetchesRequiredKeys) {
  Manifest::Values values = {{"present", 7}};
  auto got = Manifest::Get(values, "present");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 7u);
  EXPECT_EQ(Manifest::Get(values, "absent").status().code(),
            StatusCode::kNotFound);
}

TEST(ManifestTest, ManyKeysFitOnePage) {
  InMemoryPageFile file("m");
  Manifest::Values values;
  for (int i = 0; i < 200; ++i) {
    values["key_" + std::to_string(i)] = static_cast<uint64_t>(i);
  }
  ASSERT_TRUE(Manifest::Write(&file, values).ok());
  auto read = Manifest::Read(&file);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, values);
}

TEST(ManifestTest, OversizeRejected) {
  InMemoryPageFile file("m");
  Manifest::Values values;
  std::string long_key(200, 'k');
  for (int i = 0; i < 40; ++i) {
    values[long_key + std::to_string(i)] = 0;
  }
  EXPECT_EQ(Manifest::Write(&file, values).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace sigsetdb
