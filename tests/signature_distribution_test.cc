// Statistical quality of the signature hash — the paper's analysis assumes
// an "ideal" hash whose one bits are uniformly distributed.  These tests
// quantify how close the implementation comes: chi-square uniformity of
// bit positions, independence across elements, and signature-weight
// distribution against the binomial model.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sig/signature.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

// Chi-square statistic for observed counts vs a uniform expectation.
double ChiSquare(const std::vector<uint64_t>& counts, double expected) {
  double chi = 0;
  for (uint64_t c : counts) {
    double d = static_cast<double>(c) - expected;
    chi += d * d / expected;
  }
  return chi;
}

TEST(SignatureDistributionTest, BitPositionsUniformChiSquare) {
  // 20,000 elements × m=2 positions over F=250 buckets: expected 160 per
  // bucket.  For 249 degrees of freedom the 99.9th percentile of chi² is
  // ~330; allow a wide margin (test must be deterministic, not flaky).
  const SignatureConfig config{250, 2};
  std::vector<uint64_t> counts(config.f, 0);
  for (uint64_t e = 0; e < 20000; ++e) {
    for (uint32_t pos : ElementSignaturePositions(e, config)) ++counts[pos];
  }
  double expected = 20000.0 * config.m / config.f;
  EXPECT_LT(ChiSquare(counts, expected), 400.0);
}

TEST(SignatureDistributionTest, UniformAcrossLargeF) {
  const SignatureConfig config{2500, 3};
  std::vector<uint64_t> counts(config.f, 0);
  for (uint64_t e = 0; e < 50000; ++e) {
    for (uint32_t pos : ElementSignaturePositions(e, config)) ++counts[pos];
  }
  double expected = 50000.0 * config.m / config.f;  // 60
  // 2499 dof; 99.9th percentile ≈ 2680.
  EXPECT_LT(ChiSquare(counts, expected), 2800.0);
}

TEST(SignatureDistributionTest, SequentialElementsAreIndependent) {
  // Consecutive integers (the workload's dense domain ids) must not share
  // positions more often than random pairs: count pairwise collisions.
  const SignatureConfig config{250, 2};
  int collisions = 0;
  const int kPairs = 5000;
  for (uint64_t e = 0; e < kPairs; ++e) {
    BitVector a = MakeElementSignature(e, config);
    BitVector b = MakeElementSignature(e + 1, config);
    collisions += static_cast<int>(a.CountAnd(b));
  }
  // Expected shared bits per pair ≈ m²/F = 0.016 => ~80 over 5000 pairs.
  EXPECT_NEAR(collisions, 80, 45);
}

TEST(SignatureDistributionTest, SignatureWeightMatchesBinomialTail) {
  // Weight of a Dt=10 set signature: mean F(1-(1-m/F)^Dt), variance from
  // the occupancy distribution.  Check mean and that the spread is sane.
  const SignatureConfig config{500, 2};
  Rng rng(9);
  const int kTrials = 2000;
  double sum = 0, sum_sq = 0;
  for (int t = 0; t < kTrials; ++t) {
    ElementSet set = rng.SampleWithoutReplacement(13000, 10);
    double w = static_cast<double>(MakeSetSignature(set, config).Count());
    sum += w;
    sum_sq += w * w;
  }
  double mean = sum / kTrials;
  double var = sum_sq / kTrials - mean * mean;
  double expected_mean = 500.0 * (1.0 - std::pow(1.0 - 2.0 / 500.0, 10));
  EXPECT_NEAR(mean, expected_mean, 0.15);
  // Occupancy variance for n=20 balls in F=500 bins ≈ 0.73; allow slack.
  EXPECT_GT(var, 0.2);
  EXPECT_LT(var, 2.5);
}

TEST(SignatureDistributionTest, QueryAndTargetSignaturesAgreeOnElements) {
  // The same element id must hash identically regardless of which set it
  // appears in — sampled widely (this is the no-false-negative bedrock).
  const SignatureConfig config{1000, 3};
  Rng rng(4);
  for (int t = 0; t < 200; ++t) {
    uint64_t e = rng.Next();
    EXPECT_EQ(ElementSignaturePositions(e, config),
              ElementSignaturePositions(e, config));
  }
}

TEST(SignatureDistributionTest, DifferentConfigsDecorrelated) {
  // The same element under different (F, m) must not produce systematically
  // aligned positions (guards against F-dependent hash reuse bugs).
  const SignatureConfig a{256, 2};
  const SignatureConfig b{512, 2};
  int aligned = 0;
  for (uint64_t e = 0; e < 2000; ++e) {
    auto pa = ElementSignaturePositions(e, a);
    auto pb = ElementSignaturePositions(e, b);
    for (uint32_t x : pa) {
      for (uint32_t y : pb) {
        if (x == y) ++aligned;
      }
    }
  }
  // Expected alignments ≈ 2000 · 4 pairs · (1/512) ≈ 15.6.
  EXPECT_LT(aligned, 60);
}

}  // namespace
}  // namespace sigsetdb
