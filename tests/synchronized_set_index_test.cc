#include "db/synchronized_set_index.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

// A decorator whose Read() rendezvouses: when armed, a reader entering
// Read blocks until `expected` readers are inside Read at the same moment
// (or flags a timeout).  Proves two code paths run concurrently.
struct ReadGate {
  std::mutex mu;
  std::condition_variable cv;
  int waiting = 0;
  int expected = 2;
  std::atomic<bool> armed{false};
  std::atomic<bool> timed_out{false};

  void Arrive() {
    if (!armed.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lock(mu);
    ++waiting;
    if (waiting >= expected) {
      cv.notify_all();
    } else if (!cv.wait_for(lock, std::chrono::seconds(10),
                            [this] { return waiting >= expected; })) {
      timed_out.store(true, std::memory_order_release);
    }
  }
};

class GatedPageFile : public PageFile {
 public:
  GatedPageFile(std::unique_ptr<PageFile> base, ReadGate* gate, bool gated)
      : base_(std::move(base)), gate_(gate), gated_(gated) {}

  using PageFile::Read;
  using PageFile::Write;

  const std::string& name() const override { return base_->name(); }
  PageId num_pages() const override { return base_->num_pages(); }
  StatusOr<PageId> Allocate() override { return base_->Allocate(); }
  Status Read(PageId id, Page* out, IoStats* io) override {
    if (gated_) gate_->Arrive();
    return base_->Read(id, out, io);
  }
  Status Write(PageId id, const Page& page, IoStats* io) override {
    return base_->Write(id, page, io);
  }
  Status Sync() override { return base_->Sync(); }
  IoStats& stats() override { return base_->stats(); }
  const IoStats& stats() const override { return base_->stats(); }

 private:
  std::unique_ptr<PageFile> base_;
  ReadGate* gate_;
  bool gated_;
};

SetIndex::Options Options() {
  SetIndex::Options options;
  options.sig = {128, 2};
  options.capacity = 1 << 16;
  options.domain_estimate = 300;
  return options;
}

TEST(SynchronizedSetIndexTest, BasicOperationsWork) {
  StorageManager storage;
  auto index = SynchronizedSetIndex::Create(&storage, "attr", Options());
  ASSERT_TRUE(index.ok());
  auto oid = (*index)->Insert({1, 2, 3});
  ASSERT_TRUE(oid.ok());
  auto obj = (*index)->Get(*oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->set_value, (ElementSet{1, 2, 3}));
  auto result = (*index)->Query(QueryKind::kSuperset, {2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.oids.size(), 1u);
  ASSERT_TRUE((*index)->Delete(*oid).ok());
  EXPECT_EQ((*index)->num_objects(), 0u);
}

TEST(SynchronizedSetIndexTest, ConcurrentInsertersAndReaders) {
  StorageManager storage;
  auto index = SynchronizedSetIndex::Create(&storage, "attr", Options());
  ASSERT_TRUE(index.ok());
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kInsertsPerWriter = 300;
  std::atomic<int> insert_failures{0};
  std::atomic<int> query_failures{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(static_cast<uint64_t>(w) + 1);
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        ElementSet set = rng.SampleWithoutReplacement(300, 5);
        // Every set contains a per-writer marker element for the check.
        set.push_back(1000 + static_cast<uint64_t>(w));
        NormalizeSet(&set);
        if (!(*index)->Insert(set).ok()) ++insert_failures;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(static_cast<uint64_t>(r) + 100);
      while (!done.load()) {
        ElementSet query = rng.SampleWithoutReplacement(300, 2);
        if (!(*index)->Query(QueryKind::kSuperset, query).ok()) {
          ++query_failures;
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  done.store(true);
  for (size_t r = kWriters; r < threads.size(); ++r) threads[r].join();

  EXPECT_EQ(insert_failures.load(), 0);
  EXPECT_EQ(query_failures.load(), 0);
  EXPECT_EQ((*index)->num_objects(),
            static_cast<uint64_t>(kWriters) * kInsertsPerWriter);
  // Every writer's marker finds exactly its inserts.
  for (int w = 0; w < kWriters; ++w) {
    auto result = (*index)->Query(QueryKind::kSuperset,
                                  {1000 + static_cast<uint64_t>(w)});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->result.oids.size(),
              static_cast<size_t>(kInsertsPerWriter));
  }
}

TEST(SynchronizedSetIndexTest, ConcurrentMixedWorkloadStaysConsistent) {
  StorageManager storage;
  auto index = SynchronizedSetIndex::Create(&storage, "attr", Options());
  ASSERT_TRUE(index.ok());
  // Pre-populate, then concurrently delete half while querying.
  std::vector<Oid> oids;
  Rng rng(9);
  for (int i = 0; i < 600; ++i) {
    ElementSet set = rng.SampleWithoutReplacement(300, 5);
    set.push_back(7777);
    NormalizeSet(&set);
    oids.push_back((*index)->Insert(set).value());
  }
  std::atomic<int> failures{0};
  std::thread deleter([&] {
    for (size_t i = 0; i < oids.size(); i += 2) {
      if (!(*index)->Delete(oids[i]).ok()) ++failures;
    }
  });
  std::thread querier([&] {
    for (int i = 0; i < 200; ++i) {
      auto result = (*index)->Query(QueryKind::kSuperset, {7777});
      if (!result.ok()) ++failures;
    }
  });
  deleter.join();
  querier.join();
  EXPECT_EQ(failures.load(), 0);
  auto result = (*index)->Query(QueryKind::kSuperset, {7777});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.oids.size(), 300u);
}

// Regression for the shared read lock: two concurrent Get()s must BOTH be
// inside the object file's Read() at the same time.  Under the old
// exclusive-only mutex the first Get would block inside Read holding the
// lock while the second waited outside, and the rendezvous would time out.
TEST(SynchronizedSetIndexTest, ConcurrentGetsDoNotSerialize) {
  StorageManager storage;
  ReadGate gate;
  storage.SetInterceptor(
      [&gate](std::unique_ptr<PageFile> base) -> std::unique_ptr<PageFile> {
        const bool gated = base->name().find(".objects") != std::string::npos;
        return std::make_unique<GatedPageFile>(std::move(base), &gate, gated);
      });
  auto index = SynchronizedSetIndex::Create(&storage, "attr", Options());
  ASSERT_TRUE(index.ok());
  auto a = (*index)->Insert({1, 2, 3});
  auto b = (*index)->Insert({4, 5, 6});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  gate.armed.store(true, std::memory_order_release);
  std::atomic<int> failures{0};
  std::thread t1([&] {
    if (!(*index)->Get(*a).ok()) ++failures;
  });
  std::thread t2([&] {
    if (!(*index)->Get(*b).ok()) ++failures;
  });
  t1.join();
  t2.join();
  gate.armed.store(false);

  EXPECT_FALSE(gate.timed_out.load()) << "concurrent Gets serialized";
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace sigsetdb
