#include "db/synchronized_set_index.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

SetIndex::Options Options() {
  SetIndex::Options options;
  options.sig = {128, 2};
  options.capacity = 1 << 16;
  options.domain_estimate = 300;
  return options;
}

TEST(SynchronizedSetIndexTest, BasicOperationsWork) {
  StorageManager storage;
  auto index = SynchronizedSetIndex::Create(&storage, "attr", Options());
  ASSERT_TRUE(index.ok());
  auto oid = (*index)->Insert({1, 2, 3});
  ASSERT_TRUE(oid.ok());
  auto obj = (*index)->Get(*oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->set_value, (ElementSet{1, 2, 3}));
  auto result = (*index)->Query(QueryKind::kSuperset, {2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.oids.size(), 1u);
  ASSERT_TRUE((*index)->Delete(*oid).ok());
  EXPECT_EQ((*index)->num_objects(), 0u);
}

TEST(SynchronizedSetIndexTest, ConcurrentInsertersAndReaders) {
  StorageManager storage;
  auto index = SynchronizedSetIndex::Create(&storage, "attr", Options());
  ASSERT_TRUE(index.ok());
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kInsertsPerWriter = 300;
  std::atomic<int> insert_failures{0};
  std::atomic<int> query_failures{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(static_cast<uint64_t>(w) + 1);
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        ElementSet set = rng.SampleWithoutReplacement(300, 5);
        // Every set contains a per-writer marker element for the check.
        set.push_back(1000 + static_cast<uint64_t>(w));
        NormalizeSet(&set);
        if (!(*index)->Insert(set).ok()) ++insert_failures;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(static_cast<uint64_t>(r) + 100);
      while (!done.load()) {
        ElementSet query = rng.SampleWithoutReplacement(300, 2);
        if (!(*index)->Query(QueryKind::kSuperset, query).ok()) {
          ++query_failures;
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  done.store(true);
  for (size_t r = kWriters; r < threads.size(); ++r) threads[r].join();

  EXPECT_EQ(insert_failures.load(), 0);
  EXPECT_EQ(query_failures.load(), 0);
  EXPECT_EQ((*index)->num_objects(),
            static_cast<uint64_t>(kWriters) * kInsertsPerWriter);
  // Every writer's marker finds exactly its inserts.
  for (int w = 0; w < kWriters; ++w) {
    auto result = (*index)->Query(QueryKind::kSuperset,
                                  {1000 + static_cast<uint64_t>(w)});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->result.oids.size(),
              static_cast<size_t>(kInsertsPerWriter));
  }
}

TEST(SynchronizedSetIndexTest, ConcurrentMixedWorkloadStaysConsistent) {
  StorageManager storage;
  auto index = SynchronizedSetIndex::Create(&storage, "attr", Options());
  ASSERT_TRUE(index.ok());
  // Pre-populate, then concurrently delete half while querying.
  std::vector<Oid> oids;
  Rng rng(9);
  for (int i = 0; i < 600; ++i) {
    ElementSet set = rng.SampleWithoutReplacement(300, 5);
    set.push_back(7777);
    NormalizeSet(&set);
    oids.push_back((*index)->Insert(set).value());
  }
  std::atomic<int> failures{0};
  std::thread deleter([&] {
    for (size_t i = 0; i < oids.size(); i += 2) {
      if (!(*index)->Delete(oids[i]).ok()) ++failures;
    }
  });
  std::thread querier([&] {
    for (int i = 0; i < 200; ++i) {
      auto result = (*index)->Query(QueryKind::kSuperset, {7777});
      if (!result.ok()) ++failures;
    }
  });
  deleter.join();
  querier.join();
  EXPECT_EQ(failures.load(), 0);
  auto result = (*index)->Query(QueryKind::kSuperset, {7777});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.oids.size(), 300u);
}

}  // namespace
}  // namespace sigsetdb
