// Shared test fixture: a small synthetic database materialized through all
// three access facilities plus the object store, mirroring the paper's
// experimental setup at reduced scale.

#ifndef SIGSET_TESTS_TEST_DB_H_
#define SIGSET_TESTS_TEST_DB_H_

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "nix/nested_index.h"
#include "obj/object_store.h"
#include "sig/bssf.h"
#include "sig/ssf.h"
#include "storage/storage_manager.h"
#include "workload/generator.h"

namespace sigsetdb {

// Builds N objects with Dt-element sets over a V-element domain and indexes
// them in SSF, BSSF and NIX simultaneously.
class TestDatabase {
 public:
  struct Options {
    int64_t n = 1000;
    int64_t v = 500;
    int64_t dt = 8;
    SignatureConfig sig{250, 3};
    uint32_t nix_fanout = kPaperFanout;
    uint64_t seed = 42;
    BssfInsertMode bssf_mode = BssfInsertMode::kSparse;
  };

  explicit TestDatabase(const Options& options) : options_(options) {
    store_ = std::make_unique<ObjectStore>(storage_.CreateOrOpen("objects"));
    auto ssf = SequentialSignatureFile::Create(
        options.sig, storage_.CreateOrOpen("ssf.sig"),
        storage_.CreateOrOpen("ssf.oid"));
    EXPECT_TRUE(ssf.ok());
    ssf_ = std::move(*ssf);
    auto bssf = BitSlicedSignatureFile::Create(
        options.sig, static_cast<uint64_t>(options.n) + 64,
        storage_.CreateOrOpen("bssf.slices"), storage_.CreateOrOpen("bssf.oid"),
        options.bssf_mode);
    EXPECT_TRUE(bssf.ok());
    bssf_ = std::move(*bssf);
    auto nix = NestedIndex::Create(storage_.CreateOrOpen("nix"),
                                   options.nix_fanout);
    EXPECT_TRUE(nix.ok());
    nix_ = std::move(*nix);

    WorkloadConfig wconfig{options.n, options.v,
                           CardinalitySpec::Fixed(options.dt),
                           SkewKind::kUniform, 0.99, options.seed};
    sets_ = MakeDatabase(wconfig);
    for (const auto& set : sets_) {
      auto oid = store_->Insert(set);
      EXPECT_TRUE(oid.ok());
      oids_.push_back(*oid);
      EXPECT_TRUE(ssf_->Insert(*oid, set).ok());
      EXPECT_TRUE(bssf_->Insert(*oid, set).ok());
      EXPECT_TRUE(nix_->Insert(*oid, set).ok());
    }
    storage_.ResetStats();
  }

  // Brute-force ground truth for any predicate.
  std::vector<Oid> BruteForce(QueryKind kind, const ElementSet& query) const {
    std::vector<Oid> out;
    for (size_t i = 0; i < sets_.size(); ++i) {
      StoredObject obj{oids_[i], sets_[i]};
      bool hit = false;
      switch (kind) {
        case QueryKind::kSuperset:
          hit = SatisfiesSuperset(obj, query);
          break;
        case QueryKind::kSubset:
          hit = SatisfiesSubset(obj, query);
          break;
        case QueryKind::kProperSuperset:
          hit = SatisfiesProperSuperset(obj, query);
          break;
        case QueryKind::kProperSubset:
          hit = SatisfiesProperSubset(obj, query);
          break;
        case QueryKind::kEquals:
          hit = SatisfiesEquals(obj, query);
          break;
        case QueryKind::kOverlaps:
          hit = SatisfiesOverlap(obj, query);
          break;
      }
      if (hit) out.push_back(oids_[i]);
    }
    return out;
  }

  const Options& options() const { return options_; }
  StorageManager& storage() { return storage_; }
  ObjectStore& store() { return *store_; }
  SequentialSignatureFile& ssf() { return *ssf_; }
  BitSlicedSignatureFile& bssf() { return *bssf_; }
  NestedIndex& nix() { return *nix_; }
  const std::vector<ElementSet>& sets() const { return sets_; }
  const std::vector<Oid>& oids() const { return oids_; }

 private:
  Options options_;
  StorageManager storage_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<SequentialSignatureFile> ssf_;
  std::unique_ptr<BitSlicedSignatureFile> bssf_;
  std::unique_ptr<NestedIndex> nix_;
  std::vector<ElementSet> sets_;
  std::vector<Oid> oids_;
};

}  // namespace sigsetdb

#endif  // SIGSET_TESTS_TEST_DB_H_
