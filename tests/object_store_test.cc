#include "obj/object_store.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

TEST(ObjectStoreTest, InsertAssignsPhysicalOid) {
  InMemoryPageFile file("obj");
  ObjectStore store(&file);
  auto oid = store.Insert({1, 2, 3});
  ASSERT_TRUE(oid.ok());
  EXPECT_TRUE(oid->valid());
  EXPECT_EQ(oid->page(), 0u);
  EXPECT_EQ(oid->slot(), 0u);
  EXPECT_EQ(store.num_objects(), 1u);
}

TEST(ObjectStoreTest, GetRoundTripsSetValue) {
  InMemoryPageFile file("obj");
  ObjectStore store(&file);
  ElementSet set = {5, 10, 10000000000ULL};
  auto oid = store.Insert(set);
  ASSERT_TRUE(oid.ok());
  auto obj = store.Get(*oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->set_value, set);
  EXPECT_EQ(obj->oid, *oid);
}

TEST(ObjectStoreTest, EmptySetSupported) {
  InMemoryPageFile file("obj");
  ObjectStore store(&file);
  auto oid = store.Insert({});
  ASSERT_TRUE(oid.ok());
  auto obj = store.Get(*oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(obj->set_value.empty());
}

TEST(ObjectStoreTest, GetCostsExactlyOnePageRead) {
  InMemoryPageFile file("obj");
  ObjectStore store(&file);
  auto oid = store.Insert({1, 2, 3});
  ASSERT_TRUE(oid.ok());
  file.stats().Reset();
  ASSERT_TRUE(store.Get(*oid).ok());
  EXPECT_EQ(file.stats().page_reads, 1u);
  EXPECT_EQ(file.stats().page_writes, 0u);
}

TEST(ObjectStoreTest, ObjectsPackIntoPages) {
  InMemoryPageFile file("obj");
  ObjectStore store(&file);
  // 100-element sets: 804-byte records + 4-byte slots => 5 per page.
  ElementSet set(100);
  for (int i = 0; i < 100; ++i) set[static_cast<size_t>(i)] = i;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(store.Insert(set).ok());
  EXPECT_EQ(store.num_pages(), 2u);
}

TEST(ObjectStoreTest, GetInvalidOidFails) {
  InMemoryPageFile file("obj");
  ObjectStore store(&file);
  EXPECT_EQ(store.Get(Oid()).status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(store.Get(Oid::FromLocation(9, 0)).ok());
}

TEST(ObjectStoreTest, DeleteMakesOidDangling) {
  InMemoryPageFile file("obj");
  ObjectStore store(&file);
  auto oid = store.Insert({7});
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store.Delete(*oid).ok());
  EXPECT_EQ(store.Get(*oid).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Delete(*oid).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.num_objects(), 0u);
}

TEST(ObjectStoreTest, OversizeSetRejected) {
  InMemoryPageFile file("obj");
  ObjectStore store(&file);
  ElementSet huge(600);
  for (size_t i = 0; i < huge.size(); ++i) huge[i] = i;
  EXPECT_EQ(store.Insert(huge).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ObjectStoreTest, ManyObjectsRoundTrip) {
  InMemoryPageFile file("obj");
  ObjectStore store(&file);
  Rng rng(3);
  std::vector<Oid> oids;
  std::vector<ElementSet> sets;
  for (int i = 0; i < 500; ++i) {
    ElementSet set = rng.SampleWithoutReplacement(1000, 10);
    auto oid = store.Insert(set);
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
    sets.push_back(std::move(set));
  }
  for (size_t i = 0; i < oids.size(); ++i) {
    auto obj = store.Get(oids[i]);
    ASSERT_TRUE(obj.ok());
    EXPECT_EQ(obj->set_value, sets[i]);
  }
}

TEST(ObjectPredicatesTest, SubsetAndOverlap) {
  EXPECT_TRUE(IsSubset({1, 3}, {1, 2, 3}));
  EXPECT_FALSE(IsSubset({1, 4}, {1, 2, 3}));
  EXPECT_TRUE(IsSubset({}, {1}));
  EXPECT_TRUE(Overlaps({1, 5}, {5, 9}));
  EXPECT_FALSE(Overlaps({1, 5}, {2, 6}));
  EXPECT_FALSE(Overlaps({}, {1}));
}

TEST(ObjectPredicatesTest, StoredObjectPredicates) {
  StoredObject obj;
  obj.set_value = {2, 4, 6};
  EXPECT_TRUE(SatisfiesSuperset(obj, {2, 6}));
  EXPECT_FALSE(SatisfiesSuperset(obj, {2, 5}));
  EXPECT_TRUE(SatisfiesSubset(obj, {1, 2, 3, 4, 5, 6}));
  EXPECT_FALSE(SatisfiesSubset(obj, {2, 4}));
  EXPECT_TRUE(SatisfiesEquals(obj, {2, 4, 6}));
  EXPECT_FALSE(SatisfiesEquals(obj, {2, 4}));
  EXPECT_TRUE(SatisfiesOverlap(obj, {6, 7}));
  EXPECT_FALSE(SatisfiesOverlap(obj, {1, 3}));
}

TEST(ObjectPredicatesTest, NormalizeSet) {
  ElementSet s = {5, 1, 5, 3, 1};
  NormalizeSet(&s);
  EXPECT_EQ(s, (ElementSet{1, 3, 5}));
}

}  // namespace
}  // namespace sigsetdb
