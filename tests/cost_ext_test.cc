// Tests for the §6-extension cost models (equality and overlap), including
// empirical cross-checks of the new false-drop formulas.

#include <cmath>

#include <gtest/gtest.h>

#include "model/actual_drops.h"
#include "model/cost_ext.h"
#include "model/false_drop.h"
#include "sig/signature.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

DatabaseParams Paper() { return DatabaseParams{}; }

TEST(CostExtTest, EqualityFalseDropIsAstronomicallySmall) {
  // Per-bit agreement probability ~0.86 over F=250 bits.
  double fd = FalseDropEquals({250, 2}, 10, 10);
  EXPECT_GT(fd, 0.0);
  EXPECT_LT(fd, 1e-12);
  // Tiny signatures leave measurable rates.
  EXPECT_GT(FalseDropEquals({8, 1}, 2, 2), 1e-3);
}

TEST(CostExtTest, EqualityFalseDropSymmetricInCardinalities) {
  EXPECT_DOUBLE_EQ(FalseDropEquals({250, 2}, 5, 12),
                   FalseDropEquals({250, 2}, 12, 5));
}

TEST(CostExtTest, OverlapFalseDropGrowsWithDq) {
  SignatureParams sig{500, 2};
  double prev = 0.0;
  for (int64_t dq = 1; dq <= 50; dq += 7) {
    double fd = FalseDropOverlap(sig, 10, dq);
    EXPECT_GT(fd, prev);
    EXPECT_LE(fd, 1.0);
    prev = fd;
  }
  // Single element: the Dq=1 superset rate (up to rounding in 1-(1-x)^1).
  EXPECT_NEAR(FalseDropOverlap(sig, 10, 1), FalseDropSuperset(sig, 10, 1),
              1e-12);
}

TEST(CostExtTest, EmpiricalEqualityFalseDropRate) {
  // Small F so agreements actually happen; compare measured rate with the
  // independence model (4-sigma band).
  SignatureConfig config{16, 1};
  SignatureParams sig{16, 1};
  const int64_t dt = 3, dq = 3;
  const int kTrials = 20000;
  Rng rng(1);
  ElementSet query = {900001, 900002, 900003};
  BitVector qs = MakeSetSignature(query, config);
  int agree = 0;
  for (int i = 0; i < kTrials; ++i) {
    ElementSet target = rng.SampleWithoutReplacement(100000, dt);
    if (MakeSetSignature(target, config) == qs) ++agree;
  }
  double measured = static_cast<double>(agree) / kTrials;
  double expected = FalseDropEquals(sig, dt, dq);
  double sigma = std::sqrt(expected * (1 - expected) / kTrials);
  EXPECT_NEAR(measured, expected, 4 * sigma + 0.002);
}

TEST(CostExtTest, EmpiricalOverlapFalseDropRate) {
  SignatureConfig config{64, 2};
  SignatureParams sig{64, 2};
  const int64_t dt = 5, dq = 3;
  const int kTrials = 8000;
  Rng rng(2);
  ElementSet query = {800001, 800002, 800003};
  std::vector<BitVector> element_sigs;
  for (uint64_t e : query) {
    element_sigs.push_back(MakeElementSignature(e, config));
  }
  int drops = 0;
  for (int i = 0; i < kTrials; ++i) {
    ElementSet target = rng.SampleWithoutReplacement(100000, dt);
    BitVector ts = MakeSetSignature(target, config);
    for (const BitVector& es : element_sigs) {
      if (es.IsSubsetOf(ts)) {
        ++drops;
        break;
      }
    }
  }
  double measured = static_cast<double>(drops) / kTrials;
  double expected = FalseDropOverlap(sig, dt, dq);
  double sigma = std::sqrt(expected * (1 - expected) / kTrials);
  EXPECT_NEAR(measured, expected, 4 * sigma + 0.005);
}

TEST(CostExtTest, EqualityCostShapes) {
  DatabaseParams db = Paper();
  NixParams nix;
  // BSSF reads all F slices; SSF its full scan; NIX rc·Dq + tiny A.
  EXPECT_NEAR(BssfRetrievalEquals(db, {250, 2}, 10, 10), 250.0, 1.0);
  EXPECT_NEAR(SsfRetrievalEquals(db, {250, 2}, 10, 10), 245.0, 1.0);
  EXPECT_NEAR(NixRetrievalEquals(db, nix, 10, 10), 30.0, 0.5);
  // NIX wins equality at paper scale.
  EXPECT_LT(NixRetrievalEquals(db, nix, 10, 10),
            BssfRetrievalEquals(db, {250, 2}, 10, 10));
}

TEST(CostExtTest, OverlapCostShapes) {
  DatabaseParams db = Paper();
  NixParams nix;
  int64_t dt = 10, dq = 3;
  double a = ActualDropsOverlap(db, dt, dq);
  // All three pay the A fetches; they differ in the filter cost.
  double nix_cost = NixRetrievalOverlap(db, nix, dt, dq);
  double bssf_cost = BssfRetrievalOverlap(db, {250, 2}, dt, dq);
  double ssf_cost = SsfRetrievalOverlap(db, {250, 2}, dt, dq);
  EXPECT_NEAR(nix_cost, 3.0 * dq + a, 1.0);
  EXPECT_GT(bssf_cost, 2.0 * dq);  // m·Dq slice reads at least
  EXPECT_GT(ssf_cost, 245.0);      // full scan at least
  EXPECT_LT(nix_cost, bssf_cost);
  EXPECT_LT(bssf_cost, ssf_cost);
}

TEST(CostExtTest, OverlapCostDominatedByActualDropsAtLargeDq) {
  DatabaseParams db = Paper();
  NixParams nix;
  // A_ov ≈ N(1 − C(V−Dq,Dt)/C(V,Dt)) grows toward N; every facility's cost
  // follows because the answers themselves must be fetched.
  double a100 = ActualDropsOverlap(db, 10, 100);
  EXPECT_NEAR(NixRetrievalOverlap(db, nix, 10, 100), 300.0 + a100, 1.0);
  EXPECT_GT(a100, 2000.0);
}

}  // namespace
}  // namespace sigsetdb
