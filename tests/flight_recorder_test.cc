// FlightRecorder: ring semantics (wrap, ordering), event field round-trips,
// fingerprint stability, postmortem rendering (text + validating-parser
// JSON), file dumps, and — the sanitizer target — torn-slot-free concurrent
// Record/Events.

#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_validate.h"
#include "storage/io_stats.h"

namespace sigsetdb {
namespace {

FlightEvent MakeEvent(FlightOp op, uint64_t fingerprint) {
  FlightEvent event;
  event.op = op;
  event.fingerprint = fingerprint;
  return event;
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(5).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(8).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(9).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(1).capacity(), 8u);  // minimum
}

TEST(FlightRecorderTest, EventsComeBackInOrderWithFields) {
  FlightRecorder recorder(16);
  for (uint64_t i = 0; i < 5; ++i) {
    FlightEvent event = MakeEvent(FlightOp::kInsert, 100 + i);
    event.epoch = 7;
    event.wal_lsn = 40 + i;
    event.status_code = 0;
    event.SetDelta(IoStats{3, 2, 1, 4});
    event.SetDetail("bssf smart(s=91)");
    recorder.Record(event);
  }
  std::vector<FlightEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 5u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].fingerprint, 100 + i);
    EXPECT_EQ(events[i].epoch, 7u);
    EXPECT_EQ(events[i].wal_lsn, 40 + i);
    EXPECT_EQ(events[i].page_reads, 3u);
    EXPECT_EQ(events[i].page_writes, 2u);
    EXPECT_EQ(events[i].pages_skipped, 1u);
    EXPECT_EQ(events[i].pages_cow, 4u);
    EXPECT_EQ(events[i].op, FlightOp::kInsert);
    EXPECT_STREQ(events[i].detail, "bssf smart(s=91)");
    if (i > 0) EXPECT_GT(events[i].micros + 1, events[i - 1].micros);
  }
  EXPECT_EQ(recorder.total_recorded(), 5u);
}

TEST(FlightRecorderTest, RingKeepsOnlyTheMostRecent) {
  FlightRecorder recorder(8);
  for (uint64_t i = 0; i < 20; ++i) {
    recorder.Record(MakeEvent(FlightOp::kQuery, i));
  }
  std::vector<FlightEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].fingerprint, 12 + i);
  }
  EXPECT_EQ(recorder.total_recorded(), 20u);
}

TEST(FlightRecorderTest, DetailTruncatesAndStaysTerminated) {
  FlightEvent event;
  event.SetDetail(std::string(100, 'x'));
  EXPECT_EQ(std::string(event.detail).size(), sizeof(event.detail) - 1);
  event.SetDetail("short");
  EXPECT_STREQ(event.detail, "short");
}

TEST(FlightRecorderTest, FingerprintIsStableAndDiscriminates) {
  const std::vector<uint64_t> set = {3, 17, 99};
  const uint64_t fp = FlightRecorder::Fingerprint(0, set);
  EXPECT_EQ(FlightRecorder::Fingerprint(0, set), fp);
  EXPECT_NE(FlightRecorder::Fingerprint(1, set), fp);
  EXPECT_NE(FlightRecorder::Fingerprint(0, {3, 17, 98}), fp);
  EXPECT_NE(FlightRecorder::Fingerprint(0, {}), fp);
}

TEST(FlightRecorderTest, PostmortemTextNamesOpsAndReason) {
  FlightRecorder recorder(8);
  FlightEvent event = MakeEvent(FlightOp::kCompact, 0);
  event.SetDetail("generation 3");
  recorder.Record(event);
  recorder.Record(MakeEvent(FlightOp::kWalCommit, 0));
  const std::string text = recorder.PostmortemText("simulated crash");
  EXPECT_NE(text.find("simulated crash"), std::string::npos);
  EXPECT_NE(text.find("compact"), std::string::npos);
  EXPECT_NE(text.find("wal_commit"), std::string::npos);
  EXPECT_NE(text.find("generation 3"), std::string::npos);
}

TEST(FlightRecorderTest, PostmortemJsonRoundTripsThroughValidator) {
  FlightRecorder recorder(8);
  for (uint64_t i = 0; i < 10; ++i) {
    FlightEvent event = MakeEvent(FlightOp::kQuery, i);
    // A detail with every character class the escaper must handle.
    event.SetDetail("plan \"q\\x\" \n\t");
    event.status_code = static_cast<int32_t>(i % 3);
    recorder.Record(event);
  }
  const std::string json =
      recorder.PostmortemJson("reason with \"quotes\" and \\ slashes");
  std::string error;
  EXPECT_TRUE(testjson::IsValidJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\""), std::string::npos);
  // Ring of 8: only the 8 most recent events appear.
  size_t count = 0;
  for (size_t pos = 0; (pos = json.find("\"seq\"", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 8u);
}

TEST(FlightRecorderTest, WritePostmortemProducesBothFiles) {
  FlightRecorder recorder(8);
  recorder.Record(MakeEvent(FlightOp::kFatal, 0));
  const std::string prefix = ::testing::TempDir() + "flightrec_postmortem";
  ASSERT_TRUE(recorder.WritePostmortem(prefix, "io error").ok());
  std::ifstream text_file(prefix + ".txt");
  ASSERT_TRUE(text_file.good());
  std::stringstream text;
  text << text_file.rdbuf();
  EXPECT_NE(text.str().find("io error"), std::string::npos);
  std::ifstream json_file(prefix + ".json");
  ASSERT_TRUE(json_file.good());
  std::stringstream json;
  json << json_file.rdbuf();
  std::string error;
  EXPECT_TRUE(testjson::IsValidJson(json.str(), &error)) << error;
  std::remove((prefix + ".txt").c_str());
  std::remove((prefix + ".json").c_str());
}

// The seqlock contract: concurrent Record/Events must be race-free, readers
// must never observe a torn slot (every returned event is internally
// consistent and in seq order), and no producer increment may be lost.  Run
// under TSan by tools/run_sanitizers.sh telemetry.
TEST(FlightRecorderTest, ConcurrentRecordAndDumpStaysConsistent) {
  FlightRecorder recorder(64);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 50000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&recorder, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        FlightEvent event = MakeEvent(
            static_cast<FlightOp>(i % 8), (static_cast<uint64_t>(w) << 32) | i);
        // fingerprint encodes (writer, i); detail mirrors it so a torn slot
        // (payload mixed between two writers) is detectable below.
        event.epoch = event.fingerprint;
        event.wal_lsn = event.fingerprint;
        recorder.Record(event);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&recorder, &stop, &reads] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<FlightEvent> events = recorder.Events();
        for (size_t i = 0; i < events.size(); ++i) {
          // Internal consistency: the three fields written from the same
          // fingerprint must agree — a torn slot could not satisfy this.
          ASSERT_EQ(events[i].epoch, events[i].fingerprint);
          ASSERT_EQ(events[i].wal_lsn, events[i].fingerprint);
          if (i > 0) ASSERT_GT(events[i].seq, events[i - 1].seq);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(recorder.total_recorded(), kWriters * kPerWriter);
  EXPECT_GT(reads.load(), 0u);
  std::vector<FlightEvent> final_events = recorder.Events();
  EXPECT_EQ(final_events.size(), recorder.capacity());
  for (size_t i = 1; i < final_events.size(); ++i) {
    EXPECT_GT(final_events[i].seq, final_events[i - 1].seq);
  }
}

}  // namespace
}  // namespace sigsetdb
