#include "obj/schema.h"

#include <gtest/gtest.h>

namespace sigsetdb {
namespace {

ClassDef StudentClass() {
  return ClassDef{
      "Student",
      {
          {"name", AttributeKind::kString, ""},
          {"courses", AttributeKind::kSetOfRef, "Course"},
          {"hobbies", AttributeKind::kSetOfString, ""},
      }};
}

TEST(SchemaTest, AddAndFindClass) {
  Schema schema;
  ASSERT_TRUE(schema.AddClass(StudentClass()).ok());
  const ClassDef* cls = schema.FindClass("Student");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->attributes.size(), 3u);
  EXPECT_EQ(schema.FindClass("Course"), nullptr);
}

TEST(SchemaTest, DuplicateClassRejected) {
  Schema schema;
  ASSERT_TRUE(schema.AddClass(StudentClass()).ok());
  EXPECT_EQ(schema.AddClass(StudentClass()).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, FindAttribute) {
  ClassDef cls = StudentClass();
  const AttributeDef* attr = cls.FindAttribute("hobbies");
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(attr->kind, AttributeKind::kSetOfString);
  const AttributeDef* ref = cls.FindAttribute("courses");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->target_class, "Course");
  EXPECT_EQ(cls.FindAttribute("gpa"), nullptr);
}

TEST(ElementDictionaryTest, InternsStringsStably) {
  ElementDictionary dict;
  uint64_t baseball = dict.IdForString("Baseball");
  uint64_t fishing = dict.IdForString("Fishing");
  EXPECT_NE(baseball, fishing);
  EXPECT_EQ(dict.IdForString("Baseball"), baseball);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(ElementDictionaryTest, LookupAndReverse) {
  ElementDictionary dict;
  uint64_t id = dict.IdForString("Tennis");
  auto looked = dict.LookupString("Tennis");
  ASSERT_TRUE(looked.ok());
  EXPECT_EQ(*looked, id);
  auto name = dict.StringForId(id);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "Tennis");
  EXPECT_EQ(dict.LookupString("Golf").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(dict.StringForId(99).status().code(), StatusCode::kNotFound);
}

TEST(ElementDictionaryTest, OidsAreTheirOwnIds) {
  Oid oid = Oid::FromLocation(3, 4);
  EXPECT_EQ(ElementDictionary::IdForOid(oid), oid.value());
}

TEST(OidTest, LocationRoundTrip) {
  Oid oid = Oid::FromLocation(123456, 789);
  EXPECT_EQ(oid.page(), 123456u);
  EXPECT_EQ(oid.slot(), 789u);
  EXPECT_TRUE(oid.valid());
  EXPECT_FALSE(Oid().valid());
}

TEST(OidTest, OrderingAndHash) {
  Oid a = Oid::FromLocation(1, 0);
  Oid b = Oid::FromLocation(1, 1);
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<Oid>{}(a), std::hash<Oid>{}(b));
  EXPECT_EQ(a, Oid::FromLocation(1, 0));
}

}  // namespace
}  // namespace sigsetdb
