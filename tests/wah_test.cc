#include "sig/wah.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

BitVector RoundTrip(const BitVector& in) {
  std::vector<uint32_t> words = WahEncode(in);
  BitVector out;
  EXPECT_TRUE(WahDecode(words, in.size(), &out));
  return out;
}

TEST(WahTest, EmptyBitmap) {
  BitVector v(0);
  EXPECT_TRUE(WahEncode(v).empty());
  BitVector out;
  EXPECT_TRUE(WahDecode({}, 0, &out));
}

TEST(WahTest, AllZerosCompressToOneFill) {
  BitVector v(31 * 1000);
  std::vector<uint32_t> words = WahEncode(v);
  EXPECT_EQ(words.size(), 1u);
  EXPECT_EQ(RoundTrip(v), v);
}

TEST(WahTest, AllOnesCompressToOneFill) {
  BitVector v(31 * 500);
  v.SetAll();
  std::vector<uint32_t> words = WahEncode(v);
  EXPECT_EQ(words.size(), 1u);
  EXPECT_EQ(RoundTrip(v), v);
}

TEST(WahTest, NonMultipleOf31Sizes) {
  Rng rng(1);
  for (size_t bits : {1u, 7u, 30u, 31u, 32u, 61u, 62u, 63u, 100u, 1000u}) {
    BitVector v(bits);
    for (size_t i = 0; i < bits / 4 + 1; ++i) v.Set(rng.NextBelow(bits));
    EXPECT_EQ(RoundTrip(v), v) << bits << " bits";
  }
}

TEST(WahTest, SparseBitmapRoundTripAndCompresses) {
  Rng rng(2);
  BitVector v(200000);
  for (int i = 0; i < 500; ++i) v.Set(rng.NextBelow(200000));
  std::vector<uint32_t> words = WahEncode(v);
  EXPECT_EQ(RoundTrip(v), v);
  // 200000 bits = 6452 groups uncompressed; 500 scattered bits need at most
  // ~500 literals + ~501 fills.
  EXPECT_LT(words.size(), 1100u);
}

TEST(WahTest, DenseRandomBitmapRoundTrip) {
  Rng rng(3);
  BitVector v(5000);
  for (int i = 0; i < 2500; ++i) v.Set(rng.NextBelow(5000));
  EXPECT_EQ(RoundTrip(v), v);
}

TEST(WahTest, AlternatingRunsRoundTrip) {
  BitVector v(31 * 40);
  for (size_t g = 0; g < 40; g += 2) {
    for (size_t i = 0; i < 31; ++i) v.Set(g * 31 + i);
  }
  std::vector<uint32_t> words = WahEncode(v);
  // Alternating 1-group fills cannot merge: 40 words.
  EXPECT_EQ(words.size(), 40u);
  EXPECT_EQ(RoundTrip(v), v);
}

TEST(WahTest, DecodeRejectsWrongGroupCount) {
  BitVector v(310);
  std::vector<uint32_t> words = WahEncode(v);
  BitVector out;
  EXPECT_FALSE(WahDecode(words, 311 + 31, &out));  // one group short
  words.push_back(words.back());                   // one fill too many
  EXPECT_FALSE(WahDecode(words, 310, &out));
}

TEST(WahTest, DecodeRejectsZeroLengthFill) {
  BitVector out;
  EXPECT_FALSE(WahDecode({0x80000000u}, 31, &out));
}

TEST(WahTest, DecodeRejectsPaddingBitsSet) {
  // 10 bits => 1 group; a literal with bit 15 set claims out-of-range bits.
  BitVector out;
  EXPECT_FALSE(WahDecode({1u << 15}, 10, &out));
}

TEST(WahTest, BuilderMatchesBulkEncoder) {
  Rng rng(4);
  BitVector v(31 * 97);
  for (int i = 0; i < 200; ++i) v.Set(rng.NextBelow(v.size()));
  WahBuilder builder;
  for (size_t g = 0; g < 97; ++g) {
    uint32_t group = 0;
    for (size_t i = 0; i < 31; ++i) {
      if (v.Test(g * 31 + i)) group |= 1u << i;
    }
    builder.AppendGroup(group);
  }
  EXPECT_EQ(builder.words(), WahEncode(v));
  EXPECT_EQ(builder.num_groups(), 97u);
}

TEST(WahTest, BuilderZeroGroupBatches) {
  WahBuilder builder;
  builder.AppendZeroGroups(1000);
  builder.AppendGroup(5);
  builder.AppendZeroGroups(1);
  EXPECT_EQ(builder.num_groups(), 1002u);
  BitVector out;
  ASSERT_TRUE(WahDecode(builder.words(), 1002 * 31, &out));
  EXPECT_EQ(out.Count(), 2u);  // group value 5 = bits 0 and 2
  EXPECT_TRUE(out.Test(1000 * 31 + 0));
  EXPECT_TRUE(out.Test(1000 * 31 + 2));
}

TEST(WahTest, VeryLongRunsSplitAcrossFillWords) {
  WahBuilder builder;
  uint64_t groups = (uint64_t{1} << 30) + 5;  // exceeds one fill's capacity
  builder.AppendZeroGroups(groups);
  ASSERT_EQ(builder.words().size(), 2u);
  EXPECT_EQ(builder.words()[0] & 0x3fffffffu, 0x3fffffffu);
  EXPECT_EQ(builder.words()[1] & 0x3fffffffu,
            static_cast<uint32_t>(groups - 0x3fffffffu));
}

}  // namespace
}  // namespace sigsetdb
