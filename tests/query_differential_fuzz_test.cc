// Differential fuzz over the full write/query surface (DESIGN.md §12).
//
// Four SetIndex replicas — {skip index off, on} × {1 thread, 4 threads} —
// are driven through the same seeded churn (single inserts, single deletes,
// write batches mixing both, periodic compaction) and, after every phase,
// queried with all six query kinds through all three forced facilities.
// Invariants:
//
//   1. Every replica returns exactly the brute-force oracle's answer for
//      every (kind, facility) pair — skipping and parallelism change cost
//      only, never results.
//   2. With the skip index OFF, page-access totals are identical at 1 and 4
//      threads (the parallel scan reads every page exactly once), i.e. the
//      pre-skip-index behaviour is bit-identical.
//   3. With the skip index ON, page-access totals never exceed the off
//      replica's (a skipped page is a read that no longer happens, and
//      dropped tombstone candidates can only shrink the OID look-up).
//   4. OID assignment is deterministic: all replicas agree on every OID.

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "db/set_index.h"
#include "db/write_batch.h"
#include "storage/fault_injecting_page_file.h"
#include "storage/storage_manager.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace sigsetdb {
namespace {

constexpr int64_t kDomain = 120;
constexpr int64_t kDt = 6;

struct Replica {
  std::string label;
  std::unique_ptr<StorageManager> storage;
  std::unique_ptr<SetIndex> index;
};

class QueryDifferentialFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    struct Config {
      const char* label;
      bool skip;
      size_t threads;
    };
    for (const Config& c :
         {Config{"off-1t", false, 1}, Config{"off-4t", false, 4},
          Config{"on-1t", true, 1}, Config{"on-4t", true, 4}}) {
      Replica r;
      r.label = c.label;
      r.storage = std::make_unique<StorageManager>();
      SetIndex::Options options;
      options.maintain_ssf = true;
      options.maintain_bssf = true;
      options.maintain_nix = true;
      options.sig = {120, 3};
      options.capacity = 4096;
      options.num_threads = c.threads;
      options.enable_skip_index = c.skip;
      auto index = SetIndex::Create(r.storage.get(), "fuzz", options);
      ASSERT_TRUE(index.ok()) << index.status().ToString();
      r.index = std::move(*index);
      replicas_.push_back(std::move(r));
    }
  }

  // Applies one churn action to every replica (and the oracle), asserting
  // the replicas hand out identical OIDs.
  void InsertEverywhere(const ElementSet& set) {
    Oid expected{};
    for (size_t i = 0; i < replicas_.size(); ++i) {
      auto oid = replicas_[i].index->Insert(set);
      ASSERT_TRUE(oid.ok()) << replicas_[i].label;
      if (i == 0) {
        expected = *oid;
      } else {
        ASSERT_EQ(oid->value(), expected.value()) << replicas_[i].label;
      }
    }
    oracle_[expected.value()] = set;
  }

  void DeleteEverywhere(Oid oid) {
    for (Replica& r : replicas_) {
      ASSERT_TRUE(r.index->Delete(oid).ok()) << r.label;
    }
    oracle_.erase(oid.value());
  }

  void BatchEverywhere(const WriteBatch& batch) {
    std::vector<Oid> expected;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      auto oids = replicas_[i].index->ApplyBatch(batch);
      ASSERT_TRUE(oids.ok()) << replicas_[i].label;
      if (i == 0) {
        expected = *oids;
      } else {
        ASSERT_EQ(oids->size(), expected.size());
        for (size_t j = 0; j < expected.size(); ++j) {
          ASSERT_EQ((*oids)[j].value(), expected[j].value());
        }
      }
    }
    for (Oid oid : batch.deletes()) oracle_.erase(oid.value());
    for (size_t j = 0; j < batch.inserts().size(); ++j) {
      oracle_[expected[j].value()] = batch.inserts()[j];
    }
  }

  void CompactEverywhere() {
    for (Replica& r : replicas_) {
      ASSERT_TRUE(r.index->Compact().ok()) << r.label;
    }
  }

  std::vector<Oid> BruteForce(QueryKind kind, const ElementSet& query) const {
    std::vector<Oid> out;
    for (const auto& [oid, set] : oracle_) {
      bool superset = std::includes(set.begin(), set.end(), query.begin(),
                                    query.end());
      bool subset = std::includes(query.begin(), query.end(), set.begin(),
                                  set.end());
      bool hit = false;
      switch (kind) {
        case QueryKind::kSuperset:
          hit = superset;
          break;
        case QueryKind::kProperSuperset:
          hit = superset && set.size() > query.size();
          break;
        case QueryKind::kSubset:
          hit = subset;
          break;
        case QueryKind::kProperSubset:
          hit = subset && set.size() < query.size();
          break;
        case QueryKind::kEquals:
          hit = superset && subset;
          break;
        case QueryKind::kOverlaps: {
          for (uint64_t e : query) {
            if (std::binary_search(set.begin(), set.end(), e)) {
              hit = true;
              break;
            }
          }
          break;
        }
      }
      if (hit) out.push_back(Oid{oid});
    }
    return out;
  }

  // Runs `kind` on every replica through every forced facility and checks
  // invariants 1–3.
  void CheckQuery(QueryKind kind, const ElementSet& query,
                  const char* context) {
    const std::vector<Oid> expected = BruteForce(kind, query);
    std::vector<uint64_t> oracle_values;
    for (Oid oid : expected) oracle_values.push_back(oid.value());
    for (PlanMode mode :
         {PlanMode::kForceSsf, PlanMode::kForceBssf, PlanMode::kForceNix}) {
      std::array<uint64_t, 4> pages{};
      for (size_t i = 0; i < replicas_.size(); ++i) {
        auto result = replicas_[i].index->Query(kind, query, mode);
        ASSERT_TRUE(result.ok())
            << replicas_[i].label << " " << context
            << " kind=" << QueryKindName(kind);
        std::vector<uint64_t> got;
        for (Oid oid : result->result.oids) got.push_back(oid.value());
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, oracle_values)
            << replicas_[i].label << " " << context << " plan="
            << result->plan << " kind=" << QueryKindName(kind);
        pages[i] = result->page_accesses;
      }
      // Invariant 2: parallelism never changes logical page accesses.
      EXPECT_EQ(pages[0], pages[1])
          << context << " kind=" << QueryKindName(kind) << " (skip off)";
      EXPECT_EQ(pages[2], pages[3])
          << context << " kind=" << QueryKindName(kind) << " (skip on)";
      // Invariant 3: skipping can only remove page accesses.
      EXPECT_LE(pages[2], pages[0])
          << context << " kind=" << QueryKindName(kind);
    }
  }

  void CheckAllKinds(Rng* rng, const char* context) {
    ElementSet probe;
    if (!oracle_.empty()) {
      size_t target_idx = rng->NextBelow(oracle_.size());
      auto it = oracle_.begin();
      std::advance(it, static_cast<long>(target_idx));
      probe = it->second;
    }
    ElementSet superset_q =
        probe.empty() ? rng->SampleWithoutReplacement(kDomain, 2)
                      : MakeHittingSupersetQuery(probe, 2, *rng);
    ElementSet subset_q =
        probe.empty()
            ? rng->SampleWithoutReplacement(kDomain, kDt + 4)
            : MakeHittingSubsetQuery(probe, kDomain, kDt + 4, *rng);
    ElementSet random_q = rng->SampleWithoutReplacement(kDomain, 3);
    CheckQuery(QueryKind::kSuperset, superset_q, context);
    CheckQuery(QueryKind::kProperSuperset, superset_q, context);
    CheckQuery(QueryKind::kSubset, subset_q, context);
    CheckQuery(QueryKind::kProperSubset, subset_q, context);
    if (!probe.empty()) CheckQuery(QueryKind::kEquals, probe, context);
    CheckQuery(QueryKind::kOverlaps, random_q, context);
  }

  std::vector<Oid> LiveOids() const {
    std::vector<Oid> out;
    for (const auto& [oid, set] : oracle_) out.push_back(Oid{oid});
    return out;
  }

  std::vector<Replica> replicas_;
  std::map<uint64_t, ElementSet> oracle_;  // live objects, by OID value
};

TEST_F(QueryDifferentialFuzzTest, ChurnedRepliasAgreeAcrossSkipAndThreads) {
  Rng rng(20260806);
  WorkloadConfig wconfig{64, kDomain, CardinalitySpec::Fixed(kDt),
                         SkewKind::kUniform, 0.99, 7};
  std::vector<ElementSet> seed_sets = MakeDatabase(wconfig);
  // Phase 1 — singleton inserts.
  for (int i = 0; i < 24; ++i) InsertEverywhere(seed_sets[i]);
  CheckAllKinds(&rng, "after inserts");
  // Phase 2 — delete a third (creates tombstones, empties slice bits).
  {
    std::vector<Oid> live = LiveOids();
    for (size_t i = 0; i < live.size(); i += 3) DeleteEverywhere(live[i]);
  }
  CheckAllKinds(&rng, "after deletes");
  // Phase 3 — batches mixing deletes with slot-reusing inserts.
  {
    WriteBatch batch;
    std::vector<Oid> live = LiveOids();
    for (size_t i = 0; i < live.size(); i += 4) batch.Delete(live[i]);
    for (int i = 24; i < 44; ++i) batch.Insert(seed_sets[i]);
    BatchEverywhere(batch);
  }
  CheckAllKinds(&rng, "after batch");
  // Phase 4 — compaction drops the tombstones and rebuilds summaries.
  CompactEverywhere();
  CheckAllKinds(&rng, "after compact");
  // Phase 5 — more churn on the compacted generation.
  {
    WriteBatch batch;
    std::vector<Oid> live = LiveOids();
    for (size_t i = 0; i < live.size(); i += 5) batch.Delete(live[i]);
    for (int i = 44; i < 56; ++i) batch.Insert(seed_sets[i]);
    BatchEverywhere(batch);
  }
  CheckAllKinds(&rng, "after post-compact batch");
}

// Deleting everything makes every slice page empty and every SSF page's
// live count zero: with the skip index on, a superset scan must skip all of
// its slice reads, and results must stay correct (empty) throughout.
TEST_F(QueryDifferentialFuzzTest, FullyTombstonedStoreSkipsEverything) {
  Rng rng(99);
  WorkloadConfig wconfig{16, kDomain, CardinalitySpec::Fixed(kDt),
                         SkewKind::kUniform, 0.99, 13};
  std::vector<ElementSet> sets = MakeDatabase(wconfig);
  for (const ElementSet& set : sets) InsertEverywhere(set);
  for (Oid oid : LiveOids()) DeleteEverywhere(oid);
  ASSERT_TRUE(oracle_.empty());
  ElementSet query = rng.SampleWithoutReplacement(kDomain, 2);
  // The skip-on BSSF replica must read no slice pages at all: every column
  // is dead (all slice pages are zero after the delete-path clears).
  Replica& skip_on = replicas_[2];
  const IoStats before = skip_on.index->bssf()->StageStats()[0].second;
  auto result = skip_on.index->Query(QueryKind::kSuperset, query,
                                     PlanMode::kForceBssf);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->result.oids.empty());
  const IoStats delta =
      skip_on.index->bssf()->StageStats()[0].second - before;
  EXPECT_EQ(delta.reads(), 0u);
  EXPECT_GT(delta.skips(), 0u);
  // And the replicas still agree everywhere.
  CheckAllKinds(&rng, "fully tombstoned");
}

// The WAL variant of the fuzz: the same four replicas run with
// enable_wal=true behind a fault injector, the churn is interrupted by
// crashes (every I/O of the interrupting operation fails, so it is never
// acknowledged and the oracle never records it), each replica is reopened
// on its torn storage, and the full differential query battery must still
// agree with the brute-force oracle over the ACKED operations only —
// recovery loses nothing acknowledged and invents nothing, at both thread
// counts and both skip-index settings.
class WalCrashFuzzTest : public QueryDifferentialFuzzTest {
 protected:
  void SetUp() override {
    struct Config {
      const char* label;
      bool skip;
      size_t threads;
    };
    for (const Config& c :
         {Config{"off-1t", false, 1}, Config{"off-4t", false, 4},
          Config{"on-1t", true, 1}, Config{"on-4t", true, 4}}) {
      Replica r;
      r.label = c.label;
      r.storage = std::make_unique<StorageManager>();
      auto injector = std::make_unique<FaultInjector>();
      r.storage->SetInterceptor(
          [inj = injector.get()](
              std::unique_ptr<PageFile> base) -> std::unique_ptr<PageFile> {
            return std::make_unique<FaultInjectingPageFile>(std::move(base),
                                                            inj);
          });
      SetIndex::Options options;
      options.maintain_ssf = true;
      options.maintain_bssf = true;
      options.maintain_nix = true;
      options.sig = {120, 3};
      options.capacity = 4096;
      options.num_threads = c.threads;
      options.enable_skip_index = c.skip;
      options.enable_wal = true;
      auto index = SetIndex::Create(r.storage.get(), "fuzz", options);
      ASSERT_TRUE(index.ok()) << index.status().ToString();
      r.index = std::move(*index);
      replicas_.push_back(std::move(r));
      injectors_.push_back(std::move(injector));
      options_.push_back(options);
    }
  }

  // Crashes every replica on the first I/O of `op`: the operation fails on
  // all of them, nothing is acknowledged, and the oracle stays untouched.
  void CrashEverywhereOn(const std::function<Status(SetIndex*)>& op) {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      injectors_[i]->CrashAt(injectors_[i]->ops());
      Status status = op(replicas_[i].index.get());
      EXPECT_FALSE(status.ok())
          << replicas_[i].label << ": crashed operation reported success";
      EXPECT_TRUE(injectors_[i]->crashed()) << replicas_[i].label;
    }
  }

  void ReopenEverywhere(const char* context) {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      injectors_[i]->Disarm();
      replicas_[i].index.reset();
      auto reopened =
          SetIndex::Open(replicas_[i].storage.get(), "fuzz", options_[i]);
      ASSERT_TRUE(reopened.ok())
          << replicas_[i].label << " " << context << ": "
          << reopened.status().ToString();
      replicas_[i].index = std::move(*reopened);
    }
  }

  std::vector<std::unique_ptr<FaultInjector>> injectors_;
  std::vector<SetIndex::Options> options_;
};

TEST_F(WalCrashFuzzTest, CrashAndReopenMidChurnMatchesOracleOverAckedOps) {
  Rng rng(20260808);
  WorkloadConfig wconfig{64, kDomain, CardinalitySpec::Fixed(kDt),
                         SkewKind::kUniform, 0.99, 21};
  std::vector<ElementSet> sets = MakeDatabase(wconfig);

  // Phase 1 — acked churn that recovery must carry across the crash: the
  // initial checkpoint happened inside Create, so ALL of this lives only in
  // the log until a later checkpoint.
  for (int i = 0; i < 20; ++i) InsertEverywhere(sets[i]);
  {
    std::vector<Oid> live = LiveOids();
    for (size_t i = 0; i < live.size(); i += 4) DeleteEverywhere(live[i]);
  }
  CheckAllKinds(&rng, "wal: before first crash");

  // Crash 1 — mid-singleton-insert, then recover from pure log replay.
  CrashEverywhereOn([&](SetIndex* index) {
    return index->Insert(sets[20]).status();
  });
  ReopenEverywhere("after crash 1");
  CheckAllKinds(&rng, "wal: recovered from insert crash");

  // Phase 2 — churn on the recovered indexes (slot reuse over tombstones).
  {
    WriteBatch batch;
    std::vector<Oid> live = LiveOids();
    for (size_t i = 0; i < live.size(); i += 3) batch.Delete(live[i]);
    for (int i = 20; i < 32; ++i) batch.Insert(sets[i]);
    BatchEverywhere(batch);
  }
  CheckAllKinds(&rng, "wal: after post-recovery batch");

  // Crash 2 — mid-batch; the whole group is unacked and must vanish.
  CrashEverywhereOn([&](SetIndex* index) {
    WriteBatch batch;
    std::vector<Oid> live = LiveOids();
    batch.Delete(live[0]);
    for (int i = 32; i < 35; ++i) batch.Insert(sets[i]);
    return index->ApplyBatch(batch).status();
  });
  ReopenEverywhere("after crash 2");
  CheckAllKinds(&rng, "wal: recovered from batch crash");

  // Phase 3 — checkpoint + compact so the log truncates, then crash a
  // compaction; the committed generation must keep serving.
  CompactEverywhere();
  CheckAllKinds(&rng, "wal: after compact");
  CrashEverywhereOn([](SetIndex* index) { return index->Compact(); });
  ReopenEverywhere("after crash 3");
  CheckAllKinds(&rng, "wal: recovered from compact crash");

  // Phase 4 — the recovered, twice-crashed replicas still take churn and
  // still agree on OID assignment everywhere.
  {
    WriteBatch batch;
    std::vector<Oid> live = LiveOids();
    for (size_t i = 0; i < live.size(); i += 5) batch.Delete(live[i]);
    for (int i = 35; i < 44; ++i) batch.Insert(sets[i]);
    BatchEverywhere(batch);
  }
  CheckAllKinds(&rng, "wal: final churn");
}

}  // namespace
}  // namespace sigsetdb
