// Differential fuzz over the full write/query surface (DESIGN.md §12).
//
// Six SetIndex replicas — {baseline, skip index, hot tier} × {1 thread,
// 4 threads} — are driven through the same seeded churn (single inserts,
// single deletes, write batches mixing both, periodic compaction) and,
// after every phase, queried with all six query kinds through all three
// forced facilities.  The churn deliberately includes EMPTY sets (∅ is a
// legal stored value: it is a subset of every query, writes no signature
// bits and no postings, and regression-tested here because the nested
// index once lost ∅ objects entirely — kSubset/kProperSubset answers
// disagreed with SSF/BSSF).  Invariants:
//
//   1. Every replica returns exactly the brute-force oracle's answer for
//      every (kind, facility) pair — skipping, the hot tier, and
//      parallelism change cost only, never results.
//   2. Page-access totals are identical at 1 and 4 threads for the
//      baseline and skip replicas (the parallel scan reads every page
//      exactly once).
//   3. With the skip index ON, page-access totals never exceed the
//      baseline's (a skipped page is a read that no longer happens, and
//      dropped tombstone candidates can only shrink the OID look-up).
//   4. OID assignment is deterministic: all replicas agree on every OID.
//   5. The hot tier moves reads, it never removes them: for each hot
//      replica, reads + hot hits equals the baseline's reads exactly, and
//      writes are untouched.  (Raw reads may differ between the two hot
//      replicas — eviction tie-breaks are not deterministic — but the sum
//      identity holds for each.)

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/set_index.h"
#include "db/snapshot.h"
#include "db/synchronized_set_index.h"
#include "db/write_batch.h"
#include "storage/fault_injecting_page_file.h"
#include "storage/storage_manager.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace sigsetdb {
namespace {

constexpr int64_t kDomain = 120;
constexpr int64_t kDt = 6;

// Brute-force evaluation of one query over an arbitrary oracle state.
// Returns the matching OID values, sorted.
std::vector<uint64_t> OracleAnswer(const std::map<uint64_t, ElementSet>& oracle,
                                   QueryKind kind, const ElementSet& query) {
  std::vector<uint64_t> out;
  for (const auto& [oid, set] : oracle) {
    bool superset =
        std::includes(set.begin(), set.end(), query.begin(), query.end());
    bool subset =
        std::includes(query.begin(), query.end(), set.begin(), set.end());
    bool hit = false;
    switch (kind) {
      case QueryKind::kSuperset:
        hit = superset;
        break;
      case QueryKind::kProperSuperset:
        hit = superset && set.size() > query.size();
        break;
      case QueryKind::kSubset:
        hit = subset;
        break;
      case QueryKind::kProperSubset:
        hit = subset && set.size() < query.size();
        break;
      case QueryKind::kEquals:
        hit = superset && subset;
        break;
      case QueryKind::kOverlaps: {
        for (uint64_t e : query) {
          if (std::binary_search(set.begin(), set.end(), e)) {
            hit = true;
            break;
          }
        }
        break;
      }
    }
    if (hit) out.push_back(oid);
  }
  return out;
}

struct Replica {
  std::string label;
  std::unique_ptr<StorageManager> storage;
  std::unique_ptr<SetIndex> index;
};

class QueryDifferentialFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    struct Config {
      const char* label;
      bool skip;
      bool hot;
      size_t threads;
    };
    // Replica layout is positional: [0,1] baseline, [2,3] skip index on,
    // [4,5] hot tier on.  CheckQuery's cost invariants index into it.
    for (const Config& c :
         {Config{"off-1t", false, false, 1}, Config{"off-4t", false, false, 4},
          Config{"on-1t", true, false, 1}, Config{"on-4t", true, false, 4},
          Config{"hot-1t", false, true, 1},
          Config{"hot-4t", false, true, 4}}) {
      Replica r;
      r.label = c.label;
      r.storage = std::make_unique<StorageManager>();
      SetIndex::Options options;
      options.maintain_ssf = true;
      options.maintain_bssf = true;
      options.maintain_nix = true;
      options.sig = {120, 3};
      options.capacity = 4096;
      options.num_threads = c.threads;
      options.enable_skip_index = c.skip;
      options.enable_hot_tier = c.hot;
      // Smaller than the slice store so the fuzz also churns evictions.
      options.hot_tier_capacity = 16;
      auto index = SetIndex::Create(r.storage.get(), "fuzz", options);
      ASSERT_TRUE(index.ok()) << index.status().ToString();
      r.index = std::move(*index);
      replicas_.push_back(std::move(r));
    }
  }

  // Applies one churn action to every replica (and the oracle), asserting
  // the replicas hand out identical OIDs.
  void InsertEverywhere(const ElementSet& set) {
    Oid expected{};
    for (size_t i = 0; i < replicas_.size(); ++i) {
      auto oid = replicas_[i].index->Insert(set);
      ASSERT_TRUE(oid.ok()) << replicas_[i].label;
      if (i == 0) {
        expected = *oid;
      } else {
        ASSERT_EQ(oid->value(), expected.value()) << replicas_[i].label;
      }
    }
    oracle_[expected.value()] = set;
  }

  void DeleteEverywhere(Oid oid) {
    for (Replica& r : replicas_) {
      ASSERT_TRUE(r.index->Delete(oid).ok()) << r.label;
    }
    oracle_.erase(oid.value());
  }

  void BatchEverywhere(const WriteBatch& batch) {
    std::vector<Oid> expected;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      auto oids = replicas_[i].index->ApplyBatch(batch);
      ASSERT_TRUE(oids.ok()) << replicas_[i].label;
      if (i == 0) {
        expected = *oids;
      } else {
        ASSERT_EQ(oids->size(), expected.size());
        for (size_t j = 0; j < expected.size(); ++j) {
          ASSERT_EQ((*oids)[j].value(), expected[j].value());
        }
      }
    }
    for (Oid oid : batch.deletes()) oracle_.erase(oid.value());
    for (size_t j = 0; j < batch.inserts().size(); ++j) {
      oracle_[expected[j].value()] = batch.inserts()[j];
    }
  }

  void CompactEverywhere() {
    for (Replica& r : replicas_) {
      ASSERT_TRUE(r.index->Compact().ok()) << r.label;
    }
  }

  std::vector<Oid> BruteForce(QueryKind kind, const ElementSet& query) const {
    std::vector<Oid> out;
    for (uint64_t value : OracleAnswer(oracle_, kind, query)) {
      out.push_back(Oid{value});
    }
    return out;
  }

  // Runs `kind` on every replica through every forced facility and checks
  // invariants 1–3 and 5.
  void CheckQuery(QueryKind kind, const ElementSet& query,
                  const char* context) {
    const std::vector<Oid> expected = BruteForce(kind, query);
    std::vector<uint64_t> oracle_values;
    for (Oid oid : expected) oracle_values.push_back(oid.value());
    for (PlanMode mode :
         {PlanMode::kForceSsf, PlanMode::kForceBssf, PlanMode::kForceNix}) {
      std::vector<uint64_t> pages(replicas_.size(), 0);
      std::vector<IoStats> deltas(replicas_.size());
      for (size_t i = 0; i < replicas_.size(); ++i) {
        const IoStats before = replicas_[i].storage->TotalStats();
        auto result = replicas_[i].index->Query(kind, query, mode);
        ASSERT_TRUE(result.ok())
            << replicas_[i].label << " " << context
            << " kind=" << QueryKindName(kind);
        deltas[i] = replicas_[i].storage->TotalStats() - before;
        std::vector<uint64_t> got;
        for (Oid oid : result->result.oids) got.push_back(oid.value());
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, oracle_values)
            << replicas_[i].label << " " << context << " plan="
            << result->plan << " kind=" << QueryKindName(kind);
        pages[i] = result->page_accesses;
      }
      // Invariant 2: parallelism never changes logical page accesses.
      EXPECT_EQ(pages[0], pages[1])
          << context << " kind=" << QueryKindName(kind) << " (skip off)";
      EXPECT_EQ(pages[2], pages[3])
          << context << " kind=" << QueryKindName(kind) << " (skip on)";
      // Invariant 3: skipping can only remove page accesses.
      EXPECT_LE(pages[2], pages[0])
          << context << " kind=" << QueryKindName(kind);
      // Invariant 5: the hot tier moves reads to hot hits one-for-one —
      // the sum must equal the baseline's reads for the same query, and
      // writes must be untouched.  Holds per hot replica even though the
      // raw split can differ between them (eviction tie-breaks are not
      // deterministic across replicas).
      for (size_t i = 4; i < replicas_.size(); ++i) {
        EXPECT_EQ(deltas[i].reads() + deltas[i].hots(), deltas[0].reads())
            << replicas_[i].label << " " << context
            << " kind=" << QueryKindName(kind);
        EXPECT_EQ(deltas[i].writes(), deltas[0].writes())
            << replicas_[i].label << " " << context
            << " kind=" << QueryKindName(kind);
      }
    }
  }

  void CheckAllKinds(Rng* rng, const char* context) {
    ElementSet probe;
    if (!oracle_.empty()) {
      size_t target_idx = rng->NextBelow(oracle_.size());
      auto it = oracle_.begin();
      std::advance(it, static_cast<long>(target_idx));
      probe = it->second;
    }
    ElementSet superset_q =
        probe.empty() ? rng->SampleWithoutReplacement(kDomain, 2)
                      : MakeHittingSupersetQuery(probe, 2, *rng);
    ElementSet subset_q =
        probe.empty()
            ? rng->SampleWithoutReplacement(kDomain, kDt + 4)
            : MakeHittingSubsetQuery(probe, kDomain, kDt + 4, *rng);
    ElementSet random_q = rng->SampleWithoutReplacement(kDomain, 3);
    CheckQuery(QueryKind::kSuperset, superset_q, context);
    CheckQuery(QueryKind::kProperSuperset, superset_q, context);
    CheckQuery(QueryKind::kSubset, subset_q, context);
    CheckQuery(QueryKind::kProperSubset, subset_q, context);
    if (!probe.empty()) CheckQuery(QueryKind::kEquals, probe, context);
    CheckQuery(QueryKind::kOverlaps, random_q, context);
  }

  std::vector<Oid> LiveOids() const {
    std::vector<Oid> out;
    for (const auto& [oid, set] : oracle_) out.push_back(Oid{oid});
    return out;
  }

  std::vector<Replica> replicas_;
  std::map<uint64_t, ElementSet> oracle_;  // live objects, by OID value
};

TEST_F(QueryDifferentialFuzzTest, ChurnedRepliasAgreeAcrossSkipAndThreads) {
  Rng rng(20260806);
  WorkloadConfig wconfig{64, kDomain, CardinalitySpec::Fixed(kDt),
                         SkewKind::kUniform, 0.99, 7};
  std::vector<ElementSet> seed_sets = MakeDatabase(wconfig);
  // Phase 1 — singleton inserts, with ∅ objects mixed in (they write no
  // signature bits and no postings; only the NIX roster sees them).
  InsertEverywhere(ElementSet{});
  for (int i = 0; i < 24; ++i) InsertEverywhere(seed_sets[i]);
  InsertEverywhere(ElementSet{});
  CheckAllKinds(&rng, "after inserts");
  // Phase 2 — delete a third (creates tombstones, empties slice bits).
  {
    std::vector<Oid> live = LiveOids();
    for (size_t i = 0; i < live.size(); i += 3) DeleteEverywhere(live[i]);
  }
  CheckAllKinds(&rng, "after deletes");
  // Phase 3 — batches mixing deletes with slot-reusing inserts, ∅ included
  // on both sides: one ∅ object dies, a new one is born in the same batch.
  {
    WriteBatch batch;
    uint64_t dead_empty = ~uint64_t{0};
    for (const auto& [oid, set] : oracle_) {
      if (set.empty()) {
        dead_empty = oid;
        batch.Delete(Oid{oid});
        break;
      }
    }
    std::vector<Oid> live = LiveOids();
    for (size_t i = 0; i < live.size(); i += 4) {
      if (live[i].value() != dead_empty) batch.Delete(live[i]);
    }
    for (int i = 24; i < 44; ++i) batch.Insert(seed_sets[i]);
    batch.Insert(ElementSet{});
    BatchEverywhere(batch);
  }
  CheckAllKinds(&rng, "after batch");
  // Phase 4 — compaction drops the tombstones and rebuilds summaries.
  CompactEverywhere();
  CheckAllKinds(&rng, "after compact");
  // Phase 5 — more churn on the compacted generation.
  {
    WriteBatch batch;
    std::vector<Oid> live = LiveOids();
    for (size_t i = 0; i < live.size(); i += 5) batch.Delete(live[i]);
    for (int i = 44; i < 56; ++i) batch.Insert(seed_sets[i]);
    BatchEverywhere(batch);
  }
  CheckAllKinds(&rng, "after post-compact batch");
}

// ∅ is a subset of every query: empty-set objects write no signature bits,
// no postings, and no B-tree entries, yet must surface as kSubset and
// kProperSubset answers from every facility.  This pins the nested-index
// bug where ∅ objects vanished from candidate sets — SSF/BSSF zero
// signatures pass the subset OR-scan naturally, but per-element posting
// lists never see ∅; only the explicit roster does.  The roster must
// survive single deletes, batch churn, and the compaction bulk-rebuild.
TEST_F(QueryDifferentialFuzzTest, EmptySetObjectsSurviveChurnEverywhere) {
  Rng rng(424242);
  InsertEverywhere(ElementSet{});  // into a fresh store
  WorkloadConfig wconfig{16, kDomain, CardinalitySpec::Fixed(kDt),
                         SkewKind::kUniform, 0.99, 17};
  std::vector<ElementSet> sets = MakeDatabase(wconfig);
  for (int i = 0; i < 10; ++i) InsertEverywhere(sets[i]);
  InsertEverywhere(ElementSet{});  // amid data
  std::vector<uint64_t> empty_oids;
  for (const auto& [oid, set] : oracle_) {
    if (set.empty()) empty_oids.push_back(oid);
  }
  ASSERT_EQ(empty_oids.size(), 2u);
  // Guard the guard: the oracle itself must classify ∅ as a subset and a
  // proper-subset hit for any non-empty query (CheckQuery then verifies
  // every facility × replica against it).
  ElementSet q = rng.SampleWithoutReplacement(kDomain, 3);
  for (QueryKind kind : {QueryKind::kSubset, QueryKind::kProperSubset}) {
    std::vector<uint64_t> ans = OracleAnswer(oracle_, kind, q);
    for (uint64_t oid : empty_oids) {
      ASSERT_TRUE(std::binary_search(ans.begin(), ans.end(), oid))
          << QueryKindName(kind);
    }
  }
  CheckAllKinds(&rng, "empty-set: after inserts");
  CheckQuery(QueryKind::kSubset, q, "empty-set: explicit subset");
  CheckQuery(QueryKind::kProperSubset, q, "empty-set: explicit proper");
  // Single delete of one ∅ object; the other must remain everywhere.
  DeleteEverywhere(Oid{empty_oids[0]});
  CheckAllKinds(&rng, "empty-set: after delete");
  CheckQuery(QueryKind::kSubset, q, "empty-set: subset after delete");
  // Batch: the surviving ∅ object dies and a fresh one is born in the same
  // batch, alongside a slot-reusing data insert.
  {
    WriteBatch batch;
    batch.Delete(Oid{empty_oids[1]});
    batch.Insert(ElementSet{});
    batch.Insert(sets[10]);
    BatchEverywhere(batch);
  }
  CheckAllKinds(&rng, "empty-set: after batch");
  CheckQuery(QueryKind::kSubset, q, "empty-set: subset after batch");
  // The roster must survive the compaction bulk-rebuild.
  CompactEverywhere();
  CheckAllKinds(&rng, "empty-set: after compact");
  CheckQuery(QueryKind::kSubset, q, "empty-set: subset after compact");
}

// Hammering one superset query warms the hot tier past its admission
// threshold: later runs must be served partly from pinned pages (hot hits
// strictly positive) while the identity reads + hot == baseline reads holds
// on every run, and the write path keeps pinned copies coherent (answers
// stay oracle-exact after churn mutates pages that are pinned).
TEST_F(QueryDifferentialFuzzTest, HotTierMovesReadsWithoutChangingThem) {
  Rng rng(7777);
  WorkloadConfig wconfig{32, kDomain, CardinalitySpec::Fixed(kDt),
                         SkewKind::kUniform, 0.99, 19};
  std::vector<ElementSet> sets = MakeDatabase(wconfig);
  for (int i = 0; i < 20; ++i) InsertEverywhere(sets[i]);
  Replica& base = replicas_[0];
  Replica& hot = replicas_[4];
  const ElementSet probe = sets[3];
  const ElementSet query = MakeHittingSupersetQuery(probe, 2, rng);
  uint64_t total_hot = 0;
  for (int round = 0; round < 6; ++round) {
    const IoStats base_before = base.storage->TotalStats();
    auto base_result =
        base.index->Query(QueryKind::kSuperset, query, PlanMode::kForceBssf);
    ASSERT_TRUE(base_result.ok()) << round;
    const IoStats base_delta = base.storage->TotalStats() - base_before;
    const IoStats hot_before = hot.storage->TotalStats();
    auto hot_result =
        hot.index->Query(QueryKind::kSuperset, query, PlanMode::kForceBssf);
    ASSERT_TRUE(hot_result.ok()) << round;
    const IoStats hot_delta = hot.storage->TotalStats() - hot_before;
    std::vector<uint64_t> base_oids, hot_oids;
    for (Oid oid : base_result->result.oids) base_oids.push_back(oid.value());
    for (Oid oid : hot_result->result.oids) hot_oids.push_back(oid.value());
    std::sort(base_oids.begin(), base_oids.end());
    std::sort(hot_oids.begin(), hot_oids.end());
    EXPECT_EQ(base_oids, hot_oids) << "round " << round;
    EXPECT_EQ(hot_delta.reads() + hot_delta.hots(), base_delta.reads())
        << "round " << round;
    total_hot += hot_delta.hots();
  }
  // Admission threshold is 2, so round 3 onward must actually hit the tier.
  EXPECT_GT(total_hot, 0u);
  // Write-path coherence: deleting the probe clears its slice bits in the
  // pinned copies too, so the hot-served scan must agree with the oracle.
  for (const auto& [oid, set] : oracle_) {
    if (set == probe) {
      DeleteEverywhere(Oid{oid});
      break;
    }
  }
  CheckQuery(QueryKind::kSuperset, query, "hot tier: after probe delete");
  CheckAllKinds(&rng, "hot tier: after probe delete");
}

// Deleting everything makes every slice page empty and every SSF page's
// live count zero: with the skip index on, a superset scan must skip all of
// its slice reads, and results must stay correct (empty) throughout.
TEST_F(QueryDifferentialFuzzTest, FullyTombstonedStoreSkipsEverything) {
  Rng rng(99);
  WorkloadConfig wconfig{16, kDomain, CardinalitySpec::Fixed(kDt),
                         SkewKind::kUniform, 0.99, 13};
  std::vector<ElementSet> sets = MakeDatabase(wconfig);
  for (const ElementSet& set : sets) InsertEverywhere(set);
  for (Oid oid : LiveOids()) DeleteEverywhere(oid);
  ASSERT_TRUE(oracle_.empty());
  ElementSet query = rng.SampleWithoutReplacement(kDomain, 2);
  // The skip-on BSSF replica must read no slice pages at all: every column
  // is dead (all slice pages are zero after the delete-path clears).
  Replica& skip_on = replicas_[2];
  const IoStats before = skip_on.index->bssf()->StageStats()[0].second;
  auto result = skip_on.index->Query(QueryKind::kSuperset, query,
                                     PlanMode::kForceBssf);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->result.oids.empty());
  const IoStats delta =
      skip_on.index->bssf()->StageStats()[0].second - before;
  EXPECT_EQ(delta.reads(), 0u);
  EXPECT_GT(delta.skips(), 0u);
  // And the replicas still agree everywhere.
  CheckAllKinds(&rng, "fully tombstoned");
}

// The WAL variant of the fuzz: the same four replicas run with
// enable_wal=true behind a fault injector, the churn is interrupted by
// crashes (every I/O of the interrupting operation fails, so it is never
// acknowledged and the oracle never records it), each replica is reopened
// on its torn storage, and the full differential query battery must still
// agree with the brute-force oracle over the ACKED operations only —
// recovery loses nothing acknowledged and invents nothing, at both thread
// counts and both skip-index settings.
class WalCrashFuzzTest : public QueryDifferentialFuzzTest {
 protected:
  void SetUp() override {
    struct Config {
      const char* label;
      bool skip;
      size_t threads;
    };
    for (const Config& c :
         {Config{"off-1t", false, 1}, Config{"off-4t", false, 4},
          Config{"on-1t", true, 1}, Config{"on-4t", true, 4}}) {
      Replica r;
      r.label = c.label;
      r.storage = std::make_unique<StorageManager>();
      auto injector = std::make_unique<FaultInjector>();
      r.storage->SetInterceptor(
          [inj = injector.get()](
              std::unique_ptr<PageFile> base) -> std::unique_ptr<PageFile> {
            return std::make_unique<FaultInjectingPageFile>(std::move(base),
                                                            inj);
          });
      SetIndex::Options options;
      options.maintain_ssf = true;
      options.maintain_bssf = true;
      options.maintain_nix = true;
      options.sig = {120, 3};
      options.capacity = 4096;
      options.num_threads = c.threads;
      options.enable_skip_index = c.skip;
      options.enable_wal = true;
      auto index = SetIndex::Create(r.storage.get(), "fuzz", options);
      ASSERT_TRUE(index.ok()) << index.status().ToString();
      r.index = std::move(*index);
      replicas_.push_back(std::move(r));
      injectors_.push_back(std::move(injector));
      options_.push_back(options);
    }
  }

  // Crashes every replica on the first I/O of `op`: the operation fails on
  // all of them, nothing is acknowledged, and the oracle stays untouched.
  void CrashEverywhereOn(const std::function<Status(SetIndex*)>& op) {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      injectors_[i]->CrashAt(injectors_[i]->ops());
      Status status = op(replicas_[i].index.get());
      EXPECT_FALSE(status.ok())
          << replicas_[i].label << ": crashed operation reported success";
      EXPECT_TRUE(injectors_[i]->crashed()) << replicas_[i].label;
    }
  }

  void ReopenEverywhere(const char* context) {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      injectors_[i]->Disarm();
      replicas_[i].index.reset();
      auto reopened =
          SetIndex::Open(replicas_[i].storage.get(), "fuzz", options_[i]);
      ASSERT_TRUE(reopened.ok())
          << replicas_[i].label << " " << context << ": "
          << reopened.status().ToString();
      replicas_[i].index = std::move(*reopened);
    }
  }

  std::vector<std::unique_ptr<FaultInjector>> injectors_;
  std::vector<SetIndex::Options> options_;
};

TEST_F(WalCrashFuzzTest, CrashAndReopenMidChurnMatchesOracleOverAckedOps) {
  Rng rng(20260808);
  WorkloadConfig wconfig{64, kDomain, CardinalitySpec::Fixed(kDt),
                         SkewKind::kUniform, 0.99, 21};
  std::vector<ElementSet> sets = MakeDatabase(wconfig);

  // Phase 1 — acked churn that recovery must carry across the crash: the
  // initial checkpoint happened inside Create, so ALL of this lives only in
  // the log until a later checkpoint.
  for (int i = 0; i < 20; ++i) InsertEverywhere(sets[i]);
  {
    std::vector<Oid> live = LiveOids();
    for (size_t i = 0; i < live.size(); i += 4) DeleteEverywhere(live[i]);
  }
  CheckAllKinds(&rng, "wal: before first crash");

  // Crash 1 — mid-singleton-insert, then recover from pure log replay.
  CrashEverywhereOn([&](SetIndex* index) {
    return index->Insert(sets[20]).status();
  });
  ReopenEverywhere("after crash 1");
  CheckAllKinds(&rng, "wal: recovered from insert crash");

  // Phase 2 — churn on the recovered indexes (slot reuse over tombstones).
  {
    WriteBatch batch;
    std::vector<Oid> live = LiveOids();
    for (size_t i = 0; i < live.size(); i += 3) batch.Delete(live[i]);
    for (int i = 20; i < 32; ++i) batch.Insert(sets[i]);
    BatchEverywhere(batch);
  }
  CheckAllKinds(&rng, "wal: after post-recovery batch");

  // Crash 2 — mid-batch; the whole group is unacked and must vanish.
  CrashEverywhereOn([&](SetIndex* index) {
    WriteBatch batch;
    std::vector<Oid> live = LiveOids();
    batch.Delete(live[0]);
    for (int i = 32; i < 35; ++i) batch.Insert(sets[i]);
    return index->ApplyBatch(batch).status();
  });
  ReopenEverywhere("after crash 2");
  CheckAllKinds(&rng, "wal: recovered from batch crash");

  // Phase 3 — checkpoint + compact so the log truncates, then crash a
  // compaction; the committed generation must keep serving.
  CompactEverywhere();
  CheckAllKinds(&rng, "wal: after compact");
  CrashEverywhereOn([](SetIndex* index) { return index->Compact(); });
  ReopenEverywhere("after crash 3");
  CheckAllKinds(&rng, "wal: recovered from compact crash");

  // Phase 4 — the recovered, twice-crashed replicas still take churn and
  // still agree on OID assignment everywhere.
  {
    WriteBatch batch;
    std::vector<Oid> live = LiveOids();
    for (size_t i = 0; i < live.size(); i += 5) batch.Delete(live[i]);
    for (int i = 35; i < 44; ++i) batch.Insert(sets[i]);
    BatchEverywhere(batch);
  }
  CheckAllKinds(&rng, "wal: final churn");
}

// ---------------------------------------------------------------------------
// Concurrent snapshot differential fuzz (DESIGN.md §14).
//
// One writer thread (the test body) drives seeded churn through four
// SynchronizedSetIndex replicas — {snapshots on, off} × {1, 4 reader
// threads} — with identical OID streams, while the reader threads run the
// whole time:
//
//   * On the snapshot replicas, readers pin a Snapshot and query LOCK-FREE.
//     Every mutation publishes exactly one epoch and Create publishes
//     epoch 1 (the empty index), so the state pinned at epoch E is, by
//     construction, the oracle after E-1 operations.  The writer appends
//     each post-op oracle to a shared history; a reader at epoch E must
//     match history[E-1] EXACTLY — the strongest possible statement that a
//     pinned scan is immune to concurrent churn.
//
//   * On the mutex replicas (snapshots off), readers query live under the
//     shared lock.  A live query sees some committed state inside its
//     [before, after] op-count window; it must match history[k] for one
//     k in that window — linearizability of the lock path.
//
// A long-lived snapshot pinned early survives deletes, batches and TWO
// compactions, and still answers for its own epoch at the end.  After the
// readers drain, all four replicas must agree with the final oracle AND
// with each other on logical page accesses — snapshots change concurrency,
// never results or paper-counted I/O.
// ---------------------------------------------------------------------------
class ConcurrentSnapshotFuzzTest : public ::testing::Test {
 protected:
  struct SyncReplica {
    std::string label;
    bool snapshots = false;
    int readers = 0;
    std::unique_ptr<StorageManager> storage;
    std::unique_ptr<SynchronizedSetIndex> index;
    // Committed operation count; readers bracket live queries with it.
    std::atomic<uint64_t> ops_applied{0};
  };

  void SetUp() override {
    struct Config {
      const char* label;
      bool snapshots;
      int readers;
    };
    for (const Config& c :
         {Config{"snap-1r", true, 1}, Config{"snap-4r", true, 4},
          Config{"mutex-1r", false, 1}, Config{"mutex-4r", false, 4}}) {
      auto r = std::make_unique<SyncReplica>();
      r->label = c.label;
      r->snapshots = c.snapshots;
      r->readers = c.readers;
      r->storage = std::make_unique<StorageManager>();
      SetIndex::Options options;
      options.maintain_ssf = true;
      options.maintain_bssf = true;
      options.maintain_nix = true;
      options.sig = {120, 3};
      options.capacity = 4096;
      options.enable_snapshots = c.snapshots;
      auto index =
          SynchronizedSetIndex::Create(r->storage.get(), "fuzz", options);
      ASSERT_TRUE(index.ok()) << index.status().ToString();
      r->index = std::move(*index);
      replicas_.push_back(std::move(r));
    }
    // history_[k] = oracle after k committed operations; Create published
    // epoch 1 = history_[0] = the empty index.
    history_.push_back({});
  }

  void TearDown() override {
    done_.store(true, std::memory_order_release);
    for (std::thread& t : readers_) {
      if (t.joinable()) t.join();
    }
  }

  // --- shared history (writer appends, readers look up) ---

  void PushHistory() {
    std::lock_guard<std::mutex> lock(history_mu_);
    history_.push_back(oracle_);
  }

  size_t HistorySize() {
    std::lock_guard<std::mutex> lock(history_mu_);
    return history_.size();
  }

  // Copies history_[epoch-1], waiting briefly if the writer has published
  // the epoch on replica 0 but not yet appended the oracle entry.
  bool OracleAtEpoch(uint64_t epoch, std::map<uint64_t, ElementSet>* out) {
    for (int spin = 0; spin < 10000; ++spin) {
      {
        std::lock_guard<std::mutex> lock(history_mu_);
        if (history_.size() >= epoch) {
          *out = history_[epoch - 1];
          return true;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  void Record(const std::string& label, const std::string& msg) {
    std::lock_guard<std::mutex> lock(errors_mu_);
    errors_.push_back(label + ": " + msg);
  }

  // --- churn: replica 0 first (it assigns the OIDs the oracle needs),
  // then the history entry, then the other replicas ---

  void InsertEverywhere(const ElementSet& set) {
    auto oid = replicas_[0]->index->Insert(set);
    ASSERT_TRUE(oid.ok());
    replicas_[0]->ops_applied.fetch_add(1, std::memory_order_release);
    oracle_[oid->value()] = set;
    PushHistory();
    for (size_t i = 1; i < replicas_.size(); ++i) {
      auto got = replicas_[i]->index->Insert(set);
      ASSERT_TRUE(got.ok()) << replicas_[i]->label;
      ASSERT_EQ(got->value(), oid->value()) << replicas_[i]->label;
      replicas_[i]->ops_applied.fetch_add(1, std::memory_order_release);
    }
    CheckEpochInvariant();
  }

  void DeleteEverywhere(Oid oid) {
    ASSERT_TRUE(replicas_[0]->index->Delete(oid).ok());
    replicas_[0]->ops_applied.fetch_add(1, std::memory_order_release);
    oracle_.erase(oid.value());
    PushHistory();
    for (size_t i = 1; i < replicas_.size(); ++i) {
      ASSERT_TRUE(replicas_[i]->index->Delete(oid).ok())
          << replicas_[i]->label;
      replicas_[i]->ops_applied.fetch_add(1, std::memory_order_release);
    }
    CheckEpochInvariant();
  }

  void BatchEverywhere(const WriteBatch& batch) {
    auto oids = replicas_[0]->index->ApplyBatch(batch);
    ASSERT_TRUE(oids.ok());
    replicas_[0]->ops_applied.fetch_add(1, std::memory_order_release);
    for (Oid oid : batch.deletes()) oracle_.erase(oid.value());
    for (size_t j = 0; j < batch.inserts().size(); ++j) {
      oracle_[(*oids)[j].value()] = batch.inserts()[j];
    }
    PushHistory();
    for (size_t i = 1; i < replicas_.size(); ++i) {
      auto got = replicas_[i]->index->ApplyBatch(batch);
      ASSERT_TRUE(got.ok()) << replicas_[i]->label;
      ASSERT_EQ(got->size(), oids->size());
      for (size_t j = 0; j < oids->size(); ++j) {
        ASSERT_EQ((*got)[j].value(), (*oids)[j].value())
            << replicas_[i]->label;
      }
      replicas_[i]->ops_applied.fetch_add(1, std::memory_order_release);
    }
    CheckEpochInvariant();
  }

  void CompactEverywhere() {
    ASSERT_TRUE(replicas_[0]->index->Compact().ok());
    replicas_[0]->ops_applied.fetch_add(1, std::memory_order_release);
    PushHistory();  // compaction changes no answers, but publishes an epoch
    for (size_t i = 1; i < replicas_.size(); ++i) {
      ASSERT_TRUE(replicas_[i]->index->Compact().ok())
          << replicas_[i]->label;
      replicas_[i]->ops_applied.fetch_add(1, std::memory_order_release);
    }
    CheckEpochInvariant();
  }

  // Every operation publishes exactly one epoch, so the published epoch on
  // the snapshot replicas always equals the history length.
  void CheckEpochInvariant() {
    const uint64_t expected = HistorySize();
    ASSERT_EQ(replicas_[0]->index->current_epoch(), expected);
    ASSERT_EQ(replicas_[1]->index->current_epoch(), expected);
  }

  // --- reader bodies ---

  static std::string Mismatch(uint64_t epoch, QueryKind kind, PlanMode mode,
                              size_t got, size_t want) {
    std::ostringstream os;
    os << "epoch=" << epoch << " kind=" << QueryKindName(kind)
       << " mode=" << static_cast<int>(mode) << ": got " << got
       << " oids, oracle has " << want;
    return os.str();
  }

  // Checks one snapshot query against the epoch's oracle; returns false and
  // records on mismatch.
  bool CheckSnapshotQuery(SyncReplica* r, Snapshot* snap,
                          const std::map<uint64_t, ElementSet>& oracle,
                          QueryKind kind, const ElementSet& query,
                          PlanMode mode) {
    auto result = snap->Query(kind, query, mode);
    if (!result.ok()) {
      Record(r->label, "snapshot query failed: " + result.status().ToString());
      return false;
    }
    std::vector<uint64_t> got;
    for (Oid oid : result->result.oids) got.push_back(oid.value());
    std::sort(got.begin(), got.end());
    const std::vector<uint64_t> want = OracleAnswer(oracle, kind, query);
    if (got != want) {
      Record(r->label,
             Mismatch(snap->epoch(), kind, mode, got.size(), want.size()));
      return false;
    }
    return true;
  }

  // Snapshot reader: pin an epoch, fetch its oracle, verify every forced
  // facility agrees, loop until told to stop.
  void SnapshotReaderLoop(SyncReplica* r, int reader_id, size_t slot) {
    Rng rng(static_cast<uint64_t>(0xC0FFEE + 131 * reader_id));
    while (!done_.load(std::memory_order_acquire)) {
      auto snap_or = r->index->GetSnapshot();
      if (!snap_or.ok()) {
        Record(r->label,
               "GetSnapshot failed: " + snap_or.status().ToString());
        return;
      }
      std::unique_ptr<Snapshot> snap = std::move(*snap_or);
      std::map<uint64_t, ElementSet> oracle;
      if (!OracleAtEpoch(snap->epoch(), &oracle)) {
        Record(r->label, "no oracle for pinned epoch (writer stalled?)");
        return;
      }
      if (snap->num_objects() != oracle.size()) {
        Record(r->label, "num_objects mismatch at epoch " +
                             std::to_string(snap->epoch()));
        return;
      }
      ElementSet probe;
      if (!oracle.empty()) {
        auto it = oracle.begin();
        std::advance(it, static_cast<long>(rng.NextBelow(oracle.size())));
        probe = it->second;
      }
      const ElementSet superset_q =
          probe.empty() ? rng.SampleWithoutReplacement(kDomain, 2)
                        : ElementSet{probe[0], probe[1]};
      const ElementSet overlap_q = rng.SampleWithoutReplacement(kDomain, 3);
      bool ok = true;
      for (PlanMode mode : {PlanMode::kForceSsf, PlanMode::kForceBssf,
                            PlanMode::kForceNix}) {
        ok = CheckSnapshotQuery(r, snap.get(), oracle, QueryKind::kSuperset,
                                superset_q, mode) &&
             ok;
        ok = CheckSnapshotQuery(r, snap.get(), oracle, QueryKind::kOverlaps,
                                overlap_q, mode) &&
             ok;
        if (!probe.empty()) {
          ok = CheckSnapshotQuery(r, snap.get(), oracle, QueryKind::kSubset,
                                  probe, mode) &&
               ok;
        }
      }
      if (!probe.empty()) {
        ok = CheckSnapshotQuery(r, snap.get(), oracle, QueryKind::kEquals,
                                probe, PlanMode::kForceSsf) &&
             ok;
      }
      if (!ok) return;  // already recorded; stop this reader
      reader_iters_[slot].fetch_add(1, std::memory_order_release);
    }
  }

  // Live reader (snapshots off): a query under the shared lock must match
  // the oracle at SOME committed op count inside its observation window.
  void LiveReaderLoop(SyncReplica* r, int reader_id, size_t slot) {
    Rng rng(static_cast<uint64_t>(0xBEEF + 131 * reader_id));
    constexpr std::array<QueryKind, 3> kKinds = {
        QueryKind::kSuperset, QueryKind::kSubset, QueryKind::kOverlaps};
    constexpr std::array<PlanMode, 3> kModes = {
        PlanMode::kForceSsf, PlanMode::kForceBssf, PlanMode::kForceNix};
    while (!done_.load(std::memory_order_acquire)) {
      const QueryKind kind = kKinds[rng.NextBelow(kKinds.size())];
      const PlanMode mode = kModes[rng.NextBelow(kModes.size())];
      const ElementSet query = rng.SampleWithoutReplacement(
          kDomain, kind == QueryKind::kSubset ? kDt + 4 : 2);
      const uint64_t k1 = r->ops_applied.load(std::memory_order_acquire);
      auto result = r->index->Query(kind, query, mode);
      const uint64_t k2 = r->ops_applied.load(std::memory_order_acquire);
      if (!result.ok()) {
        Record(r->label, "live query failed: " + result.status().ToString());
        return;
      }
      std::vector<uint64_t> got;
      for (Oid oid : result->result.oids) got.push_back(oid.value());
      std::sort(got.begin(), got.end());
      bool matched = false;
      {
        std::lock_guard<std::mutex> lock(history_mu_);
        // The +1 covers an op that committed between the query's return and
        // the k2 load; clamp to what the writer has appended.
        const size_t hi =
            std::min<size_t>(static_cast<size_t>(k2) + 1, history_.size() - 1);
        for (size_t k = static_cast<size_t>(k1); k <= hi && !matched; ++k) {
          matched = got == OracleAnswer(history_[k], kind, query);
        }
      }
      if (!matched) {
        Record(r->label, Mismatch(k1, kind, mode, got.size(),
                                  static_cast<size_t>(k2)));
        return;
      }
      reader_iters_[slot].fetch_add(1, std::memory_order_release);
    }
  }

  void StartReaders() {
    size_t slot = 0;
    for (auto& r : replicas_) {
      for (int i = 0; i < r->readers; ++i, ++slot) {
        SyncReplica* rep = r.get();
        const size_t s = slot;
        if (rep->snapshots) {
          readers_.emplace_back(
              [this, rep, i, s] { SnapshotReaderLoop(rep, i, s); });
        } else {
          readers_.emplace_back(
              [this, rep, i, s] { LiveReaderLoop(rep, i, s); });
        }
      }
    }
    num_readers_ = slot;
  }

  // Blocks (bounded) until every reader finished at least `min_iters` full
  // check iterations — proof the readers truly overlap the churn.
  void WaitForReaderProgress(uint64_t min_iters) {
    for (int spin = 0; spin < 30000; ++spin) {
      bool all = true;
      for (size_t s = 0; s < num_readers_; ++s) {
        all = all &&
              reader_iters_[s].load(std::memory_order_acquire) >= min_iters;
      }
      if (all) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "readers made no progress during churn";
  }

  void StopReaders() {
    done_.store(true, std::memory_order_release);
    for (std::thread& t : readers_) t.join();
    readers_.clear();
  }

  std::vector<Oid> LiveOids() const {
    std::vector<Oid> out;
    for (const auto& [oid, set] : oracle_) out.push_back(Oid{oid});
    return out;
  }

  std::vector<std::unique_ptr<SyncReplica>> replicas_;
  std::map<uint64_t, ElementSet> oracle_;  // writer-private latest state

  std::mutex history_mu_;
  std::vector<std::map<uint64_t, ElementSet>> history_;

  std::mutex errors_mu_;
  std::vector<std::string> errors_;

  std::vector<std::thread> readers_;
  std::array<std::atomic<uint64_t>, 16> reader_iters_{};
  size_t num_readers_ = 0;
  std::atomic<bool> done_{false};
};

TEST_F(ConcurrentSnapshotFuzzTest, PinnedReadersMatchOracleAtEveryEpoch) {
  Rng rng(20260809);
  WorkloadConfig wconfig{160, kDomain, CardinalitySpec::Fixed(kDt),
                         SkewKind::kUniform, 0.99, 31};
  std::vector<ElementSet> sets = MakeDatabase(wconfig);
  size_t next_set = 0;

  StartReaders();

  // A snapshot pinned early must keep answering for ITS epoch through all
  // the churn below, including two compactions.
  std::unique_ptr<Snapshot> early;
  std::map<uint64_t, ElementSet> early_oracle;

  constexpr int kOps = 60;
  for (int op = 0; op < kOps; ++op) {
    if (op == 20 || op == 45) {
      CompactEverywhere();
    } else {
      const uint64_t pick = rng.NextBelow(100);
      if (pick < 50 || oracle_.empty()) {
        InsertEverywhere(sets[next_set++ % sets.size()]);
      } else if (pick < 75) {
        std::vector<Oid> live = LiveOids();
        DeleteEverywhere(live[rng.NextBelow(live.size())]);
      } else {
        WriteBatch batch;
        std::vector<Oid> live = LiveOids();
        for (size_t i = 0; i < live.size() && batch.deletes().size() < 4;
             i += 4) {
          batch.Delete(live[i]);
        }
        for (int j = 0; j < 3; ++j) {
          batch.Insert(sets[next_set++ % sets.size()]);
        }
        BatchEverywhere(batch);
      }
    }
    if (op == 12) {
      auto snap = replicas_[1]->index->GetSnapshot();
      ASSERT_TRUE(snap.ok());
      early = std::move(*snap);
      early_oracle = oracle_;
      ASSERT_EQ(early->epoch(), HistorySize());
    }
    if (op == 30) WaitForReaderProgress(1);
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }

  // Readers must have run DURING the churn, not just before/after.
  WaitForReaderProgress(2);
  StopReaders();
  {
    std::lock_guard<std::mutex> lock(errors_mu_);
    for (const std::string& e : errors_) ADD_FAILURE() << e;
    ASSERT_TRUE(errors_.empty());
  }

  // The early pin still answers for its own epoch, 48 operations and two
  // compactions later.
  ASSERT_NE(early, nullptr);
  EXPECT_EQ(early->num_objects(), early_oracle.size());
  ElementSet early_probe = early_oracle.begin()->second;
  for (PlanMode mode :
       {PlanMode::kForceSsf, PlanMode::kForceBssf, PlanMode::kForceNix}) {
    auto result =
        early->Query(QueryKind::kSuperset,
                     ElementSet{early_probe[0], early_probe[1]}, mode);
    ASSERT_TRUE(result.ok());
    std::vector<uint64_t> got;
    for (Oid oid : result->result.oids) got.push_back(oid.value());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, OracleAnswer(early_oracle, QueryKind::kSuperset,
                                ElementSet{early_probe[0], early_probe[1]}))
        << "early pin, mode " << static_cast<int>(mode);
  }

  // Quiesced: all four replicas agree with the final oracle on results AND
  // with each other on logical page accesses — enabling snapshots changes
  // nothing the paper counts.
  ASSERT_FALSE(oracle_.empty());
  ElementSet probe = oracle_.begin()->second;
  const ElementSet superset_q{probe[0], probe[1]};
  struct Case {
    QueryKind kind;
    const ElementSet& query;
  };
  for (const Case& c : {Case{QueryKind::kSuperset, superset_q},
                        Case{QueryKind::kSubset, probe},
                        Case{QueryKind::kEquals, probe}}) {
    for (PlanMode mode :
         {PlanMode::kForceSsf, PlanMode::kForceBssf, PlanMode::kForceNix}) {
      const std::vector<uint64_t> want = OracleAnswer(oracle_, c.kind, c.query);
      uint64_t pages0 = 0;
      for (size_t i = 0; i < replicas_.size(); ++i) {
        auto result = replicas_[i]->index->Query(c.kind, c.query, mode);
        ASSERT_TRUE(result.ok()) << replicas_[i]->label;
        std::vector<uint64_t> got;
        for (Oid oid : result->result.oids) got.push_back(oid.value());
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, want) << replicas_[i]->label;
        if (i == 0) {
          pages0 = result->page_accesses;
        } else {
          EXPECT_EQ(result->page_accesses, pages0)
              << replicas_[i]->label << " kind=" << QueryKindName(c.kind);
        }
      }
    }
  }

  // And a snapshot of the final state equals the live answers.
  auto final_snap = replicas_[0]->index->GetSnapshot();
  ASSERT_TRUE(final_snap.ok());
  EXPECT_EQ((*final_snap)->epoch(), HistorySize());
  auto snap_result =
      (*final_snap)->Query(QueryKind::kSuperset, superset_q, PlanMode::kAuto);
  ASSERT_TRUE(snap_result.ok());
  std::vector<uint64_t> snap_got;
  for (Oid oid : snap_result->result.oids) snap_got.push_back(oid.value());
  std::sort(snap_got.begin(), snap_got.end());
  EXPECT_EQ(snap_got, OracleAnswer(oracle_, QueryKind::kSuperset, superset_q));
}

}  // namespace
}  // namespace sigsetdb
