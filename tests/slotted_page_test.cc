#include "storage/slotted_page.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace sigsetdb {
namespace {

std::string GetRecord(const SlottedPage& sp, uint16_t slot) {
  uint16_t len = 0;
  const uint8_t* data = sp.Get(slot, &len);
  if (data == nullptr) return "";
  return std::string(reinterpret_cast<const char*>(data), len);
}

uint16_t MustInsert(SlottedPage* sp, const std::string& rec) {
  auto slot = sp->Insert(reinterpret_cast<const uint8_t*>(rec.data()),
                         static_cast<uint16_t>(rec.size()));
  EXPECT_TRUE(slot.has_value());
  return *slot;
}

TEST(SlottedPageTest, InitProducesEmptyPage) {
  Page page;
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  EXPECT_EQ(sp.num_slots(), 0u);
  EXPECT_GT(sp.FreeSpace(), kPageSize - 16);
}

TEST(SlottedPageTest, InsertAndGet) {
  Page page;
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  uint16_t s0 = MustInsert(&sp, "hello");
  uint16_t s1 = MustInsert(&sp, "world!");
  EXPECT_EQ(s0, 0u);
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(GetRecord(sp, 0), "hello");
  EXPECT_EQ(GetRecord(sp, 1), "world!");
}

TEST(SlottedPageTest, GetOutOfRangeReturnsNull) {
  Page page;
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  uint16_t len = 0;
  EXPECT_EQ(sp.Get(0, &len), nullptr);
  MustInsert(&sp, "x");
  EXPECT_EQ(sp.Get(1, &len), nullptr);
}

TEST(SlottedPageTest, DeleteLeavesTombstone) {
  Page page;
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  MustInsert(&sp, "a");
  MustInsert(&sp, "b");
  sp.Delete(0);
  EXPECT_EQ(GetRecord(sp, 0), "");
  EXPECT_EQ(GetRecord(sp, 1), "b");
  EXPECT_EQ(sp.num_slots(), 2u);  // slot numbers are stable
}

TEST(SlottedPageTest, FillsUntilFull) {
  Page page;
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  std::string rec(100, 'r');
  int inserted = 0;
  while (sp.Insert(reinterpret_cast<const uint8_t*>(rec.data()),
                   static_cast<uint16_t>(rec.size()))
             .has_value()) {
    ++inserted;
  }
  // 104 bytes per record (100 + 4-byte slot entry) into ~4092 usable bytes.
  EXPECT_EQ(inserted, 39);
  // All records intact after filling.
  for (int i = 0; i < inserted; ++i) {
    EXPECT_EQ(GetRecord(sp, static_cast<uint16_t>(i)), rec);
  }
}

TEST(SlottedPageTest, FreeSpaceDecreasesMonotonically) {
  Page page;
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  size_t prev = sp.FreeSpace();
  for (int i = 0; i < 10; ++i) {
    MustInsert(&sp, "0123456789");
    size_t now = sp.FreeSpace();
    EXPECT_LT(now, prev);
    prev = now;
  }
}

TEST(SlottedPageTest, UpdateInPlaceShrinkOk) {
  Page page;
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  MustInsert(&sp, "long-record");
  EXPECT_TRUE(sp.UpdateInPlace(0, reinterpret_cast<const uint8_t*>("tiny"),
                               4));
  EXPECT_EQ(GetRecord(sp, 0), "tiny");
}

TEST(SlottedPageTest, UpdateInPlaceGrowRejected) {
  Page page;
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  MustInsert(&sp, "tiny");
  EXPECT_FALSE(sp.UpdateInPlace(
      0, reinterpret_cast<const uint8_t*>("much-longer-record"), 18));
  EXPECT_EQ(GetRecord(sp, 0), "tiny");
}

TEST(SlottedPageTest, MaxSizeRecordFits) {
  Page page;
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  // Header (4) + one slot entry (4) leaves kPageSize - 8 bytes.
  std::string rec(kPageSize - 8, 'm');
  auto slot = sp.Insert(reinterpret_cast<const uint8_t*>(rec.data()),
                        static_cast<uint16_t>(rec.size()));
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(GetRecord(sp, 0).size(), kPageSize - 8);
  EXPECT_EQ(sp.FreeSpace(), 0u);
}

TEST(SlottedPageTest, OversizeRecordRejected) {
  Page page;
  SlottedPage::Init(&page);
  SlottedPage sp(&page);
  std::string rec(kPageSize - 7, 'm');
  EXPECT_FALSE(sp.Insert(reinterpret_cast<const uint8_t*>(rec.data()),
                         static_cast<uint16_t>(rec.size()))
                   .has_value());
}

}  // namespace
}  // namespace sigsetdb
