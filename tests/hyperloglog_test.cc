#include "util/hyperloglog.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

TEST(HyperLogLogTest, EmptyEstimatesZero) {
  HyperLogLog hll(12);
  EXPECT_DOUBLE_EQ(hll.Estimate(), 0.0);
}

TEST(HyperLogLogTest, SmallCardinalitiesExactViaLinearCounting) {
  HyperLogLog hll(12);
  for (uint64_t v = 0; v < 50; ++v) hll.Add(v * 977 + 13);
  EXPECT_NEAR(hll.Estimate(), 50.0, 3.0);
}

TEST(HyperLogLogTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int round = 0; round < 100; ++round) {
    for (uint64_t v = 0; v < 200; ++v) hll.Add(v);
  }
  EXPECT_NEAR(hll.Estimate(), 200.0, 10.0);
}

// Accuracy sweep: relative error must stay within ~5 sigma of the HLL bound
// 1.04/sqrt(m) across magnitudes.
class HllAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HllAccuracyTest, RelativeErrorWithinBound) {
  const uint64_t n = GetParam();
  HyperLogLog hll(12);
  Rng rng(n);
  for (uint64_t i = 0; i < n; ++i) hll.Add(rng.Next());
  // rng.Next() collisions are negligible at these sizes.
  double error = std::abs(hll.Estimate() - static_cast<double>(n)) /
                 static_cast<double>(n);
  double bound = 1.04 / std::sqrt(4096.0);  // ≈ 1.6 %
  EXPECT_LT(error, 5 * bound) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, HllAccuracyTest,
                         ::testing::Values(1000, 13000, 100000, 1000000));

TEST(HyperLogLogTest, PaperDomainCardinality) {
  // The paper's V = 13,000 dense domain ids.
  HyperLogLog hll(12);
  for (uint64_t v = 0; v < 13000; ++v) hll.Add(v);
  EXPECT_NEAR(hll.Estimate(), 13000.0, 13000.0 * 0.08);
}

TEST(HyperLogLogTest, MergeEqualsUnion) {
  HyperLogLog a(10), b(10), u(10);
  for (uint64_t v = 0; v < 5000; ++v) {
    a.Add(v);
    u.Add(v);
  }
  for (uint64_t v = 2500; v < 9000; ++v) {
    b.Add(v);
    u.Add(v);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), u.Estimate());
}

TEST(HyperLogLogTest, ClearResets) {
  HyperLogLog hll(8);
  for (uint64_t v = 0; v < 1000; ++v) hll.Add(v);
  hll.Clear();
  EXPECT_DOUBLE_EQ(hll.Estimate(), 0.0);
}

TEST(HyperLogLogTest, RegisterRoundTrip) {
  HyperLogLog a(12);
  for (uint64_t v = 0; v < 7777; ++v) a.Add(v * 31 + 1);
  HyperLogLog b(12);
  ASSERT_TRUE(b.LoadRegisters(a.registers().data(), a.registers().size()));
  EXPECT_DOUBLE_EQ(b.Estimate(), a.Estimate());
  // Size mismatch rejected.
  HyperLogLog c(10);
  EXPECT_FALSE(c.LoadRegisters(a.registers().data(), a.registers().size()));
}

TEST(HyperLogLogTest, PrecisionTradesStateForAccuracy) {
  Rng rng(5);
  std::vector<uint64_t> values;
  for (int i = 0; i < 50000; ++i) values.push_back(rng.Next());
  HyperLogLog coarse(6), fine(14);
  for (uint64_t v : values) {
    coarse.Add(v);
    fine.Add(v);
  }
  double coarse_err = std::abs(coarse.Estimate() - 50000.0) / 50000.0;
  double fine_err = std::abs(fine.Estimate() - 50000.0) / 50000.0;
  EXPECT_LT(fine_err, 0.05);
  EXPECT_LT(coarse_err, 0.6);
  EXPECT_EQ(coarse.num_registers(), 64u);
  EXPECT_EQ(fine.num_registers(), 16384u);
}

}  // namespace
}  // namespace sigsetdb
