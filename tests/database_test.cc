#include "db/database.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

// Two attributes mirroring the paper's Student class: `courses` (dense ids
// standing in for Course OIDs) and `hobbies` (small string-ish domain).
Database::Options StudentOptions() {
  Database::Options options;
  Database::AttributeOptions courses;
  courses.name = "courses";
  courses.sig = {128, 2};
  courses.domain_estimate = 300;
  Database::AttributeOptions hobbies;
  hobbies.name = "hobbies";
  hobbies.sig = {128, 2};
  hobbies.domain_estimate = 40;
  options.attributes = {courses, hobbies};
  options.capacity = 4096;
  return options;
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Create(&storage_, "Student", StudentOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    Rng rng(1);
    for (int i = 0; i < 400; ++i) {
      std::vector<ElementSet> attrs = {
          rng.SampleWithoutReplacement(300, 6),   // courses
          rng.SampleWithoutReplacement(40, 3)};   // hobbies
      auto oid = db_->Insert(attrs);
      ASSERT_TRUE(oid.ok());
      oids_.push_back(*oid);
      values_.push_back(std::move(attrs));
    }
  }

  std::vector<Oid> BruteForce(const std::vector<SetPredicate>& preds) {
    std::vector<Oid> out;
    for (size_t i = 0; i < values_.size(); ++i) {
      bool ok = true;
      for (const SetPredicate& p : preds) {
        size_t attr = p.attribute == "courses" ? 0 : 1;
        ElementSet query = p.query;
        NormalizeSet(&query);
        StoredObject probe{oids_[i], values_[i][attr]};
        bool hit = false;
        switch (p.kind) {
          case QueryKind::kSuperset:
            hit = SatisfiesSuperset(probe, query);
            break;
          case QueryKind::kSubset:
            hit = SatisfiesSubset(probe, query);
            break;
          case QueryKind::kProperSuperset:
            hit = SatisfiesProperSuperset(probe, query);
            break;
          case QueryKind::kProperSubset:
            hit = SatisfiesProperSubset(probe, query);
            break;
          case QueryKind::kEquals:
            hit = SatisfiesEquals(probe, query);
            break;
          case QueryKind::kOverlaps:
            hit = SatisfiesOverlap(probe, query);
            break;
        }
        if (!hit) {
          ok = false;
          break;
        }
      }
      if (ok) out.push_back(oids_[i]);
    }
    return out;
  }

  void ExpectQueryMatches(const std::vector<SetPredicate>& preds) {
    auto result = db_->Query(preds);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<Oid> got = result->oids;
    std::sort(got.begin(), got.end());
    std::vector<Oid> want = BruteForce(preds);
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }

  StorageManager storage_;
  std::unique_ptr<Database> db_;
  std::vector<Oid> oids_;
  std::vector<std::vector<ElementSet>> values_;
};

TEST_F(DatabaseTest, ValidationRejectsBadOptions) {
  StorageManager storage;
  Database::Options empty;
  EXPECT_EQ(Database::Create(&storage, "X", empty).status().code(),
            StatusCode::kInvalidArgument);
  Database::Options unnamed = StudentOptions();
  unnamed.attributes[0].name = "";
  EXPECT_EQ(Database::Create(&storage, "X", unnamed).status().code(),
            StatusCode::kInvalidArgument);
  Database::Options no_facility = StudentOptions();
  no_facility.attributes[1].maintain_bssf = false;
  no_facility.attributes[1].maintain_nix = false;
  EXPECT_EQ(Database::Create(&storage, "X", no_facility).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DatabaseTest, SingleAttributeQueriesMatchBruteForce) {
  ExpectQueryMatches({{"courses", QueryKind::kSuperset,
                       {values_[5][0][0], values_[5][0][2]}}});
  Rng rng(2);
  ExpectQueryMatches(
      {{"hobbies", QueryKind::kSubset, rng.SampleWithoutReplacement(40, 20)}});
  ExpectQueryMatches({{"hobbies", QueryKind::kOverlaps, {1, 2}}});
  ExpectQueryMatches({{"courses", QueryKind::kEquals, values_[9][0]}});
}

TEST_F(DatabaseTest, ConjunctionAcrossAttributes) {
  // The paper's flagship compound query shape: courses ⊇ X and hobbies ⊆ Y.
  Rng rng(3);
  std::vector<SetPredicate> preds = {
      {"courses", QueryKind::kSuperset, {values_[7][0][1]}},
      {"hobbies", QueryKind::kSubset, rng.SampleWithoutReplacement(40, 25)}};
  ExpectQueryMatches(preds);
  auto result = db_->Query(preds);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->driver.empty());
  EXPECT_EQ(result->num_candidates,
            result->oids.size() + result->num_false_drops);
}

TEST_F(DatabaseTest, ConjunctionOnSameAttribute) {
  std::vector<SetPredicate> preds = {
      {"courses", QueryKind::kSuperset, {values_[11][0][0]}},
      {"courses", QueryKind::kSuperset, {values_[11][0][3]}}};
  ExpectQueryMatches(preds);
}

TEST_F(DatabaseTest, DriverPicksCheaperPredicate) {
  // A 2-element superset predicate is far more selective (and cheaper)
  // than a huge subset predicate; the driver should be the former.
  Rng rng(4);
  std::vector<SetPredicate> preds = {
      {"hobbies", QueryKind::kSubset, rng.SampleWithoutReplacement(40, 35)},
      {"courses", QueryKind::kSuperset,
       {values_[3][0][0], values_[3][0][1]}}};
  auto result = db_->Query(preds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->driver.rfind("courses", 0), 0u) << result->driver;
}

TEST_F(DatabaseTest, UnknownAttributeRejected) {
  EXPECT_EQ(db_->Query({{"gpa", QueryKind::kSuperset, {1}}}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(DatabaseTest, EmptyInputsRejected) {
  EXPECT_EQ(db_->Query({}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db_->Query({{"courses", QueryKind::kSuperset, {}}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DatabaseTest, DeleteRemovesFromAllAttributes) {
  ASSERT_TRUE(db_->Delete(oids_[0]).ok());
  auto by_course = db_->Query(
      {{"courses", QueryKind::kSuperset, {values_[0][0][0]}}});
  ASSERT_TRUE(by_course.ok());
  EXPECT_TRUE(std::find(by_course->oids.begin(), by_course->oids.end(),
                        oids_[0]) == by_course->oids.end());
  auto by_hobby = db_->Query(
      {{"hobbies", QueryKind::kSuperset, {values_[0][1][0]}}});
  ASSERT_TRUE(by_hobby.ok());
  EXPECT_TRUE(std::find(by_hobby->oids.begin(), by_hobby->oids.end(),
                        oids_[0]) == by_hobby->oids.end());
  // Re-run a brute-force-checked query over the survivors.
  values_.erase(values_.begin());
  oids_.erase(oids_.begin());
  ExpectQueryMatches({{"courses", QueryKind::kSuperset, {values_[4][0][0]}}});
}

TEST_F(DatabaseTest, CheckpointAndReopenOnDisk) {
  std::string dir = "/tmp/sigsetdb_dbtest_" + std::to_string(::getpid());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  std::vector<Oid> expected;
  {
    StorageManager storage(dir);
    auto db = Database::Create(&storage, "Student", StudentOptions());
    ASSERT_TRUE(db.ok());
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*db)
                      ->Insert({rng.SampleWithoutReplacement(300, 6),
                                rng.SampleWithoutReplacement(40, 3)})
                      .ok());
    }
    auto result = (*db)->Query({{"courses", QueryKind::kOverlaps, {5, 6}}});
    ASSERT_TRUE(result.ok());
    expected = result->oids;
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  {
    StorageManager storage(dir);
    auto db = Database::Open(&storage, "Student", StudentOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ((*db)->num_objects(), 200u);
    auto result = (*db)->Query({{"courses", QueryKind::kOverlaps, {5, 6}}});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->oids, expected);
  }
  std::string cmd = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

TEST_F(DatabaseTest, AutoDomainEstimatePerAttribute) {
  Database::Options options = StudentOptions();
  options.attributes[0].domain_estimate = 0;  // auto
  options.attributes[1].domain_estimate = 0;
  StorageManager storage;
  auto db = Database::Create(&storage, "Auto", options);
  ASSERT_TRUE(db.ok());
  Rng rng(41);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*db)
                    ->Insert({rng.SampleWithoutReplacement(300, 6),
                              rng.SampleWithoutReplacement(40, 3)})
                    .ok());
  }
  EXPECT_NEAR(static_cast<double>((*db)->DomainEstimate(0)), 300.0, 30.0);
  EXPECT_NEAR(static_cast<double>((*db)->DomainEstimate(1)), 40.0, 6.0);
  auto result = (*db)->Query({{"hobbies", QueryKind::kSuperset, {1, 2}}});
  ASSERT_TRUE(result.ok());
}

TEST_F(DatabaseTest, AttributeIndexLookup) {
  auto courses = db_->AttributeIndex("courses");
  ASSERT_TRUE(courses.ok());
  EXPECT_EQ(*courses, 0u);
  auto hobbies = db_->AttributeIndex("hobbies");
  ASSERT_TRUE(hobbies.ok());
  EXPECT_EQ(*hobbies, 1u);
  EXPECT_EQ(db_->attribute_name(1), "hobbies");
  EXPECT_EQ(db_->num_attributes(), 2u);
}

}  // namespace
}  // namespace sigsetdb
