#include "util/math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sigsetdb {
namespace {

TEST(MathTest, LogFactorialSmallValues) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(MathTest, LogChooseMatchesSmallCases) {
  EXPECT_NEAR(std::exp(LogChoose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogChoose(10, 5)), 252.0, 1e-6);
  EXPECT_NEAR(std::exp(LogChoose(52, 5)), 2598960.0, 1e-3);
}

TEST(MathTest, LogChooseBoundaryCases) {
  EXPECT_DOUBLE_EQ(LogChoose(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogChoose(7, 7), 0.0);
  EXPECT_TRUE(std::isinf(LogChoose(7, 8)));
  EXPECT_TRUE(std::isinf(LogChoose(7, -1)));
  EXPECT_TRUE(std::isinf(LogChoose(-1, 0)));
}

TEST(MathTest, ChooseRatioExactSmallCase) {
  // C(4,2)/C(6,3) = 6/20.
  EXPECT_NEAR(ChooseRatio(4, 2, 6, 3), 0.3, 1e-12);
}

TEST(MathTest, ChooseRatioZeroNumerator) {
  EXPECT_DOUBLE_EQ(ChooseRatio(3, 5, 6, 3), 0.0);
}

TEST(MathTest, ChooseRatioPaperScale) {
  // Probability a fixed element is in a uniform 10-subset of 13000:
  // C(12999,9)/C(13000,10) = 10/13000.
  EXPECT_NEAR(ChooseRatio(12999, 9, 13000, 10), 10.0 / 13000.0, 1e-12);
}

TEST(MathTest, HypergeometricSumsToOne) {
  double sum = 0.0;
  for (int j = 0; j <= 10; ++j) sum += HypergeometricPmf(13000, 100, 10, j);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MathTest, HypergeometricSmallCase) {
  // Draw 2 from {1..4} with 2 marked: P(exactly 1 marked) = 4/6.
  EXPECT_NEAR(HypergeometricPmf(4, 2, 2, 1), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(HypergeometricPmf(4, 2, 2, 2), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(HypergeometricPmf(4, 2, 2, 0), 1.0 / 6.0, 1e-12);
}

TEST(MathTest, HypergeometricImpossibleOutcomes) {
  EXPECT_DOUBLE_EQ(HypergeometricPmf(10, 3, 5, 4), 0.0);  // j > dq
  EXPECT_DOUBLE_EQ(HypergeometricPmf(10, 9, 5, 0), 0.0);  // dt - j > v - dq
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0);
  EXPECT_EQ(CeilDiv(1, 4), 1);
  EXPECT_EQ(CeilDiv(4, 4), 1);
  EXPECT_EQ(CeilDiv(5, 4), 2);
  EXPECT_EQ(CeilDiv(32000, 512), 63);  // the paper's SC_OID
}

}  // namespace
}  // namespace sigsetdb
