#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sigsetdb {
namespace {

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  bool ran = false;
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran);
  // ParallelFor also degrades to the serial loop.
  std::vector<int> marks(10, 0);
  pool.ParallelFor(10, 4, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) marks[i] = 1;
  });
  EXPECT_EQ(std::accumulate(marks.begin(), marks.end(), 0), 10);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 17u, 1000u}) {
    for (size_t workers : {1u, 2u, 4u, 7u}) {
      std::vector<std::atomic<int>> counts(n);
      for (auto& c : counts) c = 0;
      pool.ParallelFor(n, workers, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ++counts[i];
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(counts[i].load(), 1) << "n=" << n << " w=" << workers
                                       << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForRangesAreContiguousAndOrdered) {
  // Worker w's range must precede worker w+1's — the merge step in the
  // executors concatenates per-worker output in worker order and relies on
  // this to reproduce the serial result order.
  ThreadPool pool(3);
  const size_t n = 11, workers = 3;
  std::vector<std::pair<size_t, size_t>> ranges(workers);
  pool.ParallelFor(n, workers, [&](size_t w, size_t begin, size_t end) {
    ranges[w] = {begin, end};
  });
  size_t expect_begin = 0;
  for (size_t w = 0; w < workers; ++w) {
    EXPECT_EQ(ranges[w].first, expect_begin);
    EXPECT_GE(ranges[w].second, ranges[w].first);
    expect_begin = ranges[w].second;
  }
  EXPECT_EQ(expect_begin, n);
}

TEST(ThreadPoolTest, ResultIndependentOfWorkerCount) {
  // Summing via per-worker accumulators merged in worker order gives the
  // same total no matter how many workers split the range.
  ThreadPool pool(8);
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 1);
  long expected = std::accumulate(data.begin(), data.end(), 0L);
  for (size_t workers : {1u, 2u, 3u, 5u, 8u}) {
    std::vector<long> partial(workers, 0);
    pool.ParallelFor(data.size(), workers,
                     [&](size_t w, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         partial[w] += data[i];
                       }
                     });
    long total = std::accumulate(partial.begin(), partial.end(), 0L);
    EXPECT_EQ(total, expected) << "workers=" << workers;
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; }).get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsAfterAllChunksFinished) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(8, 4,
                       [&](size_t w, size_t, size_t) {
                         if (w == 1) throw std::logic_error("chunk failed");
                         ++completed;
                       }),
      std::logic_error);
  // Every non-throwing chunk ran to completion before the rethrow — the
  // guarantee that makes merging partial per-worker state safe.
  EXPECT_EQ(completed.load(), 3);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A ParallelFor issued from inside a pool worker must not wait on pool
  // capacity (all workers could be doing the same) — it runs inline.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, 2, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(10, 2, [&](size_t, size_t b, size_t e) {
        inner_total += static_cast<int>(e - b);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 40);
}

TEST(ThreadPoolTest, OnWorkerThreadFlag) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(1);
  bool on_worker = false;
  pool.Submit([&on_worker] { on_worker = ThreadPool::OnWorkerThread(); })
      .get();
  EXPECT_TRUE(on_worker);
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

TEST(ThreadPoolTest, ManySmallParallelForsComplete) {
  // Hammer the submit/wait path; a lost wakeup or leaked queue entry shows
  // up as a hang (the test has an implicit ctest timeout) or a wrong sum.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 500; ++round) {
    pool.ParallelFor(7, 3, [&](size_t, size_t begin, size_t end) {
      total += static_cast<long>(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 500L * 7);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    // Destructor joins after the queue drains.
  }
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace sigsetdb
