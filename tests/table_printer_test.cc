#include "util/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace sigsetdb {
namespace {

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(3.0, 1), "3.0");
  EXPECT_EQ(TablePrinter::Num(0.000123, 6), "0.000123");
}

TEST(TablePrinterTest, IntFormats) {
  EXPECT_EQ(TablePrinter::Int(0), "0");
  EXPECT_EQ(TablePrinter::Int(-42), "-42");
  EXPECT_EQ(TablePrinter::Int(32000), "32000");
}

TEST(TablePrinterTest, PrintsHeaderRuleAndRows) {
  TablePrinter t({"Dq", "RC"});
  t.AddRow({"1", "27.6"});
  t.AddRow({"10", "30.0"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("Dq"), std::string::npos);
  EXPECT_NE(out.find("RC"), std::string::npos);
  EXPECT_NE(out.find("27.6"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // 4 lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, ColumnsAlignToWidestCell) {
  TablePrinter t({"a", "b"});
  t.AddRow({"wide-cell", "1"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  std::string header = out.substr(0, out.find('\n'));
  // Header cell "a" must be padded to the width of "wide-cell".
  EXPECT_GE(header.size(), std::string("  wide-cell  b").size());
}

}  // namespace
}  // namespace sigsetdb
