#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace sigsetdb {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRoughlyUniform) {
  Rng rng(77);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBelow(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 5 * std::sqrt(kDraws / kBuckets));
  }
}

TEST(RngTest, SampleWithoutReplacementBasicContract) {
  Rng rng(11);
  auto sample = rng.SampleWithoutReplacement(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(12);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  EXPECT_EQ(sample.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(13);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(RngTest, SampleWithoutReplacementCoversDomain) {
  // Every element should appear in some sample over many trials.
  Rng rng(14);
  std::set<uint64_t> seen;
  for (int trial = 0; trial < 200; ++trial) {
    for (uint64_t v : rng.SampleWithoutReplacement(20, 5)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(RngTest, ReseedResetsSequence) {
  Rng rng(99);
  uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(99);
  EXPECT_EQ(rng.Next(), first);
}

}  // namespace
}  // namespace sigsetdb
