#include "query/language.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace sigsetdb {
namespace {

// ---- parser ----

TEST(ParseQueryTest, PaperSampleQueryOne) {
  auto parsed = ParseQuery(
      "select Student where hobbies has-subset (\"Baseball\", \"Fishing\")");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->class_name, "Student");
  ASSERT_EQ(parsed->predicates.size(), 1u);
  const ParsedPredicate& p = parsed->predicates[0];
  EXPECT_EQ(p.attribute, "hobbies");
  EXPECT_EQ(p.kind, QueryKind::kSuperset);
  ASSERT_EQ(p.literals.size(), 2u);
  EXPECT_TRUE(p.literals[0].is_string);
  EXPECT_EQ(p.literals[0].text, "Baseball");
  EXPECT_EQ(p.literals[1].text, "Fishing");
}

TEST(ParseQueryTest, PaperSampleQueryTwo) {
  auto parsed = ParseQuery(
      "select Student where hobbies in-subset (\"Baseball\", \"Fishing\", "
      "\"Tennis\")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->predicates[0].kind, QueryKind::kSubset);
  EXPECT_EQ(parsed->predicates[0].literals.size(), 3u);
}

TEST(ParseQueryTest, AllOperators) {
  struct Case {
    const char* op;
    QueryKind kind;
  };
  for (const Case& c :
       {Case{"has-subset", QueryKind::kSuperset},
        Case{"in-subset", QueryKind::kSubset},
        Case{"has-proper-subset", QueryKind::kProperSuperset},
        Case{"in-proper-subset", QueryKind::kProperSubset},
        Case{"equals", QueryKind::kEquals},
        Case{"overlaps", QueryKind::kOverlaps}}) {
    auto parsed = ParseQuery(std::string("select C where a ") + c.op +
                             " (1, 2)");
    ASSERT_TRUE(parsed.ok()) << c.op;
    EXPECT_EQ(parsed->predicates[0].kind, c.kind) << c.op;
  }
}

TEST(ParseQueryTest, IntegerLiterals) {
  auto parsed = ParseQuery("select C where courses has-subset (42, 7)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->predicates[0].literals[0].is_string);
  EXPECT_EQ(parsed->predicates[0].literals[0].number, 42u);
  EXPECT_EQ(parsed->predicates[0].literals[1].number, 7u);
}

TEST(ParseQueryTest, Conjunction) {
  auto parsed = ParseQuery(
      "select Student where courses has-subset (1, 3) and hobbies "
      "in-subset (\"a\", \"b\")");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->predicates.size(), 2u);
  EXPECT_EQ(parsed->predicates[0].attribute, "courses");
  EXPECT_EQ(parsed->predicates[1].attribute, "hobbies");
}

TEST(ParseQueryTest, WhitespaceAndMixedLiterals) {
  auto parsed = ParseQuery(
      "  select   C\nwhere a overlaps (\"x\" ,  3,\"y\")  ");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->predicates[0].literals.size(), 3u);
}

TEST(ParseQueryTest, SyntaxErrors) {
  const char* bad[] = {
      "",
      "select",
      "select Student",
      "select Student where",
      "select Student where hobbies",
      "select Student where hobbies has-subset",
      "select Student where hobbies has-subset (",
      "select Student where hobbies has-subset ()",
      "select Student where hobbies has-subset (\"a\"",
      "select Student where hobbies has-subset (\"a\",)",
      "select Student where hobbies frobnicates (\"a\")",
      "select Student where hobbies has-subset (\"a\") garbage",
      "select Student where hobbies has-subset (\"unterminated)",
      "select Student where hobbies has-subset (\"a\") and",
      "pick Student where hobbies has-subset (\"a\")",
      "select Student where hobbies has-subset (#)",
  };
  for (const char* text : bad) {
    auto parsed = ParseQuery(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

// ---- binder + end-to-end ----

class LanguageBindingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::Options options;
    Database::AttributeOptions courses;
    courses.name = "courses";
    courses.sig = {128, 2};
    courses.domain_estimate = 100;
    Database::AttributeOptions hobbies;
    hobbies.name = "hobbies";
    hobbies.sig = {128, 2};
    hobbies.domain_estimate = 20;
    options.attributes = {courses, hobbies};
    options.capacity = 1024;
    auto db = Database::Create(&storage_, "Student", options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);

    // The paper's hobby vocabulary plus Jeff/Aiko-style students.
    ElementDictionary& dict = db_->dictionary(1);
    uint64_t baseball = dict.IdForString("Baseball");
    uint64_t fishing = dict.IdForString("Fishing");
    uint64_t tennis = dict.IdForString("Tennis");
    uint64_t golf = dict.IdForString("Golf");
    struct Row {
      ElementSet courses;
      ElementSet hobbies;
    };
    const Row rows[] = {
        {{1, 3, 4}, {baseball, fishing}},          // Jeff
        {{1, 2}, {baseball, fishing, golf}},        // ...
        {{2, 5}, {tennis}},
        {{1, 3}, {baseball, tennis}},
        {{4}, {fishing}},
    };
    for (const Row& row : rows) {
      auto oid = db_->Insert({row.courses, row.hobbies});
      ASSERT_TRUE(oid.ok());
      oids_.push_back(*oid);
    }
  }

  StorageManager storage_;
  std::unique_ptr<Database> db_;
  std::vector<Oid> oids_;
};

TEST_F(LanguageBindingTest, BindResolvesStringsAndIntegers) {
  auto parsed = ParseQuery(
      "select Student where hobbies has-subset (\"Baseball\") and courses "
      "has-subset (1)");
  ASSERT_TRUE(parsed.ok());
  auto bound = BindQuery(*parsed, db_.get());
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->size(), 2u);
  EXPECT_EQ((*bound)[0].query.size(), 1u);
  EXPECT_EQ((*bound)[1].query, ElementSet{1});
}

TEST_F(LanguageBindingTest, PaperQueryOneEndToEnd) {
  // "Find all Students whose hobbies include {Baseball, Fishing}".
  auto result = ExecuteQueryText(
      "select Student where hobbies has-subset (\"Baseball\", \"Fishing\")",
      db_.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<Oid> got = result->oids;
  std::sort(got.begin(), got.end());
  std::vector<Oid> want = {oids_[0], oids_[1]};
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST_F(LanguageBindingTest, PaperQueryTwoEndToEnd) {
  // "Find all Students whose hobbies are a subset of {Baseball, Fishing,
  // Tennis}" — excludes the Golf player.
  auto result = ExecuteQueryText(
      "select Student where hobbies in-subset (\"Baseball\", \"Fishing\", "
      "\"Tennis\")",
      db_.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->oids.size(), 4u);  // everyone except the golfer
}

TEST_F(LanguageBindingTest, ConjunctionEndToEnd) {
  auto result = ExecuteQueryText(
      "select Student where courses has-subset (1) and hobbies has-subset "
      "(\"Baseball\")",
      db_.get());
  ASSERT_TRUE(result.ok());
  std::vector<Oid> got = result->oids;
  std::sort(got.begin(), got.end());
  std::vector<Oid> want = {oids_[0], oids_[1], oids_[3]};
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST_F(LanguageBindingTest, UnknownStringMatchesNothing) {
  std::vector<std::string> unknown;
  auto parsed = ParseQuery(
      "select Student where hobbies has-subset (\"Cricket\")");
  ASSERT_TRUE(parsed.ok());
  auto bound = BindQuery(*parsed, db_.get(), &unknown);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(unknown, std::vector<std::string>{"Cricket"});
  auto result = db_->Query(*bound);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->oids.empty());
  // In a subset query an unknown string only widens Q: all-Tennis players
  // still qualify.
  auto subset = ExecuteQueryText(
      "select Student where hobbies in-subset (\"Tennis\", \"Cricket\")",
      db_.get());
  ASSERT_TRUE(subset.ok());
  EXPECT_EQ(subset->oids, std::vector<Oid>{oids_[2]});
}

TEST_F(LanguageBindingTest, UnknownAttributeFailsBinding) {
  auto parsed = ParseQuery("select Student where gpa has-subset (1)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(BindQuery(*parsed, db_.get()).status().code(),
            StatusCode::kNotFound);
}

TEST_F(LanguageBindingTest, ProperSubsetOperatorEndToEnd) {
  // The golfer's exact hobby set must not satisfy the strict operator.
  auto result = ExecuteQueryText(
      "select Student where hobbies in-proper-subset (\"Baseball\", "
      "\"Fishing\", \"Golf\")",
      db_.get());
  ASSERT_TRUE(result.ok());
  // Jeff {Baseball,Fishing} and the lone fisher qualify strictly; the
  // golfer's set equals Q so it is excluded.
  std::vector<Oid> got = result->oids;
  std::sort(got.begin(), got.end());
  std::vector<Oid> want = {oids_[0], oids_[4]};
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace sigsetdb
