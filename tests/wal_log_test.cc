// WriteAheadLog frame-format and recovery-scan unit tests.
//
// The crash matrix (crash_recovery_test.cc) proves the end-to-end "no
// acknowledged write lost" contract; these tests pin the log's on-disk
// mechanics in isolation: framing round trips for every record type, the
// double-signature + CRC scan truncates torn and corrupt tails cleanly,
// strict LSN sequencing makes pre-truncation stale bytes unreachable, a
// torn header falls back to the manifest's checkpoint lsn, replay is
// idempotent, and a transient apply fault (not a crash) aborts + poisons a
// WAL-enabled index until reopen.

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/log_record.h"
#include "db/set_index.h"
#include "db/wal.h"
#include "storage/fault_injecting_page_file.h"
#include "storage/page_file.h"
#include "storage/storage_manager.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

// Mirror of the private frame geometry in wal.cc:
//   magic u32 | type u32 | payload_len u32 | lsn u64 | crc u32 | head_stamp
// then the payload, then tail_stamp u32.
constexpr size_t kFrameHeaderBytes = 28;
constexpr size_t kFrameTailBytes = 4;

size_t FrameSize(const LogRecord& rec) {
  return kFrameHeaderBytes + rec.SerializePayload().size() + kFrameTailBytes;
}

// Flips one byte of the record region (byte-addressed from page 1).
void CorruptRecordByte(PageFile* file, size_t offset) {
  const PageId page_id = 1 + static_cast<PageId>(offset / kPageSize);
  Page page;
  ASSERT_TRUE(file->Read(page_id, &page).ok());
  page.bytes[offset % kPageSize] ^= 0xFF;
  ASSERT_TRUE(file->Write(page_id, page).ok());
}

ElementSet Set(std::initializer_list<uint64_t> elems) {
  return ElementSet(elems);
}

void ExpectSameRecord(const LogRecord& got, const LogRecord& want,
                      uint64_t want_lsn) {
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.lsn, want_lsn);
  ASSERT_EQ(got.inserts.size(), want.inserts.size());
  for (size_t i = 0; i < want.inserts.size(); ++i) {
    EXPECT_EQ(got.inserts[i].oid, want.inserts[i].oid);
    EXPECT_EQ(got.inserts[i].sets, want.inserts[i].sets);
  }
  ASSERT_EQ(got.deletes.size(), want.deletes.size());
  for (size_t i = 0; i < want.deletes.size(); ++i) {
    EXPECT_EQ(got.deletes[i].oid, want.deletes[i].oid);
    EXPECT_EQ(got.deletes[i].sets, want.deletes[i].sets);
  }
  EXPECT_EQ(got.generation, want.generation);
  EXPECT_EQ(got.ref_lsn, want.ref_lsn);
}

// All five record types, in one sequence the scanner must reproduce.
std::vector<LogRecord> SampleRecords() {
  std::vector<LogRecord> recs;
  recs.push_back(LogRecord::SingleInsert(Oid::FromLocation(3, 1),
                                         {Set({1, 5, 9}), Set({2, 4})}));
  recs.push_back(
      LogRecord::SingleDelete(Oid::FromLocation(3, 1), {Set({1, 5, 9})}));
  recs.push_back(LogRecord::Batch(
      {{Oid::FromLocation(4, 0), {Set({7})}}},
      {{Oid::FromLocation(4, 1), {Set({8, 11})}},
       {Oid::FromLocation(4, 2), {Set({12, 13, 14})}}}));
  recs.push_back(LogRecord::CompactCommit(6));
  recs.push_back(LogRecord::Abort(2));
  return recs;
}

TEST(WalLogTest, RoundTripAllRecordTypes) {
  InMemoryPageFile file("wal");
  auto log = WriteAheadLog::Create(&file, /*start_lsn=*/0, nullptr);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  const std::vector<LogRecord> recs = SampleRecords();
  for (size_t i = 0; i < recs.size(); ++i) {
    auto lsn = (*log)->AppendAndCommit(recs[i]);
    ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
    EXPECT_EQ(*lsn, i + 1);
  }
  EXPECT_EQ((*log)->last_lsn(), recs.size());
  EXPECT_EQ((*log)->durable_lsn(), recs.size());

  auto reopened = WriteAheadLog::Open(&file, /*fallback_start_lsn=*/0, nullptr);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(reopened->tail_truncated);
  ASSERT_EQ(reopened->records.size(), recs.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    ExpectSameRecord(reopened->records[i], recs[i], i + 1);
  }
  EXPECT_EQ(reopened->log->start_lsn(), 0u);
  EXPECT_EQ(reopened->log->last_lsn(), recs.size());
}

TEST(WalLogTest, EmptyLogScansToNothing) {
  InMemoryPageFile file("wal");
  ASSERT_TRUE(WriteAheadLog::Create(&file, /*start_lsn=*/4, nullptr).ok());
  auto reopened = WriteAheadLog::Open(&file, /*fallback_start_lsn=*/0, nullptr);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->records.empty());
  EXPECT_FALSE(reopened->tail_truncated);
  // The header, not the fallback, carries the start lsn.
  EXPECT_EQ(reopened->log->start_lsn(), 4u);
  EXPECT_EQ(reopened->log->last_lsn(), 4u);
}

TEST(WalLogTest, ReplayIsIdempotent) {
  // Opening the same log twice — recovery that crashes and recovers again —
  // yields byte-identical record sequences both times.
  InMemoryPageFile file("wal");
  auto log = WriteAheadLog::Create(&file, 0, nullptr);
  ASSERT_TRUE(log.ok());
  for (const LogRecord& rec : SampleRecords()) {
    ASSERT_TRUE((*log)->AppendAndCommit(rec).ok());
  }
  auto first = WriteAheadLog::Open(&file, 0, nullptr);
  auto second = WriteAheadLog::Open(&file, 0, nullptr);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->records.size(), second->records.size());
  for (size_t i = 0; i < first->records.size(); ++i) {
    EXPECT_EQ(first->records[i].SerializePayload(),
              second->records[i].SerializePayload());
    EXPECT_EQ(first->records[i].lsn, second->records[i].lsn);
  }
}

TEST(WalLogTest, TornWriteTailIsTruncated) {
  // Record 1 commits durably; record 2's flush crashes with a torn write
  // that persists only part of its frame header.  The scan must return
  // exactly record 1 and flag the truncation.
  InMemoryPageFile base("wal");
  FaultInjector injector;
  FaultInjectingPageFile file(&base, &injector);
  auto log = WriteAheadLog::Create(&file, 0, nullptr);
  ASSERT_TRUE(log.ok());
  const std::vector<LogRecord> recs = SampleRecords();
  ASSERT_TRUE((*log)->AppendAndCommit(recs[0]).ok());

  // The next flush rewrites the tail page whole (frame 1 + frame 2); tear
  // it 12 bytes into frame 2's header — magic and type land, the stamp
  // never does.
  injector.CrashAt(injector.ops());
  injector.SetTornWrite(FrameSize(recs[0]) + 12);
  auto lsn = (*log)->AppendAndCommit(recs[1]);
  EXPECT_FALSE(lsn.ok());
  // The log is poisoned: durability of anything after the failed sync is
  // unknown, so later commits must not pretend otherwise.
  EXPECT_FALSE((*log)->AppendAndCommit(recs[2]).ok());

  auto reopened = WriteAheadLog::Open(&base, 0, nullptr);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->records.size(), 1u);
  ExpectSameRecord(reopened->records[0], recs[0], 1);
  EXPECT_TRUE(reopened->tail_truncated);
}

TEST(WalLogTest, PayloadBitFlipFailsCrc) {
  InMemoryPageFile file("wal");
  auto log = WriteAheadLog::Create(&file, 0, nullptr);
  ASSERT_TRUE(log.ok());
  const std::vector<LogRecord> recs = SampleRecords();
  ASSERT_TRUE((*log)->AppendAndCommit(recs[0]).ok());
  ASSERT_TRUE((*log)->AppendAndCommit(recs[1]).ok());
  // Flip one payload byte of frame 2: head/tail stamps still match, the CRC
  // catches it, and the scan stops before the damaged record.
  CorruptRecordByte(&file, FrameSize(recs[0]) + kFrameHeaderBytes);
  auto reopened = WriteAheadLog::Open(&file, 0, nullptr);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->records.size(), 1u);
  ExpectSameRecord(reopened->records[0], recs[0], 1);
  EXPECT_TRUE(reopened->tail_truncated);
}

TEST(WalLogTest, TailStampMismatchIsRejected) {
  InMemoryPageFile file("wal");
  auto log = WriteAheadLog::Create(&file, 0, nullptr);
  ASSERT_TRUE(log.ok());
  const std::vector<LogRecord> recs = SampleRecords();
  ASSERT_TRUE((*log)->AppendAndCommit(recs[0]).ok());
  ASSERT_TRUE((*log)->AppendAndCommit(recs[1]).ok());
  // Break frame 2's tail stamp — the classic torn shape where the head of a
  // frame lands but its end does not.
  const size_t tail_off = FrameSize(recs[0]) + kFrameHeaderBytes +
                          recs[1].SerializePayload().size();
  CorruptRecordByte(&file, tail_off);
  auto reopened = WriteAheadLog::Open(&file, 0, nullptr);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->records.size(), 1u);
  EXPECT_TRUE(reopened->tail_truncated);
}

TEST(WalLogTest, HeadStampMismatchIsRejected) {
  InMemoryPageFile file("wal");
  auto log = WriteAheadLog::Create(&file, 0, nullptr);
  ASSERT_TRUE(log.ok());
  const std::vector<LogRecord> recs = SampleRecords();
  ASSERT_TRUE((*log)->AppendAndCommit(recs[0]).ok());
  ASSERT_TRUE((*log)->AppendAndCommit(recs[1]).ok());
  CorruptRecordByte(&file, FrameSize(recs[0]) + 24);  // frame 2 head_stamp
  auto reopened = WriteAheadLog::Open(&file, 0, nullptr);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->records.size(), 1u);
  EXPECT_TRUE(reopened->tail_truncated);
}

TEST(WalLogTest, TruncateMakesStaleFramesUnreachable) {
  // Truncate only rewrites the header, so old frame bytes survive in the
  // body.  Strict lsn sequencing must hide them: a scan expecting lsn 3
  // rejects the stale lsn-1 frame at position 0.
  InMemoryPageFile file("wal");
  auto log = WriteAheadLog::Create(&file, 0, nullptr);
  ASSERT_TRUE(log.ok());
  const std::vector<LogRecord> recs = SampleRecords();
  ASSERT_TRUE((*log)->AppendAndCommit(recs[0]).ok());
  ASSERT_TRUE((*log)->AppendAndCommit(recs[1]).ok());
  ASSERT_TRUE((*log)->Truncate(2).ok());
  EXPECT_EQ((*log)->start_lsn(), 2u);

  {
    auto reopened = WriteAheadLog::Open(&file, 0, nullptr);
    ASSERT_TRUE(reopened.ok());
    EXPECT_TRUE(reopened->records.empty())
        << "stale pre-truncation frame leaked into replay";
    EXPECT_EQ(reopened->log->start_lsn(), 2u);
    EXPECT_EQ(reopened->log->last_lsn(), 2u);

    // Appends continue past the truncation point: lsn 3 overwrites the
    // stale region and becomes the one replayable record.
    auto lsn = reopened->log->AppendAndCommit(recs[2]);
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, 3u);
  }
  auto again = WriteAheadLog::Open(&file, 0, nullptr);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->records.size(), 1u);
  ExpectSameRecord(again->records[0], recs[2], 3);
}

TEST(WalLogTest, TruncateRequiresEverythingDurable) {
  InMemoryPageFile file("wal");
  auto log = WriteAheadLog::Create(&file, 0, nullptr);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->AppendAndCommit(SampleRecords()[0]).ok());
  Status s = (*log)->Truncate(0);  // not the last lsn
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  auto pending = (*log)->Append(SampleRecords()[1]);  // appended, not durable
  ASSERT_TRUE(pending.ok());
  s = (*log)->Truncate(*pending);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(WalLogTest, TornHeaderFallsBackToCheckpointLsn) {
  // The header is rewritten only by Truncate, which runs strictly after a
  // checkpoint made every record redundant — so a torn header may be
  // reinitialized at the manifest's checkpoint lsn without losing an
  // unreplayed record.
  InMemoryPageFile file("wal");
  auto log = WriteAheadLog::Create(&file, 0, nullptr);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->AppendAndCommit(SampleRecords()[0]).ok());
  Page header;
  ASSERT_TRUE(file.Read(0, &header).ok());
  header.bytes[2] ^= 0xFF;
  ASSERT_TRUE(file.Write(0, header).ok());

  auto reopened = WriteAheadLog::Open(&file, /*fallback_start_lsn=*/7, nullptr);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->records.empty());
  EXPECT_TRUE(reopened->tail_truncated);
  EXPECT_EQ(reopened->log->start_lsn(), 7u);
  auto lsn = reopened->log->AppendAndCommit(SampleRecords()[1]);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 8u);

  // The fallback rewrote a valid header: the next open needs no fallback.
  auto again = WriteAheadLog::Open(&file, /*fallback_start_lsn=*/0, nullptr);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->log->start_lsn(), 7u);
  ASSERT_EQ(again->records.size(), 1u);
  EXPECT_EQ(again->records[0].lsn, 8u);
}

// A transient apply fault — a one-shot I/O error, not a crash — after a
// record committed must abort + poison the index (mutations, queries, and
// checkpoints all refuse with kFailedPrecondition) until a reopen replays
// or inverts the record.  Sweeping the fault across every I/O index also
// covers faults in the pre-commit path, which must NOT poison.
TEST(WalLogTest, TransientApplyFaultPoisonsIndexUntilReopen) {
  SetIndex::Options options;
  options.maintain_ssf = true;
  options.maintain_bssf = true;
  options.maintain_nix = true;
  options.sig = {64, 2};
  options.capacity = 128;
  options.enable_wal = true;

  std::vector<ElementSet> sets;
  Rng rng(0xFA0175EEDULL);
  for (int i = 0; i < 3; ++i) {
    ElementSet set = rng.SampleWithoutReplacement(48, 5);
    NormalizeSet(&set);
    sets.push_back(std::move(set));
  }

  auto intercept = [](StorageManager* storage, FaultInjector* injector) {
    storage->SetInterceptor(
        [injector](
            std::unique_ptr<PageFile> base) -> std::unique_ptr<PageFile> {
          return std::make_unique<FaultInjectingPageFile>(std::move(base),
                                                          injector);
        });
  };

  uint64_t total_ops = 0;
  {
    FaultInjector injector;
    StorageManager storage;
    intercept(&storage, &injector);
    auto index = SetIndex::Create(&storage, "pidx", options);
    ASSERT_TRUE(index.ok());
    for (const ElementSet& set : sets) {
      ASSERT_TRUE((*index)->Insert(set).ok());
    }
    total_ops = injector.ops();
  }
  ASSERT_GT(total_ops, 0u);

  size_t poisoned_cells = 0;
  for (uint64_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE("transient fault at op " + std::to_string(k));
    FaultInjector injector;
    StorageManager storage;
    intercept(&storage, &injector);
    injector.FailAt(k);
    auto index_or = SetIndex::Create(&storage, "pidx", options);
    if (!index_or.ok()) continue;  // fault inside Create: nothing acked
    SetIndex* index = index_or->get();

    std::map<size_t, Oid> acked;
    bool failed = false;
    for (size_t i = 0; i < sets.size(); ++i) {
      auto oid = index->Insert(sets[i]);
      if (!oid.ok()) {
        failed = true;
        break;
      }
      acked[i] = *oid;
    }
    if (failed) {
      // The fault either hit the pre-commit path / WAL (sticky I/O error,
      // nothing applied) or the apply path (abort + poison).  Probe with a
      // read-only query: only poison refuses reads.
      auto probe =
          index->Query(QueryKind::kSuperset, sets[0], PlanMode::kAuto);
      if (!probe.ok() &&
          probe.status().code() == StatusCode::kFailedPrecondition) {
        ++poisoned_cells;
        EXPECT_EQ(index->Insert(sets[0]).status().code(),
                  StatusCode::kFailedPrecondition);
        EXPECT_EQ(index->Checkpoint().code(),
                  StatusCode::kFailedPrecondition);
      }
    }

    injector.Disarm();
    auto reopened = SetIndex::Open(&storage, "pidx", options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    for (const auto& [i, oid] : acked) {
      auto got = (*reopened)->Get(oid);
      ASSERT_TRUE(got.ok()) << "acked insert " << i << " lost";
      EXPECT_EQ(got->set_value, sets[i]);
    }
    ElementSet extra = Set({40, 41, 42});
    auto extra_oid = (*reopened)->Insert(extra);
    ASSERT_TRUE(extra_oid.ok());
    EXPECT_TRUE((*reopened)->Checkpoint().ok());
  }
  // The sweep must have exercised the abort + poison path at least once
  // (a fault between the record's fsync and the end of its apply).
  EXPECT_GT(poisoned_cells, 0u);
}

}  // namespace
}  // namespace sigsetdb
