#include "model/actual_drops.h"
#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/generator.h"

namespace sigsetdb {
namespace {

DatabaseParams Paper() { return DatabaseParams{}; }

TEST(ActualDropsTest, SupersetPaperValues) {
  DatabaseParams db = Paper();
  // Dq=1: A = N·Dt/V = 32000·10/13000 ≈ 24.6.
  EXPECT_NEAR(ActualDropsSuperset(db, 10, 1), 24.615, 0.01);
  // Dq=2: A = N·Dt(Dt-1)/(V(V-1)) ≈ 0.017.
  EXPECT_NEAR(ActualDropsSuperset(db, 10, 2), 0.01704, 0.0005);
  // Dt=100, Dq=1: 32000·100/13000 ≈ 246.2.
  EXPECT_NEAR(ActualDropsSuperset(db, 100, 1), 246.15, 0.01);
}

TEST(ActualDropsTest, SupersetZeroWhenQueryBiggerThanTarget) {
  EXPECT_DOUBLE_EQ(ActualDropsSuperset(Paper(), 10, 11), 0.0);
}

TEST(ActualDropsTest, SupersetMonotoneDecreasingInDq) {
  DatabaseParams db = Paper();
  double prev = static_cast<double>(db.n);
  for (int64_t dq = 1; dq <= 10; ++dq) {
    double a = ActualDropsSuperset(db, 10, dq);
    EXPECT_LT(a, prev);
    prev = a;
  }
}

TEST(ActualDropsTest, SubsetNegligibleAtPaperScale) {
  DatabaseParams db = Paper();
  // "This actual drop value is almost negligible for probable values."
  EXPECT_LT(ActualDropsSubset(db, 10, 100), 1e-6);
  EXPECT_LT(ActualDropsSubset(db, 10, 300), 1e-3);
}

TEST(ActualDropsTest, SubsetZeroWhenTargetBiggerThanQuery) {
  EXPECT_DOUBLE_EQ(ActualDropsSubset(Paper(), 10, 9), 0.0);
}

TEST(ActualDropsTest, SubsetFullDomainQueryMatchesEverything) {
  DatabaseParams db = Paper();
  EXPECT_NEAR(ActualDropsSubset(db, 10, db.v), static_cast<double>(db.n),
              1e-6);
}

TEST(ActualDropsTest, EqualsOnlyAtMatchingCardinality) {
  DatabaseParams db = Paper();
  EXPECT_DOUBLE_EQ(ActualDropsEquals(db, 10, 9), 0.0);
  EXPECT_GT(ActualDropsEquals(db, 10, 10), 0.0);
  EXPECT_LT(ActualDropsEquals(db, 10, 10), 1e-20);  // 32000 / C(13000,10)
}

TEST(ActualDropsTest, OverlapBounds) {
  DatabaseParams db = Paper();
  double a = ActualDropsOverlap(db, 10, 100);
  EXPECT_GT(a, 0.0);
  EXPECT_LT(a, static_cast<double>(db.n));
  // Querying the whole domain overlaps everything.
  EXPECT_NEAR(ActualDropsOverlap(db, 10, db.v), static_cast<double>(db.n),
              1e-6);
}

TEST(ActualDropsTest, NixSubsetDecomposition) {
  // failing + satisfying + disjoint = N.
  DatabaseParams db = Paper();
  int64_t dt = 10, dq = 200;
  double failing = NixSubsetFailingCandidates(db, dt, dq);
  double satisfying = ActualDropsSubset(db, dt, dq);
  double overlapping = ActualDropsOverlap(db, dt, dq);
  EXPECT_NEAR(failing + satisfying, overlapping, 1e-6);
}

// Monte-Carlo cross-check of the superset actual-drop formula on a small
// domain: the combinatorics must match simulation.
TEST(ActualDropsTest, EmpiricalSupersetCount) {
  DatabaseParams db;
  db.n = 20000;
  db.v = 100;
  int64_t dt = 10, dq = 2;
  WorkloadConfig config{db.n, db.v, CardinalitySpec::Fixed(dt),
                        SkewKind::kUniform, 0.99, 77};
  auto sets = MakeDatabase(config);
  Rng rng(5);
  ElementSet query = rng.SampleWithoutReplacement(
      static_cast<uint64_t>(db.v), static_cast<uint64_t>(dq));
  int hits = 0;
  for (const auto& s : sets) {
    if (IsSubset(query, s)) ++hits;
  }
  double expected = ActualDropsSuperset(db, dt, dq);
  EXPECT_NEAR(hits, expected, 4 * std::sqrt(expected) + 5);
}

TEST(ActualDropsTest, EmpiricalSubsetCount) {
  DatabaseParams db;
  db.n = 20000;
  db.v = 60;
  int64_t dt = 3, dq = 30;
  WorkloadConfig config{db.n, db.v, CardinalitySpec::Fixed(dt),
                        SkewKind::kUniform, 0.99, 78};
  auto sets = MakeDatabase(config);
  Rng rng(6);
  ElementSet query = rng.SampleWithoutReplacement(
      static_cast<uint64_t>(db.v), static_cast<uint64_t>(dq));
  int hits = 0;
  for (const auto& s : sets) {
    if (IsSubset(s, query)) ++hits;
  }
  double expected = ActualDropsSubset(db, dt, dq);
  EXPECT_NEAR(hits, expected, 4 * std::sqrt(expected) + 5);
}

}  // namespace
}  // namespace sigsetdb
