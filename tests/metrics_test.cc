// MetricsRegistry: counter/gauge/histogram semantics, pointer stability,
// snapshot export, and — the part the sanitizer jobs exercise — exactness of
// the lock-free hot path under concurrent recording.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

namespace sigsetdb {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketsCountSumMean) {
  Histogram h;
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 1024ull}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_DOUBLE_EQ(h.mean(), 206.0);
  // Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket_count(11), 1u);  // 1024
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024u);
}

TEST(HistogramTest, PercentileIsLogScaleUpperBound) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(4);
  h.Record(1 << 20);
  // p50 lands in the bucket holding 4: upper bound 8, at most 2x over.
  EXPECT_GE(h.Percentile(0.5), 4u);
  EXPECT_LE(h.Percentile(0.5), 8u);
  EXPECT_GE(h.Percentile(1.0), 1u << 20);
}

// The log-scale bucket contract as a quantile error bound: for any
// distribution, Percentile(p) returns the upper bound of the bucket holding
// the exact rank-p sample, so for exact quantile q >= 1 it satisfies
// q <= Percentile(p) <= 2q (and equals 0 exactly when q == 0).  Checked on
// seeded heavy-tailed distributions shaped like real latency data.
TEST(HistogramTest, QuantilesStayWithinLogBucketBounds) {
  struct Case {
    const char* name;
    std::function<uint64_t(std::mt19937_64&)> draw;
  };
  std::vector<Case> cases;
  cases.push_back(
      {"exponential", [](std::mt19937_64& rng) {
         std::exponential_distribution<double> d(1.0 / 150.0);
         return static_cast<uint64_t>(d(rng));
       }});
  cases.push_back(
      {"lognormal", [](std::mt19937_64& rng) {
         std::lognormal_distribution<double> d(5.0, 1.5);
         return static_cast<uint64_t>(d(rng));
       }});
  cases.push_back(
      {"bimodal fast/slow", [](std::mt19937_64& rng) {
         std::uniform_real_distribution<double> coin(0.0, 1.0);
         if (coin(rng) < 0.95) {
           std::uniform_int_distribution<uint64_t> fast(2, 40);
           return fast(rng);
         }
         std::uniform_int_distribution<uint64_t> slow(20000, 90000);
         return slow(rng);
       }});

  std::mt19937_64 rng(19930526);
  for (const Case& c : cases) {
    Histogram h;
    std::vector<uint64_t> samples;
    for (int i = 0; i < 20000; ++i) {
      uint64_t v = c.draw(rng);
      samples.push_back(v);
      h.Record(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double p : {0.5, 0.95, 0.99}) {
      // Same rank convention as Histogram::Percentile (1-based rank
      // floor(p*(n-1))+1), so the comparison is bucket error only.
      const uint64_t exact =
          samples[static_cast<size_t>(p * (samples.size() - 1))];
      const uint64_t approx = h.Percentile(p);
      if (exact == 0) {
        EXPECT_EQ(approx, 0u) << c.name << " p" << p;
      } else {
        EXPECT_GE(approx, exact) << c.name << " p" << p;
        EXPECT_LE(approx, 2 * exact) << c.name << " p" << p;
      }
    }
  }
}

TEST(MetricsRegistryTest, SnapshotCopiesEveryMetric) {
  MetricsRegistry registry;
  registry.counter("wal.fsyncs")->Increment(4);
  registry.gauge("epoch.pins")->Set(1.0);
  Histogram* h = registry.histogram("op.insert.latency_us");
  h->Record(3);
  h->Record(300);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].first, "wal.fsyncs");
  EXPECT_EQ(snapshot.counters[0].second, 4u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].first, "epoch.pins");
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].name, "op.insert.latency_us");
  EXPECT_EQ(snapshot.histograms[0].count, 2u);
  EXPECT_EQ(snapshot.histograms[0].sum, 303u);

  // The snapshot is a copy: later recording does not mutate it.
  h->Record(1000);
  EXPECT_EQ(snapshot.histograms[0].count, 2u);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.counter("a");
  Gauge* g1 = registry.gauge("b");
  Histogram* h1 = registry.histogram("c");
  // Registering more metrics must not invalidate earlier pointers.
  for (int i = 0; i < 100; ++i) {
    registry.counter("extra." + std::to_string(i));
  }
  EXPECT_EQ(registry.counter("a"), c1);
  EXPECT_EQ(registry.gauge("b"), g1);
  EXPECT_EQ(registry.histogram("c"), h1);
}

TEST(MetricsRegistryTest, ReadOnlyLookups) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("missing"), 0u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("missing"), 0.0);
  EXPECT_EQ(registry.FindHistogram("missing"), nullptr);
  registry.counter("hits")->Increment(7);
  registry.gauge("rate")->Set(0.5);
  registry.histogram("lat")->Record(3);
  EXPECT_EQ(registry.CounterValue("hits"), 7u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("rate"), 0.5);
  ASSERT_NE(registry.FindHistogram("lat"), nullptr);
  EXPECT_EQ(registry.FindHistogram("lat")->count(), 1u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsNames) {
  MetricsRegistry registry;
  Counter* c = registry.counter("n");
  c->Increment(5);
  registry.gauge("g")->Set(1.0);
  registry.histogram("h")->Record(9);
  registry.Reset();
  EXPECT_EQ(registry.CounterValue("n"), 0u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("g"), 0.0);
  EXPECT_EQ(registry.FindHistogram("h")->count(), 0u);
  EXPECT_EQ(registry.counter("n"), c);  // still the same object
}

TEST(MetricsRegistryTest, ToJsonAndRenderContainAllMetrics) {
  MetricsRegistry registry;
  registry.counter("query.count")->Increment(3);
  registry.gauge("query.predicted_pages")->Set(6.5);
  registry.histogram("query.pages")->Record(6);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"query.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  std::ostringstream os;
  registry.Render(os);
  EXPECT_NE(os.str().find("query.count"), std::string::npos);
  EXPECT_NE(os.str().find("query.pages"), std::string::npos);
}

// The hot path is relaxed atomics: under concurrent recording no increment
// may be lost.  Run under TSan/ASan by tools/run_sanitizers.sh.
TEST(MetricsRegistryTest, ConcurrentRecordingIsExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Registration races with other threads (mutex), increments race on
      // the shared atomics (relaxed) — both must be clean and exact.
      Counter* counter = registry.counter("shared.count");
      Gauge* gauge = registry.gauge("shared.gauge");
      Histogram* histogram = registry.histogram("shared.hist");
      Counter* own =
          registry.counter("thread." + std::to_string(t) + ".count");
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(1.0);
        histogram->Record(static_cast<uint64_t>(i % 7));
        own->Increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.CounterValue("shared.count"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("shared.gauge"),
                   static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(registry.FindHistogram("shared.hist")->count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.CounterValue("thread." + std::to_string(t) + ".count"),
              static_cast<uint64_t>(kPerThread));
  }
}

}  // namespace
}  // namespace sigsetdb
