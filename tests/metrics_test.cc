// MetricsRegistry: counter/gauge/histogram semantics, pointer stability,
// snapshot export, and — the part the sanitizer jobs exercise — exactness of
// the lock-free hot path under concurrent recording.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace sigsetdb {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketsCountSumMean) {
  Histogram h;
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 1024ull}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_DOUBLE_EQ(h.mean(), 206.0);
  // Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket_count(11), 1u);  // 1024
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024u);
}

TEST(HistogramTest, PercentileIsLogScaleUpperBound) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(4);
  h.Record(1 << 20);
  // p50 lands in the bucket holding 4: upper bound 8, at most 2x over.
  EXPECT_GE(h.Percentile(0.5), 4u);
  EXPECT_LE(h.Percentile(0.5), 8u);
  EXPECT_GE(h.Percentile(1.0), 1u << 20);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.counter("a");
  Gauge* g1 = registry.gauge("b");
  Histogram* h1 = registry.histogram("c");
  // Registering more metrics must not invalidate earlier pointers.
  for (int i = 0; i < 100; ++i) {
    registry.counter("extra." + std::to_string(i));
  }
  EXPECT_EQ(registry.counter("a"), c1);
  EXPECT_EQ(registry.gauge("b"), g1);
  EXPECT_EQ(registry.histogram("c"), h1);
}

TEST(MetricsRegistryTest, ReadOnlyLookups) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("missing"), 0u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("missing"), 0.0);
  EXPECT_EQ(registry.FindHistogram("missing"), nullptr);
  registry.counter("hits")->Increment(7);
  registry.gauge("rate")->Set(0.5);
  registry.histogram("lat")->Record(3);
  EXPECT_EQ(registry.CounterValue("hits"), 7u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("rate"), 0.5);
  ASSERT_NE(registry.FindHistogram("lat"), nullptr);
  EXPECT_EQ(registry.FindHistogram("lat")->count(), 1u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsNames) {
  MetricsRegistry registry;
  Counter* c = registry.counter("n");
  c->Increment(5);
  registry.gauge("g")->Set(1.0);
  registry.histogram("h")->Record(9);
  registry.Reset();
  EXPECT_EQ(registry.CounterValue("n"), 0u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("g"), 0.0);
  EXPECT_EQ(registry.FindHistogram("h")->count(), 0u);
  EXPECT_EQ(registry.counter("n"), c);  // still the same object
}

TEST(MetricsRegistryTest, ToJsonAndRenderContainAllMetrics) {
  MetricsRegistry registry;
  registry.counter("query.count")->Increment(3);
  registry.gauge("query.predicted_pages")->Set(6.5);
  registry.histogram("query.pages")->Record(6);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"query.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  std::ostringstream os;
  registry.Render(os);
  EXPECT_NE(os.str().find("query.count"), std::string::npos);
  EXPECT_NE(os.str().find("query.pages"), std::string::npos);
}

// The hot path is relaxed atomics: under concurrent recording no increment
// may be lost.  Run under TSan/ASan by tools/run_sanitizers.sh.
TEST(MetricsRegistryTest, ConcurrentRecordingIsExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Registration races with other threads (mutex), increments race on
      // the shared atomics (relaxed) — both must be clean and exact.
      Counter* counter = registry.counter("shared.count");
      Gauge* gauge = registry.gauge("shared.gauge");
      Histogram* histogram = registry.histogram("shared.hist");
      Counter* own =
          registry.counter("thread." + std::to_string(t) + ".count");
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(1.0);
        histogram->Record(static_cast<uint64_t>(i % 7));
        own->Increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.CounterValue("shared.count"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("shared.gauge"),
                   static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(registry.FindHistogram("shared.hist")->count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.CounterValue("thread." + std::to_string(t) + ".count"),
              static_cast<uint64_t>(kPerThread));
  }
}

}  // namespace
}  // namespace sigsetdb
