// Parser robustness: randomized and adversarial inputs must produce clean
// kInvalidArgument errors (never crashes, hangs or accepts garbage), and
// every successfully parsed query must re-parse identically after being
// printed back — a light round-trip property.

#include <string>

#include <gtest/gtest.h>

#include "query/language.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

// Random byte soup (printable-biased so the lexer sees varied tokens).
std::string RandomInput(Rng& rng, size_t max_len) {
  size_t len = rng.NextBelow(max_len + 1);
  std::string out;
  out.reserve(len);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz-_0123456789(),\" \t\n#%$";
  for (size_t i = 0; i < len; ++i) {
    out.push_back(alphabet[rng.NextBelow(alphabet.size())]);
  }
  return out;
}

// Grammar-guided generator: emits the token stream of a valid query, then
// mutates it with some probability (drop/duplicate/replace tokens) so the
// corpus mixes accepts with near-miss rejects — far more effective at
// reaching deep parser states than uniform token soup.
std::string RandomTokens(Rng& rng, size_t max_predicates) {
  const char* kOperators[] = {"has-subset",       "in-subset",
                              "has-proper-subset", "in-proper-subset",
                              "equals",            "overlaps"};
  const char* kAttrs[] = {"hobbies", "courses", "tags"};
  std::vector<std::string> tokens = {"select", "Student", "where"};
  size_t predicates = 1 + rng.NextBelow(max_predicates);
  for (size_t p = 0; p < predicates; ++p) {
    if (p > 0) tokens.push_back("and");
    tokens.push_back(kAttrs[rng.NextBelow(std::size(kAttrs))]);
    tokens.push_back(kOperators[rng.NextBelow(std::size(kOperators))]);
    tokens.push_back("(");
    size_t literals = 1 + rng.NextBelow(3);
    for (size_t l = 0; l < literals; ++l) {
      if (l > 0) tokens.push_back(",");
      tokens.push_back(rng.NextBelow(2) == 0
                           ? "\"Baseball\""
                           : std::to_string(rng.NextBelow(100)));
    }
    tokens.push_back(")");
  }
  // Mutations: each with 25% probability, applied independently.
  if (rng.NextBelow(4) == 0 && !tokens.empty()) {
    tokens.erase(tokens.begin() +
                 static_cast<ptrdiff_t>(rng.NextBelow(tokens.size())));
  }
  if (rng.NextBelow(4) == 0 && !tokens.empty()) {
    size_t i = rng.NextBelow(tokens.size());
    tokens.insert(tokens.begin() + static_cast<ptrdiff_t>(i), tokens[i]);
  }
  if (rng.NextBelow(4) == 0 && tokens.size() >= 2) {
    size_t i = rng.NextBelow(tokens.size() - 1);
    std::swap(tokens[i], tokens[i + 1]);
  }
  std::string out;
  for (const std::string& t : tokens) {
    out += t;
    out += ' ';
  }
  return out;
}

TEST(LanguageFuzzTest, RandomBytesNeverCrash) {
  Rng rng(1);
  for (int trial = 0; trial < 5000; ++trial) {
    std::string input = RandomInput(rng, 120);
    auto parsed = ParseQuery(input);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(LanguageFuzzTest, RandomTokenSequencesNeverCrash) {
  Rng rng(2);
  int accepted = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    std::string input = RandomTokens(rng, 14);
    auto parsed = ParseQuery(input);
    if (parsed.ok()) {
      ++accepted;
      // Structural sanity of whatever was accepted.
      EXPECT_FALSE(parsed->class_name.empty());
      EXPECT_FALSE(parsed->predicates.empty());
      for (const auto& p : parsed->predicates) {
        EXPECT_FALSE(p.attribute.empty());
        EXPECT_FALSE(p.literals.empty());
      }
    } else {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
  // The token soup occasionally forms valid queries — make sure the grammar
  // is actually reachable from the generator (guards the fuzzer itself).
  EXPECT_GT(accepted, 0);
}

TEST(LanguageFuzzTest, AcceptedQueriesRoundTripThroughPrinting) {
  Rng rng(3);
  int round_tripped = 0;
  for (int trial = 0; trial < 20000 && round_tripped < 50; ++trial) {
    auto parsed = ParseQuery(RandomTokens(rng, 12));
    if (!parsed.ok()) continue;
    // Print the parse tree back into query text.
    std::string text = "select " + parsed->class_name + " where ";
    for (size_t i = 0; i < parsed->predicates.size(); ++i) {
      const ParsedPredicate& p = parsed->predicates[i];
      if (i > 0) text += " and ";
      text += p.attribute + " ";
      switch (p.kind) {
        case QueryKind::kSuperset:
          text += "has-subset";
          break;
        case QueryKind::kSubset:
          text += "in-subset";
          break;
        case QueryKind::kProperSuperset:
          text += "has-proper-subset";
          break;
        case QueryKind::kProperSubset:
          text += "in-proper-subset";
          break;
        case QueryKind::kEquals:
          text += "equals";
          break;
        case QueryKind::kOverlaps:
          text += "overlaps";
          break;
      }
      text += " (";
      for (size_t j = 0; j < p.literals.size(); ++j) {
        if (j > 0) text += ", ";
        if (p.literals[j].is_string) {
          text += "\"" + p.literals[j].text + "\"";
        } else {
          text += std::to_string(p.literals[j].number);
        }
      }
      text += ")";
    }
    auto reparsed = ParseQuery(text);
    ASSERT_TRUE(reparsed.ok()) << text;
    ASSERT_EQ(reparsed->predicates.size(), parsed->predicates.size());
    EXPECT_EQ(reparsed->class_name, parsed->class_name);
    for (size_t i = 0; i < parsed->predicates.size(); ++i) {
      EXPECT_EQ(reparsed->predicates[i].attribute,
                parsed->predicates[i].attribute);
      EXPECT_EQ(reparsed->predicates[i].kind, parsed->predicates[i].kind);
      EXPECT_EQ(reparsed->predicates[i].literals.size(),
                parsed->predicates[i].literals.size());
    }
    ++round_tripped;
  }
  EXPECT_GE(round_tripped, 50);
}

TEST(LanguageFuzzTest, PathologicalInputs) {
  // Long strings, deep conjunctions, huge numbers, empty-ish forms.
  std::string long_string = "select C where a has-subset (\"";
  long_string.append(100000, 'x');
  long_string += "\")";
  EXPECT_TRUE(ParseQuery(long_string).ok());

  std::string deep = "select C where a has-subset (1)";
  for (int i = 0; i < 2000; ++i) deep += " and a has-subset (1)";
  auto parsed = ParseQuery(deep);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->predicates.size(), 2001u);

  EXPECT_TRUE(
      ParseQuery("select C where a has-subset (18446744073709551615)").ok());
  EXPECT_FALSE(ParseQuery(std::string(1, '\0')).ok());
  EXPECT_FALSE(ParseQuery("select C where a has-subset (\x01)").ok());
}

}  // namespace
}  // namespace sigsetdb
