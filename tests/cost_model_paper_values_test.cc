// Pins the analytical cost model to the numbers the paper itself reports.
// These are the ground-truth anchors of the reproduction: Table 2's derived
// constants, Table 5's NIX storage, the SSF/NIX storage ratios of §6, the
// BSSF operating points visible in Figures 5 and 8, and Table 7's update
// costs.

#include <cmath>

#include <gtest/gtest.h>

#include "model/actual_drops.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "model/false_drop.h"

namespace sigsetdb {
namespace {

DatabaseParams Paper() { return DatabaseParams{}; }
NixParams PaperNix() { return NixParams{}; }

TEST(PaperValuesTest, Table2DerivedConstants) {
  DatabaseParams db = Paper();
  EXPECT_EQ(db.OidsPerPage(), 512);   // O_d
  EXPECT_EQ(db.OidFilePages(), 63);   // SC_OID
  EXPECT_EQ(db.PageBits(), 32768);
}

TEST(PaperValuesTest, Table5NixStorage) {
  DatabaseParams db = Paper();
  NixParams nix = PaperNix();
  EXPECT_EQ(NixLeafPages(db, nix, 10), 685);
  EXPECT_EQ(NixNonLeafPages(db, nix, 10), 5);
  EXPECT_EQ(NixStorageCost(db, nix, 10), 690);
  EXPECT_EQ(NixLeafPages(db, nix, 100), 6500);
  EXPECT_EQ(NixNonLeafPages(db, nix, 100), 31);
  EXPECT_EQ(NixStorageCost(db, nix, 100), 6531);
}

TEST(PaperValuesTest, NixLookupCostIsThreePages) {
  DatabaseParams db = Paper();
  NixParams nix = PaperNix();
  EXPECT_EQ(NixHeight(db, nix, 10), 2);
  EXPECT_EQ(NixHeight(db, nix, 100), 2);
  EXPECT_EQ(NixLookupCost(db, nix, 10), 3);  // rc = 2 + 1
}

TEST(PaperValuesTest, SsfStorageRatiosFromSection6) {
  DatabaseParams db = Paper();
  // Dt=10: SSF ≈ 45% (F=250) and 80% (F=500) of NIX's 690 pages.
  EXPECT_EQ(SsfSignaturePages(db, {250, 17}), 245);
  EXPECT_EQ(SsfStorageCost(db, {250, 17}), 308);
  EXPECT_NEAR(308.0 / 690.0, 0.45, 0.01);
  EXPECT_EQ(SsfSignaturePages(db, {500, 35}), 493);
  EXPECT_EQ(SsfStorageCost(db, {500, 35}), 556);
  EXPECT_NEAR(556.0 / 690.0, 0.80, 0.01);
  // Dt=100: 16% (F=1000) and 38% (F=2500) of NIX's 6531 pages.
  EXPECT_NEAR(SsfStorageCost(db, {1000, 7}) / 6531.0, 0.16, 0.01);
  EXPECT_NEAR(SsfStorageCost(db, {2500, 17}) / 6531.0, 0.38, 0.01);
}

TEST(PaperValuesTest, BssfSliceIsOnePage) {
  EXPECT_EQ(BssfSlicePages(Paper()), 1);
}

TEST(PaperValuesTest, BssfStorageNearSsf) {
  DatabaseParams db = Paper();
  // §6: "the storage cost of BSSF ... is almost same as that of SSF".
  EXPECT_EQ(BssfStorageCost(db, {250, 2}), 313);   // vs SSF 308
  EXPECT_EQ(BssfStorageCost(db, {500, 2}), 563);   // vs SSF 556
  EXPECT_EQ(BssfStorageCost(db, {2500, 3}), 2563);  // vs NIX 6531 (~38%)
}

TEST(PaperValuesTest, Fig5OperatingPoints) {
  DatabaseParams db = Paper();
  SignatureParams sig{500, 2};
  // Dq=2 => m_q ≈ 4 slices and negligible drops: RC ≈ 4.0 pages.
  EXPECT_NEAR(BssfRetrievalSuperset(db, sig, 10, 2), 4.0, 0.35);
  // Dq=3 => RC ≈ 6.0 pages.
  EXPECT_NEAR(BssfRetrievalSuperset(db, sig, 10, 3), 6.0, 0.1);
  // Dq=1: false drops blow the cost up; NIX (3 + 24.6) wins.
  double bssf1 = BssfRetrievalSuperset(db, sig, 10, 1);
  double nix1 = NixRetrievalSuperset(db, PaperNix(), 10, 1);
  EXPECT_NEAR(nix1, 27.6, 0.1);
  EXPECT_GT(bssf1, 100.0);
}

TEST(PaperValuesTest, Fig8SlicePageCounts) {
  // §5.2.2 compares the bit-slice page term for Dq=100 vs Dq=300
  // (m=2, F=500): the model gives 335 vs 150, difference 185 pages (the
  // paper's printed difference; see DESIGN.md for the OCR note).
  SignatureParams sig{500, 2};
  double slices_100 = 500.0 - ExpectedSignatureWeight(sig, 100);
  double slices_300 = 500.0 - ExpectedSignatureWeight(sig, 300);
  EXPECT_NEAR(slices_100, 335.0, 1.0);
  EXPECT_NEAR(slices_300, 150.0, 1.5);
  EXPECT_NEAR(slices_100 - slices_300, 185.0, 2.0);
}

TEST(PaperValuesTest, Fig8MinimumNearDq300) {
  // The plain BSSF subset cost for m=2, F=500, Dt=10 is minimized around
  // Dq ≈ 290-300 (paper: "the graph ... has the minimum value for Dq≈300").
  DatabaseParams db = Paper();
  SignatureParams sig{500, 2};
  double dq_opt = BssfDqOpt(db, sig, 10);
  EXPECT_NEAR(dq_opt, 290.0, 15.0);
  // It is a genuine minimum of the cost curve.
  double at_opt = BssfRetrievalSubset(db, sig, 10,
                                      static_cast<int64_t>(dq_opt));
  EXPECT_LT(at_opt, BssfRetrievalSubset(db, sig, 10, 100));
  EXPECT_LT(at_opt, BssfRetrievalSubset(db, sig, 10, 600));
}

TEST(PaperValuesTest, Table7UpdateCosts) {
  DatabaseParams db = Paper();
  NixParams nix = PaperNix();
  EXPECT_DOUBLE_EQ(SsfInsertCost(), 2.0);
  EXPECT_DOUBLE_EQ(SsfDeleteCost(db), 31.5);          // SC_OID/2
  EXPECT_DOUBLE_EQ(BssfInsertCost({250, 2}), 251.0);  // F + 1
  EXPECT_DOUBLE_EQ(BssfInsertCost({2500, 3}), 2501.0);
  EXPECT_DOUBLE_EQ(BssfDeleteCost(db), 31.5);
  EXPECT_DOUBLE_EQ(NixInsertCost(db, nix, 10), 30.0);   // rc·Dt
  EXPECT_DOUBLE_EQ(NixDeleteCost(db, nix, 100), 300.0);
}

TEST(PaperValuesTest, SparseInsertBeatsNaive) {
  // The §6 improvement: expected touched slices m_t + 1 ≪ F + 1.
  SignatureParams sig{250, 2};
  double sparse = BssfInsertCostSparse(sig, 10);
  EXPECT_NEAR(sparse, 20.6, 0.5);
  EXPECT_LT(sparse, BssfInsertCost(sig) / 10.0);
}

TEST(PaperValuesTest, SsfFullScanDominatesItsRetrieval) {
  // Fig. 4: the SSF curves sit at ≈ SC_SIG (245 / 493) because at m_opt the
  // false drops are negligible.
  DatabaseParams db = Paper();
  for (int64_t dq = 1; dq <= 10; ++dq) {
    double rc250 = SsfRetrievalCost(db, {250, 17}, 10, dq,
                                    QueryKind::kSuperset);
    EXPECT_GE(rc250, 245.0);
    // Overhead above the scan: LC_OID + actual drops (24.6 each at Dq=1).
    EXPECT_LE(rc250, 245.0 + 60.0);
    double rc500 = SsfRetrievalCost(db, {500, 35}, 10, dq,
                                    QueryKind::kSuperset);
    EXPECT_GE(rc500, 493.0);
    EXPECT_LE(rc500, 493.0 + 60.0);
  }
}

TEST(PaperValuesTest, Fig4BssfAtMoptGrowsWithDq) {
  DatabaseParams db = Paper();
  SignatureParams sig{500, 35};
  // Dq=1 pays for the actual drops (A ≈ 24.6); from Dq=2 on the cost is
  // dominated by the m_q slice reads, which grow with Dq.
  double prev = BssfRetrievalSuperset(db, sig, 10, 2);
  for (int64_t dq = 3; dq <= 10; ++dq) {
    double rc = BssfRetrievalSuperset(db, sig, 10, dq);
    EXPECT_GT(rc, prev);
    prev = rc;
  }
  // And NIX beats it across Fig. 4's whole range.
  for (int64_t dq = 1; dq <= 10; ++dq) {
    EXPECT_LT(NixRetrievalSuperset(db, PaperNix(), 10, dq),
              BssfRetrievalSuperset(db, sig, 10, dq));
  }
}

TEST(PaperValuesTest, SubsetTrendsOfFig8) {
  DatabaseParams db = Paper();
  NixParams nix = PaperNix();
  SignatureParams sig{500, 2};
  // BSSF below SSF for all Dq (§5.2.1 "superiority of BSSF over SSF").
  for (int64_t dq : {10, 50, 100, 300, 600, 1000}) {
    EXPECT_LT(BssfRetrievalSubset(db, sig, 10, dq),
              SsfRetrievalCost(db, sig, 10, dq, QueryKind::kSubset) + 1e-9)
        << "Dq=" << dq;
  }
  // NIX cost monotonically increases with Dq.
  double prev = 0.0;
  for (int64_t dq : {10, 50, 100, 300, 600, 1000}) {
    double rc = NixRetrievalSubset(db, nix, 10, dq);
    EXPECT_GT(rc, prev);
    prev = rc;
  }
  // For large Dq the false-drop rate approaches 1 (0.69 at Dq=1000) and the
  // signature costs head toward P_u·N: most objects get fetched.
  EXPECT_GT(SsfRetrievalCost(db, sig, 10, 1000, QueryKind::kSubset),
            0.6 * static_cast<double>(db.n));
}

}  // namespace
}  // namespace sigsetdb
