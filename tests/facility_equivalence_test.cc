// Cross-facility equivalence sweep: for every query kind and a grid of
// signature configurations, all three access facilities must return exactly
// the brute-force answer after resolution.  This is the end-to-end
// correctness property underpinning every cost comparison in the paper —
// the facilities differ in cost only, never in results.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "query/executor.h"
#include "test_db.h"

namespace sigsetdb {
namespace {

struct EquivalenceCase {
  uint32_t f;
  uint32_t m;
  int64_t dt;
  int64_t dq_superset;
  int64_t dq_subset;
};

class FacilityEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(FacilityEquivalenceTest, AllFacilitiesAgreeWithBruteForce) {
  const EquivalenceCase& c = GetParam();
  TestDatabase::Options options;
  options.n = 600;
  options.v = 300;
  options.dt = c.dt;
  options.sig = {c.f, c.m};
  options.seed = c.f * 1000 + c.m;
  TestDatabase db(options);
  Rng rng(c.f + c.m);

  for (int trial = 0; trial < 5; ++trial) {
    // Superset query biased to hit (subset of a stored set).
    const ElementSet& target = db.sets()[rng.NextBelow(db.sets().size())];
    ElementSet superset_query = MakeHittingSupersetQuery(
        target, std::min<int64_t>(c.dq_superset, c.dt), rng);
    // Subset query biased to hit (superset of a stored set).
    ElementSet subset_query =
        MakeHittingSubsetQuery(target, options.v, c.dq_subset, rng);
    // And two unbiased queries (mostly unsuccessful searches).
    ElementSet random_small = rng.SampleWithoutReplacement(
        static_cast<uint64_t>(options.v),
        static_cast<uint64_t>(c.dq_superset));
    ElementSet random_large = rng.SampleWithoutReplacement(
        static_cast<uint64_t>(options.v), static_cast<uint64_t>(c.dq_subset));

    struct QueryCase {
      QueryKind kind;
      const ElementSet* query;
    };
    const QueryCase cases[] = {
        {QueryKind::kSuperset, &superset_query},
        {QueryKind::kSuperset, &random_small},
        {QueryKind::kSubset, &subset_query},
        {QueryKind::kSubset, &random_large},
        {QueryKind::kProperSuperset, &superset_query},
        {QueryKind::kProperSubset, &subset_query},
        {QueryKind::kEquals, &target},
        {QueryKind::kOverlaps, &random_small},
    };
    for (const auto& qc : cases) {
      std::vector<Oid> expected = db.BruteForce(qc.kind, *qc.query);
      for (SetAccessFacility* facility :
           {static_cast<SetAccessFacility*>(&db.ssf()),
            static_cast<SetAccessFacility*>(&db.bssf()),
            static_cast<SetAccessFacility*>(&db.nix())}) {
        auto result =
            ExecuteSetQuery(facility, db.store(), qc.kind, *qc.query);
        ASSERT_TRUE(result.ok())
            << facility->name() << " " << QueryKindName(qc.kind);
        std::vector<Oid> got = result->oids;
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, expected)
            << facility->name() << " kind=" << QueryKindName(qc.kind)
            << " trial=" << trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, FacilityEquivalenceTest,
    ::testing::Values(
        EquivalenceCase{64, 1, 4, 2, 30},    // tiny, collision-heavy sigs
        EquivalenceCase{128, 2, 6, 3, 40},
        EquivalenceCase{250, 2, 8, 2, 50},   // paper-style small m
        EquivalenceCase{250, 17, 8, 4, 50},  // paper-style m_opt
        EquivalenceCase{500, 2, 10, 2, 60},
        EquivalenceCase{500, 35, 10, 5, 60},
        EquivalenceCase{1000, 3, 12, 3, 80},
        EquivalenceCase{2500, 3, 16, 4, 100}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return "F" + std::to_string(info.param.f) + "m" +
             std::to_string(info.param.m) + "Dt" +
             std::to_string(info.param.dt);
    });

// Deletion equivalence: removing objects keeps all facilities consistent.
TEST(FacilityDeletionTest, DeletedObjectsVanishEverywhere) {
  TestDatabase::Options options;
  options.n = 300;
  options.v = 150;
  options.dt = 5;
  TestDatabase db(options);
  Rng rng(99);
  // Delete every 7th object from object store and all facilities.
  std::set<size_t> deleted;
  for (size_t i = 0; i < db.oids().size(); i += 7) {
    deleted.insert(i);
    ASSERT_TRUE(db.store().Delete(db.oids()[i]).ok());
    ASSERT_TRUE(db.ssf().Remove(db.oids()[i], db.sets()[i]).ok());
    ASSERT_TRUE(db.bssf().Remove(db.oids()[i], db.sets()[i]).ok());
    ASSERT_TRUE(db.nix().Remove(db.oids()[i], db.sets()[i]).ok());
  }
  for (int trial = 0; trial < 5; ++trial) {
    ElementSet query = rng.SampleWithoutReplacement(
        static_cast<uint64_t>(options.v), 2);
    // Brute force over the survivors.
    std::vector<Oid> expected;
    for (size_t i = 0; i < db.sets().size(); ++i) {
      if (deleted.count(i)) continue;
      if (IsSubset(query, db.sets()[i])) expected.push_back(db.oids()[i]);
    }
    for (SetAccessFacility* facility :
         {static_cast<SetAccessFacility*>(&db.ssf()),
          static_cast<SetAccessFacility*>(&db.bssf()),
          static_cast<SetAccessFacility*>(&db.nix())}) {
      auto result =
          ExecuteSetQuery(facility, db.store(), QueryKind::kSuperset, query);
      ASSERT_TRUE(result.ok()) << facility->name();
      std::vector<Oid> got = result->oids;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << facility->name() << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace sigsetdb
