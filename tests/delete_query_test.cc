// Delete-then-query differential suite: after arbitrary interleavings of
// inserts and deletes (singleton and batched), every facility must answer
// every QueryKind exactly like a brute-force scan of the live objects —
// serially and with a 4-thread pool, before and after Compact().

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "db/set_index.h"
#include "db/write_batch.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace sigsetdb {
namespace {

constexpr uint64_t kDomain = 200;
constexpr uint64_t kDt = 6;

SetIndex::Options AllFacilities(size_t num_threads) {
  SetIndex::Options options;
  options.maintain_ssf = true;
  options.maintain_bssf = true;
  options.maintain_nix = true;
  options.sig = {128, 2};
  options.capacity = 4096;
  options.domain_estimate = static_cast<int64_t>(kDomain);
  options.num_threads = num_threads;
  return options;
}

bool Hits(const ElementSet& value, QueryKind kind, const ElementSet& query) {
  StoredObject probe;
  probe.set_value = value;
  switch (kind) {
    case QueryKind::kSuperset:
      return SatisfiesSuperset(probe, query);
    case QueryKind::kSubset:
      return SatisfiesSubset(probe, query);
    case QueryKind::kProperSuperset:
      return SatisfiesProperSuperset(probe, query);
    case QueryKind::kProperSubset:
      return SatisfiesProperSubset(probe, query);
    case QueryKind::kEquals:
      return SatisfiesEquals(probe, query);
    case QueryKind::kOverlaps:
      return SatisfiesOverlap(probe, query);
  }
  return false;
}

constexpr QueryKind kAllKinds[] = {
    QueryKind::kSuperset,      QueryKind::kSubset,
    QueryKind::kProperSuperset, QueryKind::kProperSubset,
    QueryKind::kEquals,        QueryKind::kOverlaps};

// Runs a delete-heavy workload against one index and cross-checks every
// (facility, kind) pair against the live-object oracle.
class DeleteQueryTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    auto index =
        SetIndex::Create(&storage_, "dq", AllFacilities(GetParam()));
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = std::move(*index);
  }

  void Insert(const ElementSet& set) {
    auto oid = index_->Insert(set);
    ASSERT_TRUE(oid.ok()) << oid.status().ToString();
    ElementSet n = set;
    NormalizeSet(&n);
    live_[*oid] = n;
  }

  void Delete(Oid oid) {
    ASSERT_TRUE(index_->Delete(oid).ok());
    live_.erase(oid);
  }

  void ApplyBatch(const WriteBatch& batch) {
    auto oids = index_->ApplyBatch(batch);
    ASSERT_TRUE(oids.ok()) << oids.status().ToString();
    for (Oid oid : batch.deletes()) live_.erase(oid);
    for (size_t i = 0; i < batch.inserts().size(); ++i) {
      ElementSet n = batch.inserts()[i];
      NormalizeSet(&n);
      live_[(*oids)[i]] = n;
    }
  }

  std::vector<Oid> Oracle(QueryKind kind, const ElementSet& query) const {
    std::vector<Oid> out;
    for (const auto& [oid, set] : live_) {
      if (Hits(set, kind, query)) out.push_back(oid);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  void CheckAllKindsAllFacilities(uint64_t seed) {
    Rng rng(seed);
    for (QueryKind kind : kAllKinds) {
      for (int t = 0; t < 4; ++t) {
        ElementSet query;
        if (kind == QueryKind::kEquals ||
            kind == QueryKind::kProperSuperset) {
          // Target a stored value so the strict/equal kinds get real hits.
          auto it = live_.begin();
          std::advance(it, static_cast<ptrdiff_t>(
                               rng.NextBelow(live_.size())));
          query = it->second;
          if (kind == QueryKind::kProperSuperset && query.size() > 1) {
            query.pop_back();
          }
        } else if (kind == QueryKind::kSubset ||
                   kind == QueryKind::kProperSubset) {
          auto it = live_.begin();
          std::advance(it, static_cast<ptrdiff_t>(
                               rng.NextBelow(live_.size())));
          query = MakeHittingSubsetQuery(it->second, kDomain, 40, rng);
        } else {
          query = rng.SampleWithoutReplacement(kDomain, 2 + t);
        }
        NormalizeSet(&query);
        if (query.empty()) continue;
        const std::vector<Oid> expected = Oracle(kind, query);
        for (PlanMode mode :
             {PlanMode::kForceSsf, PlanMode::kForceBssf, PlanMode::kForceNix,
              PlanMode::kAuto}) {
          auto result = index_->Query(kind, query, mode);
          ASSERT_TRUE(result.ok())
              << QueryKindName(kind) << ": " << result.status().ToString();
          std::vector<Oid> got = result->result.oids;
          std::sort(got.begin(), got.end());
          EXPECT_EQ(got, expected)
              << QueryKindName(kind) << " plan=" << result->plan
              << " threads=" << GetParam();
        }
      }
    }
  }

  StorageManager storage_;
  std::unique_ptr<SetIndex> index_;
  std::map<Oid, ElementSet> live_;
};

TEST_P(DeleteQueryTest, SingletonDeletesThenQueries) {
  Rng rng(1);
  for (int i = 0; i < 150; ++i) {
    Insert(rng.SampleWithoutReplacement(kDomain, kDt));
  }
  // Delete 50 random objects one at a time.
  for (int i = 0; i < 50; ++i) {
    auto it = live_.begin();
    std::advance(it,
                 static_cast<ptrdiff_t>(rng.NextBelow(live_.size())));
    Delete(it->first);
  }
  ASSERT_EQ(live_.size(), 100u);
  CheckAllKindsAllFacilities(2);
}

TEST_P(DeleteQueryTest, BatchedChurnThenQueries) {
  Rng rng(3);
  WriteBatch seed_batch;
  for (int i = 0; i < 150; ++i) {
    seed_batch.Insert(rng.SampleWithoutReplacement(kDomain, kDt));
  }
  ApplyBatch(seed_batch);
  for (int round = 0; round < 3; ++round) {
    // Pick 30 distinct victims via a random sample of live positions.
    std::vector<Oid> live_oids;
    live_oids.reserve(live_.size());
    for (const auto& [oid, set] : live_) live_oids.push_back(oid);
    ElementSet positions = rng.SampleWithoutReplacement(live_oids.size(), 30);
    WriteBatch batch;
    for (uint64_t pos : positions) batch.Delete(live_oids[pos]);
    for (int i = 0; i < 25; ++i) {
      batch.Insert(rng.SampleWithoutReplacement(kDomain, kDt));
    }
    ApplyBatch(batch);
    CheckAllKindsAllFacilities(10 + static_cast<uint64_t>(round));
  }
}

TEST_P(DeleteQueryTest, QueriesStayExactAfterCompact) {
  Rng rng(5);
  WriteBatch seed_batch;
  for (int i = 0; i < 160; ++i) {
    seed_batch.Insert(rng.SampleWithoutReplacement(kDomain, kDt));
  }
  ApplyBatch(seed_batch);
  WriteBatch deletes;
  int parity = 0;
  for (const auto& [oid, set] : live_) {
    if (++parity % 2 == 0) deletes.Delete(oid);
  }
  ApplyBatch(deletes);
  CheckAllKindsAllFacilities(20);

  ASSERT_TRUE(index_->Compact().ok());
  EXPECT_EQ(index_->ssf()->num_signatures(), live_.size());
  CheckAllKindsAllFacilities(21);

  // Writes keep working after compaction (fresh appends + further churn).
  WriteBatch more;
  for (int i = 0; i < 20; ++i) {
    more.Insert(rng.SampleWithoutReplacement(kDomain, kDt));
  }
  ApplyBatch(more);
  CheckAllKindsAllFacilities(22);
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, DeleteQueryTest,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace sigsetdb
