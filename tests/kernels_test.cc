// Property tests for the dispatched signature kernels (DESIGN.md §12).
//
// The contract under test: every dispatch target (portable, AVX2 when the
// CPU has it) is bit-identical to the scalar reference for all four kernels,
// across every length/alignment class a caller can produce — empty, tails of
// 0–3 words beyond the unroll width, single-word, page-sized (512 words),
// and the 4096-bit slice accumulators the benches use.  Seeded random inputs
// plus adversarial patterns (all-zero, all-ones, single-bit violations at
// every word) make the comparison exhaustive in structure, not just volume.
//
// These tests run under tools/run_sanitizers.sh kernels as well: the AVX2
// bodies do unaligned 256-bit loads right up to the buffer tail, which is
// exactly what ASan must vet.

#include "sig/kernels.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

// Every dispatch target available on this machine, oracle excluded.
std::vector<const SignatureKernels*> TargetsUnderTest() {
  std::vector<const SignatureKernels*> targets = {&PortableKernels()};
  if (Avx2Kernels() != nullptr && Avx2Supported()) {
    targets.push_back(Avx2Kernels());
  }
  // The dispatched table must be one of the above, never something else.
  targets.push_back(&ActiveKernels());
  return targets;
}

// Word counts covering every tail class of both unroll widths (4 for the
// portable loops, 8 for the AVX2 and_accumulate/or_accumulate): 0, 1, the
// boundary ±tail around 4 and 8, a page worth (512 = kPageSize/8), and the
// 4096-bit accumulator (64 words) bench_kernels drives.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                           12, 15, 16, 17, 31, 33, 64, 512, 513};

std::vector<uint64_t> RandomWords(Rng* rng, size_t n) {
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) w = rng->Next();
  return words;
}

TEST(KernelDispatchTest, ActiveIsPortableOrAvx2) {
  const SignatureKernels& active = ActiveKernels();
  const bool is_portable = &active == &PortableKernels();
  const bool is_avx2 = Avx2Kernels() != nullptr && &active == Avx2Kernels();
  EXPECT_TRUE(is_portable || is_avx2) << "dispatched to: " << active.name;
  if (is_avx2) {
    EXPECT_TRUE(Avx2Supported());
  }
}

TEST(KernelPropertyTest, AndAccumulateMatchesScalar) {
  Rng rng(101);
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t n : kLengths) {
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<uint64_t> acc = RandomWords(&rng, n);
        std::vector<uint64_t> src = RandomWords(&rng, n);
        std::vector<uint64_t> expected = acc;
        ScalarKernels().and_accumulate(expected.data(), src.data(), n);
        k->and_accumulate(acc.data(), src.data(), n);
        ASSERT_EQ(acc, expected) << k->name << " n=" << n;
      }
    }
  }
}

TEST(KernelPropertyTest, OrAccumulateMatchesScalar) {
  Rng rng(102);
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t n : kLengths) {
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<uint64_t> acc = RandomWords(&rng, n);
        std::vector<uint64_t> src = RandomWords(&rng, n);
        std::vector<uint64_t> expected = acc;
        ScalarKernels().or_accumulate(expected.data(), src.data(), n);
        k->or_accumulate(acc.data(), src.data(), n);
        ASSERT_EQ(acc, expected) << k->name << " n=" << n;
      }
    }
  }
}

TEST(KernelPropertyTest, ContainsAllMatchesScalarOnRandomPairs) {
  Rng rng(103);
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t n : kLengths) {
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<uint64_t> super = RandomWords(&rng, n);
        // Half the trials build a genuine subset (sub = super & mask) so the
        // true branch is exercised as often as the false one.
        std::vector<uint64_t> sub(n);
        if (trial % 2 == 0) {
          for (size_t i = 0; i < n; ++i) sub[i] = super[i] & rng.Next();
        } else {
          sub = RandomWords(&rng, n);
        }
        const bool expected =
            ScalarKernels().contains_all(sub.data(), super.data(), n);
        ASSERT_EQ(k->contains_all(sub.data(), super.data(), n), expected)
            << k->name << " n=" << n << " trial=" << trial;
      }
    }
  }
}

// A single violating bit planted in every word position, everything else a
// perfect subset: catches kernels that test only part of the tail.
TEST(KernelPropertyTest, ContainsAllSeesSingleBitViolationEverywhere) {
  Rng rng(104);
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t n : kLengths) {
      if (n == 0) continue;
      std::vector<uint64_t> super = RandomWords(&rng, n);
      std::vector<uint64_t> sub(n);
      for (size_t i = 0; i < n; ++i) sub[i] = super[i];
      ASSERT_TRUE(k->contains_all(sub.data(), super.data(), n)) << k->name;
      for (size_t i = 0; i < n; ++i) {
        const size_t bit = rng.NextBelow(64);
        const uint64_t mask = uint64_t{1} << bit;
        const uint64_t saved_sub = sub[i];
        const uint64_t saved_super = super[i];
        sub[i] |= mask;
        super[i] &= ~mask;
        ASSERT_FALSE(k->contains_all(sub.data(), super.data(), n))
            << k->name << " n=" << n << " violating word " << i;
        sub[i] = saved_sub;
        super[i] = saved_super;
      }
    }
  }
}

TEST(KernelPropertyTest, PopcountAndMatchesScalar) {
  Rng rng(105);
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t n : kLengths) {
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<uint64_t> a = RandomWords(&rng, n);
        std::vector<uint64_t> b = RandomWords(&rng, n);
        ASSERT_EQ(k->popcount_and(a.data(), b.data(), n),
                  ScalarKernels().popcount_and(a.data(), b.data(), n))
            << k->name << " n=" << n;
      }
    }
  }
}

TEST(KernelPropertyTest, EdgePatterns) {
  const std::vector<uint64_t> zeros(513, 0);
  const std::vector<uint64_t> ones(513, ~uint64_t{0});
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t n : kLengths) {
      std::vector<uint64_t> acc(ones.begin(), ones.begin() + n);
      k->and_accumulate(acc.data(), zeros.data(), n);
      EXPECT_EQ(acc, std::vector<uint64_t>(zeros.begin(), zeros.begin() + n))
          << k->name;
      k->or_accumulate(acc.data(), ones.data(), n);
      EXPECT_EQ(acc, std::vector<uint64_t>(ones.begin(), ones.begin() + n))
          << k->name;
      EXPECT_TRUE(k->contains_all(zeros.data(), zeros.data(), n)) << k->name;
      EXPECT_TRUE(k->contains_all(zeros.data(), ones.data(), n)) << k->name;
      EXPECT_TRUE(k->contains_all(ones.data(), ones.data(), n)) << k->name;
      if (n > 0) {
        EXPECT_FALSE(k->contains_all(ones.data(), zeros.data(), n))
            << k->name;
      }
      EXPECT_EQ(k->popcount_and(ones.data(), ones.data(), n), n * 64)
          << k->name;
      EXPECT_EQ(k->popcount_and(ones.data(), zeros.data(), n), 0u) << k->name;
    }
  }
}

// Kernels run over word views that start mid-allocation (slice accumulators
// advance words_done words into the vector), so every relative misalignment
// of acc vs src against the 32-byte vector width must work.  ASan-observed.
TEST(KernelPropertyTest, MisalignedViewsMatchScalar) {
  Rng rng(106);
  constexpr size_t kSpan = 64;
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t acc_off = 0; acc_off < 4; ++acc_off) {
      for (size_t src_off = 0; src_off < 4; ++src_off) {
        std::vector<uint64_t> acc_buf = RandomWords(&rng, kSpan + 4);
        std::vector<uint64_t> src_buf = RandomWords(&rng, kSpan + 4);
        std::vector<uint64_t> expected_buf = acc_buf;
        ScalarKernels().and_accumulate(expected_buf.data() + acc_off,
                                       src_buf.data() + src_off, kSpan);
        k->and_accumulate(acc_buf.data() + acc_off, src_buf.data() + src_off,
                          kSpan);
        ASSERT_EQ(acc_buf, expected_buf)
            << k->name << " acc_off=" << acc_off << " src_off=" << src_off;
        ASSERT_EQ(k->contains_all(acc_buf.data() + acc_off,
                                  src_buf.data() + src_off, kSpan),
                  ScalarKernels().contains_all(acc_buf.data() + acc_off,
                                               src_buf.data() + src_off,
                                               kSpan))
            << k->name;
        ASSERT_EQ(k->popcount_and(acc_buf.data() + acc_off,
                                  src_buf.data() + src_off, kSpan),
                  ScalarKernels().popcount_and(acc_buf.data() + acc_off,
                                               src_buf.data() + src_off,
                                               kSpan))
            << k->name;
      }
    }
  }
}

// The BitVector wrappers preserve the tail invariant (padding bits beyond
// size() stay zero) because both operands already uphold it and AND/OR never
// set a bit that is clear in both.
TEST(KernelBitVectorTest, WrappersPreserveTailInvariant) {
  Rng rng(107);
  for (size_t bits : {1u, 63u, 64u, 65u, 250u, 4096u}) {
    BitVector a(bits);
    BitVector b(bits);
    for (size_t i = 0; i < bits; ++i) {
      if (rng.NextDouble() < 0.5) a.Set(i);
      if (rng.NextDouble() < 0.5) b.Set(i);
    }
    ASSERT_TRUE(a.PaddingIsClean());
    BitVector and_acc = a;
    KernelAndWith(&and_acc, b);
    EXPECT_TRUE(and_acc.PaddingIsClean()) << bits;
    BitVector or_acc = a;
    KernelOrWith(&or_acc, b);
    EXPECT_TRUE(or_acc.PaddingIsClean()) << bits;
    // Wrapper results agree with the member-function loops.
    BitVector and_ref = a;
    and_ref.AndWith(b);
    EXPECT_TRUE(and_acc == and_ref);
    BitVector or_ref = a;
    or_ref.OrWith(b);
    EXPECT_TRUE(or_acc == or_ref);
    EXPECT_EQ(KernelIsSubsetOf(a, b), a.IsSubsetOf(b));
    EXPECT_EQ(KernelCountAnd(a, b), a.CountAnd(b));
  }
}

}  // namespace
}  // namespace sigsetdb
