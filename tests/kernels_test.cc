// Property tests for the dispatched signature kernels (DESIGN.md §12).
//
// The contract under test: every dispatch target (portable, AVX2 when the
// CPU has it) is bit-identical to the scalar reference for all four kernels,
// across every length/alignment class a caller can produce — empty, tails of
// 0–3 words beyond the unroll width, single-word, page-sized (512 words),
// and the 4096-bit slice accumulators the benches use.  Seeded random inputs
// plus adversarial patterns (all-zero, all-ones, single-bit violations at
// every word) make the comparison exhaustive in structure, not just volume.
//
// These tests run under tools/run_sanitizers.sh kernels as well: the AVX2
// bodies do unaligned 256-bit loads right up to the buffer tail, which is
// exactly what ASan must vet.

#include "sig/kernels.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

// Every dispatch target available on this machine, oracle excluded.
std::vector<const SignatureKernels*> TargetsUnderTest() {
  std::vector<const SignatureKernels*> targets = {&PortableKernels()};
  if (Avx2Kernels() != nullptr && Avx2Supported()) {
    targets.push_back(Avx2Kernels());
  }
  // The dispatched table must be one of the above, never something else.
  targets.push_back(&ActiveKernels());
  return targets;
}

// Word counts covering every tail class of both unroll widths (4 for the
// portable loops, 8 for the AVX2 and_accumulate/or_accumulate): 0, 1, the
// boundary ±tail around 4 and 8, a page worth (512 = kPageSize/8), and the
// 4096-bit accumulator (64 words) bench_kernels drives.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                           12, 15, 16, 17, 31, 33, 64, 512, 513};

std::vector<uint64_t> RandomWords(Rng* rng, size_t n) {
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) w = rng->Next();
  return words;
}

TEST(KernelDispatchTest, ActiveIsPortableOrAvx2) {
  const SignatureKernels& active = ActiveKernels();
  const bool is_portable = &active == &PortableKernels();
  const bool is_avx2 = Avx2Kernels() != nullptr && &active == Avx2Kernels();
  EXPECT_TRUE(is_portable || is_avx2) << "dispatched to: " << active.name;
  if (is_avx2) {
    EXPECT_TRUE(Avx2Supported());
  }
}

TEST(KernelPropertyTest, AndAccumulateMatchesScalar) {
  Rng rng(101);
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t n : kLengths) {
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<uint64_t> acc = RandomWords(&rng, n);
        std::vector<uint64_t> src = RandomWords(&rng, n);
        std::vector<uint64_t> expected = acc;
        ScalarKernels().and_accumulate(expected.data(), src.data(), n);
        k->and_accumulate(acc.data(), src.data(), n);
        ASSERT_EQ(acc, expected) << k->name << " n=" << n;
      }
    }
  }
}

TEST(KernelPropertyTest, OrAccumulateMatchesScalar) {
  Rng rng(102);
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t n : kLengths) {
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<uint64_t> acc = RandomWords(&rng, n);
        std::vector<uint64_t> src = RandomWords(&rng, n);
        std::vector<uint64_t> expected = acc;
        ScalarKernels().or_accumulate(expected.data(), src.data(), n);
        k->or_accumulate(acc.data(), src.data(), n);
        ASSERT_EQ(acc, expected) << k->name << " n=" << n;
      }
    }
  }
}

TEST(KernelPropertyTest, ContainsAllMatchesScalarOnRandomPairs) {
  Rng rng(103);
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t n : kLengths) {
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<uint64_t> super = RandomWords(&rng, n);
        // Half the trials build a genuine subset (sub = super & mask) so the
        // true branch is exercised as often as the false one.
        std::vector<uint64_t> sub(n);
        if (trial % 2 == 0) {
          for (size_t i = 0; i < n; ++i) sub[i] = super[i] & rng.Next();
        } else {
          sub = RandomWords(&rng, n);
        }
        const bool expected =
            ScalarKernels().contains_all(sub.data(), super.data(), n);
        ASSERT_EQ(k->contains_all(sub.data(), super.data(), n), expected)
            << k->name << " n=" << n << " trial=" << trial;
      }
    }
  }
}

// A single violating bit planted in every word position, everything else a
// perfect subset: catches kernels that test only part of the tail.
TEST(KernelPropertyTest, ContainsAllSeesSingleBitViolationEverywhere) {
  Rng rng(104);
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t n : kLengths) {
      if (n == 0) continue;
      std::vector<uint64_t> super = RandomWords(&rng, n);
      std::vector<uint64_t> sub(n);
      for (size_t i = 0; i < n; ++i) sub[i] = super[i];
      ASSERT_TRUE(k->contains_all(sub.data(), super.data(), n)) << k->name;
      for (size_t i = 0; i < n; ++i) {
        const size_t bit = rng.NextBelow(64);
        const uint64_t mask = uint64_t{1} << bit;
        const uint64_t saved_sub = sub[i];
        const uint64_t saved_super = super[i];
        sub[i] |= mask;
        super[i] &= ~mask;
        ASSERT_FALSE(k->contains_all(sub.data(), super.data(), n))
            << k->name << " n=" << n << " violating word " << i;
        sub[i] = saved_sub;
        super[i] = saved_super;
      }
    }
  }
}

TEST(KernelPropertyTest, PopcountAndMatchesScalar) {
  Rng rng(105);
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t n : kLengths) {
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<uint64_t> a = RandomWords(&rng, n);
        std::vector<uint64_t> b = RandomWords(&rng, n);
        ASSERT_EQ(k->popcount_and(a.data(), b.data(), n),
                  ScalarKernels().popcount_and(a.data(), b.data(), n))
            << k->name << " n=" << n;
      }
    }
  }
}

TEST(KernelPropertyTest, EdgePatterns) {
  const std::vector<uint64_t> zeros(513, 0);
  const std::vector<uint64_t> ones(513, ~uint64_t{0});
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t n : kLengths) {
      std::vector<uint64_t> acc(ones.begin(), ones.begin() + n);
      k->and_accumulate(acc.data(), zeros.data(), n);
      EXPECT_EQ(acc, std::vector<uint64_t>(zeros.begin(), zeros.begin() + n))
          << k->name;
      k->or_accumulate(acc.data(), ones.data(), n);
      EXPECT_EQ(acc, std::vector<uint64_t>(ones.begin(), ones.begin() + n))
          << k->name;
      EXPECT_TRUE(k->contains_all(zeros.data(), zeros.data(), n)) << k->name;
      EXPECT_TRUE(k->contains_all(zeros.data(), ones.data(), n)) << k->name;
      EXPECT_TRUE(k->contains_all(ones.data(), ones.data(), n)) << k->name;
      if (n > 0) {
        EXPECT_FALSE(k->contains_all(ones.data(), zeros.data(), n))
            << k->name;
      }
      EXPECT_EQ(k->popcount_and(ones.data(), ones.data(), n), n * 64)
          << k->name;
      EXPECT_EQ(k->popcount_and(ones.data(), zeros.data(), n), 0u) << k->name;
    }
  }
}

// Kernels run over word views that start mid-allocation (slice accumulators
// advance words_done words into the vector), so every relative misalignment
// of acc vs src against the 32-byte vector width must work.  ASan-observed.
TEST(KernelPropertyTest, MisalignedViewsMatchScalar) {
  Rng rng(106);
  constexpr size_t kSpan = 64;
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t acc_off = 0; acc_off < 4; ++acc_off) {
      for (size_t src_off = 0; src_off < 4; ++src_off) {
        std::vector<uint64_t> acc_buf = RandomWords(&rng, kSpan + 4);
        std::vector<uint64_t> src_buf = RandomWords(&rng, kSpan + 4);
        std::vector<uint64_t> expected_buf = acc_buf;
        ScalarKernels().and_accumulate(expected_buf.data() + acc_off,
                                       src_buf.data() + src_off, kSpan);
        k->and_accumulate(acc_buf.data() + acc_off, src_buf.data() + src_off,
                          kSpan);
        ASSERT_EQ(acc_buf, expected_buf)
            << k->name << " acc_off=" << acc_off << " src_off=" << src_off;
        ASSERT_EQ(k->contains_all(acc_buf.data() + acc_off,
                                  src_buf.data() + src_off, kSpan),
                  ScalarKernels().contains_all(acc_buf.data() + acc_off,
                                               src_buf.data() + src_off,
                                               kSpan))
            << k->name;
        ASSERT_EQ(k->popcount_and(acc_buf.data() + acc_off,
                                  src_buf.data() + src_off, kSpan),
                  ScalarKernels().popcount_and(acc_buf.data() + acc_off,
                                               src_buf.data() + src_off,
                                               kSpan))
            << k->name;
      }
    }
  }
}

// --- intersect_u64: sorted posting-list intersection ---
//
// Contract: exact std::set_intersection semantics (ascending inputs, common
// elements with min-multiplicity on duplicates), out capacity min(na, nb),
// out aliasing neither input.  The AVX2 target mixes three regimes — 4x4
// block compares for balanced distinct inputs, galloping for skewed sizes,
// branchless merge as the duplicate fallback — and each must stay
// bit-identical to the scalar oracle.

// Ascending list of n values; with_dups draws increments from {0,1,2} so
// runs of equal values appear, otherwise increments are >= 1 (distinct).
std::vector<uint64_t> SortedList(Rng* rng, size_t n, bool with_dups) {
  std::vector<uint64_t> v(n);
  uint64_t x = rng->NextBelow(8);
  for (size_t i = 0; i < n; ++i) {
    x += with_dups ? rng->NextBelow(3) : 1 + rng->NextBelow(4);
    v[i] = x;
  }
  return v;
}

std::vector<uint64_t> OracleIntersect(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// Runs `k`'s intersect into an exactly-min(na,nb)-sized buffer (ASan vets
// the capacity contract) and compares against std::set_intersection.
void CheckIntersect(const SignatureKernels* k,
                    const std::vector<uint64_t>& a,
                    const std::vector<uint64_t>& b, const char* what) {
  const std::vector<uint64_t> expected = OracleIntersect(a, b);
  std::vector<uint64_t> out(std::min(a.size(), b.size()));
  const size_t n =
      k->intersect_u64(a.data(), a.size(), b.data(), b.size(), out.data());
  out.resize(n);
  ASSERT_EQ(out, expected) << k->name << " " << what << " na=" << a.size()
                           << " nb=" << b.size();
}

TEST(KernelPropertyTest, IntersectMatchesScalarOnDistinctLists) {
  Rng rng(108);
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t na : kLengths) {
      for (size_t nb : kLengths) {
        for (int trial = 0; trial < 4; ++trial) {
          // Independent draws over the same dense range, so matches and
          // misses interleave throughout both lists.
          std::vector<uint64_t> a = SortedList(&rng, na, /*with_dups=*/false);
          std::vector<uint64_t> b = SortedList(&rng, nb, /*with_dups=*/false);
          CheckIntersect(k, a, b, "distinct");
        }
      }
    }
  }
}

// The AVX2 block compare is only exact on globally distinct inputs; its
// prescan must detect duplicates in EITHER input and fall back.  These lists
// have runs of equal values, where set_intersection semantics demand
// min-multiplicity, not all-pairs matches.
TEST(KernelPropertyTest, IntersectMatchesScalarWithDuplicates) {
  Rng rng(109);
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t na : kLengths) {
      for (size_t nb : kLengths) {
        for (int trial = 0; trial < 4; ++trial) {
          const bool dup_a = trial != 1;
          const bool dup_b = trial != 2;
          std::vector<uint64_t> a = SortedList(&rng, na, dup_a);
          std::vector<uint64_t> b = SortedList(&rng, nb, dup_b);
          CheckIntersect(k, a, b, "dups");
        }
      }
    }
  }
}

// Size ratios >= 32 route into the galloping path; a is built as a sampled
// subsequence of b (plus noise) so every probe regime — hit, miss, probe
// past the end — occurs.
TEST(KernelPropertyTest, IntersectGallopsOnSkewedPairs) {
  Rng rng(110);
  const size_t skews[][2] = {{1, 64}, {3, 1000}, {7, 4096}, {100, 8192}};
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (const auto& skew : skews) {
      const size_t na = skew[0], nb = skew[1];
      for (int trial = 0; trial < 4; ++trial) {
        std::vector<uint64_t> b = SortedList(&rng, nb, /*with_dups=*/false);
        std::vector<uint64_t> a;
        for (size_t i = 0; i < na; ++i) {
          // Half sampled from b (guaranteed hits), half fresh (misses).
          a.push_back(i % 2 == 0 ? b[rng.NextBelow(nb)]
                                 : rng.Next() % (b.back() + 2));
        }
        std::sort(a.begin(), a.end());
        a.erase(std::unique(a.begin(), a.end()), a.end());
        CheckIntersect(k, a, b, "skewed");
        CheckIntersect(k, b, a, "skewed-swapped");
      }
    }
  }
}

TEST(KernelPropertyTest, IntersectEdgeCases) {
  Rng rng(111);
  const std::vector<uint64_t> empty;
  const std::vector<uint64_t> some = SortedList(&rng, 64, false);
  std::vector<uint64_t> shifted = some;
  for (uint64_t& x : shifted) x += some.back() + 1;  // fully disjoint ranges
  for (const SignatureKernels* k : TargetsUnderTest()) {
    CheckIntersect(k, empty, some, "empty-left");
    CheckIntersect(k, some, empty, "empty-right");
    CheckIntersect(k, empty, empty, "empty-both");
    CheckIntersect(k, some, some, "identical");
    CheckIntersect(k, some, shifted, "disjoint");
    CheckIntersect(k, shifted, some, "disjoint-swapped");
  }
}

// Posting lists handed to the kernel are whatever addresses the B-tree
// lookup buffers landed on; every relative misalignment of a, b, and out
// against the 32-byte vector width must work.  ASan-observed.
TEST(KernelPropertyTest, IntersectMisalignedViews) {
  Rng rng(112);
  constexpr size_t kSpan = 96;
  for (const SignatureKernels* k : TargetsUnderTest()) {
    for (size_t a_off = 0; a_off < 4; ++a_off) {
      for (size_t b_off = 0; b_off < 4; ++b_off) {
        std::vector<uint64_t> a_buf = SortedList(&rng, kSpan + 4, false);
        std::vector<uint64_t> b_buf = SortedList(&rng, kSpan + 4, false);
        const std::vector<uint64_t> a(a_buf.begin() + a_off,
                                      a_buf.begin() + a_off + kSpan);
        const std::vector<uint64_t> b(b_buf.begin() + b_off,
                                      b_buf.begin() + b_off + kSpan);
        const std::vector<uint64_t> expected = OracleIntersect(a, b);
        std::vector<uint64_t> out(kSpan + 1);
        const size_t n = k->intersect_u64(a_buf.data() + a_off, kSpan,
                                          b_buf.data() + b_off, kSpan,
                                          out.data() + 1);
        ASSERT_EQ(std::vector<uint64_t>(out.begin() + 1, out.begin() + 1 + n),
                  expected)
            << k->name << " a_off=" << a_off << " b_off=" << b_off;
      }
    }
  }
}

// The BitVector wrappers preserve the tail invariant (padding bits beyond
// size() stay zero) because both operands already uphold it and AND/OR never
// set a bit that is clear in both.
TEST(KernelBitVectorTest, WrappersPreserveTailInvariant) {
  Rng rng(107);
  for (size_t bits : {1u, 63u, 64u, 65u, 250u, 4096u}) {
    BitVector a(bits);
    BitVector b(bits);
    for (size_t i = 0; i < bits; ++i) {
      if (rng.NextDouble() < 0.5) a.Set(i);
      if (rng.NextDouble() < 0.5) b.Set(i);
    }
    ASSERT_TRUE(a.PaddingIsClean());
    BitVector and_acc = a;
    KernelAndWith(&and_acc, b);
    EXPECT_TRUE(and_acc.PaddingIsClean()) << bits;
    BitVector or_acc = a;
    KernelOrWith(&or_acc, b);
    EXPECT_TRUE(or_acc.PaddingIsClean()) << bits;
    // Wrapper results agree with the member-function loops.
    BitVector and_ref = a;
    and_ref.AndWith(b);
    EXPECT_TRUE(and_acc == and_ref);
    BitVector or_ref = a;
    or_ref.OrWith(b);
    EXPECT_TRUE(or_acc == or_ref);
    EXPECT_EQ(KernelIsSubsetOf(a, b), a.IsSubsetOf(b));
    EXPECT_EQ(KernelCountAnd(a, b), a.CountAnd(b));
  }
}

}  // namespace
}  // namespace sigsetdb
