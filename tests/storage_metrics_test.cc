// Storage -> registry metric export: per-file IoStats counters, buffer-pool
// hit/miss/eviction counters (total, per file, per shard), and the
// monotonic re-export semantics the advisor's buffer feedback relies on.

#include "obs/storage_metrics.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/storage_manager.h"

namespace sigsetdb {
namespace {

// CachedPageFile does not own its base; the interceptor hands the manager
// ownership of both, mirroring how an embedding system would mount a pool.
class OwningCachedPageFile : public CachedPageFile {
 public:
  OwningCachedPageFile(std::unique_ptr<PageFile> base, size_t capacity,
                       size_t num_shards)
      : CachedPageFile(base.get(), capacity, num_shards),
        base_(std::move(base)) {}

 private:
  std::unique_ptr<PageFile> base_;
};

TEST(StorageMetricsTest, EvictionCountersAggregateOverShards) {
  InMemoryPageFile base("data");
  CachedPageFile pool(&base, /*capacity=*/4, /*num_shards=*/2);
  Page page{};
  for (PageId id = 0; id < 16; ++id) {
    ASSERT_TRUE(pool.Allocate().ok());
    ASSERT_TRUE(pool.Write(id, page).ok());
  }
  // 16 pages through a 4-frame pool: at least 12 evictions somewhere.
  EXPECT_GE(pool.evictions(), 12u);
  uint64_t per_shard = 0;
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    per_shard += pool.shard_evictions(s);
  }
  EXPECT_EQ(per_shard, pool.evictions());
}

TEST(StorageMetricsTest, ExportsIoAndBufferCounters) {
  StorageManager storage;
  storage.SetInterceptor(
      [](std::unique_ptr<PageFile> file) -> std::unique_ptr<PageFile> {
        return std::make_unique<OwningCachedPageFile>(std::move(file),
                                                      /*capacity=*/4,
                                                      /*num_shards=*/2);
      });
  PageFile* file = storage.CreateOrOpen("t.sig");
  Page page{};
  for (PageId id = 0; id < 8; ++id) {
    ASSERT_TRUE(file->Allocate().ok());
    ASSERT_TRUE(file->Write(id, page).ok());
  }
  for (int pass = 0; pass < 2; ++pass) {
    for (PageId id = 0; id < 8; ++id) {
      ASSERT_TRUE(file->Read(id, &page).ok());
    }
  }

  MetricsRegistry registry;
  ExportStorageMetrics(storage, &registry);
  EXPECT_EQ(registry.CounterValue("io.t.sig.reads"), 16u);
  EXPECT_EQ(registry.CounterValue("io.t.sig.writes"), 8u);
  const auto* pool = dynamic_cast<const CachedPageFile*>(file);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(registry.CounterValue("buffer.hits"), pool->hits());
  EXPECT_EQ(registry.CounterValue("buffer.misses"), pool->misses());
  EXPECT_EQ(registry.CounterValue("buffer.evictions"), pool->evictions());
  EXPECT_EQ(registry.CounterValue("buffer.t.sig.hits"), pool->hits());
  uint64_t shard_hits = 0;
  for (size_t s = 0; s < pool->num_shards(); ++s) {
    shard_hits += registry.CounterValue("buffer.t.sig.shard" +
                                        std::to_string(s) + ".hits");
  }
  EXPECT_EQ(shard_hits, pool->hits());
  // An 8-page working set through a 4-frame pool cannot avoid evicting.
  EXPECT_GT(registry.CounterValue("buffer.evictions"), 0u);
}

TEST(StorageMetricsTest, ReExportIsMonotonicAndIdempotent) {
  StorageManager storage;
  storage.SetInterceptor(
      [](std::unique_ptr<PageFile> file) -> std::unique_ptr<PageFile> {
        return std::make_unique<OwningCachedPageFile>(std::move(file),
                                                      /*capacity=*/8,
                                                      /*num_shards=*/1);
      });
  PageFile* file = storage.CreateOrOpen("obj");
  Page page{};
  ASSERT_TRUE(file->Allocate().ok());
  ASSERT_TRUE(file->Write(0, page).ok());
  ASSERT_TRUE(file->Read(0, &page).ok());

  MetricsRegistry registry;
  ExportStorageMetrics(storage, &registry);
  uint64_t reads1 = registry.CounterValue("io.obj.reads");
  EXPECT_EQ(reads1, 1u);
  // Exporting again without new traffic changes nothing.
  ExportStorageMetrics(storage, &registry);
  EXPECT_EQ(registry.CounterValue("io.obj.reads"), reads1);
  // New traffic raises the counters to the live values.
  ASSERT_TRUE(file->Read(0, &page).ok());
  ASSERT_TRUE(file->Read(0, &page).ok());
  ExportStorageMetrics(storage, &registry);
  EXPECT_EQ(registry.CounterValue("io.obj.reads"), 3u);
  // A counter never goes backwards, even if the live source resets.
  file->stats().Reset();
  ExportStorageMetrics(storage, &registry);
  EXPECT_EQ(registry.CounterValue("io.obj.reads"), 3u);
}

}  // namespace
}  // namespace sigsetdb
