#include "model/false_drop.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sig/signature.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

TEST(FalseDropTest, WeightMatchesClosedForm) {
  SignatureParams sig{500, 2};
  // m_t = 500(1-(1-2/500)^10) = 19.65...
  EXPECT_NEAR(ExpectedSignatureWeight(sig, 10), 19.65, 0.05);
  // Approximation close to exact for m/F << 1.
  EXPECT_NEAR(ExpectedSignatureWeightApprox(sig, 10),
              ExpectedSignatureWeight(sig, 10), 0.1);
}

TEST(FalseDropTest, WeightSaturatesAtF) {
  SignatureParams sig{64, 8};
  EXPECT_LT(ExpectedSignatureWeight(sig, 1000), 64.0 + 1e-9);
  EXPECT_GT(ExpectedSignatureWeight(sig, 1000), 63.9);
}

TEST(FalseDropTest, SupersetFalseDropDecreasesWithDq) {
  SignatureParams sig{500, 2};
  double prev = 1.0;
  for (int64_t dq = 1; dq <= 10; ++dq) {
    double fd = FalseDropSuperset(sig, 10, dq);
    EXPECT_GT(fd, 0.0);
    EXPECT_LT(fd, prev);
    prev = fd;
  }
}

TEST(FalseDropTest, SubsetFalseDropIncreasesWithDq) {
  SignatureParams sig{500, 2};
  double prev = 0.0;
  for (int64_t dq = 10; dq <= 1000; dq *= 2) {
    double fd = FalseDropSubset(sig, 10, dq);
    EXPECT_GT(fd, prev);
    EXPECT_LE(fd, 1.0);
    prev = fd;
  }
}

TEST(FalseDropTest, SupersetSubsetSymmetry) {
  // Eq. (6) is eq. (2) with Dt and Dq swapped.
  SignatureParams sig{250, 3};
  EXPECT_DOUBLE_EQ(FalseDropSuperset(sig, 10, 4),
                   FalseDropSubset(sig, 4, 10));
}

TEST(FalseDropTest, Fig5OperatingPointIsNegligible) {
  // Fig. 5: BSSF m=2, F=500, Dt=10 has tiny false-drop rates.
  SignatureParams sig{500, 2};
  EXPECT_LT(FalseDropSuperset(sig, 10, 3), 1e-7);
  // At Dq=1 the rate is noticeable: (1-e^{-0.04})^2 ≈ 1.5e-3.
  EXPECT_NEAR(FalseDropSuperset(sig, 10, 1), 1.54e-3, 2e-4);
}

TEST(FalseDropTest, PartialSliceFormulaReducesToEq6) {
  SignatureParams sig{500, 2};
  int64_t dq = 50;
  double m_q = ExpectedSignatureWeightApprox(sig, dq);
  double full = FalseDropSubsetPartial(sig, 10, 500.0 - m_q);
  EXPECT_NEAR(full, FalseDropSubsetApprox(sig, 10, dq), 0.1 * full + 1e-12);
}

TEST(FalseDropTest, PartialSliceMonotoneInScannedSlices) {
  SignatureParams sig{500, 2};
  double prev = 1.0;
  for (double s : {0.0, 10.0, 50.0, 150.0, 300.0, 500.0}) {
    double fd = FalseDropSubsetPartial(sig, 10, s);
    EXPECT_LE(fd, prev);
    prev = fd;
  }
  EXPECT_DOUBLE_EQ(FalseDropSubsetPartial(sig, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(FalseDropSubsetPartial(sig, 10, 500.0), 0.0);
}

TEST(FalseDropTest, OptimalMPaperValues) {
  // m_opt = F ln2 / Dt: ~17.3 for F=250, Dt=10; ~34.7 for F=500.
  EXPECT_NEAR(OptimalM(250, 10), 17.33, 0.01);
  EXPECT_NEAR(OptimalM(500, 10), 34.66, 0.01);
  EXPECT_NEAR(OptimalM(2500, 100), 17.33, 0.01);
}

TEST(FalseDropTest, OptimalMMinimizesSupersetFd) {
  // m_opt = F·ln2/Dt is derived from the exponential approximation (paper
  // eq. 3), so it is the exact argmin of the *approximate* Fd; for the
  // exact ideal-hash formula it is near-optimal (within a small factor).
  int64_t f = 500, dt = 10, dq = 2;
  int64_t m_opt = static_cast<int64_t>(std::llround(OptimalM(f, dt)));
  double approx_at_opt = FalseDropSupersetApprox({f, m_opt}, dt, dq);
  double exact_at_opt = FalseDropSuperset({f, m_opt}, dt, dq);
  double exact_min = exact_at_opt;
  for (int64_t m = 1; m <= 100; ++m) {
    EXPECT_GE(FalseDropSupersetApprox({f, m}, dt, dq),
              approx_at_opt * 0.999)
        << "m=" << m;
    exact_min = std::min(exact_min, FalseDropSuperset({f, m}, dt, dq));
  }
  EXPECT_LT(exact_at_opt, exact_min * 1.3);
}

TEST(FalseDropTest, Eq4ApproximatesExactAtMopt) {
  int64_t f = 250, dt = 10, dq = 1;
  double eq4 = FalseDropSupersetAtOptimalM(f, dt, dq);
  int64_t m_opt = static_cast<int64_t>(std::llround(OptimalM(f, dt)));
  double exact = FalseDropSuperset({f, m_opt}, dt, dq);
  // Same order of magnitude (both astronomically small).
  EXPECT_NEAR(std::log10(eq4), std::log10(exact), 0.5);
}

// Empirical check: simulate the superset filter and compare the measured
// false-drop rate with eq. (2).  Uses a generous F to keep variance sane.
TEST(FalseDropTest, EmpiricalSupersetRateMatchesModel) {
  SignatureConfig config{64, 2};
  SignatureParams sig{64, 2};
  const int64_t dt = 5, dq = 2;
  const int kTargets = 6000;
  Rng rng(9);
  // Unsuccessful search: query elements outside the target element range.
  ElementSet query = {100001, 100002};
  BitVector query_sig = MakeSetSignature(query, config);
  int drops = 0;
  for (int i = 0; i < kTargets; ++i) {
    ElementSet target = rng.SampleWithoutReplacement(100000, dt);
    if (MatchesSuperset(MakeSetSignature(target, config), query_sig)) {
      ++drops;
    }
  }
  double measured = static_cast<double>(drops) / kTargets;
  double expected = FalseDropSuperset(sig, dt, dq);
  // Binomial std-dev tolerance (4 sigma).
  double sigma = std::sqrt(expected * (1 - expected) / kTargets);
  EXPECT_NEAR(measured, expected, 4 * sigma + 0.002);
}

TEST(FalseDropTest, EmpiricalSubsetRateMatchesModel) {
  SignatureConfig config{64, 2};
  SignatureParams sig{64, 2};
  const int64_t dt = 4, dq = 20;
  const int kTargets = 6000;
  Rng rng(10);
  ElementSet query;
  for (uint64_t e = 200000; e < 200000 + static_cast<uint64_t>(dq); ++e) {
    query.push_back(e);
  }
  BitVector query_sig = MakeSetSignature(query, config);
  int drops = 0;
  for (int i = 0; i < kTargets; ++i) {
    ElementSet target = rng.SampleWithoutReplacement(100000, dt);
    if (MatchesSubset(MakeSetSignature(target, config), query_sig)) ++drops;
  }
  double measured = static_cast<double>(drops) / kTargets;
  double expected = FalseDropSubset(sig, dt, dq);
  double sigma = std::sqrt(expected * (1 - expected) / kTargets);
  EXPECT_NEAR(measured, expected, 4 * sigma + 0.005);
}

}  // namespace
}  // namespace sigsetdb
