// The telemetry layer's integration contract:
//   - enable_telemetry NEVER changes measured page accesses or query
//     answers (the paper-pinned counts stay bit-identical),
//   - every public entry point lands in its latency histogram and the
//     flight recorder,
//   - a fatal status captures a parseable postmortem (in memory and, when
//     postmortem_dir is set, on disk),
//   - the drift watchdog raises structured warnings within bounds,
//   - epoch pins and WAL fsyncs surface as metrics.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/set_index.h"
#include "db/snapshot.h"
#include "db/write_batch.h"
#include "json_validate.h"
#include "storage/fault_injecting_page_file.h"
#include "storage/storage_manager.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

constexpr uint64_t kV = 400;
constexpr uint64_t kDt = 8;
constexpr uint64_t kSeed = 777;

std::vector<ElementSet> MakeSets(int n, uint64_t seed = kSeed) {
  Rng rng(seed);
  std::vector<ElementSet> sets;
  for (int i = 0; i < n; ++i) {
    ElementSet set = rng.SampleWithoutReplacement(kV, kDt);
    NormalizeSet(&set);
    sets.push_back(std::move(set));
  }
  return sets;
}

std::vector<std::pair<QueryKind, ElementSet>> MakeQueries(int n) {
  Rng rng(kSeed + 1);
  std::vector<std::pair<QueryKind, ElementSet>> queries;
  for (int i = 0; i < n; ++i) {
    QueryKind kind = i % 3 == 0   ? QueryKind::kSubset
                     : i % 3 == 1 ? QueryKind::kSuperset
                                  : QueryKind::kEquals;
    ElementSet query = rng.SampleWithoutReplacement(kV, 1 + (i % 4));
    NormalizeSet(&query);
    queries.emplace_back(kind, std::move(query));
  }
  return queries;
}

struct WorkloadObservation {
  std::vector<uint64_t> pages;               // per query
  std::vector<std::vector<uint64_t>> oids;   // per query, sorted
};

// Runs the canonical insert + query workload and returns its per-query
// page accesses and answers.  `index_out` optionally keeps the index alive.
WorkloadObservation RunWorkload(StorageManager* storage,
                                const SetIndex::Options& options,
                                std::unique_ptr<SetIndex>* index_out) {
  auto index_or = SetIndex::Create(storage, "idx", options);
  EXPECT_TRUE(index_or.ok()) << index_or.status().ToString();
  std::unique_ptr<SetIndex> index = std::move(index_or).value();
  for (const ElementSet& set : MakeSets(40)) {
    auto oid = index->Insert(set);
    EXPECT_TRUE(oid.ok()) << oid.status().ToString();
  }
  WorkloadObservation obs;
  for (const auto& [kind, query] : MakeQueries(12)) {
    auto result = index->Query(kind, query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    obs.pages.push_back(result->page_accesses);
    std::vector<uint64_t> oids;
    for (Oid oid : result->result.oids) oids.push_back(oid.value());
    std::sort(oids.begin(), oids.end());
    obs.oids.push_back(std::move(oids));
  }
  if (index_out != nullptr) *index_out = std::move(index);
  return obs;
}

// The load-bearing differential: identical workloads with telemetry off and
// on must produce bit-identical page counts and answers.  This is what lets
// the paper benches stay valid with the observability layer linked in.
TEST(TelemetryDifferentialTest, PageCountsAreBitIdenticalWithTelemetryOn) {
  SetIndex::Options off;
  StorageManager storage_off;
  WorkloadObservation base = RunWorkload(&storage_off, off, nullptr);

  SetIndex::Options on = off;
  on.enable_telemetry = true;
  StorageManager storage_on;
  WorkloadObservation telemetry = RunWorkload(&storage_on, on, nullptr);

  ASSERT_EQ(base.pages.size(), telemetry.pages.size());
  for (size_t i = 0; i < base.pages.size(); ++i) {
    EXPECT_EQ(base.pages[i], telemetry.pages[i])
        << "telemetry changed page accesses of query " << i;
    EXPECT_EQ(base.oids[i], telemetry.oids[i])
        << "telemetry changed the answer of query " << i;
  }
}

// Same differential with the full concurrent feature set stacked on.
TEST(TelemetryDifferentialTest, IdenticalUnderSnapshotsWalAndThreads) {
  SetIndex::Options off;
  off.enable_snapshots = true;
  off.enable_wal = true;
  off.num_threads = 4;
  StorageManager storage_off;
  WorkloadObservation base = RunWorkload(&storage_off, off, nullptr);

  SetIndex::Options on = off;
  on.enable_telemetry = true;
  StorageManager storage_on;
  WorkloadObservation telemetry = RunWorkload(&storage_on, on, nullptr);

  ASSERT_EQ(base.pages.size(), telemetry.pages.size());
  for (size_t i = 0; i < base.pages.size(); ++i) {
    EXPECT_EQ(base.pages[i], telemetry.pages[i]);
    EXPECT_EQ(base.oids[i], telemetry.oids[i]);
  }
}

TEST(TelemetryTest, EveryEntryPointLandsInItsHistogram) {
  StorageManager storage;
  SetIndex::Options options;
  options.enable_telemetry = true;
  auto index = SetIndex::Create(&storage, "idx", options);
  ASSERT_TRUE(index.ok());
  SetIndex* idx = index->get();
  ASSERT_NE(idx->flight_recorder(), nullptr);
  ASSERT_NE(idx->drift_watchdog(), nullptr);

  std::vector<ElementSet> sets = MakeSets(30);
  std::vector<Oid> oids;
  for (const ElementSet& set : sets) {
    auto oid = idx->Insert(set);
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(idx->Delete(oids[i]).ok());
  WriteBatch batch;
  batch.Delete(oids[5]);
  batch.Insert(sets[0]);
  ASSERT_TRUE(idx->ApplyBatch(batch).ok());
  ASSERT_TRUE(idx->Checkpoint().ok());
  ASSERT_TRUE(idx->Compact().ok());
  int supersets = 0, subsets = 0, equals = 0;
  for (const auto& [kind, query] : MakeQueries(12)) {
    ASSERT_TRUE(idx->Query(kind, query).ok());
    if (kind == QueryKind::kSuperset) ++supersets;
    if (kind == QueryKind::kSubset) ++subsets;
    if (kind == QueryKind::kEquals) ++equals;
  }

  MetricsRegistry* metrics = idx->metrics();
  auto hist_count = [&](const char* name) {
    const Histogram* h = metrics->FindHistogram(name);
    return h == nullptr ? uint64_t{0} : h->count();
  };
  EXPECT_EQ(hist_count("op.insert.latency_us"), 30u);
  EXPECT_EQ(hist_count("op.delete.latency_us"), 5u);
  EXPECT_EQ(hist_count("op.batch.latency_us"), 1u);
  EXPECT_EQ(hist_count("op.compact.latency_us"), 1u);
  // One explicit checkpoint plus the one Compact commits through.
  EXPECT_EQ(hist_count("op.checkpoint.latency_us"), 2u);
  EXPECT_EQ(hist_count("query.superset.latency_us"),
            static_cast<uint64_t>(supersets));
  EXPECT_EQ(hist_count("query.subset.latency_us"),
            static_cast<uint64_t>(subsets));
  EXPECT_EQ(hist_count("query.equals.latency_us"),
            static_cast<uint64_t>(equals));

  // Every op above also became a flight event.
  EXPECT_GE(idx->flight_recorder()->total_recorded(), 30u + 5 + 1 + 1 + 12);
}

TEST(TelemetryTest, QueryEventsCarryStableFingerprints) {
  StorageManager storage;
  SetIndex::Options options;
  options.enable_telemetry = true;
  options.flight_recorder_capacity = 1024;
  auto index = SetIndex::Create(&storage, "idx", options);
  ASSERT_TRUE(index.ok());
  SetIndex* idx = index->get();
  for (const ElementSet& set : MakeSets(10)) {
    ASSERT_TRUE(idx->Insert(set).ok());
  }
  const ElementSet query = {3, 17};
  ASSERT_TRUE(idx->Query(QueryKind::kSuperset, query).ok());
  ASSERT_TRUE(idx->Query(QueryKind::kSuperset, query).ok());
  ASSERT_TRUE(idx->Query(QueryKind::kSubset, query).ok());

  std::vector<uint64_t> fingerprints;
  for (const FlightEvent& event : idx->flight_recorder()->Events()) {
    if (event.op == FlightOp::kQuery) {
      EXPECT_NE(event.fingerprint, 0u);
      EXPECT_NE(event.detail[0], '\0') << "query event lost its plan detail";
      fingerprints.push_back(event.fingerprint);
    }
  }
  ASSERT_EQ(fingerprints.size(), 3u);
  EXPECT_EQ(fingerprints[0], fingerprints[1]);  // same kind + query set
  EXPECT_NE(fingerprints[0], fingerprints[2]);  // kind differs
}

TEST(TelemetryTest, FatalStatusCapturesParseablePostmortem) {
  FaultInjector injector;
  StorageManager storage;
  storage.SetInterceptor(
      [&injector](std::unique_ptr<PageFile> base) -> std::unique_ptr<
                                                      PageFile> {
        return std::make_unique<FaultInjectingPageFile>(std::move(base),
                                                        &injector);
      });
  SetIndex::Options options;
  options.enable_telemetry = true;
  options.postmortem_dir = ::testing::TempDir();
  const std::string prefix = options.postmortem_dir + "/idx.postmortem";
  std::remove((prefix + ".txt").c_str());
  std::remove((prefix + ".json").c_str());

  auto index = SetIndex::Create(&storage, "idx", options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  SetIndex* idx = index->get();
  std::vector<ElementSet> sets = MakeSets(8);
  ASSERT_TRUE(idx->Insert(sets[0]).ok());
  EXPECT_TRUE(idx->last_postmortem_json().empty());

  // Every page I/O from here on fails: the next mutation dies with an
  // injected I/O error, which is fatal, which must one-shot the postmortem.
  injector.CrashAt(injector.ops());
  Status failed = Status::OK();
  for (size_t i = 1; i < sets.size() && failed.ok(); ++i) {
    failed = idx->Insert(sets[i]).status();
  }
  ASSERT_FALSE(failed.ok()) << "fault injection never fired";

  const std::string& json = idx->last_postmortem_json();
  ASSERT_FALSE(json.empty());
  std::string error;
  EXPECT_TRUE(testjson::IsValidJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("fatal status"), std::string::npos);

  // And the on-disk artifacts (plain stdio, so they write despite the
  // page-layer faults).
  std::ifstream text_file(prefix + ".txt");
  EXPECT_TRUE(text_file.good());
  std::ifstream json_file(prefix + ".json");
  ASSERT_TRUE(json_file.good());
  std::stringstream disk_json;
  disk_json << json_file.rdbuf();
  EXPECT_TRUE(testjson::IsValidJson(disk_json.str(), &error)) << error;
  std::remove((prefix + ".txt").c_str());
  std::remove((prefix + ".json").c_str());
}

TEST(TelemetryTest, DriftWatchdogRaisesStructuredWarning) {
  StorageManager storage;
  SetIndex::Options options;
  options.enable_telemetry = true;
  // Impossible bounds: any residual (every stage has one; measured and
  // fractional predicted pages never coincide exactly) trips the warning.
  options.drift.rel_tolerance = -1.0;
  options.drift.abs_tolerance_pages = -1.0;
  options.drift.min_samples = 1;
  auto index = SetIndex::Create(&storage, "idx", options);
  ASSERT_TRUE(index.ok());
  SetIndex* idx = index->get();
  for (const ElementSet& set : MakeSets(20)) {
    ASSERT_TRUE(idx->Insert(set).ok());
  }
  for (const auto& [kind, query] : MakeQueries(6)) {
    ASSERT_TRUE(idx->Query(kind, query).ok());
  }

  EXPECT_GE(idx->drift_watchdog()->warnings(), 1u);
  EXPECT_GE(idx->metrics()->CounterValue("drift.warnings"), 1u);
  EXPECT_FALSE(idx->drift_watchdog()->Stats().empty());

  // The residual means export as drift.* gauges.
  bool found_drift_gauge = false;
  for (const auto& gauge : idx->metrics()->Snapshot().gauges) {
    if (gauge.first.rfind("drift.", 0) == 0) found_drift_gauge = true;
  }
  EXPECT_TRUE(found_drift_gauge);

  // And the warning became a structured flight event naming the stage.
  bool found_warning_event = false;
  for (const FlightEvent& event : idx->flight_recorder()->Events()) {
    if (event.op == FlightOp::kDriftWarning) {
      found_warning_event = true;
      EXPECT_NE(event.detail[0], '\0');
    }
  }
  EXPECT_TRUE(found_warning_event);
}

TEST(TelemetryTest, EpochPinsAndSnapshotQueriesSurfaceAsMetrics) {
  StorageManager storage;
  SetIndex::Options options;
  options.enable_telemetry = true;
  options.enable_snapshots = true;
  auto index = SetIndex::Create(&storage, "idx", options);
  ASSERT_TRUE(index.ok());
  SetIndex* idx = index->get();
  for (const ElementSet& set : MakeSets(10)) {
    ASSERT_TRUE(idx->Insert(set).ok());
  }
  MetricsRegistry* metrics = idx->metrics();

  {
    auto snapshot = idx->GetSnapshot();
    ASSERT_TRUE(snapshot.ok());
    EXPECT_DOUBLE_EQ(metrics->GaugeValue("epoch.pins"), 1.0);
    auto result = (*snapshot)->Query(QueryKind::kSuperset, {1});
    ASSERT_TRUE(result.ok());
    const Histogram* h = metrics->FindHistogram("query.snapshot.latency_us");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 1u);
  }
  // Pin released: the gauge returns to zero and the duration was recorded.
  EXPECT_DOUBLE_EQ(metrics->GaugeValue("epoch.pins"), 0.0);
  const Histogram* pin_us = metrics->FindHistogram("epoch.pin_us");
  ASSERT_NE(pin_us, nullptr);
  EXPECT_EQ(pin_us->count(), 1u);

  bool found_snapshot_event = false;
  for (const FlightEvent& event : idx->flight_recorder()->Events()) {
    if (event.op == FlightOp::kSnapshotQuery) {
      found_snapshot_event = true;
      EXPECT_NE(event.fingerprint, 0u);
      EXPECT_GT(event.epoch, 0u);
    }
  }
  EXPECT_TRUE(found_snapshot_event);
}

TEST(TelemetryTest, WalFsyncLatencySurfacesAsHistogram) {
  StorageManager storage;
  SetIndex::Options options;
  options.enable_telemetry = true;
  options.enable_wal = true;
  auto index = SetIndex::Create(&storage, "idx", options);
  ASSERT_TRUE(index.ok());
  SetIndex* idx = index->get();
  for (const ElementSet& set : MakeSets(3)) {
    ASSERT_TRUE(idx->Insert(set).ok());
  }
  const Histogram* fsync = idx->metrics()->FindHistogram("wal.fsync_us");
  ASSERT_NE(fsync, nullptr);
  EXPECT_GE(fsync->count(), 3u);

  // Insert events carry the WAL position they committed at.
  bool found_lsn = false;
  for (const FlightEvent& event : idx->flight_recorder()->Events()) {
    if (event.op == FlightOp::kInsert && event.wal_lsn > 0) found_lsn = true;
  }
  EXPECT_TRUE(found_lsn);
}

// The multi-attribute Database facade mirrors the SetIndex contract.
TEST(DatabaseTelemetryTest, DifferentialAndHistograms) {
  Database::Options options;
  Database::AttributeOptions attr_a;
  attr_a.name = "a";
  attr_a.sig = {64, 2};
  Database::AttributeOptions attr_b;
  attr_b.name = "b";
  attr_b.maintain_bssf = false;
  attr_b.sig = {64, 2};
  options.attributes = {attr_a, attr_b};
  options.capacity = 256;

  Rng rng(kSeed + 2);
  std::vector<std::vector<ElementSet>> values;
  for (int i = 0; i < 20; ++i) {
    std::vector<ElementSet> v = {rng.SampleWithoutReplacement(64, 5),
                                 rng.SampleWithoutReplacement(64, 5)};
    NormalizeSet(&v[0]);
    NormalizeSet(&v[1]);
    values.push_back(std::move(v));
  }
  std::vector<ElementSet> probes;
  for (int i = 0; i < 6; ++i) {
    ElementSet probe = rng.SampleWithoutReplacement(64, 1 + (i % 2));
    NormalizeSet(&probe);
    probes.push_back(std::move(probe));
  }

  auto run = [&](bool telemetry, StorageManager* storage,
                 std::unique_ptr<Database>* db_out) {
    Database::Options opts = options;
    opts.enable_telemetry = telemetry;
    auto db = Database::Create(storage, "class", opts);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    for (const auto& v : values) EXPECT_TRUE((*db)->Insert(v).ok());
    std::vector<uint64_t> pages;
    for (const ElementSet& probe : probes) {
      auto result = (*db)->Query({{"a", QueryKind::kSuperset, probe}});
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      pages.push_back(result->page_accesses);
    }
    if (db_out != nullptr) *db_out = std::move(db).value();
    return pages;
  };

  StorageManager storage_off;
  std::vector<uint64_t> base = run(false, &storage_off, nullptr);
  StorageManager storage_on;
  std::unique_ptr<Database> db;
  std::vector<uint64_t> telemetry = run(true, &storage_on, &db);
  EXPECT_EQ(base, telemetry)
      << "telemetry changed Database page accesses";

  EXPECT_EQ(db->metrics()->FindHistogram("op.insert.latency_us")->count(),
            20u);
  EXPECT_EQ(db->metrics()->FindHistogram("query.superset.latency_us")->count(),
            probes.size());
  EXPECT_GE(db->flight_recorder()->total_recorded(), 26u);
}

}  // namespace
}  // namespace sigsetdb
