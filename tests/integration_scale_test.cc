// Integration tests at awkward scales: multi-page bit slices (N beyond one
// page of bits), Zipf-skewed databases that push NIX posting lists into
// overflow chains, and end-to-end agreement of every facility under both.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "nix/nested_index.h"
#include "obj/object_store.h"
#include "query/executor.h"
#include "sig/bssf.h"
#include "sig/ssf.h"
#include "storage/storage_manager.h"
#include "workload/generator.h"

namespace sigsetdb {
namespace {

TEST(MultiPageSliceTest, QueriesCorrectAcrossPageBoundary) {
  // Capacity 40,000 > 32,768 bits/page => 2 pages per slice; entries
  // straddle the boundary.
  constexpr uint64_t kN = 35000;
  StorageManager storage;
  WorkloadConfig wconfig{static_cast<int64_t>(kN), 2000,
                         CardinalitySpec::Fixed(6), SkewKind::kUniform, 0.99,
                         21};
  auto sets = MakeDatabase(wconfig);
  ObjectStore store(storage.CreateOrOpen("objects"));
  std::vector<Oid> oids;
  for (const auto& set : sets) {
    oids.push_back(store.Insert(set).value());
  }
  auto bssf = BitSlicedSignatureFile::Create(
      {250, 2}, 40000, storage.CreateOrOpen("slices"),
      storage.CreateOrOpen("oid"), BssfInsertMode::kSparse);
  ASSERT_TRUE(bssf.ok());
  ASSERT_TRUE((*bssf)->BulkLoad(oids, sets).ok());
  EXPECT_EQ((*bssf)->pages_per_slice(), 2u);

  // Slot 32768 (first bit of the second slice page) must behave like any
  // other: query for an element of the set stored there.
  const ElementSet& boundary_set = sets[32768];
  ElementSet query = {boundary_set[0], boundary_set[3]};
  NormalizeSet(&query);
  auto result =
      ExecuteSetQuery(bssf->get(), store, QueryKind::kSuperset, query);
  ASSERT_TRUE(result.ok());
  std::set<Oid> got(result->oids.begin(), result->oids.end());
  EXPECT_TRUE(got.count(oids[32768]));
  // Exactness vs brute force on the full range.
  size_t expected = 0;
  for (const auto& set : sets) {
    if (IsSubset(query, set)) ++expected;
  }
  EXPECT_EQ(result->oids.size(), expected);

  // Slice reads cost 2 pages per slice now.
  BitVector query_sig = MakeSetSignature(query, (*bssf)->config());
  auto slice_file = storage.Open("slices");
  ASSERT_TRUE(slice_file.ok());
  (*slice_file)->stats().Reset();
  ASSERT_TRUE((*bssf)->SupersetCandidateSlots(query_sig).ok());
  EXPECT_EQ((*slice_file)->stats().page_reads, 2 * query_sig.Count());
}

TEST(ZipfOverflowIntegrationTest, NixWithOverflowChainsMatchesBruteForce) {
  // Zipf element popularity on a small domain: the hottest keys collect
  // thousands of postings and must spill into overflow chains.
  constexpr int64_t kN = 8000;
  StorageManager storage;
  WorkloadConfig wconfig{kN, 300, CardinalitySpec{3, 9}, SkewKind::kZipf,
                         1.0, 22};
  auto sets = MakeDatabase(wconfig);
  ObjectStore store(storage.CreateOrOpen("objects"));
  std::vector<Oid> oids;
  for (const auto& set : sets) {
    oids.push_back(store.Insert(set).value());
  }
  auto nix = NestedIndex::Create(storage.CreateOrOpen("nix"));
  ASSERT_TRUE(nix.ok());
  for (size_t i = 0; i < sets.size(); ++i) {
    ASSERT_TRUE((*nix)->Insert(oids[i], sets[i]).ok()) << i;
  }
  EXPECT_GT((*nix)->tree().overflow_pages(), 0u)
      << "workload failed to trigger overflow chains";

  Rng rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    // Queries over hot elements (guaranteed to hit the overflow chains).
    ElementSet query = {rng.NextBelow(3), 3 + rng.NextBelow(5)};
    NormalizeSet(&query);
    for (QueryKind kind : {QueryKind::kSuperset, QueryKind::kOverlaps}) {
      auto result = ExecuteSetQuery(nix->get(), store, kind, query);
      ASSERT_TRUE(result.ok());
      std::vector<Oid> got = result->oids;
      std::sort(got.begin(), got.end());
      std::vector<Oid> want;
      for (size_t i = 0; i < sets.size(); ++i) {
        bool hit = kind == QueryKind::kSuperset
                       ? IsSubset(query, sets[i])
                       : Overlaps(sets[i], query);
        if (hit) want.push_back(oids[i]);
      }
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << QueryKindName(kind) << " trial " << trial;
    }
  }

  // Deleting from the hot key exercises overflow-chain removal at scale.
  int deleted = 0;
  for (size_t i = 0; i < sets.size() && deleted < 500; ++i) {
    if (std::binary_search(sets[i].begin(), sets[i].end(), 0ull)) {
      ASSERT_TRUE((*nix)->Remove(oids[i], sets[i]).ok());
      ASSERT_TRUE(store.Delete(oids[i]).ok());
      sets[i].clear();  // mark deleted for the check below
      ++deleted;
    }
  }
  ASSERT_GT(deleted, 100);
  auto result = ExecuteSetQuery(nix->get(), store, QueryKind::kSuperset,
                                {0ull});
  ASSERT_TRUE(result.ok());
  size_t expected = 0;
  for (const auto& set : sets) {
    if (std::binary_search(set.begin(), set.end(), 0ull)) ++expected;
  }
  EXPECT_EQ(result->oids.size(), expected);
}

TEST(SsfBssfLargeScaleAgreement, TenThousandObjects) {
  // A final cross-check at a scale with hundreds of signature pages.
  constexpr uint64_t kN = 10000;
  StorageManager storage;
  WorkloadConfig wconfig{static_cast<int64_t>(kN), 5000,
                         CardinalitySpec::Fixed(12), SkewKind::kUniform,
                         0.99, 24};
  auto sets = MakeDatabase(wconfig);
  ObjectStore store(storage.CreateOrOpen("objects"));
  std::vector<Oid> oids;
  for (const auto& set : sets) oids.push_back(store.Insert(set).value());
  auto ssf = SequentialSignatureFile::Create(
      {500, 3}, storage.CreateOrOpen("ssf.sig"),
      storage.CreateOrOpen("ssf.oid"));
  ASSERT_TRUE(ssf.ok());
  auto bssf = BitSlicedSignatureFile::Create(
      {500, 3}, kN, storage.CreateOrOpen("slices"),
      storage.CreateOrOpen("bssf.oid"), BssfInsertMode::kSparse);
  ASSERT_TRUE(bssf.ok());
  for (size_t i = 0; i < sets.size(); ++i) {
    ASSERT_TRUE((*ssf)->Insert(oids[i], sets[i]).ok());
  }
  ASSERT_TRUE((*bssf)->BulkLoad(oids, sets).ok());
  Rng rng(25);
  for (int trial = 0; trial < 5; ++trial) {
    ElementSet query = rng.SampleWithoutReplacement(5000, 3);
    auto a = ExecuteSetQuery(ssf->get(), store, QueryKind::kSuperset, query);
    auto b =
        ExecuteSetQuery(bssf->get(), store, QueryKind::kSuperset, query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->oids, b->oids);
    EXPECT_EQ(a->num_candidates, b->num_candidates);
  }
}

}  // namespace
}  // namespace sigsetdb
