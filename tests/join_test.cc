// Unit tests for the set-containment join (R ⋈⊆ S) surface: executor
// strategies and edge cases (DESIGN.md §17), the ∅-set roster from the join
// path, the `join ... in-subset ...` language form, Database joins between
// attributes, EXPLAIN output with model predictions, snapshot joins, and
// the join telemetry.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/set_index.h"
#include "db/snapshot.h"
#include "obs/flight_recorder.h"
#include "query/join.h"
#include "query/language.h"
#include "storage/storage_manager.h"

namespace sigsetdb {
namespace {

using PairVec = std::vector<std::pair<uint64_t, uint64_t>>;

PairVec PairValues(const JoinResult& join) {
  PairVec out;
  for (const JoinPair& p : join.pairs) {
    out.emplace_back(p.r.value(), p.s.value());
  }
  return out;
}

PairVec OracleJoin(const std::map<uint64_t, ElementSet>& r_oracle,
                   const std::map<uint64_t, ElementSet>& s_oracle) {
  PairVec out;
  for (const auto& [r_oid, r_set] : r_oracle) {
    for (const auto& [s_oid, s_set] : s_oracle) {
      if (std::includes(s_set.begin(), s_set.end(), r_set.begin(),
                        r_set.end())) {
        out.emplace_back(r_oid, s_oid);
      }
    }
  }
  return out;
}

// Every concrete strategy plus both forced adaptive directions.
std::vector<JoinSpec> ConcreteSpecs() {
  std::vector<JoinSpec> specs;
  JoinSpec spec;
  spec.strategy = JoinStrategy::kNestedLoop;
  specs.push_back(spec);
  spec = JoinSpec{};
  spec.strategy = JoinStrategy::kSignatureHash;
  specs.push_back(spec);
  spec = JoinSpec{};
  spec.strategy = JoinStrategy::kAdaptive;
  specs.push_back(spec);
  spec.adaptive_probe_threshold = 0.0;  // force the facility direction
  specs.push_back(spec);
  spec.adaptive_probe_threshold = 1e18;  // force the signature direction
  specs.push_back(spec);
  return specs;
}

TEST(JoinStrategyTest, NamesAndParsingRoundTrip) {
  for (JoinStrategy s :
       {JoinStrategy::kAuto, JoinStrategy::kNestedLoop,
        JoinStrategy::kSignatureHash, JoinStrategy::kAdaptive}) {
    auto parsed = ParseJoinStrategy(JoinStrategyName(s));
    ASSERT_TRUE(parsed.ok()) << JoinStrategyName(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(ParseJoinStrategy("hash-join").ok());
  EXPECT_FALSE(ParseJoinStrategy("").ok());
}

TEST(JoinExecutorTest, RejectsUnresolvedAuto) {
  JoinSideAccess side;
  side.scan = [](const std::function<Status(Oid, const ElementSet&)>&) {
    return Status::OK();
  };
  JoinSpec spec;  // kAuto
  auto result = ExecuteSetJoin(side, side, SignatureConfig{120, 3}, spec);
  EXPECT_FALSE(result.ok());
}

class JoinEdgeCaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetIndex::Options options;
    options.maintain_ssf = true;
    options.maintain_bssf = true;
    options.maintain_nix = true;
    options.sig = {120, 3};
    options.capacity = 1024;
    auto r = SetIndex::Create(&storage_, "r", options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto s = SetIndex::Create(&storage_, "s", options);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    r_ = std::move(*r);
    s_ = std::move(*s);
  }

  void InsertR(const ElementSet& set) {
    auto oid = r_->Insert(set);
    ASSERT_TRUE(oid.ok());
    oracle_r_[oid->value()] = set;
  }
  void InsertS(const ElementSet& set) {
    auto oid = s_->Insert(set);
    ASSERT_TRUE(oid.ok());
    oracle_s_[oid->value()] = set;
  }

  StorageManager storage_;
  std::unique_ptr<SetIndex> r_, s_;
  std::map<uint64_t, ElementSet> oracle_r_, oracle_s_;
};

// ∅ ⊆ s for EVERY s, including s = ∅.  The facilities reject empty query
// sets, so every strategy must route ∅ r-rows through the live roster (or
// the materialized S) instead of a probe — and still count them as
// candidate pairs.
TEST_F(JoinEdgeCaseTest, EmptyRSetPairsWithEverySInEveryStrategy) {
  InsertR(ElementSet{});
  InsertR({1, 2});
  InsertR({30});
  InsertS(ElementSet{});
  InsertS({1, 2, 3});
  InsertS({40, 41});

  const PairVec want = OracleJoin(oracle_r_, oracle_s_);
  // The oracle itself: ∅ r pairs with all 3 s (∅ ⊆ ∅ included); {1,2} ⊆
  // {1,2,3}; {30} pairs with nothing.
  ASSERT_EQ(want.size(), 4u);

  for (const JoinSpec& spec : ConcreteSpecs()) {
    auto result = r_->ExecuteSetJoin(s_.get(), spec);
    ASSERT_TRUE(result.ok())
        << JoinStrategyName(spec.strategy) << ": "
        << result.status().ToString();
    EXPECT_EQ(PairValues(result->join), want)
        << JoinStrategyName(spec.strategy)
        << " threshold=" << spec.adaptive_probe_threshold;
    // ∅ rows are trivially-verified candidates, never false drops.
    EXPECT_GE(result->join.num_candidate_pairs, want.size());
  }
}

// An all-∅ R side joined against an empty S side, and vice versa.
TEST_F(JoinEdgeCaseTest, DegenerateSides) {
  for (const JoinSpec& spec : ConcreteSpecs()) {
    // Both sides empty: no pairs, no probes, no failure.
    auto result = r_->ExecuteSetJoin(s_.get(), spec);
    ASSERT_TRUE(result.ok()) << JoinStrategyName(spec.strategy);
    EXPECT_TRUE(result->join.pairs.empty());
    EXPECT_EQ(result->join.num_probes, 0u);
  }
  InsertR(ElementSet{});
  InsertR(ElementSet{});
  for (const JoinSpec& spec : ConcreteSpecs()) {
    // ∅-only R against empty S: still no pairs (nothing to pair with).
    auto result = r_->ExecuteSetJoin(s_.get(), spec);
    ASSERT_TRUE(result.ok()) << JoinStrategyName(spec.strategy);
    EXPECT_TRUE(result->join.pairs.empty());
  }
  InsertS({7});
  const PairVec want = OracleJoin(oracle_r_, oracle_s_);
  ASSERT_EQ(want.size(), 2u);  // both ∅ r's pair with {7}
  for (const JoinSpec& spec : ConcreteSpecs()) {
    auto result = r_->ExecuteSetJoin(s_.get(), spec);
    ASSERT_TRUE(result.ok()) << JoinStrategyName(spec.strategy);
    EXPECT_EQ(PairValues(result->join), want)
        << JoinStrategyName(spec.strategy);
  }
}

// The adaptive thresholds actually steer the executor: threshold 0 sends
// every non-empty partition to the facility (probes > 0), a huge threshold
// keeps everything on the in-memory signature side (probes == 0).
TEST_F(JoinEdgeCaseTest, AdaptiveThresholdSteersDirections) {
  for (int i = 0; i < 8; ++i) InsertR({uint64_t(i), uint64_t(i + 1)});
  for (int i = 0; i < 8; ++i) {
    InsertS({uint64_t(i), uint64_t(i + 1), uint64_t(i + 2)});
  }
  JoinSpec all_probe;
  all_probe.strategy = JoinStrategy::kAdaptive;
  all_probe.adaptive_probe_threshold = 0.0;
  auto probed = r_->ExecuteSetJoin(s_.get(), all_probe);
  ASSERT_TRUE(probed.ok());
  EXPECT_GT(probed->join.num_probes, 0u);

  JoinSpec all_sig = all_probe;
  all_sig.adaptive_probe_threshold = 1e18;
  auto sigged = r_->ExecuteSetJoin(s_.get(), all_sig);
  ASSERT_TRUE(sigged.ok());
  EXPECT_EQ(sigged->join.num_probes, 0u);

  EXPECT_EQ(PairValues(probed->join), PairValues(sigged->join));
  EXPECT_EQ(PairValues(probed->join), OracleJoin(oracle_r_, oracle_s_));
}

// Self-join R ⋈⊆ R with the same index object on both sides: every object
// pairs with itself, plus any genuine subset pairs.
TEST_F(JoinEdgeCaseTest, SelfJoinPairsEveryObjectWithItself) {
  InsertR(ElementSet{});
  InsertR({1, 2});
  InsertR({1, 2, 3});
  const PairVec want = OracleJoin(oracle_r_, oracle_r_);
  ASSERT_EQ(want.size(), 3u + 2u + 1u);  // ∅→all, {1,2}→2, {1,2,3}→1
  for (const JoinSpec& spec : ConcreteSpecs()) {
    auto result = r_->ExecuteSetJoin(r_.get(), spec);
    ASSERT_TRUE(result.ok()) << JoinStrategyName(spec.strategy);
    EXPECT_EQ(PairValues(result->join), want)
        << JoinStrategyName(spec.strategy);
  }
}

// EXPLAIN for the join: the executor's stages are present with measured
// numbers, the model's per-stage predictions are attached, and both
// renderings are non-empty.
TEST_F(JoinEdgeCaseTest, ExplainCarriesStagesAndPredictions) {
  for (int i = 0; i < 12; ++i) InsertR({uint64_t(i), uint64_t(i + 3)});
  for (int i = 0; i < 12; ++i) {
    InsertS({uint64_t(i), uint64_t(i + 3), uint64_t(i + 6)});
  }
  auto HasStage = [](const QueryTrace& trace, const std::string& name) {
    for (const TraceSpan& span : trace.stages()) {
      if (span.name == name) return true;
    }
    return false;
  };

  JoinSpec sig_hash;
  sig_hash.strategy = JoinStrategy::kSignatureHash;
  auto explain = r_->ExplainSetJoin(s_.get(), sig_hash);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_EQ(explain->result.plan, "sig-hash");
  EXPECT_TRUE(HasStage(explain->trace, "r scan"));
  EXPECT_TRUE(HasStage(explain->trace, "s scan"));
  EXPECT_TRUE(HasStage(explain->trace, "partition"));
  EXPECT_TRUE(HasStage(explain->trace, "probe+verify"));
  EXPECT_GT(explain->trace.predicted_total, 0.0);
  EXPECT_FALSE(explain->text.empty());
  EXPECT_FALSE(explain->json.empty());
  EXPECT_EQ(explain->trace.kind, "join-subset");
  EXPECT_EQ(PairValues(explain->result.join),
            OracleJoin(oracle_r_, oracle_s_));

  JoinSpec nested;
  nested.strategy = JoinStrategy::kNestedLoop;
  auto nl = r_->ExplainSetJoin(s_.get(), nested);
  ASSERT_TRUE(nl.ok());
  EXPECT_TRUE(HasStage(nl->trace, "r scan"));
  EXPECT_TRUE(HasStage(nl->trace, "probe loop"));
  EXPECT_EQ(PairValues(nl->result.join), OracleJoin(oracle_r_, oracle_s_));
}

// kAuto resolves to a concrete plan and answers exactly like the forced
// strategies.
TEST_F(JoinEdgeCaseTest, AutoResolvesToConcreteStrategy) {
  for (int i = 0; i < 6; ++i) InsertR({uint64_t(i), uint64_t(i + 1)});
  for (int i = 0; i < 6; ++i) {
    InsertS({uint64_t(i), uint64_t(i + 1), uint64_t(i + 2)});
  }
  auto result = r_->ExecuteSetJoin(s_.get());  // default spec = kAuto
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->plan == "nested-loop" || result->plan == "sig-hash" ||
              result->plan == "adaptive")
      << result->plan;
  EXPECT_EQ(PairValues(result->join), OracleJoin(oracle_r_, oracle_s_));
}

// With telemetry on, a join bumps join.count / join.pairs and leaves a
// kJoin flight event carrying the plan name.
TEST(JoinTelemetryTest, JoinRecordsMetricsAndFlightEvent) {
  StorageManager storage;
  SetIndex::Options options;
  options.sig = {120, 3};
  options.capacity = 1024;
  options.enable_telemetry = true;
  auto r = SetIndex::Create(&storage, "r", options);
  ASSERT_TRUE(r.ok());
  auto s = SetIndex::Create(&storage, "s", options);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE((*r)->Insert({1, 2}).ok());
  ASSERT_TRUE((*s)->Insert({1, 2, 3}).ok());

  JoinSpec spec;
  spec.strategy = JoinStrategy::kSignatureHash;
  auto result = (*r)->ExecuteSetJoin(s->get(), spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->join.pairs.size(), 1u);

  EXPECT_EQ((*r)->metrics()->CounterValue("join.count"), 1u);
  EXPECT_EQ((*r)->metrics()->CounterValue("join.pairs"), 1u);
  ASSERT_NE((*r)->flight_recorder(), nullptr);
  bool saw_join = false;
  for (const FlightEvent& event : (*r)->flight_recorder()->Events()) {
    if (event.op == FlightOp::kJoin) saw_join = true;
  }
  EXPECT_TRUE(saw_join);
}

// --- language ---

TEST(JoinLanguageTest, ParsesJoinStatements) {
  auto plain = ParseJoinQuery("join Student on courses in-subset prereqs");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->class_name, "Student");
  EXPECT_EQ(plain->r_attribute, "courses");
  EXPECT_EQ(plain->s_attribute, "prereqs");
  EXPECT_EQ(plain->strategy, JoinStrategy::kAuto);

  auto with_using = ParseJoinQuery(
      "join Student on courses in-subset prereqs using sig-hash");
  ASSERT_TRUE(with_using.ok()) << with_using.status().ToString();
  EXPECT_EQ(with_using->strategy, JoinStrategy::kSignatureHash);

  auto nested = ParseJoinQuery(
      "join Student on courses in-subset courses using nested-loop");
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->strategy, JoinStrategy::kNestedLoop);
  EXPECT_EQ(nested->r_attribute, nested->s_attribute);

  EXPECT_FALSE(ParseJoinQuery("join").ok());
  EXPECT_FALSE(ParseJoinQuery("join Student courses in-subset p").ok());
  EXPECT_FALSE(  // only ⊆ joins exist
      ParseJoinQuery("join Student on courses has-subset prereqs").ok());
  EXPECT_FALSE(
      ParseJoinQuery("join Student on courses in-subset prereqs using "
                     "hash-join")
          .ok());
  EXPECT_FALSE(
      ParseJoinQuery("join Student on courses in-subset prereqs extra").ok());
  EXPECT_FALSE(ParseJoinQuery("select Student where x equals (1)").ok());
}

// --- Database joins between attributes ---

class DatabaseJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::Options options;
    Database::AttributeOptions courses;
    courses.name = "courses";
    courses.maintain_ssf = true;
    courses.sig = {120, 3};
    Database::AttributeOptions prereqs;
    prereqs.name = "prereqs";
    prereqs.maintain_ssf = true;
    prereqs.sig = {120, 3};
    options.attributes = {courses, prereqs};
    options.capacity = 1024;
    auto db = Database::Create(&storage_, "Student", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  void InsertObject(const ElementSet& courses, const ElementSet& prereqs) {
    auto oid = db_->Insert({courses, prereqs});
    ASSERT_TRUE(oid.ok());
    oracle_courses_[oid->value()] = courses;
    oracle_prereqs_[oid->value()] = prereqs;
    // Re-normalize what the store keeps (Insert normalizes in place).
    NormalizeSet(&oracle_courses_[oid->value()]);
    NormalizeSet(&oracle_prereqs_[oid->value()]);
  }

  StorageManager storage_;
  std::unique_ptr<Database> db_;
  std::map<uint64_t, ElementSet> oracle_courses_, oracle_prereqs_;
};

TEST_F(DatabaseJoinTest, JoinsTwoAttributesAndSelfAttribute) {
  InsertObject(ElementSet{}, {10, 11});
  InsertObject({1, 2}, {1, 2, 3});
  InsertObject({1, 2, 3}, {1, 2});
  InsertObject({5}, {5, 6});

  const PairVec want = OracleJoin(oracle_courses_, oracle_prereqs_);
  for (const JoinSpec& spec : ConcreteSpecs()) {
    auto result = db_->ExecuteSetJoin("courses", "prereqs", spec);
    ASSERT_TRUE(result.ok())
        << JoinStrategyName(spec.strategy) << ": "
        << result.status().ToString();
    EXPECT_EQ(PairValues(result->join), want)
        << JoinStrategyName(spec.strategy);
  }
  // kAuto resolves and names both attributes in the plan.
  auto auto_result = db_->ExecuteSetJoin("courses", "prereqs");
  ASSERT_TRUE(auto_result.ok());
  EXPECT_NE(auto_result->plan.find("courses in-subset prereqs"),
            std::string::npos)
      << auto_result->plan;
  EXPECT_EQ(PairValues(auto_result->join), want);

  // Same attribute on both sides.
  const PairVec want_self = OracleJoin(oracle_courses_, oracle_courses_);
  auto self = db_->ExecuteSetJoin("courses", "courses");
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(PairValues(self->join), want_self);

  // Unknown attributes fail cleanly.
  EXPECT_FALSE(db_->ExecuteSetJoin("courses", "nope").ok());
  EXPECT_FALSE(db_->ExecuteSetJoin("nope", "prereqs").ok());
}

TEST_F(DatabaseJoinTest, JoinQueryTextExecutesEndToEnd) {
  InsertObject({1, 2}, {1, 2, 3});
  InsertObject({7}, {8});
  const PairVec want = OracleJoin(oracle_courses_, oracle_prereqs_);

  auto result = ExecuteJoinQueryText(
      "join Student on courses in-subset prereqs using nested-loop",
      db_.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(PairValues(result->join), want);
  EXPECT_NE(result->plan.find("nested-loop"), std::string::npos)
      << result->plan;

  auto auto_result = ExecuteJoinQueryText(
      "join Student on courses in-subset prereqs", db_.get());
  ASSERT_TRUE(auto_result.ok());
  EXPECT_EQ(PairValues(auto_result->join), want);

  EXPECT_FALSE(ExecuteJoinQueryText(
                   "join Student on courses in-subset unknown_attr", db_.get())
                   .ok());
}

TEST_F(DatabaseJoinTest, ExplainSetJoinCarriesTraceAndPredictions) {
  for (int i = 0; i < 10; ++i) {
    InsertObject({uint64_t(i), uint64_t(i + 1)},
                 {uint64_t(i), uint64_t(i + 1), uint64_t(i + 2)});
  }
  JoinSpec spec;
  spec.strategy = JoinStrategy::kSignatureHash;
  auto explain = db_->ExplainSetJoin("courses", "prereqs", spec);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_FALSE(explain->trace.stages().empty());
  EXPECT_FALSE(explain->text.empty());
  EXPECT_FALSE(explain->json.empty());
  EXPECT_GT(explain->trace.predicted_total, 0.0);
  EXPECT_EQ(PairValues(explain->result.join),
            OracleJoin(oracle_courses_, oracle_prereqs_));
}

TEST(DatabaseSnapshotJoinTest, SnapshotJoinEqualsLiveAndSurvivesChurn) {
  StorageManager storage;
  Database::Options options;
  Database::AttributeOptions a;
  a.name = "a";
  a.sig = {120, 3};
  Database::AttributeOptions b;
  b.name = "b";
  b.sig = {120, 3};
  options.attributes = {a, b};
  options.capacity = 1024;
  options.enable_snapshots = true;
  auto db_or = Database::Create(&storage, "Pairs", options);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<Database> db = std::move(*db_or);

  std::map<uint64_t, ElementSet> oracle_a, oracle_b;
  std::vector<uint64_t> oids;
  auto InsertObject = [&](const ElementSet& va, const ElementSet& vb) {
    auto oid = db->Insert({va, vb});
    ASSERT_TRUE(oid.ok());
    oracle_a[oid->value()] = va;
    oracle_b[oid->value()] = vb;
    oids.push_back(oid->value());
  };
  InsertObject(ElementSet{}, {9});
  InsertObject({1, 2}, {1, 2, 3});
  InsertObject({4}, {4, 5});

  auto snap_or = db->GetSnapshot();
  ASSERT_TRUE(snap_or.ok()) << snap_or.status().ToString();
  std::unique_ptr<DatabaseSnapshot> snap = std::move(*snap_or);
  const PairVec pinned_want = OracleJoin(oracle_a, oracle_b);

  for (const JoinSpec& spec : ConcreteSpecs()) {
    auto live = db->ExecuteSetJoin("a", "b", spec);
    ASSERT_TRUE(live.ok()) << JoinStrategyName(spec.strategy);
    auto pinned = snap->ExecuteSetJoin("a", "b", spec);
    ASSERT_TRUE(pinned.ok()) << JoinStrategyName(spec.strategy) << ": "
                             << pinned.status().ToString();
    EXPECT_EQ(PairValues(live->join), pinned_want)
        << JoinStrategyName(spec.strategy);
    EXPECT_EQ(PairValues(pinned->join), pinned_want)
        << JoinStrategyName(spec.strategy);
  }

  // Churn after the pin: the snapshot's join answer must not move.
  InsertObject({1}, {1, 2});
  const uint64_t victim = oids[1];  // the ({1,2}, {1,2,3}) object
  ASSERT_TRUE(db->Delete(Oid{victim}).ok());
  oracle_a.erase(victim);
  oracle_b.erase(victim);
  const PairVec new_want = OracleJoin(oracle_a, oracle_b);
  ASSERT_NE(new_want, pinned_want);

  JoinSpec spec;
  spec.strategy = JoinStrategy::kSignatureHash;
  auto live = db->ExecuteSetJoin("a", "b", spec);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(PairValues(live->join), new_want);
  auto pinned = snap->ExecuteSetJoin("a", "b", spec);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(PairValues(pinned->join), pinned_want);
}

}  // namespace
}  // namespace sigsetdb
