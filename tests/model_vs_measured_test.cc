// Model-vs-measured differential suite: the measured page-access deltas of
// the real executor must match the src/model analytical predictions for
// every facility and both query shapes (T ⊇ Q and T ⊆ Q) — and the measured
// delta must be bit-identical between serial and 4-thread execution, the
// library's core parallel-accounting invariant (logical page accesses are a
// property of the plan, not of the worker partitioning).

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "db/set_index.h"
#include "model/actual_drops.h"
#include "model/cost_bssf.h"
#include "model/cost_join.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "query/advisor.h"
#include "query/executor.h"
#include "query/join.h"
#include "workload/generator.h"
#include "sig/bssf.h"
#include "sig/ssf.h"
#include "storage/storage_manager.h"
#include "test_db.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sigsetdb {
namespace {

class ModelVsMeasuredTest : public ::testing::Test {
 protected:
  static constexpr int64_t kN = 2000;
  static constexpr int64_t kV = 500;
  static constexpr int64_t kDt = 8;

  ModelVsMeasuredTest() : db_(MakeOptions()), pool_(4) {
    model_db_.n = kN;
    model_db_.v = kV;
    ctx_.pool = &pool_;
  }

  static TestDatabase::Options MakeOptions() {
    TestDatabase::Options options;
    options.n = kN;
    options.v = kV;
    options.dt = kDt;
    options.sig = {250, 2};
    options.seed = 24242;
    return options;
  }

  // Runs `trials` random Dq-element queries, each once serially and once on
  // 4 threads.  Per trial, the parallel run must touch exactly as many
  // pages as the serial run and return the same OIDs; both mean costs must
  // match the model prediction within `tolerance`.
  void CheckBothModes(SetAccessFacility* facility, QueryKind kind, int64_t dq,
                      int trials, uint64_t seed, double model,
                      double tolerance) {
    Rng rng(seed);
    uint64_t serial_total = 0;
    uint64_t parallel_total = 0;
    for (int t = 0; t < trials; ++t) {
      ElementSet query = rng.SampleWithoutReplacement(
          static_cast<uint64_t>(kV), static_cast<uint64_t>(dq));
      db_.storage().ResetStats();
      auto serial = ExecuteSetQuery(facility, db_.store(), kind, query);
      ASSERT_TRUE(serial.ok());
      uint64_t serial_delta = db_.storage().TotalStats().total();
      serial_total += serial_delta;

      db_.storage().ResetStats();
      auto parallel =
          ExecuteSetQuery(facility, db_.store(), kind, query, &ctx_);
      ASSERT_TRUE(parallel.ok());
      uint64_t parallel_delta = db_.storage().TotalStats().total();
      parallel_total += parallel_delta;

      // The parallel-accounting invariant: same logical cost, same answer,
      // regardless of how the work was partitioned across workers.
      EXPECT_EQ(parallel_delta, serial_delta);
      std::vector<Oid> a = serial->oids;
      std::vector<Oid> b = parallel->oids;
      auto by_value = [](Oid x, Oid y) { return x.value() < y.value(); };
      std::sort(a.begin(), a.end(), by_value);
      std::sort(b.begin(), b.end(), by_value);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].value(), b[i].value());
      }
    }
    double serial_mean = static_cast<double>(serial_total) / trials;
    double parallel_mean = static_cast<double>(parallel_total) / trials;
    EXPECT_NEAR(serial_mean, model, tolerance) << "serial";
    EXPECT_NEAR(parallel_mean, model, tolerance) << "4 threads";
    EXPECT_EQ(serial_mean, parallel_mean);
  }

  TestDatabase db_;
  ThreadPool pool_;
  ParallelExecutionContext ctx_;
  DatabaseParams model_db_;
  SignatureParams model_sig_{250, 2};
  NixParams model_nix_;
};

TEST_F(ModelVsMeasuredTest, SsfSuperset) {
  double model =
      SsfRetrievalCost(model_db_, model_sig_, kDt, 2, QueryKind::kSuperset);
  CheckBothModes(&db_.ssf(), QueryKind::kSuperset, 2, 20, 1, model,
                 0.15 * model + 1.0);
}

TEST_F(ModelVsMeasuredTest, SsfSubset) {
  double model =
      SsfRetrievalCost(model_db_, model_sig_, kDt, 60, QueryKind::kSubset);
  CheckBothModes(&db_.ssf(), QueryKind::kSubset, 60, 10, 2, model,
                 0.25 * model + 3.0);
}

TEST_F(ModelVsMeasuredTest, BssfSuperset) {
  double model = BssfRetrievalSuperset(model_db_, model_sig_, kDt, 2);
  CheckBothModes(&db_.bssf(), QueryKind::kSuperset, 2, 20, 3, model,
                 0.25 * model + 1.0);
}

TEST_F(ModelVsMeasuredTest, BssfSubset) {
  double model = BssfRetrievalSubset(model_db_, model_sig_, kDt, 60);
  CheckBothModes(&db_.bssf(), QueryKind::kSubset, 60, 10, 4, model,
                 0.2 * model + 2.0);
}

TEST_F(ModelVsMeasuredTest, NixSuperset) {
  int64_t rc = db_.nix().tree().height() + 1;
  double model = static_cast<double>(rc) * 2.0 +
                 ActualDropsSuperset(model_db_, kDt, 2);
  CheckBothModes(&db_.nix(), QueryKind::kSuperset, 2, 20, 5, model,
                 0.15 * model + 1.0);
}

// After deleting half the objects and compacting, both storage and scan
// cost must return to the model predictions evaluated at the LIVE count:
// the paper's SC/RC formulas assume a dense file, and CompactTo restores
// that assumption once delete tombstones have accumulated.
TEST_F(ModelVsMeasuredTest, SsfStorageAndScanTrackLiveCountAfterCompact) {
  constexpr int64_t kInserts = 600;
  StorageManager storage;
  auto ssf = SequentialSignatureFile::Create({250, 2},
                                             storage.CreateOrOpen("c.sig"),
                                             storage.CreateOrOpen("c.oid"));
  ASSERT_TRUE(ssf.ok());
  Rng rng(77);
  std::vector<BatchOp> ops;
  std::vector<ElementSet> sets;
  for (int64_t i = 0; i < kInserts; ++i) {
    ElementSet set = rng.SampleWithoutReplacement(
        static_cast<uint64_t>(kV), static_cast<uint64_t>(kDt));
    NormalizeSet(&set);
    sets.push_back(set);
    ops.push_back(BatchOp{BatchOp::Kind::kInsert,
                          Oid::FromLocation(static_cast<PageId>(i), 0), set});
  }
  ASSERT_TRUE((*ssf)->ApplyBatch(ops).ok());

  std::vector<BatchOp> removes;
  for (int64_t i = 0; i < kInserts; i += 2) {
    removes.push_back(BatchOp{BatchOp::Kind::kRemove,
                              Oid::FromLocation(static_cast<PageId>(i), 0),
                              sets[static_cast<size_t>(i)]});
  }
  ASSERT_TRUE((*ssf)->ApplyBatch(removes).ok());
  EXPECT_EQ((*ssf)->num_live(), static_cast<uint64_t>(kInserts) / 2);
  EXPECT_EQ((*ssf)->num_signatures(), static_cast<uint64_t>(kInserts));

  auto live = (*ssf)->CompactTo(storage.CreateOrOpen("c2.sig"),
                                storage.CreateOrOpen("c2.oid"));
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  ASSERT_EQ(*live, static_cast<uint64_t>(kInserts) / 2);
  auto compacted = SequentialSignatureFile::CreateFromExisting(
      {250, 2}, storage.CreateOrOpen("c2.sig"), storage.CreateOrOpen("c2.oid"),
      *live);
  ASSERT_TRUE(compacted.ok());

  DatabaseParams live_db = model_db_;
  live_db.n = kInserts / 2;
  EXPECT_EQ(static_cast<int64_t>((*compacted)->StoragePages()),
            SsfStorageCost(live_db, model_sig_));

  // A low-Dq superset scan reads exactly the live signature pages (plus the
  // occasional drop's OID look-up), so the measured candidate-scan cost
  // follows the live-count model, not the pre-compaction high-water count.
  Rng qrng(78);
  uint64_t total = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    ElementSet query =
        qrng.SampleWithoutReplacement(static_cast<uint64_t>(kV), 2);
    NormalizeSet(&query);
    storage.ResetStats();
    auto result = (*compacted)->Candidates(QueryKind::kSuperset, query);
    ASSERT_TRUE(result.ok());
    total += storage.TotalStats().total();
  }
  double mean = static_cast<double>(total) / trials;
  double model = static_cast<double>(SsfSignaturePages(live_db, model_sig_));
  EXPECT_NEAR(mean, model, 0.25 * model + 1.0);
}

// Skip-index model differential (extension): build a BSSF, tombstone all
// but a handful of objects, and compare the measured skipped-page counts of
// the slice scan against BssfExpectedSupersetSkippedPages /
// BssfExpectedSubsetSkippedPages evaluated at the LIVE count.  Serial and
// 4-thread runs must agree on reads and skips exactly (the planner decides
// what to skip before the fan-out).
class BssfSkipModelTest : public ::testing::Test {
 protected:
  static constexpr int64_t kInserts = 600;
  static constexpr int64_t kV = 500;
  static constexpr int64_t kDt = 8;

  BssfSkipModelTest() : pool_(4) { ctx_.pool = &pool_; }

  void SetUp() override {
    auto bssf = BitSlicedSignatureFile::Create(
        {250, 2}, kInserts + 64, storage_.CreateOrOpen("s.slices"),
        storage_.CreateOrOpen("s.oid"), BssfInsertMode::kSparse);
    ASSERT_TRUE(bssf.ok()) << bssf.status().ToString();
    bssf_ = std::move(*bssf);
    Rng rng(4242);
    std::vector<ElementSet> sets;
    for (int64_t i = 0; i < kInserts; ++i) {
      ElementSet set = rng.SampleWithoutReplacement(
          static_cast<uint64_t>(kV), static_cast<uint64_t>(kDt));
      sets.push_back(set);
      ASSERT_TRUE(
          bssf_->Insert(Oid::FromLocation(static_cast<PageId>(i), 0), set)
              .ok());
    }
    // Keep four live columns spread across separate 512-slot summary
    // groups; everything else becomes an all-zero column.
    std::vector<BatchOp> removes;
    for (int64_t i = 0; i < kInserts; ++i) {
      if (i == 100 || i == 250 || i == 400 || i == 550) continue;
      removes.push_back(BatchOp{BatchOp::Kind::kRemove,
                                Oid::FromLocation(static_cast<PageId>(i), 0),
                                sets[static_cast<size_t>(i)]});
    }
    ASSERT_TRUE(bssf_->ApplyBatch(removes).ok());
    bssf_->set_skip_index_enabled(true);
    live_db_.n = 4;
    live_db_.v = kV;
  }

  // Mean skipped slice pages over `trials` Dq-element queries of `kind`,
  // asserting serial/parallel agreement per trial.
  double MeanSkips(QueryKind kind, int64_t dq, int trials, uint64_t seed) {
    Rng rng(seed);
    uint64_t total_skips = 0;
    for (int t = 0; t < trials; ++t) {
      ElementSet query = rng.SampleWithoutReplacement(
          static_cast<uint64_t>(kV), static_cast<uint64_t>(dq));
      const IoStats s0 = bssf_->StageStats()[0].second;
      auto serial = bssf_->Candidates(kind, query);
      EXPECT_TRUE(serial.ok());
      const IoStats serial_delta = bssf_->StageStats()[0].second - s0;

      const IoStats p0 = bssf_->StageStats()[0].second;
      auto parallel = bssf_->Candidates(kind, query, &ctx_);
      EXPECT_TRUE(parallel.ok());
      const IoStats parallel_delta = bssf_->StageStats()[0].second - p0;

      EXPECT_EQ(serial_delta.reads(), parallel_delta.reads());
      EXPECT_EQ(serial_delta.skips(), parallel_delta.skips());
      total_skips += serial_delta.skips();
    }
    return static_cast<double>(total_skips) / trials;
  }

  StorageManager storage_;
  std::unique_ptr<BitSlicedSignatureFile> bssf_;
  ThreadPool pool_;
  ParallelExecutionContext ctx_;
  DatabaseParams live_db_;
  SignatureParams model_sig_{250, 2};
};

TEST_F(BssfSkipModelTest, SupersetSkipsMatchModel) {
  double model =
      BssfExpectedSupersetSkippedPages(live_db_, model_sig_, kDt, 2);
  ASSERT_GT(model, 1.0);  // the scenario must actually predict skipping
  double measured = MeanSkips(QueryKind::kSuperset, 2, 20, 11);
  EXPECT_NEAR(measured, model, 0.25 * model + 1.0);
}

TEST_F(BssfSkipModelTest, SubsetSkipsMatchModel) {
  double model = BssfExpectedSubsetSkippedPages(live_db_, model_sig_, kDt, 60);
  ASSERT_GT(model, 10.0);
  double measured = MeanSkips(QueryKind::kSubset, 60, 10, 12);
  EXPECT_NEAR(measured, model, 0.15 * model + 2.0);
}

// SSF counterpart, fully deterministic: with every resident tombstoned the
// page-union index reports zero live signatures on every page, so a
// skip-enabled scan reads nothing and skips every signature page.
TEST(SsfSkipTest, FullyTombstonedScanSkipsEveryPage) {
  StorageManager storage;
  auto ssf = SequentialSignatureFile::Create({250, 2},
                                             storage.CreateOrOpen("t.sig"),
                                             storage.CreateOrOpen("t.oid"));
  ASSERT_TRUE(ssf.ok());
  Rng rng(33);
  std::vector<ElementSet> sets;
  for (int64_t i = 0; i < 200; ++i) {
    ElementSet set = rng.SampleWithoutReplacement(500, 8);
    sets.push_back(set);
    ASSERT_TRUE(
        (*ssf)->Insert(Oid::FromLocation(static_cast<PageId>(i), 0), set)
            .ok());
  }
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE((*ssf)
                    ->Remove(Oid::FromLocation(static_cast<PageId>(i), 0),
                             sets[static_cast<size_t>(i)])
                    .ok());
  }
  (*ssf)->set_skip_index_enabled(true);
  ElementSet query = rng.SampleWithoutReplacement(500, 2);
  const IoStats before = (*ssf)->StageStats()[0].second;
  auto result = (*ssf)->Candidates(QueryKind::kSuperset, query);
  ASSERT_TRUE(result.ok());
  const IoStats delta = (*ssf)->StageStats()[0].second - before;
  EXPECT_TRUE(result->oids.empty());
  EXPECT_EQ(delta.reads(), 0u);
  EXPECT_GT(delta.skips(), 0u);
}

// --- set-containment join rows (DESIGN.md §17) -----------------------------
//
// The join variants of eqs. 2–8: measured page reads and candidate-pair
// counts of the real join executor against model/cost_join.h, per strategy,
// at scaled Table-2-shaped parameters (uniform sets over V = 500, narrow R
// against wide S so real containments occur).
class JoinModelVsMeasuredTest : public ::testing::Test {
 protected:
  static constexpr int64_t kNr = 240;
  static constexpr int64_t kNs = 800;
  static constexpr int64_t kVj = 500;
  static constexpr int64_t kDtR = 4;
  static constexpr int64_t kDtS = 10;

  void SetUp() override {
    SetIndex::Options options;
    options.maintain_ssf = true;
    options.maintain_bssf = true;
    options.maintain_nix = true;
    options.sig = {250, 2};
    options.capacity = 4096;
    options.domain_estimate = kVj;  // pin the model's V
    auto r = SetIndex::Create(&storage_, "r", options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto s = SetIndex::Create(&storage_, "s", options);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    r_ = std::move(*r);
    s_ = std::move(*s);
    WorkloadConfig r_config{kNr, kVj, CardinalitySpec::Fixed(kDtR),
                            SkewKind::kUniform, 0.99, 101};
    for (const ElementSet& set : MakeDatabase(r_config)) {
      ASSERT_TRUE(r_->Insert(set).ok());
    }
    WorkloadConfig s_config{kNs, kVj, CardinalitySpec::Fixed(kDtS),
                            SkewKind::kUniform, 0.99, 103};
    for (const ElementSet& set : MakeDatabase(s_config)) {
      ASSERT_TRUE(s_->Insert(set).ok());
    }
    db_r_.n = kNr;
    db_r_.v = kVj;
    db_s_.n = kNs;
    db_s_.v = kVj;
  }

  StatusOr<SetIndexJoinResult> RunJoin(JoinStrategy strategy) {
    JoinSpec spec;
    spec.strategy = strategy;
    return r_->ExecuteSetJoin(s_.get(), spec);
  }

  JoinCostBreakdown Breakdown(JoinStrategy strategy) {
    auto bd = BreakdownForJoinStrategy(db_r_, kDtR, db_s_, kDtS, sig_, nix_,
                                       strategy);
    EXPECT_TRUE(bd.ok());
    return *bd;
  }

  StorageManager storage_;
  std::unique_ptr<SetIndex> r_, s_;
  DatabaseParams db_r_, db_s_;
  SignatureParams sig_{250, 2};
  NixParams nix_;
};

// Sig-hash: pages = the two object-file scans, candidates = the eq.-5
// analogue n_r·(A + Fd·(N_s − A)), results = n_r·N_s·P(r ⊆ s).  Everything
// must land within 30 % of the model (the acceptance bound).
TEST_F(JoinModelVsMeasuredTest, SignatureHashPagesAndPairsMatchModel) {
  const JoinCostBreakdown bd = Breakdown(JoinStrategy::kSignatureHash);
  auto result = RunJoin(JoinStrategy::kSignatureHash);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const double measured_pages = static_cast<double>(result->page_accesses);
  EXPECT_NEAR(measured_pages, bd.total(), 0.30 * bd.total() + 2.0);
  // The model's scan terms individually match the object files.
  EXPECT_NEAR(static_cast<double>(ObjectFilePages(db_r_, kDtR)), bd.r_scan,
              0.30 * bd.r_scan + 1.0);

  const double measured_candidates =
      static_cast<double>(result->join.num_candidate_pairs);
  EXPECT_NEAR(measured_candidates, bd.expected_candidate_pairs,
              0.30 * bd.expected_candidate_pairs + 16.0);
  const double measured_pairs =
      static_cast<double>(result->join.pairs.size());
  EXPECT_NEAR(measured_pairs, bd.expected_result_pairs,
              0.30 * bd.expected_result_pairs + 16.0);
}

// Nested-loop: pages = scan(R) + |R|·RC_sel(S at Dq = Dt_r), with the probe
// priced by the same advisor the executor plans with.
TEST_F(JoinModelVsMeasuredTest, NestedLoopPagesMatchModel) {
  const JoinCostBreakdown bd = Breakdown(JoinStrategy::kNestedLoop);
  auto result = RunJoin(JoinStrategy::kNestedLoop);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->join.num_probes, static_cast<uint64_t>(kNr));
  const double measured_pages = static_cast<double>(result->page_accesses);
  EXPECT_NEAR(measured_pages, bd.total(), 0.30 * bd.total() + 4.0);
}

// Adaptive is priced as sig-hash (it only leaves the in-memory direction
// when the probe is modeled cheaper), so its measured pages obey the same
// bound — and its pair set is identical to sig-hash's.
TEST_F(JoinModelVsMeasuredTest, AdaptivePagesBoundedByModel) {
  const JoinCostBreakdown bd = Breakdown(JoinStrategy::kAdaptive);
  auto adaptive = RunJoin(JoinStrategy::kAdaptive);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status().ToString();
  auto sig_hash = RunJoin(JoinStrategy::kSignatureHash);
  ASSERT_TRUE(sig_hash.ok());
  ASSERT_EQ(adaptive->join.pairs.size(), sig_hash->join.pairs.size());
  const double measured_pages = static_cast<double>(adaptive->page_accesses);
  EXPECT_NEAR(measured_pages, bd.total(), 0.30 * bd.total() + 4.0);
}

// The advisor's ranked costs are consistent: each strategy's breakdown
// total equals the cost AdviseJoinStrategies ranked it at, and the measured
// winner at THESE parameters (|R| = 240 probes dwarf one S scan) is not
// nested-loop.
TEST_F(JoinModelVsMeasuredTest, AdvisorCostsAreConsistentWithBreakdowns) {
  auto choices =
      AdviseJoinStrategies(db_r_, kDtR, db_s_, kDtS, sig_, nix_);
  ASSERT_TRUE(choices.ok());
  ASSERT_EQ(choices->size(), 3u);
  for (const JoinStrategyChoice& choice : *choices) {
    const JoinCostBreakdown bd = Breakdown(choice.strategy);
    EXPECT_NEAR(choice.cost_pages, bd.total(), 1e-9) << choice.name;
  }
  for (size_t i = 1; i < choices->size(); ++i) {
    EXPECT_LE((*choices)[i - 1].cost_pages, (*choices)[i].cost_pages);
  }
  EXPECT_NE(choices->front().strategy, JoinStrategy::kNestedLoop);
}

TEST_F(ModelVsMeasuredTest, NixSubset) {
  int64_t rc = db_.nix().tree().height() + 1;
  int64_t dq = 40;
  double model = static_cast<double>(rc * dq) +
                 NixSubsetFailingCandidates(model_db_, kDt, dq) +
                 ActualDropsSubset(model_db_, kDt, dq);
  CheckBothModes(&db_.nix(), QueryKind::kSubset, dq, 10, 6, model,
                 0.15 * model + 2.0);
}

}  // namespace
}  // namespace sigsetdb
