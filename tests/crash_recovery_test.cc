// Crash-at-every-I/O recovery harness (DESIGN.md §9).
//
// For each facility configuration, a deterministic insert/delete/batch/
// compact/query/checkpoint workload is first run once against an in-memory
// StorageManager
// whose files are all wrapped in one FaultInjectingPageFile injector, to
// count its total page operations T.  Then, for EVERY k in [0, T] — no
// sampling — a fresh database runs the same workload with a crash scheduled
// at operation k: the k-th and all later page I/Os fail.  The harness then
// disarms the injector ("restarts the machine") and attempts recovery.
//
// The contract under test:
//   - the crash surfaces as a clean Status at the SetIndex/Database API
//     (no abort, no swallowed error),
//   - queries that succeeded before the crash match brute force exactly,
//   - reopening either fails cleanly (e.g. a torn post-checkpoint B-tree
//     split is refused by BTree::ValidateStructure) or recovers the state
//     of the last successful checkpoint,
//   - a recovered index never returns a wrong answer: every successful
//     probe query lies between a lower bound (checkpoint state minus every
//     attempted post-checkpoint delete) and an upper bound (checkpoint
//     state plus attempted post-checkpoint inserts, minus completed
//     deletes),
//   - at k == T (no fault fires; the workload's tail past the final
//     checkpoint contains no page-allocating mutation) recovery must
//     succeed outright.

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/set_index.h"
#include "db/write_batch.h"
#include "obj/object.h"
#include "storage/fault_injecting_page_file.h"
#include "storage/storage_manager.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

constexpr size_t kNoStep = static_cast<size_t>(-1);

bool Matches(QueryKind kind, const ElementSet& set, const ElementSet& query) {
  StoredObject obj{Oid(), set};
  switch (kind) {
    case QueryKind::kSuperset:
      return SatisfiesSuperset(obj, query);
    case QueryKind::kSubset:
      return SatisfiesSubset(obj, query);
    default:
      return SatisfiesEquals(obj, query);
  }
}

struct Step {
  enum class Kind { kInsert, kDelete, kCheckpoint, kQuery, kBatch, kCompact };
  Kind kind;
  // kInsert: the set value; kQuery: the query set.
  ElementSet set;
  // kInsert: the insert ordinal; kDelete: ordinal of the victim insert.
  size_t target = 0;
  QueryKind qkind = QueryKind::kSuperset;
  // kBatch: grouped inserts (each carrying its ordinal) and delete victim
  // ordinals, applied through one WriteBatch::ApplyBatch call.
  std::vector<std::pair<size_t, ElementSet>> batch_inserts = {};
  std::vector<size_t> batch_deletes = {};
};

// One facility configuration put through the harness.
struct CrashConfig {
  std::string name;
  SetIndex::Options options;
  int inserts;
  uint64_t v;
  uint64_t dt;
  uint64_t seed;
};

// Builds the deterministic workload: `inserts` inserts with checkpoints at
// 1/3 and 2/3, interleaved deletes and differential queries, and a tail of
// [subset query, final checkpoint, delete, query] so that nothing after the
// final checkpoint allocates pages (recovery at k == T must succeed).
std::vector<Step> MakeWorkload(const CrashConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<Step> steps;
  size_t ordinal = 0;
  const int n = cfg.inserts;
  for (int i = 0; i < n; ++i) {
    Step ins{Step::Kind::kInsert,
             rng.SampleWithoutReplacement(cfg.v, cfg.dt), ordinal++,
             QueryKind::kSuperset};
    NormalizeSet(&ins.set);
    steps.push_back(std::move(ins));
    if (i == n / 4) {
      steps.push_back({Step::Kind::kQuery,
                       rng.SampleWithoutReplacement(cfg.v, 2), 0,
                       QueryKind::kSuperset});
    }
    if (i == n / 3 || i == 2 * n / 3) {
      steps.push_back({Step::Kind::kCheckpoint, {}, 0, QueryKind::kSuperset});
    }
    if (i == n / 2) {
      steps.push_back({Step::Kind::kDelete, {}, 1, QueryKind::kSuperset});
      steps.push_back({Step::Kind::kQuery,
                       rng.SampleWithoutReplacement(cfg.v, 1), 0,
                       QueryKind::kSuperset});
    }
  }
  // Grouped churn through the batch path: delete two earlier survivors and
  // insert three new sets in one ApplyBatch call, then Compact() away the
  // accumulated tombstones.  Compact commits via Checkpoint but allocates
  // new generation files, so it must stay ahead of the allocation-free tail
  // below (recovery at k == T demands the final checkpoint be last).
  Step batch{Step::Kind::kBatch, {}, 0, QueryKind::kSuperset};
  batch.batch_deletes = {3, 4};
  for (int i = 0; i < 3; ++i) {
    ElementSet set = rng.SampleWithoutReplacement(cfg.v, cfg.dt);
    NormalizeSet(&set);
    batch.batch_inserts.emplace_back(ordinal++, std::move(set));
  }
  steps.push_back(std::move(batch));
  steps.push_back({Step::Kind::kQuery, rng.SampleWithoutReplacement(cfg.v, 2),
                   0, QueryKind::kSuperset});
  steps.push_back({Step::Kind::kCompact, {}, 0, QueryKind::kSuperset});
  steps.push_back({Step::Kind::kQuery, rng.SampleWithoutReplacement(cfg.v, 1),
                   0, QueryKind::kSuperset});
  steps.push_back({Step::Kind::kQuery,
                   rng.SampleWithoutReplacement(cfg.v, cfg.v / 2), 0,
                   QueryKind::kSubset});
  steps.push_back({Step::Kind::kCheckpoint, {}, 0, QueryKind::kSuperset});
  steps.push_back({Step::Kind::kDelete, {}, 2, QueryKind::kSuperset});
  steps.push_back({Step::Kind::kQuery, rng.SampleWithoutReplacement(cfg.v, 2),
                   0, QueryKind::kSuperset});
  return steps;
}

struct RunOutcome {
  bool create_failed = false;
  size_t failing_step = kNoStep;
  std::vector<Oid> oids;  // per executed insert ordinal
  bool has_ckpt = false;
  size_t ckpt_step = 0;          // step index of the last successful checkpoint
  uint64_t ckpt_count = 0;       // num_objects() at that checkpoint
  std::vector<size_t> ckpt_live;  // live insert ordinals at that checkpoint
};

std::vector<PlanMode> ForcedModes(const SetIndex::Options& options) {
  std::vector<PlanMode> modes;
  if (options.maintain_ssf) modes.push_back(PlanMode::kForceSsf);
  if (options.maintain_bssf) modes.push_back(PlanMode::kForceBssf);
  if (options.maintain_nix) modes.push_back(PlanMode::kForceNix);
  return modes;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  static void Intercept(StorageManager* storage, FaultInjector* injector) {
    storage->SetInterceptor(
        [injector](std::unique_ptr<PageFile> base) -> std::unique_ptr<
                                                       PageFile> {
          return std::make_unique<FaultInjectingPageFile>(std::move(base),
                                                          injector);
        });
  }

  // Runs the workload until completion or the first error.  Successful
  // queries are differentially checked against the live brute-force state.
  // `expect_oids` (when non-null) asserts OID assignment is deterministic
  // across runs — the property that lets the harness reuse clean-run OIDs.
  static RunOutcome RunWorkload(StorageManager* storage,
                                const CrashConfig& cfg,
                                const std::vector<Step>& steps,
                                const std::vector<Oid>* expect_oids) {
    RunOutcome out;
    auto index_or = SetIndex::Create(storage, "idx", cfg.options);
    if (!index_or.ok()) {
      out.create_failed = true;
      return out;
    }
    SetIndex* index = index_or->get();
    std::vector<PlanMode> modes = ForcedModes(cfg.options);
    std::map<size_t, ElementSet> live;  // insert ordinal -> normalized set
    for (size_t si = 0; si < steps.size(); ++si) {
      const Step& step = steps[si];
      Status status = Status::OK();
      switch (step.kind) {
        case Step::Kind::kInsert: {
          auto oid = index->Insert(step.set);
          if (!oid.ok()) {
            status = oid.status();
            break;
          }
          if (expect_oids != nullptr) {
            EXPECT_EQ(oid->value(), (*expect_oids)[step.target].value());
          }
          out.oids.push_back(*oid);
          live[step.target] = step.set;
          break;
        }
        case Step::Kind::kDelete: {
          status = index->Delete(out.oids[step.target]);
          if (status.ok()) live.erase(step.target);
          break;
        }
        case Step::Kind::kCheckpoint: {
          status = index->Checkpoint();
          if (status.ok()) {
            out.has_ckpt = true;
            out.ckpt_step = si;
            out.ckpt_count = index->num_objects();
            out.ckpt_live.clear();
            for (const auto& [ordinal, set] : live) {
              out.ckpt_live.push_back(ordinal);
            }
          }
          break;
        }
        case Step::Kind::kBatch: {
          WriteBatch batch;
          for (size_t victim : step.batch_deletes) {
            batch.Delete(out.oids[victim]);
          }
          for (const auto& [ordinal, set] : step.batch_inserts) {
            batch.Insert(set);
          }
          auto oids = index->ApplyBatch(batch);
          if (!oids.ok()) {
            status = oids.status();
            break;
          }
          for (size_t victim : step.batch_deletes) live.erase(victim);
          for (size_t i = 0; i < step.batch_inserts.size(); ++i) {
            const auto& [ordinal, set] = step.batch_inserts[i];
            if (expect_oids != nullptr) {
              EXPECT_EQ((*oids)[i].value(), (*expect_oids)[ordinal].value());
            }
            out.oids.push_back((*oids)[i]);
            live[ordinal] = set;
          }
          break;
        }
        case Step::Kind::kCompact: {
          // A successful Compact commits through Checkpoint, so it counts as
          // one for the recovery bounds.
          status = index->Compact();
          if (status.ok()) {
            out.has_ckpt = true;
            out.ckpt_step = si;
            out.ckpt_count = index->num_objects();
            out.ckpt_live.clear();
            for (const auto& [ordinal, set] : live) {
              out.ckpt_live.push_back(ordinal);
            }
          }
          break;
        }
        case Step::Kind::kQuery: {
          for (PlanMode mode : modes) {
            auto result = index->Query(step.qkind, step.set, mode);
            if (!result.ok()) {
              status = result.status();
              break;
            }
            std::vector<uint64_t> got;
            for (Oid oid : result->result.oids) got.push_back(oid.value());
            std::sort(got.begin(), got.end());
            ElementSet query = step.set;
            NormalizeSet(&query);
            std::vector<uint64_t> want;
            for (const auto& [ordinal, set] : live) {
              if (Matches(step.qkind, set, query)) {
                want.push_back(out.oids[ordinal].value());
              }
            }
            std::sort(want.begin(), want.end());
            EXPECT_EQ(got, want)
                << "live query diverged from brute force at step " << si;
          }
          break;
        }
      }
      if (!status.ok()) {
        out.failing_step = si;
        break;
      }
    }
    return out;
  }

  // The full harness for one configuration.
  static void RunConfig(const CrashConfig& cfg) {
    const std::vector<Step> steps = MakeWorkload(cfg);

    // Normalized set per insert ordinal (for recovery bounds).
    std::vector<ElementSet> insert_sets;
    for (const Step& step : steps) {
      if (step.kind == Step::Kind::kInsert) insert_sets.push_back(step.set);
      if (step.kind == Step::Kind::kBatch) {
        for (const auto& [ordinal, set] : step.batch_inserts) {
          insert_sets.push_back(set);
        }
      }
    }

    // Clean run: total op count and the deterministic OID assignment.
    std::vector<Oid> clean_oids;
    uint64_t total_ops = 0;
    {
      FaultInjector injector;
      StorageManager storage;
      Intercept(&storage, &injector);
      RunOutcome clean = RunWorkload(&storage, cfg, steps, nullptr);
      ASSERT_FALSE(clean.create_failed);
      ASSERT_EQ(clean.failing_step, kNoStep);
      ASSERT_TRUE(clean.has_ckpt);
      clean_oids = clean.oids;
      total_ops = injector.ops();
    }
    ASSERT_GT(total_ops, 0u);

    // Deterministic probe queries evaluated after every recovery.
    std::vector<std::pair<QueryKind, ElementSet>> probes;
    {
      Rng rng(cfg.seed + 999);
      probes.emplace_back(QueryKind::kSuperset,
                          rng.SampleWithoutReplacement(cfg.v, 1));
      probes.emplace_back(QueryKind::kSuperset,
                          rng.SampleWithoutReplacement(cfg.v, 2));
      probes.emplace_back(QueryKind::kSubset,
                          rng.SampleWithoutReplacement(cfg.v, cfg.v / 2));
      for (auto& [kind, query] : probes) NormalizeSet(&query);
    }
    const std::vector<PlanMode> modes = ForcedModes(cfg.options);

    for (uint64_t k = 0; k <= total_ops; ++k) {
      SCOPED_TRACE(cfg.name + ": crash at op " + std::to_string(k) + " of " +
                   std::to_string(total_ops));
      FaultInjector injector;
      injector.CrashAt(k);
      StorageManager storage;
      Intercept(&storage, &injector);
      RunOutcome out = RunWorkload(&storage, cfg, steps, &clean_oids);
      if (k < total_ops) {
        // The crash must surface as a clean error somewhere — an uncharged
        // completion would mean a Status was swallowed.
        EXPECT_TRUE(out.create_failed || out.failing_step != kNoStep);
      } else {
        EXPECT_FALSE(out.create_failed);
        EXPECT_EQ(out.failing_step, kNoStep);
      }

      // "Restart": faults stop, the surviving pages are what they are.
      injector.Disarm();
      auto reopened = SetIndex::Open(&storage, "idx", cfg.options);
      if (!out.has_ckpt) {
        // Nothing durable was ever committed; recovery must refuse.
        EXPECT_FALSE(reopened.ok());
        continue;
      }
      if (k == total_ops) {
        // Nothing after the final checkpoint allocates pages, so recovery
        // of a cleanly finished run must succeed.
        ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      }
      if (!reopened.ok()) {
        // A clean refusal (e.g. torn B-tree split detected) is acceptable.
        continue;
      }
      SetIndex* index = reopened->get();
      EXPECT_EQ(index->num_objects(), out.ckpt_count);

      // Post-checkpoint mutations that were attempted (executed, or running
      // when the crash hit).
      std::set<size_t> deletes_attempted;
      std::set<size_t> deletes_executed;
      std::set<size_t> inserts_attempted;
      size_t last_attempted = out.failing_step != kNoStep
                                  ? out.failing_step
                                  : steps.size() - 1;
      for (size_t si = out.ckpt_step + 1; si <= last_attempted; ++si) {
        const Step& step = steps[si];
        if (step.kind == Step::Kind::kDelete) {
          deletes_attempted.insert(step.target);
          if (si != out.failing_step) deletes_executed.insert(step.target);
        } else if (step.kind == Step::Kind::kInsert) {
          inserts_attempted.insert(step.target);
        } else if (step.kind == Step::Kind::kBatch) {
          // A batch that was running when the crash hit may have applied any
          // prefix of its index mutations: its deletes count as attempted
          // but not executed, its inserts as attempted.
          for (size_t victim : step.batch_deletes) {
            deletes_attempted.insert(victim);
            if (si != out.failing_step) deletes_executed.insert(victim);
          }
          for (const auto& [ordinal, set] : step.batch_inserts) {
            inserts_attempted.insert(ordinal);
          }
        }
      }

      for (const auto& [kind, query] : probes) {
        for (PlanMode mode : modes) {
          auto result = index->Query(kind, query, mode);
          if (!result.ok()) {
            // Clean error is acceptable (e.g. a candidate OID whose delete
            // was half-applied resolves to a tombstone).  Wrong answers are
            // not, which the bounds below enforce on the success path.
            continue;
          }
          std::set<uint64_t> lower;
          std::set<uint64_t> upper;
          for (size_t ordinal : out.ckpt_live) {
            if (!Matches(kind, insert_sets[ordinal], query)) continue;
            uint64_t oid = clean_oids[ordinal].value();
            if (deletes_attempted.count(ordinal) == 0) lower.insert(oid);
            if (deletes_executed.count(ordinal) == 0) upper.insert(oid);
          }
          for (size_t ordinal : inserts_attempted) {
            if (Matches(kind, insert_sets[ordinal], query)) {
              upper.insert(clean_oids[ordinal].value());
            }
          }
          std::set<uint64_t> got;
          for (Oid oid : result->result.oids) got.insert(oid.value());
          for (uint64_t oid : lower) {
            EXPECT_TRUE(got.count(oid) != 0)
                << "recovered index lost durable object " << oid;
          }
          for (uint64_t oid : got) {
            EXPECT_TRUE(upper.count(oid) != 0)
                << "recovered index returned impossible object " << oid;
          }
        }
      }
    }
  }
};

TEST_F(CrashRecoveryTest, SsfEveryIoIndex) {
  CrashConfig cfg;
  cfg.name = "ssf";
  cfg.options.maintain_ssf = true;
  cfg.options.maintain_bssf = false;
  cfg.options.maintain_nix = false;
  cfg.options.sig = {64, 2};
  cfg.options.capacity = 128;
  cfg.inserts = 24;
  cfg.v = 48;
  cfg.dt = 6;
  cfg.seed = 1001;
  RunConfig(cfg);
}

TEST_F(CrashRecoveryTest, BssfEveryIoIndex) {
  CrashConfig cfg;
  cfg.name = "bssf";
  cfg.options.maintain_ssf = false;
  cfg.options.maintain_bssf = true;
  cfg.options.maintain_nix = false;
  cfg.options.sig = {64, 2};
  cfg.options.capacity = 128;
  cfg.inserts = 24;
  cfg.v = 48;
  cfg.dt = 6;
  cfg.seed = 2002;
  RunConfig(cfg);
}

TEST_F(CrashRecoveryTest, NixEveryIoIndexWithLeafSplits) {
  CrashConfig cfg;
  cfg.name = "nix";
  cfg.options.maintain_ssf = false;
  cfg.options.maintain_bssf = false;
  cfg.options.maintain_nix = true;
  cfg.options.sig = {64, 2};
  cfg.options.capacity = 256;
  cfg.inserts = 60;  // ~160 distinct keys: enough leaf bytes to force splits
  cfg.v = 160;
  cfg.dt = 8;
  cfg.seed = 3003;
  RunConfig(cfg);

  // The workload must actually exercise the split path, otherwise the
  // torn-split recovery scenarios above were vacuous: rebuild it cleanly
  // and check the tree grew beyond one leaf.
  StorageManager storage;
  std::vector<Step> steps = MakeWorkload(cfg);
  RunOutcome out = RunWorkload(&storage, cfg, steps, nullptr);
  ASSERT_EQ(out.failing_step, kNoStep);
  auto index = SetIndex::Open(&storage, "idx", cfg.options);
  ASSERT_TRUE(index.ok());
  EXPECT_GT((*index)->nix()->tree().leaf_pages(), 1u);
}

TEST_F(CrashRecoveryTest, AllFacilitiesEveryIoIndex) {
  CrashConfig cfg;
  cfg.name = "all";
  cfg.options.maintain_ssf = true;
  cfg.options.maintain_bssf = true;
  cfg.options.maintain_nix = true;
  cfg.options.sig = {64, 2};
  cfg.options.capacity = 128;
  cfg.inserts = 24;
  cfg.v = 48;
  cfg.dt = 6;
  cfg.seed = 4004;
  RunConfig(cfg);
}

// Database-level spot check: the multi-attribute facade must show the same
// crash discipline — clean errors during the crash, checkpoint-prefix
// recovery or clean refusal afterwards, never a wrong conjunction answer.
TEST_F(CrashRecoveryTest, DatabaseEveryIoIndex) {
  Database::Options options;
  Database::AttributeOptions attr_a;
  attr_a.name = "a";
  attr_a.sig = {64, 2};
  Database::AttributeOptions attr_b;
  attr_b.name = "b";
  attr_b.maintain_bssf = false;  // nix-only second attribute
  attr_b.sig = {64, 2};
  options.attributes = {attr_a, attr_b};
  options.capacity = 128;

  constexpr uint64_t kV = 40;
  constexpr uint64_t kDt = 5;
  constexpr int kInserts = 12;

  // Deterministic attribute values; the final checkpoint is followed only
  // by a delete and a query (no page-allocating mutation).
  Rng rng(5005);
  std::vector<std::vector<ElementSet>> values;
  for (int i = 0; i < kInserts; ++i) {
    std::vector<ElementSet> v = {rng.SampleWithoutReplacement(kV, kDt),
                                 rng.SampleWithoutReplacement(kV, kDt)};
    NormalizeSet(&v[0]);
    NormalizeSet(&v[1]);
    values.push_back(std::move(v));
  }
  ElementSet probe = rng.SampleWithoutReplacement(kV, 1);
  NormalizeSet(&probe);

  // One step list: insert 0..5, checkpoint, insert 6..11, checkpoint,
  // delete object 1, query.  Returns outcome analogues of RunWorkload.
  struct DbOutcome {
    bool failed = false;       // some call returned an error
    bool has_ckpt = false;
    uint64_t ckpt_count = 0;
    std::vector<size_t> ckpt_live;
    std::set<size_t> post_inserts;
    bool delete_attempted = false;
    bool delete_executed = false;
    std::vector<Oid> oids;
  };
  auto run = [&](StorageManager* storage) {
    DbOutcome out;
    auto db_or = Database::Create(storage, "class", options);
    if (!db_or.ok()) {
      out.failed = true;
      return out;
    }
    Database* db = db_or->get();
    std::set<size_t> live;
    auto checkpoint = [&]() {
      if (!db->Checkpoint().ok()) return false;
      out.has_ckpt = true;
      out.ckpt_count = db->num_objects();
      out.ckpt_live.assign(live.begin(), live.end());
      out.post_inserts.clear();
      return true;
    };
    for (int i = 0; i < kInserts; ++i) {
      // Record the attempt before calling: a failing insert may still have
      // persisted partial index entries, so it belongs in the upper bound.
      if (out.has_ckpt) out.post_inserts.insert(i);
      auto oid = db->Insert(values[i]);
      if (!oid.ok()) {
        out.failed = true;
        return out;
      }
      out.oids.push_back(*oid);
      live.insert(i);
      if (i == kInserts / 2 - 1 || i == kInserts - 1) {
        if (!checkpoint()) {
          out.failed = true;
          return out;
        }
      }
    }
    out.delete_attempted = true;
    if (!db->Delete(out.oids[1]).ok()) {
      out.failed = true;
      return out;
    }
    out.delete_executed = true;
    auto result = db->Query({{"a", QueryKind::kSuperset, probe}});
    if (!result.ok()) {
      out.failed = true;
      return out;
    }
    return out;
  };

  // Clean run for T and the deterministic OIDs.
  uint64_t total_ops = 0;
  std::vector<Oid> clean_oids;
  {
    FaultInjector injector;
    StorageManager storage;
    Intercept(&storage, &injector);
    DbOutcome clean = run(&storage);
    ASSERT_FALSE(clean.failed);
    clean_oids = clean.oids;
    total_ops = injector.ops();
  }

  for (uint64_t k = 0; k <= total_ops; ++k) {
    SCOPED_TRACE("database: crash at op " + std::to_string(k) + " of " +
                 std::to_string(total_ops));
    FaultInjector injector;
    injector.CrashAt(k);
    StorageManager storage;
    Intercept(&storage, &injector);
    DbOutcome out = run(&storage);
    EXPECT_EQ(out.failed, k < total_ops);

    injector.Disarm();
    auto reopened = Database::Open(&storage, "class", options);
    if (!out.has_ckpt) {
      EXPECT_FALSE(reopened.ok());
      continue;
    }
    if (k == total_ops) {
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    }
    if (!reopened.ok()) continue;
    EXPECT_EQ((*reopened)->num_objects(), out.ckpt_count);

    auto result = (*reopened)->Query({{"a", QueryKind::kSuperset, probe}});
    if (!result.ok()) continue;  // clean error acceptable
    std::set<uint64_t> got;
    for (Oid oid : result->oids) got.insert(oid.value());
    for (size_t i : out.ckpt_live) {
      if (!Matches(QueryKind::kSuperset, values[i][0], probe)) continue;
      uint64_t oid = clean_oids[i].value();
      bool deletable = (i == 1) && out.delete_attempted;
      bool deleted = (i == 1) && out.delete_executed;
      if (!deletable) {
        EXPECT_TRUE(got.count(oid) != 0)
            << "recovered database lost durable object " << oid;
      }
      if (deleted) {
        EXPECT_TRUE(got.count(oid) == 0)
            << "recovered database returned deleted object " << oid;
      }
    }
    for (uint64_t oid : got) {
      bool possible = false;
      for (size_t i = 0; i < clean_oids.size(); ++i) {
        if (clean_oids[i].value() != oid) continue;
        bool in_ckpt = std::find(out.ckpt_live.begin(), out.ckpt_live.end(),
                                 i) != out.ckpt_live.end();
        bool post_insert = out.post_inserts.count(i) != 0;
        bool was_deleted = (i == 1) && out.delete_executed;
        possible = (in_ckpt || post_insert) && !was_deleted &&
                   Matches(QueryKind::kSuperset, values[i][0], probe);
      }
      EXPECT_TRUE(possible)
          << "recovered database returned impossible object " << oid;
    }
  }
}

}  // namespace
}  // namespace sigsetdb
