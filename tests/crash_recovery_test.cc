// Crash-at-every-I/O recovery harness (DESIGN.md §9).
//
// For each facility configuration, a deterministic insert/delete/batch/
// compact/query/checkpoint workload is first run once against an in-memory
// StorageManager
// whose files are all wrapped in one FaultInjectingPageFile injector, to
// count its total page operations T.  Then, for EVERY k in [0, T] — no
// sampling — a fresh database runs the same workload with a crash scheduled
// at operation k: the k-th and all later page I/Os fail.  The harness then
// disarms the injector ("restarts the machine") and attempts recovery.
//
// The contract under test:
//   - the crash surfaces as a clean Status at the SetIndex/Database API
//     (no abort, no swallowed error),
//   - queries that succeeded before the crash match brute force exactly,
//   - reopening either fails cleanly (e.g. a torn post-checkpoint B-tree
//     split is refused by BTree::ValidateStructure) or recovers the state
//     of the last successful checkpoint,
//   - a recovered index never returns a wrong answer: every successful
//     probe query lies between a lower bound (checkpoint state minus every
//     attempted post-checkpoint delete) and an upper bound (checkpoint
//     state plus attempted post-checkpoint inserts, minus completed
//     deletes),
//   - at k == T (no fault fires; the workload's tail past the final
//     checkpoint contains no page-allocating mutation) recovery must
//     succeed outright.

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/set_index.h"
#include "db/write_batch.h"
#include "json_validate.h"
#include "obj/object.h"
#include "storage/fault_injecting_page_file.h"
#include "storage/storage_manager.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

constexpr size_t kNoStep = static_cast<size_t>(-1);

// Every (config, workload) cell gets an independent seeded stream derived by
// hashing the base seed with the cell's identity.  Sequential literal seeds
// (1001, 2002, ...) fed workload AND probe generation from near-identical
// streams, correlating the fault schedules across configurations; mixing
// decorrelates them, and the seed is logged (SCOPED_TRACE) so any failing
// cell reproduces standalone.
constexpr uint64_t kCrashBaseSeed = 0x5e7acce55ull;

uint64_t MixSeed(uint64_t base, const std::string& config, uint64_t workload) {
  uint64_t h = base;
  for (char c : config) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ull;  // FNV-1a step
  }
  h ^= workload + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;  // splitmix64 finalizer
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

bool Matches(QueryKind kind, const ElementSet& set, const ElementSet& query) {
  StoredObject obj{Oid(), set};
  switch (kind) {
    case QueryKind::kSuperset:
      return SatisfiesSuperset(obj, query);
    case QueryKind::kSubset:
      return SatisfiesSubset(obj, query);
    default:
      return SatisfiesEquals(obj, query);
  }
}

// Mirrors the db layer's fatality rule: these are the statuses that must
// one-shot a flight-recorder postmortem before surfacing at the API.
bool IsFatalCode(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kCorruption ||
         status.code() == StatusCode::kInternal;
}

// The telemetry contract on every crash cell: a fatal status leaves behind
// an in-memory postmortem that round-trips through a validating JSON parser.
void ExpectParseablePostmortem(const std::string& json, const Status& cause) {
  EXPECT_FALSE(json.empty())
      << "fatal status produced no postmortem: " << cause.ToString();
  if (json.empty()) return;
  std::string error;
  EXPECT_TRUE(testjson::IsValidJson(json, &error))
      << "postmortem does not parse: " << error;
}

struct Step {
  enum class Kind { kInsert, kDelete, kCheckpoint, kQuery, kBatch, kCompact };
  Kind kind;
  // kInsert: the set value; kQuery: the query set.
  ElementSet set;
  // kInsert: the insert ordinal; kDelete: ordinal of the victim insert.
  size_t target = 0;
  QueryKind qkind = QueryKind::kSuperset;
  // kBatch: grouped inserts (each carrying its ordinal) and delete victim
  // ordinals, applied through one WriteBatch::ApplyBatch call.
  std::vector<std::pair<size_t, ElementSet>> batch_inserts = {};
  std::vector<size_t> batch_deletes = {};
};

// One facility configuration put through the harness.
struct CrashConfig {
  std::string name;
  SetIndex::Options options;
  int inserts;
  uint64_t v;
  uint64_t dt;
  uint64_t seed;
};

// Builds the deterministic workload: `inserts` inserts with checkpoints at
// 1/3 and 2/3, interleaved deletes and differential queries, and a tail of
// [subset query, final checkpoint, delete, query] so that nothing after the
// final checkpoint allocates pages (recovery at k == T must succeed).
std::vector<Step> MakeWorkload(const CrashConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<Step> steps;
  size_t ordinal = 0;
  const int n = cfg.inserts;
  for (int i = 0; i < n; ++i) {
    Step ins{Step::Kind::kInsert,
             rng.SampleWithoutReplacement(cfg.v, cfg.dt), ordinal++,
             QueryKind::kSuperset};
    NormalizeSet(&ins.set);
    steps.push_back(std::move(ins));
    if (i == n / 4) {
      steps.push_back({Step::Kind::kQuery,
                       rng.SampleWithoutReplacement(cfg.v, 2), 0,
                       QueryKind::kSuperset});
    }
    if (i == n / 3 || i == 2 * n / 3) {
      steps.push_back({Step::Kind::kCheckpoint, {}, 0, QueryKind::kSuperset});
    }
    if (i == n / 2) {
      steps.push_back({Step::Kind::kDelete, {}, 1, QueryKind::kSuperset});
      steps.push_back({Step::Kind::kQuery,
                       rng.SampleWithoutReplacement(cfg.v, 1), 0,
                       QueryKind::kSuperset});
    }
  }
  // Grouped churn through the batch path: delete two earlier survivors and
  // insert three new sets in one ApplyBatch call, then Compact() away the
  // accumulated tombstones.  Compact commits via Checkpoint but allocates
  // new generation files, so it must stay ahead of the allocation-free tail
  // below (recovery at k == T demands the final checkpoint be last).
  Step batch{Step::Kind::kBatch, {}, 0, QueryKind::kSuperset};
  batch.batch_deletes = {3, 4};
  for (int i = 0; i < 3; ++i) {
    ElementSet set = rng.SampleWithoutReplacement(cfg.v, cfg.dt);
    NormalizeSet(&set);
    batch.batch_inserts.emplace_back(ordinal++, std::move(set));
  }
  steps.push_back(std::move(batch));
  steps.push_back({Step::Kind::kQuery, rng.SampleWithoutReplacement(cfg.v, 2),
                   0, QueryKind::kSuperset});
  steps.push_back({Step::Kind::kCompact, {}, 0, QueryKind::kSuperset});
  steps.push_back({Step::Kind::kQuery, rng.SampleWithoutReplacement(cfg.v, 1),
                   0, QueryKind::kSuperset});
  steps.push_back({Step::Kind::kQuery,
                   rng.SampleWithoutReplacement(cfg.v, cfg.v / 2), 0,
                   QueryKind::kSubset});
  steps.push_back({Step::Kind::kCheckpoint, {}, 0, QueryKind::kSuperset});
  steps.push_back({Step::Kind::kDelete, {}, 2, QueryKind::kSuperset});
  steps.push_back({Step::Kind::kQuery, rng.SampleWithoutReplacement(cfg.v, 2),
                   0, QueryKind::kSuperset});
  return steps;
}

struct RunOutcome {
  bool create_failed = false;
  size_t failing_step = kNoStep;
  std::vector<Oid> oids;  // per executed insert ordinal
  bool has_ckpt = false;
  size_t ckpt_step = 0;          // step index of the last successful checkpoint
  uint64_t ckpt_count = 0;       // num_objects() at that checkpoint
  std::vector<size_t> ckpt_live;  // live insert ordinals at that checkpoint
};

std::vector<PlanMode> ForcedModes(const SetIndex::Options& options) {
  std::vector<PlanMode> modes;
  if (options.maintain_ssf) modes.push_back(PlanMode::kForceSsf);
  if (options.maintain_bssf) modes.push_back(PlanMode::kForceBssf);
  if (options.maintain_nix) modes.push_back(PlanMode::kForceNix);
  return modes;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  static void Intercept(StorageManager* storage, FaultInjector* injector) {
    storage->SetInterceptor(
        [injector](std::unique_ptr<PageFile> base) -> std::unique_ptr<
                                                       PageFile> {
          return std::make_unique<FaultInjectingPageFile>(std::move(base),
                                                          injector);
        });
  }

  // Runs the workload until completion or the first error.  Successful
  // queries are differentially checked against the live brute-force state.
  // `expect_oids` (when non-null) asserts OID assignment is deterministic
  // across runs — the property that lets the harness reuse clean-run OIDs.
  static RunOutcome RunWorkload(StorageManager* storage,
                                const CrashConfig& cfg,
                                const std::vector<Step>& steps,
                                const std::vector<Oid>* expect_oids) {
    RunOutcome out;
    auto index_or = SetIndex::Create(storage, "idx", cfg.options);
    if (!index_or.ok()) {
      out.create_failed = true;
      return out;
    }
    SetIndex* index = index_or->get();
    std::vector<PlanMode> modes = ForcedModes(cfg.options);
    std::map<size_t, ElementSet> live;  // insert ordinal -> normalized set
    for (size_t si = 0; si < steps.size(); ++si) {
      const Step& step = steps[si];
      Status status = Status::OK();
      switch (step.kind) {
        case Step::Kind::kInsert: {
          auto oid = index->Insert(step.set);
          if (!oid.ok()) {
            status = oid.status();
            break;
          }
          if (expect_oids != nullptr) {
            EXPECT_EQ(oid->value(), (*expect_oids)[step.target].value());
          }
          out.oids.push_back(*oid);
          live[step.target] = step.set;
          break;
        }
        case Step::Kind::kDelete: {
          status = index->Delete(out.oids[step.target]);
          if (status.ok()) live.erase(step.target);
          break;
        }
        case Step::Kind::kCheckpoint: {
          status = index->Checkpoint();
          if (status.ok()) {
            out.has_ckpt = true;
            out.ckpt_step = si;
            out.ckpt_count = index->num_objects();
            out.ckpt_live.clear();
            for (const auto& [ordinal, set] : live) {
              out.ckpt_live.push_back(ordinal);
            }
          }
          break;
        }
        case Step::Kind::kBatch: {
          WriteBatch batch;
          for (size_t victim : step.batch_deletes) {
            batch.Delete(out.oids[victim]);
          }
          for (const auto& [ordinal, set] : step.batch_inserts) {
            batch.Insert(set);
          }
          auto oids = index->ApplyBatch(batch);
          if (!oids.ok()) {
            status = oids.status();
            break;
          }
          for (size_t victim : step.batch_deletes) live.erase(victim);
          for (size_t i = 0; i < step.batch_inserts.size(); ++i) {
            const auto& [ordinal, set] = step.batch_inserts[i];
            if (expect_oids != nullptr) {
              EXPECT_EQ((*oids)[i].value(), (*expect_oids)[ordinal].value());
            }
            out.oids.push_back((*oids)[i]);
            live[ordinal] = set;
          }
          break;
        }
        case Step::Kind::kCompact: {
          // A successful Compact commits through Checkpoint, so it counts as
          // one for the recovery bounds.
          status = index->Compact();
          if (status.ok()) {
            out.has_ckpt = true;
            out.ckpt_step = si;
            out.ckpt_count = index->num_objects();
            out.ckpt_live.clear();
            for (const auto& [ordinal, set] : live) {
              out.ckpt_live.push_back(ordinal);
            }
          }
          break;
        }
        case Step::Kind::kQuery: {
          for (PlanMode mode : modes) {
            auto result = index->Query(step.qkind, step.set, mode);
            if (!result.ok()) {
              status = result.status();
              break;
            }
            std::vector<uint64_t> got;
            for (Oid oid : result->result.oids) got.push_back(oid.value());
            std::sort(got.begin(), got.end());
            ElementSet query = step.set;
            NormalizeSet(&query);
            std::vector<uint64_t> want;
            for (const auto& [ordinal, set] : live) {
              if (Matches(step.qkind, set, query)) {
                want.push_back(out.oids[ordinal].value());
              }
            }
            std::sort(want.begin(), want.end());
            EXPECT_EQ(got, want)
                << "live query diverged from brute force at step " << si;
          }
          break;
        }
      }
      if (!status.ok()) {
        out.failing_step = si;
        if (cfg.options.enable_telemetry && IsFatalCode(status)) {
          ExpectParseablePostmortem(index->last_postmortem_json(), status);
        }
        break;
      }
    }
    return out;
  }

  // The full harness for one configuration.  Telemetry rides along in every
  // cell: it must not disturb the fault schedule (same T, same OIDs — the
  // page-count differential made bit-exact by telemetry_test), and every
  // fatal failing step must leave a parseable postmortem.
  static void RunConfig(CrashConfig cfg) {
    cfg.options.enable_telemetry = true;
    SCOPED_TRACE(cfg.name + ": seed " + std::to_string(cfg.seed));
    const std::vector<Step> steps = MakeWorkload(cfg);

    // Normalized set per insert ordinal (for recovery bounds).
    std::vector<ElementSet> insert_sets;
    for (const Step& step : steps) {
      if (step.kind == Step::Kind::kInsert) insert_sets.push_back(step.set);
      if (step.kind == Step::Kind::kBatch) {
        for (const auto& [ordinal, set] : step.batch_inserts) {
          insert_sets.push_back(set);
        }
      }
    }

    // Clean run: total op count and the deterministic OID assignment.
    std::vector<Oid> clean_oids;
    uint64_t total_ops = 0;
    {
      FaultInjector injector;
      StorageManager storage;
      Intercept(&storage, &injector);
      RunOutcome clean = RunWorkload(&storage, cfg, steps, nullptr);
      ASSERT_FALSE(clean.create_failed);
      ASSERT_EQ(clean.failing_step, kNoStep);
      ASSERT_TRUE(clean.has_ckpt);
      clean_oids = clean.oids;
      total_ops = injector.ops();
    }
    ASSERT_GT(total_ops, 0u);

    // Deterministic probe queries evaluated after every recovery.
    std::vector<std::pair<QueryKind, ElementSet>> probes;
    {
      Rng rng(cfg.seed + 999);
      probes.emplace_back(QueryKind::kSuperset,
                          rng.SampleWithoutReplacement(cfg.v, 1));
      probes.emplace_back(QueryKind::kSuperset,
                          rng.SampleWithoutReplacement(cfg.v, 2));
      probes.emplace_back(QueryKind::kSubset,
                          rng.SampleWithoutReplacement(cfg.v, cfg.v / 2));
      for (auto& [kind, query] : probes) NormalizeSet(&query);
    }
    const std::vector<PlanMode> modes = ForcedModes(cfg.options);

    for (uint64_t k = 0; k <= total_ops; ++k) {
      SCOPED_TRACE(cfg.name + ": crash at op " + std::to_string(k) + " of " +
                   std::to_string(total_ops));
      FaultInjector injector;
      injector.CrashAt(k);
      StorageManager storage;
      Intercept(&storage, &injector);
      RunOutcome out = RunWorkload(&storage, cfg, steps, &clean_oids);
      if (k < total_ops) {
        // The crash must surface as a clean error somewhere — an uncharged
        // completion would mean a Status was swallowed.
        EXPECT_TRUE(out.create_failed || out.failing_step != kNoStep);
      } else {
        EXPECT_FALSE(out.create_failed);
        EXPECT_EQ(out.failing_step, kNoStep);
      }

      // "Restart": faults stop, the surviving pages are what they are.
      injector.Disarm();
      auto reopened = SetIndex::Open(&storage, "idx", cfg.options);
      if (!out.has_ckpt) {
        // Nothing durable was ever committed; recovery must refuse.
        EXPECT_FALSE(reopened.ok());
        continue;
      }
      if (k == total_ops) {
        // Nothing after the final checkpoint allocates pages, so recovery
        // of a cleanly finished run must succeed.
        ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      }
      if (!reopened.ok()) {
        // A clean refusal (e.g. torn B-tree split detected) is acceptable.
        continue;
      }
      SetIndex* index = reopened->get();
      EXPECT_EQ(index->num_objects(), out.ckpt_count);

      // Post-checkpoint mutations that were attempted (executed, or running
      // when the crash hit).
      std::set<size_t> deletes_attempted;
      std::set<size_t> deletes_executed;
      std::set<size_t> inserts_attempted;
      size_t last_attempted = out.failing_step != kNoStep
                                  ? out.failing_step
                                  : steps.size() - 1;
      for (size_t si = out.ckpt_step + 1; si <= last_attempted; ++si) {
        const Step& step = steps[si];
        if (step.kind == Step::Kind::kDelete) {
          deletes_attempted.insert(step.target);
          if (si != out.failing_step) deletes_executed.insert(step.target);
        } else if (step.kind == Step::Kind::kInsert) {
          inserts_attempted.insert(step.target);
        } else if (step.kind == Step::Kind::kBatch) {
          // A batch that was running when the crash hit may have applied any
          // prefix of its index mutations: its deletes count as attempted
          // but not executed, its inserts as attempted.
          for (size_t victim : step.batch_deletes) {
            deletes_attempted.insert(victim);
            if (si != out.failing_step) deletes_executed.insert(victim);
          }
          for (const auto& [ordinal, set] : step.batch_inserts) {
            inserts_attempted.insert(ordinal);
          }
        }
      }

      for (const auto& [kind, query] : probes) {
        for (PlanMode mode : modes) {
          auto result = index->Query(kind, query, mode);
          if (!result.ok()) {
            // Clean error is acceptable (e.g. a candidate OID whose delete
            // was half-applied resolves to a tombstone).  Wrong answers are
            // not, which the bounds below enforce on the success path.
            continue;
          }
          std::set<uint64_t> lower;
          std::set<uint64_t> upper;
          for (size_t ordinal : out.ckpt_live) {
            if (!Matches(kind, insert_sets[ordinal], query)) continue;
            uint64_t oid = clean_oids[ordinal].value();
            if (deletes_attempted.count(ordinal) == 0) lower.insert(oid);
            if (deletes_executed.count(ordinal) == 0) upper.insert(oid);
          }
          for (size_t ordinal : inserts_attempted) {
            if (Matches(kind, insert_sets[ordinal], query)) {
              upper.insert(clean_oids[ordinal].value());
            }
          }
          std::set<uint64_t> got;
          for (Oid oid : result->result.oids) got.insert(oid.value());
          for (uint64_t oid : lower) {
            EXPECT_TRUE(got.count(oid) != 0)
                << "recovered index lost durable object " << oid;
          }
          for (uint64_t oid : got) {
            EXPECT_TRUE(upper.count(oid) != 0)
                << "recovered index returned impossible object " << oid;
          }
        }
      }
    }
  }
};

TEST_F(CrashRecoveryTest, SsfEveryIoIndex) {
  CrashConfig cfg;
  cfg.name = "ssf";
  cfg.options.maintain_ssf = true;
  cfg.options.maintain_bssf = false;
  cfg.options.maintain_nix = false;
  cfg.options.sig = {64, 2};
  cfg.options.capacity = 128;
  cfg.inserts = 24;
  cfg.v = 48;
  cfg.dt = 6;
  cfg.seed = MixSeed(kCrashBaseSeed, cfg.name, 0);
  RunConfig(cfg);
}

TEST_F(CrashRecoveryTest, BssfEveryIoIndex) {
  CrashConfig cfg;
  cfg.name = "bssf";
  cfg.options.maintain_ssf = false;
  cfg.options.maintain_bssf = true;
  cfg.options.maintain_nix = false;
  cfg.options.sig = {64, 2};
  cfg.options.capacity = 128;
  cfg.inserts = 24;
  cfg.v = 48;
  cfg.dt = 6;
  cfg.seed = MixSeed(kCrashBaseSeed, cfg.name, 0);
  RunConfig(cfg);
}

TEST_F(CrashRecoveryTest, NixEveryIoIndexWithLeafSplits) {
  CrashConfig cfg;
  cfg.name = "nix";
  cfg.options.maintain_ssf = false;
  cfg.options.maintain_bssf = false;
  cfg.options.maintain_nix = true;
  cfg.options.sig = {64, 2};
  cfg.options.capacity = 256;
  cfg.inserts = 60;  // ~160 distinct keys: enough leaf bytes to force splits
  cfg.v = 160;
  cfg.dt = 8;
  cfg.seed = MixSeed(kCrashBaseSeed, cfg.name, 0);
  RunConfig(cfg);

  // The workload must actually exercise the split path, otherwise the
  // torn-split recovery scenarios above were vacuous: rebuild it cleanly
  // and check the tree grew beyond one leaf.
  StorageManager storage;
  std::vector<Step> steps = MakeWorkload(cfg);
  RunOutcome out = RunWorkload(&storage, cfg, steps, nullptr);
  ASSERT_EQ(out.failing_step, kNoStep);
  auto index = SetIndex::Open(&storage, "idx", cfg.options);
  ASSERT_TRUE(index.ok());
  EXPECT_GT((*index)->nix()->tree().leaf_pages(), 1u);
}

TEST_F(CrashRecoveryTest, AllFacilitiesEveryIoIndex) {
  CrashConfig cfg;
  cfg.name = "all";
  cfg.options.maintain_ssf = true;
  cfg.options.maintain_bssf = true;
  cfg.options.maintain_nix = true;
  cfg.options.sig = {64, 2};
  cfg.options.capacity = 128;
  cfg.inserts = 24;
  cfg.v = 48;
  cfg.dt = 6;
  cfg.seed = MixSeed(kCrashBaseSeed, cfg.name, 0);
  RunConfig(cfg);
}

// Database-level spot check: the multi-attribute facade must show the same
// crash discipline — clean errors during the crash, checkpoint-prefix
// recovery or clean refusal afterwards, never a wrong conjunction answer.
TEST_F(CrashRecoveryTest, DatabaseEveryIoIndex) {
  Database::Options options;
  Database::AttributeOptions attr_a;
  attr_a.name = "a";
  attr_a.sig = {64, 2};
  Database::AttributeOptions attr_b;
  attr_b.name = "b";
  attr_b.maintain_bssf = false;  // nix-only second attribute
  attr_b.sig = {64, 2};
  options.attributes = {attr_a, attr_b};
  options.capacity = 128;
  options.enable_telemetry = true;

  constexpr uint64_t kV = 40;
  constexpr uint64_t kDt = 5;
  constexpr int kInserts = 12;

  // Deterministic attribute values; the final checkpoint is followed only
  // by a delete and a query (no page-allocating mutation).
  const uint64_t seed = MixSeed(kCrashBaseSeed, "database", 0);
  SCOPED_TRACE("database: seed " + std::to_string(seed));
  Rng rng(seed);
  std::vector<std::vector<ElementSet>> values;
  for (int i = 0; i < kInserts; ++i) {
    std::vector<ElementSet> v = {rng.SampleWithoutReplacement(kV, kDt),
                                 rng.SampleWithoutReplacement(kV, kDt)};
    NormalizeSet(&v[0]);
    NormalizeSet(&v[1]);
    values.push_back(std::move(v));
  }
  ElementSet probe = rng.SampleWithoutReplacement(kV, 1);
  NormalizeSet(&probe);

  // One step list: insert 0..5, checkpoint, insert 6..11, checkpoint,
  // delete object 1, query.  Returns outcome analogues of RunWorkload.
  struct DbOutcome {
    bool failed = false;       // some call returned an error
    bool has_ckpt = false;
    uint64_t ckpt_count = 0;
    std::vector<size_t> ckpt_live;
    std::set<size_t> post_inserts;
    bool delete_attempted = false;
    bool delete_executed = false;
    std::vector<Oid> oids;
  };
  auto run = [&](StorageManager* storage) {
    DbOutcome out;
    auto db_or = Database::Create(storage, "class", options);
    if (!db_or.ok()) {
      out.failed = true;
      return out;
    }
    Database* db = db_or->get();
    std::set<size_t> live;
    auto fail = [&](const Status& status) {
      if (IsFatalCode(status)) {
        ExpectParseablePostmortem(db->last_postmortem_json(), status);
      }
      out.failed = true;
    };
    auto checkpoint = [&]() {
      Status status = db->Checkpoint();
      if (!status.ok()) {
        fail(status);
        return false;
      }
      out.has_ckpt = true;
      out.ckpt_count = db->num_objects();
      out.ckpt_live.assign(live.begin(), live.end());
      out.post_inserts.clear();
      return true;
    };
    for (int i = 0; i < kInserts; ++i) {
      // Record the attempt before calling: a failing insert may still have
      // persisted partial index entries, so it belongs in the upper bound.
      if (out.has_ckpt) out.post_inserts.insert(i);
      auto oid = db->Insert(values[i]);
      if (!oid.ok()) {
        fail(oid.status());
        return out;
      }
      out.oids.push_back(*oid);
      live.insert(i);
      if (i == kInserts / 2 - 1 || i == kInserts - 1) {
        if (!checkpoint()) return out;
      }
    }
    out.delete_attempted = true;
    Status del_status = db->Delete(out.oids[1]);
    if (!del_status.ok()) {
      fail(del_status);
      return out;
    }
    out.delete_executed = true;
    auto result = db->Query({{"a", QueryKind::kSuperset, probe}});
    if (!result.ok()) {
      fail(result.status());
      return out;
    }
    return out;
  };

  // Clean run for T and the deterministic OIDs.
  uint64_t total_ops = 0;
  std::vector<Oid> clean_oids;
  {
    FaultInjector injector;
    StorageManager storage;
    Intercept(&storage, &injector);
    DbOutcome clean = run(&storage);
    ASSERT_FALSE(clean.failed);
    clean_oids = clean.oids;
    total_ops = injector.ops();
  }

  for (uint64_t k = 0; k <= total_ops; ++k) {
    SCOPED_TRACE("database: crash at op " + std::to_string(k) + " of " +
                 std::to_string(total_ops));
    FaultInjector injector;
    injector.CrashAt(k);
    StorageManager storage;
    Intercept(&storage, &injector);
    DbOutcome out = run(&storage);
    EXPECT_EQ(out.failed, k < total_ops);

    injector.Disarm();
    auto reopened = Database::Open(&storage, "class", options);
    if (!out.has_ckpt) {
      EXPECT_FALSE(reopened.ok());
      continue;
    }
    if (k == total_ops) {
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    }
    if (!reopened.ok()) continue;
    EXPECT_EQ((*reopened)->num_objects(), out.ckpt_count);

    auto result = (*reopened)->Query({{"a", QueryKind::kSuperset, probe}});
    if (!result.ok()) continue;  // clean error acceptable
    std::set<uint64_t> got;
    for (Oid oid : result->oids) got.insert(oid.value());
    for (size_t i : out.ckpt_live) {
      if (!Matches(QueryKind::kSuperset, values[i][0], probe)) continue;
      uint64_t oid = clean_oids[i].value();
      bool deletable = (i == 1) && out.delete_attempted;
      bool deleted = (i == 1) && out.delete_executed;
      if (!deletable) {
        EXPECT_TRUE(got.count(oid) != 0)
            << "recovered database lost durable object " << oid;
      }
      if (deleted) {
        EXPECT_TRUE(got.count(oid) == 0)
            << "recovered database returned deleted object " << oid;
      }
    }
    for (uint64_t oid : got) {
      bool possible = false;
      for (size_t i = 0; i < clean_oids.size(); ++i) {
        if (clean_oids[i].value() != oid) continue;
        bool in_ckpt = std::find(out.ckpt_live.begin(), out.ckpt_live.end(),
                                 i) != out.ckpt_live.end();
        bool post_insert = out.post_inserts.count(i) != 0;
        bool was_deleted = (i == 1) && out.delete_executed;
        possible = (in_ckpt || post_insert) && !was_deleted &&
                   Matches(QueryKind::kSuperset, values[i][0], probe);
      }
      EXPECT_TRUE(possible)
          << "recovered database returned impossible object " << oid;
    }
  }
}

// ---------------------------------------------------------------------------
// WAL crash matrix: with enable_wal, the recovery contract hardens from
// "consistent checkpoint prefix" to "NO ACKNOWLEDGED WRITE LOST, no phantom
// write invented".  For every facility configuration × workload shape, the
// harness crashes at every I/O index, keeps an in-test ack ledger (a write
// is acked iff its call returned OK — i.e. its log record committed), and
// asserts after reopen:
//   - reopen always succeeds once Create's initial checkpoint is durable
//     (no clean-refusal escape hatch: replay + facility rebuild must cope
//     with any torn facility state),
//   - every acked insert not acked-deleted is Get-able with exactly its
//     logged value; every acked delete stays deleted,
//   - the one in-flight (unacknowledged) operation is all-or-nothing —
//     batches atomically so,
//   - forced-facility probe queries equal brute force over the exact
//     recovered live set (no phantoms, no losses, in any facility),
//   - the recovered index accepts new writes and a checkpoint.
// ---------------------------------------------------------------------------

enum class WalWorkloadKind { kSingleton = 0, kBatch = 1, kCompact = 2 };

const char* WalWorkloadName(WalWorkloadKind kind) {
  switch (kind) {
    case WalWorkloadKind::kSingleton:
      return "singleton";
    case WalWorkloadKind::kBatch:
      return "batch";
    case WalWorkloadKind::kCompact:
      return "compact";
  }
  return "?";
}

struct WalStep {
  enum class Kind { kInsert, kDelete, kBatch, kCheckpoint, kCompact };
  Kind kind;
  size_t ordinal = 0;             // kInsert
  size_t victim = 0;              // kDelete: ordinal of the victim insert
  std::vector<size_t> batch_ins;  // kBatch: insert ordinals
  std::vector<size_t> batch_del;  // kBatch: delete victim ordinals
};

// The step shapes are fixed per workload kind (values are drawn by the
// caller); every shape ends with mutations PAST the last checkpoint, so at
// k == T (no fault at all) correctness still rides entirely on log replay.
std::vector<WalStep> MakeWalSteps(WalWorkloadKind kind) {
  using K = WalStep::Kind;
  std::vector<WalStep> steps;
  auto ins = [&](size_t o) { steps.push_back({K::kInsert, o, 0, {}, {}}); };
  auto del = [&](size_t v) { steps.push_back({K::kDelete, 0, v, {}, {}}); };
  switch (kind) {
    case WalWorkloadKind::kSingleton:
      for (size_t o = 0; o < 4; ++o) ins(o);
      steps.push_back({K::kCheckpoint, 0, 0, {}, {}});
      for (size_t o = 4; o < 7; ++o) ins(o);
      del(1);
      steps.push_back({K::kCheckpoint, 0, 0, {}, {}});
      for (size_t o = 7; o < 10; ++o) ins(o);
      del(5);
      break;
    case WalWorkloadKind::kBatch:
      for (size_t o = 0; o < 3; ++o) ins(o);
      steps.push_back({K::kCheckpoint, 0, 0, {}, {}});
      steps.push_back({K::kBatch, 0, 0, {3, 4, 5}, {0}});
      steps.push_back({K::kCheckpoint, 0, 0, {}, {}});
      steps.push_back({K::kBatch, 0, 0, {6, 7}, {2, 4}});
      del(3);
      break;
    case WalWorkloadKind::kCompact:
      for (size_t o = 0; o < 6; ++o) ins(o);
      del(1);
      del(3);
      steps.push_back({K::kCheckpoint, 0, 0, {}, {}});
      steps.push_back({K::kCompact, 0, 0, {}, {}});
      for (size_t o = 6; o < 9; ++o) ins(o);
      del(6);
      break;
  }
  return steps;
}

size_t WalOrdinalCount(const std::vector<WalStep>& steps) {
  size_t n = 0;
  for (const WalStep& step : steps) {
    if (step.kind == WalStep::Kind::kInsert) n = std::max(n, step.ordinal + 1);
    for (size_t o : step.batch_ins) n = std::max(n, o + 1);
  }
  return n;
}

// The ack ledger one crash run produces.  An operation is ACKED iff its
// call returned OK; the operation running when the crash hit (if any) is
// IN-FLIGHT and may land either way — but atomically.
struct WalLedger {
  bool create_failed = false;
  bool finished = false;
  std::map<size_t, Oid> oids;  // acked insert ordinal -> assigned OID
  std::set<size_t> acked_ins;
  std::set<size_t> acked_del;
  std::vector<size_t> inflight_ins;
  std::vector<size_t> inflight_del;
};

WalLedger RunWalWorkload(StorageManager* storage,
                         const SetIndex::Options& options,
                         const std::vector<WalStep>& steps,
                         const std::vector<ElementSet>& insert_sets,
                         const std::map<size_t, Oid>* expect_oids) {
  WalLedger led;
  auto index_or = SetIndex::Create(storage, "walidx", options);
  if (!index_or.ok()) {
    led.create_failed = true;
    return led;
  }
  SetIndex* index = index_or->get();
  for (const WalStep& step : steps) {
    Status status = Status::OK();
    switch (step.kind) {
      case WalStep::Kind::kInsert: {
        auto oid = index->Insert(insert_sets[step.ordinal]);
        if (!oid.ok()) {
          led.inflight_ins.push_back(step.ordinal);
          status = oid.status();
          break;
        }
        if (expect_oids != nullptr) {
          EXPECT_EQ(oid->value(), expect_oids->at(step.ordinal).value())
              << "OID assignment diverged at ordinal " << step.ordinal;
        }
        led.oids[step.ordinal] = *oid;
        led.acked_ins.insert(step.ordinal);
        break;
      }
      case WalStep::Kind::kDelete: {
        status = index->Delete(led.oids.at(step.victim));
        if (status.ok()) {
          led.acked_del.insert(step.victim);
        } else {
          led.inflight_del.push_back(step.victim);
        }
        break;
      }
      case WalStep::Kind::kBatch: {
        WriteBatch batch;
        for (size_t victim : step.batch_del) batch.Delete(led.oids.at(victim));
        for (size_t o : step.batch_ins) batch.Insert(insert_sets[o]);
        auto oids = index->ApplyBatch(batch);
        if (!oids.ok()) {
          led.inflight_ins = step.batch_ins;
          led.inflight_del = step.batch_del;
          status = oids.status();
          break;
        }
        for (size_t i = 0; i < step.batch_ins.size(); ++i) {
          if (expect_oids != nullptr) {
            EXPECT_EQ((*oids)[i].value(),
                      expect_oids->at(step.batch_ins[i]).value());
          }
          led.oids[step.batch_ins[i]] = (*oids)[i];
          led.acked_ins.insert(step.batch_ins[i]);
        }
        for (size_t victim : step.batch_del) led.acked_del.insert(victim);
        break;
      }
      case WalStep::Kind::kCheckpoint:
        status = index->Checkpoint();
        break;
      case WalStep::Kind::kCompact:
        status = index->Compact();
        break;
    }
    if (!status.ok()) {
      if (options.enable_telemetry && IsFatalCode(status)) {
        ExpectParseablePostmortem(index->last_postmortem_json(), status);
      }
      return led;
    }
  }
  led.finished = true;
  return led;
}

class WalCrashMatrixTest : public ::testing::Test {
 protected:
  static void Intercept(StorageManager* storage, FaultInjector* injector) {
    storage->SetInterceptor(
        [injector](
            std::unique_ptr<PageFile> base) -> std::unique_ptr<PageFile> {
          return std::make_unique<FaultInjectingPageFile>(std::move(base),
                                                          injector);
        });
  }

  static void VerifyWalRecovery(SetIndex* index,
                                const SetIndex::Options& options,
                                const std::vector<ElementSet>& insert_sets,
                                const WalLedger& led,
                                const std::map<size_t, Oid>& clean_oids,
                                uint64_t v, uint64_t seed) {
    auto oid_of = [&](size_t o) {
      auto it = led.oids.find(o);
      return it != led.oids.end() ? it->second : clean_oids.at(o);
    };
    const std::set<size_t> inflight_ins(led.inflight_ins.begin(),
                                        led.inflight_ins.end());
    const std::set<size_t> inflight_del(led.inflight_del.begin(),
                                        led.inflight_del.end());
    std::set<size_t> attempted = led.acked_ins;
    attempted.insert(inflight_ins.begin(), inflight_ins.end());

    // Classify every attempted insert ordinal by Get at its (predicted or
    // assigned — identical) OID.  `group_applied` collects the in-flight
    // operation's members: 1 = that member took effect.
    std::map<size_t, ElementSet> recovered_live;
    std::vector<int> group_applied;
    for (size_t o : attempted) {
      auto got = index->Get(oid_of(o));
      const bool present = got.ok();
      if (present) {
        EXPECT_EQ(got->set_value, insert_sets[o])
            << "ordinal " << o << " recovered with a different value";
      }
      if (led.acked_del.count(o) != 0) {
        EXPECT_FALSE(present)
            << "acknowledged delete of ordinal " << o << " resurfaced";
      } else if (inflight_del.count(o) != 0) {
        group_applied.push_back(present ? 0 : 1);
        if (present) recovered_live[o] = insert_sets[o];
      } else if (inflight_ins.count(o) != 0) {
        group_applied.push_back(present ? 1 : 0);
        if (present) recovered_live[o] = insert_sets[o];
      } else {
        EXPECT_TRUE(present)
            << "ACKED insert ordinal " << o << " lost by recovery";
        if (present) recovered_live[o] = insert_sets[o];
      }
    }
    for (size_t i = 1; i < group_applied.size(); ++i) {
      EXPECT_EQ(group_applied[i], group_applied[0])
          << "in-flight operation applied non-atomically";
    }

    // Differential probes: every maintained facility must answer exactly
    // brute force over the recovered live set — no phantoms, no losses.
    Rng rng(MixSeed(seed, "probes", 7));
    std::vector<std::pair<QueryKind, ElementSet>> probes;
    probes.emplace_back(QueryKind::kSuperset,
                        rng.SampleWithoutReplacement(v, 1));
    probes.emplace_back(QueryKind::kSuperset,
                        rng.SampleWithoutReplacement(v, 2));
    probes.emplace_back(QueryKind::kSubset,
                        rng.SampleWithoutReplacement(v, v / 2));
    for (auto& [kind, query] : probes) NormalizeSet(&query);
    for (const auto& [kind, query] : probes) {
      for (PlanMode mode : ForcedModes(options)) {
        auto result = index->Query(kind, query, mode);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        std::vector<uint64_t> got;
        for (Oid oid : result->result.oids) got.push_back(oid.value());
        std::sort(got.begin(), got.end());
        std::vector<uint64_t> want;
        for (const auto& [o, set] : recovered_live) {
          if (Matches(kind, set, query)) want.push_back(oid_of(o).value());
        }
        std::sort(want.begin(), want.end());
        EXPECT_EQ(got, want) << "recovered facility diverged from brute force";
      }
    }

    // The recovered index must keep working: a fresh insert, its read-back,
    // and a checkpoint (which truncates the replayed log) all succeed.
    ElementSet extra = rng.SampleWithoutReplacement(v, 3);
    NormalizeSet(&extra);
    auto extra_oid = index->Insert(extra);
    ASSERT_TRUE(extra_oid.ok()) << extra_oid.status().ToString();
    auto back = index->Get(*extra_oid);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->set_value, extra);
    EXPECT_TRUE(index->Checkpoint().ok());
  }

  static void RunWalCell(const std::string& config, SetIndex::Options options,
                         WalWorkloadKind kind) {
    options.enable_wal = true;
    constexpr uint64_t kV = 48;
    constexpr uint64_t kDt = 5;
    const uint64_t seed = MixSeed(kCrashBaseSeed, config + "/wal",
                                  static_cast<uint64_t>(kind) + 1);
    SCOPED_TRACE(config + "/" + WalWorkloadName(kind) + ": seed " +
                 std::to_string(seed));
    const std::vector<WalStep> steps = MakeWalSteps(kind);
    std::vector<ElementSet> insert_sets;
    {
      Rng rng(seed);
      for (size_t o = 0; o < WalOrdinalCount(steps); ++o) {
        ElementSet set = rng.SampleWithoutReplacement(kV, kDt);
        NormalizeSet(&set);
        insert_sets.push_back(std::move(set));
      }
    }

    // Clean run: total op count T and the deterministic OID per ordinal.
    std::map<size_t, Oid> clean_oids;
    uint64_t total_ops = 0;
    {
      FaultInjector injector;
      StorageManager storage;
      Intercept(&storage, &injector);
      WalLedger clean =
          RunWalWorkload(&storage, options, steps, insert_sets, nullptr);
      ASSERT_TRUE(clean.finished);
      clean_oids = clean.oids;
      total_ops = injector.ops();
    }
    ASSERT_GT(total_ops, 0u);

    for (uint64_t k = 0; k <= total_ops; ++k) {
      SCOPED_TRACE("crash at op " + std::to_string(k) + " of " +
                   std::to_string(total_ops));
      FaultInjector injector;
      injector.CrashAt(k);
      StorageManager storage;
      Intercept(&storage, &injector);
      WalLedger led =
          RunWalWorkload(&storage, options, steps, insert_sets, &clean_oids);
      if (k < total_ops) {
        EXPECT_FALSE(led.finished) << "crash did not surface as an error";
      }

      injector.Disarm();
      auto reopened = SetIndex::Open(&storage, "walidx", options);
      if (led.create_failed) {
        // Crash inside Create's initial checkpoint: nothing was ever
        // acknowledged.  A clean refusal (no durable manifest yet) is fine;
        // a successful open is verified like any other (empty ledger).
        if (!reopened.ok()) continue;
      } else {
        // The WAL guarantee under test: once Create has committed its
        // initial checkpoint, recovery can NEVER fail — every acknowledged
        // write replays from the log, however torn the facility files are.
        ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      }
      VerifyWalRecovery(reopened->get(), options, insert_sets, led,
                        clean_oids, kV, seed);
    }
  }

  static SetIndex::Options FacilityOptions(bool ssf, bool bssf, bool nix) {
    SetIndex::Options options;
    options.maintain_ssf = ssf;
    options.maintain_bssf = bssf;
    options.maintain_nix = nix;
    options.sig = {64, 2};
    options.capacity = 128;
    options.enable_telemetry = true;  // every WAL cell checks postmortems too
    return options;
  }
};

TEST_F(WalCrashMatrixTest, SsfSingleton) {
  RunWalCell("ssf", FacilityOptions(true, false, false),
             WalWorkloadKind::kSingleton);
}
TEST_F(WalCrashMatrixTest, SsfBatch) {
  RunWalCell("ssf", FacilityOptions(true, false, false),
             WalWorkloadKind::kBatch);
}
TEST_F(WalCrashMatrixTest, SsfCompact) {
  RunWalCell("ssf", FacilityOptions(true, false, false),
             WalWorkloadKind::kCompact);
}
TEST_F(WalCrashMatrixTest, BssfSingleton) {
  RunWalCell("bssf", FacilityOptions(false, true, false),
             WalWorkloadKind::kSingleton);
}
TEST_F(WalCrashMatrixTest, BssfBatch) {
  RunWalCell("bssf", FacilityOptions(false, true, false),
             WalWorkloadKind::kBatch);
}
TEST_F(WalCrashMatrixTest, BssfCompact) {
  RunWalCell("bssf", FacilityOptions(false, true, false),
             WalWorkloadKind::kCompact);
}
TEST_F(WalCrashMatrixTest, NixSingleton) {
  RunWalCell("nix", FacilityOptions(false, false, true),
             WalWorkloadKind::kSingleton);
}
TEST_F(WalCrashMatrixTest, NixBatch) {
  RunWalCell("nix", FacilityOptions(false, false, true),
             WalWorkloadKind::kBatch);
}
TEST_F(WalCrashMatrixTest, NixCompact) {
  RunWalCell("nix", FacilityOptions(false, false, true),
             WalWorkloadKind::kCompact);
}
TEST_F(WalCrashMatrixTest, AllSingleton) {
  RunWalCell("all", FacilityOptions(true, true, true),
             WalWorkloadKind::kSingleton);
}
TEST_F(WalCrashMatrixTest, AllBatch) {
  RunWalCell("all", FacilityOptions(true, true, true),
             WalWorkloadKind::kBatch);
}
TEST_F(WalCrashMatrixTest, AllCompact) {
  RunWalCell("all", FacilityOptions(true, true, true),
             WalWorkloadKind::kCompact);
}

// The multi-attribute Database facade runs the same matrix: two attributes
// (bssf+nix and nix-only), ack ledger, crash at every index, exact replay.
class WalDatabaseMatrixTest : public WalCrashMatrixTest {
 protected:
  static Database::Options DbOptions() {
    Database::Options options;
    Database::AttributeOptions attr_a;
    attr_a.name = "a";
    attr_a.sig = {64, 2};
    Database::AttributeOptions attr_b;
    attr_b.name = "b";
    attr_b.maintain_bssf = false;  // nix-only second attribute
    attr_b.sig = {64, 2};
    options.attributes = {attr_a, attr_b};
    options.capacity = 128;
    options.enable_wal = true;
    options.enable_telemetry = true;
    return options;
  }

  static WalLedger RunDbWorkload(
      StorageManager* storage, const Database::Options& options,
      const std::vector<WalStep>& steps,
      const std::vector<std::vector<ElementSet>>& values,
      const std::map<size_t, Oid>* expect_oids) {
    WalLedger led;
    auto db_or = Database::Create(storage, "walclass", options);
    if (!db_or.ok()) {
      led.create_failed = true;
      return led;
    }
    Database* db = db_or->get();
    for (const WalStep& step : steps) {
      Status status = Status::OK();
      switch (step.kind) {
        case WalStep::Kind::kInsert: {
          auto oid = db->Insert(values[step.ordinal]);
          if (!oid.ok()) {
            led.inflight_ins.push_back(step.ordinal);
            status = oid.status();
            break;
          }
          if (expect_oids != nullptr) {
            EXPECT_EQ(oid->value(), expect_oids->at(step.ordinal).value());
          }
          led.oids[step.ordinal] = *oid;
          led.acked_ins.insert(step.ordinal);
          break;
        }
        case WalStep::Kind::kDelete: {
          status = db->Delete(led.oids.at(step.victim));
          if (status.ok()) {
            led.acked_del.insert(step.victim);
          } else {
            led.inflight_del.push_back(step.victim);
          }
          break;
        }
        case WalStep::Kind::kBatch: {
          MultiWriteBatch batch;
          for (size_t victim : step.batch_del) {
            batch.Delete(led.oids.at(victim));
          }
          for (size_t o : step.batch_ins) batch.Insert(values[o]);
          auto oids = db->ApplyBatch(batch);
          if (!oids.ok()) {
            led.inflight_ins = step.batch_ins;
            led.inflight_del = step.batch_del;
            status = oids.status();
            break;
          }
          for (size_t i = 0; i < step.batch_ins.size(); ++i) {
            if (expect_oids != nullptr) {
              EXPECT_EQ((*oids)[i].value(),
                        expect_oids->at(step.batch_ins[i]).value());
            }
            led.oids[step.batch_ins[i]] = (*oids)[i];
            led.acked_ins.insert(step.batch_ins[i]);
          }
          for (size_t victim : step.batch_del) led.acked_del.insert(victim);
          break;
        }
        case WalStep::Kind::kCheckpoint:
          status = db->Checkpoint();
          break;
        case WalStep::Kind::kCompact:
          status = db->Compact();
          break;
      }
      if (!status.ok()) {
        if (options.enable_telemetry && IsFatalCode(status)) {
          ExpectParseablePostmortem(db->last_postmortem_json(), status);
        }
        return led;
      }
    }
    led.finished = true;
    return led;
  }

  static void RunDbCell(WalWorkloadKind kind) {
    const Database::Options options = DbOptions();
    constexpr uint64_t kV = 40;
    constexpr uint64_t kDt = 5;
    const uint64_t seed = MixSeed(kCrashBaseSeed, "database/wal",
                                  static_cast<uint64_t>(kind) + 1);
    SCOPED_TRACE(std::string("database/") + WalWorkloadName(kind) +
                 ": seed " + std::to_string(seed));
    const std::vector<WalStep> steps = MakeWalSteps(kind);
    std::vector<std::vector<ElementSet>> values;
    {
      Rng rng(seed);
      for (size_t o = 0; o < WalOrdinalCount(steps); ++o) {
        std::vector<ElementSet> v = {rng.SampleWithoutReplacement(kV, kDt),
                                     rng.SampleWithoutReplacement(kV, kDt)};
        NormalizeSet(&v[0]);
        NormalizeSet(&v[1]);
        values.push_back(std::move(v));
      }
    }

    std::map<size_t, Oid> clean_oids;
    uint64_t total_ops = 0;
    {
      FaultInjector injector;
      StorageManager storage;
      Intercept(&storage, &injector);
      WalLedger clean =
          RunDbWorkload(&storage, options, steps, values, nullptr);
      ASSERT_TRUE(clean.finished);
      clean_oids = clean.oids;
      total_ops = injector.ops();
    }
    ASSERT_GT(total_ops, 0u);

    for (uint64_t k = 0; k <= total_ops; ++k) {
      SCOPED_TRACE("crash at op " + std::to_string(k) + " of " +
                   std::to_string(total_ops));
      FaultInjector injector;
      injector.CrashAt(k);
      StorageManager storage;
      Intercept(&storage, &injector);
      WalLedger led =
          RunDbWorkload(&storage, options, steps, values, &clean_oids);
      if (k < total_ops) {
        EXPECT_FALSE(led.finished) << "crash did not surface as an error";
      }

      injector.Disarm();
      auto reopened = Database::Open(&storage, "walclass", options);
      if (led.create_failed) {
        if (!reopened.ok()) continue;
      } else {
        ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      }
      Database* db = reopened->get();

      auto oid_of = [&](size_t o) {
        auto it = led.oids.find(o);
        return it != led.oids.end() ? it->second : clean_oids.at(o);
      };
      const std::set<size_t> inflight_ins(led.inflight_ins.begin(),
                                          led.inflight_ins.end());
      const std::set<size_t> inflight_del(led.inflight_del.begin(),
                                          led.inflight_del.end());
      std::set<size_t> attempted = led.acked_ins;
      attempted.insert(inflight_ins.begin(), inflight_ins.end());

      std::map<size_t, std::vector<ElementSet>> recovered_live;
      std::vector<int> group_applied;
      for (size_t o : attempted) {
        auto got = db->Get(oid_of(o));
        const bool present = got.ok();
        if (present) {
          EXPECT_EQ(got->attrs, values[o])
              << "ordinal " << o << " recovered with a different value";
        }
        if (led.acked_del.count(o) != 0) {
          EXPECT_FALSE(present)
              << "acknowledged delete of ordinal " << o << " resurfaced";
        } else if (inflight_del.count(o) != 0) {
          group_applied.push_back(present ? 0 : 1);
          if (present) recovered_live[o] = values[o];
        } else if (inflight_ins.count(o) != 0) {
          group_applied.push_back(present ? 1 : 0);
          if (present) recovered_live[o] = values[o];
        } else {
          EXPECT_TRUE(present)
              << "ACKED insert ordinal " << o << " lost by recovery";
          if (present) recovered_live[o] = values[o];
        }
      }
      for (size_t i = 1; i < group_applied.size(); ++i) {
        EXPECT_EQ(group_applied[i], group_applied[0])
            << "in-flight operation applied non-atomically";
      }

      // Probes per attribute plus a conjunction, each exactly brute force.
      Rng rng(MixSeed(seed, "probes", 7));
      ElementSet probe_a = rng.SampleWithoutReplacement(kV, 1);
      ElementSet probe_b = rng.SampleWithoutReplacement(kV, 1);
      NormalizeSet(&probe_a);
      NormalizeSet(&probe_b);
      struct DbProbe {
        std::vector<SetPredicate> preds;
        std::vector<std::pair<size_t, ElementSet>> checks;  // attr -> query
      };
      std::vector<DbProbe> dbprobes = {
          {{{"a", QueryKind::kSuperset, probe_a}}, {{0, probe_a}}},
          {{{"b", QueryKind::kSuperset, probe_b}}, {{1, probe_b}}},
          {{{"a", QueryKind::kSuperset, probe_a},
            {"b", QueryKind::kSuperset, probe_b}},
           {{0, probe_a}, {1, probe_b}}},
      };
      for (const DbProbe& probe : dbprobes) {
        auto result = db->Query(probe.preds);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        std::vector<uint64_t> got;
        for (Oid oid : result->oids) got.push_back(oid.value());
        std::sort(got.begin(), got.end());
        std::vector<uint64_t> want;
        for (const auto& [o, attrs] : recovered_live) {
          bool all = true;
          for (const auto& [attr, query] : probe.checks) {
            if (!Matches(QueryKind::kSuperset, attrs[attr], query)) {
              all = false;
            }
          }
          if (all) want.push_back(oid_of(o).value());
        }
        std::sort(want.begin(), want.end());
        EXPECT_EQ(got, want)
            << "recovered database diverged from brute force";
      }

      // Writability after recovery.
      std::vector<ElementSet> extra = {rng.SampleWithoutReplacement(kV, 3),
                                       rng.SampleWithoutReplacement(kV, 3)};
      NormalizeSet(&extra[0]);
      NormalizeSet(&extra[1]);
      auto extra_oid = db->Insert(extra);
      ASSERT_TRUE(extra_oid.ok()) << extra_oid.status().ToString();
      auto back = db->Get(*extra_oid);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(back->attrs, extra);
      EXPECT_TRUE(db->Checkpoint().ok());
    }
  }
};

TEST_F(WalDatabaseMatrixTest, DatabaseSingleton) {
  RunDbCell(WalWorkloadKind::kSingleton);
}
TEST_F(WalDatabaseMatrixTest, DatabaseBatch) {
  RunDbCell(WalWorkloadKind::kBatch);
}
TEST_F(WalDatabaseMatrixTest, DatabaseCompact) {
  RunDbCell(WalWorkloadKind::kCompact);
}

}  // namespace
}  // namespace sigsetdb
