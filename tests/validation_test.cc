// Executable-vs-model validation (DESIGN.md §5): the measured page-access
#include <cmath>
// counts of the real SSF/BSSF/NIX implementations must match the analytical
// cost model at a reduced scale.  This is the evidence that the reproduced
// formulas describe the reproduced system.

#include <numeric>

#include <gtest/gtest.h>

#include "model/actual_drops.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "model/false_drop.h"
#include "query/executor.h"
#include "test_db.h"

namespace sigsetdb {
namespace {

class ValidationTest : public ::testing::Test {
 protected:
  static constexpr int64_t kN = 2000;
  static constexpr int64_t kV = 500;
  static constexpr int64_t kDt = 8;

  ValidationTest() : db_(MakeOptions()) {
    model_db_.n = kN;
    model_db_.v = kV;
  }

  static TestDatabase::Options MakeOptions() {
    TestDatabase::Options options;
    options.n = kN;
    options.v = kV;
    options.dt = kDt;
    options.sig = {250, 2};
    options.seed = 4242;
    return options;
  }

  // Runs `trials` random Dq-element queries of `kind` through `facility`
  // and returns the mean measured page accesses per query (all files).
  double MeasureMeanCost(SetAccessFacility* facility, QueryKind kind,
                         int64_t dq, int trials, uint64_t seed) {
    Rng rng(seed);
    uint64_t total = 0;
    for (int t = 0; t < trials; ++t) {
      ElementSet query = rng.SampleWithoutReplacement(
          static_cast<uint64_t>(kV), static_cast<uint64_t>(dq));
      db_.storage().ResetStats();
      auto result = ExecuteSetQuery(facility, db_.store(), kind, query);
      EXPECT_TRUE(result.ok());
      total += db_.storage().TotalStats().total();
    }
    return static_cast<double>(total) / trials;
  }

  TestDatabase db_;
  DatabaseParams model_db_;
  SignatureParams model_sig_{250, 2};
  NixParams model_nix_;
};

TEST_F(ValidationTest, SsfStorageMatchesModel) {
  EXPECT_EQ(db_.ssf().SignaturePages(),
            static_cast<uint64_t>(SsfSignaturePages(model_db_, model_sig_)));
  EXPECT_EQ(db_.ssf().StoragePages(),
            static_cast<uint64_t>(SsfStorageCost(model_db_, model_sig_)));
}

TEST_F(ValidationTest, BssfStorageMatchesModel) {
  EXPECT_EQ(db_.bssf().SlicePages(),
            static_cast<uint64_t>(BssfSlicePages(model_db_) * model_sig_.f));
  EXPECT_EQ(db_.bssf().StoragePages(),
            static_cast<uint64_t>(BssfStorageCost(model_db_, model_sig_)));
}

TEST_F(ValidationTest, SsfSupersetRetrievalMatchesModel) {
  double measured =
      MeasureMeanCost(&db_.ssf(), QueryKind::kSuperset, 2, 30, 1);
  double model =
      SsfRetrievalCost(model_db_, model_sig_, kDt, 2, QueryKind::kSuperset);
  EXPECT_NEAR(measured, model, 0.15 * model + 1.0);
}

TEST_F(ValidationTest, BssfSupersetRetrievalMatchesModel) {
  double measured =
      MeasureMeanCost(&db_.bssf(), QueryKind::kSuperset, 2, 30, 2);
  double model = BssfRetrievalSuperset(model_db_, model_sig_, kDt, 2);
  EXPECT_NEAR(measured, model, 0.25 * model + 1.0);
}

TEST_F(ValidationTest, BssfSubsetRetrievalMatchesModel) {
  double measured = MeasureMeanCost(&db_.bssf(), QueryKind::kSubset, 60, 10, 3);
  double model = BssfRetrievalSubset(model_db_, model_sig_, kDt, 60);
  EXPECT_NEAR(measured, model, 0.2 * model + 2.0);
}

TEST_F(ValidationTest, NixSupersetRetrievalMatchesModel) {
  // The empirical tree's rc can differ from the paper-parameter formula (it
  // depends on the actual height), so compare against rc measured + A.
  int64_t rc = db_.nix().tree().height() + 1;
  double measured = MeasureMeanCost(&db_.nix(), QueryKind::kSuperset, 2, 30, 4);
  double model = static_cast<double>(rc) * 2.0 +
                 ActualDropsSuperset(model_db_, kDt, 2);
  EXPECT_NEAR(measured, model, 0.15 * model + 1.0);
}

TEST_F(ValidationTest, NixSubsetRetrievalMatchesModel) {
  int64_t rc = db_.nix().tree().height() + 1;
  int64_t dq = 40;
  double measured =
      MeasureMeanCost(&db_.nix(), QueryKind::kSubset, dq, 10, 5);
  double model = static_cast<double>(rc * dq) +
                 NixSubsetFailingCandidates(model_db_, kDt, dq) +
                 ActualDropsSubset(model_db_, kDt, dq);
  EXPECT_NEAR(measured, model, 0.15 * model + 2.0);
}

TEST_F(ValidationTest, SsfScanReadsExactlySignaturePages) {
  Rng rng(6);
  ElementSet query = rng.SampleWithoutReplacement(kV, 2);
  auto sig_file = db_.storage().Open("ssf.sig");
  ASSERT_TRUE(sig_file.ok());
  (*sig_file)->stats().Reset();
  ASSERT_TRUE(db_.ssf().Candidates(QueryKind::kSuperset, query).ok());
  EXPECT_EQ((*sig_file)->stats().page_reads, db_.ssf().SignaturePages());
}

TEST_F(ValidationTest, BssfSupersetSliceReadsEqualQueryWeight) {
  Rng rng(7);
  for (int64_t dq : {1, 2, 5}) {
    ElementSet query = rng.SampleWithoutReplacement(
        kV, static_cast<uint64_t>(dq));
    BitVector query_sig = MakeSetSignature(query, db_.bssf().config());
    auto slice_file = db_.storage().Open("bssf.slices");
    ASSERT_TRUE(slice_file.ok());
    (*slice_file)->stats().Reset();
    ASSERT_TRUE(db_.bssf().SupersetCandidateSlots(query_sig).ok());
    EXPECT_EQ((*slice_file)->stats().page_reads, query_sig.Count());
  }
}

TEST_F(ValidationTest, BssfSubsetSliceReadsEqualZeroWeight) {
  Rng rng(8);
  ElementSet query = rng.SampleWithoutReplacement(kV, 50);
  BitVector query_sig = MakeSetSignature(query, db_.bssf().config());
  auto slice_file = db_.storage().Open("bssf.slices");
  ASSERT_TRUE(slice_file.ok());
  (*slice_file)->stats().Reset();
  ASSERT_TRUE(db_.bssf().SubsetCandidateSlots(query_sig).ok());
  EXPECT_EQ((*slice_file)->stats().page_reads,
            db_.bssf().config().f - query_sig.Count());
}

TEST_F(ValidationTest, NixLookupReadsEqualRcTimesDq) {
  auto nix_file = db_.storage().Open("nix");
  ASSERT_TRUE(nix_file.ok());
  uint32_t rc = db_.nix().tree().height() + 1;
  for (int64_t dq : {1, 3, 5}) {
    Rng rng(static_cast<uint64_t>(100 + dq));
    ElementSet query = rng.SampleWithoutReplacement(
        kV, static_cast<uint64_t>(dq));
    (*nix_file)->stats().Reset();
    ASSERT_TRUE(db_.nix().Candidates(QueryKind::kSuperset, query).ok());
    EXPECT_EQ((*nix_file)->stats().page_reads,
              static_cast<uint64_t>(rc) * static_cast<uint64_t>(dq));
  }
}

TEST_F(ValidationTest, UpdateCostsMatchModel) {
  // SSF insert: exactly 2 page writes (UC_I = 2).
  db_.storage().ResetStats();
  ElementSet set = {1, 2, 3, 4, 5, 6, 7, 8};
  Oid oid = Oid::FromLocation(9999, 0);
  ASSERT_TRUE(db_.ssf().Insert(oid, set).ok());
  EXPECT_EQ(db_.storage().TotalStats().page_writes, 2u);

  // Sparse BSSF insert: m_t slice writes + 1 OID write.
  BitVector sig = MakeSetSignature(set, db_.bssf().config());
  db_.storage().ResetStats();
  ASSERT_TRUE(db_.bssf().Insert(oid, set).ok());
  EXPECT_EQ(db_.storage().TotalStats().page_writes, sig.Count() + 1);

  // NIX insert: Dt traversals, each (height+1) reads + 1 leaf write, plus
  // up to a couple of extra writes when a full leaf happens to split (the
  // model's rc·Dt "does not consider node splits").
  uint32_t rc = db_.nix().tree().height() + 1;
  db_.storage().ResetStats();
  ASSERT_TRUE(db_.nix().Insert(oid, set).ok());
  IoStats io = db_.storage().TotalStats();
  EXPECT_EQ(io.page_reads, static_cast<uint64_t>(rc) * set.size());
  EXPECT_GE(io.page_writes, set.size());
  EXPECT_LE(io.page_writes, set.size() + 6);
}

TEST_F(ValidationTest, SsfDeleteScanCostAveragesHalfOidFile) {
  // Deleting uniformly chosen victims costs ~SC_OID/2 page reads on
  // average (the model's UC_D).
  uint64_t sc_oid = db_.storage().Open("ssf.oid").value()->num_pages();
  Rng rng(11);
  double total_reads = 0;
  const int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    size_t victim = rng.NextBelow(db_.oids().size());
    db_.storage().ResetStats();
    // Deleting an already-deleted OID is possible across trials; tolerate
    // NotFound by retrying with the next index.
    Status status = db_.ssf().Remove(db_.oids()[victim], db_.sets()[victim]);
    if (!status.ok()) {
      --t;
      continue;
    }
    total_reads += static_cast<double>(
        db_.storage().Open("ssf.oid").value()->stats().page_reads);
  }
  double mean = total_reads / kTrials;
  EXPECT_NEAR(mean, static_cast<double>(sc_oid) / 2.0,
              static_cast<double>(sc_oid) * 0.35);
}

}  // namespace
}  // namespace sigsetdb
