#include "db/set_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/generator.h"

namespace sigsetdb {
namespace {

SetIndex::Options SmallOptions() {
  SetIndex::Options options;
  options.maintain_ssf = true;
  options.maintain_bssf = true;
  options.maintain_nix = true;
  options.sig = {128, 2};
  options.capacity = 4096;
  options.domain_estimate = 200;
  return options;
}

class SetIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto index = SetIndex::Create(&storage_, "attr", SmallOptions());
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = std::move(*index);
    Rng rng(1);
    for (int i = 0; i < 500; ++i) {
      sets_.push_back(rng.SampleWithoutReplacement(200, 6));
      auto oid = index_->Insert(sets_.back());
      ASSERT_TRUE(oid.ok());
      oids_.push_back(*oid);
    }
  }

  std::vector<Oid> BruteForce(QueryKind kind, const ElementSet& query) {
    std::vector<Oid> out;
    for (size_t i = 0; i < sets_.size(); ++i) {
      StoredObject obj{oids_[i], sets_[i]};
      bool hit = kind == QueryKind::kSuperset ? SatisfiesSuperset(obj, query)
                 : kind == QueryKind::kSubset ? SatisfiesSubset(obj, query)
                 : kind == QueryKind::kEquals ? SatisfiesEquals(obj, query)
                                              : SatisfiesOverlap(obj, query);
      if (hit) out.push_back(oids_[i]);
    }
    return out;
  }

  StorageManager storage_;
  std::unique_ptr<SetIndex> index_;
  std::vector<ElementSet> sets_;
  std::vector<Oid> oids_;
};

TEST_F(SetIndexTest, RequiresAtLeastOneFacility) {
  SetIndex::Options options;
  options.maintain_ssf = false;
  options.maintain_bssf = false;
  options.maintain_nix = false;
  StorageManager storage;
  EXPECT_EQ(SetIndex::Create(&storage, "x", options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SetIndexTest, TracksStatistics) {
  EXPECT_EQ(index_->num_objects(), 500u);
  EXPECT_DOUBLE_EQ(index_->mean_cardinality(), 6.0);
  EXPECT_GT(index_->SsfPages(), 0u);
  EXPECT_GT(index_->BssfPages(), 0u);
  EXPECT_GT(index_->NixPages(), 0u);
}

TEST_F(SetIndexTest, GetReturnsStoredValue) {
  auto obj = index_->Get(oids_[42]);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->set_value, sets_[42]);
}

TEST_F(SetIndexTest, AutoQueryMatchesBruteForceAllKinds) {
  Rng rng(2);
  for (QueryKind kind : {QueryKind::kSuperset, QueryKind::kSubset,
                         QueryKind::kEquals, QueryKind::kOverlaps}) {
    ElementSet query;
    switch (kind) {
      case QueryKind::kSuperset:
      case QueryKind::kProperSuperset:
      case QueryKind::kOverlaps:
        query = {sets_[3][0], sets_[3][2]};
        break;
      case QueryKind::kSubset:
      case QueryKind::kProperSubset:
        query = MakeHittingSubsetQuery(sets_[3], 200, 40, rng);
        break;
      case QueryKind::kEquals:
        query = sets_[3];
        break;
    }
    NormalizeSet(&query);
    auto result = index_->Query(kind, query);
    ASSERT_TRUE(result.ok()) << QueryKindName(kind);
    std::vector<Oid> got = result->result.oids;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForce(kind, query)) << QueryKindName(kind);
    EXPECT_FALSE(result->plan.empty());
    EXPECT_GT(result->page_accesses, 0u);
  }
}

TEST_F(SetIndexTest, ForcedModesAgree) {
  ElementSet query = {sets_[9][1], sets_[9][4]};
  NormalizeSet(&query);
  std::vector<Oid> expected = BruteForce(QueryKind::kSuperset, query);
  for (PlanMode mode : {PlanMode::kForceSsf, PlanMode::kForceBssf,
                        PlanMode::kForceNix, PlanMode::kAuto}) {
    auto result = index_->Query(QueryKind::kSuperset, query, mode);
    ASSERT_TRUE(result.ok());
    std::vector<Oid> got = result->result.oids;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

TEST_F(SetIndexTest, AutoPlanTracksDatabaseScale) {
  // At 500 objects the whole SSF is 2 pages, so a full scan can genuinely
  // be the cheapest plan — the advisor may pick it.  After growing the
  // database past a few thousand objects the scan loses and kAuto must
  // switch away from SSF (the paper's regime).
  Rng rng(3);
  for (int i = 0; i < 3500; ++i) {
    ASSERT_TRUE(index_->Insert(rng.SampleWithoutReplacement(200, 6)).ok());
  }
  for (int trial = 0; trial < 5; ++trial) {
    ElementSet query = rng.SampleWithoutReplacement(200, 2);
    auto result = index_->Query(QueryKind::kSuperset, query);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->plan.rfind("ssf", 0), std::string::npos)
        << result->plan;
  }
}

TEST_F(SetIndexTest, AutoPlanCheaperOrEqualToForcedPlans) {
  Rng rng(4);
  ElementSet query = rng.SampleWithoutReplacement(200, 40);
  auto auto_result = index_->Query(QueryKind::kSubset, query);
  ASSERT_TRUE(auto_result.ok());
  for (PlanMode mode : {PlanMode::kForceSsf, PlanMode::kForceNix}) {
    auto forced = index_->Query(QueryKind::kSubset, query, mode);
    ASSERT_TRUE(forced.ok());
    EXPECT_LE(auto_result->page_accesses, forced->page_accesses * 2)
        << "auto plan " << auto_result->plan;
  }
}

TEST_F(SetIndexTest, DeleteRemovesEverywhere) {
  ElementSet query = {sets_[0][0], sets_[0][1]};
  NormalizeSet(&query);
  ASSERT_TRUE(index_->Delete(oids_[0]).ok());
  for (PlanMode mode : {PlanMode::kForceSsf, PlanMode::kForceBssf,
                        PlanMode::kForceNix}) {
    auto result = index_->Query(QueryKind::kSuperset, query, mode);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(std::find(result->result.oids.begin(),
                          result->result.oids.end(),
                          oids_[0]) == result->result.oids.end());
  }
  EXPECT_EQ(index_->num_objects(), 499u);
}

TEST_F(SetIndexTest, EmptyQueryRejected) {
  EXPECT_EQ(index_->Query(QueryKind::kSuperset, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SetIndexTest, ForcedModeWithoutFacilityRejected) {
  SetIndex::Options options = SmallOptions();
  options.maintain_ssf = false;
  StorageManager storage;
  auto index = SetIndex::Create(&storage, "x", options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*index)->Insert({1, 2}).ok());
  EXPECT_EQ((*index)
                ->Query(QueryKind::kSuperset, {1}, PlanMode::kForceSsf)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SetIndexTest, AutoDomainEstimateTracksData) {
  // With domain_estimate unset the advisor's V comes from the live
  // HyperLogLog: our fixture draws from a 200-element domain.
  SetIndex::Options options = SmallOptions();
  options.domain_estimate = 0;
  StorageManager storage;
  auto index = SetIndex::Create(&storage, "auto", options);
  ASSERT_TRUE(index.ok());
  Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*index)->Insert(rng.SampleWithoutReplacement(200, 6)).ok());
  }
  EXPECT_NEAR(static_cast<double>((*index)->DomainEstimate()), 200.0, 20.0);
  // Queries still plan and answer correctly under the sketched V.
  auto result = (*index)->Query(QueryKind::kSuperset, {5, 9});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->plan.empty());
}

TEST_F(SetIndexTest, ExplicitDomainEstimateWins) {
  EXPECT_EQ(index_->DomainEstimate(), 200);  // fixture sets it explicitly
}

TEST_F(SetIndexTest, InsertNormalizesInput) {
  auto oid = index_->Insert({9, 3, 9, 1});
  ASSERT_TRUE(oid.ok());
  auto obj = index_->Get(*oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->set_value, (ElementSet{1, 3, 9}));
}

}  // namespace
}  // namespace sigsetdb
