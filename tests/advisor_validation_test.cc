// Advisor calibration: for every query kind and facility, compare the
// model's predicted page accesses with measured executions at reduced
// scale.  This is the property that makes cost-based planning work — if
// predictions drift from measurements, the advisor picks wrong plans.

#include <cmath>

#include <gtest/gtest.h>

#include "model/cost_bssf.h"
#include "model/cost_ext.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "query/executor.h"
#include "test_db.h"

namespace sigsetdb {
namespace {

class AdvisorValidationTest : public ::testing::Test {
 protected:
  static constexpr int64_t kN = 3000;
  static constexpr int64_t kV = 800;
  static constexpr int64_t kDt = 8;

  AdvisorValidationTest() : db_(MakeOptions()) {
    model_db_.n = kN;
    model_db_.v = kV;
    // The empirical tree's height differs from the paper-parameter formula
    // at this scale; calibrate rc from the real structure as the advisor
    // would from live statistics.
    nix_.fanout = TestDatabase::Options{}.nix_fanout;
  }

  static TestDatabase::Options MakeOptions() {
    TestDatabase::Options options;
    options.n = kN;
    options.v = kV;
    options.dt = kDt;
    options.sig = {250, 2};
    options.seed = 777;
    return options;
  }

  double MeasureMean(SetAccessFacility* facility, QueryKind kind, int64_t dq,
                     int trials, uint64_t seed) {
    Rng rng(seed);
    uint64_t total = 0;
    for (int t = 0; t < trials; ++t) {
      ElementSet query = rng.SampleWithoutReplacement(
          static_cast<uint64_t>(kV), static_cast<uint64_t>(dq));
      db_.storage().ResetStats();
      EXPECT_TRUE(
          ExecuteSetQuery(facility, db_.store(), kind, query).ok());
      total += db_.storage().TotalStats().total();
    }
    return static_cast<double>(total) / trials;
  }

  // Adjusts a NIX model prediction for the real tree's rc.
  double NixAdjusted(double model_cost, int64_t dq) {
    double model_rc = static_cast<double>(
        NixLookupCost(model_db_, nix_, kDt));
    double real_rc = static_cast<double>(db_.nix().tree().height() + 1);
    return model_cost + (real_rc - model_rc) * static_cast<double>(dq);
  }

  TestDatabase db_;
  DatabaseParams model_db_;
  SignatureParams sig_{250, 2};
  NixParams nix_;
};

TEST_F(AdvisorValidationTest, SupersetPredictions) {
  for (int64_t dq : {1, 2, 4}) {
    double ssf = MeasureMean(&db_.ssf(), QueryKind::kSuperset, dq, 20, 1);
    EXPECT_NEAR(ssf, SsfRetrievalCost(model_db_, sig_, kDt, dq,
                                      QueryKind::kSuperset),
                0.2 * ssf + 2.0)
        << "ssf dq=" << dq;
    double bssf = MeasureMean(&db_.bssf(), QueryKind::kSuperset, dq, 20, 2);
    EXPECT_NEAR(bssf, BssfRetrievalSuperset(model_db_, sig_, kDt, dq),
                0.25 * bssf + 2.0)
        << "bssf dq=" << dq;
    double nix = MeasureMean(&db_.nix(), QueryKind::kSuperset, dq, 20, 3);
    EXPECT_NEAR(nix,
                NixAdjusted(NixRetrievalSuperset(model_db_, nix_, kDt, dq),
                            dq),
                0.2 * nix + 2.0)
        << "nix dq=" << dq;
  }
}

TEST_F(AdvisorValidationTest, SubsetPredictions) {
  for (int64_t dq : {60, 120}) {
    double bssf = MeasureMean(&db_.bssf(), QueryKind::kSubset, dq, 10, 4);
    EXPECT_NEAR(bssf, BssfRetrievalSubset(model_db_, sig_, kDt, dq),
                0.25 * bssf + 3.0)
        << "bssf dq=" << dq;
    double nix = MeasureMean(&db_.nix(), QueryKind::kSubset, dq, 5, 5);
    EXPECT_NEAR(nix,
                NixAdjusted(NixRetrievalSubset(model_db_, nix_, kDt, dq), dq),
                0.2 * nix + 3.0)
        << "nix dq=" << dq;
  }
}

TEST_F(AdvisorValidationTest, EqualsPredictions) {
  // Equality candidates are ~0; the costs are pure filter costs.
  double ssf = MeasureMean(&db_.ssf(), QueryKind::kEquals, kDt, 10, 6);
  EXPECT_NEAR(ssf, SsfRetrievalEquals(model_db_, sig_, kDt, kDt),
              0.1 * ssf + 2.0);
  double bssf = MeasureMean(&db_.bssf(), QueryKind::kEquals, kDt, 10, 7);
  EXPECT_NEAR(bssf, BssfRetrievalEquals(model_db_, sig_, kDt, kDt),
              0.1 * bssf + 2.0);
  double nix = MeasureMean(&db_.nix(), QueryKind::kEquals, kDt, 10, 8);
  EXPECT_NEAR(nix,
              NixAdjusted(NixRetrievalEquals(model_db_, nix_, kDt, kDt),
                          kDt),
              0.2 * nix + 2.0);
}

TEST_F(AdvisorValidationTest, OverlapPredictions) {
  for (int64_t dq : {2, 5}) {
    double ssf = MeasureMean(&db_.ssf(), QueryKind::kOverlaps, dq, 10, 9);
    EXPECT_NEAR(ssf, SsfRetrievalOverlap(model_db_, sig_, kDt, dq),
                0.2 * ssf + 3.0)
        << "dq=" << dq;
    double bssf = MeasureMean(&db_.bssf(), QueryKind::kOverlaps, dq, 10, 10);
    EXPECT_NEAR(bssf, BssfRetrievalOverlap(model_db_, sig_, kDt, dq),
                0.2 * bssf + 3.0)
        << "dq=" << dq;
    double nix = MeasureMean(&db_.nix(), QueryKind::kOverlaps, dq, 10, 11);
    EXPECT_NEAR(nix,
                NixAdjusted(NixRetrievalOverlap(model_db_, nix_, kDt, dq),
                            dq),
                0.2 * nix + 3.0)
        << "dq=" << dq;
  }
}

TEST_F(AdvisorValidationTest, RankingsMatchMeasurements) {
  // The advisor's whole job: when it says facility A beats facility B by a
  // clear margin (>2x), the measurement must agree on the ordering.
  struct Case {
    QueryKind kind;
    int64_t dq;
  };
  for (const Case& c : {Case{QueryKind::kSuperset, 2},
                        Case{QueryKind::kSubset, 100},
                        Case{QueryKind::kEquals, kDt},
                        Case{QueryKind::kOverlaps, 3}}) {
    double model_ssf, model_bssf, meas_ssf, meas_bssf;
    switch (c.kind) {
      case QueryKind::kSuperset:
        model_ssf = SsfRetrievalCost(model_db_, sig_, kDt, c.dq, c.kind);
        model_bssf = BssfRetrievalSuperset(model_db_, sig_, kDt, c.dq);
        break;
      case QueryKind::kSubset:
        model_ssf = SsfRetrievalCost(model_db_, sig_, kDt, c.dq, c.kind);
        model_bssf = BssfRetrievalSubset(model_db_, sig_, kDt, c.dq);
        break;
      case QueryKind::kEquals:
        model_ssf = SsfRetrievalEquals(model_db_, sig_, kDt, c.dq);
        model_bssf = BssfRetrievalEquals(model_db_, sig_, kDt, c.dq);
        break;
      default:
        model_ssf = SsfRetrievalOverlap(model_db_, sig_, kDt, c.dq);
        model_bssf = BssfRetrievalOverlap(model_db_, sig_, kDt, c.dq);
        break;
    }
    meas_ssf = MeasureMean(&db_.ssf(), c.kind, c.dq, 8, 20);
    meas_bssf = MeasureMean(&db_.bssf(), c.kind, c.dq, 8, 21);
    if (model_ssf > 2 * model_bssf) {
      EXPECT_GT(meas_ssf, meas_bssf) << QueryKindName(c.kind);
    } else if (model_bssf > 2 * model_ssf) {
      EXPECT_GT(meas_bssf, meas_ssf) << QueryKindName(c.kind);
    }
  }
}

}  // namespace
}  // namespace sigsetdb
