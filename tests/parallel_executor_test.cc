// Differential test: parallel query execution must be indistinguishable
// from serial execution — same result OIDs in the same order, same
// candidate and false-drop counts, and the same logical page-access totals
// (the paper's cost metric).  Every case runs once serially and once per
// pool width (2/4/8 threads), seeded so failures reproduce.

#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/set_index.h"
#include "query/executor.h"
#include "test_db.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

struct Measured {
  QueryResult result;
  uint64_t reads = 0;
  uint64_t writes = 0;
};

class ParallelExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new TestDatabase(TestDatabase::Options{});
    for (size_t threads : {2u, 4u, 8u}) {
      pools_.push_back(new ThreadPool(threads));
    }
  }

  static void TearDownTestSuite() {
    for (ThreadPool* pool : pools_) delete pool;
    pools_.clear();
    delete db_;
    db_ = nullptr;
  }

  using RunFn =
      std::function<StatusOr<QueryResult>(const ParallelExecutionContext*)>;

  static Measured Measure(const RunFn& run,
                          const ParallelExecutionContext* ctx,
                          const std::string& label) {
    IoStats before = db_->storage().TotalStats();
    StatusOr<QueryResult> result = run(ctx);
    IoStats delta = db_->storage().TotalStats() - before;
    EXPECT_TRUE(result.ok()) << label << ": " << result.status().message();
    Measured out;
    if (result.ok()) out.result = std::move(*result);
    out.reads = delta.reads();
    out.writes = delta.writes();
    return out;
  }

  // Runs `run` serially and at every pool width and requires identical
  // results and identical logical page-access counts.
  static void ExpectDifferentialMatch(const RunFn& run,
                                      const std::string& label) {
    Measured serial = Measure(run, nullptr, label + " serial");
    for (ThreadPool* pool : pools_) {
      ParallelExecutionContext ctx;
      ctx.pool = pool;
      std::string plabel =
          label + " threads=" + std::to_string(pool->num_threads());
      Measured par = Measure(run, &ctx, plabel);
      EXPECT_EQ(par.result.oids, serial.result.oids) << plabel;
      EXPECT_EQ(par.result.num_candidates, serial.result.num_candidates)
          << plabel;
      EXPECT_EQ(par.result.num_false_drops, serial.result.num_false_drops)
          << plabel;
      EXPECT_EQ(par.reads, serial.reads) << plabel;
      EXPECT_EQ(par.writes, serial.writes) << plabel;
    }
  }

  static ElementSet QueryForKind(QueryKind kind, Rng& rng) {
    const std::vector<ElementSet>& sets = db_->sets();
    const ElementSet& target = sets[rng.NextBelow(sets.size())];
    const int64_t v = db_->options().v;
    switch (kind) {
      case QueryKind::kSuperset:
      case QueryKind::kProperSuperset:
        return MakeHittingSupersetQuery(
            target, 1 + static_cast<int64_t>(rng.NextBelow(4)), rng);
      case QueryKind::kSubset:
      case QueryKind::kProperSubset:
        return MakeHittingSubsetQuery(
            target, v, 20 + static_cast<int64_t>(rng.NextBelow(41)), rng);
      case QueryKind::kEquals:
        // Mostly stored values (hits); sometimes a random set (usually
        // empty result, exercising zero/low-candidate partitions).
        if (rng.NextBelow(4) != 0) return target;
        return rng.SampleWithoutReplacement(static_cast<uint64_t>(v),
                                            db_->options().dt);
      case QueryKind::kOverlaps:
        return rng.SampleWithoutReplacement(
            static_cast<uint64_t>(v), 1 + rng.NextBelow(3));
    }
    return target;
  }

  static void RunKindDifferential(QueryKind kind, uint64_t seed, int cases) {
    Rng rng(seed);
    for (int c = 0; c < cases; ++c) {
      ElementSet query = QueryForKind(kind, rng);
      std::string label = std::string(QueryKindName(kind)) + " case " +
                          std::to_string(c);
      ExpectDifferentialMatch(
          [&](const ParallelExecutionContext* ctx) {
            return ExecuteSetQuery(&db_->bssf(), db_->store(), kind, query,
                                   ctx);
          },
          label);
      if (HasFatalFailure() || HasNonfatalFailure()) {
        FAIL() << "first failing case: " << label << " (seed " << seed
               << ")";
      }
    }
  }

  static TestDatabase* db_;
  static std::vector<ThreadPool*> pools_;
};

TestDatabase* ParallelExecutorTest::db_ = nullptr;
std::vector<ThreadPool*> ParallelExecutorTest::pools_;

TEST_F(ParallelExecutorTest, SupersetDifferential500Cases) {
  RunKindDifferential(QueryKind::kSuperset, /*seed=*/101, /*cases=*/500);
}

TEST_F(ParallelExecutorTest, SubsetDifferential500Cases) {
  RunKindDifferential(QueryKind::kSubset, /*seed=*/202, /*cases=*/500);
}

TEST_F(ParallelExecutorTest, EqualsDifferential500Cases) {
  RunKindDifferential(QueryKind::kEquals, /*seed=*/303, /*cases=*/500);
}

TEST_F(ParallelExecutorTest, OverlapsDifferential500Cases) {
  RunKindDifferential(QueryKind::kOverlaps, /*seed=*/404, /*cases=*/500);
}

TEST_F(ParallelExecutorTest, ProperKindsDifferential) {
  RunKindDifferential(QueryKind::kProperSuperset, /*seed=*/505,
                      /*cases=*/100);
  RunKindDifferential(QueryKind::kProperSubset, /*seed=*/606, /*cases=*/100);
}

TEST_F(ParallelExecutorTest, SmartSupersetBssfDifferential) {
  Rng rng(707);
  for (int c = 0; c < 250; ++c) {
    const ElementSet& target = db_->sets()[rng.NextBelow(db_->sets().size())];
    ElementSet query = MakeHittingSupersetQuery(target, 4, rng);
    size_t k = 1 + rng.NextBelow(4);
    ExpectDifferentialMatch(
        [&](const ParallelExecutionContext* ctx) {
          return ExecuteSmartSupersetBssf(&db_->bssf(), db_->store(), query,
                                          k, QueryKind::kSuperset, ctx);
        },
        "smart-superset k=" + std::to_string(k) + " case " +
            std::to_string(c));
  }
}

TEST_F(ParallelExecutorTest, SmartSubsetBssfDifferential) {
  Rng rng(808);
  const size_t slice_caps[] = {3, 10, 50, 10000};
  for (int c = 0; c < 250; ++c) {
    const ElementSet& target = db_->sets()[rng.NextBelow(db_->sets().size())];
    ElementSet query =
        MakeHittingSubsetQuery(target, db_->options().v, 50, rng);
    size_t max_slices = slice_caps[rng.NextBelow(4)];
    ExpectDifferentialMatch(
        [&](const ParallelExecutionContext* ctx) {
          return ExecuteSmartSubsetBssf(&db_->bssf(), db_->store(), query,
                                        max_slices, QueryKind::kSubset, ctx);
        },
        "smart-subset s=" + std::to_string(max_slices) + " case " +
            std::to_string(c));
  }
}

TEST_F(ParallelExecutorTest, ParallelResultsMatchBruteForce) {
  // The differential tests prove parallel == serial; this anchors both to
  // ground truth so a bug shared by the two paths cannot hide.
  Rng rng(909);
  ParallelExecutionContext ctx;
  ctx.pool = pools_.back();
  for (QueryKind kind : {QueryKind::kSuperset, QueryKind::kSubset,
                         QueryKind::kEquals, QueryKind::kOverlaps}) {
    for (int c = 0; c < 25; ++c) {
      ElementSet query = QueryForKind(kind, rng);
      std::vector<Oid> expected = db_->BruteForce(kind, query);
      auto result =
          ExecuteSetQuery(&db_->bssf(), db_->store(), kind, query, &ctx);
      ASSERT_TRUE(result.ok());
      std::vector<Oid> got = result->oids;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << QueryKindName(kind) << " case " << c;
    }
  }
}

TEST_F(ParallelExecutorTest, MaxWorkersCapRespectedAndEquivalent) {
  Rng rng(111);
  const ElementSet& target = db_->sets()[7];
  ElementSet query = MakeHittingSupersetQuery(target, 3, rng);
  Measured serial = Measure(
      [&](const ParallelExecutionContext* ctx) {
        return ExecuteSetQuery(&db_->bssf(), db_->store(),
                               QueryKind::kSuperset, query, ctx);
      },
      nullptr, "serial");
  ParallelExecutionContext ctx;
  ctx.pool = pools_.back();  // 8 threads
  for (size_t cap : {1u, 2u, 3u}) {
    ctx.max_workers = cap;
    EXPECT_EQ(ctx.WorkersFor(100), cap);
    Measured par = Measure(
        [&](const ParallelExecutionContext* c) {
          return ExecuteSetQuery(&db_->bssf(), db_->store(),
                                 QueryKind::kSuperset, query, c);
        },
        &ctx, "cap=" + std::to_string(cap));
    EXPECT_EQ(par.result.oids, serial.result.oids);
    EXPECT_EQ(par.reads, serial.reads);
  }
}

TEST_F(ParallelExecutorTest, SetIndexNumThreadsKnobIsTransparent) {
  // Two identical indexes, one serial, one with a 4-thread pool: every
  // query must agree on results AND on the measured page-access count the
  // facade reports (the paper's metric).
  StorageManager serial_storage, parallel_storage;
  SetIndex::Options options;
  options.capacity = 2048;
  auto serial = SetIndex::Create(&serial_storage, "idx", options);
  ASSERT_TRUE(serial.ok());
  options.num_threads = 4;
  auto parallel = SetIndex::Create(&parallel_storage, "idx", options);
  ASSERT_TRUE(parallel.ok());
  ASSERT_NE((*parallel)->execution_context(), nullptr);
  EXPECT_EQ((*serial)->execution_context(), nullptr);

  for (const ElementSet& set : db_->sets()) {
    ASSERT_TRUE((*serial)->Insert(set).ok());
    ASSERT_TRUE((*parallel)->Insert(set).ok());
  }
  Rng rng(1212);
  for (int c = 0; c < 50; ++c) {
    for (QueryKind kind : {QueryKind::kSuperset, QueryKind::kSubset}) {
      ElementSet query = QueryForKind(kind, rng);
      for (PlanMode mode : {PlanMode::kAuto, PlanMode::kForceBssf}) {
        auto rs = (*serial)->Query(kind, query, mode);
        auto rp = (*parallel)->Query(kind, query, mode);
        ASSERT_TRUE(rs.ok());
        ASSERT_TRUE(rp.ok());
        EXPECT_EQ(rp->result.oids, rs->result.oids) << "case " << c;
        EXPECT_EQ(rp->result.num_false_drops, rs->result.num_false_drops);
        EXPECT_EQ(rp->plan, rs->plan);
        EXPECT_EQ(rp->page_accesses, rs->page_accesses)
            << "case " << c << " plan " << rs->plan;
      }
    }
  }
}

TEST_F(ParallelExecutorTest, DatabaseNumThreadsKnobIsTransparent) {
  // Same shape at the multi-attribute conjunction layer.
  auto build = [&](StorageManager* storage, size_t threads) {
    Database::Options options;
    options.capacity = 2048;
    options.num_threads = threads;
    options.attributes.resize(2);
    options.attributes[0].name = "a";
    options.attributes[1].name = "b";
    auto db = Database::Create(storage, "db", options);
    EXPECT_TRUE(db.ok());
    Rng rng(77);
    for (int i = 0; i < 400; ++i) {
      ElementSet a = rng.SampleWithoutReplacement(300, 6);
      ElementSet b = rng.SampleWithoutReplacement(300, 6);
      EXPECT_TRUE((*db)->Insert({a, b}).ok());
    }
    return std::move(*db);
  };
  StorageManager serial_storage, parallel_storage;
  std::unique_ptr<Database> serial = build(&serial_storage, 1);
  std::unique_ptr<Database> parallel = build(&parallel_storage, 4);

  Rng rng(1313);
  for (int c = 0; c < 40; ++c) {
    std::vector<SetPredicate> predicates;
    predicates.push_back(
        {"a", QueryKind::kSuperset, rng.SampleWithoutReplacement(300, 2)});
    predicates.push_back(
        {"b", QueryKind::kOverlaps, rng.SampleWithoutReplacement(300, 3)});
    auto rs = serial->Query(predicates);
    auto rp = parallel->Query(predicates);
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(rp.ok());
    EXPECT_EQ(rp->oids, rs->oids) << "case " << c;
    EXPECT_EQ(rp->num_candidates, rs->num_candidates);
    EXPECT_EQ(rp->num_false_drops, rs->num_false_drops);
    EXPECT_EQ(rp->driver, rs->driver);
    EXPECT_EQ(rp->page_accesses, rs->page_accesses) << "case " << c;
  }
}

}  // namespace
}  // namespace sigsetdb
