// IoStats snapshot/delta semantics: the tracing layer diffs value snapshots
// of live counters, so operator- must saturate at zero (a delta taken across
// a Reset, or between snapshots racing concurrent increments, must never
// underflow into an astronomically large page count) and deltas taken at
// quiescent points must be exact.

#include "storage/io_stats.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sigsetdb {
namespace {

TEST(IoStatsTest, DeltaOfIncrements) {
  IoStats live;
  IoStats before = live;  // value snapshot, not a view
  live.AddRead(3);
  live.AddWrite(2);
  IoStats delta = IoStats(live) - before;
  EXPECT_EQ(delta.reads(), 3u);
  EXPECT_EQ(delta.writes(), 2u);
  EXPECT_EQ(delta.total(), 5u);
  // The snapshot did not move with the live counters.
  EXPECT_EQ(before.reads(), 0u);
}

TEST(IoStatsTest, SubtractionSaturatesAtZero) {
  IoStats small{5, 3};
  IoStats big{7, 9};
  IoStats delta = small - big;
  EXPECT_EQ(delta.reads(), 0u);
  EXPECT_EQ(delta.writes(), 0u);
  // Saturation is per counter, not all-or-nothing.
  IoStats mixed = IoStats{10, 2} - IoStats{4, 5};
  EXPECT_EQ(mixed.reads(), 6u);
  EXPECT_EQ(mixed.writes(), 0u);
}

TEST(IoStatsTest, DeltaAcrossResetSaturates) {
  IoStats live;
  live.AddRead(100);
  IoStats before = live;
  live.Reset();
  live.AddRead(4);
  IoStats delta = IoStats(live) - before;
  EXPECT_EQ(delta.reads(), 0u);  // 4 - 100 saturates, not wraps
  EXPECT_EQ(delta.writes(), 0u);
}

// Snapshots racing concurrent increments: every delta must be sane (no
// underflow) and bounded by what was actually added, and the final total
// must be exact.  Run under TSan by tools/run_sanitizers.sh.
TEST(IoStatsTest, SnapshotDeltaUnderConcurrentIncrements) {
  IoStats live;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 50000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&live] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        live.AddRead();
        if (i % 8 == 0) live.AddWrite();
      }
    });
  }
  constexpr uint64_t kMaxReads = kWriters * kPerWriter;
  constexpr uint64_t kMaxWrites = kWriters * ((kPerWriter + 7) / 8);
  uint64_t last_total = 0;
  for (int i = 0; i < 1000; ++i) {
    IoStats before = live;
    IoStats after = live;
    IoStats delta = after - before;
    // Counters are monotonic while writers run, so after >= before and the
    // delta is bounded by everything that could have been added.
    EXPECT_LE(delta.reads(), kMaxReads);
    EXPECT_LE(delta.writes(), kMaxWrites);
    EXPECT_GE(after.total(), last_total);
    last_total = after.total();
  }
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(live.reads(), kMaxReads);
  EXPECT_EQ(live.writes(), kMaxWrites);
}

}  // namespace
}  // namespace sigsetdb
