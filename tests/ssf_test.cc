#include "sig/ssf.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

class SsfTest : public ::testing::Test {
 protected:
  void MakeSsf(SignatureConfig config) {
    auto ssf = SequentialSignatureFile::Create(config, &sig_file_, &oid_file_);
    ASSERT_TRUE(ssf.ok()) << ssf.status().ToString();
    ssf_ = std::move(*ssf);
  }

  static Oid MakeOid(uint64_t i) {
    return Oid::FromLocation(static_cast<PageId>(i), 0);
  }

  InMemoryPageFile sig_file_{"ssf.sig"};
  InMemoryPageFile oid_file_{"ssf.oid"};
  std::unique_ptr<SequentialSignatureFile> ssf_;
};

TEST_F(SsfTest, CreateValidatesConfig) {
  InMemoryPageFile s("s"), o("o");
  EXPECT_FALSE(SequentialSignatureFile::Create({0, 1}, &s, &o).ok());
  EXPECT_FALSE(SequentialSignatureFile::Create(
                   {static_cast<uint32_t>(kPageBits) + 1, 1}, &s, &o)
                   .ok());
  EXPECT_TRUE(SequentialSignatureFile::Create({250, 2}, &s, &o).ok());
}

TEST_F(SsfTest, InsertCostsTwoPageWrites) {
  MakeSsf({250, 2});
  ASSERT_TRUE(ssf_->Insert(MakeOid(0), {1, 2, 3}).ok());
  sig_file_.stats().Reset();
  oid_file_.stats().Reset();
  ASSERT_TRUE(ssf_->Insert(MakeOid(1), {4, 5, 6}).ok());
  // The paper's UC_I = 2: one signature-page write + one OID-page write.
  EXPECT_EQ(sig_file_.stats().page_writes + oid_file_.stats().page_writes,
            2u);
  EXPECT_EQ(sig_file_.stats().page_reads + oid_file_.stats().page_reads, 0u);
}

TEST_F(SsfTest, SignaturePackingMatchesModel) {
  MakeSsf({250, 2});
  // 131 signatures of 250 bits per 4 KiB page.
  EXPECT_EQ(ssf_->signatures_per_page(), 131u);
  for (uint64_t i = 0; i < 132; ++i) {
    ASSERT_TRUE(ssf_->Insert(MakeOid(i), {i}).ok());
  }
  EXPECT_EQ(ssf_->SignaturePages(), 2u);
  EXPECT_EQ(ssf_->num_signatures(), 132u);
}

TEST_F(SsfTest, SupersetQueryFindsAllTrueMatchesAndNoNonMatches) {
  MakeSsf({500, 5});
  Rng rng(1);
  std::vector<ElementSet> sets;
  for (uint64_t i = 0; i < 300; ++i) {
    sets.push_back(rng.SampleWithoutReplacement(200, 10));
    ASSERT_TRUE(ssf_->Insert(MakeOid(i), sets.back()).ok());
  }
  ElementSet query = {sets[7][0], sets[7][3]};
  NormalizeSet(&query);
  auto result = ssf_->Candidates(QueryKind::kSuperset, query);
  ASSERT_TRUE(result.ok());
  // Every object truly satisfying T ⊇ Q must be among the candidates.
  std::set<Oid> candidates(result->oids.begin(), result->oids.end());
  for (uint64_t i = 0; i < sets.size(); ++i) {
    if (IsSubset(query, sets[i])) {
      EXPECT_TRUE(candidates.count(MakeOid(i))) << "missing true match " << i;
    }
  }
  EXPECT_FALSE(result->exact);
}

TEST_F(SsfTest, SubsetQueryComplete) {
  MakeSsf({500, 3});
  Rng rng(2);
  std::vector<ElementSet> sets;
  for (uint64_t i = 0; i < 200; ++i) {
    sets.push_back(rng.SampleWithoutReplacement(100, 5));
    ASSERT_TRUE(ssf_->Insert(MakeOid(i), sets.back()).ok());
  }
  ElementSet query = rng.SampleWithoutReplacement(100, 40);
  auto result = ssf_->Candidates(QueryKind::kSubset, query);
  ASSERT_TRUE(result.ok());
  std::set<Oid> candidates(result->oids.begin(), result->oids.end());
  for (uint64_t i = 0; i < sets.size(); ++i) {
    if (IsSubset(sets[i], query)) {
      EXPECT_TRUE(candidates.count(MakeOid(i))) << "missing true match " << i;
    }
  }
}

TEST_F(SsfTest, EqualsAndOverlapComplete) {
  MakeSsf({250, 4});
  Rng rng(3);
  std::vector<ElementSet> sets;
  for (uint64_t i = 0; i < 100; ++i) {
    sets.push_back(rng.SampleWithoutReplacement(50, 4));
    ASSERT_TRUE(ssf_->Insert(MakeOid(i), sets.back()).ok());
  }
  // Equality: querying an existing value must return its object.
  auto eq = ssf_->Candidates(QueryKind::kEquals, sets[13]);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(std::find(eq->oids.begin(), eq->oids.end(), MakeOid(13)) !=
              eq->oids.end());
  // Overlap: any object sharing an element must be a candidate.
  ElementSet overlap_query = {sets[20][0], 9999};
  NormalizeSet(&overlap_query);
  auto ov = ssf_->Candidates(QueryKind::kOverlaps, overlap_query);
  ASSERT_TRUE(ov.ok());
  std::set<Oid> candidates(ov->oids.begin(), ov->oids.end());
  for (uint64_t i = 0; i < sets.size(); ++i) {
    if (Overlaps(sets[i], overlap_query)) {
      EXPECT_TRUE(candidates.count(MakeOid(i))) << "missing overlap " << i;
    }
  }
}

TEST_F(SsfTest, QueryScansExactlySignaturePages) {
  MakeSsf({250, 2});
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(ssf_->Insert(MakeOid(i), {i, i + 1000}).ok());
  }
  uint64_t sig_pages = ssf_->SignaturePages();
  EXPECT_EQ(sig_pages, 3u);  // ceil(300/131)
  sig_file_.stats().Reset();
  ASSERT_TRUE(ssf_->Candidates(QueryKind::kSuperset, {5}).ok());
  EXPECT_EQ(sig_file_.stats().page_reads, sig_pages);
}

TEST_F(SsfTest, RemoveHidesObjectFromResults) {
  MakeSsf({250, 3});
  ASSERT_TRUE(ssf_->Insert(MakeOid(0), {1, 2}).ok());
  ASSERT_TRUE(ssf_->Insert(MakeOid(1), {1, 3}).ok());
  ASSERT_TRUE(ssf_->Remove(MakeOid(0), {1, 2}).ok());
  auto result = ssf_->Candidates(QueryKind::kSuperset, {1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->oids, std::vector<Oid>{MakeOid(1)});
}

TEST_F(SsfTest, StoragePagesSumSignatureAndOidFiles) {
  MakeSsf({500, 2});
  for (uint64_t i = 0; i < 70; ++i) {
    ASSERT_TRUE(ssf_->Insert(MakeOid(i), {i}).ok());
  }
  // 65 sigs/page -> 2 sig pages; 70 oids -> 1 oid page.
  EXPECT_EQ(ssf_->StoragePages(), 3u);
}

}  // namespace
}  // namespace sigsetdb
