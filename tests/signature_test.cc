#include "sig/signature.h"
#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

TEST(SignatureConfigTest, Validation) {
  EXPECT_TRUE((SignatureConfig{250, 17}).Validate().ok());
  EXPECT_FALSE((SignatureConfig{0, 1}).Validate().ok());
  EXPECT_FALSE((SignatureConfig{8, 0}).Validate().ok());
  EXPECT_FALSE((SignatureConfig{8, 9}).Validate().ok());
  EXPECT_TRUE((SignatureConfig{8, 8}).Validate().ok());
}

TEST(SignatureTest, ElementSignatureHasExactlyMDistinctBits) {
  for (uint32_t m : {1u, 2u, 5u, 17u}) {
    SignatureConfig config{250, m};
    for (uint64_t e = 0; e < 50; ++e) {
      auto positions = ElementSignaturePositions(e, config);
      EXPECT_EQ(positions.size(), m);
      EXPECT_TRUE(std::is_sorted(positions.begin(), positions.end()));
      for (size_t i = 1; i < positions.size(); ++i) {
        EXPECT_NE(positions[i - 1], positions[i]);
      }
      for (uint32_t p : positions) EXPECT_LT(p, config.f);
      EXPECT_EQ(MakeElementSignature(e, config).Count(), m);
    }
  }
}

TEST(SignatureTest, ElementSignatureIsDeterministic) {
  SignatureConfig config{500, 3};
  EXPECT_EQ(MakeElementSignature(42, config), MakeElementSignature(42, config));
  EXPECT_FALSE(MakeElementSignature(42, config) ==
               MakeElementSignature(43, config));
}

TEST(SignatureTest, SetSignatureIsOrOfElementSignatures) {
  SignatureConfig config{128, 4};
  ElementSet set = {3, 9, 12345};
  BitVector expected(config.f);
  for (uint64_t e : set) expected.OrWith(MakeElementSignature(e, config));
  EXPECT_EQ(MakeSetSignature(set, config), expected);
}

TEST(SignatureTest, EmptySetSignatureIsZero) {
  SignatureConfig config{64, 2};
  EXPECT_EQ(MakeSetSignature({}, config).Count(), 0u);
}

TEST(SignatureTest, DegenerateFullWidthSignature) {
  // m == F: every element saturates the signature.
  SignatureConfig config{8, 8};
  EXPECT_EQ(MakeElementSignature(1, config).Count(), 8u);
  EXPECT_EQ(MakeSetSignature({1, 2, 3}, config).Count(), 8u);
}

TEST(SignatureTest, PartialQuerySignatureUsesPrefix) {
  SignatureConfig config{256, 3};
  ElementSet query = {10, 20, 30, 40};
  BitVector two = MakePartialQuerySignature(query, 2, config);
  BitVector expected(config.f);
  expected.OrWith(MakeElementSignature(10, config));
  expected.OrWith(MakeElementSignature(20, config));
  EXPECT_EQ(two, expected);
  // Clamping: asking for more elements than exist gives the full signature.
  EXPECT_EQ(MakePartialQuerySignature(query, 99, config),
            MakeSetSignature(query, config));
  EXPECT_EQ(MakePartialQuerySignature(query, 0, config).Count(), 0u);
}

// The completeness property at the heart of signature filtering: the search
// conditions can never reject a truly qualifying target.
class SignatureNoFalseNegativeTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(SignatureNoFalseNegativeTest, SupersetConditionComplete) {
  auto [f, m] = GetParam();
  SignatureConfig config{f, m};
  Rng rng(f * 131 + m);
  for (int trial = 0; trial < 50; ++trial) {
    ElementSet target = rng.SampleWithoutReplacement(1000, 10);
    // Query: subset of the target, so T ⊇ Q holds.
    ElementSet query = {target[0], target[4], target[9]};
    NormalizeSet(&query);
    BitVector ts = MakeSetSignature(target, config);
    BitVector qs = MakeSetSignature(query, config);
    EXPECT_TRUE(MatchesSuperset(ts, qs));
  }
}

TEST_P(SignatureNoFalseNegativeTest, SubsetConditionComplete) {
  auto [f, m] = GetParam();
  SignatureConfig config{f, m};
  Rng rng(f * 977 + m);
  for (int trial = 0; trial < 50; ++trial) {
    ElementSet query = rng.SampleWithoutReplacement(1000, 30);
    // Target: subset of the query, so T ⊆ Q holds.
    ElementSet target = {query[0], query[10], query[29]};
    NormalizeSet(&target);
    BitVector ts = MakeSetSignature(target, config);
    BitVector qs = MakeSetSignature(query, config);
    EXPECT_TRUE(MatchesSubset(ts, qs));
  }
}

TEST_P(SignatureNoFalseNegativeTest, EqualSetsHaveEqualSignatures) {
  auto [f, m] = GetParam();
  SignatureConfig config{f, m};
  Rng rng(f * 31 + m);
  ElementSet set = rng.SampleWithoutReplacement(1000, 10);
  EXPECT_TRUE(MatchesEquals(MakeSetSignature(set, config),
                            MakeSetSignature(set, config)));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SignatureNoFalseNegativeTest,
    ::testing::Values(std::make_tuple(64u, 1u), std::make_tuple(250u, 2u),
                      std::make_tuple(250u, 17u), std::make_tuple(500u, 2u),
                      std::make_tuple(500u, 35u), std::make_tuple(1000u, 3u),
                      std::make_tuple(2500u, 3u), std::make_tuple(2500u, 17u)));

TEST(SignatureStatisticsTest, WeightTracksExpectation) {
  // Mean signature weight over many random sets should approach
  // F(1-(1-m/F)^Dt) under the ideal-hash assumption.
  SignatureConfig config{500, 2};
  Rng rng(5);
  const int kTrials = 300;
  const int kDt = 10;
  double total = 0;
  for (int t = 0; t < kTrials; ++t) {
    ElementSet set = rng.SampleWithoutReplacement(13000, kDt);
    total += static_cast<double>(MakeSetSignature(set, config).Count());
  }
  double mean = total / kTrials;
  double expected =
      500.0 * (1.0 - std::pow(1.0 - 2.0 / 500.0, kDt));  // ≈ 19.6
  EXPECT_NEAR(mean, expected, 1.0);
}

}  // namespace
}  // namespace sigsetdb
