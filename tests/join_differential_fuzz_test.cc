// Differential fuzz over the set-containment join surface (DESIGN.md §17).
//
// Four replica PAIRS (R index, S index) — {1 thread, 4 threads} ×
// {snapshots off, on} — are driven through the same seeded churn (single
// inserts, deletes, write batches, compaction; EMPTY sets included on both
// sides, since ∅ ⊆ s for every s and ∅ ⊆ ∅) and, after every phase, joined
// R ⋈⊆ S through every strategy.  Invariants:
//
//   1. Every strategy — nested-loop, sig-hash (two prefix widths), adaptive
//      (cost-priced and forced to each direction), and kAuto — returns
//      exactly the brute-force O(|R|·|S|) oracle's pair set, bit for bit,
//      on every replica pair.  The signature filter is complete: false
//      drops cost verification work, never results.
//   2. The self-join R ⋈⊆ R (same index as both sides) matches the oracle's
//      self-join; every r pairs at least with itself.
//   3. Parallelism changes cost only: page accesses are identical at 1 and
//      4 threads for the same strategy.
//   4. Sig-hash accounting is exact: candidate pairs = result pairs +
//      false-drop pairs.
//   5. On the snapshot replicas, joins over pinned Snapshots equal the live
//      answer — and a pair of snapshots pinned EARLY still answers for its
//      own epoch after deletes, batches and a compaction rewrote the world.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "db/set_index.h"
#include "db/snapshot.h"
#include "db/write_batch.h"
#include "query/join.h"
#include "storage/storage_manager.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace sigsetdb {
namespace {

constexpr int64_t kDomain = 120;
constexpr int64_t kDt = 6;

using PairVec = std::vector<std::pair<uint64_t, uint64_t>>;

// Brute-force R ⋈⊆ S over two oracle states: every (r, s) OID-value pair
// with r's set a subset of s's set.  std::map iteration is sorted, so the
// output is already in the executor's canonical (r, s) order.
PairVec OracleJoin(const std::map<uint64_t, ElementSet>& r_oracle,
                   const std::map<uint64_t, ElementSet>& s_oracle) {
  PairVec out;
  for (const auto& [r_oid, r_set] : r_oracle) {
    for (const auto& [s_oid, s_set] : s_oracle) {
      if (std::includes(s_set.begin(), s_set.end(), r_set.begin(),
                        r_set.end())) {
        out.emplace_back(r_oid, s_oid);
      }
    }
  }
  return out;
}

PairVec PairValues(const JoinResult& join) {
  PairVec out;
  out.reserve(join.pairs.size());
  for (const JoinPair& p : join.pairs) {
    out.emplace_back(p.r.value(), p.s.value());
  }
  return out;
}

// The strategy matrix every check runs.  Beyond the four public strategies,
// adaptive is forced to each pure direction (threshold 0 sends every
// non-empty partition to the facility; a huge threshold keeps everything on
// the signature side) and sig-hash runs at a second prefix width.
struct SpecCase {
  const char* label;
  JoinSpec spec;
};

std::vector<SpecCase> AllSpecs() {
  std::vector<SpecCase> specs;
  JoinSpec nl;
  nl.strategy = JoinStrategy::kNestedLoop;
  specs.push_back({"nested-loop", nl});
  JoinSpec sh;
  sh.strategy = JoinStrategy::kSignatureHash;
  specs.push_back({"sig-hash", sh});
  JoinSpec sh4 = sh;
  sh4.prefix_bits = 4;
  specs.push_back({"sig-hash/4b", sh4});
  JoinSpec ad;
  ad.strategy = JoinStrategy::kAdaptive;
  specs.push_back({"adaptive", ad});
  JoinSpec ad_probe = ad;
  ad_probe.adaptive_probe_threshold = 0.0;  // every partition probes
  specs.push_back({"adaptive/probe", ad_probe});
  JoinSpec ad_sig = ad;
  ad_sig.adaptive_probe_threshold = 1e18;  // every partition stays in-memory
  specs.push_back({"adaptive/sig", ad_sig});
  JoinSpec automatic;
  automatic.strategy = JoinStrategy::kAuto;
  specs.push_back({"auto", automatic});
  return specs;
}

class JoinDifferentialFuzzTest : public ::testing::Test {
 protected:
  struct ReplicaPair {
    std::string label;
    bool snapshots = false;
    std::unique_ptr<StorageManager> storage;
    std::unique_ptr<SetIndex> r;
    std::unique_ptr<SetIndex> s;
  };

  void SetUp() override {
    struct Config {
      const char* label;
      size_t threads;
      bool snapshots;
    };
    // Positional: [0,1] live-only at 1/4 threads, [2,3] snapshots on.
    for (const Config& c :
         {Config{"1t", 1, false}, Config{"4t", 4, false},
          Config{"snap-1t", 1, true}, Config{"snap-4t", 4, true}}) {
      ReplicaPair pair;
      pair.label = c.label;
      pair.snapshots = c.snapshots;
      pair.storage = std::make_unique<StorageManager>();
      SetIndex::Options options;
      options.maintain_ssf = true;
      options.maintain_bssf = true;
      options.maintain_nix = true;
      options.sig = {120, 3};
      options.capacity = 4096;
      options.num_threads = c.threads;
      options.enable_snapshots = c.snapshots;
      auto r = SetIndex::Create(pair.storage.get(), "r", options);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      auto s = SetIndex::Create(pair.storage.get(), "s", options);
      ASSERT_TRUE(s.ok()) << s.status().ToString();
      pair.r = std::move(*r);
      pair.s = std::move(*s);
      replicas_.push_back(std::move(pair));
    }
  }

  // --- churn: applied to the same side of every replica pair, with OID
  // assignment asserted identical across replicas ---

  void InsertEverywhere(bool into_r, const ElementSet& set) {
    Oid expected{};
    for (size_t i = 0; i < replicas_.size(); ++i) {
      SetIndex* index =
          into_r ? replicas_[i].r.get() : replicas_[i].s.get();
      auto oid = index->Insert(set);
      ASSERT_TRUE(oid.ok()) << replicas_[i].label;
      if (i == 0) {
        expected = *oid;
      } else {
        ASSERT_EQ(oid->value(), expected.value()) << replicas_[i].label;
      }
    }
    (into_r ? oracle_r_ : oracle_s_)[expected.value()] = set;
  }

  void DeleteEverywhere(bool from_r, Oid oid) {
    for (ReplicaPair& pair : replicas_) {
      SetIndex* index = from_r ? pair.r.get() : pair.s.get();
      ASSERT_TRUE(index->Delete(oid).ok()) << pair.label;
    }
    (from_r ? oracle_r_ : oracle_s_).erase(oid.value());
  }

  void BatchEverywhere(bool into_r, const WriteBatch& batch) {
    std::vector<Oid> expected;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      SetIndex* index =
          into_r ? replicas_[i].r.get() : replicas_[i].s.get();
      auto oids = index->ApplyBatch(batch);
      ASSERT_TRUE(oids.ok()) << replicas_[i].label;
      if (i == 0) {
        expected = *oids;
      } else {
        ASSERT_EQ(oids->size(), expected.size());
        for (size_t j = 0; j < expected.size(); ++j) {
          ASSERT_EQ((*oids)[j].value(), expected[j].value())
              << replicas_[i].label;
        }
      }
    }
    std::map<uint64_t, ElementSet>& oracle = into_r ? oracle_r_ : oracle_s_;
    for (Oid oid : batch.deletes()) oracle.erase(oid.value());
    for (size_t j = 0; j < batch.inserts().size(); ++j) {
      oracle[expected[j].value()] = batch.inserts()[j];
    }
  }

  void CompactEverywhere() {
    for (ReplicaPair& pair : replicas_) {
      ASSERT_TRUE(pair.r->Compact().ok()) << pair.label;
      ASSERT_TRUE(pair.s->Compact().ok()) << pair.label;
    }
  }

  std::vector<Oid> LiveOids(bool of_r) const {
    std::vector<Oid> out;
    for (const auto& [oid, set] : (of_r ? oracle_r_ : oracle_s_)) {
      out.push_back(Oid{oid});
    }
    return out;
  }

  // --- the differential check: every strategy, every replica, live and
  // snapshot, cross-join and self-join, against the brute-force oracle ---

  void CheckJoins(const char* context) {
    const PairVec want = OracleJoin(oracle_r_, oracle_s_);
    const PairVec want_self = OracleJoin(oracle_r_, oracle_r_);
    const std::vector<SpecCase> specs = AllSpecs();
    // pages[spec][replica], for the thread-count invariant.
    std::vector<std::vector<uint64_t>> pages(
        specs.size(), std::vector<uint64_t>(replicas_.size(), 0));
    for (size_t i = 0; i < replicas_.size(); ++i) {
      ReplicaPair& pair = replicas_[i];
      for (size_t k = 0; k < specs.size(); ++k) {
        const SpecCase& sc = specs[k];
        auto result = pair.r->ExecuteSetJoin(pair.s.get(), sc.spec);
        ASSERT_TRUE(result.ok())
            << pair.label << " " << context << " " << sc.label << ": "
            << result.status().ToString();
        EXPECT_EQ(PairValues(result->join), want)
            << pair.label << " " << context << " " << sc.label
            << " plan=" << result->plan;
        EXPECT_GE(result->join.num_candidate_pairs, result->join.pairs.size())
            << pair.label << " " << context << " " << sc.label;
        if (sc.spec.strategy == JoinStrategy::kSignatureHash) {
          // Invariant 4: every sig-hash candidate is a pair or a false drop.
          EXPECT_EQ(result->join.num_candidate_pairs,
                    result->join.pairs.size() +
                        result->join.num_false_drop_pairs)
              << pair.label << " " << context << " " << sc.label;
        }
        if (sc.spec.strategy == JoinStrategy::kAuto) {
          EXPECT_NE(result->plan, "auto")
              << pair.label << " " << context << ": kAuto must resolve";
        }
        pages[k][i] = result->page_accesses;

        auto self = pair.r->ExecuteSetJoin(pair.r.get(), sc.spec);
        ASSERT_TRUE(self.ok())
            << pair.label << " " << context << " self " << sc.label << ": "
            << self.status().ToString();
        EXPECT_EQ(PairValues(self->join), want_self)
            << pair.label << " " << context << " self " << sc.label;
      }
      if (pair.snapshots) CheckSnapshotJoins(&pair, want, want_self, context);
    }
    // Invariant 3: parallelism never changes logical page accesses.
    for (size_t k = 0; k < specs.size(); ++k) {
      EXPECT_EQ(pages[k][0], pages[k][1])
          << context << " " << specs[k].label << " (live 1t vs 4t)";
      EXPECT_EQ(pages[k][2], pages[k][3])
          << context << " " << specs[k].label << " (snap 1t vs 4t)";
    }
  }

  void CheckSnapshotJoins(ReplicaPair* pair, const PairVec& want,
                          const PairVec& want_self, const char* context) {
    auto snap_r = pair->r->GetSnapshot();
    ASSERT_TRUE(snap_r.ok()) << pair->label << " " << context;
    auto snap_s = pair->s->GetSnapshot();
    ASSERT_TRUE(snap_s.ok()) << pair->label << " " << context;
    for (const SpecCase& sc : AllSpecs()) {
      auto result = (*snap_r)->ExecuteSetJoin(snap_s->get(), sc.spec);
      ASSERT_TRUE(result.ok())
          << pair->label << " " << context << " snapshot " << sc.label
          << ": " << result.status().ToString();
      EXPECT_EQ(PairValues(result->join), want)
          << pair->label << " " << context << " snapshot " << sc.label;
      auto self = (*snap_r)->ExecuteSetJoin(snap_r->get(), sc.spec);
      ASSERT_TRUE(self.ok())
          << pair->label << " " << context << " snapshot self " << sc.label;
      EXPECT_EQ(PairValues(self->join), want_self)
          << pair->label << " " << context << " snapshot self " << sc.label;
    }
  }

  std::vector<ReplicaPair> replicas_;
  std::map<uint64_t, ElementSet> oracle_r_;
  std::map<uint64_t, ElementSet> oracle_s_;
};

TEST_F(JoinDifferentialFuzzTest, ChurnedJoinsMatchOracleEverywhere) {
  Rng rng(20260809);
  WorkloadConfig r_config{64, kDomain, CardinalitySpec::Fixed(kDt),
                          SkewKind::kUniform, 0.99, 7};
  // S sets are wider (kDt + 4) so subsets actually occur; same domain so
  // the two sides genuinely collide.
  WorkloadConfig s_config{64, kDomain, CardinalitySpec::Fixed(kDt + 4),
                          SkewKind::kUniform, 0.99, 11};
  std::vector<ElementSet> r_sets = MakeDatabase(r_config);
  std::vector<ElementSet> s_sets = MakeDatabase(s_config);

  // Phase 1 — inserts with ∅ on BOTH sides: an ∅ r pairs with every s
  // (including ∅ s: ∅ ⊆ ∅), while an ∅ s pairs only with ∅ r's.  A few R
  // sets are duplicated into S so exact-match pairs exist, and a few S sets
  // are strict supersets of R sets.
  InsertEverywhere(true, ElementSet{});
  for (int i = 0; i < 14; ++i) InsertEverywhere(true, r_sets[i]);
  InsertEverywhere(false, ElementSet{});
  for (int i = 0; i < 10; ++i) InsertEverywhere(false, s_sets[i]);
  for (int i = 0; i < 4; ++i) InsertEverywhere(false, r_sets[i]);  // equals
  for (int i = 4; i < 8; ++i) {
    // Guaranteed strict superset of r_sets[i].
    ElementSet wide = MakeHittingSupersetQuery(r_sets[i], kDt, rng);
    ElementSet merged = r_sets[i];
    merged.insert(merged.end(), wide.begin(), wide.end());
    NormalizeSet(&merged);
    merged.push_back(static_cast<uint64_t>(kDomain) + 5 + i);
    NormalizeSet(&merged);
    InsertEverywhere(false, merged);
  }
  CheckJoins("after inserts");

  // Phase 2 — deletes on both sides, including one ∅ object.
  {
    std::vector<Oid> live_r = LiveOids(true);
    for (size_t i = 0; i < live_r.size(); i += 3) DeleteEverywhere(true, live_r[i]);
    std::vector<Oid> live_s = LiveOids(false);
    for (size_t i = 1; i < live_s.size(); i += 4) {
      DeleteEverywhere(false, live_s[i]);
    }
  }
  CheckJoins("after deletes");

  // Phase 3 — batches mixing deletes with slot-reusing inserts; ∅ reborn on
  // the R side inside the batch.
  {
    WriteBatch r_batch;
    std::vector<Oid> live_r = LiveOids(true);
    for (size_t i = 0; i < live_r.size(); i += 4) r_batch.Delete(live_r[i]);
    for (int i = 14; i < 24; ++i) r_batch.Insert(r_sets[i]);
    r_batch.Insert(ElementSet{});
    BatchEverywhere(true, r_batch);

    WriteBatch s_batch;
    std::vector<Oid> live_s = LiveOids(false);
    for (size_t i = 0; i < live_s.size(); i += 5) s_batch.Delete(live_s[i]);
    for (int i = 10; i < 18; ++i) s_batch.Insert(s_sets[i]);
    BatchEverywhere(false, s_batch);
  }
  CheckJoins("after batches");

  // Phase 4 — compaction drops the tombstones and rebuilds summaries.
  CompactEverywhere();
  CheckJoins("after compact");

  // Phase 5 — more churn on the compacted generation.
  {
    WriteBatch r_batch;
    std::vector<Oid> live_r = LiveOids(true);
    for (size_t i = 0; i < live_r.size(); i += 5) r_batch.Delete(live_r[i]);
    for (int i = 24; i < 30; ++i) r_batch.Insert(r_sets[i]);
    BatchEverywhere(true, r_batch);
    for (int i = 18; i < 22; ++i) InsertEverywhere(false, s_sets[i]);
  }
  CheckJoins("after post-compact churn");
}

// A snapshot pair pinned early answers the join for ITS epoch — bit for bit
// against the oracle captured at pin time — after deletes, batch churn and
// a compaction rewrote both sides underneath it.
TEST_F(JoinDifferentialFuzzTest, PinnedSnapshotJoinSurvivesChurn) {
  Rng rng(424243);
  WorkloadConfig r_config{40, kDomain, CardinalitySpec::Fixed(kDt),
                          SkewKind::kUniform, 0.99, 13};
  WorkloadConfig s_config{40, kDomain, CardinalitySpec::Fixed(kDt + 4),
                          SkewKind::kUniform, 0.99, 17};
  std::vector<ElementSet> r_sets = MakeDatabase(r_config);
  std::vector<ElementSet> s_sets = MakeDatabase(s_config);

  InsertEverywhere(true, ElementSet{});
  for (int i = 0; i < 10; ++i) InsertEverywhere(true, r_sets[i]);
  for (int i = 0; i < 8; ++i) InsertEverywhere(false, s_sets[i]);
  for (int i = 0; i < 3; ++i) InsertEverywhere(false, r_sets[i]);

  ReplicaPair& snap_pair = replicas_[2];
  ASSERT_TRUE(snap_pair.snapshots);
  auto early_r = snap_pair.r->GetSnapshot();
  ASSERT_TRUE(early_r.ok());
  auto early_s = snap_pair.s->GetSnapshot();
  ASSERT_TRUE(early_s.ok());
  const PairVec pinned_want = OracleJoin(oracle_r_, oracle_s_);

  // Churn both sides hard: the pinned answer must not move.
  {
    std::vector<Oid> live_r = LiveOids(true);
    for (size_t i = 0; i < live_r.size(); i += 2) DeleteEverywhere(true, live_r[i]);
    WriteBatch s_batch;
    std::vector<Oid> live_s = LiveOids(false);
    for (size_t i = 0; i < live_s.size(); i += 3) s_batch.Delete(live_s[i]);
    for (int i = 8; i < 16; ++i) s_batch.Insert(s_sets[i]);
    BatchEverywhere(false, s_batch);
    for (int i = 10; i < 18; ++i) InsertEverywhere(true, r_sets[i]);
  }
  CompactEverywhere();
  CheckJoins("post-pin churn");  // live joins track the NEW oracle

  for (const SpecCase& sc : AllSpecs()) {
    auto result = (*early_r)->ExecuteSetJoin(early_s->get(), sc.spec);
    ASSERT_TRUE(result.ok())
        << "pinned " << sc.label << ": " << result.status().ToString();
    EXPECT_EQ(PairValues(result->join), pinned_want) << "pinned " << sc.label;
  }
}

}  // namespace
}  // namespace sigsetdb
