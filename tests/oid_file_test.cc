#include "obj/oid_file.h"

#include <gtest/gtest.h>

namespace sigsetdb {
namespace {

Oid MakeOid(uint64_t i) { return Oid::FromLocation(static_cast<PageId>(i), 0); }

TEST(OidFileTest, AppendReturnsSequentialSlots) {
  InMemoryPageFile file("oid");
  OidFile of(&file);
  for (uint64_t i = 0; i < 10; ++i) {
    auto slot = of.Append(MakeOid(i));
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(*slot, i);
  }
  EXPECT_EQ(of.num_entries(), 10u);
}

TEST(OidFileTest, AppendCostsOneWrite) {
  InMemoryPageFile file("oid");
  OidFile of(&file);
  ASSERT_TRUE(of.Append(MakeOid(0)).ok());
  file.stats().Reset();
  ASSERT_TRUE(of.Append(MakeOid(1)).ok());
  EXPECT_EQ(file.stats().page_writes, 1u);
  EXPECT_EQ(file.stats().page_reads, 0u);
}

TEST(OidFileTest, GetReturnsAppendedOid) {
  InMemoryPageFile file("oid");
  OidFile of(&file);
  ASSERT_TRUE(of.Append(MakeOid(7)).ok());
  auto got = of.Get(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, MakeOid(7));
  EXPECT_EQ(of.Get(1).status().code(), StatusCode::kOutOfRange);
}

TEST(OidFileTest, PagesFillAtOidsPerPage) {
  InMemoryPageFile file("oid");
  OidFile of(&file);
  for (uint64_t i = 0; i < kOidsPerPage + 1; ++i) {
    ASSERT_TRUE(of.Append(MakeOid(i)).ok());
  }
  EXPECT_EQ(of.num_pages(), 2u);
  auto last = of.Get(kOidsPerPage);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(*last, MakeOid(kOidsPerPage));
}

TEST(OidFileTest, GetManyReadsEachPageOnce) {
  InMemoryPageFile file("oid");
  OidFile of(&file);
  for (uint64_t i = 0; i < 2 * kOidsPerPage; ++i) {
    ASSERT_TRUE(of.Append(MakeOid(i)).ok());
  }
  file.stats().Reset();
  // Slots spanning both pages, several per page.
  std::vector<uint64_t> slots = {0, 1, 5, kOidsPerPage, kOidsPerPage + 3};
  auto oids = of.GetMany(slots);
  ASSERT_TRUE(oids.ok());
  EXPECT_EQ(oids->size(), 5u);
  EXPECT_EQ(file.stats().page_reads, 2u);
  EXPECT_EQ((*oids)[0], MakeOid(0));
  EXPECT_EQ((*oids)[4], MakeOid(kOidsPerPage + 3));
}

TEST(OidFileTest, GetManyRejectsOutOfRange) {
  InMemoryPageFile file("oid");
  OidFile of(&file);
  ASSERT_TRUE(of.Append(MakeOid(0)).ok());
  EXPECT_EQ(of.GetMany({0, 1}).status().code(), StatusCode::kOutOfRange);
}

TEST(OidFileTest, MarkDeletedHidesEntry) {
  InMemoryPageFile file("oid");
  OidFile of(&file);
  ASSERT_TRUE(of.Append(MakeOid(1)).ok());
  ASSERT_TRUE(of.Append(MakeOid(2)).ok());
  ASSERT_TRUE(of.MarkDeleted(MakeOid(1)).ok());
  auto got = of.Get(0);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->valid());
  // GetMany skips the tombstone.
  auto many = of.GetMany({0, 1});
  ASSERT_TRUE(many.ok());
  ASSERT_EQ(many->size(), 1u);
  EXPECT_EQ((*many)[0], MakeOid(2));
}

TEST(OidFileTest, MarkDeletedMissingOidFails) {
  InMemoryPageFile file("oid");
  OidFile of(&file);
  ASSERT_TRUE(of.Append(MakeOid(1)).ok());
  EXPECT_EQ(of.MarkDeleted(MakeOid(9)).status().code(), StatusCode::kNotFound);
}

TEST(OidFileTest, MarkDeletedScansFromStart) {
  InMemoryPageFile file("oid");
  OidFile of(&file);
  for (uint64_t i = 0; i < 3 * kOidsPerPage; ++i) {
    ASSERT_TRUE(of.Append(MakeOid(i)).ok());
  }
  file.stats().Reset();
  // Victim on the third page: scan reads 3 pages, then 1 write.
  ASSERT_TRUE(of.MarkDeleted(MakeOid(2 * kOidsPerPage + 5)).ok());
  EXPECT_EQ(file.stats().page_reads, 3u);
  EXPECT_EQ(file.stats().page_writes, 1u);
}

TEST(OidFileTest, AppendAfterDeleteOnTailPageKeepsEntries) {
  InMemoryPageFile file("oid");
  OidFile of(&file);
  ASSERT_TRUE(of.Append(MakeOid(1)).ok());
  ASSERT_TRUE(of.MarkDeleted(MakeOid(1)).ok());
  ASSERT_TRUE(of.Append(MakeOid(2)).ok());
  // The tombstone must survive the subsequent tail-page rewrite.
  auto e0 = of.Get(0);
  ASSERT_TRUE(e0.ok());
  EXPECT_FALSE(e0->valid());
  auto e1 = of.Get(1);
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(*e1, MakeOid(2));
}

}  // namespace
}  // namespace sigsetdb
