#include "sig/compressed_bssf.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "sig/bssf.h"
#include "storage/storage_manager.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace sigsetdb {
namespace {

Oid MakeOid(uint64_t i) {
  return Oid::FromLocation(static_cast<PageId>(i), 0);
}

class CompressedBssfTest : public ::testing::Test {
 protected:
  // Builds both the compressed and the plain organization over the same
  // database so every query can be cross-checked.
  void Build(uint64_t n, int64_t domain, int64_t dt, SignatureConfig sig,
             uint64_t seed) {
    config_ = sig;
    WorkloadConfig wconfig{static_cast<int64_t>(n), domain,
                           CardinalitySpec::Fixed(dt), SkewKind::kUniform,
                           0.99, seed};
    sets_ = MakeDatabase(wconfig);
    for (uint64_t i = 0; i < n; ++i) oids_.push_back(MakeOid(i));

    auto compressed = CompressedBitSlicedSignatureFile::Create(
        sig, storage_.CreateOrOpen("c.slices"), storage_.CreateOrOpen("c.oid"));
    ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
    compressed_ = std::move(*compressed);
    ASSERT_TRUE(compressed_->BulkLoad(oids_, sets_).ok());

    auto plain = BitSlicedSignatureFile::Create(
        sig, n, storage_.CreateOrOpen("p.slices"),
        storage_.CreateOrOpen("p.oid"), BssfInsertMode::kSparse);
    ASSERT_TRUE(plain.ok());
    plain_ = std::move(*plain);
    ASSERT_TRUE(plain_->BulkLoad(oids_, sets_).ok());
    storage_.ResetStats();
  }

  StorageManager storage_;
  SignatureConfig config_{250, 2};
  std::vector<ElementSet> sets_;
  std::vector<Oid> oids_;
  std::unique_ptr<CompressedBitSlicedSignatureFile> compressed_;
  std::unique_ptr<BitSlicedSignatureFile> plain_;
};

TEST_F(CompressedBssfTest, SupersetSlotsMatchPlainBssf) {
  Build(3000, 800, 8, {250, 2}, 1);
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    ElementSet query = rng.SampleWithoutReplacement(800, 2);
    BitVector sig = MakeSetSignature(query, config_);
    auto c = compressed_->SupersetCandidateSlots(sig);
    auto p = plain_->SupersetCandidateSlots(sig);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(*c, *p) << "trial " << trial;
  }
}

TEST_F(CompressedBssfTest, SubsetSlotsMatchPlainBssf) {
  Build(2000, 400, 5, {250, 2}, 3);
  Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    ElementSet query = rng.SampleWithoutReplacement(400, 80);
    BitVector sig = MakeSetSignature(query, config_);
    auto c = compressed_->SubsetCandidateSlots(sig);
    auto p = plain_->SubsetCandidateSlots(sig);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(*c, *p) << "trial " << trial;
    // Partial scans agree too.
    auto c_part = compressed_->SubsetCandidateSlots(sig, 20);
    auto p_part = plain_->SubsetCandidateSlots(sig, 20);
    ASSERT_TRUE(c_part.ok());
    ASSERT_TRUE(p_part.ok());
    EXPECT_EQ(*c_part, *p_part);
  }
}

TEST_F(CompressedBssfTest, CompressesSparseSlicesBelowUncompressed) {
  // Compression pays when slices are sparse: F = 2500 at Dt = 8, m = 2
  // gives ~0.6% one-bit density (31-bit groups are mostly zero).  At the
  // paper's small-F design (density ~8%) raw slices win — the crossover is
  // quantified in bench_ext_compressed_slices.
  Build(100000, 13000, 8, {2500, 2}, 5);
  uint64_t uncompressed_pages =
      static_cast<uint64_t>(plain_->pages_per_slice()) * config_.f;
  EXPECT_EQ(plain_->pages_per_slice(), 4u);
  EXPECT_LT(compressed_->SlicePages(), uncompressed_pages / 2);
  // Query cost (slice page reads) drops accordingly.
  ElementSet query = {17, 29};
  BitVector sig = MakeSetSignature(query, config_);
  auto c_file = storage_.Open("c.slices");
  ASSERT_TRUE(c_file.ok());
  (*c_file)->stats().Reset();
  ASSERT_TRUE(compressed_->SupersetCandidateSlots(sig).ok());
  uint64_t c_reads = (*c_file)->stats().page_reads;
  auto p_file = storage_.Open("p.slices");
  ASSERT_TRUE(p_file.ok());
  (*p_file)->stats().Reset();
  ASSERT_TRUE(plain_->SupersetCandidateSlots(sig).ok());
  uint64_t p_reads = (*p_file)->stats().page_reads;
  EXPECT_LT(c_reads, p_reads);
}

TEST_F(CompressedBssfTest, SliceReadCostEqualsDirectoryPageCount) {
  Build(100000, 13000, 8, {250, 2}, 6);
  ElementSet query = {42};
  BitVector sig = MakeSetSignature(query, config_);
  uint64_t expected = 0;
  sig.ForEachSetBit([&](size_t j) {
    expected += compressed_->PagesForSlice(static_cast<uint32_t>(j));
  });
  auto c_file = storage_.Open("c.slices");
  ASSERT_TRUE(c_file.ok());
  (*c_file)->stats().Reset();
  ASSERT_TRUE(compressed_->SupersetCandidateSlots(sig).ok());
  EXPECT_EQ((*c_file)->stats().page_reads, expected);
}

TEST_F(CompressedBssfTest, ResolveSlotsReturnsOids) {
  Build(500, 200, 5, {128, 2}, 7);
  ElementSet query = {sets_[3][0], sets_[3][2]};
  NormalizeSet(&query);
  BitVector sig = MakeSetSignature(query, config_);
  auto slots = compressed_->SupersetCandidateSlots(sig);
  ASSERT_TRUE(slots.ok());
  auto oids = compressed_->ResolveSlots(*slots);
  ASSERT_TRUE(oids.ok());
  EXPECT_TRUE(std::find(oids->begin(), oids->end(), MakeOid(3)) !=
              oids->end());
}

TEST_F(CompressedBssfTest, BulkLoadGuards) {
  StorageManager storage;
  auto c = CompressedBitSlicedSignatureFile::Create(
      {64, 2}, storage.CreateOrOpen("s"), storage.CreateOrOpen("o"));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->BulkLoad({MakeOid(0)}, {}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE((*c)->BulkLoad({MakeOid(0)}, {{1, 2}}).ok());
  EXPECT_EQ((*c)->BulkLoad({MakeOid(1)}, {{3}}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CompressedBssfTest, EmptyDatabaseQueries) {
  StorageManager storage;
  auto c = CompressedBitSlicedSignatureFile::Create(
      {64, 2}, storage.CreateOrOpen("s"), storage.CreateOrOpen("o"));
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE((*c)->BulkLoad({}, {}).ok());
  BitVector sig = MakeSetSignature({1}, {64, 2});
  auto slots = (*c)->SupersetCandidateSlots(sig);
  ASSERT_TRUE(slots.ok());
  EXPECT_TRUE(slots->empty());
}

}  // namespace
}  // namespace sigsetdb
