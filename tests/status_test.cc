#include "util/status.h"

#include <gtest/gtest.h>

namespace sigsetdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing page");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing page");
  EXPECT_EQ(s.ToString(), "not_found: missing page");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad checksum");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kCorruption);
  EXPECT_EQ(t.message(), "bad checksum");
  EXPECT_EQ(s, t);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "io_error");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "unimplemented");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

Status FailingHelper() { return Status::IoError("disk on fire"); }

Status UsesReturnIfError() {
  SIGSET_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kIoError);
}

StatusOr<int> GiveSeven() { return 7; }
StatusOr<int> GiveError() { return Status::OutOfRange("too big"); }

Status UsesAssignOrReturn(bool fail, int* out) {
  SIGSET_ASSIGN_OR_RETURN(int v, fail ? GiveError() : GiveSeven());
  *out = v;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnAssigns) {
  int out = 0;
  ASSERT_TRUE(UsesAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 7);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_EQ(UsesAssignOrReturn(true, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(out, 0);
}

}  // namespace
}  // namespace sigsetdb
