// End-to-end durability: build a SetIndex on a disk-backed StorageManager,
// checkpoint, tear everything down, reopen from the same directory, and
// verify that every facility answers queries identically.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "db/set_index.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

SetIndex::Options Options() {
  SetIndex::Options options;
  options.maintain_ssf = true;
  options.maintain_bssf = true;
  options.maintain_nix = true;
  options.sig = {128, 2};
  options.capacity = 2048;
  options.domain_estimate = 150;
  return options;
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/sigsetdb_persist_" + std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
  }

  void TearDown() override {
    // Best-effort cleanup of the test directory.
    std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  std::string dir_;
};

TEST_F(PersistenceTest, CheckpointAndReopenAnswersIdentically) {
  std::vector<ElementSet> sets;
  std::vector<Oid> oids;
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    sets.push_back(rng.SampleWithoutReplacement(150, 5));
  }

  // --- build, query, checkpoint, destroy ---
  std::vector<Oid> expected_super, expected_sub;
  ElementSet super_query = {sets[7][0], sets[7][3]};
  NormalizeSet(&super_query);
  ElementSet sub_query = rng.SampleWithoutReplacement(150, 60);
  {
    StorageManager storage(dir_);
    auto index = SetIndex::Create(&storage, "attr", Options());
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    for (const auto& set : sets) {
      auto oid = (*index)->Insert(set);
      ASSERT_TRUE(oid.ok());
      oids.push_back(*oid);
    }
    auto super = (*index)->Query(QueryKind::kSuperset, super_query);
    ASSERT_TRUE(super.ok());
    expected_super = super->result.oids;
    auto sub = (*index)->Query(QueryKind::kSubset, sub_query);
    ASSERT_TRUE(sub.ok());
    expected_sub = sub->result.oids;
    ASSERT_FALSE(expected_super.empty());
    ASSERT_TRUE((*index)->Checkpoint().ok());
  }

  // --- reopen from disk and compare ---
  StorageManager storage(dir_);
  auto index = SetIndex::Open(&storage, "attr", Options());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ((*index)->num_objects(), sets.size());
  EXPECT_DOUBLE_EQ((*index)->mean_cardinality(), 5.0);

  for (PlanMode mode : {PlanMode::kForceSsf, PlanMode::kForceBssf,
                        PlanMode::kForceNix, PlanMode::kAuto}) {
    auto super = (*index)->Query(QueryKind::kSuperset, super_query, mode);
    ASSERT_TRUE(super.ok());
    std::vector<Oid> got = super->result.oids;
    std::sort(got.begin(), got.end());
    std::vector<Oid> want = expected_super;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
  auto sub = (*index)->Query(QueryKind::kSubset, sub_query);
  ASSERT_TRUE(sub.ok());
  std::vector<Oid> got = sub->result.oids;
  std::sort(got.begin(), got.end());
  std::vector<Oid> want = expected_sub;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);

  // Objects fetch by OID after reopen.
  auto obj = (*index)->Get(oids[123]);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->set_value, sets[123]);
}

TEST_F(PersistenceTest, InsertsAfterReopenWork) {
  ElementSet probe = {1, 2, 3};
  {
    StorageManager storage(dir_);
    auto index = SetIndex::Create(&storage, "attr", Options());
    ASSERT_TRUE(index.ok());
    // Cardinalities that leave partially filled tail pages.
    for (int i = 0; i < 37; ++i) {
      ASSERT_TRUE(
          (*index)->Insert({static_cast<uint64_t>(i), 100, 101}).ok());
    }
    ASSERT_TRUE((*index)->Checkpoint().ok());
  }
  StorageManager storage(dir_);
  auto index = SetIndex::Open(&storage, "attr", Options());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  auto oid = (*index)->Insert(probe);
  ASSERT_TRUE(oid.ok());
  // Both old and new objects visible, across facilities.
  for (PlanMode mode : {PlanMode::kForceSsf, PlanMode::kForceBssf,
                        PlanMode::kForceNix}) {
    auto result = (*index)->Query(QueryKind::kSuperset, {100, 101}, mode);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->result.oids.size(), 37u) << "mode " << (int)mode;
    auto probe_result = (*index)->Query(QueryKind::kSuperset, {1, 2, 3},
                                        mode);
    ASSERT_TRUE(probe_result.ok());
    EXPECT_EQ(probe_result->result.oids.size(), 1u);
  }
}

TEST_F(PersistenceTest, DomainSketchSurvivesReopen) {
  SetIndex::Options options = Options();
  options.domain_estimate = 0;  // auto: sketched
  int64_t before = 0;
  {
    StorageManager storage(dir_);
    auto index = SetIndex::Create(&storage, "attr", options);
    ASSERT_TRUE(index.ok());
    Rng rng(31);
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE((*index)->Insert(rng.SampleWithoutReplacement(150, 5)).ok());
    }
    before = (*index)->DomainEstimate();
    EXPECT_NEAR(static_cast<double>(before), 150.0, 15.0);
    ASSERT_TRUE((*index)->Checkpoint().ok());
  }
  StorageManager storage(dir_);
  auto index = SetIndex::Open(&storage, "attr", options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ((*index)->DomainEstimate(), before);
}

TEST_F(PersistenceTest, OpenRejectsMismatchedOptions) {
  {
    StorageManager storage(dir_);
    auto index = SetIndex::Create(&storage, "attr", Options());
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE((*index)->Insert({1}).ok());
    ASSERT_TRUE((*index)->Checkpoint().ok());
  }
  StorageManager storage(dir_);
  SetIndex::Options wrong = Options();
  wrong.sig = {256, 3};
  EXPECT_EQ(SetIndex::Open(&storage, "attr", wrong).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceTest, OpenWithoutCheckpointFails) {
  {
    StorageManager storage(dir_);
    auto index = SetIndex::Create(&storage, "attr", Options());
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE((*index)->Insert({1}).ok());
    // No checkpoint.
  }
  StorageManager storage(dir_);
  EXPECT_FALSE(SetIndex::Open(&storage, "attr", Options()).ok());
}

TEST_F(PersistenceTest, InMemoryCheckpointReopenWithinProcess) {
  // Checkpoint/Open also works on the in-memory backend within one
  // StorageManager lifetime (useful for tests and snapshots).
  StorageManager storage;
  {
    auto index = SetIndex::Create(&storage, "attr", Options());
    ASSERT_TRUE(index.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*index)->Insert({static_cast<uint64_t>(i), 99}).ok());
    }
    ASSERT_TRUE((*index)->Checkpoint().ok());
  }
  auto index = SetIndex::Open(&storage, "attr", Options());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  auto result = (*index)->Query(QueryKind::kSuperset, {99});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.oids.size(), 20u);
}

}  // namespace
}  // namespace sigsetdb
