// Tests for the smart object-retrieval strategies of paper §5.1.3 / §5.2.2
// at the model level: the optimizers must reproduce the constants and
// crossovers the paper reports in Figures 6, 7, 9 and 10.

#include <gtest/gtest.h>

#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/false_drop.h"

namespace sigsetdb {
namespace {

DatabaseParams Paper() { return DatabaseParams{}; }
NixParams PaperNix() { return NixParams{}; }

TEST(SmartSupersetTest, BssfCostConstantForDqAboveTwo) {
  // Paper §5.1.3: with m=2, the smart strategy uses 2 elements for any
  // Dq >= 3, so the cost is flat at the Dq=2 value (≈ 4 pages).
  DatabaseParams db = Paper();
  SignatureParams sig{500, 2};
  double at2 = BssfSmartSupersetCost(db, sig, 10, 2);
  for (int64_t dq = 3; dq <= 10; ++dq) {
    int64_t k = 0;
    double cost = BssfSmartSupersetCost(db, sig, 10, dq, &k);
    EXPECT_EQ(k, 2);
    EXPECT_DOUBLE_EQ(cost, at2);
  }
  EXPECT_NEAR(at2, 4.0, 0.4);
}

TEST(SmartSupersetTest, SmartNeverWorseThanPlain) {
  DatabaseParams db = Paper();
  for (int64_t m : {1, 2, 3, 4}) {
    SignatureParams sig{500, m};
    for (int64_t dq = 1; dq <= 10; ++dq) {
      EXPECT_LE(BssfSmartSupersetCost(db, sig, 10, dq),
                BssfRetrievalSuperset(db, sig, 10, dq) + 1e-9)
          << "m=" << m << " dq=" << dq;
    }
  }
}

TEST(SmartSupersetTest, NixSmartUsesTwoLookupsForLargeDq) {
  // Paper §5.1.3: for Dq >= 3, NIX looks up only two elements: the
  // intersection of two postings is already tiny (A(2) ≈ 0.017).
  DatabaseParams db = Paper();
  NixParams nix = PaperNix();
  for (int64_t dq = 3; dq <= 10; ++dq) {
    int64_t k = 0;
    double cost = NixSmartSupersetCost(db, nix, 10, dq, &k);
    EXPECT_EQ(k, 2);
    EXPECT_NEAR(cost, 6.017, 0.01);
  }
  // Dq=1 and Dq=2 are unchanged.
  int64_t k = 0;
  EXPECT_NEAR(NixSmartSupersetCost(db, nix, 10, 1, &k), 27.6, 0.1);
  EXPECT_EQ(k, 1);
}

TEST(SmartSupersetTest, Fig6Shapes) {
  // Fig. 6 (Dt=10): NIX wins only at Dq=1; BSSF(m=2) comparable or better
  // for Dq >= 2.
  DatabaseParams db = Paper();
  NixParams nix = PaperNix();
  SignatureParams sig{250, 2};
  EXPECT_LT(NixSmartSupersetCost(db, nix, 10, 1),
            BssfSmartSupersetCost(db, sig, 10, 1));
  for (int64_t dq = 2; dq <= 10; ++dq) {
    EXPECT_LE(BssfSmartSupersetCost(db, sig, 10, dq),
              NixSmartSupersetCost(db, nix, 10, dq) * 1.05)
        << "dq=" << dq;
  }
}

TEST(SmartSupersetTest, Fig7Shapes) {
  // Fig. 7 (Dt=100, F=2500, m=3): NIX wins at Dq=1; BSSF comparable or
  // lower from Dq >= 3 (paper: "BSSF shows almost equal or lower retrieval
  // cost for ... Dq >= 3 in Figure 7").
  DatabaseParams db = Paper();
  NixParams nix = PaperNix();
  SignatureParams sig{2500, 3};
  EXPECT_LT(NixSmartSupersetCost(db, nix, 100, 1),
            BssfSmartSupersetCost(db, sig, 100, 1));
  // "Almost equal or lower" (paper wording): allow a ~15% band around the
  // NIX smart cost, which both are deep inside (single-digit pages).
  for (int64_t dq = 3; dq <= 10; ++dq) {
    EXPECT_LE(BssfSmartSupersetCost(db, sig, 100, dq),
              NixSmartSupersetCost(db, nix, 100, dq) * 1.15)
        << "dq=" << dq;
  }
}

TEST(SmartSubsetTest, CostConstantBelowDqOpt) {
  // Fig. 9: under the smart slice-scan strategy the cost is flat for
  // Dq <= Dq_opt (the optimizer picks the same s regardless of how many
  // zero slices are available beyond it).
  DatabaseParams db = Paper();
  SignatureParams sig{500, 2};
  double dq_opt = BssfDqOpt(db, sig, 10);
  ASSERT_GT(dq_opt, 100.0);
  int64_t s10 = 0, s100 = 0;
  double c10 = BssfSmartSubsetCost(db, sig, 10, 10, &s10);
  double c100 = BssfSmartSubsetCost(db, sig, 10, 100, &s100);
  EXPECT_EQ(s10, s100);
  EXPECT_NEAR(c10, c100, 1e-6);
}

TEST(SmartSubsetTest, SmartNeverWorseThanPlain) {
  DatabaseParams db = Paper();
  for (int64_t m : {2, 3}) {
    SignatureParams sig{500, m};
    for (int64_t dq : {10, 50, 100, 300, 600, 1000}) {
      EXPECT_LE(BssfSmartSubsetCost(db, sig, 10, dq),
                BssfRetrievalSubset(db, sig, 10, dq) + 1e-9)
          << "m=" << m << " dq=" << dq;
    }
  }
}

TEST(SmartSubsetTest, Fig9BssfOverwhelmsNix) {
  // Paper §6: "For the query T ⊆ Q, BSSF costs a small constant amount of
  // page accesses for probable values of Dq, and overwhelms NIX."
  DatabaseParams db = Paper();
  NixParams nix = PaperNix();
  SignatureParams sig{500, 2};
  for (int64_t dq : {10, 20, 50, 100, 200}) {
    double bssf = BssfSmartSubsetCost(db, sig, 10, dq);
    double nix_cost = NixRetrievalSubset(db, nix, 10, dq);
    EXPECT_LT(bssf, nix_cost) << "dq=" << dq;
    if (dq >= 20) {
      EXPECT_LT(bssf, nix_cost / 2.0) << "dq=" << dq;
    }
  }
}

TEST(SmartSubsetTest, Fig10Dt100Shape) {
  // Fig. 10 (Dt=100, F=2500, m=3): same qualitative picture.
  DatabaseParams db = Paper();
  NixParams nix = PaperNix();
  SignatureParams sig{2500, 3};
  for (int64_t dq : {100, 200, 500, 1000}) {
    double bssf = BssfSmartSubsetCost(db, sig, 100, dq);
    double nix_cost = NixRetrievalSubset(db, nix, 100, dq);
    EXPECT_LT(bssf, nix_cost) << "dq=" << dq;
  }
}

TEST(SmartSubsetTest, OptimizerPicksInteriorSliceCount) {
  // The chosen s must be strictly between 0 and F - m_q for the paper's
  // operating point (scanning nothing floods resolution with candidates;
  // scanning everything wastes slice reads).
  DatabaseParams db = Paper();
  SignatureParams sig{500, 2};
  int64_t s = 0;
  BssfSmartSubsetCost(db, sig, 10, 50, &s);
  EXPECT_GT(s, 0);
  EXPECT_LT(s, 500 - static_cast<int64_t>(
                        ExpectedSignatureWeight(sig, 50)) + 1);
}

TEST(DqOptTest, MatchesArgminOfPlainCost) {
  DatabaseParams db = Paper();
  for (int64_t m : {2, 3}) {
    SignatureParams sig{500, m};
    double dq_opt = BssfDqOpt(db, sig, 10);
    // Scan for the empirical argmin of the plain subset cost.
    double best_cost = 1e18;
    int64_t best_dq = 0;
    for (int64_t dq = 10; dq <= 1000; ++dq) {
      double c = BssfRetrievalSubset(db, sig, 10, dq);
      if (c < best_cost) {
        best_cost = c;
        best_dq = dq;
      }
    }
    // The closed form descends from the approximate continuous cost (no
    // LC_OID min-term, exponential false-drop form), so ~10% agreement is
    // the expected fidelity.
    EXPECT_NEAR(dq_opt, static_cast<double>(best_dq),
                0.10 * static_cast<double>(best_dq) + 5.0)
        << "m=" << m;
  }
}

}  // namespace
}  // namespace sigsetdb
