// A strict, dependency-free JSON syntax validator shared by the telemetry
// tests: the exporters' contract is "round-trips through a validating
// parser", and this is that parser.  It checks structure only (objects,
// arrays, strings with escapes, numbers, literals) — no DOM is built.

#ifndef SIGSET_TESTS_JSON_VALIDATE_H_
#define SIGSET_TESTS_JSON_VALIDATE_H_

#include <cctype>
#include <string>

namespace sigsetdb {
namespace testjson {

class Validator {
 public:
  explicit Validator(const std::string& text) : text_(text) {}

  // True iff `text` is exactly one valid JSON value (plus whitespace).
  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing bytes");
    return true;
  }

  const std::string& error() const { return error_; }
  size_t error_pos() const { return error_pos_; }

 private:
  bool Fail(const char* why) {
    if (error_.empty()) {
      error_ = why;
      error_pos_ = pos_;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    return true;
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return Fail("expected \"");
    ++pos_;
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("truncated escape");
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape character");
        }
        ++pos_;
      } else if (c < 0x20) {
        return Fail("raw control character in string");
      } else {
        ++pos_;
      }
    }
    return Fail("unterminated string");
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("bad number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool Value() {
    if (++depth_ > 256) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("truncated value");
    bool ok = false;
    switch (text_[pos_]) {
      case '{':
        ok = Object();
        break;
      case '[':
        ok = Array();
        break;
      case '"':
        ok = String();
        break;
      case 't':
        ok = Literal("true");
        break;
      case 'f':
        ok = Literal("false");
        break;
      case 'n':
        ok = Literal("null");
        break;
      default:
        ok = Number();
        break;
    }
    --depth_;
    return ok;
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected :");
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected , or }");
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected , or ]");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
  size_t error_pos_ = 0;
};

inline bool IsValidJson(const std::string& text, std::string* error = nullptr) {
  Validator v(text);
  bool ok = v.Valid();
  if (!ok && error != nullptr) {
    *error = v.error() + " at byte " + std::to_string(v.error_pos());
  }
  return ok;
}

}  // namespace testjson
}  // namespace sigsetdb

#endif  // SIGSET_TESTS_JSON_VALIDATE_H_
