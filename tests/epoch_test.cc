// Snapshot-read machinery (DESIGN.md §14): the epoch pin/publish/reclaim
// protocol, the copy-on-write page versions behind it, and the end-to-end
// SetIndex/Database snapshot views — including crash-at-every-I/O schedules
// proving a crash mid-CoW-publish leaves the pre-publish epoch intact.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/set_index.h"
#include "db/snapshot.h"
#include "storage/storage_manager.h"
#include "storage/versioned_page_file.h"
#include "util/failpoint.h"

namespace sigsetdb {
namespace {

// ---------------------------------------------------------------------------
// EpochManager protocol
// ---------------------------------------------------------------------------

std::shared_ptr<const SnapshotState> MakeState(uint64_t epoch) {
  auto state = std::make_shared<SnapshotState>();
  state->epoch = epoch;
  return state;
}

TEST(EpochManagerTest, PublishAdvancesAndPinsTrackEpochs) {
  EpochManager epochs;
  EXPECT_EQ(epochs.published(), 0u);
  EXPECT_EQ(epochs.write_epoch(), 1u);
  EXPECT_EQ(epochs.pinned_count(), 0u);
  EXPECT_EQ(epochs.OldestPinned(), 0u);

  epochs.Publish(MakeState(1));
  EXPECT_EQ(epochs.published(), 1u);
  EXPECT_EQ(epochs.write_epoch(), 2u);

  EpochPin p1 = epochs.Pin();
  ASSERT_TRUE(p1.pinned());
  EXPECT_EQ(p1.epoch(), 1u);
  ASSERT_NE(p1.state(), nullptr);
  EXPECT_EQ(p1.state()->epoch, 1u);
  EXPECT_EQ(epochs.pinned_count(), 1u);
  EXPECT_EQ(epochs.OldestPinned(), 1u);

  epochs.Publish(MakeState(2));
  EpochPin p2 = epochs.Pin();
  EXPECT_EQ(p2.epoch(), 2u);
  // The oldest pin holds the floor.
  EXPECT_EQ(epochs.OldestPinned(), 1u);
  EXPECT_EQ(epochs.pinned_count(), 2u);

  p1.Release();
  EXPECT_FALSE(p1.pinned());
  EXPECT_EQ(epochs.OldestPinned(), 2u);
  EXPECT_EQ(epochs.pinned_count(), 1u);

  p2.Release();
  EXPECT_EQ(epochs.pinned_count(), 0u);
  // Nothing pinned: the floor is the published epoch itself.
  EXPECT_EQ(epochs.OldestPinned(), 2u);
}

TEST(EpochManagerTest, PinIsMoveOnlyAndIdempotentOnRelease) {
  EpochManager epochs;
  epochs.Publish(MakeState(1));
  EpochPin a = epochs.Pin();
  EpochPin b = std::move(a);
  EXPECT_FALSE(a.pinned());
  EXPECT_TRUE(b.pinned());
  EXPECT_EQ(epochs.pinned_count(), 1u);
  b.Release();
  b.Release();  // idempotent
  EXPECT_EQ(epochs.pinned_count(), 0u);
}

TEST(EpochManagerTest, PinEpochAlwaysMatchesPinnedState) {
  // The (epoch, state) pair returned by Pin must be consistent even while
  // publishes interleave — the manager hands both out under one mutex.
  EpochManager epochs;
  for (uint64_t e = 1; e <= 32; ++e) {
    epochs.Publish(MakeState(e));
    EpochPin pin = epochs.Pin();
    ASSERT_EQ(pin.epoch(), e);
    ASSERT_EQ(pin.state()->epoch, e);
  }
}

TEST(EpochManagerTest, ShutdownIsIdempotent) {
  EpochManager epochs;
  epochs.Publish(MakeState(1));
  epochs.Shutdown();
  epochs.Shutdown();
}

// ---------------------------------------------------------------------------
// VersionedPageFile: chains, reclaim floor, flush-through
// ---------------------------------------------------------------------------

Page FilledPage(uint8_t byte) {
  Page page;
  std::memset(page.data(), byte, kPageSize);
  return page;
}

class VersionedPageFileTest : public ::testing::Test {
 protected:
  // A private epoch cell stands in for the EpochManager so reclamation is
  // fully deterministic (no background thread).
  std::atomic<uint64_t> published_{0};
  InMemoryPageFile base_{"base"};
};

TEST_F(VersionedPageFileTest, AdoptsBasePagesAndVersionsWrites) {
  ASSERT_TRUE(base_.Allocate().ok());
  ASSERT_TRUE(base_.Write(0, FilledPage('A')).ok());
  auto wrapped = VersionedPageFile::Wrap(&base_, &published_);
  ASSERT_TRUE(wrapped.ok());
  VersionedPageFile& file = **wrapped;
  // Adoption: one epoch-0 node per base page, charged as a CoW copy.
  EXPECT_EQ(file.resident_versions(), 1u);
  EXPECT_EQ(base_.stats().cows(), 1u);

  // Write at write-epoch 1 (published = 0): a second version node.
  ASSERT_TRUE(file.Write(0, FilledPage('B')).ok());
  EXPECT_EQ(file.resident_versions(), 2u);
  EXPECT_EQ(base_.stats().cows(), 2u);

  Page out;
  // A reader pinned at 0 sees the adopted image; the writer sees its own.
  ASSERT_TRUE(file.ReadAtEpoch(0, 0, &out, nullptr).ok());
  EXPECT_EQ(out.data()[0], 'A');
  ASSERT_TRUE(file.ReadAtEpoch(0, kLatestEpoch, &out, nullptr).ok());
  EXPECT_EQ(out.data()[0], 'B');

  // Second write in the same (unpublished) mutation updates in place.
  ASSERT_TRUE(file.Write(0, FilledPage('C')).ok());
  EXPECT_EQ(file.resident_versions(), 2u);
  ASSERT_TRUE(file.ReadAtEpoch(0, 0, &out, nullptr).ok());
  EXPECT_EQ(out.data()[0], 'A');
  ASSERT_TRUE(file.ReadAtEpoch(0, 1, &out, nullptr).ok());
  EXPECT_EQ(out.data()[0], 'C');

  // CoW copies are bookkeeping, not logical I/O: total() excludes them, and
  // logical writes through the wrapper still count one each (1 pre-wrap
  // base write + 2 wrapper writes), keeping paper page counts unchanged.
  EXPECT_EQ(base_.stats().cows(), 2u);
  EXPECT_EQ(base_.stats().writes(), 3u);
  EXPECT_EQ(base_.stats().total(),
            base_.stats().reads() + base_.stats().writes());
}

TEST_F(VersionedPageFileTest, ReclaimKeepsTheNewestVersionAtOrBelowTheFloor) {
  ASSERT_TRUE(base_.Allocate().ok());
  ASSERT_TRUE(base_.Write(0, FilledPage('A')).ok());
  auto wrapped = VersionedPageFile::Wrap(&base_, &published_);
  ASSERT_TRUE(wrapped.ok());
  VersionedPageFile& file = **wrapped;

  // Build a chain with epochs {0, 1, 2, 3}.
  ASSERT_TRUE(file.Write(0, FilledPage('B')).ok());  // epoch 1
  published_.store(1);
  ASSERT_TRUE(file.Write(0, FilledPage('C')).ok());  // epoch 2
  published_.store(2);
  ASSERT_TRUE(file.Write(0, FilledPage('D')).ok());  // epoch 3
  published_.store(3);
  ASSERT_EQ(file.resident_versions(), 4u);

  // Oldest pin at 1: the epoch-1 node is K; only epoch 0 is reclaimable.
  EXPECT_EQ(file.Reclaim(1), 1u);
  EXPECT_EQ(file.resident_versions(), 3u);
  EXPECT_EQ(file.reclaimed_versions(), 1u);
  Page out;
  ASSERT_TRUE(file.ReadAtEpoch(0, 1, &out, nullptr).ok());
  EXPECT_EQ(out.data()[0], 'B');  // the pinned epoch's image survived
  ASSERT_TRUE(file.ReadAtEpoch(0, 2, &out, nullptr).ok());
  EXPECT_EQ(out.data()[0], 'C');

  // Floor raised to 3 (nothing pinned): only the head remains.
  EXPECT_EQ(file.Reclaim(3), 2u);
  EXPECT_EQ(file.resident_versions(), 1u);
  ASSERT_TRUE(file.ReadAtEpoch(0, 3, &out, nullptr).ok());
  EXPECT_EQ(out.data()[0], 'D');
  // Reclaim at the same floor again frees nothing (the head is never freed).
  EXPECT_EQ(file.Reclaim(3), 0u);
}

TEST_F(VersionedPageFileTest, PagesAllocatedAfterTheEpochReadAsZeroes) {
  auto wrapped = VersionedPageFile::Wrap(&base_, &published_);
  ASSERT_TRUE(wrapped.ok());
  VersionedPageFile& file = **wrapped;
  ASSERT_TRUE(file.Allocate().ok());  // at write epoch 1
  ASSERT_TRUE(file.Write(0, FilledPage('X')).ok());
  Page out;
  // Pinned at 0, the page "does not exist yet": zeroes, not 'X'.
  ASSERT_TRUE(file.ReadAtEpoch(0, 0, &out, nullptr).ok());
  EXPECT_EQ(out.data()[0], 0);
  ASSERT_TRUE(file.ReadAtEpoch(0, 1, &out, nullptr).ok());
  EXPECT_EQ(out.data()[0], 'X');
}

TEST_F(VersionedPageFileTest, FlushToBaseWritesNewestVersionsThrough) {
  ASSERT_TRUE(base_.Allocate().ok());
  ASSERT_TRUE(base_.Write(0, FilledPage('A')).ok());
  auto wrapped = VersionedPageFile::Wrap(&base_, &published_);
  ASSERT_TRUE(wrapped.ok());
  VersionedPageFile& file = **wrapped;
  ASSERT_TRUE(file.Write(0, FilledPage('B')).ok());
  // Base still holds the old image until the flush.
  Page out;
  IoStats scratch;
  ASSERT_TRUE(base_.Read(0, &out, &scratch).ok());
  EXPECT_EQ(out.data()[0], 'A');
  ASSERT_TRUE(file.FlushToBase().ok());
  ASSERT_TRUE(base_.Read(0, &out, &scratch).ok());
  EXPECT_EQ(out.data()[0], 'B');
}

TEST_F(VersionedPageFileTest, ManagerDrivenReclaimRespectsPins) {
  ASSERT_TRUE(base_.Allocate().ok());
  ASSERT_TRUE(base_.Write(0, FilledPage('A')).ok());
  EpochManager epochs;
  auto wrapped = VersionedPageFile::Wrap(&base_, epochs.published_cell());
  ASSERT_TRUE(wrapped.ok());
  VersionedPageFile* file = wrapped->get();
  epochs.RegisterReclaimer(
      [file](uint64_t oldest) { return file->Reclaim(oldest); });

  ASSERT_TRUE(file->Write(0, FilledPage('B')).ok());
  epochs.Publish(MakeState(1));
  EpochPin pin = epochs.Pin();  // holds epoch 1

  ASSERT_TRUE(file->Write(0, FilledPage('C')).ok());
  epochs.Publish(MakeState(2));
  ASSERT_TRUE(file->Write(0, FilledPage('D')).ok());
  epochs.Publish(MakeState(3));

  // The pin at 1 keeps the 'B' node alive through any number of passes.
  epochs.ReclaimNow();
  Page out;
  ASSERT_TRUE(file->ReadAtEpoch(0, pin.epoch(), &out, nullptr).ok());
  EXPECT_EQ(out.data()[0], 'B');

  // Releasing the pin raises the floor to published (3): everything below
  // the head goes.
  pin.Release();
  epochs.ReclaimNow();
  EXPECT_EQ(file->resident_versions(), 1u);
  EXPECT_GE(epochs.total_reclaimed(), 3u);
  ASSERT_TRUE(file->ReadAtEpoch(0, 3, &out, nullptr).ok());
  EXPECT_EQ(out.data()[0], 'D');
  epochs.Shutdown();
}

// ---------------------------------------------------------------------------
// SetIndex snapshots end to end
// ---------------------------------------------------------------------------

SetIndex::Options SnapshotOptions(bool wal = false) {
  SetIndex::Options options;
  options.maintain_ssf = true;
  options.maintain_bssf = true;
  options.maintain_nix = true;
  options.sig = {120, 3};
  options.capacity = 4096;
  options.enable_snapshots = true;
  options.enable_wal = wal;
  return options;
}

std::vector<uint64_t> SortedValues(const std::vector<Oid>& oids) {
  std::vector<uint64_t> out;
  for (Oid oid : oids) out.push_back(oid.value());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SetIndexSnapshotTest, DisabledByDefault) {
  StorageManager storage;
  SetIndex::Options options;
  options.maintain_ssf = true;
  auto index = SetIndex::Create(&storage, "t", options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->current_epoch(), 0u);
  auto snap = (*index)->GetSnapshot();
  EXPECT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SetIndexSnapshotTest, ReaderPinnedAcrossChurnSeesTheOldEpoch) {
  StorageManager storage;
  auto created = SetIndex::Create(&storage, "t", SnapshotOptions());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<SetIndex> index = std::move(*created);
  EXPECT_EQ(index->current_epoch(), 1u);  // Create publishes the empty index

  std::vector<Oid> oids;
  std::map<uint64_t, ElementSet> oracle;
  for (uint64_t i = 0; i < 10; ++i) {
    ElementSet set{i, i + 1, i + 2, 100 + i};
    auto oid = index->Insert(set);
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
    oracle[oid->value()] = set;
  }

  auto pinned = index->GetSnapshot();
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  std::unique_ptr<Snapshot> snap = std::move(*pinned);
  EXPECT_EQ(snap->epoch(), index->current_epoch());
  EXPECT_EQ(snap->num_objects(), 10u);

  // Churn the live index hard: deletes, inserts, a compaction.
  for (size_t i = 0; i < oids.size(); i += 2) {
    ASSERT_TRUE(index->Delete(oids[i]).ok());
  }
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(index->Insert({i * 3, i * 3 + 1, 200 + i}).ok());
  }
  ASSERT_TRUE(index->Compact().ok());

  // The pinned reader still sees all ten original objects, bit for bit.
  for (const auto& [value, set] : oracle) {
    auto got = snap->Get(Oid{value});
    ASSERT_TRUE(got.ok()) << "oid " << value;
    EXPECT_EQ(got->set_value, set);
  }
  const ElementSet probe{3, 4};
  for (PlanMode mode :
       {PlanMode::kForceSsf, PlanMode::kForceBssf, PlanMode::kForceNix}) {
    auto result = snap->Query(QueryKind::kSuperset, probe, mode);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<uint64_t> expected;
    for (const auto& [value, set] : oracle) {
      if (std::includes(set.begin(), set.end(), probe.begin(), probe.end())) {
        expected.push_back(value);
      }
    }
    EXPECT_EQ(SortedValues(result->result.oids), expected)
        << "plan=" << result->plan;
  }
  // Equals pins the exact old image (the live index deleted this object).
  auto equals = snap->Query(QueryKind::kEquals, oracle.begin()->second);
  ASSERT_TRUE(equals.ok());
  EXPECT_EQ(SortedValues(equals->result.oids),
            std::vector<uint64_t>{oracle.begin()->first});

  // A NEW snapshot sees the post-churn, post-compaction state.
  auto fresh = index->GetSnapshot();
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT((*fresh)->epoch(), snap->epoch());
  EXPECT_EQ((*fresh)->num_objects(), index->num_objects());
  auto live = index->Query(QueryKind::kSuperset, {3, 4});
  auto snap_now = (*fresh)->Query(QueryKind::kSuperset, {3, 4});
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(snap_now.ok());
  EXPECT_EQ(SortedValues(snap_now->result.oids),
            SortedValues(live->result.oids));

  // Writer outlives reader: release the old pin, reclaim, and the fresh
  // snapshot (and the live index) keep answering.
  snap.reset();
  ASSERT_NE(index->epochs(), nullptr);
  index->epochs()->ReclaimNow();
  snap_now = (*fresh)->Query(QueryKind::kSuperset, {3, 4});
  ASSERT_TRUE(snap_now.ok());
  EXPECT_EQ(SortedValues(snap_now->result.oids),
            SortedValues(live->result.oids));
}

TEST(SetIndexSnapshotTest, SnapshotChargesItsOwnPageAccesses) {
  StorageManager storage;
  auto created = SetIndex::Create(&storage, "t", SnapshotOptions());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<SetIndex> index = std::move(*created);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(index->Insert({i, i + 1, i + 2}).ok());
  }
  auto snap = index->GetSnapshot();
  ASSERT_TRUE(snap.ok());
  const IoStats before_live = storage.TotalStats();
  auto result = (*snap)->Query(QueryKind::kSuperset, {2, 3});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->page_accesses, 0u);
  // Snapshot reads never touch the live files' counters.
  const IoStats after_live = storage.TotalStats();
  EXPECT_EQ(after_live.reads(), before_live.reads());
  EXPECT_EQ((*snap)->TotalStats().reads(), result->page_accesses);
}

// ---------------------------------------------------------------------------
// Crash mid-CoW-publish: every versioned write of one mutation fails in
// turn; the published epoch must never move, a pre-crash pin must keep
// answering, and recovery must roll the unacknowledged mutation back.
// ---------------------------------------------------------------------------

TEST(SetIndexSnapshotCrashTest, CrashAtEveryCowWriteRecoversToPrePublishEpoch) {
  for (uint64_t countdown = 1;; ++countdown) {
    StorageManager storage;
    auto created = SetIndex::Create(&storage, "t", SnapshotOptions(true));
    ASSERT_TRUE(created.ok());
    std::unique_ptr<SetIndex> index = std::move(*created);

    std::map<uint64_t, ElementSet> oracle;
    for (uint64_t i = 0; i < 6; ++i) {
      ElementSet set{i, i + 7, i + 20};
      auto oid = index->Insert(set);
      ASSERT_TRUE(oid.ok());
      oracle[oid->value()] = set;
    }
    auto pinned = index->GetSnapshot();
    ASSERT_TRUE(pinned.ok());
    std::unique_ptr<Snapshot> snap = std::move(*pinned);
    const uint64_t pre_crash_epoch = index->current_epoch();

    FailpointRegistry::Instance().ArmCountdown("versioned.write", countdown);
    auto status = index->Insert({1, 2, 3}).status();
    FailpointRegistry::Instance().DisarmAll();

    if (status.ok()) {
      // The mutation touches fewer than `countdown` versioned writes: the
      // failpoint never fired and the schedule space is exhausted.
      ASSERT_GT(countdown, 1u);
      break;
    }

    // The failed mutation never published: pre-crash epoch intact.
    EXPECT_EQ(index->current_epoch(), pre_crash_epoch)
        << "countdown=" << countdown;

    // The pinned reader is unperturbed by the torn mutation.
    for (const auto& [value, set] : oracle) {
      auto got = snap->Get(Oid{value});
      ASSERT_TRUE(got.ok()) << "countdown=" << countdown;
      EXPECT_EQ(got->set_value, set);
    }
    auto q = snap->Query(QueryKind::kSuperset, {7});
    ASSERT_TRUE(q.ok()) << "countdown=" << countdown;
    std::vector<uint64_t> expected;
    for (const auto& [value, set] : oracle) {
      if (std::binary_search(set.begin(), set.end(), 7u)) {
        expected.push_back(value);
      }
    }
    EXPECT_EQ(SortedValues(q->result.oids), expected)
        << "countdown=" << countdown;

    // Recovery: the unacknowledged insert is rolled back; the acked six
    // survive.  (The pin must be released before the index dies.)
    snap.reset();
    index.reset();
    auto reopened = SetIndex::Open(&storage, "t", SnapshotOptions(true));
    ASSERT_TRUE(reopened.ok())
        << "countdown=" << countdown << ": " << reopened.status().ToString();
    index = std::move(*reopened);
    EXPECT_EQ(index->num_objects(), oracle.size()) << "countdown=" << countdown;
    auto recovered = index->GetSnapshot();
    ASSERT_TRUE(recovered.ok());
    auto rq = (*recovered)->Query(QueryKind::kSuperset, {7});
    ASSERT_TRUE(rq.ok());
    EXPECT_EQ(SortedValues(rq->result.oids), expected)
        << "countdown=" << countdown;
  }
}

// ---------------------------------------------------------------------------
// DatabaseSnapshot: pinned conjunction evaluation
// ---------------------------------------------------------------------------

TEST(DatabaseSnapshotTest, PinnedConjunctionSeesTheOldEpoch) {
  StorageManager storage;
  Database::Options options;
  Database::AttributeOptions courses;
  courses.name = "courses";
  courses.maintain_ssf = true;
  courses.maintain_bssf = true;
  courses.maintain_nix = true;
  courses.sig = {120, 3};
  Database::AttributeOptions hobbies = courses;
  hobbies.name = "hobbies";
  options.attributes = {courses, hobbies};
  options.capacity = 4096;
  options.enable_snapshots = true;
  auto created = Database::Create(&storage, "db", options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<Database> db = std::move(*created);

  std::vector<Oid> oids;
  for (uint64_t i = 0; i < 8; ++i) {
    auto oid = db->Insert({{i, i + 1, 50}, {i + 10, 90}});
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  auto pinned = db->GetSnapshot();
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  std::unique_ptr<DatabaseSnapshot> snap = std::move(*pinned);
  EXPECT_EQ(snap->num_objects(), 8u);

  // Churn: delete every object the pinned conjunction will match.
  std::vector<SetPredicate> conj{{"courses", QueryKind::kSuperset, {3, 50}},
                                 {"hobbies", QueryKind::kSuperset, {90}}};
  auto live_before = db->Query(conj);
  ASSERT_TRUE(live_before.ok());
  ASSERT_FALSE(live_before->oids.empty());
  for (Oid oid : live_before->oids) ASSERT_TRUE(db->Delete(oid).ok());
  auto live_after = db->Query(conj);
  ASSERT_TRUE(live_after.ok());
  EXPECT_TRUE(live_after->oids.empty());

  // The snapshot still returns the pre-delete answer.
  auto snap_result = snap->Query(conj);
  ASSERT_TRUE(snap_result.ok()) << snap_result.status().ToString();
  EXPECT_EQ(SortedValues(snap_result->oids),
            SortedValues(live_before->oids));
  // And per-object fetches serve the deleted objects' old values.
  for (Oid oid : live_before->oids) {
    auto got = snap->Get(oid);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->attrs.size(), 2u);
    EXPECT_TRUE(std::binary_search(got->attrs[0].begin(),
                                   got->attrs[0].end(), 50u));
  }
  // Unknown attributes still fail cleanly at the snapshot layer.
  auto bad = snap->Query({{"nope", QueryKind::kSuperset, {1}}});
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace sigsetdb
