// Advisor feedback: observed workload statistics from the MetricsRegistry
// (false-drop rate, buffer hit rate) fold back into the cost-based plan
// ranking.  The paper's model assumes uniform-random sets; a workload that
// false-drops far more often should shift the recommendation toward exact
// paths (plain NIX for T ⊇ Q), which is precisely what these tests pin.

#include "query/advisor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "db/set_index.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace sigsetdb {
namespace {

const AccessPathChoice* Find(const std::vector<AccessPathChoice>& choices,
                             const std::string& facility,
                             const std::string& strategy) {
  for (const AccessPathChoice& c : choices) {
    if (c.facility == facility && c.strategy == strategy) return &c;
  }
  return nullptr;
}

TEST(AdvisorFeedbackTest, FromRegistryEmptyWhenNothingObserved) {
  MetricsRegistry registry;
  AdvisorFeedback feedback = AdvisorFeedback::FromRegistry(registry);
  EXPECT_TRUE(feedback.empty());
  EXPECT_LT(feedback.false_drop_rate, 0.0);
  EXPECT_LT(feedback.buffer_hit_rate, 0.0);
}

TEST(AdvisorFeedbackTest, FromRegistryReadsConventionNames) {
  MetricsRegistry registry;
  registry.counter("query.bssf.candidates")->Increment(80);
  registry.counter("query.bssf.false_drops")->Increment(30);
  registry.counter("query.ssf.candidates")->Increment(20);
  registry.counter("query.ssf.false_drops")->Increment(20);
  registry.counter("buffer.hits")->Increment(75);
  registry.counter("buffer.misses")->Increment(25);
  AdvisorFeedback feedback = AdvisorFeedback::FromRegistry(registry);
  EXPECT_DOUBLE_EQ(feedback.false_drop_rate, 0.5);  // 50 / 100
  EXPECT_DOUBLE_EQ(feedback.buffer_hit_rate, 0.75);
}

TEST(AdvisorFeedbackTest, EmptyFeedbackLeavesCostsUnchanged) {
  const DatabaseParams db;
  const SignatureParams sig{500, 2};
  const NixParams nix;
  auto base = AdviseAccessPaths(db, sig, nix, 10, 3, QueryKind::kSuperset,
                                true);
  ASSERT_TRUE(base.ok());
  auto adjusted = AdviseAccessPaths(db, sig, nix, 10, 3, QueryKind::kSuperset,
                                    true, AdvisorFeedback{});
  ASSERT_TRUE(adjusted.ok());
  ASSERT_EQ(adjusted->size(), base->size());
  for (size_t i = 0; i < base->size(); ++i) {
    EXPECT_EQ((*adjusted)[i].facility, (*base)[i].facility);
    EXPECT_DOUBLE_EQ((*adjusted)[i].cost_pages, (*base)[i].cost_pages);
  }
}

TEST(AdvisorFeedbackTest, HighFalseDropRateShiftsToExactNix) {
  // Small-domain regime (V=200, N=400, Dt=6, Dq=2): here the model expects
  // signature candidates to be mostly true answers, so signature paths win
  // on pure model cost.  (Under the paper's Table-2 defaults nearly every
  // search is unsuccessful — the model already prices candidates as ~all
  // false drops, and an observed rate cannot make that any worse.)
  DatabaseParams db;
  db.n = 400;
  db.v = 200;
  const SignatureParams sig{128, 2};
  const NixParams nix;
  auto base = AdviseAccessPaths(db, sig, nix, 6, 2, QueryKind::kSuperset,
                                true);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->front().facility, "ssf");

  // A workload observed to false-drop on 99% of candidates: every inexact
  // filter needs ~100x the candidates for the same answers; plain NIX is
  // exact for T ⊇ Q and keeps its model cost, so it takes the lead.
  AdvisorFeedback feedback;
  feedback.false_drop_rate = 0.99;
  auto adjusted = AdviseAccessPaths(db, sig, nix, 6, 2, QueryKind::kSuperset,
                                    true, feedback);
  ASSERT_TRUE(adjusted.ok());
  EXPECT_EQ(adjusted->front().facility, "nix");
  EXPECT_EQ(adjusted->front().strategy, "plain");
  const AccessPathChoice* nix_plain = Find(*adjusted, "nix", "plain");
  const AccessPathChoice* nix_base = Find(*base, "nix", "plain");
  ASSERT_NE(nix_plain, nullptr);
  ASSERT_NE(nix_base, nullptr);
  EXPECT_DOUBLE_EQ(nix_plain->cost_pages, nix_base->cost_pages);
  // Inexact signature paths got strictly more expensive.
  for (const char* facility : {"ssf", "bssf"}) {
    const AccessPathChoice* b = Find(*base, facility, "plain");
    const AccessPathChoice* a = Find(*adjusted, facility, "plain");
    ASSERT_NE(b, nullptr);
    ASSERT_NE(a, nullptr);
    EXPECT_GT(a->cost_pages, b->cost_pages) << facility;
  }
}

TEST(AdvisorFeedbackTest, BufferHitRateDiscountsAllCosts) {
  const DatabaseParams db;
  const SignatureParams sig{500, 2};
  const NixParams nix;
  auto base = AdviseAccessPaths(db, sig, nix, 10, 100, QueryKind::kSubset,
                                true);
  ASSERT_TRUE(base.ok());
  AdvisorFeedback feedback;
  feedback.buffer_hit_rate = 0.5;
  auto adjusted = AdviseAccessPaths(db, sig, nix, 10, 100, QueryKind::kSubset,
                                    true, feedback);
  ASSERT_TRUE(adjusted.ok());
  // A uniform discount cannot reorder plans; each cost is halved.
  ASSERT_EQ(adjusted->size(), base->size());
  for (size_t i = 0; i < base->size(); ++i) {
    EXPECT_EQ((*adjusted)[i].facility, (*base)[i].facility);
    EXPECT_EQ((*adjusted)[i].strategy, (*base)[i].strategy);
    EXPECT_NEAR((*adjusted)[i].cost_pages, (*base)[i].cost_pages * 0.5,
                1e-9);
  }
}

TEST(AdvisorFeedbackTest, BreakdownForChoiceMatchesAdvisedCost) {
  const DatabaseParams db;
  const SignatureParams sig{500, 2};
  const NixParams nix;
  for (QueryKind kind : {QueryKind::kSuperset, QueryKind::kSubset}) {
    int64_t dq = kind == QueryKind::kSuperset ? 3 : 100;
    auto choices = AdviseAccessPaths(db, sig, nix, 10, dq, kind, true);
    ASSERT_TRUE(choices.ok());
    for (const AccessPathChoice& choice : *choices) {
      CostBreakdown bd =
          BreakdownForChoice(db, sig, nix, 10, dq, kind, choice);
      EXPECT_NEAR(bd.total(), choice.cost_pages, 1e-9)
          << choice.facility << " " << choice.strategy;
    }
  }
}

// End to end: a SetIndex with advisor_feedback enabled re-plans once its
// own registry reports a pathological false-drop rate.
TEST(AdvisorFeedbackTest, SetIndexFeedbackShiftsPlan) {
  StorageManager storage;
  SetIndex::Options options;
  options.maintain_ssf = true;
  options.maintain_bssf = true;
  options.maintain_nix = true;
  options.sig = {128, 2};
  options.capacity = 4096;
  options.domain_estimate = 200;
  options.advisor_feedback = true;
  auto index = SetIndex::Create(&storage, "attr", options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  Rng rng(1);
  std::vector<ElementSet> sets;
  for (int i = 0; i < 400; ++i) {
    sets.push_back(rng.SampleWithoutReplacement(200, 6));
    ASSERT_TRUE((*index)->Insert(sets.back()).ok());
  }
  ElementSet query = MakeHittingSupersetQuery(sets[5], 2, rng);

  // No observations yet: feedback is empty, the pure model picks a
  // signature path for a Dq=2 superset in this small domain.
  auto before = (*index)->Query(QueryKind::kSuperset, query);
  ASSERT_TRUE(before.ok());
  EXPECT_NE(before->plan, "nix plain") << before->plan;

  // Poison the observed false-drop rate (as a hostile workload would).
  MetricsRegistry* metrics = (*index)->metrics();
  metrics->counter("query.bssf.candidates")->Increment(1000);
  metrics->counter("query.bssf.false_drops")->Increment(990);
  auto after = (*index)->Query(QueryKind::kSuperset, query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->plan, "nix plain") << after->plan;
  // Same answer either way — feedback only changes the path, not results.
  std::vector<Oid> a = before->result.oids;
  std::vector<Oid> b = after->result.oids;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sigsetdb
