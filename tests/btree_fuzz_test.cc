// Randomized B+-tree oracle test: thousands of interleaved inserts,
// removes and look-ups cross-checked against a std::map reference, across
// fanouts, key skews (including overflow-chain-inducing hot keys) and
// bulk-loaded starting states.  Structural invariants (key order, counts)
// are verified via ForEachEntry after every phase.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "nix/btree.h"
#include "storage/page_file.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

Oid MakeOid(uint64_t i) {
  return Oid::FromLocation(static_cast<PageId>(i >> 16),
                           static_cast<uint16_t>(i & 0xffff));
}

using Oracle = std::map<uint64_t, std::vector<Oid>>;

// Verifies the full tree contents and ordering against the oracle.
void VerifyAgainstOracle(const BTree& tree, const Oracle& oracle) {
  std::vector<uint64_t> visited_keys;
  uint64_t visited_postings = 0;
  ASSERT_TRUE(tree
                  .ForEachEntry([&](const BTreeEntry& e) {
                    visited_keys.push_back(e.key);
                    visited_postings += e.postings.size();
                    auto it = oracle.find(e.key);
                    ASSERT_NE(it, oracle.end()) << "phantom key " << e.key;
                    std::vector<Oid> got = e.postings;
                    std::sort(got.begin(), got.end());
                    std::vector<Oid> want = it->second;
                    std::sort(want.begin(), want.end());
                    EXPECT_EQ(got, want) << "key " << e.key;
                  })
                  .ok());
  EXPECT_TRUE(std::is_sorted(visited_keys.begin(), visited_keys.end()));
  EXPECT_EQ(visited_keys.size(), oracle.size());
  uint64_t oracle_postings = 0;
  for (const auto& [k, v] : oracle) oracle_postings += v.size();
  EXPECT_EQ(visited_postings, oracle_postings);
}

struct FuzzParams {
  uint32_t fanout;
  uint64_t key_space;  // small => hot keys => deep postings / overflow
  int operations;
  uint64_t seed;
};

class BTreeFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(BTreeFuzzTest, RandomOpsMatchOracle) {
  const FuzzParams& params = GetParam();
  InMemoryPageFile file("fuzz");
  auto tree = BTree::Create(&file, params.fanout);
  ASSERT_TRUE(tree.ok());
  Oracle oracle;
  Rng rng(params.seed);
  uint64_t next_oid = 0;

  for (int op = 0; op < params.operations; ++op) {
    uint64_t key = rng.NextBelow(params.key_space);
    uint64_t dice = rng.NextBelow(100);
    if (dice < 60) {
      // Insert a fresh OID.
      Oid oid = MakeOid(next_oid++);
      ASSERT_TRUE((*tree)->Insert(key, oid).ok()) << "op " << op;
      oracle[key].push_back(oid);
    } else if (dice < 85) {
      // Remove a random existing OID of this key (if any).
      auto it = oracle.find(key);
      if (it == oracle.end() || it->second.empty()) {
        EXPECT_EQ((*tree)->Remove(key, MakeOid(next_oid + 1)).code(),
                  StatusCode::kNotFound);
      } else {
        size_t victim = rng.NextBelow(it->second.size());
        Oid oid = it->second[victim];
        ASSERT_TRUE((*tree)->Remove(key, oid).ok()) << "op " << op;
        it->second.erase(it->second.begin() +
                         static_cast<ptrdiff_t>(victim));
        if (it->second.empty()) oracle.erase(it);
      }
    } else {
      // Point look-up.
      auto postings = (*tree)->Lookup(key);
      ASSERT_TRUE(postings.ok());
      auto it = oracle.find(key);
      size_t expected = it == oracle.end() ? 0 : it->second.size();
      EXPECT_EQ(postings->size(), expected) << "key " << key;
    }
    if (op % 1000 == 999) VerifyAgainstOracle(**tree, oracle);
  }
  VerifyAgainstOracle(**tree, oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BTreeFuzzTest,
    ::testing::Values(
        FuzzParams{4, 200, 4000, 1},      // tiny fanout: deep tree, splits
        FuzzParams{8, 5000, 4000, 2},     // sparse keys: singleton postings
        FuzzParams{kPaperFanout, 40, 5000, 3},   // hot keys: fat postings
        FuzzParams{kPaperFanout, 3, 4000, 4},    // 3 keys: overflow chains
        FuzzParams{16, 1000, 6000, 5}),
    [](const ::testing::TestParamInfo<FuzzParams>& info) {
      return "fanout" + std::to_string(info.param.fanout) + "_keys" +
             std::to_string(info.param.key_space);
    });

TEST(BTreeFuzzBulkTest, BulkLoadThenFuzz) {
  InMemoryPageFile file("fuzz");
  auto tree = BTree::Create(&file, 8);
  ASSERT_TRUE(tree.ok());
  Oracle oracle;
  Rng rng(77);
  uint64_t next_oid = 0;
  // Bulk-loaded base: every 3rd key with 1-5 postings.
  std::vector<BTreeEntry> entries;
  for (uint64_t key = 0; key < 900; key += 3) {
    BTreeEntry entry;
    entry.key = key;
    uint64_t count = 1 + rng.NextBelow(5);
    for (uint64_t i = 0; i < count; ++i) {
      entry.postings.push_back(MakeOid(next_oid++));
    }
    oracle[key] = entry.postings;
    entries.push_back(std::move(entry));
  }
  ASSERT_TRUE((*tree)->BulkLoad(entries).ok());
  VerifyAgainstOracle(**tree, oracle);
  // Fuzz on top of the packed tree (every insert into a full leaf splits).
  for (int op = 0; op < 3000; ++op) {
    uint64_t key = rng.NextBelow(900);
    if (rng.NextBelow(2) == 0) {
      Oid oid = MakeOid(next_oid++);
      ASSERT_TRUE((*tree)->Insert(key, oid).ok());
      oracle[key].push_back(oid);
    } else {
      auto it = oracle.find(key);
      if (it != oracle.end() && !it->second.empty()) {
        ASSERT_TRUE((*tree)->Remove(key, it->second.back()).ok());
        it->second.pop_back();
        if (it->second.empty()) oracle.erase(it);
      }
    }
  }
  VerifyAgainstOracle(**tree, oracle);
}

}  // namespace
}  // namespace sigsetdb
