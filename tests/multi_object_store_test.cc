#include "obj/multi_object_store.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

TEST(MultiObjectStoreTest, RoundTripsTwoAttributes) {
  InMemoryPageFile file("obj");
  MultiObjectStore store(&file, 2);
  std::vector<ElementSet> attrs = {{1, 2, 3}, {100, 200}};
  auto oid = store.Insert(attrs);
  ASSERT_TRUE(oid.ok());
  auto obj = store.Get(*oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->attrs, attrs);
  EXPECT_EQ(obj->oid, *oid);
}

TEST(MultiObjectStoreTest, EmptyAttributesAllowed) {
  InMemoryPageFile file("obj");
  MultiObjectStore store(&file, 3);
  auto oid = store.Insert({{}, {7}, {}});
  ASSERT_TRUE(oid.ok());
  auto obj = store.Get(*oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(obj->attrs[0].empty());
  EXPECT_EQ(obj->attrs[1], ElementSet{7});
  EXPECT_TRUE(obj->attrs[2].empty());
}

TEST(MultiObjectStoreTest, AttributeCountEnforced) {
  InMemoryPageFile file("obj");
  MultiObjectStore store(&file, 2);
  EXPECT_EQ(store.Insert({{1}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Insert({{1}, {2}, {3}}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MultiObjectStoreTest, GetCostsOnePageRead) {
  InMemoryPageFile file("obj");
  MultiObjectStore store(&file, 2);
  auto oid = store.Insert({{1}, {2}});
  ASSERT_TRUE(oid.ok());
  file.stats().Reset();
  ASSERT_TRUE(store.Get(*oid).ok());
  EXPECT_EQ(file.stats().page_reads, 1u);
}

TEST(MultiObjectStoreTest, DeleteThenGetFails) {
  InMemoryPageFile file("obj");
  MultiObjectStore store(&file, 1);
  auto oid = store.Insert({{5}});
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store.Delete(*oid).ok());
  EXPECT_EQ(store.Get(*oid).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.num_objects(), 0u);
}

TEST(MultiObjectStoreTest, OversizeObjectRejected) {
  InMemoryPageFile file("obj");
  MultiObjectStore store(&file, 2);
  ElementSet huge(300);
  for (size_t i = 0; i < huge.size(); ++i) huge[i] = i;
  EXPECT_EQ(store.Insert({huge, huge}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MultiObjectStoreTest, ManyObjectsAcrossPages) {
  InMemoryPageFile file("obj");
  MultiObjectStore store(&file, 2);
  Rng rng(3);
  std::vector<Oid> oids;
  std::vector<std::vector<ElementSet>> values;
  for (int i = 0; i < 400; ++i) {
    std::vector<ElementSet> attrs = {
        rng.SampleWithoutReplacement(500, 10),
        rng.SampleWithoutReplacement(50, 3)};
    auto oid = store.Insert(attrs);
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
    values.push_back(std::move(attrs));
  }
  EXPECT_GT(store.num_pages(), 5u);
  for (size_t i = 0; i < oids.size(); ++i) {
    auto obj = store.Get(oids[i]);
    ASSERT_TRUE(obj.ok());
    EXPECT_EQ(obj->attrs, values[i]);
  }
}

TEST(MultiObjectStoreTest, RecoverCountRestoresStatistics) {
  InMemoryPageFile file("obj");
  {
    MultiObjectStore store(&file, 1);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(store.Insert({{static_cast<uint64_t>(i)}}).ok());
    }
  }
  MultiObjectStore reopened(&file, 1);
  EXPECT_EQ(reopened.num_objects(), 0u);
  reopened.RecoverCount(10);
  EXPECT_EQ(reopened.num_objects(), 10u);
  // Appending after reopen works (physical OIDs, tail page resumed).
  auto oid = reopened.Insert({{99}});
  ASSERT_TRUE(oid.ok());
  auto obj = reopened.Get(*oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->attrs[0], ElementSet{99});
}

}  // namespace
}  // namespace sigsetdb
