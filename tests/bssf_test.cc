#include "sig/bssf.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

class BssfTest : public ::testing::Test {
 protected:
  void MakeBssf(SignatureConfig config, uint64_t capacity,
                BssfInsertMode mode = BssfInsertMode::kTouchAllSlices) {
    auto bssf = BitSlicedSignatureFile::Create(config, capacity, &slice_file_,
                                               &oid_file_, mode);
    ASSERT_TRUE(bssf.ok()) << bssf.status().ToString();
    bssf_ = std::move(*bssf);
  }

  static Oid MakeOid(uint64_t i) {
    return Oid::FromLocation(static_cast<PageId>(i), 0);
  }

  InMemoryPageFile slice_file_{"bssf.slices"};
  InMemoryPageFile oid_file_{"bssf.oid"};
  std::unique_ptr<BitSlicedSignatureFile> bssf_;
};

TEST_F(BssfTest, CreatePreallocatesSliceStore) {
  MakeBssf({250, 2}, 1000);
  EXPECT_EQ(bssf_->pages_per_slice(), 1u);
  EXPECT_EQ(bssf_->SlicePages(), 250u);
  // Allocation I/O was reset: a fresh facility reports zero accesses.
  EXPECT_EQ(slice_file_.stats().total(), 0u);
}

TEST_F(BssfTest, MultiPageSlices) {
  // Capacity above one page of bits forces 2 pages per slice.
  MakeBssf({64, 2}, kPageBits + 5);
  EXPECT_EQ(bssf_->pages_per_slice(), 2u);
  EXPECT_EQ(bssf_->SlicePages(), 128u);
}

TEST_F(BssfTest, NaiveInsertTouchesAllSlices) {
  MakeBssf({64, 2}, 100, BssfInsertMode::kTouchAllSlices);
  slice_file_.stats().Reset();
  oid_file_.stats().Reset();
  ASSERT_TRUE(bssf_->Insert(MakeOid(0), {1, 2, 3}).ok());
  // Worst-case mode: every slice written once (reads are the RMW cost the
  // coarse 1993 model folds into "about F disk accesses").
  EXPECT_EQ(slice_file_.stats().page_writes, 64u);
  EXPECT_EQ(oid_file_.stats().page_writes, 1u);
}

TEST_F(BssfTest, SparseInsertTouchesOnlySetBits) {
  MakeBssf({64, 2}, 100, BssfInsertMode::kSparse);
  BitVector sig = MakeSetSignature({1, 2, 3}, {64, 2});
  slice_file_.stats().Reset();
  ASSERT_TRUE(bssf_->Insert(MakeOid(0), {1, 2, 3}).ok());
  EXPECT_EQ(slice_file_.stats().page_writes, sig.Count());
}

TEST_F(BssfTest, CapacityEnforced) {
  MakeBssf({32, 1}, 2);
  ASSERT_TRUE(bssf_->Insert(MakeOid(0), {1}).ok());
  ASSERT_TRUE(bssf_->Insert(MakeOid(1), {2}).ok());
  EXPECT_EQ(bssf_->Insert(MakeOid(2), {3}).code(), StatusCode::kOutOfRange);
}

TEST_F(BssfTest, SupersetCandidatesComplete) {
  MakeBssf({500, 5}, 500);
  Rng rng(1);
  std::vector<ElementSet> sets;
  for (uint64_t i = 0; i < 300; ++i) {
    sets.push_back(rng.SampleWithoutReplacement(200, 10));
    ASSERT_TRUE(bssf_->Insert(MakeOid(i), sets.back()).ok());
  }
  ElementSet query = {sets[42][1], sets[42][8]};
  NormalizeSet(&query);
  auto result = bssf_->Candidates(QueryKind::kSuperset, query);
  ASSERT_TRUE(result.ok());
  std::set<Oid> candidates(result->oids.begin(), result->oids.end());
  for (uint64_t i = 0; i < sets.size(); ++i) {
    if (IsSubset(query, sets[i])) {
      EXPECT_TRUE(candidates.count(MakeOid(i))) << "missing true match " << i;
    }
  }
}

TEST_F(BssfTest, SupersetReadsOneSlicePerQueryBit) {
  MakeBssf({250, 2}, 1000);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(bssf_->Insert(MakeOid(i), {i}).ok());
  }
  BitVector query_sig = MakeSetSignature({3, 7}, bssf_->config());
  slice_file_.stats().Reset();
  ASSERT_TRUE(bssf_->SupersetCandidateSlots(query_sig).ok());
  EXPECT_EQ(slice_file_.stats().page_reads, query_sig.Count());
}

TEST_F(BssfTest, SubsetReadsOneSlicePerZeroBit) {
  MakeBssf({250, 2}, 1000);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(bssf_->Insert(MakeOid(i), {i}).ok());
  }
  BitVector query_sig = MakeSetSignature({3, 7, 9}, bssf_->config());
  slice_file_.stats().Reset();
  ASSERT_TRUE(bssf_->SubsetCandidateSlots(query_sig).ok());
  EXPECT_EQ(slice_file_.stats().page_reads, 250u - query_sig.Count());
}

TEST_F(BssfTest, SubsetPartialScanLimitsSliceReads) {
  MakeBssf({250, 2}, 1000);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(bssf_->Insert(MakeOid(i), {i, i + 500}).ok());
  }
  BitVector query_sig = MakeSetSignature({3, 7}, bssf_->config());
  slice_file_.stats().Reset();
  auto limited = bssf_->SubsetCandidateSlots(query_sig, 10);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(slice_file_.stats().page_reads, 10u);
  // Fewer slices scanned => a superset of the full-scan candidates.
  auto full = bssf_->SubsetCandidateSlots(query_sig);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(std::includes(limited->begin(), limited->end(), full->begin(),
                            full->end()));
}

TEST_F(BssfTest, SubsetCandidatesComplete) {
  MakeBssf({500, 3}, 300);
  Rng rng(2);
  std::vector<ElementSet> sets;
  for (uint64_t i = 0; i < 200; ++i) {
    sets.push_back(rng.SampleWithoutReplacement(100, 5));
    ASSERT_TRUE(bssf_->Insert(MakeOid(i), sets.back()).ok());
  }
  ElementSet query = rng.SampleWithoutReplacement(100, 40);
  auto result = bssf_->Candidates(QueryKind::kSubset, query);
  ASSERT_TRUE(result.ok());
  std::set<Oid> candidates(result->oids.begin(), result->oids.end());
  for (uint64_t i = 0; i < sets.size(); ++i) {
    if (IsSubset(sets[i], query)) {
      EXPECT_TRUE(candidates.count(MakeOid(i))) << "missing true match " << i;
    }
  }
}

TEST_F(BssfTest, EqualsCandidatesFilterBothDirections) {
  MakeBssf({250, 4}, 200);
  Rng rng(3);
  std::vector<ElementSet> sets;
  for (uint64_t i = 0; i < 100; ++i) {
    sets.push_back(rng.SampleWithoutReplacement(60, 4));
    ASSERT_TRUE(bssf_->Insert(MakeOid(i), sets.back()).ok());
  }
  BitVector query_sig = MakeSetSignature(sets[10], bssf_->config());
  auto slots = bssf_->EqualsCandidateSlots(query_sig);
  ASSERT_TRUE(slots.ok());
  EXPECT_TRUE(std::find(slots->begin(), slots->end(), 10u) != slots->end());
  // Every candidate's signature must equal the query signature.
  for (uint64_t slot : *slots) {
    EXPECT_EQ(MakeSetSignature(sets[slot], bssf_->config()), query_sig);
  }
}

TEST_F(BssfTest, OverlapCandidatesComplete) {
  MakeBssf({250, 3}, 200);
  Rng rng(4);
  std::vector<ElementSet> sets;
  for (uint64_t i = 0; i < 100; ++i) {
    sets.push_back(rng.SampleWithoutReplacement(60, 5));
    ASSERT_TRUE(bssf_->Insert(MakeOid(i), sets.back()).ok());
  }
  ElementSet query = {sets[0][0], sets[50][2]};
  NormalizeSet(&query);
  auto result = bssf_->Candidates(QueryKind::kOverlaps, query);
  ASSERT_TRUE(result.ok());
  std::set<Oid> candidates(result->oids.begin(), result->oids.end());
  for (uint64_t i = 0; i < sets.size(); ++i) {
    if (Overlaps(sets[i], query)) {
      EXPECT_TRUE(candidates.count(MakeOid(i))) << "missing overlap " << i;
    }
  }
}

TEST_F(BssfTest, RemoveHidesObject) {
  MakeBssf({128, 2}, 10);
  ASSERT_TRUE(bssf_->Insert(MakeOid(0), {1}).ok());
  ASSERT_TRUE(bssf_->Insert(MakeOid(1), {1}).ok());
  ASSERT_TRUE(bssf_->Remove(MakeOid(0), {1}).ok());
  auto result = bssf_->Candidates(QueryKind::kSuperset, {1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->oids, std::vector<Oid>{MakeOid(1)});
}

TEST_F(BssfTest, AgreesWithDirectSignatureTest) {
  // BSSF slots must match exactly the slots a sequential signature scan
  // would produce: the two organizations store the same information.
  SignatureConfig config{250, 3};
  MakeBssf(config, 300);
  Rng rng(5);
  std::vector<ElementSet> sets;
  for (uint64_t i = 0; i < 200; ++i) {
    sets.push_back(rng.SampleWithoutReplacement(80, 6));
    ASSERT_TRUE(bssf_->Insert(MakeOid(i), sets.back()).ok());
  }
  ElementSet query = rng.SampleWithoutReplacement(80, 3);
  BitVector query_sig = MakeSetSignature(query, config);
  auto super = bssf_->SupersetCandidateSlots(query_sig);
  ASSERT_TRUE(super.ok());
  std::vector<uint64_t> expected;
  for (uint64_t i = 0; i < sets.size(); ++i) {
    if (MatchesSuperset(MakeSetSignature(sets[i], config), query_sig)) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(*super, expected);

  ElementSet big_query = rng.SampleWithoutReplacement(80, 30);
  BitVector big_sig = MakeSetSignature(big_query, config);
  auto sub = bssf_->SubsetCandidateSlots(big_sig);
  ASSERT_TRUE(sub.ok());
  expected.clear();
  for (uint64_t i = 0; i < sets.size(); ++i) {
    if (MatchesSubset(MakeSetSignature(sets[i], config), big_sig)) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(*sub, expected);
}

}  // namespace
}  // namespace sigsetdb
