#include "storage/page_file.h"

#include <gtest/gtest.h>

#include "storage/storage_manager.h"

namespace sigsetdb {
namespace {

TEST(InMemoryPageFileTest, AllocateGrowsFile) {
  InMemoryPageFile f("t");
  EXPECT_EQ(f.num_pages(), 0u);
  auto p0 = f.Allocate();
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, 0u);
  auto p1 = f.Allocate();
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(f.num_pages(), 2u);
}

TEST(InMemoryPageFileTest, AllocatedPagesAreZeroed) {
  InMemoryPageFile f("t");
  ASSERT_TRUE(f.Allocate().ok());
  Page page;
  page.bytes.fill(0xab);
  ASSERT_TRUE(f.Read(0, &page).ok());
  for (uint8_t b : page.bytes) EXPECT_EQ(b, 0);
}

TEST(InMemoryPageFileTest, WriteReadRoundTrip) {
  InMemoryPageFile f("t");
  ASSERT_TRUE(f.Allocate().ok());
  Page out;
  out.WriteAt<uint64_t>(0, 0xdeadbeefULL);
  out.WriteAt<uint32_t>(kPageSize - 4, 77u);
  ASSERT_TRUE(f.Write(0, out).ok());
  Page in;
  ASSERT_TRUE(f.Read(0, &in).ok());
  EXPECT_EQ(in.ReadAt<uint64_t>(0), 0xdeadbeefULL);
  EXPECT_EQ(in.ReadAt<uint32_t>(kPageSize - 4), 77u);
}

TEST(InMemoryPageFileTest, OutOfRangeAccessFails) {
  InMemoryPageFile f("t");
  Page page;
  EXPECT_EQ(f.Read(0, &page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(f.Write(0, page).code(), StatusCode::kOutOfRange);
}

TEST(InMemoryPageFileTest, StatsCountEveryAccess) {
  InMemoryPageFile f("t");
  ASSERT_TRUE(f.Allocate().ok());
  Page page;
  ASSERT_TRUE(f.Read(0, &page).ok());
  ASSERT_TRUE(f.Read(0, &page).ok());
  ASSERT_TRUE(f.Write(0, page).ok());
  EXPECT_EQ(f.stats().page_reads, 2u);
  EXPECT_EQ(f.stats().page_writes, 1u);
  EXPECT_EQ(f.stats().total(), 3u);
  f.stats().Reset();
  EXPECT_EQ(f.stats().total(), 0u);
}

TEST(InMemoryPageFileTest, FailedAccessDoesNotCount) {
  InMemoryPageFile f("t");
  Page page;
  (void)f.Read(5, &page);
  EXPECT_EQ(f.stats().total(), 0u);
}

TEST(IoStatsTest, DeltaArithmetic) {
  IoStats a{10, 5};
  IoStats b{4, 2};
  IoStats d = a - b;
  EXPECT_EQ(d.page_reads, 6u);
  EXPECT_EQ(d.page_writes, 3u);
  b += d;
  EXPECT_EQ(b.page_reads, 10u);
  EXPECT_EQ(b.page_writes, 5u);
}

TEST(StorageManagerTest, CreateOpenLifecycle) {
  StorageManager mgr;
  auto created = mgr.Create("a");
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(mgr.Create("a").status().code(), StatusCode::kAlreadyExists);
  auto opened = mgr.Open("a");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*created, *opened);
  EXPECT_EQ(mgr.Open("b").status().code(), StatusCode::kNotFound);
  PageFile* b = mgr.CreateOrOpen("b");
  EXPECT_EQ(mgr.CreateOrOpen("b"), b);
}

TEST(StorageManagerTest, AggregatesStatsAndPages) {
  StorageManager mgr;
  PageFile* a = mgr.CreateOrOpen("a");
  PageFile* b = mgr.CreateOrOpen("b");
  ASSERT_TRUE(a->Allocate().ok());
  ASSERT_TRUE(b->Allocate().ok());
  ASSERT_TRUE(b->Allocate().ok());
  Page page;
  ASSERT_TRUE(a->Read(0, &page).ok());
  ASSERT_TRUE(b->Write(1, page).ok());
  IoStats total = mgr.TotalStats();
  EXPECT_EQ(total.page_reads, 1u);
  EXPECT_EQ(total.page_writes, 1u);
  EXPECT_EQ(mgr.TotalPages(), 3u);
  mgr.ResetStats();
  EXPECT_EQ(mgr.TotalStats().total(), 0u);
}

}  // namespace
}  // namespace sigsetdb
