#include "util/bitvector.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

TEST(BitVectorTest, StartsAllZero) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_FALSE(v.AnySet());
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.Test(i));
}

TEST(BitVectorTest, SetClearTest) {
  BitVector v(130);
  v.Set(0);
  v.Set(64);
  v.Set(129);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(64));
  EXPECT_TRUE(v.Test(129));
  EXPECT_FALSE(v.Test(1));
  EXPECT_EQ(v.Count(), 3u);
  v.Clear(64);
  EXPECT_FALSE(v.Test(64));
  EXPECT_EQ(v.Count(), 2u);
}

TEST(BitVectorTest, AssignDispatches) {
  BitVector v(8);
  v.Assign(3, true);
  EXPECT_TRUE(v.Test(3));
  v.Assign(3, false);
  EXPECT_FALSE(v.Test(3));
}

TEST(BitVectorTest, SetAllRespectsTailInvariant) {
  BitVector v(70);  // 6 tail bits in the second word
  v.SetAll();
  EXPECT_EQ(v.Count(), 70u);
  v.ClearAll();
  EXPECT_EQ(v.Count(), 0u);
}

TEST(BitVectorTest, OrAndAndNot) {
  BitVector a(128), b(128);
  a.Set(1);
  a.Set(100);
  b.Set(100);
  b.Set(101);

  BitVector or_ab = a;
  or_ab.OrWith(b);
  EXPECT_TRUE(or_ab.Test(1));
  EXPECT_TRUE(or_ab.Test(100));
  EXPECT_TRUE(or_ab.Test(101));
  EXPECT_EQ(or_ab.Count(), 3u);

  BitVector and_ab = a;
  and_ab.AndWith(b);
  EXPECT_EQ(and_ab.Count(), 1u);
  EXPECT_TRUE(and_ab.Test(100));

  BitVector diff = a;
  diff.AndNotWith(b);
  EXPECT_EQ(diff.Count(), 1u);
  EXPECT_TRUE(diff.Test(1));
}

TEST(BitVectorTest, IsSubsetOf) {
  BitVector small(64), big(64);
  small.Set(5);
  big.Set(5);
  big.Set(9);
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  BitVector empty(64);
  EXPECT_TRUE(empty.IsSubsetOf(small));
}

TEST(BitVectorTest, CountAnd) {
  BitVector a(256), b(256);
  for (size_t i = 0; i < 256; i += 2) a.Set(i);
  for (size_t i = 0; i < 256; i += 4) b.Set(i);
  EXPECT_EQ(a.CountAnd(b), 64u);
}

TEST(BitVectorTest, ForEachSetBitInOrder) {
  BitVector v(200);
  v.Set(3);
  v.Set(63);
  v.Set(64);
  v.Set(199);
  std::vector<size_t> seen;
  v.ForEachSetBit([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{3, 63, 64, 199}));
  EXPECT_EQ(v.SetBits(), seen);
}

TEST(BitVectorTest, ByteRoundTrip) {
  Rng rng(7);
  BitVector v(250);
  for (int i = 0; i < 50; ++i) v.Set(rng.NextBelow(250));
  std::vector<uint8_t> bytes(v.NumBytes());
  v.CopyToBytes(bytes.data());
  BitVector w(250);
  w.LoadFromBytes(bytes.data());
  EXPECT_EQ(v, w);
}

TEST(BitVectorTest, LoadFromBytesMasksTail) {
  // All-ones source must not set bits beyond size().
  std::vector<uint8_t> bytes(32, 0xff);
  BitVector v(250);
  v.LoadFromBytes(bytes.data());
  EXPECT_EQ(v.Count(), 250u);
}

TEST(BitVectorTest, EqualityRequiresSameSize) {
  BitVector a(10), b(11);
  EXPECT_FALSE(a == b);
  BitVector c(10);
  EXPECT_TRUE(a == c);
  c.Set(9);
  EXPECT_FALSE(a == c);
}

// Property sweep: random vectors obey De Morgan-ish subset identities.
class BitVectorPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitVectorPropertyTest, SubsetIffAndNotEmpty) {
  size_t bits = GetParam();
  Rng rng(bits);
  for (int trial = 0; trial < 20; ++trial) {
    BitVector a(bits), b(bits);
    for (size_t i = 0; i < bits / 3 + 1; ++i) {
      a.Set(rng.NextBelow(bits));
      b.Set(rng.NextBelow(bits));
    }
    BitVector diff = a;
    diff.AndNotWith(b);
    EXPECT_EQ(a.IsSubsetOf(b), !diff.AnySet());
    // a ⊆ a∪b and a∩b ⊆ a.
    BitVector uni = a;
    uni.OrWith(b);
    EXPECT_TRUE(a.IsSubsetOf(uni));
    BitVector inter = a;
    inter.AndWith(b);
    EXPECT_TRUE(inter.IsSubsetOf(a));
    // |a∩b| from CountAnd matches materialized intersection.
    EXPECT_EQ(a.CountAnd(b), inter.Count());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorPropertyTest,
                         ::testing::Values(1, 7, 63, 64, 65, 127, 128, 250,
                                           500, 1000, 2500));

// Tail-invariant audit: every mutator must leave the padding bits beyond
// size() zero.  Word-wise kernels (equality, popcount, IsSubsetOf, the
// dispatched SIMD paths) silently assume this, so a single regression here
// corrupts query results without any crash — hence an explicit sweep over
// every mutator at every tail class.
TEST_P(BitVectorPropertyTest, EveryMutatorKeepsPaddingClean) {
  size_t bits = GetParam();
  Rng rng(bits * 31 + 1);
  BitVector other(bits);
  for (size_t i = 0; i < bits / 2 + 1; ++i) other.Set(rng.NextBelow(bits));
  ASSERT_TRUE(other.PaddingIsClean());

  BitVector v(bits);
  EXPECT_TRUE(v.PaddingIsClean()) << "fresh";
  for (int trial = 0; trial < 10; ++trial) {
    size_t i = rng.NextBelow(bits);
    v.Set(i);
    EXPECT_TRUE(v.PaddingIsClean()) << "Set(" << i << ")";
    v.Assign(rng.NextBelow(bits), rng.NextBelow(2) == 0);
    EXPECT_TRUE(v.PaddingIsClean()) << "Assign";
    v.Clear(rng.NextBelow(bits));
    EXPECT_TRUE(v.PaddingIsClean()) << "Clear";
  }
  v.SetAll();
  EXPECT_TRUE(v.PaddingIsClean()) << "SetAll";
  EXPECT_EQ(v.Count(), bits);
  v.OrWith(other);
  EXPECT_TRUE(v.PaddingIsClean()) << "OrWith";
  v.AndWith(other);
  EXPECT_TRUE(v.PaddingIsClean()) << "AndWith";
  v.AndNotWith(other);
  EXPECT_TRUE(v.PaddingIsClean()) << "AndNotWith";
  v.ClearAll();
  EXPECT_TRUE(v.PaddingIsClean()) << "ClearAll";

  // The byte-deserialization path masks an all-ones source down to size().
  std::vector<uint8_t> bytes(v.NumBytes(), 0xff);
  v.LoadFromBytes(bytes.data());
  EXPECT_TRUE(v.PaddingIsClean()) << "LoadFromBytes";
  EXPECT_EQ(v.Count(), bits);
}

// The single-bit accessors assert i < size() precisely because an
// out-of-range Set would park a one in the padding region.  Death tests
// document that the assert fires; they compile away with NDEBUG (release
// builds), where the sanitizer configurations pick them back up.
#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST(BitVectorDeathTest, SetPastSizeAsserts) {
  BitVector v(70);
  EXPECT_DEATH(v.Set(70), "corrupts padding");
  EXPECT_DEATH(v.Set(128), "corrupts padding");
}

TEST(BitVectorDeathTest, TestAndClearPastSizeAssert) {
  BitVector v(70);
  EXPECT_DEATH((void)v.Test(70), "out of range");
  EXPECT_DEATH(v.Clear(71), "out of range");
}
#endif  // GTEST_HAS_DEATH_TEST && !defined(NDEBUG)

}  // namespace
}  // namespace sigsetdb
