// Unit tests for the failpoint registry (src/util/failpoint.h), the
// MergeWorkerStatuses combiner, and the regression test for the BSSF
// parallel slice scan's error merging: a fault hitting several workers at
// once must surface the lowest worker's error, annotated with how many
// other workers also failed — deterministically, run after run.

#include "util/failpoint.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sig/bssf.h"
#include "storage/storage_manager.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sigsetdb {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedSiteIsFree) {
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  // Evaluating a never-armed name is valid and returns OK.
  EXPECT_TRUE(FailpointRegistry::Instance().Evaluate("no.such.site").ok());
  EXPECT_EQ(FailpointRegistry::Instance().HitCount("no.such.site"), 0u);
}

TEST_F(FailpointTest, CountdownFiresOnNthEvaluation) {
  auto& reg = FailpointRegistry::Instance();
  reg.ArmCountdown("t.count", 3);
  EXPECT_TRUE(FailpointRegistry::AnyArmed());
  EXPECT_TRUE(reg.Evaluate("t.count").ok());
  EXPECT_TRUE(reg.Evaluate("t.count").ok());
  Status fired = reg.Evaluate("t.count");
  EXPECT_EQ(fired.code(), StatusCode::kIoError);
  EXPECT_NE(fired.message().find("t.count"), std::string::npos);
  // Non-sticky: fires exactly once, then the site disarms itself.  The
  // post-disarm evaluation takes the free fast path, so it isn't counted.
  EXPECT_TRUE(reg.Evaluate("t.count").ok());
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  EXPECT_EQ(reg.HitCount("t.count"), 3u);
}

TEST_F(FailpointTest, StickyCountdownKeepsFiring) {
  auto& reg = FailpointRegistry::Instance();
  reg.ArmCountdown("t.sticky", 1, /*sticky=*/true, StatusCode::kCorruption);
  for (int i = 0; i < 5; ++i) {
    Status s = reg.Evaluate("t.sticky");
    EXPECT_EQ(s.code(), StatusCode::kCorruption);
  }
  EXPECT_TRUE(FailpointRegistry::AnyArmed());
  reg.Disarm("t.sticky");
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  EXPECT_TRUE(reg.Evaluate("t.sticky").ok());
}

TEST_F(FailpointTest, ProbabilityIsDeterministicForFixedSeed) {
  auto& reg = FailpointRegistry::Instance();
  auto pattern = [&reg](uint64_t seed) {
    reg.ArmProbability("t.prob", 0.3, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!reg.Evaluate("t.prob").ok());
    reg.Disarm("t.prob");
    return fired;
  };
  std::vector<bool> a = pattern(99);
  std::vector<bool> b = pattern(99);
  EXPECT_EQ(a, b);
  // Some fire, some don't (p = 0.3 over 64 draws).
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST_F(FailpointTest, DisarmAllClearsEverySite) {
  auto& reg = FailpointRegistry::Instance();
  reg.ArmCountdown("t.a", 1, /*sticky=*/true);
  reg.ArmCountdown("t.b", 1, /*sticky=*/true);
  reg.ArmProbability("t.c", 1.0, 7);
  EXPECT_TRUE(FailpointRegistry::AnyArmed());
  reg.DisarmAll();
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  EXPECT_TRUE(reg.Evaluate("t.a").ok());
  EXPECT_TRUE(reg.Evaluate("t.b").ok());
  EXPECT_TRUE(reg.Evaluate("t.c").ok());
}

TEST_F(FailpointTest, MacroPropagatesFromArmedSite) {
  auto& reg = FailpointRegistry::Instance();
  reg.ArmCountdown("t.macro", 1);
  auto through_macro = []() -> Status {
    SIGSET_FAILPOINT("t.macro");
    return Status::OK();
  };
  EXPECT_EQ(through_macro().code(), StatusCode::kIoError);
  EXPECT_TRUE(through_macro().ok());
}

TEST(MergeWorkerStatusesTest, AllOkIsOk) {
  EXPECT_TRUE(MergeWorkerStatuses({}).ok());
  EXPECT_TRUE(
      MergeWorkerStatuses({Status::OK(), Status::OK(), Status::OK()}).ok());
}

TEST(MergeWorkerStatusesTest, SingleFailureReturnedVerbatim) {
  Status merged = MergeWorkerStatuses(
      {Status::OK(), Status::IoError("disk gone"), Status::OK()});
  EXPECT_EQ(merged.code(), StatusCode::kIoError);
  EXPECT_EQ(merged.message(), "disk gone");
}

TEST(MergeWorkerStatusesTest, MultipleFailuresKeepLowestWorker) {
  Status merged = MergeWorkerStatuses({Status::OK(), Status::IoError("first"),
                                       Status::Corruption("second"),
                                       Status::IoError("third")});
  // Lowest failing worker wins: its code and message lead, and the
  // annotation records the worker index and how many others failed.
  EXPECT_EQ(merged.code(), StatusCode::kIoError);
  EXPECT_NE(merged.message().find("first"), std::string::npos);
  EXPECT_NE(merged.message().find("worker 1"), std::string::npos);
  EXPECT_NE(merged.message().find("+2 more worker failures"),
            std::string::npos);
  EXPECT_EQ(merged.message().find("second"), std::string::npos);
}

// Regression test for the parallel BSSF slice scan: when a fault hits every
// worker of a 4-thread scan, the merged status must be (a) the lowest
// worker's — the one scanning the first slice range — and (b) identical
// across repeated runs, regardless of which worker thread finished first.
class BssfParallelMergeTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kF = 64;

  BssfParallelMergeTest() : pool_(4) {
    ctx_.pool = &pool_;
    auto bssf = BitSlicedSignatureFile::Create(
        SignatureConfig{kF, 2}, /*capacity=*/256,
        storage_.CreateOrOpen("slices"), storage_.CreateOrOpen("oid"),
        BssfInsertMode::kSparse);
    EXPECT_TRUE(bssf.ok());
    bssf_ = std::move(*bssf);
    Rng rng(7);
    for (int i = 0; i < 32; ++i) {
      ElementSet set = rng.SampleWithoutReplacement(200, 6);
      EXPECT_TRUE(
          bssf_->Insert(Oid::FromLocation(static_cast<PageId>(i), 0), set)
              .ok());
    }
  }

  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  StorageManager storage_;
  ThreadPool pool_;
  ParallelExecutionContext ctx_;
  std::unique_ptr<BitSlicedSignatureFile> bssf_;
};

TEST_F(BssfParallelMergeTest, MergedStatusIsLowestWorkerAndDeterministic) {
  // A query signature with enough set bits that all 4 workers get slices.
  Rng rng(11);
  ElementSet query = rng.SampleWithoutReplacement(200, 8);
  BitVector query_sig = MakeSetSignature(query, bssf_->config());
  ASSERT_GE(query_sig.Count(), 8u);

  // Sticky: every CombineSlice call in every worker fails.
  std::string first_message;
  for (int run = 0; run < 5; ++run) {
    FailpointRegistry::Instance().ArmCountdown("bssf.combine_slice", 1,
                                               /*sticky=*/true);
    auto slots = bssf_->SupersetCandidateSlots(query_sig, &ctx_);
    FailpointRegistry::Instance().DisarmAll();
    ASSERT_FALSE(slots.ok());
    const Status& s = slots.status();
    EXPECT_EQ(s.code(), StatusCode::kIoError);
    // Worker 0 scans the first slice range, so the surfaced error is its
    // first slice — the lowest-numbered scanned slice overall.
    uint32_t first_slice = 0;
    while (first_slice < kF && !query_sig.Test(first_slice)) ++first_slice;
    EXPECT_NE(
        s.message().find("(slice " + std::to_string(first_slice) + ")"),
        std::string::npos)
        << s.message();
    EXPECT_NE(s.message().find("worker 0"), std::string::npos) << s.message();
    EXPECT_NE(s.message().find("+3 more worker failures"), std::string::npos)
        << s.message();
    if (run == 0) {
      first_message = s.message();
    } else {
      EXPECT_EQ(s.message(), first_message);  // deterministic merge
    }
  }

  // With the failpoint cleared the same scan succeeds again.
  EXPECT_TRUE(bssf_->SupersetCandidateSlots(query_sig, &ctx_).ok());
}

}  // namespace
}  // namespace sigsetdb
