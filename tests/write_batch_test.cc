// The batched write path (DESIGN.md §11): WriteBatch grouping, slot reuse
// after deletes, compaction, and the headline amortization property — a
// 100-insert batch into BSSF writes >= 5x fewer pages than 100 individual
// inserts at the paper's Table 2 parameters.

#include "db/write_batch.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "db/set_index.h"
#include "db/synchronized_set_index.h"
#include "model/cost_batch.h"
#include "sig/bssf.h"
#include "sig/ssf.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace sigsetdb {
namespace {

SetIndex::Options SmallOptions() {
  SetIndex::Options options;
  options.maintain_ssf = true;
  options.maintain_bssf = true;
  options.maintain_nix = true;
  options.sig = {128, 2};
  options.capacity = 4096;
  options.domain_estimate = 200;
  return options;
}

std::vector<ElementSet> SampleSets(int n, uint64_t domain, uint64_t dt,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<ElementSet> sets;
  for (int i = 0; i < n; ++i) {
    sets.push_back(rng.SampleWithoutReplacement(domain, dt));
  }
  return sets;
}

// ---------------------------------------------------------------------------
// Differential: one index mutated through singleton Insert/Delete calls, a
// second through ApplyBatch, must answer every query identically.
// ---------------------------------------------------------------------------

TEST(WriteBatchTest, BatchMatchesSingletonOperations) {
  StorageManager storage_a, storage_b;
  auto a = SetIndex::Create(&storage_a, "a", SmallOptions());
  auto b = SetIndex::Create(&storage_b, "b", SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());

  std::vector<ElementSet> sets = SampleSets(120, 200, 6, 7);
  std::vector<Oid> oids_a, oids_b;
  for (const ElementSet& set : sets) {
    oids_a.push_back(*(*a)->Insert(set));
  }
  {
    WriteBatch batch;
    for (const ElementSet& set : sets) batch.Insert(set);
    auto got = (*b)->ApplyBatch(batch);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    oids_b = *got;
    ASSERT_EQ(oids_b.size(), sets.size());
  }

  // Delete every third object: singleton on a, batched on b.
  WriteBatch deletes;
  for (size_t i = 0; i < sets.size(); i += 3) {
    ASSERT_TRUE((*a)->Delete(oids_a[i]).ok());
    deletes.Delete(oids_b[i]);
  }
  ASSERT_TRUE((*b)->ApplyBatch(deletes).ok());

  // And insert a second wave so the batch path exercises slot reuse.
  std::vector<ElementSet> wave2 = SampleSets(30, 200, 6, 8);
  for (const ElementSet& set : wave2) ASSERT_TRUE((*a)->Insert(set).ok());
  WriteBatch batch2;
  for (const ElementSet& set : wave2) batch2.Insert(set);
  ASSERT_TRUE((*b)->ApplyBatch(batch2).ok());

  EXPECT_EQ((*a)->num_objects(), (*b)->num_objects());
  Rng rng(9);
  for (QueryKind kind :
       {QueryKind::kSuperset, QueryKind::kSubset, QueryKind::kProperSuperset,
        QueryKind::kProperSubset, QueryKind::kEquals, QueryKind::kOverlaps}) {
    for (int t = 0; t < 5; ++t) {
      ElementSet query = kind == QueryKind::kEquals
                             ? sets[(t * 17) % sets.size()]
                             : rng.SampleWithoutReplacement(200, 3 + t);
      for (PlanMode mode :
           {PlanMode::kForceSsf, PlanMode::kForceBssf, PlanMode::kForceNix}) {
        auto ra = (*a)->Query(kind, query, mode);
        auto rb = (*b)->Query(kind, query, mode);
        ASSERT_TRUE(ra.ok() && rb.ok()) << QueryKindName(kind);
        std::vector<Oid> va = ra->result.oids, vb = rb->result.oids;
        std::sort(va.begin(), va.end());
        std::sort(vb.begin(), vb.end());
        // OIDs differ between the two indexes (different insertion orders
        // after reuse), so compare the multisets of stored set values.
        ASSERT_EQ(va.size(), vb.size()) << QueryKindName(kind);
        std::vector<ElementSet> hits_a, hits_b;
        for (Oid oid : va) hits_a.push_back((*a)->Get(oid)->set_value);
        for (Oid oid : vb) hits_b.push_back((*b)->Get(oid)->set_value);
        std::sort(hits_a.begin(), hits_a.end());
        std::sort(hits_b.begin(), hits_b.end());
        EXPECT_EQ(hits_a, hits_b) << QueryKindName(kind);
      }
    }
  }
}

TEST(WriteBatchTest, MixedBatchDeletesAndInsertsInOneCall) {
  StorageManager storage;
  auto index = SetIndex::Create(&storage, "mixed", SmallOptions());
  ASSERT_TRUE(index.ok());
  std::vector<ElementSet> sets = SampleSets(50, 200, 6, 11);
  WriteBatch seed_batch;
  for (const ElementSet& set : sets) seed_batch.Insert(set);
  auto oids = (*index)->ApplyBatch(seed_batch);
  ASSERT_TRUE(oids.ok());

  WriteBatch mixed;
  for (int i = 0; i < 20; ++i) mixed.Delete((*oids)[i]);
  std::vector<ElementSet> fresh = SampleSets(25, 200, 6, 12);
  for (const ElementSet& set : fresh) mixed.Insert(set);
  auto new_oids = (*index)->ApplyBatch(mixed);
  ASSERT_TRUE(new_oids.ok()) << new_oids.status().ToString();
  EXPECT_EQ(new_oids->size(), 25u);
  EXPECT_EQ((*index)->num_objects(), 55u);

  // Deleted objects are gone, new ones visible.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ((*index)->Get((*oids)[i]).status().code(),
              StatusCode::kNotFound);
  }
  for (size_t i = 0; i < new_oids->size(); ++i) {
    auto got = (*index)->Get((*new_oids)[i]);
    ASSERT_TRUE(got.ok());
    ElementSet expected = fresh[i];
    NormalizeSet(&expected);
    EXPECT_EQ(got->set_value, expected);
  }
}

TEST(WriteBatchTest, EmptyBatchIsANoOp) {
  StorageManager storage;
  auto index = SetIndex::Create(&storage, "empty", SmallOptions());
  ASSERT_TRUE(index.ok());
  WriteBatch batch;
  auto got = (*index)->ApplyBatch(batch);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
  EXPECT_EQ((*index)->num_objects(), 0u);
}

// ---------------------------------------------------------------------------
// The headline amortization property at the paper's Table 2 parameters.
// ---------------------------------------------------------------------------

TEST(WriteBatchTest, BssfBatchWritesFiveTimesFewerSlicePages) {
  const SignatureConfig sig{250, 2};
  const int kN = 100;
  std::vector<ElementSet> sets = SampleSets(kN, 13000, 10, 21);

  StorageManager storage;
  PageFile* single_slices = storage.CreateOrOpen("single.slices");
  auto single = BitSlicedSignatureFile::Create(
      sig, 1024, single_slices, storage.CreateOrOpen("single.oid"),
      BssfInsertMode::kSparse);
  ASSERT_TRUE(single.ok());
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(
        (*single)
            ->Insert(Oid::FromLocation(static_cast<PageId>(i), 0), sets[i])
            .ok());
  }
  const uint64_t singleton_slice_writes = single_slices->stats().page_writes;

  PageFile* batch_slices = storage.CreateOrOpen("batch.slices");
  auto batched = BitSlicedSignatureFile::Create(
      sig, 1024, batch_slices, storage.CreateOrOpen("batch.oid"),
      BssfInsertMode::kSparse);
  ASSERT_TRUE(batched.ok());
  std::vector<BatchOp> ops;
  for (int i = 0; i < kN; ++i) {
    ops.push_back(BatchOp{BatchOp::Kind::kInsert,
                          Oid::FromLocation(static_cast<PageId>(i), 0),
                          sets[i]});
  }
  ASSERT_TRUE((*batched)->ApplyBatch(ops).ok());
  const uint64_t batch_slice_writes = batch_slices->stats().page_writes;

  // ISSUE acceptance: >= 5x fewer slice-page writes.  At F=250, m=2,
  // Dt=10 the singleton path pays ~m_t = 19 slice RMWs per insert (~1900
  // total) while the batch writes each dirty slice page once (<= 250).
  ASSERT_GT(batch_slice_writes, 0u);
  EXPECT_GE(singleton_slice_writes, 5 * batch_slice_writes)
      << "singleton=" << singleton_slice_writes
      << " batch=" << batch_slice_writes;

  // The measured amortized cost tracks the model formula (slice writes
  // plus OID-page writes, per operation).
  DatabaseParams db;  // paper defaults: V=13000, P=4096
  const double predicted =
      BssfBatchInsertCostSparse({sig.f, sig.m}, db, 10, kN);
  const double measured =
      static_cast<double>(batch_slice_writes + 1) / kN;  // + 1 OID page
  EXPECT_NEAR(measured, predicted, 0.20 * predicted)
      << "measured=" << measured << " predicted=" << predicted;

  // Both populations answer queries identically.
  for (int t = 0; t < 10; ++t) {
    ElementSet query = {sets[t][0], sets[t][3]};
    NormalizeSet(&query);
    auto ca = (*single)->Candidates(QueryKind::kSuperset, query);
    auto cb = (*batched)->Candidates(QueryKind::kSuperset, query);
    ASSERT_TRUE(ca.ok() && cb.ok());
    EXPECT_EQ(ca->oids, cb->oids);
  }
}

TEST(WriteBatchTest, SsfBatchAppendsPageAtATime) {
  const SignatureConfig sig{250, 2};
  const int kN = 100;
  std::vector<ElementSet> sets = SampleSets(kN, 13000, 10, 22);
  StorageManager storage;
  auto ssf = SequentialSignatureFile::Create(
      sig, storage.CreateOrOpen("ssf.sig"), storage.CreateOrOpen("ssf.oid"));
  ASSERT_TRUE(ssf.ok());
  std::vector<BatchOp> ops;
  for (int i = 0; i < kN; ++i) {
    ops.push_back(BatchOp{BatchOp::Kind::kInsert,
                          Oid::FromLocation(static_cast<PageId>(i), 0),
                          sets[i]});
  }
  storage.ResetStats();
  ASSERT_TRUE((*ssf)->ApplyBatch(ops).ok());
  // 100 signatures fit one 131-slot page; 100 OIDs fit one 512-slot page.
  EXPECT_EQ(storage.TotalStats().page_writes, 2u);
  EXPECT_EQ((*ssf)->num_signatures(), static_cast<uint64_t>(kN));
}

// ---------------------------------------------------------------------------
// Slot lifecycle: deletes free slots, inserts reuse them, files stop
// growing under churn.
// ---------------------------------------------------------------------------

TEST(WriteBatchTest, ChurnReusesSlotsWithoutFileGrowth) {
  StorageManager storage;
  auto index = SetIndex::Create(&storage, "churn", SmallOptions());
  ASSERT_TRUE(index.ok());
  std::vector<ElementSet> sets = SampleSets(200, 200, 6, 31);
  WriteBatch seed_batch;
  for (const ElementSet& set : sets) seed_batch.Insert(set);
  auto oids = (*index)->ApplyBatch(seed_batch);
  ASSERT_TRUE(oids.ok());

  const uint64_t sigs_before = (*index)->ssf()->num_signatures();
  const uint64_t ssf_pages_before = (*index)->SsfPages();
  std::vector<Oid> live = *oids;
  Rng rng(32);
  for (int round = 0; round < 5; ++round) {
    WriteBatch batch;
    // Delete 40 random live objects and insert 40 fresh ones.
    for (int i = 0; i < 40; ++i) {
      size_t pick = rng.NextBelow(live.size());
      batch.Delete(live[pick]);
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    }
    std::vector<ElementSet> fresh =
        SampleSets(40, 200, 6, 100 + static_cast<uint64_t>(round));
    for (const ElementSet& set : fresh) batch.Insert(set);
    auto new_oids = (*index)->ApplyBatch(batch);
    ASSERT_TRUE(new_oids.ok()) << new_oids.status().ToString();
    live.insert(live.end(), new_oids->begin(), new_oids->end());
  }

  // Every round freed 40 slots before claiming 40, so the high-water mark
  // and the file sizes must be exactly where they started.
  EXPECT_EQ((*index)->ssf()->num_signatures(), sigs_before);
  EXPECT_EQ((*index)->bssf()->num_signatures(), sigs_before);
  EXPECT_EQ((*index)->SsfPages(), ssf_pages_before);
  EXPECT_EQ((*index)->ssf()->num_live(), 200u);
  EXPECT_EQ((*index)->num_objects(), 200u);
}

TEST(WriteBatchTest, SingletonInsertReusesFreedSlot) {
  StorageManager storage;
  auto index = SetIndex::Create(&storage, "reuse1", SmallOptions());
  ASSERT_TRUE(index.ok());
  std::vector<ElementSet> sets = SampleSets(20, 200, 6, 33);
  std::vector<Oid> oids;
  for (const ElementSet& set : sets) oids.push_back(*(*index)->Insert(set));
  const uint64_t sigs_before = (*index)->ssf()->num_signatures();
  ASSERT_TRUE((*index)->Delete(oids[5]).ok());
  EXPECT_EQ((*index)->ssf()->num_live(), 19u);
  auto replacement = (*index)->Insert(SampleSets(1, 200, 6, 34)[0]);
  ASSERT_TRUE(replacement.ok());
  // The freed slot was reused: no growth.
  EXPECT_EQ((*index)->ssf()->num_signatures(), sigs_before);
  EXPECT_EQ((*index)->bssf()->num_signatures(), sigs_before);
  // A reused BSSF column must not leak the old signature's bits: subset
  // queries (whose candidates are OR-accumulated misses) stay exact.
  auto got = (*index)->Query(QueryKind::kEquals, (*index)
                                 ->Get(*replacement)
                                 ->set_value);
  ASSERT_TRUE(got.ok());
  std::vector<Oid> hits = got->result.oids;
  EXPECT_NE(std::find(hits.begin(), hits.end(), *replacement), hits.end());
}

// ---------------------------------------------------------------------------
// The SSF Remove tripwire (paranoid checks).
// ---------------------------------------------------------------------------

TEST(WriteBatchTest, SsfRemoveTripwireCatchesWrongSetValue) {
  StorageManager storage;
  auto ssf = SequentialSignatureFile::Create(
      {128, 2}, storage.CreateOrOpen("trip.sig"),
      storage.CreateOrOpen("trip.oid"));
  ASSERT_TRUE(ssf.ok());
  (*ssf)->set_paranoid_checks(true);
  Oid oid = Oid::FromLocation(1, 0);
  ASSERT_TRUE((*ssf)->Insert(oid, {1, 2, 3}).ok());
  // Removing with a set value whose signature does not match the stored
  // slot trips the debug check instead of silently corrupting free-slot
  // bookkeeping.
  Status status = (*ssf)->Remove(oid, {90, 91, 92});
  EXPECT_EQ(status.code(), StatusCode::kInternal)
      << status.ToString();
  // With the tripwire off, the same call is accepted (release behaviour).
  ASSERT_TRUE((*ssf)->Insert(Oid::FromLocation(2, 0), {4, 5, 6}).ok());
  (*ssf)->set_paranoid_checks(false);
  EXPECT_TRUE((*ssf)->Remove(Oid::FromLocation(2, 0), {80, 81, 82}).ok());
}

// ---------------------------------------------------------------------------
// Compaction.
// ---------------------------------------------------------------------------

TEST(WriteBatchTest, CompactRestoresModelStoragePrediction) {
  StorageManager storage;
  SetIndex::Options options = SmallOptions();
  auto index = SetIndex::Create(&storage, "compact", options);
  ASSERT_TRUE(index.ok());
  // 600 sets at F=128 span 3 signature pages + 2 OID pages; the 300
  // survivors need only 2 + 1, so compaction must visibly shrink the file.
  std::vector<ElementSet> sets = SampleSets(600, 200, 6, 41);
  WriteBatch seed_batch;
  for (const ElementSet& set : sets) seed_batch.Insert(set);
  auto oids = (*index)->ApplyBatch(seed_batch);
  ASSERT_TRUE(oids.ok());

  // Delete half.
  WriteBatch deletes;
  for (size_t i = 0; i < oids->size(); i += 2) deletes.Delete((*oids)[i]);
  ASSERT_TRUE((*index)->ApplyBatch(deletes).ok());
  EXPECT_EQ((*index)->ssf()->num_live(), 300u);
  // Tombstones still occupy slots pre-compaction.
  EXPECT_EQ((*index)->ssf()->num_signatures(), 600u);
  const uint64_t ssf_pages_sparse = (*index)->SsfPages();

  ASSERT_TRUE((*index)->Compact().ok());
  EXPECT_EQ((*index)->generation(), 1u);
  EXPECT_EQ((*index)->ssf()->num_signatures(), 300u);
  EXPECT_EQ((*index)->bssf()->num_signatures(), 300u);

  // SSF storage/scan pages match the model's live-count prediction.
  const uint64_t spp =
      static_cast<uint64_t>(kPageSize) * 8 / options.sig.f;  // sigs per page
  const uint64_t oid_per_page = kPageSize / 8;
  const uint64_t expected_pages =
      (300 + spp - 1) / spp + (300 + oid_per_page - 1) / oid_per_page;
  EXPECT_EQ((*index)->SsfPages(), expected_pages);
  EXPECT_LT((*index)->SsfPages(), ssf_pages_sparse);

  // Queries over the compacted index agree with brute force.
  std::vector<ElementSet> live_sets;
  for (size_t i = 1; i < oids->size(); i += 2) {
    live_sets.push_back((*index)->Get((*oids)[i])->set_value);
  }
  ASSERT_EQ(live_sets.size(), 300u);
  for (int t = 0; t < 8; ++t) {
    ElementSet query = {live_sets[t * 3][0], live_sets[t * 3][2]};
    NormalizeSet(&query);
    size_t expected = 0;
    for (const ElementSet& set : live_sets) {
      StoredObject probe;
      probe.set_value = set;
      if (SatisfiesSuperset(probe, query)) ++expected;
    }
    for (PlanMode mode :
         {PlanMode::kForceSsf, PlanMode::kForceBssf, PlanMode::kForceNix}) {
      auto result = (*index)->Query(QueryKind::kSuperset, query, mode);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->result.oids.size(), expected);
    }
  }
}

TEST(WriteBatchTest, CompactedIndexSurvivesReopen) {
  StorageManager storage;
  SetIndex::Options options = SmallOptions();
  std::vector<Oid> live;
  std::vector<ElementSet> live_sets;
  {
    auto index = SetIndex::Create(&storage, "reopen", options);
    ASSERT_TRUE(index.ok());
    std::vector<ElementSet> sets = SampleSets(120, 200, 6, 51);
    WriteBatch batch;
    for (const ElementSet& set : sets) batch.Insert(set);
    auto oids = (*index)->ApplyBatch(batch);
    ASSERT_TRUE(oids.ok());
    WriteBatch deletes;
    for (size_t i = 0; i < oids->size(); ++i) {
      if (i % 3 == 0) {
        deletes.Delete((*oids)[i]);
      } else {
        live.push_back((*oids)[i]);
        ElementSet n = sets[i];
        NormalizeSet(&n);
        live_sets.push_back(n);
      }
    }
    ASSERT_TRUE((*index)->ApplyBatch(deletes).ok());
    ASSERT_TRUE((*index)->Compact().ok());
    EXPECT_EQ((*index)->generation(), 1u);
    // Compact() checkpoints, so the index is immediately reopenable.
  }
  auto reopened = SetIndex::Open(&storage, "reopen", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->generation(), 1u);
  EXPECT_EQ((*reopened)->ssf()->num_signatures(), live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    auto got = (*reopened)->Get(live[i]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->set_value, live_sets[i]);
  }
  // And it keeps answering queries and accepting writes.
  auto result =
      (*reopened)->Query(QueryKind::kSuperset, {live_sets[0][0]});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->result.oids.empty());
  ASSERT_TRUE((*reopened)->Insert(SampleSets(1, 200, 6, 52)[0]).ok());
}

// ---------------------------------------------------------------------------
// Concurrency: batches behind SynchronizedSetIndex, queries racing them.
// ---------------------------------------------------------------------------

TEST(WriteBatchTest, SerialAndFourThreadIndexesAgreeAfterBatches) {
  SetIndex::Options serial_options = SmallOptions();
  SetIndex::Options mt_options = SmallOptions();
  mt_options.num_threads = 4;
  StorageManager storage_a, storage_b;
  auto a = SetIndex::Create(&storage_a, "serial", serial_options);
  auto b = SetIndex::Create(&storage_b, "mt", mt_options);
  ASSERT_TRUE(a.ok() && b.ok());

  std::vector<ElementSet> sets = SampleSets(150, 200, 6, 61);
  WriteBatch batch;
  for (const ElementSet& set : sets) batch.Insert(set);
  auto oids_a = (*a)->ApplyBatch(batch);
  auto oids_b = (*b)->ApplyBatch(batch);
  ASSERT_TRUE(oids_a.ok() && oids_b.ok());
  WriteBatch deletes_a, deletes_b;
  for (size_t i = 0; i < oids_a->size(); i += 4) {
    deletes_a.Delete((*oids_a)[i]);
    deletes_b.Delete((*oids_b)[i]);
  }
  ASSERT_TRUE((*a)->ApplyBatch(deletes_a).ok());
  ASSERT_TRUE((*b)->ApplyBatch(deletes_b).ok());

  Rng rng(62);
  for (int t = 0; t < 10; ++t) {
    ElementSet query = rng.SampleWithoutReplacement(200, 2 + t % 4);
    auto ra = (*a)->Query(QueryKind::kSuperset, query);
    auto rb = (*b)->Query(QueryKind::kSuperset, query);
    ASSERT_TRUE(ra.ok() && rb.ok());
    std::vector<Oid> va = ra->result.oids, vb = rb->result.oids;
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    EXPECT_EQ(va, vb);
    EXPECT_EQ(ra->page_accesses, rb->page_accesses);
  }
}

TEST(WriteBatchTest, ConcurrentQueriesDuringBatchesSeeConsistentStates) {
  StorageManager storage;
  auto created = SynchronizedSetIndex::Create(&storage, "sync", SmallOptions());
  ASSERT_TRUE(created.ok());
  SynchronizedSetIndex& index = **created;
  std::vector<ElementSet> sets = SampleSets(100, 200, 6, 71);
  WriteBatch seed_batch;
  for (const ElementSet& set : sets) seed_batch.Insert(set);
  auto seed_oids = index.ApplyBatch(seed_batch);
  ASSERT_TRUE(seed_oids.ok());

  // Writer: rounds of delete-20 + insert-20 batches, then a compaction.
  // Readers: superset queries; every answer must be internally consistent
  // (batches apply atomically under the wrapper's mutex, so a query sees
  // 100 live objects at all times).
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    std::vector<Oid> live = *seed_oids;
    Rng rng(72);
    for (int round = 0; round < 10; ++round) {
      WriteBatch batch;
      for (int i = 0; i < 20; ++i) {
        size_t pick = rng.NextBelow(live.size());
        batch.Delete(live[pick]);
        live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      }
      std::vector<ElementSet> fresh =
          SampleSets(20, 200, 6, 300 + static_cast<uint64_t>(round));
      for (const ElementSet& set : fresh) batch.Insert(set);
      auto new_oids = index.ApplyBatch(batch);
      if (!new_oids.ok()) {
        ++failures;
        break;
      }
      live.insert(live.end(), new_oids->begin(), new_oids->end());
      if (round == 5 && !index.Compact().ok()) ++failures;
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(80 + static_cast<uint64_t>(r));
      while (!stop) {
        ElementSet query = rng.SampleWithoutReplacement(200, 2);
        auto result = index.Query(QueryKind::kSuperset, query);
        if (!result.ok()) {
          ++failures;
          break;
        }
        if (index.num_objects() != 100) ++failures;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(index.num_objects(), 100u);
}

}  // namespace
}  // namespace sigsetdb
