// Concurrency stress for the sharded CachedPageFile.  Many threads read
// (and write) through one shared cache; the invariants checked are the
// ones parallel slice scans rely on:
//   * logical stats count every access exactly once (atomic counters),
//   * sum over shards of (hits + misses) == logical reads,
//   * page contents never tear (each page carries a self-identifying
//     pattern verified on every read).
// Run under -DSIGSET_SANITIZE=thread to turn data races into failures
// (tools/run_sanitizers.sh does this).

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "storage/fault_injecting_page_file.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

// Fills `page` with a pattern derived from `id` so torn reads are
// detectable.
void StampPage(Page* page, PageId id, uint8_t salt) {
  uint32_t word = id * 2654435761u + salt;
  for (size_t i = 0; i + 4 <= kPageSize; i += 4) {
    std::memcpy(page->data() + i, &word, 4);
  }
}

bool CheckPage(const Page& page, PageId id, uint8_t salt) {
  uint32_t expected = id * 2654435761u + salt;
  for (size_t i = 0; i + 4 <= kPageSize; i += 4) {
    uint32_t got;
    std::memcpy(&got, page.data() + i, 4);
    if (got != expected) return false;
  }
  return true;
}

class ShardedBufferPoolTest : public ::testing::Test {
 protected:
  static constexpr PageId kNumPages = 64;

  void Populate(PageFile* file, uint8_t salt) {
    Page page;
    for (PageId id = 0; id < kNumPages; ++id) {
      ASSERT_TRUE(file->Allocate().ok());
      StampPage(&page, id, salt);
      ASSERT_TRUE(file->Write(id, page).ok());
    }
    file->stats().Reset();
  }
};

TEST_F(ShardedBufferPoolTest, CapacitySplitsAcrossShards) {
  InMemoryPageFile base("base");
  Populate(&base, 0);
  CachedPageFile cache(&base, /*capacity=*/10, /*num_shards=*/4);
  EXPECT_EQ(cache.num_shards(), 4u);
  // All kNumPages pages flow through; only ~10 stay cached, but every
  // access is counted and attributed to exactly one shard.
  Page page;
  for (PageId id = 0; id < kNumPages; ++id) {
    ASSERT_TRUE(cache.Read(id, &page).ok());
    EXPECT_TRUE(CheckPage(page, id, 0));
  }
  EXPECT_EQ(cache.stats().reads(), kNumPages);
  EXPECT_EQ(cache.hits() + cache.misses(), kNumPages);
  uint64_t per_shard = 0;
  for (size_t s = 0; s < cache.num_shards(); ++s) {
    per_shard += cache.shard_hits(s) + cache.shard_misses(s);
  }
  EXPECT_EQ(per_shard, kNumPages);
}

TEST_F(ShardedBufferPoolTest, SingleShardKeepsGlobalLruSemantics) {
  // The default single-shard configuration must behave as one global LRU —
  // the pre-sharding contract (buffer_pool_test.cc pins the details; this
  // is the cross-check from the sharded API surface).
  InMemoryPageFile base("base");
  Populate(&base, 0);
  CachedPageFile cache(&base, /*capacity=*/2);
  EXPECT_EQ(cache.num_shards(), 1u);
  Page page;
  ASSERT_TRUE(cache.Read(0, &page).ok());
  ASSERT_TRUE(cache.Read(1, &page).ok());
  ASSERT_TRUE(cache.Read(0, &page).ok());  // 0 now MRU
  ASSERT_TRUE(cache.Read(2, &page).ok());  // evicts 1
  ASSERT_TRUE(cache.Read(0, &page).ok());  // still cached
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST_F(ShardedBufferPoolTest, ConcurrentReadersKeepStatsExact) {
  InMemoryPageFile base("base");
  Populate(&base, 0);
  CachedPageFile cache(&base, /*capacity=*/32, /*num_shards=*/4);

  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 20000;
  std::vector<std::thread> threads;
  std::vector<int> bad_pages(kThreads, 0);
  std::vector<int> failed_reads(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      Page page;
      for (int i = 0; i < kReadsPerThread; ++i) {
        PageId id = static_cast<PageId>(rng.NextBelow(kNumPages));
        if (!cache.Read(id, &page).ok()) {
          ++failed_reads[t];
          continue;
        }
        if (!CheckPage(page, id, 0)) ++bad_pages[t];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failed_reads[t], 0) << "thread " << t;
    EXPECT_EQ(bad_pages[t], 0) << "thread " << t << " saw torn pages";
  }

  const uint64_t total = static_cast<uint64_t>(kThreads) * kReadsPerThread;
  // Logical reads: one per Read call, no lost updates.
  EXPECT_EQ(cache.stats().reads(), total);
  // Every access was a hit or a miss in exactly one shard.
  EXPECT_EQ(cache.hits() + cache.misses(), total);
  uint64_t per_shard = 0;
  for (size_t s = 0; s < cache.num_shards(); ++s) {
    per_shard += cache.shard_hits(s) + cache.shard_misses(s);
  }
  EXPECT_EQ(per_shard, total);
  // Misses are what reached the base file.
  EXPECT_EQ(base.stats().reads(), cache.misses());
}

TEST_F(ShardedBufferPoolTest, ConcurrentReadersDisjointWorkingSets) {
  // Each thread hammers its own shard-aligned page subset — the intended
  // parallel-slice-scan access pattern (disjoint pages, minimal
  // contention).  Everything after warmup must be a hit.
  InMemoryPageFile base("base");
  Populate(&base, 0);
  CachedPageFile cache(&base, /*capacity=*/kNumPages, /*num_shards=*/8);

  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 10000;
  std::vector<std::thread> threads;
  std::vector<int> bad(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Page page;
      for (int i = 0; i < kReadsPerThread; ++i) {
        // Thread t touches pages ≡ t (mod kThreads) only.
        PageId id = static_cast<PageId>(
            (static_cast<PageId>(i) * kThreads + t) % kNumPages);
        if (!cache.Read(id, &page).ok() || !CheckPage(page, id, 0)) ++bad[t];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(bad[t], 0);
  const uint64_t total = static_cast<uint64_t>(kThreads) * kReadsPerThread;
  EXPECT_EQ(cache.stats().reads(), total);
  EXPECT_EQ(cache.hits() + cache.misses(), total);
  // Cache holds the whole file: at most one miss per page.
  EXPECT_LE(cache.misses(), static_cast<uint64_t>(kNumPages));
}

TEST_F(ShardedBufferPoolTest, ConcurrentWritersToDistinctPages) {
  InMemoryPageFile base("base");
  Populate(&base, 0);
  CachedPageFile cache(&base, /*capacity=*/32, /*num_shards=*/4);

  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Page page;
      for (int i = 0; i < kRounds; ++i) {
        // Thread t owns pages ≡ t (mod kThreads): read-check-rewrite.
        PageId id = static_cast<PageId>(
            (static_cast<PageId>(i) * kThreads + t) % kNumPages);
        uint8_t salt = static_cast<uint8_t>(t + 1);
        StampPage(&page, id, salt);
        ASSERT_TRUE(cache.Write(id, page).ok());
        Page back;
        ASSERT_TRUE(cache.Read(id, &back).ok());
        EXPECT_TRUE(CheckPage(back, id, salt)) << "page " << id;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const uint64_t total = static_cast<uint64_t>(kThreads) * kRounds;
  EXPECT_EQ(cache.stats().writes(), total);
  EXPECT_EQ(cache.stats().reads(), total);
  // Write-through: every write reached the base file.
  EXPECT_EQ(base.stats().writes(), total);
}

TEST_F(ShardedBufferPoolTest, InvalidateUnderConcurrentReads) {
  InMemoryPageFile base("base");
  Populate(&base, 0);
  CachedPageFile cache(&base, /*capacity=*/32, /*num_shards=*/4);

  constexpr int kThreads = 4;
  constexpr int kReadsPerThread = 5000;
  std::vector<std::thread> threads;
  std::vector<int> bad(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(7 + static_cast<uint64_t>(t));
      Page page;
      for (int i = 0; i < kReadsPerThread; ++i) {
        PageId id = static_cast<PageId>(rng.NextBelow(kNumPages));
        if (!cache.Read(id, &page).ok() || !CheckPage(page, id, 0)) ++bad[t];
      }
    });
  }
  std::thread invalidator([&] {
    for (int i = 0; i < 200; ++i) cache.Invalidate();
  });
  for (auto& thread : threads) thread.join();
  invalidator.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(bad[t], 0);
  const uint64_t total = static_cast<uint64_t>(kThreads) * kReadsPerThread;
  EXPECT_EQ(cache.stats().reads(), total);
  EXPECT_EQ(cache.hits() + cache.misses(), total);
}

// --- error-path coverage: CachedPageFile over a faulty base file ---

TEST_F(ShardedBufferPoolTest, FailedReadIsNotCached) {
  InMemoryPageFile base("base");
  Populate(&base, 0);
  FaultInjector injector;
  FaultInjectingPageFile faulty(&base, &injector);
  CachedPageFile cache(&faulty, /*capacity=*/32, /*num_shards=*/4);

  // First read of page 5 fails at the base layer.
  injector.FailAt(injector.ops());
  Page page;
  EXPECT_FALSE(cache.Read(5, &page).ok());
  // The failure must not have populated the cache: the retry is a fresh
  // miss that reaches the base file and returns intact data.
  uint64_t misses_before = cache.misses();
  ASSERT_TRUE(cache.Read(5, &page).ok());
  EXPECT_TRUE(CheckPage(page, 5, 0));
  EXPECT_EQ(cache.misses(), misses_before + 1);
  // Only now is it cached.
  ASSERT_TRUE(cache.Read(5, &page).ok());
  EXPECT_EQ(cache.misses(), misses_before + 1);
  EXPECT_TRUE(CheckPage(page, 5, 0));
}

TEST_F(ShardedBufferPoolTest, FailedWriteDoesNotPoisonCache) {
  InMemoryPageFile base("base");
  Populate(&base, 0);
  FaultInjector injector;
  FaultInjectingPageFile faulty(&base, &injector);
  CachedPageFile cache(&faulty, /*capacity=*/32, /*num_shards=*/4);

  // Warm page 7 into the cache with its original stamp.
  Page page;
  ASSERT_TRUE(cache.Read(7, &page).ok());
  ASSERT_TRUE(CheckPage(page, 7, 0));

  // A write that fails at the base layer must leave neither a stale cached
  // copy of the new image nor a torn one: the next read shows a page
  // consistent with what the base file actually holds.
  injector.FailAt(injector.ops());
  Page updated;
  StampPage(&updated, 7, 9);
  EXPECT_FALSE(cache.Write(7, updated).ok());
  Page back;
  ASSERT_TRUE(cache.Read(7, &back).ok());
  Page raw;
  ASSERT_TRUE(base.Read(7, &raw).ok());
  EXPECT_EQ(std::memcmp(back.data(), raw.data(), kPageSize), 0)
      << "cache serves an image the base file does not hold";
}

TEST_F(ShardedBufferPoolTest, ConcurrentProbabilisticFaultsKeepStatsExact) {
  InMemoryPageFile base("base");
  Populate(&base, 0);
  FaultInjector injector;
  FaultInjectingPageFile faulty(&base, &injector);
  CachedPageFile cache(&faulty, /*capacity=*/16, /*num_shards=*/4);
  injector.FailProbability(0.05, 77);

  constexpr int kThreads = 4;
  constexpr int kReadsPerThread = 5000;
  std::vector<std::thread> threads;
  std::vector<int> bad(kThreads, 0);
  std::vector<uint64_t> ok_reads(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(31 + static_cast<uint64_t>(t));
      Page page;
      for (int i = 0; i < kReadsPerThread; ++i) {
        PageId id = static_cast<PageId>(rng.NextBelow(kNumPages));
        if (!cache.Read(id, &page).ok()) continue;  // injected fault
        ++ok_reads[t];
        if (!CheckPage(page, id, 0)) ++bad[t];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  uint64_t succeeded = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(bad[t], 0) << "thread " << t << " read a corrupt page";
    succeeded += ok_reads[t];
  }
  const uint64_t total = static_cast<uint64_t>(kThreads) * kReadsPerThread;
  EXPECT_LT(succeeded, total);  // some faults actually fired (p = 0.05)
  EXPECT_GT(succeeded, total / 2);
  // Logical accounting survives the error paths: every call was counted,
  // and every call was a hit or a miss in exactly one shard.
  EXPECT_EQ(cache.stats().reads(), total);
  EXPECT_EQ(cache.hits() + cache.misses(), total);
  uint64_t per_shard = 0;
  for (size_t s = 0; s < cache.num_shards(); ++s) {
    per_shard += cache.shard_hits(s) + cache.shard_misses(s);
  }
  EXPECT_EQ(per_shard, total);
}

}  // namespace
}  // namespace sigsetdb
