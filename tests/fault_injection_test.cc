// Tests for the FaultInjector / FaultInjectingPageFile decorator
// (src/storage/fault_injecting_page_file.h): single-shot faults, crashes
// that halt all subsequent I/O, torn writes, seeded probabilistic faults,
// the StorageManager interceptor wiring, and the zero-overhead guarantee —
// a disarmed injector must not perturb page-access accounting at all.

#include "storage/fault_injecting_page_file.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/set_index.h"
#include "storage/storage_manager.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

// Fills `page` with a recognizable per-byte pattern.
void FillPage(Page* page, uint8_t salt) {
  for (size_t i = 0; i < kPageSize; ++i) {
    page->data()[i] = static_cast<uint8_t>((i * 131 + salt) & 0xff);
  }
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  // Installs an interceptor wrapping every file built by `storage` in a
  // FaultInjectingPageFile sharing injector_.
  void Intercept(StorageManager* storage) {
    storage->SetInterceptor(
        [this](std::unique_ptr<PageFile> base) -> std::unique_ptr<PageFile> {
          return std::make_unique<FaultInjectingPageFile>(std::move(base),
                                                          &injector_);
        });
  }

  FaultInjector injector_;
};

TEST_F(FaultInjectionTest, FailAtFailsExactlyThatOperation) {
  StorageManager storage;
  Intercept(&storage);
  PageFile* file = storage.CreateOrOpen("f");
  ASSERT_TRUE(file->Allocate().ok());
  Page page;
  FillPage(&page, 1);

  injector_.FailAt(2);
  EXPECT_TRUE(file->Write(0, page).ok());   // op 0
  Page out;
  EXPECT_TRUE(file->Read(0, &out).ok());    // op 1
  Status fault = file->Write(0, page);      // op 2 — injected
  EXPECT_EQ(fault.code(), StatusCode::kIoError);
  EXPECT_NE(fault.message().find("op 2"), std::string::npos);
  // Single-shot: op 3 onwards succeeds again.
  EXPECT_TRUE(file->Write(0, page).ok());
  EXPECT_TRUE(file->Read(0, &out).ok());
  EXPECT_EQ(injector_.ops(), 5u);
  EXPECT_FALSE(injector_.crashed());
}

TEST_F(FaultInjectionTest, CrashHaltsAllLaterIoWithStableOpCount) {
  StorageManager storage;
  Intercept(&storage);
  PageFile* file = storage.CreateOrOpen("f");
  ASSERT_TRUE(file->Allocate().ok());
  Page page;
  FillPage(&page, 2);

  injector_.CrashAt(1);
  EXPECT_TRUE(file->Write(0, page).ok());          // op 0
  EXPECT_FALSE(file->Write(0, page).ok());         // op 1 — crash
  EXPECT_TRUE(injector_.crashed());
  // Everything after the crash fails, and the op counter stays frozen just
  // past the crash point so the harness can attribute the crash to one
  // index (ops 0 and 1 were observed; the rejected ops don't count).
  for (int i = 0; i < 4; ++i) {
    Page out;
    EXPECT_FALSE(file->Read(0, &out).ok());
    EXPECT_FALSE(file->Write(0, page).ok());
    EXPECT_FALSE(file->Allocate().ok());
  }
  EXPECT_EQ(injector_.ops(), 2u);

  // The crashing write persisted nothing: the page still holds op 0's image.
  injector_.Disarm();
  EXPECT_FALSE(injector_.crashed());
  Page out;
  ASSERT_TRUE(file->Read(0, &out).ok());
  Page expected;
  FillPage(&expected, 2);
  EXPECT_EQ(std::memcmp(out.data(), expected.data(), kPageSize), 0);
}

TEST_F(FaultInjectionTest, TornWritePersistsOnlyThePrefix) {
  StorageManager storage;
  Intercept(&storage);
  PageFile* file = storage.CreateOrOpen("f");
  ASSERT_TRUE(file->Allocate().ok());
  Page old_image;
  FillPage(&old_image, 3);
  ASSERT_TRUE(file->Write(0, old_image).ok());  // op 0

  constexpr size_t kPrefix = 512;
  injector_.CrashAt(1);
  injector_.SetTornWrite(kPrefix);
  Page new_image;
  FillPage(&new_image, 4);
  EXPECT_FALSE(file->Write(0, new_image).ok());  // op 1 — torn crash

  injector_.Disarm();
  Page out;
  ASSERT_TRUE(file->Read(0, &out).ok());
  // First kPrefix bytes are the new image, the rest is the old page.
  EXPECT_EQ(std::memcmp(out.data(), new_image.data(), kPrefix), 0);
  EXPECT_EQ(std::memcmp(out.data() + kPrefix, old_image.data() + kPrefix,
                        kPageSize - kPrefix),
            0);
}

TEST_F(FaultInjectionTest, ProbabilisticFaultsAreSeedDeterministic) {
  auto run = [](uint64_t seed) {
    FaultInjector injector;
    StorageManager storage;
    storage.SetInterceptor(
        [&injector](std::unique_ptr<PageFile> base) {
          return std::unique_ptr<PageFile>(std::make_unique<
                                           FaultInjectingPageFile>(
              std::move(base), &injector));
        });
    PageFile* file = storage.CreateOrOpen("f");
    EXPECT_TRUE(file->Allocate().ok());
    injector.FailProbability(0.25, seed);
    Page page;
    FillPage(&page, 5);
    std::vector<bool> failed;
    for (int i = 0; i < 64; ++i) failed.push_back(!file->Write(0, page).ok());
    return failed;
  };
  std::vector<bool> a = run(42);
  std::vector<bool> b = run(42);
  std::vector<bool> c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed, different pattern (64 draws at p=0.25)
}

TEST_F(FaultInjectionTest, DisarmedDecoratorAddsZeroPageAccessDelta) {
  // The same deterministic workload through a plain manager and through an
  // intercepted (but disarmed) one must produce identical page-access
  // statistics — the guarantee that benchmarks reproduce unchanged.
  auto workload = [](StorageManager* storage) {
    SetIndex::Options options;
    options.maintain_ssf = true;
    options.sig = {64, 2};
    options.capacity = 256;
    auto index = SetIndex::Create(storage, "idx", options);
    EXPECT_TRUE(index.ok());
    Rng rng(17);
    std::vector<Oid> oids;
    for (int i = 0; i < 40; ++i) {
      auto oid = (*index)->Insert(rng.SampleWithoutReplacement(100, 6));
      EXPECT_TRUE(oid.ok());
      oids.push_back(*oid);
    }
    EXPECT_TRUE((*index)->Delete(oids[3]).ok());
    EXPECT_TRUE((*index)->Checkpoint().ok());
    for (int i = 0; i < 5; ++i) {
      ElementSet query = rng.SampleWithoutReplacement(100, 2);
      EXPECT_TRUE(
          (*index)->Query(QueryKind::kSuperset, query, PlanMode::kForceBssf)
              .ok());
    }
    return storage->TotalStats();
  };

  StorageManager plain;
  IoStats baseline = workload(&plain);

  StorageManager intercepted;
  Intercept(&intercepted);
  IoStats with_decorator = workload(&intercepted);

  EXPECT_EQ(with_decorator.page_reads, baseline.page_reads);
  EXPECT_EQ(with_decorator.page_writes, baseline.page_writes);
  EXPECT_GT(injector_.ops(), 0u);  // the decorator really was in the path
}

TEST_F(FaultInjectionTest, InjectedFaultSurfacesAtSetIndexApi) {
  StorageManager storage;
  Intercept(&storage);
  SetIndex::Options options;
  options.sig = {64, 2};
  options.capacity = 256;
  auto index = SetIndex::Create(&storage, "idx", options);
  ASSERT_TRUE(index.ok());
  Rng rng(19);
  ASSERT_TRUE((*index)->Insert(rng.SampleWithoutReplacement(100, 6)).ok());

  // Crash at the next I/O: the Insert returns a clean error, no abort.
  injector_.CrashAt(injector_.ops());
  auto oid = (*index)->Insert(rng.SampleWithoutReplacement(100, 6));
  ASSERT_FALSE(oid.ok());
  EXPECT_EQ(oid.status().code(), StatusCode::kIoError);

  // Queries against the crashed device also fail cleanly.
  auto result = (*index)->Query(QueryKind::kSuperset,
                                rng.SampleWithoutReplacement(100, 2),
                                PlanMode::kForceBssf);
  EXPECT_FALSE(result.ok());
}

TEST_F(FaultInjectionTest, MakeFileFailpointSurfacesAtCreate) {
  StorageManager storage;
  FailpointRegistry::Instance().ArmCountdown("storage.make_file", 1);
  SetIndex::Options options;
  auto index = SetIndex::Create(&storage, "idx", options);
  FailpointRegistry::Instance().DisarmAll();
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kIoError);
  EXPECT_NE(index.status().message().find("storage.make_file"),
            std::string::npos);
}

}  // namespace
}  // namespace sigsetdb
