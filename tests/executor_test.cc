#include "query/executor.h"

#include <gtest/gtest.h>

#include "test_db.h"

namespace sigsetdb {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : db_(TestDatabase::Options{}) {}
  TestDatabase db_;
};

TEST_F(ExecutorTest, SupersetResultsMatchBruteForceOnAllFacilities) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const ElementSet& target = db_.sets()[rng.NextBelow(db_.sets().size())];
    ElementSet query = MakeHittingSupersetQuery(target, 2, rng);
    std::vector<Oid> expected = db_.BruteForce(QueryKind::kSuperset, query);
    for (SetAccessFacility* facility :
         {static_cast<SetAccessFacility*>(&db_.ssf()),
          static_cast<SetAccessFacility*>(&db_.bssf()),
          static_cast<SetAccessFacility*>(&db_.nix())}) {
      auto result = ExecuteSetQuery(facility, db_.store(),
                                    QueryKind::kSuperset, query);
      ASSERT_TRUE(result.ok()) << facility->name();
      std::vector<Oid> got = result->oids;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << facility->name() << " trial " << trial;
    }
  }
}

TEST_F(ExecutorTest, SubsetResultsMatchBruteForceOnAllFacilities) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const ElementSet& target = db_.sets()[rng.NextBelow(db_.sets().size())];
    ElementSet query =
        MakeHittingSubsetQuery(target, db_.options().v, 40, rng);
    std::vector<Oid> expected = db_.BruteForce(QueryKind::kSubset, query);
    EXPECT_FALSE(expected.empty());
    for (SetAccessFacility* facility :
         {static_cast<SetAccessFacility*>(&db_.ssf()),
          static_cast<SetAccessFacility*>(&db_.bssf()),
          static_cast<SetAccessFacility*>(&db_.nix())}) {
      auto result = ExecuteSetQuery(facility, db_.store(), QueryKind::kSubset,
                                    query);
      ASSERT_TRUE(result.ok()) << facility->name();
      std::vector<Oid> got = result->oids;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << facility->name() << " trial " << trial;
    }
  }
}

TEST_F(ExecutorTest, EqualsAndOverlapMatchBruteForce) {
  Rng rng(3);
  const ElementSet& victim = db_.sets()[17];
  for (QueryKind kind : {QueryKind::kEquals, QueryKind::kOverlaps}) {
    ElementSet query = victim;
    if (kind == QueryKind::kOverlaps) {
      query = {victim[0], victim[3]};
      NormalizeSet(&query);
    }
    std::vector<Oid> expected = db_.BruteForce(kind, query);
    EXPECT_FALSE(expected.empty());
    for (SetAccessFacility* facility :
         {static_cast<SetAccessFacility*>(&db_.ssf()),
          static_cast<SetAccessFacility*>(&db_.bssf()),
          static_cast<SetAccessFacility*>(&db_.nix())}) {
      auto result = ExecuteSetQuery(facility, db_.store(), kind, query);
      ASSERT_TRUE(result.ok()) << facility->name();
      std::vector<Oid> got = result->oids;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected)
          << facility->name() << " kind " << QueryKindName(kind);
    }
  }
}

TEST_F(ExecutorTest, ProperInclusionExcludesEquality) {
  // The paper's second §1 query uses ⊊: an object equal to the query set
  // must NOT qualify, while strict subsets must.
  const ElementSet& victim = db_.sets()[25];
  // T ⊊ Q with Q exactly a stored value: the stored object itself fails.
  std::vector<Oid> expected = db_.BruteForce(QueryKind::kProperSubset, victim);
  EXPECT_TRUE(std::find(expected.begin(), expected.end(), db_.oids()[25]) ==
              expected.end());
  for (SetAccessFacility* facility :
       {static_cast<SetAccessFacility*>(&db_.ssf()),
        static_cast<SetAccessFacility*>(&db_.bssf()),
        static_cast<SetAccessFacility*>(&db_.nix())}) {
    auto result = ExecuteSetQuery(facility, db_.store(),
                                  QueryKind::kProperSubset, victim);
    ASSERT_TRUE(result.ok()) << facility->name();
    std::vector<Oid> got = result->oids;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << facility->name();
    // The non-strict result must contain the object plus the strict ones.
    auto non_strict = ExecuteSetQuery(facility, db_.store(),
                                      QueryKind::kSubset, victim);
    ASSERT_TRUE(non_strict.ok());
    EXPECT_EQ(non_strict->oids.size(), got.size() + 1);
  }
}

TEST_F(ExecutorTest, SmartExecutorsSupportProperKinds) {
  Rng rng(77);
  const ElementSet& target = db_.sets()[8];
  ElementSet query = MakeHittingSupersetQuery(target, 3, rng);
  std::vector<Oid> expected =
      db_.BruteForce(QueryKind::kProperSuperset, query);
  auto bssf = ExecuteSmartSupersetBssf(&db_.bssf(), db_.store(), query, 2,
                                       QueryKind::kProperSuperset);
  ASSERT_TRUE(bssf.ok());
  std::vector<Oid> got = bssf->oids;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
  auto nix = ExecuteSmartSupersetNix(&db_.nix(), db_.store(), query, 2,
                                     QueryKind::kProperSuperset);
  ASSERT_TRUE(nix.ok());
  got = nix->oids;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
  // Wrong kind is rejected.
  EXPECT_EQ(ExecuteSmartSupersetBssf(&db_.bssf(), db_.store(), query, 2,
                                     QueryKind::kSubset)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, FalseDropAccountingConsistent) {
  Rng rng(4);
  ElementSet query = rng.SampleWithoutReplacement(
      static_cast<uint64_t>(db_.options().v), 2);
  auto result =
      ExecuteSetQuery(&db_.ssf(), db_.store(), QueryKind::kSuperset, query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_candidates,
            result->oids.size() + result->num_false_drops);
}

TEST_F(ExecutorTest, SmartSupersetBssfMatchesPlainResults) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const ElementSet& target = db_.sets()[rng.NextBelow(db_.sets().size())];
    ElementSet query = MakeHittingSupersetQuery(target, 4, rng);
    std::vector<Oid> expected = db_.BruteForce(QueryKind::kSuperset, query);
    for (size_t k : {1u, 2u, 3u, 4u}) {
      auto result =
          ExecuteSmartSupersetBssf(&db_.bssf(), db_.store(), query, k);
      ASSERT_TRUE(result.ok());
      std::vector<Oid> got = result->oids;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << "k=" << k;
    }
  }
}

TEST_F(ExecutorTest, SmartSubsetBssfMatchesPlainResults) {
  Rng rng(6);
  const ElementSet& target = db_.sets()[3];
  ElementSet query = MakeHittingSubsetQuery(target, db_.options().v, 50, rng);
  std::vector<Oid> expected = db_.BruteForce(QueryKind::kSubset, query);
  for (size_t max_slices : {5u, 20u, 100u, 10000u}) {
    auto result =
        ExecuteSmartSubsetBssf(&db_.bssf(), db_.store(), query, max_slices);
    ASSERT_TRUE(result.ok());
    std::vector<Oid> got = result->oids;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "max_slices=" << max_slices;
  }
}

TEST_F(ExecutorTest, SmartSubsetFewerSlicesMoreFalseDrops) {
  Rng rng(7);
  ElementSet query = rng.SampleWithoutReplacement(
      static_cast<uint64_t>(db_.options().v), 60);
  auto few = ExecuteSmartSubsetBssf(&db_.bssf(), db_.store(), query, 3);
  auto many = ExecuteSmartSubsetBssf(&db_.bssf(), db_.store(), query, 10000);
  ASSERT_TRUE(few.ok());
  ASSERT_TRUE(many.ok());
  EXPECT_GE(few->num_candidates, many->num_candidates);
  EXPECT_EQ(few->oids.size(), many->oids.size());
}

TEST_F(ExecutorTest, SmartSupersetNixMatchesPlainResults) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const ElementSet& target = db_.sets()[rng.NextBelow(db_.sets().size())];
    ElementSet query = MakeHittingSupersetQuery(target, 4, rng);
    std::vector<Oid> expected = db_.BruteForce(QueryKind::kSuperset, query);
    for (size_t k : {1u, 2u, 4u}) {
      auto result = ExecuteSmartSupersetNix(&db_.nix(), db_.store(), query, k);
      ASSERT_TRUE(result.ok());
      std::vector<Oid> got = result->oids;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << "k=" << k;
    }
  }
}

TEST_F(ExecutorTest, ResolutionFetchesOnePagePerCandidate) {
  Rng rng(9);
  ElementSet query = rng.SampleWithoutReplacement(
      static_cast<uint64_t>(db_.options().v), 2);
  auto candidates = db_.bssf().Candidates(QueryKind::kSuperset, query);
  ASSERT_TRUE(candidates.ok());
  auto object_file = db_.storage().Open("objects");
  ASSERT_TRUE(object_file.ok());
  (*object_file)->stats().Reset();
  auto result =
      ResolveCandidates(*candidates, db_.store(), QueryKind::kSuperset, query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*object_file)->stats().page_reads, candidates->oids.size());
}

}  // namespace
}  // namespace sigsetdb
