#include "sig/bitpack.h"

#include <gtest/gtest.h>

#include "storage/page.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

BitVector RandomVector(size_t bits, Rng& rng) {
  BitVector v(bits);
  for (size_t i = 0; i < bits / 3 + 1; ++i) v.Set(rng.NextBelow(bits));
  return v;
}

TEST(BitpackTest, RoundTripAtZeroOffset) {
  Rng rng(1);
  std::vector<uint8_t> buf(64, 0);
  BitVector v = RandomVector(100, rng);
  DepositBits(v, buf.data(), 0);
  BitVector w(100);
  ExtractBits(buf.data(), 0, &w);
  EXPECT_EQ(v, w);
}

TEST(BitpackTest, RoundTripAtUnalignedOffsets) {
  Rng rng(2);
  for (size_t off : {1u, 3u, 7u, 8u, 13u, 250u, 333u}) {
    std::vector<uint8_t> buf(256, 0);
    BitVector v = RandomVector(250, rng);
    DepositBits(v, buf.data(), off);
    BitVector w(250);
    ExtractBits(buf.data(), off, &w);
    EXPECT_EQ(v, w) << "offset " << off;
  }
}

TEST(BitpackTest, AdjacentSignaturesDoNotInterfere) {
  Rng rng(3);
  constexpr size_t kF = 250;
  std::vector<uint8_t> buf(4096, 0);
  std::vector<BitVector> sigs;
  for (size_t i = 0; i < 10; ++i) {
    sigs.push_back(RandomVector(kF, rng));
    DepositBits(sigs.back(), buf.data(), i * kF);
  }
  for (size_t i = 0; i < 10; ++i) {
    BitVector w(kF);
    ExtractBits(buf.data(), i * kF, &w);
    EXPECT_EQ(w, sigs[i]) << "slot " << i;
  }
}

TEST(BitpackTest, DepositOverwritesPreviousContent) {
  std::vector<uint8_t> buf(16, 0xff);
  BitVector zero(32);
  DepositBits(zero, buf.data(), 4);
  BitVector w(32);
  ExtractBits(buf.data(), 4, &w);
  EXPECT_EQ(w.Count(), 0u);
  // Bits outside the deposited window keep their old value.
  EXPECT_EQ(buf[0] & 0x0f, 0x0f);
}

TEST(BitpackTest, ExtractionAtExactBufferEnd) {
  // The last signature on a full page must not read past the buffer: F=4
  // divides the page into bit-slots whose final extraction ends exactly at
  // the last byte.
  constexpr size_t kF = 4;
  std::vector<uint8_t> buf(kPageSize, 0xff);
  size_t last_slot = kPageBits / kF - 1;
  BitVector w(kF);
  ExtractBits(buf.data(), last_slot * kF, &w);
  EXPECT_EQ(w.Count(), kF);
}

TEST(BitpackTest, FullPageRoundTripAllSlots) {
  Rng rng(4);
  constexpr size_t kF = 500;
  constexpr size_t kSlots = kPageBits / kF;  // 65
  std::vector<uint8_t> buf(kPageSize, 0);
  std::vector<BitVector> sigs;
  for (size_t i = 0; i < kSlots; ++i) {
    sigs.push_back(RandomVector(kF, rng));
    DepositBits(sigs[i], buf.data(), i * kF);
  }
  for (size_t i = 0; i < kSlots; ++i) {
    BitVector w(kF);
    ExtractBits(buf.data(), i * kF, &w);
    EXPECT_EQ(w, sigs[i]) << "slot " << i;
  }
}

}  // namespace
}  // namespace sigsetdb
