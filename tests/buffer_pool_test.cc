#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

namespace sigsetdb {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(base_.Allocate().ok());
  }
  InMemoryPageFile base_{"base"};
};

TEST_F(BufferPoolTest, HitAvoidsPhysicalRead) {
  CachedPageFile cache(&base_, 4);
  Page page;
  ASSERT_TRUE(cache.Read(0, &page).ok());
  ASSERT_TRUE(cache.Read(0, &page).ok());
  EXPECT_EQ(cache.stats().page_reads, 2u);       // logical
  EXPECT_EQ(cache.physical_stats().page_reads, 1u);  // one miss
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  CachedPageFile cache(&base_, 2);
  Page page;
  ASSERT_TRUE(cache.Read(0, &page).ok());
  ASSERT_TRUE(cache.Read(1, &page).ok());
  ASSERT_TRUE(cache.Read(0, &page).ok());  // 0 now most recent
  ASSERT_TRUE(cache.Read(2, &page).ok());  // evicts 1
  ASSERT_TRUE(cache.Read(0, &page).ok());  // still cached
  ASSERT_TRUE(cache.Read(1, &page).ok());  // miss again
  EXPECT_EQ(cache.misses(), 4u);  // 0, 1, 2, 1
  EXPECT_EQ(cache.hits(), 2u);    // 0, 0
}

TEST_F(BufferPoolTest, WriteThroughUpdatesBaseAndCache) {
  CachedPageFile cache(&base_, 4);
  Page page;
  page.WriteAt<uint32_t>(0, 123u);
  ASSERT_TRUE(cache.Write(3, page).ok());
  // Base sees the write immediately.
  Page check;
  ASSERT_TRUE(base_.Read(3, &check).ok());
  EXPECT_EQ(check.ReadAt<uint32_t>(0), 123u);
  // Subsequent read is a cache hit with the written content.
  uint64_t misses_before = cache.misses();
  Page reread;
  ASSERT_TRUE(cache.Read(3, &reread).ok());
  EXPECT_EQ(cache.misses(), misses_before);
  EXPECT_EQ(reread.ReadAt<uint32_t>(0), 123u);
}

TEST_F(BufferPoolTest, WriteToCachedPageRefreshesFrame) {
  CachedPageFile cache(&base_, 4);
  Page page;
  ASSERT_TRUE(cache.Read(2, &page).ok());
  page.WriteAt<uint32_t>(8, 9u);
  ASSERT_TRUE(cache.Write(2, page).ok());
  Page reread;
  ASSERT_TRUE(cache.Read(2, &reread).ok());
  EXPECT_EQ(reread.ReadAt<uint32_t>(8), 9u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(BufferPoolTest, InvalidateDropsFrames) {
  CachedPageFile cache(&base_, 4);
  Page page;
  ASSERT_TRUE(cache.Read(0, &page).ok());
  cache.Invalidate();
  ASSERT_TRUE(cache.Read(0, &page).ok());
  EXPECT_EQ(cache.misses(), 2u);
}

TEST_F(BufferPoolTest, ZeroCapacityNeverCaches) {
  CachedPageFile cache(&base_, 0);
  Page page;
  ASSERT_TRUE(cache.Read(0, &page).ok());
  ASSERT_TRUE(cache.Read(0, &page).ok());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST_F(BufferPoolTest, AllocatePassesThrough) {
  CachedPageFile cache(&base_, 2);
  auto id = cache.Allocate();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 8u);
  EXPECT_EQ(cache.num_pages(), 9u);
}

}  // namespace
}  // namespace sigsetdb
