#include "workload/generator.h"
#include <cmath>

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

namespace sigsetdb {
namespace {

TEST(GeneratorTest, FixedCardinalityRespected) {
  WorkloadConfig config{100, 1000, CardinalitySpec::Fixed(10),
                        SkewKind::kUniform, 0.99, 1};
  SetGenerator gen(config);
  for (int i = 0; i < 100; ++i) {
    ElementSet set = gen.NextSet();
    EXPECT_EQ(set.size(), 10u);
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    EXPECT_TRUE(std::adjacent_find(set.begin(), set.end()) == set.end());
    for (uint64_t e : set) EXPECT_LT(e, 1000u);
  }
}

TEST(GeneratorTest, VariableCardinalityInRange) {
  WorkloadConfig config{100, 1000, {5, 15}, SkewKind::kUniform, 0.99, 2};
  SetGenerator gen(config);
  bool saw_min = false, saw_max = false;
  for (int i = 0; i < 300; ++i) {
    ElementSet set = gen.NextSet();
    EXPECT_GE(set.size(), 5u);
    EXPECT_LE(set.size(), 15u);
    if (set.size() == 5) saw_min = true;
    if (set.size() == 15) saw_max = true;
  }
  EXPECT_TRUE(saw_min);
  EXPECT_TRUE(saw_max);
}

TEST(GeneratorTest, DeterministicBySeed) {
  WorkloadConfig config{10, 500, CardinalitySpec::Fixed(5),
                        SkewKind::kUniform, 0.99, 7};
  auto a = MakeDatabase(config);
  auto b = MakeDatabase(config);
  EXPECT_EQ(a, b);
  config.seed = 8;
  auto c = MakeDatabase(config);
  EXPECT_NE(a, c);
}

TEST(GeneratorTest, MakeDatabaseProducesNObjects) {
  WorkloadConfig config{250, 100, CardinalitySpec::Fixed(4),
                        SkewKind::kUniform, 0.99, 3};
  auto sets = MakeDatabase(config);
  EXPECT_EQ(sets.size(), 250u);
}

TEST(GeneratorTest, UniformCoverageOfDomain) {
  WorkloadConfig config{2000, 50, CardinalitySpec::Fixed(5),
                        SkewKind::kUniform, 0.99, 4};
  auto sets = MakeDatabase(config);
  std::map<uint64_t, int> counts;
  for (const auto& s : sets) {
    for (uint64_t e : s) ++counts[e];
  }
  EXPECT_EQ(counts.size(), 50u);
  // Expected count per element: 2000*5/50 = 200.
  for (const auto& [e, c] : counts) {
    EXPECT_NEAR(c, 200, 5 * std::sqrt(200.0)) << "element " << e;
  }
}

TEST(GeneratorTest, ZipfSkewsTowardSmallIds) {
  WorkloadConfig config{3000, 1000, CardinalitySpec::Fixed(5),
                        SkewKind::kZipf, 0.99, 5};
  auto sets = MakeDatabase(config);
  uint64_t low = 0, high = 0;
  for (const auto& s : sets) {
    for (uint64_t e : s) {
      if (e < 100) {
        ++low;
      } else {
        ++high;
      }
    }
  }
  // With theta≈1, the first 10% of the domain draws far more than 10%.
  EXPECT_GT(low, high);
}

TEST(GeneratorTest, ZipfSetsStillDistinctAndSorted) {
  WorkloadConfig config{100, 200, CardinalitySpec::Fixed(8), SkewKind::kZipf,
                        0.99, 6};
  SetGenerator gen(config);
  for (int i = 0; i < 100; ++i) {
    ElementSet set = gen.NextSet();
    EXPECT_EQ(set.size(), 8u);
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    EXPECT_TRUE(std::adjacent_find(set.begin(), set.end()) == set.end());
  }
}

TEST(GeneratorTest, HittingSupersetQueryIsSubsetOfTarget) {
  Rng rng(9);
  ElementSet target = {2, 4, 8, 16, 32, 64};
  for (int64_t dq = 1; dq <= 6; ++dq) {
    ElementSet query = MakeHittingSupersetQuery(target, dq, rng);
    EXPECT_EQ(query.size(), static_cast<size_t>(dq));
    EXPECT_TRUE(IsSubset(query, target));
  }
}

TEST(GeneratorTest, HittingSubsetQueryIsSupersetOfTarget) {
  Rng rng(10);
  ElementSet target = {5, 10, 15};
  for (int64_t dq : {3, 5, 20}) {
    ElementSet query = MakeHittingSubsetQuery(target, 1000, dq, rng);
    EXPECT_EQ(query.size(), static_cast<size_t>(dq));
    EXPECT_TRUE(IsSubset(target, query));
    for (uint64_t e : query) EXPECT_LT(e, 1000u);
  }
}

TEST(GeneratorTest, QuerySetHasRequestedCardinality) {
  WorkloadConfig config{1, 13000, CardinalitySpec::Fixed(10),
                        SkewKind::kUniform, 0.99, 11};
  SetGenerator gen(config);
  for (int64_t dq : {1, 2, 10, 100, 1000}) {
    EXPECT_EQ(gen.QuerySet(dq).size(), static_cast<size_t>(dq));
  }
}

}  // namespace
}  // namespace sigsetdb
