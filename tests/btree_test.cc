#include "nix/btree.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

Oid MakeOid(uint64_t i) {
  return Oid::FromLocation(static_cast<PageId>(i >> 16),
                           static_cast<uint16_t>(i & 0xffff));
}

class BTreeTest : public ::testing::Test {
 protected:
  void MakeTree(uint32_t fanout = kPaperFanout) {
    auto tree = BTree::Create(&file_, fanout);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = std::move(*tree);
  }

  InMemoryPageFile file_{"nix"};
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, EmptyTreeLookupReturnsEmpty) {
  MakeTree();
  auto postings = tree_->Lookup(42);
  ASSERT_TRUE(postings.ok());
  EXPECT_TRUE(postings->empty());
  EXPECT_EQ(tree_->height(), 0u);
  EXPECT_EQ(tree_->leaf_pages(), 1u);
}

TEST_F(BTreeTest, InsertThenLookup) {
  MakeTree();
  ASSERT_TRUE(tree_->Insert(5, MakeOid(100)).ok());
  ASSERT_TRUE(tree_->Insert(5, MakeOid(200)).ok());
  ASSERT_TRUE(tree_->Insert(9, MakeOid(300)).ok());
  auto p5 = tree_->Lookup(5);
  ASSERT_TRUE(p5.ok());
  EXPECT_EQ(*p5, (std::vector<Oid>{MakeOid(100), MakeOid(200)}));
  auto p9 = tree_->Lookup(9);
  ASSERT_TRUE(p9.ok());
  EXPECT_EQ(*p9, std::vector<Oid>{MakeOid(300)});
  EXPECT_TRUE(tree_->Lookup(7)->empty());
}

TEST_F(BTreeTest, CreateRequiresEmptyFile) {
  MakeTree();
  EXPECT_EQ(BTree::Create(&file_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BTreeTest, ManyKeysSplitLeavesAndGrowHeight) {
  MakeTree(/*fanout=*/8);  // small fanout to exercise internal splits
  std::map<uint64_t, std::vector<Oid>> reference;
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.NextBelow(800);
    Oid oid = MakeOid(static_cast<uint64_t>(i));
    ASSERT_TRUE(tree_->Insert(key, oid).ok()) << "i=" << i;
    reference[key].push_back(oid);
  }
  EXPECT_GT(tree_->height(), 1u);
  EXPECT_GT(tree_->leaf_pages(), 1u);
  for (const auto& [key, expected] : reference) {
    auto got = tree_->Lookup(key);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expected) << "key " << key;
  }
}

TEST_F(BTreeTest, ForEachEntryVisitsKeysInOrder) {
  MakeTree(/*fanout=*/4);
  Rng rng(2);
  std::set<uint64_t> keys;
  for (int i = 0; i < 1000; ++i) {
    uint64_t key = rng.NextBelow(10000);
    ASSERT_TRUE(tree_->Insert(key, MakeOid(key)).ok());
    keys.insert(key);
  }
  std::vector<uint64_t> visited;
  ASSERT_TRUE(tree_
                  ->ForEachEntry([&](const BTreeEntry& e) {
                    visited.push_back(e.key);
                  })
                  .ok());
  std::vector<uint64_t> expected(keys.begin(), keys.end());
  EXPECT_EQ(visited, expected);
}

TEST_F(BTreeTest, LookupCostsHeightPlusOneReads) {
  MakeTree(/*fanout=*/4);
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree_->Insert(k, MakeOid(k)).ok());
  }
  uint32_t height = tree_->height();
  ASSERT_GE(height, 2u);
  file_.stats().Reset();
  ASSERT_TRUE(tree_->Lookup(1234).ok());
  EXPECT_EQ(file_.stats().page_reads, height + 1u);
}

TEST_F(BTreeTest, RemoveOidAndEntry) {
  MakeTree();
  ASSERT_TRUE(tree_->Insert(5, MakeOid(1)).ok());
  ASSERT_TRUE(tree_->Insert(5, MakeOid(2)).ok());
  ASSERT_TRUE(tree_->Remove(5, MakeOid(1)).ok());
  EXPECT_EQ(*tree_->Lookup(5), std::vector<Oid>{MakeOid(2)});
  ASSERT_TRUE(tree_->Remove(5, MakeOid(2)).ok());
  EXPECT_TRUE(tree_->Lookup(5)->empty());
  EXPECT_EQ(tree_->Remove(5, MakeOid(2)).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree_->Remove(99, MakeOid(1)).code(), StatusCode::kNotFound);
}

TEST_F(BTreeTest, RemoveAcrossSplitTree) {
  MakeTree(/*fanout=*/4);
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(tree_->Insert(k, MakeOid(k)).ok());
  }
  for (uint64_t k = 0; k < 500; k += 2) {
    ASSERT_TRUE(tree_->Remove(k, MakeOid(k)).ok());
  }
  for (uint64_t k = 0; k < 500; ++k) {
    auto postings = tree_->Lookup(k);
    ASSERT_TRUE(postings.ok());
    EXPECT_EQ(postings->size(), k % 2 == 0 ? 0u : 1u) << "key " << k;
  }
}

TEST_F(BTreeTest, PostingListSpillsToOverflowChain) {
  MakeTree();
  // One leaf page holds at most 509 inline postings; beyond that the list
  // spills into an overflow chain and keeps growing.
  constexpr uint64_t kPostings = 2000;
  for (uint64_t i = 0; i < kPostings; ++i) {
    ASSERT_TRUE(tree_->Insert(7, MakeOid(i)).ok()) << "i=" << i;
  }
  EXPECT_GT(tree_->overflow_pages(), 0u);
  auto postings = tree_->Lookup(7);
  ASSERT_TRUE(postings.ok());
  ASSERT_EQ(postings->size(), kPostings);
  std::set<Oid> unique(postings->begin(), postings->end());
  EXPECT_EQ(unique.size(), kPostings);
}

TEST_F(BTreeTest, OverflowChainSupportsRemove) {
  MakeTree();
  for (uint64_t i = 0; i < 1500; ++i) {
    ASSERT_TRUE(tree_->Insert(7, MakeOid(i)).ok());
  }
  for (uint64_t i = 0; i < 1500; i += 3) {
    ASSERT_TRUE(tree_->Remove(7, MakeOid(i)).ok()) << "i=" << i;
  }
  auto postings = tree_->Lookup(7);
  ASSERT_TRUE(postings.ok());
  EXPECT_EQ(postings->size(), 1000u);
  for (Oid oid : *postings) {
    uint64_t i = (static_cast<uint64_t>(oid.page()) << 16) | oid.slot();
    EXPECT_NE(i % 3, 0u);
  }
  EXPECT_EQ(tree_->Remove(7, MakeOid(0)).code(), StatusCode::kNotFound);
}

TEST_F(BTreeTest, DrainedOverflowChainsAreRecycled) {
  MakeTree();
  for (uint64_t i = 0; i < 1200; ++i) {
    ASSERT_TRUE(tree_->Insert(7, MakeOid(i)).ok());
  }
  uint64_t chain_pages = tree_->overflow_pages();
  ASSERT_GE(chain_pages, 2u);
  PageId pages_before = file_.num_pages();
  for (uint64_t i = 0; i < 1200; ++i) {
    ASSERT_TRUE(tree_->Remove(7, MakeOid(i)).ok());
  }
  EXPECT_EQ(tree_->overflow_pages(), 0u);
  EXPECT_EQ(tree_->free_pages(), chain_pages);
  // Building a new chain reuses the freed pages instead of growing the
  // file.
  for (uint64_t i = 0; i < 1200; ++i) {
    ASSERT_TRUE(tree_->Insert(9, MakeOid(i)).ok());
  }
  EXPECT_EQ(file_.num_pages(), pages_before);
  EXPECT_EQ(tree_->Lookup(9)->size(), 1200u);
}

TEST_F(BTreeTest, OverflowDrainsToEmptyEntry) {
  MakeTree();
  for (uint64_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(tree_->Insert(7, MakeOid(i)).ok());
  }
  for (uint64_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(tree_->Remove(7, MakeOid(i)).ok());
  }
  EXPECT_TRUE(tree_->Lookup(7)->empty());
  // Reinsertion after drain starts a fresh inline record.
  ASSERT_TRUE(tree_->Insert(7, MakeOid(9)).ok());
  EXPECT_EQ(tree_->Lookup(7)->size(), 1u);
}

TEST_F(BTreeTest, BulkLoadSpillsGiantPostings) {
  MakeTree();
  std::vector<BTreeEntry> entries;
  BTreeEntry giant;
  giant.key = 5;
  for (uint64_t i = 0; i < 1200; ++i) giant.postings.push_back(MakeOid(i));
  entries.push_back(giant);
  entries.push_back({9, {MakeOid(1)}});
  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  EXPECT_GT(tree_->overflow_pages(), 1u);
  auto postings = tree_->Lookup(5);
  ASSERT_TRUE(postings.ok());
  EXPECT_EQ(postings->size(), 1200u);
  // Bulk-loaded chains preserve order.
  EXPECT_EQ(*postings, giant.postings);
  EXPECT_EQ(tree_->Lookup(9)->size(), 1u);
}

TEST_F(BTreeTest, BulkLoadSmall) {
  MakeTree();
  std::vector<BTreeEntry> entries;
  for (uint64_t k = 0; k < 100; ++k) {
    entries.push_back({k * 10, {MakeOid(k), MakeOid(k + 1000)}});
  }
  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  for (uint64_t k = 0; k < 100; ++k) {
    auto postings = tree_->Lookup(k * 10);
    ASSERT_TRUE(postings.ok());
    EXPECT_EQ(*postings, entries[k].postings);
  }
  EXPECT_TRUE(tree_->Lookup(5)->empty());
}

TEST_F(BTreeTest, BulkLoadPacksLeaves) {
  MakeTree();
  // 100 entries of 2 postings: 2+8+2+16 = 28 bytes each; ~146 fit per page.
  std::vector<BTreeEntry> entries;
  for (uint64_t k = 0; k < 1000; ++k) {
    entries.push_back({k, {MakeOid(k), MakeOid(k + 1)}});
  }
  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  // Packed: ceil(1000/146) = 7 leaves.
  EXPECT_EQ(tree_->leaf_pages(), 7u);
  EXPECT_EQ(tree_->height(), 1u);
  EXPECT_EQ(tree_->internal_pages(), 1u);
}

TEST_F(BTreeTest, BulkLoadRejectsUnsortedInput) {
  MakeTree();
  std::vector<BTreeEntry> entries = {{5, {MakeOid(1)}}, {3, {MakeOid(2)}}};
  EXPECT_EQ(tree_->BulkLoad(entries).code(), StatusCode::kInvalidArgument);
}

TEST_F(BTreeTest, BulkLoadRejectsNonEmptyTree) {
  MakeTree();
  ASSERT_TRUE(tree_->Insert(1, MakeOid(1)).ok());
  std::vector<BTreeEntry> entries = {{5, {MakeOid(1)}}};
  EXPECT_EQ(tree_->BulkLoad(entries).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(BTreeTest, BulkLoadThenIncrementalInserts) {
  MakeTree(/*fanout=*/8);
  std::vector<BTreeEntry> entries;
  for (uint64_t k = 0; k < 2000; k += 2) {
    entries.push_back({k, {MakeOid(k)}});
  }
  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  // Odd keys inserted incrementally (leaves are packed => every insert
  // splits, a worst case for the split paths).
  for (uint64_t k = 1; k < 2000; k += 2) {
    ASSERT_TRUE(tree_->Insert(k, MakeOid(k)).ok()) << "key " << k;
  }
  for (uint64_t k = 0; k < 2000; ++k) {
    auto postings = tree_->Lookup(k);
    ASSERT_TRUE(postings.ok());
    EXPECT_EQ(*postings, std::vector<Oid>{MakeOid(k)}) << "key " << k;
  }
  std::vector<uint64_t> visited;
  ASSERT_TRUE(tree_
                  ->ForEachEntry([&](const BTreeEntry& e) {
                    visited.push_back(e.key);
                  })
                  .ok());
  EXPECT_EQ(visited.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
}

}  // namespace
}  // namespace sigsetdb
