// Query tracing: the three load-bearing guarantees of the observability
// layer.
//
//  1. Accounting closure: for a traced query, the sum of per-stage page
//     deltas equals the storage manager's IoStats delta equals the page
//     count the result reports — no access is unattributed.
//  2. Zero-cost off path: with tracing disabled the measured page counts
//     are bit-for-bit identical to a traced run, serially and with a
//     4-thread pool (tracing only snapshots counters; it never issues I/O).
//  3. Predictions line up: CostBreakdown totals equal the cost functions
//     the advisor prices plans with, and EXPLAIN attaches them per stage.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/set_index.h"
#include "model/cost_breakdown.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "test_db.h"
#include "util/thread_pool.h"

namespace sigsetdb {
namespace {

TEST(AddSnapshotStageTest, ChildrenArePerFileDeltas) {
  QueryTrace trace;
  IoSnapshots before = {{"sig", IoStats{10, 1}}, {"oid", IoStats{5, 0}}};
  IoSnapshots after = {{"sig", IoStats{14, 1}}, {"oid", IoStats{5, 2}}};
  TraceSpan* span = AddSnapshotStage(&trace, "candidate selection", before,
                                     after);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->page_reads, 4u);
  EXPECT_EQ(span->page_writes, 2u);
  ASSERT_EQ(span->children.size(), 2u);
  TraceSpan* sig = span->FindChild("sig");
  ASSERT_NE(sig, nullptr);
  EXPECT_EQ(sig->page_reads, 4u);
  EXPECT_EQ(sig->page_writes, 0u);
  TraceSpan* oid = span->FindChild("oid");
  ASSERT_NE(oid, nullptr);
  EXPECT_EQ(oid->page_reads, 0u);
  EXPECT_EQ(oid->page_writes, 2u);
  EXPECT_EQ(trace.TotalPages(), 6u);
}

class QueryTraceTest : public ::testing::Test {
 protected:
  QueryTraceTest() : db_(TestDatabase::Options{}) {}

  std::vector<SetAccessFacility*> Facilities() {
    return {static_cast<SetAccessFacility*>(&db_.ssf()),
            static_cast<SetAccessFacility*>(&db_.bssf()),
            static_cast<SetAccessFacility*>(&db_.nix())};
  }

  ElementSet SupersetQuery(Rng& rng) {
    const ElementSet& target = db_.sets()[rng.NextBelow(db_.sets().size())];
    return MakeHittingSupersetQuery(target, 2, rng);
  }

  ElementSet SubsetQuery(Rng& rng) {
    const ElementSet& target = db_.sets()[rng.NextBelow(db_.sets().size())];
    return MakeHittingSubsetQuery(target, db_.options().v, 40, rng);
  }

  TestDatabase db_;
};

// Guarantee 1: measured == trace-sum == IoStats delta, stage structure
// present, per-file children summing to their parent.
TEST_F(QueryTraceTest, TraceSumsMatchIoStatsDelta) {
  Rng rng(7);
  for (QueryKind kind : {QueryKind::kSuperset, QueryKind::kSubset}) {
    ElementSet query = kind == QueryKind::kSuperset ? SupersetQuery(rng)
                                                    : SubsetQuery(rng);
    for (SetAccessFacility* facility : Facilities()) {
      db_.storage().ResetStats();
      QueryTrace trace;
      auto result =
          ExecuteSetQuery(facility, db_.store(), kind, query, nullptr,
                          &trace);
      ASSERT_TRUE(result.ok()) << facility->name();
      IoStats delta = db_.storage().TotalStats();
      EXPECT_EQ(trace.TotalReads(), delta.reads()) << facility->name();
      EXPECT_EQ(trace.TotalWrites(), delta.writes()) << facility->name();

      ASSERT_EQ(trace.stages().size(), 2u) << facility->name();
      const TraceSpan& selection = trace.stages()[0];
      const TraceSpan& resolution = trace.stages()[1];
      EXPECT_EQ(selection.name, "candidate selection");
      EXPECT_EQ(resolution.name, "resolution");
      EXPECT_EQ(selection.candidates,
                static_cast<int64_t>(result->num_candidates));
      EXPECT_EQ(resolution.candidates,
                static_cast<int64_t>(result->num_candidates));
      EXPECT_EQ(resolution.false_drops,
                static_cast<int64_t>(result->num_false_drops));
      // Children subdivide their parent exactly.
      uint64_t child_pages = 0;
      for (const TraceSpan& child : selection.children) {
        child_pages += child.pages();
      }
      EXPECT_EQ(child_pages, selection.pages()) << facility->name();
    }
  }
}

// Guarantee 2, serial: tracing must not change what it measures.
TEST_F(QueryTraceTest, DisabledTracingIsBitForBitIdenticalSerial) {
  constexpr int kTrials = 8;
  for (QueryKind kind : {QueryKind::kSuperset, QueryKind::kSubset}) {
    std::vector<std::pair<uint64_t, uint64_t>> untraced;
    Rng rng_a(99);
    for (int t = 0; t < kTrials; ++t) {
      ElementSet query = kind == QueryKind::kSuperset ? SupersetQuery(rng_a)
                                                      : SubsetQuery(rng_a);
      for (SetAccessFacility* facility : Facilities()) {
        db_.storage().ResetStats();
        ASSERT_TRUE(
            ExecuteSetQuery(facility, db_.store(), kind, query).ok());
        IoStats delta = db_.storage().TotalStats();
        untraced.emplace_back(delta.reads(), delta.writes());
      }
    }
    // Same seed, same queries, tracing on.
    size_t i = 0;
    Rng rng_b(99);
    for (int t = 0; t < kTrials; ++t) {
      ElementSet query = kind == QueryKind::kSuperset ? SupersetQuery(rng_b)
                                                      : SubsetQuery(rng_b);
      for (SetAccessFacility* facility : Facilities()) {
        db_.storage().ResetStats();
        QueryTrace trace;
        ASSERT_TRUE(ExecuteSetQuery(facility, db_.store(), kind, query,
                                    nullptr, &trace)
                        .ok());
        IoStats delta = db_.storage().TotalStats();
        EXPECT_EQ(delta.reads(), untraced[i].first)
            << facility->name() << " trial " << t;
        EXPECT_EQ(delta.writes(), untraced[i].second)
            << facility->name() << " trial " << t;
        ++i;
      }
    }
  }
}

// Guarantee 2, parallel: identical page counts with a 4-thread pool, traced
// and untraced (worker-local stats merge before the trace snapshots them).
TEST_F(QueryTraceTest, DisabledTracingIsBitForBitIdenticalFourThreads) {
  ThreadPool pool(4);
  ParallelExecutionContext ctx;
  ctx.pool = &pool;
  constexpr int kTrials = 6;
  for (QueryKind kind : {QueryKind::kSuperset, QueryKind::kSubset}) {
    std::vector<std::pair<uint64_t, uint64_t>> untraced;
    Rng rng_a(123);
    for (int t = 0; t < kTrials; ++t) {
      ElementSet query = kind == QueryKind::kSuperset ? SupersetQuery(rng_a)
                                                      : SubsetQuery(rng_a);
      db_.storage().ResetStats();
      ASSERT_TRUE(
          ExecuteSetQuery(&db_.bssf(), db_.store(), kind, query, &ctx).ok());
      IoStats delta = db_.storage().TotalStats();
      untraced.emplace_back(delta.reads(), delta.writes());
    }
    Rng rng_b(123);
    for (int t = 0; t < kTrials; ++t) {
      ElementSet query = kind == QueryKind::kSuperset ? SupersetQuery(rng_b)
                                                      : SubsetQuery(rng_b);
      db_.storage().ResetStats();
      QueryTrace trace;
      ASSERT_TRUE(ExecuteSetQuery(&db_.bssf(), db_.store(), kind, query, &ctx,
                                  &trace)
                      .ok());
      IoStats delta = db_.storage().TotalStats();
      EXPECT_EQ(delta.reads(), untraced[t].first) << "trial " << t;
      EXPECT_EQ(delta.writes(), untraced[t].second) << "trial " << t;
      EXPECT_EQ(trace.TotalPages(), delta.total()) << "trial " << t;
    }
  }
}

// Guarantee 3a: breakdown totals equal the cost functions the advisor uses.
TEST(CostBreakdownTest, TotalsEqualCostFunctions) {
  const DatabaseParams db;
  const NixParams nix;
  const SignatureParams sig{500, 2};
  const int64_t dt = 10;
  for (int64_t dq : {1, 2, 5, 10}) {
    EXPECT_NEAR(SsfBreakdown(db, sig, dt, dq, QueryKind::kSuperset).total(),
                SsfRetrievalCost(db, sig, dt, dq, QueryKind::kSuperset),
                1e-9);
    EXPECT_NEAR(BssfSupersetBreakdown(db, sig, dt, dq, dq).total(),
                BssfRetrievalSuperset(db, sig, dt, dq), 1e-9);
    int64_t k = 0;
    double smart = BssfSmartSupersetCost(db, sig, dt, dq, &k);
    EXPECT_NEAR(BssfSupersetBreakdown(db, sig, dt, dq, k).total(), smart,
                1e-9);
    int64_t knix = 0;
    double smart_nix = NixSmartSupersetCost(db, nix, dt, dq, &knix);
    EXPECT_NEAR(NixSupersetBreakdown(db, nix, dt, dq, knix).total(),
                smart_nix, 1e-9);
    EXPECT_NEAR(NixSupersetBreakdown(db, nix, dt, dq, dq).total(),
                NixRetrievalSuperset(db, nix, dt, dq), 1e-9);
  }
  for (int64_t dq : {20, 100, 300}) {
    EXPECT_NEAR(SsfBreakdown(db, sig, dt, dq, QueryKind::kSubset).total(),
                SsfRetrievalCost(db, sig, dt, dq, QueryKind::kSubset), 1e-9);
    EXPECT_NEAR(BssfSubsetBreakdown(db, sig, dt, dq, -1).total(),
                BssfRetrievalSubset(db, sig, dt, dq), 1e-9);
    int64_t s = 0;
    double smart = BssfSmartSubsetCost(db, sig, dt, dq, &s);
    EXPECT_NEAR(BssfSubsetBreakdown(db, sig, dt, dq, s).total(), smart,
                1e-9);
    EXPECT_NEAR(NixSubsetBreakdown(db, nix, dt, dq).total(),
                NixRetrievalSubset(db, nix, dt, dq), 1e-9);
  }
  // The plain NIX superset path is exact — the feedback correction must be
  // able to rely on expected_false_drops == 0.
  EXPECT_DOUBLE_EQ(NixSupersetBreakdown(db, nix, dt, 5, 5).expected_false_drops,
                   0.0);
}

class SetIndexExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetIndex::Options options;
    options.maintain_ssf = true;
    options.maintain_bssf = true;
    options.maintain_nix = true;
    options.sig = {128, 2};
    options.capacity = 4096;
    options.domain_estimate = 200;
    auto index = SetIndex::Create(&storage_, "attr", options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = std::move(*index);
    Rng rng(1);
    for (int i = 0; i < 400; ++i) {
      sets_.push_back(rng.SampleWithoutReplacement(200, 6));
      ASSERT_TRUE(index_->Insert(sets_.back()).ok());
    }
  }

  StorageManager storage_;
  std::unique_ptr<SetIndex> index_;
  std::vector<ElementSet> sets_;
};

// Guarantee 3b: EXPLAIN on both paper search conditions carries per-stage
// measured pages AND the model's prediction for the same stage.
TEST_F(SetIndexExplainTest, ExplainAttachesPredictionsForBothConditions) {
  Rng rng(5);
  ElementSet superset_q = MakeHittingSupersetQuery(sets_[10], 2, rng);
  ElementSet subset_q = MakeHittingSubsetQuery(sets_[11], 200, 40, rng);
  struct Case {
    QueryKind kind;
    ElementSet query;
  };
  for (const Case& c : {Case{QueryKind::kSuperset, superset_q},
                        Case{QueryKind::kSubset, subset_q}}) {
    auto explain = index_->Explain(c.kind, c.query);
    ASSERT_TRUE(explain.ok()) << explain.status().ToString();
    const QueryTrace& trace = explain->trace;
    EXPECT_EQ(trace.kind, QueryKindName(c.kind));
    EXPECT_FALSE(trace.plan.empty());
    // Accounting closure at the facade level too.
    EXPECT_EQ(trace.TotalPages(), explain->result.page_accesses);
    // The whole-plan prediction and each stage's slice of it.
    EXPECT_GT(trace.predicted_total, 0.0);
    ASSERT_EQ(trace.stages().size(), 2u);
    EXPECT_EQ(trace.stages()[0].name, "candidate selection");
    EXPECT_GE(trace.stages()[0].predicted_pages, 0.0);
    EXPECT_EQ(trace.stages()[1].name, "resolution");
    EXPECT_GE(trace.stages()[1].predicted_pages, 0.0);
    // Rendering: header plus a measured-vs-predicted table; JSON carries
    // the stage array.
    EXPECT_NE(explain->text.find("EXPLAIN"), std::string::npos);
    EXPECT_NE(explain->text.find("candidate selection"), std::string::npos);
    EXPECT_NE(explain->text.find("resolution"), std::string::npos);
    EXPECT_NE(explain->text.find("predicted"), std::string::npos);
    EXPECT_NE(explain->json.find("\"stages\""), std::string::npos);
    EXPECT_NE(explain->json.find("\"predicted_total\""), std::string::npos);
  }
}

TEST_F(SetIndexExplainTest, ExplainMatchesQueryExactly) {
  Rng rng(9);
  ElementSet query = MakeHittingSupersetQuery(sets_[3], 2, rng);
  auto plain = index_->Query(QueryKind::kSuperset, query);
  ASSERT_TRUE(plain.ok());
  auto explain = index_->Explain(QueryKind::kSuperset, query);
  ASSERT_TRUE(explain.ok());
  // Same plan, same answer, same page accesses — EXPLAIN is not allowed to
  // perturb what it observes.
  EXPECT_EQ(explain->result.plan, plain->plan);
  EXPECT_EQ(explain->result.page_accesses, plain->page_accesses);
  std::vector<Oid> a = plain->result.oids;
  std::vector<Oid> b = explain->result.result.oids;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(SetIndexExplainTest, QueriesFeedTheMetricsRegistry) {
  Rng rng(11);
  ElementSet query = MakeHittingSupersetQuery(sets_[7], 2, rng);
  ASSERT_TRUE(index_->Query(QueryKind::kSuperset, query).ok());
  ASSERT_TRUE(index_->Query(QueryKind::kSuperset, query).ok());
  MetricsRegistry* metrics = index_->metrics();
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->CounterValue("query.count"), 2u);
  const Histogram* pages = metrics->FindHistogram("query.pages");
  ASSERT_NE(pages, nullptr);
  EXPECT_EQ(pages->count(), 2u);
  const Histogram* latency = metrics->FindHistogram("query.latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 2u);
}

TEST(DatabaseExplainTest, ConjunctionTraceCoversDriverAndResolution) {
  StorageManager storage;
  Database::Options options;
  Database::AttributeOptions courses;
  courses.name = "courses";
  courses.domain_estimate = 100;
  courses.sig = {128, 2};
  Database::AttributeOptions hobbies;
  hobbies.name = "hobbies";
  hobbies.domain_estimate = 50;
  hobbies.sig = {128, 2};
  options.attributes = {courses, hobbies};
  options.capacity = 4096;
  auto db = Database::Create(&storage, "class", options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*db)->Insert({rng.SampleWithoutReplacement(100, 5),
                               rng.SampleWithoutReplacement(50, 4)})
                    .ok());
  }
  SetPredicate p1{"courses", QueryKind::kSuperset, {1, 2}};
  SetPredicate p2{"hobbies", QueryKind::kOverlaps, {3, 4, 5}};
  auto explain = (*db)->Explain({p1, p2});
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_FALSE(explain->result.driver.empty());
  EXPECT_EQ(explain->trace.TotalPages(), explain->result.page_accesses);
  ASSERT_EQ(explain->trace.stages().size(), 2u);
  EXPECT_EQ(explain->trace.stages()[0].name, "candidate selection");
  EXPECT_EQ(explain->trace.stages()[1].name, "resolution");
  EXPECT_NE(explain->text.find("EXPLAIN"), std::string::npos);
  // The same conjunction through Query() must cost the same pages.
  auto plain = (*db)->Query({p1, p2});
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->page_accesses, explain->result.page_accesses);
  EXPECT_EQ(plain->driver, explain->result.driver);
}

}  // namespace
}  // namespace sigsetdb
