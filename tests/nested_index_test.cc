#include "nix/nested_index.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sigsetdb {
namespace {

Oid MakeOid(uint64_t i) {
  return Oid::FromLocation(static_cast<PageId>(i), 0);
}

class NestedIndexTest : public ::testing::Test {
 protected:
  void MakeIndex(uint32_t fanout = kPaperFanout) {
    auto nix = NestedIndex::Create(&file_, fanout);
    ASSERT_TRUE(nix.ok()) << nix.status().ToString();
    nix_ = std::move(*nix);
  }

  // Populates `count` random sets and returns them.
  std::vector<ElementSet> Populate(uint64_t count, uint64_t domain,
                                   uint64_t dt, uint64_t seed) {
    Rng rng(seed);
    std::vector<ElementSet> sets;
    for (uint64_t i = 0; i < count; ++i) {
      sets.push_back(rng.SampleWithoutReplacement(domain, dt));
      EXPECT_TRUE(nix_->Insert(MakeOid(i), sets.back()).ok());
    }
    return sets;
  }

  InMemoryPageFile file_{"nix"};
  std::unique_ptr<NestedIndex> nix_;
};

TEST_F(NestedIndexTest, SupersetCandidatesAreExact) {
  MakeIndex();
  auto sets = Populate(300, 100, 5, 1);
  ElementSet query = {sets[10][0], sets[10][3]};
  NormalizeSet(&query);
  auto result = nix_->Candidates(QueryKind::kSuperset, query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact);
  std::set<Oid> got(result->oids.begin(), result->oids.end());
  for (uint64_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(got.count(MakeOid(i)) > 0, IsSubset(query, sets[i]))
        << "object " << i;
  }
}

TEST_F(NestedIndexTest, SubsetCandidatesAreUnionOfPostings) {
  MakeIndex();
  auto sets = Populate(200, 60, 4, 2);
  Rng rng(3);
  ElementSet query = rng.SampleWithoutReplacement(60, 20);
  auto result = nix_->Candidates(QueryKind::kSubset, query);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exact);
  std::set<Oid> got(result->oids.begin(), result->oids.end());
  for (uint64_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(got.count(MakeOid(i)) > 0, Overlaps(sets[i], query))
        << "object " << i;
    if (IsSubset(sets[i], query)) {
      EXPECT_TRUE(got.count(MakeOid(i))) << "missing true subset match " << i;
    }
  }
}

TEST_F(NestedIndexTest, OverlapCandidatesAreExact) {
  MakeIndex();
  auto sets = Populate(150, 50, 3, 4);
  ElementSet query = {sets[0][0], sets[99][2]};
  NormalizeSet(&query);
  auto result = nix_->Candidates(QueryKind::kOverlaps, query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact);
  std::set<Oid> got(result->oids.begin(), result->oids.end());
  for (uint64_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(got.count(MakeOid(i)) > 0, Overlaps(sets[i], query));
  }
}

TEST_F(NestedIndexTest, EqualsCandidatesContainTrueMatches) {
  MakeIndex();
  auto sets = Populate(100, 40, 3, 5);
  auto result = nix_->Candidates(QueryKind::kEquals, sets[17]);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exact);
  EXPECT_TRUE(std::find(result->oids.begin(), result->oids.end(),
                        MakeOid(17)) != result->oids.end());
  // All candidates are supersets of the query.
  std::set<Oid> got(result->oids.begin(), result->oids.end());
  for (uint64_t i = 0; i < sets.size(); ++i) {
    if (got.count(MakeOid(i))) {
      EXPECT_TRUE(IsSubset(sets[17], sets[i]));
    }
  }
}

TEST_F(NestedIndexTest, SmartSupersetUsesRequestedLookups) {
  MakeIndex();
  auto sets = Populate(300, 100, 6, 6);
  ElementSet query = {sets[5][0], sets[5][2], sets[5][4]};
  NormalizeSet(&query);
  auto smart = nix_->CandidatesSmartSuperset(query, 2);
  ASSERT_TRUE(smart.ok());
  EXPECT_FALSE(smart->exact);
  // Smart candidates are a superset of the exact answer.
  auto exact = nix_->Candidates(QueryKind::kSuperset, query);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(std::includes(smart->oids.begin(), smart->oids.end(),
                            exact->oids.begin(), exact->oids.end()));
}

TEST_F(NestedIndexTest, SmartSupersetRejectsEmptyQuery) {
  MakeIndex();
  EXPECT_EQ(nix_->CandidatesSmartSuperset({}, 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(NestedIndexTest, RemoveDropsPostings) {
  MakeIndex();
  ASSERT_TRUE(nix_->Insert(MakeOid(0), {1, 2}).ok());
  ASSERT_TRUE(nix_->Insert(MakeOid(1), {2, 3}).ok());
  ASSERT_TRUE(nix_->Remove(MakeOid(0), {1, 2}).ok());
  auto result = nix_->Candidates(QueryKind::kSuperset, {2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->oids, std::vector<Oid>{MakeOid(1)});
}

TEST_F(NestedIndexTest, BulkBuildMatchesIncremental) {
  MakeIndex();
  Rng rng(7);
  std::vector<Oid> oids;
  std::vector<ElementSet> sets;
  for (uint64_t i = 0; i < 400; ++i) {
    oids.push_back(MakeOid(i));
    sets.push_back(rng.SampleWithoutReplacement(80, 5));
  }
  ASSERT_TRUE(nix_->BulkBuild(oids, sets).ok());

  InMemoryPageFile file2("nix2");
  auto nix2 = NestedIndex::Create(&file2);
  ASSERT_TRUE(nix2.ok());
  for (uint64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE((*nix2)->Insert(oids[i], sets[i]).ok());
  }
  for (uint64_t e = 0; e < 80; ++e) {
    auto a = nix_->tree().Lookup(e);
    auto b = (*nix2)->tree().Lookup(e);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    std::sort(b->begin(), b->end());
    EXPECT_EQ(*a, *b) << "element " << e;
  }
}

TEST_F(NestedIndexTest, BulkBuildSizeMismatchRejected) {
  MakeIndex();
  EXPECT_EQ(nix_->BulkBuild({MakeOid(0)}, {}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(NestedIndexTest, SupersetLookupCostMatchesRcTimesDq) {
  MakeIndex(/*fanout=*/8);
  Populate(2000, 300, 5, 8);
  // With small fanout the tree is at least height 2 => rc = height+1.
  uint32_t rc = nix_->tree().height() + 1;
  ElementSet query = {5, 17, 200};
  file_.stats().Reset();
  ASSERT_TRUE(nix_->Candidates(QueryKind::kSuperset, query).ok());
  EXPECT_EQ(file_.stats().page_reads, rc * query.size());
}

}  // namespace
}  // namespace sigsetdb
