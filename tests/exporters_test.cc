// Exporters: the OpenMetrics text exposition and the Chrome trace-event
// (Perfetto) JSON writer.  Both are held to the round-trip standard — the
// exposition passes a line-level format lint implementing the OpenMetrics
// grammar subset we emit, and every trace document passes the strict JSON
// validator.

#include "obs/openmetrics.h"
#include "obs/trace_event.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "json_validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sigsetdb {
namespace {

// Line-level lint of the OpenMetrics exposition: every line must be a
// comment ("# TYPE <name> <type>" or "# EOF"), or a sample
// "<name>[{le=\"<bound>\"}] <value>"; histogram buckets must be cumulative
// (non-decreasing, ending in the +Inf bucket == _count); the exposition
// must end with exactly one "# EOF".
void LintOpenMetrics(const std::string& body) {
  std::istringstream in(body);
  std::string line;
  bool saw_eof = false;
  std::map<std::string, uint64_t> last_bucket;  // metric -> last cumulative
  std::map<std::string, uint64_t> inf_bucket;
  std::map<std::string, uint64_t> count_sample;
  while (std::getline(in, line)) {
    ASSERT_FALSE(saw_eof) << "content after # EOF: " << line;
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      std::istringstream fields(line);
      std::string hash, keyword, name, type;
      fields >> hash >> keyword >> name >> type;
      EXPECT_EQ(keyword, "TYPE") << line;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      EXPECT_EQ(name.find_first_not_of(
                    "abcdefghijklmnopqrstuvwxyz"
                    "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"),
                std::string::npos)
          << "bad metric charset: " << name;
      continue;
    }
    // Sample line: name or name{le="bound"}, one space, one value.
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name_part = line.substr(0, space);
    const std::string value_part = line.substr(space + 1);
    ASSERT_FALSE(value_part.empty()) << line;
    char* end = nullptr;
    const double value = std::strtod(value_part.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable sample value: " << line;

    const size_t brace = name_part.find('{');
    if (brace != std::string::npos) {
      // Our only label is le="..." on _bucket samples.
      const std::string base = name_part.substr(0, brace);
      EXPECT_TRUE(base.size() > 7 &&
                  base.compare(base.size() - 7, 7, "_bucket") == 0)
          << line;
      const std::string label = name_part.substr(brace);
      EXPECT_EQ(label.find("{le=\""), 0u) << line;
      EXPECT_EQ(label.back(), '}') << line;
      const std::string metric = base.substr(0, base.size() - 7);
      const uint64_t cumulative = static_cast<uint64_t>(value);
      if (last_bucket.count(metric) != 0) {
        EXPECT_GE(cumulative, last_bucket[metric])
            << "non-cumulative bucket: " << line;
      }
      last_bucket[metric] = cumulative;
      if (label == "{le=\"+Inf\"}") inf_bucket[metric] = cumulative;
    } else if (name_part.size() > 6 &&
               name_part.compare(name_part.size() - 6, 6, "_count") == 0) {
      count_sample[name_part.substr(0, name_part.size() - 6)] =
          static_cast<uint64_t>(value);
    }
  }
  EXPECT_TRUE(saw_eof) << "exposition does not end with # EOF";
  for (const auto& [metric, count] : count_sample) {
    if (inf_bucket.count(metric) != 0) {
      EXPECT_EQ(inf_bucket[metric], count)
          << metric << ": +Inf bucket must equal _count";
    }
  }
}

TEST(SanitizeMetricNameTest, MapsOutOfCharsetToUnderscore) {
  EXPECT_EQ(SanitizeMetricName("query.bssf.count"), "query_bssf_count");
  EXPECT_EQ(SanitizeMetricName("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(SanitizeMetricName("Already_OK_9"), "Already_OK_9");
}

TEST(OpenMetricsTest, ExportsAllKindsAndLints) {
  MetricsRegistry registry;
  registry.counter("query.count")->Increment(3);
  registry.gauge("epoch.pins")->Set(2.5);
  Histogram* h = registry.histogram("op.insert.latency_us");
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 1024ull}) h->Record(v);

  const std::string body = ExportOpenMetrics(registry);
  LintOpenMetrics(body);
  EXPECT_NE(body.find("# TYPE sigset_query_count counter\n"),
            std::string::npos);
  EXPECT_NE(body.find("sigset_query_count_total 3\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE sigset_epoch_pins gauge\n"), std::string::npos);
  EXPECT_NE(body.find("sigset_epoch_pins 2.5\n"), std::string::npos);
  EXPECT_NE(
      body.find("# TYPE sigset_op_insert_latency_us histogram\n"),
      std::string::npos);
  // Value 0 -> bucket le="0" count 1; values 1,2,3 cumulative by 2^i-1;
  // 1024 lands at le="2047"; +Inf repeats the total.
  EXPECT_NE(body.find("sigset_op_insert_latency_us_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(body.find("sigset_op_insert_latency_us_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(body.find("sigset_op_insert_latency_us_bucket{le=\"3\"} 4\n"),
            std::string::npos);
  EXPECT_NE(body.find("sigset_op_insert_latency_us_bucket{le=\"2047\"} 5\n"),
            std::string::npos);
  EXPECT_NE(body.find("sigset_op_insert_latency_us_bucket{le=\"+Inf\"} 5\n"),
            std::string::npos);
  EXPECT_NE(body.find("sigset_op_insert_latency_us_sum 1030\n"),
            std::string::npos);
  EXPECT_NE(body.find("sigset_op_insert_latency_us_count 5\n"),
            std::string::npos);
  EXPECT_EQ(body.rfind("# EOF\n"), body.size() - 6);
}

TEST(OpenMetricsTest, EmptyRegistryIsJustEof) {
  MetricsRegistry registry;
  EXPECT_EQ(ExportOpenMetrics(registry), "# EOF\n");
}

TEST(OpenMetricsTest, CustomPrefixAndFile) {
  MetricsRegistry registry;
  registry.counter("hits")->Increment();
  const std::string body = ExportOpenMetrics(registry, "acme");
  EXPECT_NE(body.find("acme_hits_total 1\n"), std::string::npos);
  LintOpenMetrics(body);

  const std::string path = ::testing::TempDir() + "exporters_test.om";
  ASSERT_TRUE(WriteOpenMetricsFile(registry, path, "acme").ok());
  std::ifstream in(path);
  std::stringstream read_back;
  read_back << in.rdbuf();
  EXPECT_EQ(read_back.str(), body);
  std::remove(path.c_str());
}

// A synthetic two-stage trace with parallel worker children, the shape the
// db layer produces with num_threads > 1.
QueryTrace MakeWorkerTrace() {
  QueryTrace trace;
  trace.plan = "bssf plain";
  trace.kind = "superset";
  trace.dq = 3;
  trace.predicted_total = 8.25;
  TraceSpan* selection = trace.AddStage("candidate selection");
  selection->page_reads = 6;
  selection->wall_ms = 0.4;
  selection->candidates = 10;
  TraceSpan untimed;
  untimed.name = "bssf.slices";
  untimed.page_reads = 6;
  selection->children.push_back(untimed);
  TraceSpan* resolution = trace.AddStage("resolution");
  resolution->page_reads = 10;
  resolution->wall_ms = 1.2;
  resolution->candidates = 10;
  resolution->false_drops = 2;
  for (int w = 0; w < 3; ++w) {
    TraceSpan child;
    child.name = "worker " + std::to_string(w);
    child.page_reads = 3;
    child.wall_ms = 0.3 + 0.1 * w;
    child.candidates = 3;
    resolution->children.push_back(child);
  }
  return trace;
}

TEST(TraceEventTest, DocumentValidatesAndNamesWorkerTracks) {
  TraceEventWriter writer;
  writer.AddTrace(MakeWorkerTrace());
  // 2 stages + 3 worker children + 1 query parent.
  EXPECT_EQ(writer.num_events(), 6u);
  const std::string json = writer.ToJson();
  std::string error;
  ASSERT_TRUE(testjson::IsValidJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Thread-name metadata for the query track and each worker track.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"queries\""), std::string::npos);
  EXPECT_NE(json.find("\"resolve worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"resolve worker 2\""), std::string::npos);
  // Span args carry the measurements and the attached prediction.
  EXPECT_NE(json.find("\"predicted_pages\":8.25"), std::string::npos);
  EXPECT_NE(json.find("\"false_drops\":2"), std::string::npos);
  // The untimed per-file child folds into its stage's args.
  EXPECT_NE(json.find("\"pages.bssf.slices\":6"), std::string::npos);
}

TEST(TraceEventTest, TracesLayOutSequentiallyWithoutOverlap) {
  TraceEventWriter writer;
  writer.AddTrace(MakeWorkerTrace());
  writer.AddTrace(MakeWorkerTrace());
  const std::string json = writer.ToJson();
  std::string error;
  ASSERT_TRUE(testjson::IsValidJson(json, &error)) << error;
  // Two queries: every event name appears twice.
  size_t count = 0;
  for (size_t pos = 0;
       (pos = json.find("\"candidate selection\"", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
  // Worker tracks are shared between traces (stable tids), so the metadata
  // lists each once.
  count = 0;
  for (size_t pos = 0;
       (pos = json.find("\"resolve worker 0\"", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(TraceEventTest, OneShotAndFileRoundTrip) {
  const QueryTrace trace = MakeWorkerTrace();
  const std::string json = TraceEventJson(trace);
  std::string error;
  ASSERT_TRUE(testjson::IsValidJson(json, &error)) << error;

  TraceEventWriter writer;
  writer.AddTrace(trace);
  const std::string path = ::testing::TempDir() + "exporters_test.trace.json";
  ASSERT_TRUE(writer.WriteFile(path).ok());
  std::ifstream in(path);
  std::stringstream read_back;
  read_back << in.rdbuf();
  EXPECT_EQ(read_back.str(), writer.ToJson());
  std::remove(path.c_str());
}

TEST(TraceEventTest, EmptyTraceStillEmitsQuerySpan) {
  QueryTrace trace;
  TraceEventWriter writer;
  writer.AddTrace(trace);
  EXPECT_EQ(writer.num_events(), 1u);
  const std::string json = writer.ToJson();
  std::string error;
  ASSERT_TRUE(testjson::IsValidJson(json, &error)) << error;
  EXPECT_NE(json.find("\"query\""), std::string::npos);
}

}  // namespace
}  // namespace sigsetdb
