// Ablation — partial slice scan for T ⊆ Q: cost as a function of s.
//
// For a fixed Dq, sweeps the number of zero slices scanned (s) and prints
// the model decomposition (slice reads vs. resolution cost) next to the
// measured totals.  Reproduces the reasoning behind Appendix C: beyond a
// modest s the false drops are already gone and additional slices are
// wasted reads.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/actual_drops.h"
#include "model/cost_bssf.h"
#include "model/cost_ssf.h"
#include "model/false_drop.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  const DatabaseParams db;
  const int64_t dt = 10;
  const int64_t dq = 100;
  const SignatureParams sig{500, 2};

  BenchDb::Options options;
  options.dt = dt;
  options.sig = {500, 2};
  options.build_ssf = false;
  options.build_nix = false;
  BenchDb bench(options);
  const int kTrials = 3;

  double a = ActualDropsSubset(db, dt, dq);
  TablePrinter table({"s", "Fd(s)", "resolution", "RC model", "RC meas"});
  for (int64_t s : {0, 25, 50, 75, 100, 150, 200, 250, 300, 335}) {
    double fd = FalseDropSubsetPartial(sig, dt, static_cast<double>(s));
    double resolution = OidLookupCost(db, fd, a) + db.p_s * a +
                        db.p_u * fd * (static_cast<double>(db.n) - a);
    double rc = static_cast<double>(s) + resolution;
    double meas = bench.MeasureMeanSmartSubsetBssf(
        dq, static_cast<size_t>(s), kTrials, 1500 + s);
    table.AddRow({TablePrinter::Int(s), TablePrinter::Num(fd, 6),
                  TablePrinter::Num(resolution), TablePrinter::Num(rc),
                  TablePrinter::Num(meas)});
  }
  table.Print(std::cout);
  int64_t best_s = 0;
  double best = BssfSmartSubsetCost(db, sig, dt, dq, &best_s);
  std::printf("\nModel optimum: s=%lld at %.1f pages (full zero-slice scan "
              "would read %.0f slices).\n",
              static_cast<long long>(best_s), best,
              static_cast<double>(sig.f) - ExpectedSignatureWeight(sig, dq));
}

}  // namespace
}  // namespace sigsetdb

int main() {
  sigsetdb::PrintBenchHeader(
      "Ablation", "partial slice scan for T ⊆ Q (Dt=10, Dq=100, F=500, m=2)");
  sigsetdb::Run();
  return 0;
}
