// Paper-claims verification: every quantitative claim of the paper's
// Summary & Conclusion (§6), checked automatically against the analytical
// model and, where feasible in one binary, the real structures at full
// scale.  Prints PASS/FAIL per claim — the one-page answer to "did the
// reproduction hold?".

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "model/false_drop.h"

namespace sigsetdb {
namespace {

int failures = 0;

void Claim(const char* text, bool holds) {
  std::printf("  [%s] %s\n", holds ? "PASS" : "FAIL", text);
  if (!holds) ++failures;
}

void Run() {
  const DatabaseParams db;
  const NixParams nix;

  std::printf("\n§6 storage claims (model):\n");
  Claim("storage order SSF <= BSSF << NIX at every paper configuration",
        SsfStorageCost(db, {250, 2}) <= BssfStorageCost(db, {250, 2}) &&
            BssfStorageCost(db, {250, 2}) < NixStorageCost(db, nix, 10) &&
            SsfStorageCost(db, {500, 2}) <= BssfStorageCost(db, {500, 2}) &&
            BssfStorageCost(db, {500, 2}) < NixStorageCost(db, nix, 10) &&
            SsfStorageCost(db, {1000, 2}) <= BssfStorageCost(db, {1000, 2}) &&
            BssfStorageCost(db, {2500, 3}) < NixStorageCost(db, nix, 100));
  Claim("SSF storage ~45% / ~80% of NIX at Dt=10 (F=250 / F=500)",
        std::abs(SsfStorageCost(db, {250, 17}) / 690.0 - 0.45) < 0.02 &&
            std::abs(SsfStorageCost(db, {500, 35}) / 690.0 - 0.80) < 0.02);
  Claim("SSF storage ~16% / ~38% of NIX at Dt=100 (F=1000 / F=2500)",
        std::abs(SsfStorageCost(db, {1000, 7}) / 6531.0 - 0.16) < 0.02 &&
            std::abs(SsfStorageCost(db, {2500, 17}) / 6531.0 - 0.38) < 0.02);
  Claim("BSSF storage within 2% of SSF (F=250, Dt=10)",
        std::abs(static_cast<double>(BssfStorageCost(db, {250, 2})) /
                     SsfStorageCost(db, {250, 2}) -
                 1.0) < 0.02);

  std::printf("\n§6 update-cost claims (model):\n");
  Claim("SSF insertion is the cheapest (UC_I = 2)",
        SsfInsertCost() < BssfInsertCost({250, 2}) &&
            SsfInsertCost() < NixInsertCost(db, nix, 10));
  Claim("BSSF insertion ~ F + 1; deletion equals SSF's SC_OID/2",
        BssfInsertCost({250, 2}) == 251.0 &&
            BssfDeleteCost(db) == SsfDeleteCost(db));
  Claim("NIX insert = delete = rc*Dt (30 at Dt=10, 300 at Dt=100)",
        NixInsertCost(db, nix, 10) == 30.0 &&
            NixDeleteCost(db, nix, 100) == 300.0);
  Claim("sparse BSSF insertion (our §6 extension) beats F+1 by >10x",
        BssfInsertCostSparse({250, 2}, 10) * 10 < BssfInsertCost({250, 2}));

  std::printf("\n§6 retrieval claims for T ⊇ Q (model):\n");
  Claim("SSF inferior to BSSF for all Dq (small m, Dt=10)", [&] {
    for (int64_t dq = 1; dq <= 10; ++dq) {
      if (BssfRetrievalSuperset(db, {500, 2}, 10, dq) >=
          SsfRetrievalCost(db, {500, 2}, 10, dq, QueryKind::kSuperset)) {
        return false;
      }
    }
    return true;
  }());
  Claim("NIX more efficient than BSSF at Dq=1 in all investigated cases",
        NixRetrievalSuperset(db, nix, 10, 1) <
                BssfSmartSupersetCost(db, {250, 2}, 10, 1) &&
            NixRetrievalSuperset(db, nix, 10, 1) <
                BssfSmartSupersetCost(db, {500, 2}, 10, 1) &&
            NixRetrievalSuperset(db, nix, 100, 1) <
                BssfSmartSupersetCost(db, {1000, 2}, 100, 1) &&
            NixRetrievalSuperset(db, nix, 100, 1) <
                BssfSmartSupersetCost(db, {2500, 3}, 100, 1));
  Claim("smart BSSF within ~15% of smart NIX for Dq >= 2 (Dt=10, F=250)",
        [&] {
          for (int64_t dq = 2; dq <= 10; ++dq) {
            if (BssfSmartSupersetCost(db, {250, 2}, 10, dq) >
                1.15 * NixSmartSupersetCost(db, nix, 10, dq)) {
              return false;
            }
          }
          return true;
        }());
  Claim("smart strategies flatten both curves to constants for Dq >= 3",
        BssfSmartSupersetCost(db, {250, 2}, 10, 3) ==
                BssfSmartSupersetCost(db, {250, 2}, 10, 10) &&
            NixSmartSupersetCost(db, nix, 10, 3) ==
                NixSmartSupersetCost(db, nix, 10, 10));

  std::printf("\n§6 retrieval claims for T ⊆ Q (model):\n");
  Claim("BSSF below SSF for all Dq (m=2, F=500, Dt=10)", [&] {
    for (int64_t dq : {10, 50, 100, 300, 600, 1000}) {
      if (BssfRetrievalSubset(db, {500, 2}, 10, dq) >
          SsfRetrievalCost(db, {500, 2}, 10, dq, QueryKind::kSubset) +
              1e-9) {
        return false;
      }
    }
    return true;
  }());
  Claim("smart BSSF constant for Dq <= Dq_opt and far below NIX",
        std::abs(BssfSmartSubsetCost(db, {500, 2}, 10, 10) -
                 BssfSmartSubsetCost(db, {500, 2}, 10, 200)) < 0.01 &&
            BssfSmartSubsetCost(db, {500, 2}, 10, 100) * 5 <
                NixRetrievalSubset(db, nix, 10, 100));
  Claim("plain BSSF(m=2) cost minimum near Dq = 300 (paper Fig. 8)",
        std::abs(BssfDqOpt(db, {500, 2}, 10) - 290.0) < 25.0);

  std::printf("\n§6 tuning claims (model):\n");
  Claim("m_opt minimizes Fd but a far smaller m minimizes cost", [&] {
    uint32_t m_opt = RoundedMopt(500, 10);  // 35
    double best_cost = 1e18;
    int64_t best_m = 0;
    for (int64_t m = 1; m <= 40; ++m) {
      double cost = BssfRetrievalSuperset(db, {500, m}, 10, 3);
      if (cost < best_cost) {
        best_cost = cost;
        best_m = m;
      }
    }
    return best_m <= 4 && best_m < static_cast<int64_t>(m_opt) / 4;
  }());

  std::printf("\nMeasured spot checks (real structures, full scale):\n");
  {
    BenchDb::Options options;
    options.dt = 10;
    options.sig = {500, 2};
    options.build_ssf = false;
    BenchDb bench(options);
    double rc2 = bench.MeasureMean(&bench.bssf(), QueryKind::kSuperset, 2,
                                   10, 42);
    Claim("measured BSSF(F=500,m=2) T⊇Q cost at Dq=2 is ~4 pages",
          std::abs(rc2 - 4.0) < 1.0);
    double rc3 = bench.MeasureMean(&bench.bssf(), QueryKind::kSuperset, 3,
                                   10, 43);
    Claim("measured BSSF(F=500,m=2) T⊇Q cost at Dq=3 is ~6 pages",
          std::abs(rc3 - 6.0) < 1.0);
    double nix1 = bench.MeasureMean(&bench.nix(), QueryKind::kSuperset, 1,
                                    10, 44);
    Claim("measured NIX T⊇Q cost at Dq=1 is ~27.6 pages",
          std::abs(nix1 - 27.6) < 5.0);
    double smart_sub = bench.MeasureMeanSmartSubsetBssf(50, 169, 5, 45);
    double nix_sub = bench.MeasureMean(&bench.nix(), QueryKind::kSubset, 50,
                                       3, 46);
    Claim("measured smart-subset BSSF beats NIX by >5x at Dq=50",
          smart_sub * 5 < nix_sub);
    Claim("measured NIX storage equals Table 5 within 1% (Dt=10)",
          std::abs(static_cast<double>(bench.nix().StoragePages()) - 690.0) <
              7.0);
  }

  std::printf("\n%s — %d failing claim(s)\n",
              failures == 0 ? "ALL CLAIMS REPRODUCED" : "REPRODUCTION GAPS",
              failures);
}

}  // namespace
}  // namespace sigsetdb

int main() {
  sigsetdb::PrintBenchHeader(
      "Paper claims", "automated verification of the §6 conclusions");
  sigsetdb::Run();
  return sigsetdb::failures == 0 ? 0 : 1;
}
