// Figure 10 — smart retrieval cost for T ⊆ Q, Dt = 100.
//
// Series: BSSF F=1000 m=2 and F=2500 m=3 under the partial slice-scan
// strategy, versus NIX.  Dq sweeps from Dt (=100) upward.  `meas` runs the
// real F=2500 structure with the smart executor at full scale.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  const DatabaseParams db;
  const NixParams nix;
  const int64_t dt = 100;

  BenchDb::Options options;
  options.dt = dt;
  options.sig = {2500, 3};
  options.build_ssf = false;
  options.build_nix = false;
  BenchDb bench(options);
  const int kTrials = 3;

  TablePrinter table({"Dq", "BSSF F=1000 m=2", "BSSF F=2500 m=3", "NIX",
                      "s(F=2500)", "BSSF2500 meas"});
  for (int64_t dq : {100, 200, 300, 500, 700, 1000, 2000}) {
    int64_t s1000 = 0, s2500 = 0;
    double b1000 = BssfSmartSubsetCost(db, {1000, 2}, dt, dq, &s1000);
    double b2500 = BssfSmartSubsetCost(db, {2500, 3}, dt, dq, &s2500);
    double n_cost = NixRetrievalSubset(db, nix, dt, dq);
    MeasuredCost meas = bench.MeasureSmartSubsetBssf(
        dq, static_cast<size_t>(s2500), kTrials, 1200 + dq);
    EmitBenchRecord("bssf.smart_subset",
                    {{"dq", static_cast<double>(dq)},
                     {"f", 2500},
                     {"m", 3},
                     {"s", static_cast<double>(s2500)}},
                    meas, b2500);
    table.AddRow({TablePrinter::Int(dq), TablePrinter::Num(b1000),
                  TablePrinter::Num(b2500), TablePrinter::Num(n_cost),
                  TablePrinter::Int(s2500), TablePrinter::Num(meas.pages)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check (paper): BSSF constant for Dq <= Dq_opt (~%.0f for "
      "F=2500 m=3) and well below NIX throughout.\n",
      BssfDqOpt(db, {2500, 3}, dt));
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("fig10", argc, argv);
  sigsetdb::PrintBenchHeader("Figure 10",
                             "smart retrieval cost for T ⊆ Q (Dt=100)");
  sigsetdb::Run();
  return 0;
}
