// Extension — varying target-set cardinality (paper §6 future work).
//
// The paper assumes every target set has exactly Dt elements and lists
// "cost analysis for cases where the cardinality of target sets varies" as
// future work.  This bench populates databases whose cardinalities are
// uniform in [Dt/2, 3Dt/2] (same mean) and measures how the BSSF superset
// cost and false-drop counts shift against the fixed-Dt model: heavier
// sets raise the per-signature weight, so Fd computed at the *mean* Dt
// underestimates the mixture's false drops (Jensen's inequality on the
// convex weight curve).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_bssf.h"
#include "model/false_drop.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

// Builds a BSSF over sets with the given cardinality spec and returns the
// mean measured cost and false-drop count for random Dq=1 superset queries
// (Dq=1 keeps Fd large enough to observe).
struct Outcome {
  double cost;
  double false_drops;
};

Outcome Measure(const CardinalitySpec& spec, uint64_t seed) {
  StorageManager storage;
  WorkloadConfig wconfig{32000, 13000, spec, SkewKind::kUniform, 0.99, seed};
  auto sets = MakeDatabase(wconfig);
  ObjectStore store(storage.CreateOrOpen("objects"));
  std::vector<Oid> oids;
  for (const auto& set : sets) {
    oids.push_back(ValueOrDie(store.Insert(set), "insert"));
  }
  auto bssf = ValueOrDie(
      BitSlicedSignatureFile::Create({500, 2}, 32064,
                                     storage.CreateOrOpen("slices"),
                                     storage.CreateOrOpen("oid"),
                                     BssfInsertMode::kSparse),
      "bssf");
  CheckOk(bssf->BulkLoad(oids, sets), "bulk");
  storage.ResetStats();

  Rng rng(seed + 1);
  const int kTrials = 25;
  uint64_t cost = 0, false_drops = 0;
  for (int t = 0; t < kTrials; ++t) {
    ElementSet query = rng.SampleWithoutReplacement(13000, 1);
    storage.ResetStats();
    auto result = ExecuteSetQuery(bssf.get(), store, QueryKind::kSuperset,
                                  query);
    CheckOk(result.status(), "query");
    cost += storage.TotalStats().total();
    false_drops += result->num_false_drops;
  }
  return {static_cast<double>(cost) / kTrials,
          static_cast<double>(false_drops) / kTrials};
}

void Run() {
  const DatabaseParams db;
  TablePrinter table({"cardinality", "RC meas", "false drops meas",
                      "Fd model (fixed Dt=10)"});
  struct Row {
    const char* label;
    CardinalitySpec spec;
  };
  const double fd_fixed =
      FalseDropSuperset({500, 2}, 10, 1) * static_cast<double>(db.n);
  for (const Row& r : {Row{"fixed 10", CardinalitySpec::Fixed(10)},
                       Row{"uniform [5,15]", CardinalitySpec{5, 15}},
                       Row{"uniform [1,19]", CardinalitySpec{1, 19}}}) {
    Outcome o = Measure(r.spec, 333);
    table.AddRow({r.label, TablePrinter::Num(o.cost),
                  TablePrinter::Num(o.false_drops, 2),
                  TablePrinter::Num(fd_fixed, 2)});
  }
  table.Print(std::cout);

  // Mixture-aware model: average Fd over the cardinality distribution.
  double mixture = 0.0;
  for (int64_t d = 1; d <= 19; ++d) {
    mixture += FalseDropSuperset({500, 2}, d, 1) / 19.0;
  }
  std::printf(
      "\nMixture-model Fd·N for uniform [1,19]: %.2f vs fixed-Dt model "
      "%.2f — variance in Dt inflates false drops (convexity), the effect "
      "the paper flags as future work.\n",
      mixture * static_cast<double>(db.n), fd_fixed);
}

}  // namespace
}  // namespace sigsetdb

int main() {
  sigsetdb::PrintBenchHeader("Extension",
                             "variable target-set cardinality (paper §6)");
  sigsetdb::Run();
  return 0;
}
