// Micro-benchmarks (google-benchmark) for the in-memory hot paths: element
// signature hashing, set-signature construction, bit-packed extraction,
// slice combination, and B+-tree look-ups.  These are CPU-cost complements
// to the page-access experiments (the paper's model is I/O-only).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "nix/btree.h"
#include "sig/bitpack.h"
#include "sig/signature.h"

namespace sigsetdb {
namespace {

void BM_ElementSignature(benchmark::State& state) {
  SignatureConfig config{static_cast<uint32_t>(state.range(0)),
                         static_cast<uint32_t>(state.range(1))};
  uint64_t e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeElementSignature(e++, config));
  }
}
BENCHMARK(BM_ElementSignature)->Args({250, 2})->Args({500, 35})->Args({2500, 17});

void BM_SetSignature(benchmark::State& state) {
  SignatureConfig config{static_cast<uint32_t>(state.range(0)), 2};
  Rng rng(1);
  ElementSet set = rng.SampleWithoutReplacement(13000,
                                                static_cast<uint64_t>(
                                                    state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeSetSignature(set, config));
  }
}
BENCHMARK(BM_SetSignature)->Args({250, 10})->Args({500, 10})->Args({2500, 100});

void BM_BitpackExtract(benchmark::State& state) {
  const size_t f = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> page(kPageSize, 0xa5);
  BitVector out(f);
  size_t slot = 0;
  const size_t slots = kPageBits / f;
  for (auto _ : state) {
    ExtractBits(page.data(), (slot++ % slots) * f, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f / 8));
}
BENCHMARK(BM_BitpackExtract)->Arg(250)->Arg(500)->Arg(2500);

void BM_SupersetMatch(benchmark::State& state) {
  SignatureConfig config{500, 2};
  Rng rng(2);
  BitVector target = MakeSetSignature(
      rng.SampleWithoutReplacement(13000, 10), config);
  BitVector query = MakeSetSignature(
      rng.SampleWithoutReplacement(13000, 3), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchesSuperset(target, query));
  }
}
BENCHMARK(BM_SupersetMatch);

void BM_SliceAndCombine(benchmark::State& state) {
  // Word-wise AND of a page worth of slice bits into an accumulator —
  // the inner loop of every BSSF superset query.
  std::vector<uint64_t> slice(kPageSize / 8, ~0ull);
  BitVector acc(kPageBits);
  acc.SetAll();
  for (auto _ : state) {
    uint64_t* words = acc.mutable_words();
    for (size_t i = 0; i < slice.size(); ++i) words[i] &= slice[i];
    benchmark::DoNotOptimize(words);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPageSize));
}
BENCHMARK(BM_SliceAndCombine);

void BM_BTreeLookup(benchmark::State& state) {
  static StorageManager storage;
  static std::unique_ptr<BTree> tree = [] {
    auto t = ValueOrDie(BTree::Create(storage.CreateOrOpen("bt")), "create");
    std::vector<BTreeEntry> entries;
    for (uint64_t k = 0; k < 13000; ++k) {
      entries.push_back({k, {Oid::FromLocation(static_cast<PageId>(k), 0)}});
    }
    CheckOk(t->BulkLoad(entries), "bulk");
    return t;
  }();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Lookup(rng.NextBelow(13000)));
  }
}
BENCHMARK(BM_BTreeLookup);

void BM_BTreeInsert(benchmark::State& state) {
  StorageManager storage;
  int file_id = 0;
  auto tree = ValueOrDie(
      BTree::Create(storage.CreateOrOpen("bt" + std::to_string(file_id++))),
      "create");
  Rng rng(4);
  uint64_t i = 0;
  for (auto _ : state) {
    CheckOk(tree->Insert(rng.NextBelow(100000),
                         Oid::FromLocation(static_cast<PageId>(i++), 0)),
            "insert");
  }
}
BENCHMARK(BM_BTreeInsert);

}  // namespace
}  // namespace sigsetdb

BENCHMARK_MAIN();
