// Figure 7 — smart retrieval cost for T ⊇ Q, Dt = 100.
//
// Series: BSSF F=1000 m=2 and F=2500 m=3 under the smart k-element
// strategy, versus smart NIX.  The `meas` column runs the real F=2500
// structure at full scale (the heavier of the paper's two Dt=100 configs).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  const DatabaseParams db;
  const NixParams nix;
  const int64_t dt = 100;

  BenchDb::Options options;
  options.dt = dt;
  options.sig = {2500, 3};
  options.build_ssf = false;
  BenchDb bench(options);
  const int kTrials = 5;

  TablePrinter table({"Dq", "BSSF F=1000 m=2", "BSSF F=2500 m=3", "NIX",
                      "k(bssf2500)", "k(nix)", "BSSF2500 meas", "NIX meas"});
  for (int64_t dq = 1; dq <= 10; ++dq) {
    int64_t k1000 = 0, k2500 = 0, knix = 0;
    double b1000 = BssfSmartSupersetCost(db, {1000, 2}, dt, dq, &k1000);
    double b2500 = BssfSmartSupersetCost(db, {2500, 3}, dt, dq, &k2500);
    double n_cost = NixSmartSupersetCost(db, nix, dt, dq, &knix);
    MeasuredCost b_meas = bench.MeasureSmartSupersetBssf(
        dq, static_cast<size_t>(k2500), kTrials, 800 + dq);
    MeasuredCost n_meas = bench.MeasureSmartSupersetNix(
        dq, static_cast<size_t>(knix), kTrials, 900 + dq);
    const double fdq = static_cast<double>(dq);
    EmitBenchRecord("bssf.smart_superset",
                    {{"dq", fdq},
                     {"f", 2500},
                     {"m", 3},
                     {"k", static_cast<double>(k2500)}},
                    b_meas, b2500);
    EmitBenchRecord("nix.smart_superset",
                    {{"dq", fdq}, {"k", static_cast<double>(knix)}}, n_meas,
                    n_cost);
    table.AddRow({TablePrinter::Int(dq), TablePrinter::Num(b1000),
                  TablePrinter::Num(b2500), TablePrinter::Num(n_cost),
                  TablePrinter::Int(k2500), TablePrinter::Int(knix),
                  TablePrinter::Num(b_meas.pages),
                  TablePrinter::Num(n_meas.pages)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check (paper): NIX has the advantage only at Dq=1; BSSF is "
      "almost equal or lower for Dq >= 3.\n");
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("fig7", argc, argv);
  sigsetdb::PrintBenchHeader("Figure 7",
                             "smart retrieval cost for T ⊇ Q (Dt=100)");
  sigsetdb::Run();
  return 0;
}
