// Table 6 — storage cost (pages) of SSF, BSSF and NIX for the paper's
// parameter grid: Dt=10 with F ∈ {250, 500} and Dt=100 with
// F ∈ {1000, 2500}.  Model and measured (real structures, full scale).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  const DatabaseParams db;
  const NixParams nix;

  struct Config {
    int64_t dt;
    uint32_t f;
    uint32_t m;
  };
  const Config configs[] = {
      {10, 250, 2}, {10, 500, 2}, {100, 1000, 2}, {100, 2500, 3}};

  TablePrinter table({"Dt", "F", "SSF", "BSSF", "NIX", "SSF meas",
                      "BSSF meas", "NIX meas", "SSF/NIX"});
  for (const Config& c : configs) {
    BenchDb::Options options;
    options.dt = c.dt;
    options.sig = {c.f, c.m};
    BenchDb bench(options);
    int64_t ssf_model = SsfStorageCost(db, {c.f, c.m});
    int64_t bssf_model = BssfStorageCost(db, {c.f, c.m});
    int64_t nix_model = NixStorageCost(db, nix, c.dt);
    table.AddRow(
        {TablePrinter::Int(c.dt), TablePrinter::Int(c.f),
         TablePrinter::Int(ssf_model), TablePrinter::Int(bssf_model),
         TablePrinter::Int(nix_model),
         TablePrinter::Int(static_cast<int64_t>(bench.ssf().StoragePages())),
         TablePrinter::Int(static_cast<int64_t>(bench.bssf().StoragePages())),
         TablePrinter::Int(static_cast<int64_t>(bench.nix().StoragePages())),
         TablePrinter::Num(static_cast<double>(ssf_model) / nix_model, 2)});
    const double fdt = static_cast<double>(c.dt);
    const double ff = static_cast<double>(c.f);
    const double fm = static_cast<double>(c.m);
    EmitBenchRecord(
        "ssf.storage", {{"dt", fdt}, {"f", ff}, {"m", fm}},
        MeasuredCost{.pages = static_cast<double>(bench.ssf().StoragePages()),
                     .wall_ms = -1},
        static_cast<double>(ssf_model));
    EmitBenchRecord(
        "bssf.storage", {{"dt", fdt}, {"f", ff}, {"m", fm}},
        MeasuredCost{.pages = static_cast<double>(bench.bssf().StoragePages()),
                     .wall_ms = -1},
        static_cast<double>(bssf_model));
    EmitBenchRecord(
        "nix.storage", {{"dt", fdt}},
        MeasuredCost{.pages = static_cast<double>(bench.nix().StoragePages()),
                     .wall_ms = -1},
        static_cast<double>(nix_model));
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check (paper §6): storage SSF <~ BSSF << NIX; SSF is ~45%% / "
      "80%% of NIX at Dt=10 and ~16%% / 38%% at Dt=100.\n");
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("table6", argc, argv);
  sigsetdb::PrintBenchHeader("Table 6", "storage cost of SSF, BSSF, NIX");
  sigsetdb::Run();
  return 0;
}
