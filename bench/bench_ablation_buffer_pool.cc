// Ablation — buffer pool vs. the no-caching cost model.
//
// The paper's model charges every logical page access (no cache).  This
// bench layers an LRU buffer pool over the BSSF slice store and the OID
// file and reports physical accesses (misses) per query as the pool grows.
// With a pool comparable to the hot set (query slices + OID pages), repeat
// queries become almost free — quantifying how far a 1993-style model
// drifts from a cached system, and why the *relative* ranking of the
// facilities still holds (all of them benefit alike).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "storage/buffer_pool.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  const int64_t dt = 10;
  const int64_t dq = 3;

  // A dedicated storage stack so the cache can wrap the slice/OID files.
  StorageManager storage;
  WorkloadConfig wconfig{32000, 13000, CardinalitySpec::Fixed(dt),
                         SkewKind::kUniform, 0.99, 7};
  auto sets = MakeDatabase(wconfig);
  ObjectStore store(storage.CreateOrOpen("objects"));
  std::vector<Oid> oids;
  for (const auto& set : sets) {
    oids.push_back(ValueOrDie(store.Insert(set), "insert"));
  }

  TablePrinter table({"pool pages", "logical/query", "physical/query",
                      "hit rate"});
  for (size_t pool : {0u, 8u, 32u, 128u, 512u}) {
    InMemoryPageFile* slices_base =
        static_cast<InMemoryPageFile*>(storage.CreateOrOpen(
            "slices." + std::to_string(pool)));
    InMemoryPageFile* oid_base = static_cast<InMemoryPageFile*>(
        storage.CreateOrOpen("oid." + std::to_string(pool)));
    CachedPageFile cached_slices(slices_base, pool);
    CachedPageFile cached_oids(oid_base, pool / 4 + 1);
    auto bssf = ValueOrDie(
        BitSlicedSignatureFile::Create({500, 2}, 32064, &cached_slices,
                                       &cached_oids, BssfInsertMode::kSparse),
        "bssf");
    CheckOk(bssf->BulkLoad(oids, sets), "bulk");
    cached_slices.Invalidate();
    cached_slices.stats().Reset();
    slices_base->stats().Reset();
    cached_oids.stats().Reset();
    oid_base->stats().Reset();

    // A small working set of repeating queries (the regime where a cache
    // pays off).
    Rng rng(11);
    std::vector<ElementSet> queries;
    for (int i = 0; i < 5; ++i) {
      queries.push_back(rng.SampleWithoutReplacement(
          13000, static_cast<uint64_t>(dq)));
    }
    const int kRounds = 20;
    for (int round = 0; round < kRounds; ++round) {
      for (const auto& query : queries) {
        CheckOk(ExecuteSetQuery(bssf.get(), store, QueryKind::kSuperset,
                                query)
                    .status(),
                "query");
      }
    }
    double total_queries = kRounds * static_cast<double>(queries.size());
    double logical =
        static_cast<double>(cached_slices.stats().total() +
                            cached_oids.stats().total()) /
        total_queries;
    double physical = static_cast<double>(slices_base->stats().total() +
                                          oid_base->stats().total()) /
                      total_queries;
    double hits = static_cast<double>(cached_slices.hits() +
                                      cached_oids.hits());
    double accesses = hits + static_cast<double>(cached_slices.misses() +
                                                 cached_oids.misses());
    table.AddRow({TablePrinter::Int(static_cast<int64_t>(pool)),
                  TablePrinter::Num(logical), TablePrinter::Num(physical),
                  TablePrinter::Num(hits / accesses, 3)});
  }
  table.Print(std::cout);
  std::printf(
      "\nThe model's no-cache assumption corresponds to pool=0; logical "
      "accesses stay constant while physical accesses collapse once the "
      "hot slices fit.\n");
}

}  // namespace
}  // namespace sigsetdb

int main() {
  sigsetdb::PrintBenchHeader("Ablation",
                             "buffer pool vs. the no-caching cost model");
  sigsetdb::Run();
  return 0;
}
