// Ablation — the NIX fanout cap.
//
// The paper fixes the non-leaf fanout at f = 218 (Table 4).  A 4 KiB page
// physically holds up to 341 children with this layout (12 bytes per
// separator+child), so the cap matters: it determines nlp, the tree height
// and hence rc.  This bench sweeps the cap and reports model page counts
// plus the real bulk-built tree, showing that any fanout in the hundreds
// keeps height = 2 at V = 13,000 — the paper's rc = 3 is robust.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_nix.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  const DatabaseParams db;
  const int64_t dt = 10;

  TablePrinter table({"fanout", "nlp model", "height model", "rc",
                      "nlp meas", "height meas", "SC meas"});
  for (int64_t fanout : {32, 64, 128, 218, 341}) {
    NixParams nix;
    nix.fanout = fanout;

    BenchDb::Options options;
    options.dt = dt;
    options.sig = {250, 2};
    options.nix_fanout = static_cast<uint32_t>(fanout);
    options.build_ssf = false;
    options.build_bssf = false;
    BenchDb bench(options);
    const BTree& tree = bench.nix().tree();

    table.AddRow({TablePrinter::Int(fanout),
                  TablePrinter::Int(NixNonLeafPages(db, nix, dt)),
                  TablePrinter::Int(NixHeight(db, nix, dt)),
                  TablePrinter::Int(NixLookupCost(db, nix, dt)),
                  TablePrinter::Int(
                      static_cast<int64_t>(tree.internal_pages())),
                  TablePrinter::Int(tree.height()),
                  TablePrinter::Int(
                      static_cast<int64_t>(tree.total_pages()))});
  }
  table.Print(std::cout);
  std::printf(
      "\nHeight (and therefore rc = height+1 and every NIX retrieval "
      "number in the paper) is stable at 2 for any fanout >= 32 at "
      "V = 13,000; the cap only shifts a handful of non-leaf pages.\n");
}

}  // namespace
}  // namespace sigsetdb

int main() {
  sigsetdb::PrintBenchHeader("Ablation", "NIX non-leaf fanout cap");
  sigsetdb::Run();
  return 0;
}
