// Figure 6 — smart retrieval cost for T ⊇ Q, Dt = 10.
//
// Series: BSSF F=250 m=2 and F=500 m=2 under the smart k-element strategy,
// versus NIX under the smart 2-lookup strategy.  The `meas` columns run the
// real structures with the smart executors at full scale, choosing k from
// the model optimizer (the same rule §5.1.3 states: k = min(Dq, 2) for
// m = 2).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  const DatabaseParams db;
  const NixParams nix;
  const int64_t dt = 10;

  BenchDb::Options options;
  options.dt = dt;
  options.sig = {250, 2};
  options.build_ssf = false;
  BenchDb bench(options);
  const int kTrials = 5;

  TablePrinter table({"Dq", "BSSF F=250", "BSSF F=500", "NIX", "k(bssf)",
                      "k(nix)", "BSSF250 meas", "NIX meas"});
  for (int64_t dq = 1; dq <= 10; ++dq) {
    int64_t k250 = 0, k500 = 0, knix = 0;
    double b250 = BssfSmartSupersetCost(db, {250, 2}, dt, dq, &k250);
    double b500 = BssfSmartSupersetCost(db, {500, 2}, dt, dq, &k500);
    double n_cost = NixSmartSupersetCost(db, nix, dt, dq, &knix);
    MeasuredCost b_meas = bench.MeasureSmartSupersetBssf(
        dq, static_cast<size_t>(k250), kTrials, 600 + dq);
    MeasuredCost n_meas = bench.MeasureSmartSupersetNix(
        dq, static_cast<size_t>(knix), kTrials, 700 + dq);
    const double fdq = static_cast<double>(dq);
    EmitBenchRecord("bssf.smart_superset",
                    {{"dq", fdq},
                     {"f", 250},
                     {"m", 2},
                     {"k", static_cast<double>(k250)}},
                    b_meas, b250);
    EmitBenchRecord("nix.smart_superset",
                    {{"dq", fdq}, {"k", static_cast<double>(knix)}}, n_meas,
                    n_cost);
    table.AddRow({TablePrinter::Int(dq), TablePrinter::Num(b250),
                  TablePrinter::Num(b500), TablePrinter::Num(n_cost),
                  TablePrinter::Int(k250), TablePrinter::Int(knix),
                  TablePrinter::Num(b_meas.pages),
                  TablePrinter::Num(n_meas.pages)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check (paper): both curves flat for Dq >= 2 (BSSF ~4 pages, "
      "NIX ~6 pages); NIX wins only at Dq=1.\n");
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("fig6", argc, argv);
  sigsetdb::PrintBenchHeader("Figure 6",
                             "smart retrieval cost for T ⊇ Q (Dt=10)");
  sigsetdb::Run();
  return 0;
}
