// Extension — WAH-compressed bit slices at scale.
//
// At the paper's N = 32,000 a bit slice is one page and compression cannot
// help.  This bench scales N to the point where uncompressed slices span
// many pages (⌈N/(P·b)⌉) and shows that run-length compressing the sparse
// slices (the lineage from 1993 signature files to modern compressed
// bitmap indexes) restores near-constant per-slice cost: storage and
// superset-query page reads for plain vs. WAH slices, with identical
// candidate sets.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "sig/compressed_bssf.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void RunSweep(const SignatureConfig& sig, int64_t dt) {
  const int64_t v = 13000;
  double density =
      1.0 - std::pow(1.0 - static_cast<double>(sig.m) / sig.f,
                     static_cast<double>(dt));
  std::printf("\nConfig F=%u m=%u Dt=%lld — slice one-bit density %.2f%%:\n",
              sig.f, sig.m, static_cast<long long>(dt), 100.0 * density);

  TablePrinter table({"N", "pages/slice", "plain pages", "WAH pages",
                      "ratio", "plain RC(Dq=2)", "WAH RC(Dq=2)"});
  for (int64_t n : {32000, 131072, 262144}) {
    StorageManager storage;
    WorkloadConfig wconfig{n, v, CardinalitySpec::Fixed(dt),
                           SkewKind::kUniform, 0.99,
                           static_cast<uint64_t>(n) + sig.f};
    auto sets = MakeDatabase(wconfig);
    std::vector<Oid> oids;
    oids.reserve(sets.size());
    for (int64_t i = 0; i < n; ++i) {
      oids.push_back(Oid::FromLocation(static_cast<PageId>(i >> 9),
                                       static_cast<uint16_t>(i & 0x1ff)));
    }
    auto plain = ValueOrDie(
        BitSlicedSignatureFile::Create(sig, static_cast<uint64_t>(n),
                                       storage.CreateOrOpen("p.slices"),
                                       storage.CreateOrOpen("p.oid"),
                                       BssfInsertMode::kSparse),
        "plain");
    CheckOk(plain->BulkLoad(oids, sets), "plain bulk");
    auto wah = ValueOrDie(
        CompressedBitSlicedSignatureFile::Create(
            sig, storage.CreateOrOpen("c.slices"),
            storage.CreateOrOpen("c.oid")),
        "wah");
    CheckOk(wah->BulkLoad(oids, sets), "wah bulk");

    // Mean slice reads for Dq=2 superset queries.
    Rng rng(9);
    const int kTrials = 10;
    uint64_t plain_reads = 0, wah_reads = 0;
    PageFile* p_file = *storage.Open("p.slices");
    PageFile* c_file = *storage.Open("c.slices");
    for (int t = 0; t < kTrials; ++t) {
      ElementSet query = rng.SampleWithoutReplacement(
          static_cast<uint64_t>(v), 2);
      BitVector query_sig = MakeSetSignature(query, sig);
      p_file->stats().Reset();
      CheckOk(plain->SupersetCandidateSlots(query_sig).status(), "plain q");
      plain_reads += p_file->stats().page_reads;
      c_file->stats().Reset();
      auto wah_slots = wah->SupersetCandidateSlots(query_sig);
      CheckOk(wah_slots.status(), "wah q");
      wah_reads += c_file->stats().page_reads;
      // Sanity: identical candidates.
      auto plain_slots = plain->SupersetCandidateSlots(query_sig);
      CheckOk(plain_slots.status(), "plain q2");
      if (*plain_slots != *wah_slots) {
        std::fprintf(stderr, "FATAL: candidate mismatch\n");
        std::abort();
      }
    }
    table.AddRow(
        {TablePrinter::Int(n),
         TablePrinter::Int(plain->pages_per_slice()),
         TablePrinter::Int(static_cast<int64_t>(plain->SlicePages())),
         TablePrinter::Int(static_cast<int64_t>(wah->SlicePages())),
         TablePrinter::Num(static_cast<double>(wah->SlicePages()) /
                               static_cast<double>(plain->SlicePages()),
                           2),
         TablePrinter::Num(static_cast<double>(plain_reads) / kTrials),
         TablePrinter::Num(static_cast<double>(wah_reads) / kTrials)});
  }
  table.Print(std::cout);
}

void Run() {
  // The paper's recommended design: small F, small m — slices too dense
  // (≈8%) for run-length coding; WAH *loses* (literal words carry 31 of 32
  // bits, and the directory adds pages).
  RunSweep({250, 2}, 10);
  // A sparse design (large F): WAH wins and keeps per-slice reads ~1 page
  // as N grows past the one-page slice regime.
  RunSweep({2500, 2}, 10);
  std::printf(
      "\nFinding: compression pays only below ~2-3%% slice density "
      "(F >> m·Dt).  The paper's small-m/small-F sweet spot produces "
      "slices that are already near-incompressible — its raw bit slices "
      "are the right design at that operating point, while large-F "
      "configurations (lower false drops at equal storage) become viable "
      "once slices are compressed.  Candidate sets verified identical "
      "throughout.\n");
}

}  // namespace
}  // namespace sigsetdb

int main() {
  sigsetdb::PrintBenchHeader("Extension",
                             "WAH-compressed bit slices at large N");
  sigsetdb::Run();
  return 0;
}
