// Figure 8 — overall retrieval-cost trend for T ⊆ Q (Dt = 10, F = 500).
//
// Series: SSF and BSSF at m = 2 and m = m_opt = 35, versus NIX, with Dq
// sweeping 10..1000.  Key paper observations to reproduce: BSSF below SSF
// everywhere; a cost minimum for BSSF m=2 near Dq ≈ 300; all signature
// costs heading toward P_u·N for large Dq; NIX monotonically increasing.
// `BSSF m=2 meas` runs the real structure at full paper scale.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  const DatabaseParams db;
  const NixParams nix;
  const int64_t dt = 10;
  const uint32_t m_opt = RoundedMopt(500, dt);  // 35

  BenchDb::Options options;
  options.dt = dt;
  options.sig = {500, 2};
  options.build_ssf = false;
  options.build_nix = false;
  BenchDb bench(options);
  const int kTrials = 3;

  TablePrinter table({"Dq", "SSF m=2", "SSF m=35", "BSSF m=2", "BSSF m=35",
                      "NIX", "BSSF m=2 meas"});
  for (int64_t dq : {10, 20, 50, 100, 200, 300, 500, 700, 1000}) {
    double ssf2 = SsfRetrievalCost(db, {500, 2}, dt, dq, QueryKind::kSubset);
    double ssf35 =
        SsfRetrievalCost(db, {500, m_opt}, dt, dq, QueryKind::kSubset);
    double bssf2 = BssfRetrievalSubset(db, {500, 2}, dt, dq);
    double bssf35 = BssfRetrievalSubset(db, {500, m_opt}, dt, dq);
    double nix_rc = NixRetrievalSubset(db, nix, dt, dq);
    MeasuredCost meas = bench.Measure(&bench.bssf(), QueryKind::kSubset, dq,
                                      kTrials, 1000 + dq);
    EmitBenchRecord("bssf.subset",
                    {{"dq", static_cast<double>(dq)}, {"f", 500}, {"m", 2}},
                    meas, bssf2);
    table.AddRow({TablePrinter::Int(dq), TablePrinter::Num(ssf2),
                  TablePrinter::Num(ssf35), TablePrinter::Num(bssf2),
                  TablePrinter::Num(bssf35), TablePrinter::Num(nix_rc),
                  TablePrinter::Num(meas.pages)});
  }
  table.Print(std::cout);
  std::printf("\nDq_opt (model, m=2): %.0f  |  Dq_opt (model, m=3): %.0f\n",
              BssfDqOpt(db, {500, 2}, dt), BssfDqOpt(db, {500, 3}, dt));
  std::printf(
      "Shape check (paper): BSSF < SSF for all Dq; BSSF m=2 minimum near "
      "Dq=300; costs approach P_u·N = %lld for large Dq.\n",
      static_cast<long long>(db.n));
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("fig8", argc, argv);
  sigsetdb::PrintBenchHeader(
      "Figure 8", "retrieval cost RC for T ⊆ Q (Dt=10, F=500)");
  sigsetdb::Run();
  return 0;
}
