// Set-containment join throughput (DESIGN.md §17): R ⋈⊆ S through all
// three strategies over a narrow-R / wide-S workload, reporting measured
// page accesses, wall clock, pair counts, and the join cost model's
// predicted pages per strategy.
//
// Usage:
//   bench_join [--n_r N] [--n_s N] [--dt_r D] [--dt_s D] [--v V]
//              [--trials T] [--json out.jsonl] [--min-speedup X]
//
// --min-speedup X turns the bench into a CI gate: it exits non-zero unless
// sig-hash beats nested-loop by at least X× on page accesses (the
// deterministic, machine-independent metric; wall clock is reported but
// never gated).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench_util.h"
#include "db/set_index.h"
#include "model/cost_join.h"
#include "query/advisor.h"
#include "query/join.h"
#include "storage/storage_manager.h"

namespace sigsetdb {
namespace {

struct JoinBenchConfig {
  int64_t n_r = 1000;
  int64_t n_s = 4000;
  int64_t dt_r = 3;
  int64_t dt_s = 12;
  int64_t v = 200;
  int trials = 3;
  double min_speedup = 0.0;  // 0 = report only, no gate
};

struct JoinMeasurement {
  MeasuredCost cost;       // mean over trials
  uint64_t pairs = 0;      // identical across trials (deterministic)
  uint64_t candidates = 0;
  uint64_t probes = 0;
};

JoinMeasurement MeasureJoin(SetIndex* r, SetIndex* s, JoinStrategy strategy,
                            int trials) {
  JoinMeasurement out;
  JoinSpec spec;
  spec.strategy = strategy;
  for (int t = 0; t < trials; ++t) {
    const auto start = std::chrono::steady_clock::now();
    auto result = ValueOrDie(r->ExecuteSetJoin(s, spec), "join");
    const auto end = std::chrono::steady_clock::now();
    out.cost.wall_ms +=
        std::chrono::duration<double, std::milli>(end - start).count();
    out.cost.pages = static_cast<double>(result.page_accesses);
    out.pairs = result.join.pairs.size();
    out.candidates = result.join.num_candidate_pairs;
    out.probes = result.join.num_probes;
  }
  out.cost.wall_ms /= trials;
  return out;
}

int Run(const JoinBenchConfig& config) {
  PrintBenchHeader("bench_join", "set-containment join R \xE2\x8B\x88\xE2\x8A\x86 S");
  std::printf("|R| = %lld (Dt = %lld), |S| = %lld (Dt = %lld), V = %lld\n\n",
              static_cast<long long>(config.n_r),
              static_cast<long long>(config.dt_r),
              static_cast<long long>(config.n_s),
              static_cast<long long>(config.dt_s),
              static_cast<long long>(config.v));

  StorageManager storage;
  SetIndex::Options options;
  options.maintain_ssf = true;
  options.maintain_bssf = true;
  options.maintain_nix = true;
  options.sig = {250, 2};
  options.capacity = static_cast<uint64_t>(config.n_s) + 64;
  options.domain_estimate = config.v;
  auto r = ValueOrDie(SetIndex::Create(&storage, "r", options), "create R");
  auto s = ValueOrDie(SetIndex::Create(&storage, "s", options), "create S");

  WorkloadConfig r_config{config.n_r, config.v,
                          CardinalitySpec::Fixed(config.dt_r),
                          SkewKind::kUniform, 0.99, 19930526};
  for (const ElementSet& set : MakeDatabase(r_config)) {
    CheckOk(r->Insert(set).status(), "insert R");
  }
  WorkloadConfig s_config{config.n_s, config.v,
                          CardinalitySpec::Fixed(config.dt_s),
                          SkewKind::kUniform, 0.99, 19930527};
  for (const ElementSet& set : MakeDatabase(s_config)) {
    CheckOk(s->Insert(set).status(), "insert S");
  }

  DatabaseParams db_r;
  db_r.n = config.n_r;
  db_r.v = config.v;
  DatabaseParams db_s;
  db_s.n = config.n_s;
  db_s.v = config.v;
  const SignatureParams sig{options.sig.f, options.sig.m};
  NixParams nix;
  nix.fanout = options.nix_fanout;

  std::printf("%-12s %10s %10s %12s %12s %10s %10s\n", "strategy", "pages",
              "pred", "cand-pairs", "pairs", "probes", "wall-ms");

  double nl_pages = 0, sh_pages = 0;
  double nl_wall = 0, sh_wall = 0;
  for (JoinStrategy strategy :
       {JoinStrategy::kNestedLoop, JoinStrategy::kSignatureHash,
        JoinStrategy::kAdaptive}) {
    const JoinMeasurement m =
        MeasureJoin(r.get(), s.get(), strategy, config.trials);
    const JoinCostBreakdown bd = ValueOrDie(
        BreakdownForJoinStrategy(db_r, config.dt_r, db_s, config.dt_s, sig,
                                 nix, strategy),
        "join breakdown");
    std::printf("%-12s %10.1f %10.1f %12llu %12llu %10llu %10.2f\n",
                JoinStrategyName(strategy), m.cost.pages, bd.total(),
                static_cast<unsigned long long>(m.candidates),
                static_cast<unsigned long long>(m.pairs),
                static_cast<unsigned long long>(m.probes), m.cost.wall_ms);
    EmitBenchRecord(std::string("join.") + JoinStrategyName(strategy),
                    {{"n_r", static_cast<double>(config.n_r)},
                     {"n_s", static_cast<double>(config.n_s)},
                     {"dt_r", static_cast<double>(config.dt_r)},
                     {"dt_s", static_cast<double>(config.dt_s)},
                     {"v", static_cast<double>(config.v)},
                     {"pairs", static_cast<double>(m.pairs)},
                     {"candidate_pairs", static_cast<double>(m.candidates)}},
                    m.cost, bd.total());
    if (strategy == JoinStrategy::kNestedLoop) {
      nl_pages = m.cost.pages;
      nl_wall = m.cost.wall_ms;
    }
    if (strategy == JoinStrategy::kSignatureHash) {
      sh_pages = m.cost.pages;
      sh_wall = m.cost.wall_ms;
    }
  }

  const double page_speedup = sh_pages > 0 ? nl_pages / sh_pages : 0.0;
  const double wall_speedup = sh_wall > 0 ? nl_wall / sh_wall : 0.0;
  std::printf("\nsig-hash vs nested-loop: %.2fx pages, %.2fx wall\n",
              page_speedup, wall_speedup);
  MeasuredCost speedup_cost;
  speedup_cost.pages = page_speedup;
  speedup_cost.wall_ms = wall_speedup;
  EmitBenchRecord("join.speedup.sig_hash_vs_nested_loop",
                  {{"n_r", static_cast<double>(config.n_r)},
                   {"n_s", static_cast<double>(config.n_s)}},
                  speedup_cost);

  if (config.min_speedup > 0.0 && page_speedup < config.min_speedup) {
    std::fprintf(stderr,
                 "FAIL: sig-hash page speedup %.2fx below required %.2fx\n",
                 page_speedup, config.min_speedup);
    return 1;
  }
  if (config.min_speedup > 0.0) {
    std::printf("PASS: sig-hash page speedup %.2fx >= %.2fx\n", page_speedup,
                config.min_speedup);
  }
  return 0;
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("join", argc, argv);
  sigsetdb::JoinBenchConfig config;
  for (int i = 1; i < argc; ++i) {
    auto next_ll = [&](long long* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "FATAL: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      *out = std::atoll(argv[++i]);
    };
    long long value = 0;
    if (std::strcmp(argv[i], "--n_r") == 0) {
      next_ll(&value);
      config.n_r = value;
    } else if (std::strcmp(argv[i], "--n_s") == 0) {
      next_ll(&value);
      config.n_s = value;
    } else if (std::strcmp(argv[i], "--dt_r") == 0) {
      next_ll(&value);
      config.dt_r = value;
    } else if (std::strcmp(argv[i], "--dt_s") == 0) {
      next_ll(&value);
      config.dt_s = value;
    } else if (std::strcmp(argv[i], "--v") == 0) {
      next_ll(&value);
      config.v = value;
    } else if (std::strcmp(argv[i], "--trials") == 0) {
      next_ll(&value);
      config.trials = static_cast<int>(value);
    } else if (std::strcmp(argv[i], "--min-speedup") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "FATAL: --min-speedup needs a value\n");
        return 2;
      }
      config.min_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      ++i;  // handled by BenchJson::Init
    } else {
      std::fprintf(stderr, "FATAL: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return sigsetdb::Run(config);
}
