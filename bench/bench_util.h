// Shared infrastructure for the figure/table reproduction benches: builds
// the paper's database (N objects, V-element domain, Dt-element sets) at
// full scale, materializes the requested access facilities, and measures
// page accesses per query.

#ifndef SIGSET_BENCH_BENCH_UTIL_H_
#define SIGSET_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/params.h"
#include "obs/json.h"
#include "nix/nested_index.h"
#include "obj/object_store.h"
#include "query/executor.h"
#include "sig/bssf.h"
#include "sig/ssf.h"
#include "storage/storage_manager.h"
#include "workload/generator.h"

namespace sigsetdb {

// Aborts with a message on error status — benches have no error recovery.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T ValueOrDie(StatusOr<T> v, const char* what) {
  CheckOk(v.status(), what);
  return std::move(v).value();
}

// One measurement: mean page accesses split into reads/writes, plus mean
// wall-clock per query.  `pages == reads + writes` (the paper's RC metric).
// A negative wall_ms means "not measured" (e.g. storage-size records).
struct MeasuredCost {
  double pages = 0;
  double reads = 0;
  double writes = 0;
  double skipped = 0;  // pages elided by the slice skip index
  double cow = 0;      // copy-on-write page copies (snapshot traffic)
  double hot = 0;      // slice reads served by the pinned hot tier
  double wall_ms = 0;
};

// Machine-readable bench output, enabled with `--json <path>` on any wired
// bench.  Each measurement becomes one JSON object per line (JSONL):
//
//   {"bench":"fig4","label":"bssf.superset.meas","params":{"dq":3,...},
//    "measured":{"pages":6.2,"reads":6.2,"writes":0,
//                "pages_skipped":1.5,"pages_cow":0},
//    "predicted_pages":6.31,"wall_ms":0.42}
//
// `predicted_pages` is the analytical model's value for the same point and
// is null when the record has no model counterpart; `wall_ms` is null for
// records without a timed run.  The human-readable tables keep printing to
// stdout unchanged — the JSONL file is a side channel for plotting and
// regression tooling.
class BenchJson {
 public:
  struct Record {
    std::string label;
    std::vector<std::pair<std::string, double>> params;
    MeasuredCost measured;
    double predicted_pages = -1.0;  // < 0 -> null
  };

  static BenchJson& Global() {
    static BenchJson global;
    return global;
  }

  // Parses `--json <path>` out of argv (call once, from main).  Without the
  // flag the writer stays disabled and Write() is a no-op.
  void Init(const char* bench, int argc, char** argv) {
    bench_ = bench;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") {
        out_ = std::fopen(argv[i + 1], "w");
        if (out_ == nullptr) {
          std::fprintf(stderr, "FATAL cannot open --json file %s\n",
                       argv[i + 1]);
          std::abort();
        }
        return;
      }
    }
  }

  bool enabled() const { return out_ != nullptr; }

  void Write(const Record& record) {
    if (out_ == nullptr) return;
    JsonWriter w;
    w.BeginObject();
    w.Field("bench", bench_);
    w.Field("label", record.label);
    w.Key("params");
    w.BeginObject();
    for (const auto& [key, value] : record.params) w.Field(key, value);
    w.EndObject();
    w.Key("measured");
    w.BeginObject();
    w.Field("pages", record.measured.pages);
    w.Field("reads", record.measured.reads);
    w.Field("writes", record.measured.writes);
    w.Field("pages_skipped", record.measured.skipped);
    w.Field("pages_cow", record.measured.cow);
    w.Field("pages_hot", record.measured.hot);
    w.EndObject();
    w.FieldOrNull("predicted_pages", record.predicted_pages);
    w.FieldOrNull("wall_ms", record.measured.wall_ms);
    w.EndObject();
    std::fprintf(out_, "%s\n", w.str().c_str());
    std::fflush(out_);
  }

  ~BenchJson() {
    if (out_ != nullptr) std::fclose(out_);
  }

 private:
  BenchJson() = default;
  std::string bench_;
  std::FILE* out_ = nullptr;
};

// Emits one record to the global writer (no-op without --json).
inline void EmitBenchRecord(
    const std::string& label,
    std::initializer_list<std::pair<const char*, double>> params,
    const MeasuredCost& measured, double predicted_pages = -1.0) {
  BenchJson::Record record;
  record.label = label;
  for (const auto& [key, value] : params) record.params.emplace_back(key, value);
  record.measured = measured;
  record.predicted_pages = predicted_pages;
  BenchJson::Global().Write(record);
}

// A fully materialized experimental database.
class BenchDb {
 public:
  struct Options {
    int64_t n = 32000;
    int64_t v = 13000;
    int64_t dt = 10;
    SignatureConfig sig{250, 2};
    uint32_t nix_fanout = kPaperFanout;
    uint64_t seed = 19930526;  // SIGMOD'93
    bool build_ssf = true;
    bool build_bssf = true;
    bool build_nix = true;
    // Empty = in-memory backend; otherwise pages live in files under this
    // directory (which must exist) and every access is a real syscall.
    std::string directory;
  };

  explicit BenchDb(const Options& options)
      : options_(options), storage_(options.directory) {
    WorkloadConfig wconfig{options.n, options.v,
                           CardinalitySpec::Fixed(options.dt),
                           SkewKind::kUniform, 0.99, options.seed};
    sets_ = MakeDatabase(wconfig);
    store_ = std::make_unique<ObjectStore>(storage_.CreateOrOpen("objects"));
    oids_.reserve(sets_.size());
    for (const auto& set : sets_) {
      oids_.push_back(ValueOrDie(store_->Insert(set), "object insert"));
    }
    if (options.build_ssf) {
      ssf_ = ValueOrDie(
          SequentialSignatureFile::Create(options.sig,
                                          storage_.CreateOrOpen("ssf.sig"),
                                          storage_.CreateOrOpen("ssf.oid")),
          "ssf create");
      for (size_t i = 0; i < sets_.size(); ++i) {
        CheckOk(ssf_->Insert(oids_[i], sets_[i]), "ssf insert");
      }
    }
    if (options.build_bssf) {
      bssf_ = ValueOrDie(
          BitSlicedSignatureFile::Create(
              options.sig, static_cast<uint64_t>(options.n) + 64,
              storage_.CreateOrOpen("bssf.slices"),
              storage_.CreateOrOpen("bssf.oid"), BssfInsertMode::kSparse),
          "bssf create");
      CheckOk(bssf_->BulkLoad(oids_, sets_), "bssf bulk load");
    }
    if (options.build_nix) {
      nix_ = ValueOrDie(
          NestedIndex::Create(storage_.CreateOrOpen("nix"),
                              options.nix_fanout),
          "nix create");
      CheckOk(nix_->BulkBuild(oids_, sets_), "nix bulk build");
    }
    storage_.ResetStats();
  }

  // Mean measured cost per query over `trials` random Dq-element query sets
  // (the paper's mostly-unsuccessful-search regime).
  MeasuredCost Measure(SetAccessFacility* facility, QueryKind kind,
                       int64_t dq, int trials, uint64_t seed) {
    return MeasureLoop(dq, trials, seed, [&](const ElementSet& query) {
      CheckOk(ExecuteSetQuery(facility, *store_, kind, query).status(),
              "query");
    });
  }

  // Measured smart strategies (paper §5.1.3 / §5.2.2).
  MeasuredCost MeasureSmartSupersetBssf(int64_t dq, size_t use_elements,
                                        int trials, uint64_t seed) {
    return MeasureLoop(dq, trials, seed, [&](const ElementSet& query) {
      CheckOk(ExecuteSmartSupersetBssf(bssf_.get(), *store_, query,
                                       use_elements)
                  .status(),
              "smart superset bssf");
    });
  }

  MeasuredCost MeasureSmartSubsetBssf(int64_t dq, size_t max_slices,
                                      int trials, uint64_t seed) {
    return MeasureLoop(dq, trials, seed, [&](const ElementSet& query) {
      CheckOk(
          ExecuteSmartSubsetBssf(bssf_.get(), *store_, query, max_slices)
              .status(),
          "smart subset bssf");
    });
  }

  MeasuredCost MeasureSmartSupersetNix(int64_t dq, size_t use_elements,
                                       int trials, uint64_t seed) {
    return MeasureLoop(dq, trials, seed, [&](const ElementSet& query) {
      CheckOk(ExecuteSmartSupersetNix(nix_.get(), *store_, query,
                                      use_elements)
                  .status(),
              "smart superset nix");
    });
  }

  // Page-count-only shorthands for table columns.
  double MeasureMean(SetAccessFacility* facility, QueryKind kind, int64_t dq,
                     int trials, uint64_t seed) {
    return Measure(facility, kind, dq, trials, seed).pages;
  }
  double MeasureMeanSmartSupersetBssf(int64_t dq, size_t use_elements,
                                      int trials, uint64_t seed) {
    return MeasureSmartSupersetBssf(dq, use_elements, trials, seed).pages;
  }
  double MeasureMeanSmartSubsetBssf(int64_t dq, size_t max_slices, int trials,
                                    uint64_t seed) {
    return MeasureSmartSubsetBssf(dq, max_slices, trials, seed).pages;
  }
  double MeasureMeanSmartSupersetNix(int64_t dq, size_t use_elements,
                                     int trials, uint64_t seed) {
    return MeasureSmartSupersetNix(dq, use_elements, trials, seed).pages;
  }

  const Options& options() const { return options_; }
  StorageManager& storage() { return storage_; }
  ObjectStore& store() { return *store_; }
  SequentialSignatureFile& ssf() { return *ssf_; }
  BitSlicedSignatureFile& bssf() { return *bssf_; }
  NestedIndex& nix() { return *nix_; }
  const std::vector<ElementSet>& sets() const { return sets_; }
  const std::vector<Oid>& oids() const { return oids_; }

  // Model-parameter view of this database.
  DatabaseParams ModelDb() const {
    DatabaseParams db;
    db.n = options_.n;
    db.v = options_.v;
    return db;
  }
  SignatureParams ModelSig() const {
    return SignatureParams{options_.sig.f, options_.sig.m};
  }

 private:
  // Runs `trials` seeded Dq-element queries through `run` and averages the
  // storage counters and wall clock over them.
  template <typename RunQuery>
  MeasuredCost MeasureLoop(int64_t dq, int trials, uint64_t seed,
                           RunQuery&& run) {
    Rng rng(seed);
    MeasuredCost total;
    for (int t = 0; t < trials; ++t) {
      ElementSet query = rng.SampleWithoutReplacement(
          static_cast<uint64_t>(options_.v), static_cast<uint64_t>(dq));
      storage_.ResetStats();
      auto start = std::chrono::steady_clock::now();
      run(query);
      auto end = std::chrono::steady_clock::now();
      IoStats io = storage_.TotalStats();
      total.reads += static_cast<double>(io.reads());
      total.writes += static_cast<double>(io.writes());
      total.skipped += static_cast<double>(io.skips());
      total.cow += static_cast<double>(io.cows());
      total.hot += static_cast<double>(io.hots());
      total.wall_ms +=
          std::chrono::duration<double, std::milli>(end - start).count();
    }
    total.reads /= trials;
    total.writes /= trials;
    total.skipped /= trials;
    total.cow /= trials;
    total.hot /= trials;
    total.wall_ms /= trials;
    total.pages = total.reads + total.writes;
    return total;
  }

  Options options_;
  StorageManager storage_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<SequentialSignatureFile> ssf_;
  std::unique_ptr<BitSlicedSignatureFile> bssf_;
  std::unique_ptr<NestedIndex> nix_;
  std::vector<ElementSet> sets_;
  std::vector<Oid> oids_;
};

// Rounds m_opt = F·ln2/Dt to the nearest integer >= 1.
inline uint32_t RoundedMopt(int64_t f, int64_t dt) {
  double m = static_cast<double>(f) * std::log(2.0) / static_cast<double>(dt);
  long rounded = std::lround(m);
  return rounded < 1 ? 1u : static_cast<uint32_t>(rounded);
}

// Prints the standard bench header.
inline void PrintBenchHeader(const char* id, const char* title) {
  std::printf("==================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==================================================\n");
}

}  // namespace sigsetdb

#endif  // SIGSET_BENCH_BENCH_UTIL_H_
