// Shared infrastructure for the figure/table reproduction benches: builds
// the paper's database (N objects, V-element domain, Dt-element sets) at
// full scale, materializes the requested access facilities, and measures
// page accesses per query.

#ifndef SIGSET_BENCH_BENCH_UTIL_H_
#define SIGSET_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "model/params.h"
#include "nix/nested_index.h"
#include "obj/object_store.h"
#include "query/executor.h"
#include "sig/bssf.h"
#include "sig/ssf.h"
#include "storage/storage_manager.h"
#include "workload/generator.h"

namespace sigsetdb {

// Aborts with a message on error status — benches have no error recovery.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T ValueOrDie(StatusOr<T> v, const char* what) {
  CheckOk(v.status(), what);
  return std::move(v).value();
}

// A fully materialized experimental database.
class BenchDb {
 public:
  struct Options {
    int64_t n = 32000;
    int64_t v = 13000;
    int64_t dt = 10;
    SignatureConfig sig{250, 2};
    uint32_t nix_fanout = kPaperFanout;
    uint64_t seed = 19930526;  // SIGMOD'93
    bool build_ssf = true;
    bool build_bssf = true;
    bool build_nix = true;
  };

  explicit BenchDb(const Options& options) : options_(options) {
    WorkloadConfig wconfig{options.n, options.v,
                           CardinalitySpec::Fixed(options.dt),
                           SkewKind::kUniform, 0.99, options.seed};
    sets_ = MakeDatabase(wconfig);
    store_ = std::make_unique<ObjectStore>(storage_.CreateOrOpen("objects"));
    oids_.reserve(sets_.size());
    for (const auto& set : sets_) {
      oids_.push_back(ValueOrDie(store_->Insert(set), "object insert"));
    }
    if (options.build_ssf) {
      ssf_ = ValueOrDie(
          SequentialSignatureFile::Create(options.sig,
                                          storage_.CreateOrOpen("ssf.sig"),
                                          storage_.CreateOrOpen("ssf.oid")),
          "ssf create");
      for (size_t i = 0; i < sets_.size(); ++i) {
        CheckOk(ssf_->Insert(oids_[i], sets_[i]), "ssf insert");
      }
    }
    if (options.build_bssf) {
      bssf_ = ValueOrDie(
          BitSlicedSignatureFile::Create(
              options.sig, static_cast<uint64_t>(options.n) + 64,
              storage_.CreateOrOpen("bssf.slices"),
              storage_.CreateOrOpen("bssf.oid"), BssfInsertMode::kSparse),
          "bssf create");
      CheckOk(bssf_->BulkLoad(oids_, sets_), "bssf bulk load");
    }
    if (options.build_nix) {
      nix_ = ValueOrDie(
          NestedIndex::Create(storage_.CreateOrOpen("nix"),
                              options.nix_fanout),
          "nix create");
      CheckOk(nix_->BulkBuild(oids_, sets_), "nix bulk build");
    }
    storage_.ResetStats();
  }

  // Mean measured page accesses per query over `trials` random Dq-element
  // query sets (the paper's mostly-unsuccessful-search regime).
  double MeasureMean(SetAccessFacility* facility, QueryKind kind, int64_t dq,
                     int trials, uint64_t seed) {
    Rng rng(seed);
    uint64_t total = 0;
    for (int t = 0; t < trials; ++t) {
      ElementSet query = rng.SampleWithoutReplacement(
          static_cast<uint64_t>(options_.v), static_cast<uint64_t>(dq));
      storage_.ResetStats();
      CheckOk(ExecuteSetQuery(facility, *store_, kind, query).status(),
              "query");
      total += storage_.TotalStats().total();
    }
    return static_cast<double>(total) / trials;
  }

  // Measured smart strategies (paper §5.1.3 / §5.2.2).
  double MeasureMeanSmartSupersetBssf(int64_t dq, size_t use_elements,
                                      int trials, uint64_t seed) {
    Rng rng(seed);
    uint64_t total = 0;
    for (int t = 0; t < trials; ++t) {
      ElementSet query = rng.SampleWithoutReplacement(
          static_cast<uint64_t>(options_.v), static_cast<uint64_t>(dq));
      storage_.ResetStats();
      CheckOk(ExecuteSmartSupersetBssf(bssf_.get(), *store_, query,
                                       use_elements)
                  .status(),
              "smart superset bssf");
      total += storage_.TotalStats().total();
    }
    return static_cast<double>(total) / trials;
  }

  double MeasureMeanSmartSubsetBssf(int64_t dq, size_t max_slices, int trials,
                                    uint64_t seed) {
    Rng rng(seed);
    uint64_t total = 0;
    for (int t = 0; t < trials; ++t) {
      ElementSet query = rng.SampleWithoutReplacement(
          static_cast<uint64_t>(options_.v), static_cast<uint64_t>(dq));
      storage_.ResetStats();
      CheckOk(
          ExecuteSmartSubsetBssf(bssf_.get(), *store_, query, max_slices)
              .status(),
          "smart subset bssf");
      total += storage_.TotalStats().total();
    }
    return static_cast<double>(total) / trials;
  }

  double MeasureMeanSmartSupersetNix(int64_t dq, size_t use_elements,
                                     int trials, uint64_t seed) {
    Rng rng(seed);
    uint64_t total = 0;
    for (int t = 0; t < trials; ++t) {
      ElementSet query = rng.SampleWithoutReplacement(
          static_cast<uint64_t>(options_.v), static_cast<uint64_t>(dq));
      storage_.ResetStats();
      CheckOk(ExecuteSmartSupersetNix(nix_.get(), *store_, query,
                                      use_elements)
                  .status(),
              "smart superset nix");
      total += storage_.TotalStats().total();
    }
    return static_cast<double>(total) / trials;
  }

  const Options& options() const { return options_; }
  StorageManager& storage() { return storage_; }
  ObjectStore& store() { return *store_; }
  SequentialSignatureFile& ssf() { return *ssf_; }
  BitSlicedSignatureFile& bssf() { return *bssf_; }
  NestedIndex& nix() { return *nix_; }
  const std::vector<ElementSet>& sets() const { return sets_; }
  const std::vector<Oid>& oids() const { return oids_; }

  // Model-parameter view of this database.
  DatabaseParams ModelDb() const {
    DatabaseParams db;
    db.n = options_.n;
    db.v = options_.v;
    return db;
  }
  SignatureParams ModelSig() const {
    return SignatureParams{options_.sig.f, options_.sig.m};
  }

 private:
  Options options_;
  StorageManager storage_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<SequentialSignatureFile> ssf_;
  std::unique_ptr<BitSlicedSignatureFile> bssf_;
  std::unique_ptr<NestedIndex> nix_;
  std::vector<ElementSet> sets_;
  std::vector<Oid> oids_;
};

// Rounds m_opt = F·ln2/Dt to the nearest integer >= 1.
inline uint32_t RoundedMopt(int64_t f, int64_t dt) {
  double m = static_cast<double>(f) * std::log(2.0) / static_cast<double>(dt);
  long rounded = std::lround(m);
  return rounded < 1 ? 1u : static_cast<uint32_t>(rounded);
}

// Prints the standard bench header.
inline void PrintBenchHeader(const char* id, const char* title) {
  std::printf("==================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==================================================\n");
}

}  // namespace sigsetdb

#endif  // SIGSET_BENCH_BENCH_UTIL_H_
