// bench_wal — WAL group-commit throughput: acknowledged writes per second
// as the number of concurrent committers grows.
//
// The log's durability cost is the fsync, so a simulated-latency PageFile
// (--fsync-us, default 200us — a fast disk's flush) stands in for the
// device.  One writer means one fsync per acknowledged record; with many
// concurrent writers the leader/follower protocol retires a whole group of
// commits per fsync, and throughput should scale toward writers/fsync — the
// acceptance target is >= 3x the singleton rate at 64 writers.
//
//   bench_wal [--fsync-us N] [--writes N] [--json out.jsonl]
//
// JSONL records carry {threads, fsync_us, writes, writes_per_sec, fsyncs,
// mean_group, speedup} in params; wall_ms is the measured wall clock.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "db/log_record.h"
#include "db/wal.h"
#include "storage/page_file.h"

namespace sigsetdb {
namespace {

// InMemoryPageFile whose Sync() costs a fixed wall-clock latency — the only
// part of a real device the group-commit protocol cares about.
class SlowSyncPageFile : public PageFile {
 public:
  SlowSyncPageFile(std::string name, uint32_t sync_us)
      : base_(std::move(name)), sync_us_(sync_us) {}

  using PageFile::Read;
  using PageFile::Write;

  const std::string& name() const override { return base_.name(); }
  PageId num_pages() const override { return base_.num_pages(); }
  StatusOr<PageId> Allocate() override { return base_.Allocate(); }
  Status Read(PageId id, Page* out, IoStats* io) override {
    return base_.Read(id, out, io);
  }
  Status Write(PageId id, const Page& page, IoStats* io) override {
    return base_.Write(id, page, io);
  }
  Status Sync() override {
    if (sync_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sync_us_));
    }
    syncs_.fetch_add(1, std::memory_order_relaxed);
    return base_.Sync();
  }
  IoStats& stats() override { return base_.stats(); }
  const IoStats& stats() const override { return base_.stats(); }

  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }

 private:
  InMemoryPageFile base_;
  uint32_t sync_us_;
  std::atomic<uint64_t> syncs_{0};
};

struct RunResult {
  double writes_per_sec = 0;
  uint64_t fsyncs = 0;
  double mean_group = 0;
  double wall_ms = 0;
};

RunResult RunGroupCommit(size_t threads, uint64_t total_writes,
                         uint32_t fsync_us) {
  SlowSyncPageFile file("wal", fsync_us);
  auto log = ValueOrDie(WriteAheadLog::Create(&file, 0, nullptr),
                        "wal create");

  std::atomic<uint64_t> next{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&log, &next, total_writes] {
      const ElementSet set{3, 17, 42, 99, 1040};
      for (;;) {
        const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total_writes) break;
        LogRecord rec = LogRecord::SingleInsert(Oid{i}, {set});
        CheckOk(log->AppendAndCommit(rec).status(), "append+commit");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  r.writes_per_sec =
      static_cast<double>(total_writes) / (r.wall_ms / 1000.0);
  r.fsyncs = file.syncs();
  r.mean_group = r.fsyncs > 0
                     ? static_cast<double>(total_writes) /
                           static_cast<double>(r.fsyncs)
                     : 0.0;
  return r;
}

int Main(int argc, char** argv) {
  BenchJson::Global().Init("wal", argc, argv);
  uint32_t fsync_us = 200;
  uint64_t total_writes = 2000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--fsync-us") == 0) {
      fsync_us = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--writes") == 0) {
      total_writes = static_cast<uint64_t>(std::atoll(argv[i + 1]));
    }
  }

  PrintBenchHeader("bench_wal",
                   "WAL group commit: acked writes/sec vs concurrent writers");
  std::printf("fsync latency %u us, %llu acknowledged writes per point\n\n",
              fsync_us, static_cast<unsigned long long>(total_writes));
  std::printf("%8s %14s %10s %12s %10s\n", "writers", "writes/sec", "fsyncs",
              "mean group", "speedup");

  double singleton = 0;
  for (size_t threads : {size_t{1}, size_t{8}, size_t{64}, size_t{256}}) {
    RunResult r = RunGroupCommit(threads, total_writes, fsync_us);
    if (threads == 1) singleton = r.writes_per_sec;
    const double speedup =
        singleton > 0 ? r.writes_per_sec / singleton : 0.0;
    std::printf("%8zu %14.0f %10llu %12.1f %9.2fx\n", threads,
                r.writes_per_sec, static_cast<unsigned long long>(r.fsyncs),
                r.mean_group, speedup);
    MeasuredCost measured;
    measured.wall_ms = r.wall_ms;
    EmitBenchRecord(
        "wal.group_commit",
        {{"threads", static_cast<double>(threads)},
         {"fsync_us", static_cast<double>(fsync_us)},
         {"writes", static_cast<double>(total_writes)},
         {"writes_per_sec", r.writes_per_sec},
         {"fsyncs", static_cast<double>(r.fsyncs)},
         {"mean_group", r.mean_group},
         {"speedup", speedup}},
        measured);
  }
  std::printf(
      "\ntarget: >= 3x singleton throughput at 64 concurrent writers\n");
  return 0;
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) { return sigsetdb::Main(argc, argv); }
