// Parallel query-execution scaling: wall-clock speedup of multi-threaded
// BSSF slice scanning + candidate resolution over the serial path, at a
// fixed logical page-access budget.
//
// The paper's cost metric (page accesses) is partition-invariant by
// construction — each slice page and each candidate object is read exactly
// once no matter how many workers share the scan — so this bench first
// *verifies* that the per-thread-count access totals are identical to the
// serial run, then reports elapsed time.  Speedup is hardware-dependent:
// on a single-core host the parallel runs show pool overhead, not gains,
// and the printed hardware_concurrency puts the numbers in context.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <memory>
#include <system_error>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "db/snapshot.h"
#include "db/synchronized_set_index.h"
#include "util/thread_pool.h"

namespace sigsetdb {
namespace {

struct RunStats {
  double millis = 0;
  uint64_t pages = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
};

// Runs `trials` seeded queries of `kind` (Dq elements each) and returns
// total elapsed time + total measured page accesses.
RunStats RunWorkload(BenchDb& db, QueryKind kind, int64_t dq, int trials,
                     uint64_t seed, const ParallelExecutionContext* ctx) {
  Rng rng(seed);
  RunStats stats;
  db.storage().ResetStats();
  auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < trials; ++t) {
    ElementSet query = rng.SampleWithoutReplacement(
        static_cast<uint64_t>(db.options().v), static_cast<uint64_t>(dq));
    CheckOk(
        ExecuteSetQuery(&db.bssf(), db.store(), kind, query, ctx).status(),
        "query");
  }
  auto end = std::chrono::steady_clock::now();
  stats.millis =
      std::chrono::duration<double, std::milli>(end - start).count();
  IoStats io = db.storage().TotalStats();
  stats.pages = io.total();
  stats.reads = io.reads();
  stats.writes = io.writes();
  return stats;
}

void EmitScalingRecord(QueryKind kind, int64_t dq, int trials,
                       size_t threads, const RunStats& stats) {
  // threads == 0 encodes the serial (no-pool) run.
  EmitBenchRecord(
      std::string(QueryKindName(kind)) + ".scaling",
      {{"dq", static_cast<double>(dq)},
       {"trials", static_cast<double>(trials)},
       {"threads", static_cast<double>(threads)}},
      MeasuredCost{.pages = static_cast<double>(stats.pages) / trials,
                   .reads = static_cast<double>(stats.reads) / trials,
                   .writes = static_cast<double>(stats.writes) / trials,
                   .wall_ms = stats.millis / trials});
}

void BenchKind(BenchDb& db, QueryKind kind, int64_t dq, int trials,
               uint64_t seed) {
  std::printf("\n%s queries, Dq=%lld, %d trials\n", QueryKindName(kind),
              static_cast<long long>(dq), trials);
  std::printf("%-10s %12s %12s %10s\n", "threads", "time(ms)", "pages",
              "speedup");

  RunStats serial = RunWorkload(db, kind, dq, trials, seed, nullptr);
  std::printf("%-10s %12.1f %12llu %10s\n", "serial", serial.millis,
              static_cast<unsigned long long>(serial.pages), "1.00x");
  EmitScalingRecord(kind, dq, trials, 0, serial);

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    ParallelExecutionContext ctx;
    ctx.pool = &pool;
    RunStats par = RunWorkload(db, kind, dq, trials, seed, &ctx);
    if (par.pages != serial.pages) {
      std::fprintf(stderr,
                   "FATAL page-access mismatch at %zu threads: %llu != %llu\n",
                   threads, static_cast<unsigned long long>(par.pages),
                   static_cast<unsigned long long>(serial.pages));
      std::abort();
    }
    std::printf("%-10zu %12.1f %12llu %9.2fx\n", threads, par.millis,
                static_cast<unsigned long long>(par.pages),
                serial.millis / par.millis);
    EmitScalingRecord(kind, dq, trials, threads, par);
  }
}

// Skip-index case: after tombstoning 90% of the store, the slice scan can
// prove most page columns dead (superset) or most scanned pages empty
// (subset).  Reported: pages read with the skip index off vs on, skipped
// counts, and the serial == parallel invariant with skipping active.
void BenchSkipIndex(BenchDb& db, QueryKind kind, int64_t dq, int trials,
                    uint64_t seed) {
  std::printf("\n%s queries with skip index, Dq=%lld, %d trials\n",
              QueryKindName(kind), static_cast<long long>(dq), trials);
  std::printf("%-12s %12s %12s %12s\n", "mode", "time(ms)", "pages",
              "skipped");

  for (bool skip : {false, true}) {
    db.bssf().set_skip_index_enabled(skip);
    RunStats serial = RunWorkload(db, kind, dq, trials, seed, nullptr);
    uint64_t serial_skipped = db.storage().TotalStats().skips();
    ThreadPool pool(4);
    ParallelExecutionContext ctx;
    ctx.pool = &pool;
    RunStats par = RunWorkload(db, kind, dq, trials, seed, &ctx);
    uint64_t par_skipped = db.storage().TotalStats().skips();
    if (par.pages != serial.pages || par_skipped != serial_skipped) {
      std::fprintf(stderr, "FATAL skip-mode parallel mismatch\n");
      std::abort();
    }
    std::printf("%-12s %12.1f %12llu %12llu\n",
                skip ? "skip-on" : "skip-off", serial.millis,
                static_cast<unsigned long long>(serial.pages),
                static_cast<unsigned long long>(serial_skipped));
    EmitBenchRecord(
        std::string(QueryKindName(kind)) + ".skip_index",
        {{"dq", static_cast<double>(dq)},
         {"trials", static_cast<double>(trials)},
         {"skip", skip ? 1.0 : 0.0},
         {"skipped_pages", static_cast<double>(serial_skipped) / trials}},
        MeasuredCost{.pages = static_cast<double>(serial.pages) / trials,
                     .reads = static_cast<double>(serial.reads) / trials,
                     .writes = static_cast<double>(serial.writes) / trials,
                     .skipped = static_cast<double>(serial_skipped) / trials,
                     .wall_ms = serial.millis / trials});
  }
  db.bssf().set_skip_index_enabled(false);
}

// Hot-tier case: a skewed stream — a small pool of queries cycled for many
// trials — keeps re-reading the same few slice pages, exactly the shape the
// pinned tier admits.  The tier removes the *backend* trip for those pages,
// so this case runs on the disk backend, where a trip is a pread(2)
// syscall; against the pure in-memory backend a trip is a bounds-checked
// 4 KiB memcpy, and a lock-protected hit has nothing cheaper to offer.
// Run twice over identical queries, tier off then on, verifying the tier's
// contract before timing: answers are identical and
//   reads(on) + hot(on) == reads(off)
// (a hot hit is a read *moved* to the pinned copy, never removed — the
// paper's access count is unchanged; only where it was served shifts).
void BenchHotTier(const BenchDb::Options& base, int64_t dq, int trials,
                  uint64_t seed) {
  std::printf("\nsmart-superset queries with hot tier (disk backend), "
              "Dq=%lld, %d trials\n",
              static_cast<long long>(dq), trials);

  char tmpl[] = "/tmp/sigset_hot_tier_bench.XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed; skipping the hot-tier case\n");
    return;
  }
  BenchDb::Options options = base;
  options.directory = dir;
  std::printf("building N=%lld on-disk database...\n",
              static_cast<long long>(options.n));
  BenchDb db(options);
  std::printf("%-12s %12s %12s %12s\n", "mode", "time(ms)", "reads", "hot");

  constexpr int kPoolQueries = 8;
  Rng pool_rng(seed);
  std::vector<ElementSet> queries;
  for (int i = 0; i < kPoolQueries; ++i) {
    queries.push_back(pool_rng.SampleWithoutReplacement(
        static_cast<uint64_t>(db.options().v), static_cast<uint64_t>(dq)));
  }
  // Size the tier to the pool's hot working set (8 queries × m_q slices ×
  // pages per slice) — the operator's knob this bench demonstrates.  An
  // undersized tier stays correct (the strictly-hotter rule refuses to
  // thrash) but caps the hit rate at capacity/working-set.
  db.bssf().set_hot_tier_capacity(256);

  uint64_t off_reads = 0;
  uint64_t off_checksum = 0;
  double off_millis = 0;
  for (bool hot : {false, true}) {
    db.bssf().set_hot_tier_enabled(hot);
    db.storage().ResetStats();
    uint64_t checksum = 0;
    auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < trials; ++t) {
      auto result = ExecuteSmartSupersetBssf(
          &db.bssf(), db.store(), queries[t % kPoolQueries],
          /*use_elements=*/static_cast<size_t>(dq), QueryKind::kSuperset,
          nullptr, nullptr);
      CheckOk(result.status(), "hot-tier query");
      for (Oid oid : result->oids) checksum += oid.value();
    }
    auto end = std::chrono::steady_clock::now();
    const double millis =
        std::chrono::duration<double, std::milli>(end - start).count();
    IoStats io = db.storage().TotalStats();
    if (!hot) {
      off_reads = io.reads();
      off_checksum = checksum;
      off_millis = millis;
    } else {
      if (checksum != off_checksum) {
        std::fprintf(stderr, "FATAL hot-tier answers differ from baseline\n");
        std::abort();
      }
      if (io.reads() + io.hots() != off_reads) {
        std::fprintf(stderr,
                     "FATAL hot-tier access identity broken: "
                     "%llu reads + %llu hot != %llu baseline reads\n",
                     static_cast<unsigned long long>(io.reads()),
                     static_cast<unsigned long long>(io.hots()),
                     static_cast<unsigned long long>(off_reads));
        std::abort();
      }
    }
    std::printf("%-12s %12.1f %12llu %12llu\n", hot ? "hot-on" : "hot-off",
                millis, static_cast<unsigned long long>(io.reads()),
                static_cast<unsigned long long>(io.hots()));
    EmitBenchRecord(
        "smart_superset.hot_tier",
        {{"dq", static_cast<double>(dq)},
         {"trials", static_cast<double>(trials)},
         {"hot", hot ? 1.0 : 0.0}},
        MeasuredCost{.pages = static_cast<double>(io.total()) / trials,
                     .reads = static_cast<double>(io.reads()) / trials,
                     .writes = static_cast<double>(io.writes()) / trials,
                     .hot = static_cast<double>(io.hots()) / trials,
                     .wall_ms = millis / trials});
    if (hot && off_millis > 0 && millis > 0) {
      std::printf("%-12s %11.2fx\n", "speedup", off_millis / millis);
    }
  }
  db.bssf().set_hot_tier_enabled(false);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // best-effort tmp cleanup
}

// Readers during sustained churn: R reader threads query continuously for a
// fixed wall-clock window while one writer thread inserts/deletes the whole
// time.  Run twice over identical data: snapshots OFF (readers take the
// index's shared lock and stall behind every mutation) and snapshots ON
// (readers pin an epoch and never touch the lock).  Reported: reader
// queries/sec, writer ops/sec, and CoW page copies — the price paid for
// lock-free reads.  The throughput ratio is hardware-dependent (a
// single-core host time-slices all threads); the target regime is
// multi-core, where pinned readers should clear >=3x the mutex baseline.
void BenchSnapshotChurn(int readers, int duration_ms) {
  std::printf("\nreaders during sustained churn: %d readers, %d ms window\n",
              readers, duration_ms);
  std::printf("%-12s %14s %14s %12s\n", "mode", "queries/s", "writer-ops/s",
              "cow-copies");

  constexpr int64_t kN = 2000;
  constexpr uint64_t kV = 2000;
  constexpr uint64_t kDtChurn = 8;
  double baseline_qps = 0;

  for (bool snapshots : {false, true}) {
    StorageManager storage;
    SetIndex::Options options;
    options.maintain_ssf = true;
    options.maintain_bssf = true;
    options.maintain_nix = true;
    options.sig = SignatureConfig{250, 2};
    options.capacity = static_cast<uint64_t>(kN) * 4;
    options.domain_estimate = static_cast<int64_t>(kV);
    options.enable_snapshots = snapshots;
    auto index_or = SynchronizedSetIndex::Create(&storage, "churn", options);
    CheckOk(index_or.status(), "create churn index");
    SynchronizedSetIndex* index = index_or->get();

    Rng load_rng(19930526);
    std::deque<Oid> live;
    for (int64_t i = 0; i < kN; ++i) {
      auto oid = index->Insert(load_rng.SampleWithoutReplacement(kV, kDtChurn));
      CheckOk(oid.status(), "load insert");
      live.push_back(*oid);
    }

    std::atomic<bool> done{false};
    std::atomic<uint64_t> reader_queries{0};
    std::atomic<uint64_t> writer_ops{0};

    std::vector<std::thread> threads;
    threads.emplace_back([&] {  // writer: steady insert+delete churn
      Rng rng(1);
      while (!done.load(std::memory_order_acquire)) {
        auto oid = index->Insert(rng.SampleWithoutReplacement(kV, kDtChurn));
        CheckOk(oid.status(), "churn insert");
        live.push_back(*oid);  // only the writer thread touches `live`
        CheckOk(index->Delete(live.front()), "churn delete");
        live.pop_front();
        writer_ops.fetch_add(2, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        Rng rng(static_cast<uint64_t>(100 + r));
        uint64_t local = 0;
        std::unique_ptr<Snapshot> snap;
        while (!done.load(std::memory_order_acquire)) {
          ElementSet query = rng.SampleWithoutReplacement(kV, 2);
          if (snapshots) {
            if (snap == nullptr || local % 32 == 0) {
              auto s = index->GetSnapshot();
              CheckOk(s.status(), "pin snapshot");
              snap = std::move(*s);
            }
            CheckOk(
                snap->Query(QueryKind::kSuperset, query).status(),
                "snapshot query");
          } else {
            CheckOk(index->Query(QueryKind::kSuperset, query).status(),
                    "live query");
          }
          ++local;
        }
        reader_queries.fetch_add(local, std::memory_order_relaxed);
      });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
    done.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();

    const double secs = duration_ms / 1000.0;
    const double qps = static_cast<double>(reader_queries.load()) / secs;
    const double wps = static_cast<double>(writer_ops.load()) / secs;
    const uint64_t cows = storage.TotalStats().cows();
    std::printf("%-12s %14.0f %14.0f %12llu\n",
                snapshots ? "snapshot" : "mutex", qps, wps,
                static_cast<unsigned long long>(cows));
    EmitBenchRecord("snapshot_churn",
                    {{"snapshots", snapshots ? 1.0 : 0.0},
                     {"readers", static_cast<double>(readers)},
                     {"reader_qps", qps},
                     {"writer_ops_per_sec", wps},
                     {"cow_copies", static_cast<double>(cows)}},
                    MeasuredCost{.wall_ms = static_cast<double>(duration_ms)});
    if (!snapshots) {
      baseline_qps = qps;
    } else if (baseline_qps > 0) {
      std::printf("%-12s %13.2fx\n", "ratio", qps / baseline_qps);
    }
  }
}

void Run() {
  PrintBenchHeader("parallel-scaling",
                   "multi-threaded BSSF scan + resolution speedup");
  std::printf("hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());

  BenchDb::Options options;
  options.n = 100000;
  options.v = 13000;
  options.dt = 10;
  options.sig = SignatureConfig{250, 2};
  options.build_ssf = false;
  options.build_nix = false;
  std::printf("building N=%lld database...\n",
              static_cast<long long>(options.n));
  BenchDb db(options);

  // Superset: few slices (m_q = m·Dq), resolution-dominated.
  BenchKind(db, QueryKind::kSuperset, /*dq=*/2, /*trials=*/50,
            /*seed=*/1993);
  // Subset: scans most of the F slices — the scan-dominated regime where
  // slice partitioning has the most to parallelize.
  BenchKind(db, QueryKind::kSubset, /*dq=*/60, /*trials=*/50, /*seed=*/526);

  // Hot tier: skewed smart-superset stream with the tier off vs on, on its
  // own disk-backed copy of the database (see BenchHotTier's comment).
  BenchHotTier(options, /*dq=*/2, /*trials=*/200, /*seed=*/41);

  // Tombstone all but every 1000th object.  A slice page only becomes
  // skippable once NO live signature on its 32768-slot column sets that
  // slice, so the payoff regime is a heavily-deleted store: ~25 live
  // columns per page leave most slice pages empty, which is exactly the
  // situation (bulk expiry before compaction) the skip index exists for.
  std::printf("\ntombstoning 99.9%% of the store for the skip-index case...\n");
  {
    std::vector<BatchOp> removes;
    const std::vector<Oid>& oids = db.oids();
    const std::vector<ElementSet>& sets = db.sets();
    for (size_t i = 0; i < oids.size(); ++i) {
      if (i % 1000 != 0) {
        removes.push_back(BatchOp{BatchOp::Kind::kRemove, oids[i], sets[i]});
      }
    }
    CheckOk(db.bssf().ApplyBatch(removes), "tombstone batch");
  }
  BenchSkipIndex(db, QueryKind::kSuperset, /*dq=*/2, /*trials=*/20,
                 /*seed=*/77);
  BenchSkipIndex(db, QueryKind::kSubset, /*dq=*/60, /*trials=*/20,
                 /*seed=*/78);

  BenchSnapshotChurn(/*readers=*/4, /*duration_ms=*/1500);

  std::printf(
      "\npage-access totals are identical at every thread count (verified "
      "above);\nspeedup reflects wall-clock only and depends on available "
      "cores.\n");
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("parallel_scaling", argc, argv);
  sigsetdb::Run();
  return 0;
}
