// Figure 9 — smart retrieval cost for T ⊆ Q, Dt = 10.
//
// Under the partial slice-scan strategy (§5.2.2) the BSSF cost is constant
// for Dq ≤ Dq_opt, far below NIX.  Series: BSSF F=250 m=2 and F=500 m=2
// (smart), NIX.  `meas` runs the real F=500 structure with the smart
// executor, scanning the model-chosen number of slices.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  const DatabaseParams db;
  const NixParams nix;
  const int64_t dt = 10;

  BenchDb::Options options;
  options.dt = dt;
  options.sig = {500, 2};
  options.build_ssf = false;
  options.build_nix = false;
  BenchDb bench(options);
  const int kTrials = 3;

  TablePrinter table({"Dq", "BSSF F=250 smart", "BSSF F=500 smart", "NIX",
                      "s(F=500)", "BSSF500 meas"});
  for (int64_t dq : {10, 20, 50, 100, 200, 300, 500, 1000}) {
    int64_t s250 = 0, s500 = 0;
    double b250 = BssfSmartSubsetCost(db, {250, 2}, dt, dq, &s250);
    double b500 = BssfSmartSubsetCost(db, {500, 2}, dt, dq, &s500);
    double n_cost = NixRetrievalSubset(db, nix, dt, dq);
    MeasuredCost meas = bench.MeasureSmartSubsetBssf(
        dq, static_cast<size_t>(s500), kTrials, 1100 + dq);
    EmitBenchRecord("bssf.smart_subset",
                    {{"dq", static_cast<double>(dq)},
                     {"f", 500},
                     {"m", 2},
                     {"s", static_cast<double>(s500)}},
                    meas, b500);
    table.AddRow({TablePrinter::Int(dq), TablePrinter::Num(b250),
                  TablePrinter::Num(b500), TablePrinter::Num(n_cost),
                  TablePrinter::Int(s500), TablePrinter::Num(meas.pages)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check (paper): BSSF cost constant for Dq <= Dq_opt (~%.0f) "
      "and far below NIX for probable Dq.\n",
      BssfDqOpt(db, {500, 2}, dt));
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("fig9", argc, argv);
  sigsetdb::PrintBenchHeader("Figure 9",
                             "smart retrieval cost for T ⊆ Q (Dt=10)");
  sigsetdb::Run();
  return 0;
}
