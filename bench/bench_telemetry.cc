// Telemetry bench: quantifies the observability layer's overhead and
// exercises the exporters end to end.
//
//   1. Histogram/flight-recorder hot-path cost: median ns per Record()
//      across batches (the tentpole budget is < 100 ns median per op).
//   2. End-to-end overhead: the same query workload through a SetIndex with
//      telemetry off vs on (latency histograms + flight events + internal
//      traces + drift watchdog).
//   3. Exporters: with `--metrics-out <path>` the full registry is written
//      as an OpenMetrics exposition; with `--trace-out <path>` the traced
//      queries (num_threads=4, so parallel worker sub-spans appear) are
//      written as Chrome trace-event JSON loadable in Perfetto.
//
// `--json <path>` additionally emits the usual JSONL records.

#include <algorithm>
#include <cstring>

#include "bench_util.h"
#include "db/set_index.h"
#include "obs/flight_recorder.h"
#include "obs/openmetrics.h"
#include "obs/trace_event.h"

namespace sigsetdb {
namespace {

const char* FindFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

// Median of per-batch mean cost: runs `batches` batches of `per_batch`
// calls to `op`, returns the median batch's per-op nanoseconds.  Batching
// amortizes the clock reads out of the measured loop.
template <typename Op>
double MedianNsPerOp(int batches, int per_batch, Op&& op) {
  std::vector<double> per_op(batches);
  for (int b = 0; b < batches; ++b) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < per_batch; ++i) op(b * per_batch + i);
    auto end = std::chrono::steady_clock::now();
    per_op[b] =
        std::chrono::duration<double, std::nano>(end - start).count() /
        per_batch;
  }
  std::sort(per_op.begin(), per_op.end());
  return per_op[per_op.size() / 2];
}

void RunHotPathBench() {
  std::printf("\n-- hot-path cost (median ns per Record) --\n");
  MetricsRegistry registry;
  Histogram* hist = registry.histogram("bench.latency_us");
  const double hist_ns = MedianNsPerOp(64, 100000, [&](int i) {
    hist->Record(static_cast<uint64_t>(i & 0xfff));
  });
  std::printf("  histogram Record       %8.1f ns\n", hist_ns);

  FlightRecorder recorder(512);
  FlightEvent event;
  event.op = FlightOp::kQuery;
  event.SetDetail("bssf smart(s=91)");
  const double ring_ns = MedianNsPerOp(64, 100000, [&](int i) {
    event.fingerprint = static_cast<uint64_t>(i);
    recorder.Record(event);
  });
  std::printf("  flight-recorder Record %8.1f ns\n", ring_ns);
  std::printf("  budget: < 100 ns median per recorded op  [%s]\n",
              hist_ns < 100.0 && ring_ns < 100.0 ? "ok" : "OVER");

  EmitBenchRecord("histogram.record.ns", {{"batches", 64}},
                  MeasuredCost{.wall_ms = hist_ns * 1e-6});
  EmitBenchRecord("flight_recorder.record.ns", {{"batches", 64}},
                  MeasuredCost{.wall_ms = ring_ns * 1e-6});
}

// Builds a small indexed workload and times `queries` mixed queries.
// Returns mean wall ms per query; fills `index_out` for the exporter pass.
double RunWorkload(bool telemetry, int n, int queries,
                   std::unique_ptr<StorageManager>* storage_out,
                   std::unique_ptr<SetIndex>* index_out) {
  auto storage = std::make_unique<StorageManager>();
  SetIndex::Options options;
  options.num_threads = 4;
  options.enable_telemetry = telemetry;
  auto index =
      ValueOrDie(SetIndex::Create(storage.get(), "tele", options), "create");
  Rng rng(19930526);
  for (int i = 0; i < n; ++i) {
    ElementSet set = rng.SampleWithoutReplacement(13000, 10);
    ValueOrDie(index->Insert(set), "insert");
  }
  auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < queries; ++q) {
    ElementSet query = rng.SampleWithoutReplacement(13000, 1 + (q % 6));
    QueryKind kind =
        (q % 3 == 0) ? QueryKind::kSubset : QueryKind::kSuperset;
    CheckOk(index->Query(kind, query).status(), "query");
  }
  auto end = std::chrono::steady_clock::now();
  if (storage_out != nullptr) *storage_out = std::move(storage);
  if (index_out != nullptr) *index_out = std::move(index);
  return std::chrono::duration<double, std::milli>(end - start).count() /
         queries;
}

void RunOverheadBench(int n, int queries) {
  std::printf("\n-- end-to-end overhead (%d objects, %d queries) --\n", n,
              queries);
  std::unique_ptr<StorageManager> storage_off;
  std::unique_ptr<SetIndex> index_off;
  const double off_ms =
      RunWorkload(/*telemetry=*/false, n, queries, &storage_off, &index_off);
  std::unique_ptr<StorageManager> storage_on;
  std::unique_ptr<SetIndex> index_on;
  const double on_ms =
      RunWorkload(/*telemetry=*/true, n, queries, &storage_on, &index_on);
  std::printf("  telemetry off  %8.4f ms/query\n", off_ms);
  std::printf("  telemetry on   %8.4f ms/query  (+%.1f%%)\n", on_ms,
              off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0);
  EmitBenchRecord("workload.telemetry_off",
                  {{"n", static_cast<double>(n)},
                   {"queries", static_cast<double>(queries)}},
                  MeasuredCost{.wall_ms = off_ms});
  EmitBenchRecord("workload.telemetry_on",
                  {{"n", static_cast<double>(n)},
                   {"queries", static_cast<double>(queries)}},
                  MeasuredCost{.wall_ms = on_ms});

  const FlightRecorder* rec = index_on->flight_recorder();
  std::printf("  flight events recorded: %llu (ring capacity %zu)\n",
              static_cast<unsigned long long>(
                  index_on->flight_recorder()->total_recorded()),
              rec->capacity());
}

void RunExporters(const char* metrics_out, const char* trace_out) {
  std::printf("\n-- exporters --\n");
  StorageManager storage;
  SetIndex::Options options;
  options.num_threads = 4;  // parallel worker sub-spans in the traces
  options.enable_telemetry = true;
  auto index =
      ValueOrDie(SetIndex::Create(&storage, "tele", options), "create");
  FlightRecorder::InstallSignalHandler(index->flight_recorder());
  Rng rng(42);
  for (int i = 0; i < 4000; ++i) {
    ElementSet set = rng.SampleWithoutReplacement(13000, 10);
    ValueOrDie(index->Insert(set), "insert");
  }
  TraceEventWriter writer;
  for (int q = 0; q < 32; ++q) {
    ElementSet query = rng.SampleWithoutReplacement(13000, 1 + (q % 6));
    QueryKind kind =
        (q % 3 == 0) ? QueryKind::kSubset : QueryKind::kSuperset;
    auto explained = ValueOrDie(index->Explain(kind, query), "explain");
    writer.AddTrace(explained.trace);
  }
  if (metrics_out != nullptr) {
    CheckOk(WriteOpenMetricsFile(*index->metrics(), metrics_out),
            "write metrics");
    std::printf("  OpenMetrics exposition -> %s\n", metrics_out);
  } else {
    std::printf("  (pass --metrics-out <path> for an OpenMetrics file)\n");
  }
  if (trace_out != nullptr) {
    CheckOk(writer.WriteFile(trace_out), "write trace");
    std::printf("  Perfetto trace (%zu events) -> %s\n", writer.num_events(),
                trace_out);
  } else {
    std::printf("  (pass --trace-out <path> for a Perfetto trace)\n");
  }
  const DriftWatchdog* watchdog = index->drift_watchdog();
  std::printf("  drift stages observed: %zu, warnings: %llu\n",
              watchdog->Stats().size(),
              static_cast<unsigned long long>(watchdog->warnings()));
  FlightRecorder::InstallSignalHandler(nullptr);
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  using namespace sigsetdb;
  BenchJson::Global().Init("telemetry", argc, argv);
  PrintBenchHeader("telemetry",
                   "observability overhead and exporter smoke test");
  RunHotPathBench();
  RunOverheadBench(/*n=*/4000, /*queries=*/64);
  RunExporters(FindFlag(argc, argv, "--metrics-out"),
               FindFlag(argc, argv, "--trace-out"));
  return 0;
}
