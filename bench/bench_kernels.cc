// Kernel throughput: the suppressed-vectorization scalar reference vs the
// portable unrolled loops vs the dispatched (AVX2 when available) table, on
// the two working-set sizes the query paths actually use — the 4096-bit
// slice accumulator (64 words) that BSSF combination ANDs/ORs per page
// column, and a full 4 KiB page (512 words) as streamed by the SSF scan.
//
// A second table times intersect_u64 — the sorted posting-list intersection
// behind NIX smart-superset candidate resolution — on balanced pairs (the
// AVX2 block path) and a skewed pair (the galloping path), in ns per
// intersection of the whole pair.
//
// Usage: bench_kernels [--json <path>] [--min-speedup <x>]
//                      [--min-intersect-speedup <x>]
//   --min-speedup enforces that the dispatched and_accumulate at 64 words is
//   at least <x> times the scalar reference (exit 1 otherwise);
//   --min-intersect-speedup enforces the same for intersect_u64 on the
//   64k × 64k pair.  CI smoke runs without either so shared-runner noise
//   cannot fail the build; the dedicated resolve smoke opts in.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sig/kernels.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

// Wall-clock nanoseconds per call of `fn`, amortized over enough calls to
// dwarf timer granularity.  The body runs once untimed to warm caches.
template <typename Fn>
double NsPerCall(size_t iters, Fn&& fn) {
  fn();
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(iters);
}

// Defeats dead-code elimination for the value-returning kernels.
volatile uint64_t g_sink;

struct KernelTimes {
  double scalar_ns = 0;
  double target_ns = 0;
  double speedup() const {
    return target_ns > 0 ? scalar_ns / target_ns : 0.0;
  }
};

// Times one named kernel at `words` for scalar vs `target`.  The accumulate
// kernels mutate acc in place; re-running on the converged value keeps the
// memory traffic identical, which is what the measurement is about.
KernelTimes TimeKernel(const char* kernel, const SignatureKernels& target,
                       size_t words, size_t iters) {
  Rng rng(0x5eedULL + words);
  std::vector<uint64_t> acc(words), src(words);
  for (uint64_t& w : acc) w = rng.Next();
  // src ⊆ acc so contains_all never early-exits: worst-case full scan.
  for (size_t i = 0; i < words; ++i) src[i] = acc[i] & rng.Next();

  KernelTimes t;
  const SignatureKernels& scalar = ScalarKernels();
  if (std::strcmp(kernel, "and_accumulate") == 0) {
    t.scalar_ns = NsPerCall(
        iters, [&] { scalar.and_accumulate(acc.data(), src.data(), words); });
    t.target_ns = NsPerCall(
        iters, [&] { target.and_accumulate(acc.data(), src.data(), words); });
  } else if (std::strcmp(kernel, "or_accumulate") == 0) {
    t.scalar_ns = NsPerCall(
        iters, [&] { scalar.or_accumulate(acc.data(), src.data(), words); });
    t.target_ns = NsPerCall(
        iters, [&] { target.or_accumulate(acc.data(), src.data(), words); });
  } else if (std::strcmp(kernel, "contains_all") == 0) {
    t.scalar_ns = NsPerCall(iters, [&] {
      g_sink = g_sink + (scalar.contains_all(src.data(), acc.data(), words) ? 1 : 0);
    });
    t.target_ns = NsPerCall(iters, [&] {
      g_sink = g_sink + (target.contains_all(src.data(), acc.data(), words) ? 1 : 0);
    });
  } else if (std::strcmp(kernel, "popcount_and") == 0) {
    t.scalar_ns = NsPerCall(iters, [&] {
      g_sink = g_sink + scalar.popcount_and(acc.data(), src.data(), words);
    });
    t.target_ns = NsPerCall(iters, [&] {
      g_sink = g_sink + target.popcount_and(acc.data(), src.data(), words);
    });
  } else {
    std::fprintf(stderr, "FATAL unknown kernel %s\n", kernel);
    std::abort();
  }
  return t;
}

// Sorted, globally distinct list of `n` random uint64s (cumulative random
// increments averaging `gap`) — the AVX2 block path's fast case, and the
// shape real OID posting lists have (OIDs are unique within a list).
std::vector<uint64_t> MakePostingList(size_t n, uint64_t seed, uint64_t gap) {
  Rng rng(seed);
  std::vector<uint64_t> v(n);
  uint64_t x = 0;
  for (size_t i = 0; i < n; ++i) {
    x += 1 + (rng.Next() % (2 * gap - 1));
    v[i] = x;
  }
  return v;
}

// Times intersect_u64 on an (na, nb) pair for scalar vs `target`.  The
// small list's gap is scaled by nb/na so both lists span the same value
// range — the shape skewed posting lists actually have (rare vs common
// element over one OID space), and the case galloping exists for.  Without
// it the merge early-exits after the small list's tiny prefix.
KernelTimes TimeIntersect(const SignatureKernels& target, size_t na,
                          size_t nb, size_t iters) {
  const uint64_t ratio = static_cast<uint64_t>(nb / na);
  // Cycle several distinct pairs: timing ONE pair thousands of times lets
  // the branch predictor memorize the scalar merge's entire data-dependent
  // branch sequence (sub-ns/element "scalar" numbers no one-shot query
  // ever sees).  Distinct pairs per iteration keep both sides honest.
  constexpr size_t kPairs = 4;
  std::vector<uint64_t> a[kPairs], b[kPairs];
  for (size_t p = 0; p < kPairs; ++p) {
    a[p] = MakePostingList(na, 0xabcdULL + na + p * 977,
                           8 * std::max<uint64_t>(1, ratio));
    b[p] = MakePostingList(nb, 0x1234ULL + nb + p * 977, 8);
  }
  std::vector<uint64_t> out(std::min(na, nb));
  KernelTimes t;
  const SignatureKernels& scalar = ScalarKernels();
  size_t pi = 0;
  t.scalar_ns = NsPerCall(iters, [&] {
    pi = (pi + 1) % kPairs;
    g_sink = g_sink + scalar.intersect_u64(a[pi].data(), na, b[pi].data(), nb,
                                           out.data());
  });
  t.target_ns = NsPerCall(iters, [&] {
    pi = (pi + 1) % kPairs;
    g_sink = g_sink + target.intersect_u64(a[pi].data(), na, b[pi].data(), nb,
                                           out.data());
  });
  return t;
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  using namespace sigsetdb;
  BenchJson::Global().Init("kernels", argc, argv);
  double min_speedup = -1.0;
  double min_intersect_speedup = -1.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--min-speedup") {
      min_speedup = std::atof(argv[i + 1]);
    } else if (std::string(argv[i]) == "--min-intersect-speedup") {
      min_intersect_speedup = std::atof(argv[i + 1]);
    }
  }

  const SignatureKernels& active = ActiveKernels();
  PrintBenchHeader("kernels", "dispatched signature-kernel throughput");
  std::printf("dispatched to: %s (avx2 built: %s, cpu support: %s)\n\n",
              active.name, Avx2Kernels() != nullptr ? "yes" : "no",
              Avx2Supported() ? "yes" : "no");
  std::printf("%-16s %6s %12s %12s %9s %10s\n", "kernel", "words",
              "scalar ns", "active ns", "speedup", "GiB/s");

  const char* kernels[] = {"and_accumulate", "or_accumulate", "contains_all",
                           "popcount_and"};
  // 64 words = the 4096-bit slice accumulator; 512 words = one 4 KiB page.
  const size_t sizes[] = {64, 512};
  double accum64_speedup = 0.0;
  for (const char* kernel : kernels) {
    for (size_t words : sizes) {
      const size_t iters = words >= 512 ? 200000 : 1000000;
      KernelTimes t = TimeKernel(kernel, active, words, iters);
      // Bytes touched per call: two operand streams of `words` words.
      const double gib_s = (2.0 * 8.0 * static_cast<double>(words)) /
                           t.target_ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
      std::printf("%-16s %6zu %12.2f %12.2f %8.2fx %10.2f\n", kernel, words,
                  t.scalar_ns, t.target_ns, t.speedup(), gib_s);
      MeasuredCost cost;
      cost.wall_ms = t.target_ns * 1e-6;
      EmitBenchRecord(std::string(kernel) + "." + active.name,
                      {{"words", static_cast<double>(words)},
                       {"scalar_ns", t.scalar_ns},
                       {"active_ns", t.target_ns},
                       {"speedup", t.speedup()}},
                      cost);
      if (std::strcmp(kernel, "and_accumulate") == 0 && words == 64) {
        accum64_speedup = t.speedup();
      }
    }
  }

  // Posting-list intersection: balanced pairs exercise the AVX2 block
  // path, the skewed pair the galloping path.  ns is per intersection of
  // the whole pair (the unit a NIX smart-superset query pays per list).
  std::printf("\n%-16s %8s %8s %14s %14s %9s\n", "kernel", "na", "nb",
              "scalar ns", "active ns", "speedup");
  const size_t pairs[][2] = {{4096, 4096}, {65536, 65536}, {256, 65536}};
  double intersect64k_speedup = 0.0;
  for (const auto& pair : pairs) {
    const size_t na = pair[0], nb = pair[1];
    const size_t iters = (na + nb) >= 65536 ? 400 : 4000;
    KernelTimes t = TimeIntersect(active, na, nb, iters);
    std::printf("%-16s %8zu %8zu %14.0f %14.0f %8.2fx\n", "intersect_u64",
                na, nb, t.scalar_ns, t.target_ns, t.speedup());
    MeasuredCost cost;
    cost.wall_ms = t.target_ns * 1e-6;
    EmitBenchRecord(std::string("intersect_u64.") + active.name,
                    {{"na", static_cast<double>(na)},
                     {"nb", static_cast<double>(nb)},
                     {"scalar_ns", t.scalar_ns},
                     {"active_ns", t.target_ns},
                     {"speedup", t.speedup()}},
                    cost);
    if (na == 65536 && nb == 65536) intersect64k_speedup = t.speedup();
  }

  std::printf("\n4096-bit and_accumulate speedup: %.2fx\n", accum64_speedup);
  std::printf("64k x 64k intersect_u64 speedup: %.2fx\n",
              intersect64k_speedup);
  if (min_intersect_speedup > 0 &&
      intersect64k_speedup < min_intersect_speedup) {
    std::fprintf(stderr,
                 "FAIL: intersect_u64 @64k speedup %.2fx < required %.2fx\n",
                 intersect64k_speedup, min_intersect_speedup);
    return 1;
  }
  if (min_speedup > 0 && accum64_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: and_accumulate @64w speedup %.2fx < required %.2fx\n",
                 accum64_speedup, min_speedup);
    return 1;
  }
  return 0;
}
