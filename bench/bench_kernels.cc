// Kernel throughput: the suppressed-vectorization scalar reference vs the
// portable unrolled loops vs the dispatched (AVX2 when available) table, on
// the two working-set sizes the query paths actually use — the 4096-bit
// slice accumulator (64 words) that BSSF combination ANDs/ORs per page
// column, and a full 4 KiB page (512 words) as streamed by the SSF scan.
//
// Usage: bench_kernels [--json <path>] [--min-speedup <x>]
//   --min-speedup enforces that the dispatched and_accumulate at 64 words is
//   at least <x> times the scalar reference (exit 1 otherwise); CI smoke
//   runs without it so shared-runner noise cannot fail the build.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sig/kernels.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

// Wall-clock nanoseconds per call of `fn`, amortized over enough calls to
// dwarf timer granularity.  The body runs once untimed to warm caches.
template <typename Fn>
double NsPerCall(size_t iters, Fn&& fn) {
  fn();
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(iters);
}

// Defeats dead-code elimination for the value-returning kernels.
volatile uint64_t g_sink;

struct KernelTimes {
  double scalar_ns = 0;
  double target_ns = 0;
  double speedup() const {
    return target_ns > 0 ? scalar_ns / target_ns : 0.0;
  }
};

// Times one named kernel at `words` for scalar vs `target`.  The accumulate
// kernels mutate acc in place; re-running on the converged value keeps the
// memory traffic identical, which is what the measurement is about.
KernelTimes TimeKernel(const char* kernel, const SignatureKernels& target,
                       size_t words, size_t iters) {
  Rng rng(0x5eedULL + words);
  std::vector<uint64_t> acc(words), src(words);
  for (uint64_t& w : acc) w = rng.Next();
  // src ⊆ acc so contains_all never early-exits: worst-case full scan.
  for (size_t i = 0; i < words; ++i) src[i] = acc[i] & rng.Next();

  KernelTimes t;
  const SignatureKernels& scalar = ScalarKernels();
  if (std::strcmp(kernel, "and_accumulate") == 0) {
    t.scalar_ns = NsPerCall(
        iters, [&] { scalar.and_accumulate(acc.data(), src.data(), words); });
    t.target_ns = NsPerCall(
        iters, [&] { target.and_accumulate(acc.data(), src.data(), words); });
  } else if (std::strcmp(kernel, "or_accumulate") == 0) {
    t.scalar_ns = NsPerCall(
        iters, [&] { scalar.or_accumulate(acc.data(), src.data(), words); });
    t.target_ns = NsPerCall(
        iters, [&] { target.or_accumulate(acc.data(), src.data(), words); });
  } else if (std::strcmp(kernel, "contains_all") == 0) {
    t.scalar_ns = NsPerCall(iters, [&] {
      g_sink = g_sink + (scalar.contains_all(src.data(), acc.data(), words) ? 1 : 0);
    });
    t.target_ns = NsPerCall(iters, [&] {
      g_sink = g_sink + (target.contains_all(src.data(), acc.data(), words) ? 1 : 0);
    });
  } else if (std::strcmp(kernel, "popcount_and") == 0) {
    t.scalar_ns = NsPerCall(iters, [&] {
      g_sink = g_sink + scalar.popcount_and(acc.data(), src.data(), words);
    });
    t.target_ns = NsPerCall(iters, [&] {
      g_sink = g_sink + target.popcount_and(acc.data(), src.data(), words);
    });
  } else {
    std::fprintf(stderr, "FATAL unknown kernel %s\n", kernel);
    std::abort();
  }
  return t;
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  using namespace sigsetdb;
  BenchJson::Global().Init("kernels", argc, argv);
  double min_speedup = -1.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--min-speedup") {
      min_speedup = std::atof(argv[i + 1]);
    }
  }

  const SignatureKernels& active = ActiveKernels();
  PrintBenchHeader("kernels", "dispatched signature-kernel throughput");
  std::printf("dispatched to: %s (avx2 built: %s, cpu support: %s)\n\n",
              active.name, Avx2Kernels() != nullptr ? "yes" : "no",
              Avx2Supported() ? "yes" : "no");
  std::printf("%-16s %6s %12s %12s %9s %10s\n", "kernel", "words",
              "scalar ns", "active ns", "speedup", "GiB/s");

  const char* kernels[] = {"and_accumulate", "or_accumulate", "contains_all",
                           "popcount_and"};
  // 64 words = the 4096-bit slice accumulator; 512 words = one 4 KiB page.
  const size_t sizes[] = {64, 512};
  double accum64_speedup = 0.0;
  for (const char* kernel : kernels) {
    for (size_t words : sizes) {
      const size_t iters = words >= 512 ? 200000 : 1000000;
      KernelTimes t = TimeKernel(kernel, active, words, iters);
      // Bytes touched per call: two operand streams of `words` words.
      const double gib_s = (2.0 * 8.0 * static_cast<double>(words)) /
                           t.target_ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
      std::printf("%-16s %6zu %12.2f %12.2f %8.2fx %10.2f\n", kernel, words,
                  t.scalar_ns, t.target_ns, t.speedup(), gib_s);
      MeasuredCost cost;
      cost.wall_ms = t.target_ns * 1e-6;
      EmitBenchRecord(std::string(kernel) + "." + active.name,
                      {{"words", static_cast<double>(words)},
                       {"scalar_ns", t.scalar_ns},
                       {"active_ns", t.target_ns},
                       {"speedup", t.speedup()}},
                      cost);
      if (std::strcmp(kernel, "and_accumulate") == 0 && words == 64) {
        accum64_speedup = t.speedup();
      }
    }
  }

  std::printf("\n4096-bit and_accumulate speedup: %.2fx\n", accum64_speedup);
  if (min_speedup > 0 && accum64_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: and_accumulate @64w speedup %.2fx < required %.2fx\n",
                 accum64_speedup, min_speedup);
    return 1;
  }
  return 0;
}
