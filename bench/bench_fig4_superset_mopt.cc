// Figure 4 — retrieval cost RC for T ⊇ Q, Dt = 10, m = m_opt.
//
// Series: SSF and BSSF at F ∈ {250, 500} with the text-retrieval choice
// m = m_opt = F·ln2/Dt, versus NIX.  Dq sweeps 1..10.  The paper's finding:
// with m_opt, both signature organizations lose to NIX across the range —
// the motivation for the small-m tuning of Figure 5.
//
// Columns marked `meas` are measured page accesses of the real structures
// at full paper scale (N=32,000, V=13,000); the others are the analytical
// model.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  const DatabaseParams db;
  const NixParams nix;
  const int64_t dt = 10;
  const uint32_t m250 = RoundedMopt(250, dt);  // 17
  const uint32_t m500 = RoundedMopt(500, dt);  // 35

  std::printf("m_opt(F=250) = %u, m_opt(F=500) = %u\n\n", m250, m500);

  // Full-scale empirical database for the F=250 configuration and NIX.
  BenchDb::Options options;
  options.dt = dt;
  options.sig = {250, m250};
  BenchDb bench(options);
  const int kTrials = 5;

  TablePrinter table({"Dq", "SSF F=250", "SSF F=500", "BSSF F=250",
                      "BSSF F=500", "NIX", "SSF250 meas", "BSSF250 meas",
                      "NIX meas"});
  for (int64_t dq = 1; dq <= 10; ++dq) {
    double ssf250 =
        SsfRetrievalCost(db, {250, m250}, dt, dq, QueryKind::kSuperset);
    double ssf500 =
        SsfRetrievalCost(db, {500, m500}, dt, dq, QueryKind::kSuperset);
    double bssf250 = BssfRetrievalSuperset(db, {250, m250}, dt, dq);
    double bssf500 = BssfRetrievalSuperset(db, {500, m500}, dt, dq);
    double nix_rc = NixRetrievalSuperset(db, nix, dt, dq);
    MeasuredCost ssf_meas = bench.Measure(&bench.ssf(), QueryKind::kSuperset,
                                          dq, kTrials, 100 + dq);
    MeasuredCost bssf_meas = bench.Measure(
        &bench.bssf(), QueryKind::kSuperset, dq, kTrials, 200 + dq);
    MeasuredCost nix_meas = bench.Measure(&bench.nix(), QueryKind::kSuperset,
                                          dq, kTrials, 300 + dq);
    const double fdq = static_cast<double>(dq);
    EmitBenchRecord("ssf.superset", {{"dq", fdq}, {"f", 250}, {"m", m250}},
                    ssf_meas, ssf250);
    EmitBenchRecord("bssf.superset", {{"dq", fdq}, {"f", 250}, {"m", m250}},
                    bssf_meas, bssf250);
    EmitBenchRecord("nix.superset", {{"dq", fdq}}, nix_meas, nix_rc);
    table.AddRow({TablePrinter::Int(dq), TablePrinter::Num(ssf250),
                  TablePrinter::Num(ssf500), TablePrinter::Num(bssf250),
                  TablePrinter::Num(bssf500), TablePrinter::Num(nix_rc),
                  TablePrinter::Num(ssf_meas.pages),
                  TablePrinter::Num(bssf_meas.pages),
                  TablePrinter::Num(nix_meas.pages)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check (paper): NIX below both signature files for all Dq; "
      "SSF flat at ~SC_SIG; BSSF(m_opt) grows with Dq.\n");
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("fig4", argc, argv);
  sigsetdb::PrintBenchHeader(
      "Figure 4", "retrieval cost RC for T ⊇ Q (Dt=10, m=m_opt)");
  sigsetdb::Run();
  return 0;
}
