// Ablation — BSSF insertion: the paper's worst case vs. the sparse mode.
//
// §6: "the insert costs of BSSF are based on the worst case assumption.
// Therefore, it may be possible to improve the insertion cost."  The sparse
// mode touches only the slices where the new signature has a one bit
// (appends land on zeroed bits), cutting UC_I from F+1 to ~m_t+1.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_bssf.h"
#include "model/false_drop.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  TablePrinter table({"Dt", "F", "m", "model F+1", "model m_t+1",
                      "naive writes", "sparse writes", "speedup"});
  struct Config {
    int64_t dt;
    uint32_t f;
    uint32_t m;
  };
  for (const Config& c : {Config{10, 250, 2}, Config{10, 500, 2},
                          Config{100, 1000, 2}, Config{100, 2500, 3}}) {
    StorageManager storage;
    auto naive = ValueOrDie(
        BitSlicedSignatureFile::Create({c.f, c.m}, 4096,
                                       storage.CreateOrOpen("n.slices"),
                                       storage.CreateOrOpen("n.oid"),
                                       BssfInsertMode::kTouchAllSlices),
        "naive");
    auto sparse = ValueOrDie(
        BitSlicedSignatureFile::Create({c.f, c.m}, 4096,
                                       storage.CreateOrOpen("s.slices"),
                                       storage.CreateOrOpen("s.oid"),
                                       BssfInsertMode::kSparse),
        "sparse");
    Rng rng(c.f);
    const int kTrials = 50;
    uint64_t naive_writes = 0, sparse_writes = 0;
    for (int t = 0; t < kTrials; ++t) {
      ElementSet set = rng.SampleWithoutReplacement(
          13000, static_cast<uint64_t>(c.dt));
      Oid oid = Oid::FromLocation(static_cast<PageId>(t), 0);
      storage.ResetStats();
      CheckOk(naive->Insert(oid, set), "naive insert");
      naive_writes += storage.TotalStats().page_writes;
      storage.ResetStats();
      CheckOk(sparse->Insert(oid, set), "sparse insert");
      sparse_writes += storage.TotalStats().page_writes;
    }
    double naive_mean = static_cast<double>(naive_writes) / kTrials;
    double sparse_mean = static_cast<double>(sparse_writes) / kTrials;
    table.AddRow({TablePrinter::Int(c.dt), TablePrinter::Int(c.f),
                  TablePrinter::Int(c.m),
                  TablePrinter::Num(BssfInsertCost({c.f, c.m})),
                  TablePrinter::Num(BssfInsertCostSparse({c.f, c.m}, c.dt)),
                  TablePrinter::Num(naive_mean),
                  TablePrinter::Num(sparse_mean),
                  TablePrinter::Num(naive_mean / sparse_mean, 1) + "x"});
  }
  table.Print(std::cout);
  std::printf(
      "\nSparse insertion removes the paper's \"only problem with BSSF\" "
      "(§6): insert cost drops from ~F to ~m_t page writes.\n");
}

}  // namespace
}  // namespace sigsetdb

int main() {
  sigsetdb::PrintBenchHeader("Ablation",
                             "BSSF insertion: worst case vs. sparse mode");
  sigsetdb::Run();
  return 0;
}
