// Figure 5 — retrieval cost RC for T ⊇ Q with small m (Dt=10, F=500).
//
// The paper's central tuning insight: m_opt minimizes the false-drop
// probability but not the total cost.  With m ∈ {1..4} the BSSF reads far
// fewer slices and, except at Dq=1, matches or beats NIX.  The `meas m=2`
// column runs the real BSSF at full scale.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  const DatabaseParams db;
  const NixParams nix;
  const int64_t dt = 10;

  BenchDb::Options options;
  options.dt = dt;
  options.sig = {500, 2};
  options.build_ssf = false;
  options.build_nix = false;
  BenchDb bench(options);
  const int kTrials = 5;

  TablePrinter table({"Dq", "BSSF m=1", "BSSF m=2", "BSSF m=3", "BSSF m=4",
                      "NIX", "BSSF m=2 meas"});
  for (int64_t dq = 1; dq <= 10; ++dq) {
    std::vector<std::string> row = {TablePrinter::Int(dq)};
    for (int64_t m = 1; m <= 4; ++m) {
      row.push_back(
          TablePrinter::Num(BssfRetrievalSuperset(db, {500, m}, dt, dq)));
    }
    row.push_back(TablePrinter::Num(NixRetrievalSuperset(db, nix, dt, dq)));
    MeasuredCost meas = bench.Measure(&bench.bssf(), QueryKind::kSuperset,
                                      dq, kTrials, 500 + dq);
    EmitBenchRecord("bssf.superset",
                    {{"dq", static_cast<double>(dq)}, {"f", 500}, {"m", 2}},
                    meas, BssfRetrievalSuperset(db, {500, 2}, dt, dq));
    row.push_back(TablePrinter::Num(meas.pages));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check (paper): at Dq=1 BSSF is inferior to NIX; for Dq >= 2 "
      "BSSF with small m is comparable to or lower than NIX (4.0 pages at "
      "Dq=2, 6.0 at Dq=3 for m=2).\n");
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("fig5", argc, argv);
  sigsetdb::PrintBenchHeader(
      "Figure 5", "retrieval cost RC for T ⊇ Q (Dt=10, F=500, small m)");
  sigsetdb::Run();
  return 0;
}
