// Table 7 (batched) — amortized update costs of the grouped write path,
// model (cost_batch.h) and measured.
//
// The headline property (see DESIGN.md §11): at the paper's Table 2
// parameters, a 100-insert WriteBatch into BSSF writes each dirty slice
// page once — ≥5× fewer slice-page writes than 100 individual inserts,
// which pay the per-insert slice RMWs in full.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "model/cost_batch.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

constexpr int kBatch = 100;

std::vector<ElementSet> SampleSets(int n, int64_t v, int64_t dt,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<ElementSet> sets;
  sets.reserve(n);
  for (int i = 0; i < n; ++i) {
    sets.push_back(rng.SampleWithoutReplacement(static_cast<uint64_t>(v),
                                                static_cast<uint64_t>(dt)));
  }
  return sets;
}

// Total page writes of inserting `sets` one Insert() call at a time.
uint64_t MeasureSingletons(StorageManager& storage,
                           SetAccessFacility* facility,
                           const std::vector<ElementSet>& sets,
                           uint64_t oid_base) {
  storage.ResetStats();
  for (size_t i = 0; i < sets.size(); ++i) {
    CheckOk(facility->Insert(
                Oid::FromLocation(static_cast<PageId>(oid_base + i), 0),
                sets[i]),
            "singleton insert");
  }
  return storage.TotalStats().page_writes;
}

// Total page writes of inserting `sets` through one ApplyBatch() call.
uint64_t MeasureBatch(StorageManager& storage, SetAccessFacility* facility,
                      const std::vector<ElementSet>& sets,
                      uint64_t oid_base) {
  std::vector<BatchOp> ops;
  ops.reserve(sets.size());
  for (size_t i = 0; i < sets.size(); ++i) {
    ops.push_back(BatchOp{
        BatchOp::Kind::kInsert,
        Oid::FromLocation(static_cast<PageId>(oid_base + i), 0), sets[i]});
  }
  storage.ResetStats();
  CheckOk(facility->ApplyBatch(ops), "batch insert");
  return storage.TotalStats().page_writes;
}

void Run() {
  const DatabaseParams db;  // paper Table 2: N=32000, V=13000, P=4096
  const NixParams nix;
  const SignatureParams sig{250, 2};
  const int64_t dt = 10;

  // Fresh facilities per regime (insert cost is population independent for
  // the signature files); two copies each so singleton and batch runs start
  // from identical states.
  StorageManager storage;
  auto make_ssf = [&](const char* name) {
    return ValueOrDie(
        SequentialSignatureFile::Create(
            {250, 2}, storage.CreateOrOpen(std::string(name) + ".sig"),
            storage.CreateOrOpen(std::string(name) + ".oid")),
        "ssf");
  };
  auto make_bssf = [&](const char* name, BssfInsertMode mode) {
    return ValueOrDie(
        BitSlicedSignatureFile::Create(
            {250, 2}, 1024, storage.CreateOrOpen(std::string(name) + ".slices"),
            storage.CreateOrOpen(std::string(name) + ".oid"), mode),
        "bssf");
  };

  const std::vector<ElementSet> sets = SampleSets(kBatch, db.v, dt, 42);

  auto ssf_single = make_ssf("ssf.single");
  auto ssf_batch = make_ssf("ssf.batch");
  uint64_t ssf_w1 = MeasureSingletons(storage, ssf_single.get(), sets, 0);
  uint64_t ssf_wb = MeasureBatch(storage, ssf_batch.get(), sets, 0);

  auto naive_single = make_bssf("naive.single", BssfInsertMode::kTouchAllSlices);
  auto naive_batch = make_bssf("naive.batch", BssfInsertMode::kTouchAllSlices);
  uint64_t naive_w1 = MeasureSingletons(storage, naive_single.get(), sets, 0);
  uint64_t naive_wb = MeasureBatch(storage, naive_batch.get(), sets, 0);

  auto sparse_single = make_bssf("sparse.single", BssfInsertMode::kSparse);
  auto sparse_batch = make_bssf("sparse.batch", BssfInsertMode::kSparse);
  uint64_t sparse_w1 = MeasureSingletons(storage, sparse_single.get(), sets, 0);
  uint64_t sparse_wb = MeasureBatch(storage, sparse_batch.get(), sets, 0);

  // NIX is measured against a realistically populated tree (height matters).
  BenchDb::Options options;
  options.dt = dt;
  options.sig = {250, 2};
  options.build_ssf = false;
  options.build_bssf = false;
  BenchDb bench(options);
  const std::vector<ElementSet> nix_sets1 = SampleSets(kBatch, db.v, dt, 43);
  const std::vector<ElementSet> nix_sets2 = SampleSets(kBatch, db.v, dt, 44);
  uint64_t nix_w1 =
      MeasureSingletons(bench.storage(), &bench.nix(), nix_sets1, 500000);
  uint64_t nix_wb =
      MeasureBatch(bench.storage(), &bench.nix(), nix_sets2, 600000);

  const double n = static_cast<double>(kBatch);
  TablePrinter table({"facility", "singleton w/op", "batch w/op",
                      "model batch w/op", "ratio"});
  auto add_row = [&](const char* name, uint64_t w1, uint64_t wb,
                     double model) {
    table.AddRow({name, TablePrinter::Num(w1 / n), TablePrinter::Num(wb / n),
                  TablePrinter::Num(model),
                  TablePrinter::Num(static_cast<double>(w1) /
                                    static_cast<double>(wb))});
  };
  add_row("ssf", ssf_w1, ssf_wb, SsfBatchInsertCost(db, sig, kBatch));
  add_row("bssf naive", naive_w1, naive_wb,
          BssfBatchInsertCost(sig, db, kBatch));
  add_row("bssf sparse", sparse_w1, sparse_wb,
          BssfBatchInsertCostSparse(sig, db, dt, kBatch));
  add_row("nix", nix_w1, nix_wb, NixBatchInsertCost(db, nix, dt, kBatch));
  std::printf("Batched inserts, n = %d (page writes per operation):\n",
              kBatch);
  table.Print(std::cout);

  const double sparse_ratio =
      static_cast<double>(sparse_w1) / static_cast<double>(sparse_wb);
  std::printf(
      "\nBSSF sparse batch writes %.1fx fewer pages than singleton inserts "
      "(headline property: >= 5x)\n",
      sparse_ratio);

  auto per_op = [&](uint64_t w) {
    return MeasuredCost{.pages = w / n, .writes = w / n, .wall_ms = -1};
  };
  EmitBenchRecord("ssf.batch_insert", {{"n", kBatch}, {"dt", dt}},
                  per_op(ssf_wb), SsfBatchInsertCost(db, sig, kBatch));
  EmitBenchRecord("bssf.batch_insert.naive", {{"n", kBatch}, {"dt", dt}},
                  per_op(naive_wb), BssfBatchInsertCost(sig, db, kBatch));
  EmitBenchRecord("bssf.batch_insert.sparse", {{"n", kBatch}, {"dt", dt}},
                  per_op(sparse_wb),
                  BssfBatchInsertCostSparse(sig, db, dt, kBatch));
  EmitBenchRecord("nix.batch_insert", {{"n", kBatch}, {"dt", dt}},
                  per_op(nix_wb), NixBatchInsertCost(db, nix, dt, kBatch));
  EmitBenchRecord("bssf.batch_vs_singleton",
                  {{"n", kBatch}, {"dt", dt}, {"threshold", 5}},
                  MeasuredCost{.pages = sparse_ratio, .wall_ms = -1}, 5.0);

  // --- batch delete: tombstone 100 of 1000 objects in one pass ---
  const int kPop = 1000;
  const std::vector<ElementSet> pop = SampleSets(kPop, db.v, dt, 45);
  auto del_ssf = make_ssf("ssf.delete");
  {
    std::vector<BatchOp> ops;
    for (int i = 0; i < kPop; ++i) {
      ops.push_back(BatchOp{BatchOp::Kind::kInsert,
                            Oid::FromLocation(static_cast<PageId>(i), 0),
                            pop[i]});
    }
    CheckOk(del_ssf->ApplyBatch(ops), "populate");
  }
  std::vector<BatchOp> removes;
  for (int i = 0; i < kBatch; ++i) {
    removes.push_back(BatchOp{BatchOp::Kind::kRemove,
                              Oid::FromLocation(static_cast<PageId>(i * 7), 0),
                              pop[i * 7]});
  }
  storage.ResetStats();
  CheckOk(del_ssf->ApplyBatch(removes), "batch delete");
  IoStats del_io = storage.TotalStats();
  DatabaseParams db_small = db;
  db_small.n = kPop;
  const double del_model = SigBatchDeleteCost(db_small, kBatch);
  std::printf(
      "\nBatch delete (100 of 1000): %.3f pages/op measured "
      "(model (SC_OID + min(n, SC_OID))/n = %.3f)\n",
      static_cast<double>(del_io.total()) / n, del_model);
  EmitBenchRecord("ssf.batch_delete", {{"n", kBatch}, {"pop", kPop}},
                  MeasuredCost{.pages = del_io.total() / n,
                               .reads = del_io.page_reads / n,
                               .writes = del_io.page_writes / n,
                               .wall_ms = -1},
                  del_model);
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("table7_batched", argc, argv);
  sigsetdb::PrintBenchHeader("Table 7 (batched)",
                             "amortized batched update costs");
  sigsetdb::Run();
  return 0;
}
