// Figures 1 and 2 — actual drops and false drops for T ⊇ Q and T ⊆ Q.
//
// The paper illustrates the two search conditions with 8-bit signatures.
// This bench regenerates the same kind of worked example with this
// library's hash (the bit patterns differ from the paper's illustration —
// they depend on the hash — but the classification logic is identical),
// then quantifies false drops over a batch of random sets so the effect is
// visible beyond a single anecdote.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "obj/schema.h"
#include "sig/signature.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

std::string Bits(const BitVector& v) {
  std::string out(v.size(), '0');
  for (size_t i = 0; i < v.size(); ++i) {
    if (v.Test(i)) out[i] = '1';
  }
  return out;
}

void RunExample() {
  // A toy dictionary mirroring the paper's hobbies example.
  const SignatureConfig config{16, 2};
  ElementDictionary dict;
  const uint64_t baseball = dict.IdForString("Baseball");
  const uint64_t fishing = dict.IdForString("Fishing");
  const uint64_t golf = dict.IdForString("Golf");
  const uint64_t football = dict.IdForString("Football");
  const uint64_t tennis = dict.IdForString("Tennis");

  std::printf("Element signatures (F=%u, m=%u):\n", config.f, config.m);
  for (uint64_t e : {baseball, fishing, golf, football, tennis}) {
    std::printf("  %-10s %s\n", dict.StringForId(e).value().c_str(),
                Bits(MakeElementSignature(e, config)).c_str());
  }

  // --- Figure 1: T ⊇ Q with query {Baseball, Fishing} ---
  ElementSet query1 = {baseball, fishing};
  NormalizeSet(&query1);
  BitVector qs1 = MakeSetSignature(query1, config);
  std::printf("\nFigure 1 (T ⊇ Q): query {Baseball, Fishing} -> %s\n",
              Bits(qs1).c_str());
  struct Case {
    const char* label;
    ElementSet set;
    bool truth;
  };
  ElementSet actual1 = {baseball, golf, fishing};
  NormalizeSet(&actual1);
  ElementSet false1 = {baseball, football, tennis};
  NormalizeSet(&false1);
  for (const Case& c : {Case{"{Baseball,Golf,Fishing}", actual1, true},
                        Case{"{Baseball,Football,Tennis}", false1, false}}) {
    BitVector ts = MakeSetSignature(c.set, config);
    bool drop = MatchesSuperset(ts, qs1);
    std::printf("  target %-28s sig %s  drop=%s  truly-satisfies=%s -> %s\n",
                c.label, Bits(ts).c_str(), drop ? "yes" : "no",
                c.truth ? "yes" : "no",
                drop ? (c.truth ? "actual drop" : "FALSE DROP")
                     : "filtered out");
  }

  // --- Figure 2: T ⊆ Q with query {Baseball, Football, Tennis} ---
  ElementSet query2 = {baseball, football, tennis};
  NormalizeSet(&query2);
  BitVector qs2 = MakeSetSignature(query2, config);
  std::printf("\nFigure 2 (T ⊆ Q): query {Baseball, Football, Tennis} -> %s\n",
              Bits(qs2).c_str());
  ElementSet actual2 = {baseball, football};
  NormalizeSet(&actual2);
  ElementSet false2 = {baseball, fishing};
  NormalizeSet(&false2);
  for (const Case& c : {Case{"{Baseball,Football}", actual2, true},
                        Case{"{Baseball,Fishing}", false2, false}}) {
    BitVector ts = MakeSetSignature(c.set, config);
    bool drop = MatchesSubset(ts, qs2);
    std::printf("  target %-28s sig %s  drop=%s  truly-satisfies=%s -> %s\n",
                c.label, Bits(ts).c_str(), drop ? "yes" : "no",
                c.truth ? "yes" : "no",
                drop ? (c.truth ? "actual drop" : "FALSE DROP")
                     : "filtered out");
  }
}

// Quantifies drops over random targets so the example generalizes.
void RunBatchCounts() {
  const SignatureConfig config{16, 2};
  const int64_t kDomain = 50;
  const int kTargets = 20000;
  Rng rng(1);
  ElementSet query = {1, 2};
  BitVector qs = MakeSetSignature(query, config);
  int drops = 0, actual = 0;
  for (int i = 0; i < kTargets; ++i) {
    ElementSet target = rng.SampleWithoutReplacement(kDomain, 3);
    BitVector ts = MakeSetSignature(target, config);
    if (MatchesSuperset(ts, qs)) {
      ++drops;
      if (IsSubset(query, target)) ++actual;
    }
  }
  std::printf(
      "\nBatch (T ⊇ Q, 16-bit sigs, %d random 3-element targets of a "
      "%lld-element domain):\n",
      kTargets, static_cast<long long>(kDomain));
  std::printf("  drops=%d  actual=%d  false=%d  (false-drop rate %.4f)\n",
              drops, actual, drops - actual,
              static_cast<double>(drops - actual) / kTargets);
  EmitBenchRecord(
      "superset.false_drops",
      {{"targets", static_cast<double>(kTargets)},
       {"domain", static_cast<double>(kDomain)},
       {"f", 16},
       {"m", 2},
       {"drops", static_cast<double>(drops)},
       {"actual_drops", static_cast<double>(actual)},
       {"false_drop_rate",
        static_cast<double>(drops - actual) / kTargets}},
      MeasuredCost{.wall_ms = -1});
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("fig1_fig2", argc, argv);
  sigsetdb::PrintBenchHeader("Figures 1-2",
                             "actual and false drops under both conditions");
  sigsetdb::RunExample();
  sigsetdb::RunBatchCounts();
  return 0;
}
