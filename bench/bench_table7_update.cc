// Table 7 — update costs UC_I (insert) and UC_D (delete) of the three
// facilities, model and measured.
//
// Measurement notes (see EXPERIMENTS.md):
//  * the paper's 1993 model counts one "disk access" per touched page; the
//    measured columns therefore report page *writes* for inserts (the
//    read half of a read-modify-write is listed separately) and page reads
//    for the delete-flag scan;
//  * BSSF is measured in both the paper's worst case (touch all F slices)
//    and the sparse mode the paper anticipates in §6 (touch only the m_t
//    one-bit slices).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

// Measures the mean write/read cost of inserting `trials` fresh objects.
struct MeasuredUpdate {
  double writes;
  double reads;
};

MeasuredUpdate MeasureInserts(StorageManager& storage,
                              SetAccessFacility* facility, int64_t v,
                              int64_t dt, int trials, uint64_t seed) {
  Rng rng(seed);
  uint64_t writes = 0, reads = 0;
  for (int t = 0; t < trials; ++t) {
    ElementSet set = rng.SampleWithoutReplacement(
        static_cast<uint64_t>(v), static_cast<uint64_t>(dt));
    storage.ResetStats();
    CheckOk(facility->Insert(Oid::FromLocation(50000 + t, 0), set),
            "insert");
    IoStats io = storage.TotalStats();
    writes += io.page_writes;
    reads += io.page_reads;
  }
  return {static_cast<double>(writes) / trials,
          static_cast<double>(reads) / trials};
}

void Run() {
  const DatabaseParams db;
  const NixParams nix;

  struct Config {
    int64_t dt;
    uint32_t f;
    uint32_t m;
  };
  const Config configs[] = {
      {10, 250, 2}, {10, 500, 2}, {100, 1000, 2}, {100, 2500, 3}};

  TablePrinter table({"Dt", "F", "SSF UC_I", "BSSF UC_I", "BSSF UC_I sparse",
                      "NIX UC_I", "UC_D (sig)", "NIX UC_D"});
  for (const Config& c : configs) {
    table.AddRow({TablePrinter::Int(c.dt), TablePrinter::Int(c.f),
                  TablePrinter::Num(SsfInsertCost()),
                  TablePrinter::Num(BssfInsertCost({c.f, c.m})),
                  TablePrinter::Num(BssfInsertCostSparse({c.f, c.m}, c.dt)),
                  TablePrinter::Num(NixInsertCost(db, nix, c.dt)),
                  TablePrinter::Num(SsfDeleteCost(db)),
                  TablePrinter::Num(NixDeleteCost(db, nix, c.dt))});
  }
  std::printf("Model (paper Table 7):\n");
  table.Print(std::cout);

  // --- measured, for the Dt=10, F=250 configuration at full scale ---
  std::printf("\nMeasured (Dt=10, F=250, m=2, full scale):\n");
  BenchDb::Options options;
  options.dt = 10;
  options.sig = {250, 2};
  BenchDb bench(options);

  // Fresh naive-mode and sparse-mode BSSFs (insert cost is independent of
  // the population, so empty facilities measure it cleanly).
  StorageManager extra;
  auto naive = ValueOrDie(
      BitSlicedSignatureFile::Create({250, 2}, 1024,
                                     extra.CreateOrOpen("naive.slices"),
                                     extra.CreateOrOpen("naive.oid"),
                                     BssfInsertMode::kTouchAllSlices),
      "naive bssf");
  auto sparse = ValueOrDie(
      BitSlicedSignatureFile::Create({250, 2}, 1024,
                                     extra.CreateOrOpen("sparse.slices"),
                                     extra.CreateOrOpen("sparse.oid"),
                                     BssfInsertMode::kSparse),
      "sparse bssf");

  const int kTrials = 10;
  MeasuredUpdate ssf_ins =
      MeasureInserts(bench.storage(), &bench.ssf(), 13000, 10, kTrials, 1);
  MeasuredUpdate naive_ins =
      MeasureInserts(extra, naive.get(), 13000, 10, kTrials, 2);
  MeasuredUpdate sparse_ins =
      MeasureInserts(extra, sparse.get(), 13000, 10, kTrials, 3);
  MeasuredUpdate nix_ins =
      MeasureInserts(bench.storage(), &bench.nix(), 13000, 10, kTrials, 4);
  std::printf("  SSF insert:         %.1f writes (model UC_I = 2)\n",
              ssf_ins.writes);
  std::printf(
      "  BSSF insert naive:  %.1f writes + %.1f RMW reads (model F+1 = "
      "251)\n",
      naive_ins.writes, naive_ins.reads);
  std::printf(
      "  BSSF insert sparse: %.1f writes + %.1f RMW reads (model m_t+1 = "
      "%.1f)\n",
      sparse_ins.writes, sparse_ins.reads,
      BssfInsertCostSparse({250, 2}, 10));
  std::printf(
      "  NIX insert:         %.1f writes + %.1f traversal reads (model "
      "rc*Dt = 30)\n",
      nix_ins.writes, nix_ins.reads);
  auto insert_cost = [](const MeasuredUpdate& u) {
    return MeasuredCost{.pages = u.writes + u.reads, .reads = u.reads,
                        .writes = u.writes, .wall_ms = -1};
  };
  EmitBenchRecord("ssf.insert", {{"dt", 10}, {"f", 250}, {"m", 2}},
                  insert_cost(ssf_ins), SsfInsertCost());
  EmitBenchRecord("bssf.insert.naive", {{"dt", 10}, {"f", 250}, {"m", 2}},
                  insert_cost(naive_ins), BssfInsertCost({250, 2}));
  EmitBenchRecord("bssf.insert.sparse", {{"dt", 10}, {"f", 250}, {"m", 2}},
                  insert_cost(sparse_ins),
                  BssfInsertCostSparse({250, 2}, 10));
  EmitBenchRecord("nix.insert", {{"dt", 10}},
                  insert_cost(nix_ins), NixInsertCost(db, nix, 10));

  // Delete-flag scan cost, averaged over random victims.
  Rng rng(5);
  double scan_reads = 0;
  const int kDeletes = 10;
  for (int t = 0; t < kDeletes; ++t) {
    size_t victim = rng.NextBelow(bench.oids().size());
    bench.storage().ResetStats();
    Status status =
        bench.ssf().Remove(bench.oids()[victim], bench.sets()[victim]);
    if (!status.ok()) {
      --t;  // duplicate victim across trials; pick another
      continue;
    }
    scan_reads += static_cast<double>(
        bench.storage().TotalStats().page_reads);
  }
  std::printf(
      "  SSF/BSSF delete:    %.1f scan reads on average (model SC_OID/2 = "
      "%.1f)\n",
      scan_reads / kDeletes, SsfDeleteCost(db));
  EmitBenchRecord(
      "ssf.delete", {{"dt", 10}, {"f", 250}, {"m", 2}},
      MeasuredCost{.pages = scan_reads / kDeletes,
                   .reads = scan_reads / kDeletes, .wall_ms = -1},
      SsfDeleteCost(db));
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("table7", argc, argv);
  sigsetdb::PrintBenchHeader("Table 7", "update costs UC_I and UC_D");
  sigsetdb::Run();
  return 0;
}
