// Ablation — the m-value trade-off (paper §5.1.2).
//
// Sweeps m for fixed F and Dt and prints, for both query types, the
// false-drop probability and the total retrieval cost.  The point the paper
// makes: Fd is minimized at m_opt = F·ln2/Dt, but the *cost* minimum sits
// at a far smaller m, because every additional one bit in the query
// signature is another bit slice to read.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_bssf.h"
#include "model/false_drop.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void RunSweep(int64_t f, int64_t dt, int64_t dq_super, int64_t dq_sub) {
  const DatabaseParams db;
  std::printf("\nF=%lld, Dt=%lld (m_opt = %.1f):\n", static_cast<long long>(f),
              static_cast<long long>(dt), OptimalM(f, dt));
  TablePrinter table({"m", "Fd superset", "RC superset",
                      "Fd subset", "RC subset"});
  double best_super = 1e18, best_sub = 1e18;
  int64_t best_super_m = 0, best_sub_m = 0;
  for (int64_t m = 1; m <= 40; ++m) {
    SignatureParams sig{f, m};
    double fd_super = FalseDropSuperset(sig, dt, dq_super);
    double rc_super = BssfRetrievalSuperset(db, sig, dt, dq_super);
    double fd_sub = FalseDropSubset(sig, dt, dq_sub);
    double rc_sub = BssfRetrievalSubset(db, sig, dt, dq_sub);
    if (rc_super < best_super) {
      best_super = rc_super;
      best_super_m = m;
    }
    if (rc_sub < best_sub) {
      best_sub = rc_sub;
      best_sub_m = m;
    }
    if (m <= 10 || m % 5 == 0) {
      table.AddRow({TablePrinter::Int(m), TablePrinter::Num(fd_super, 8),
                    TablePrinter::Num(rc_super),
                    TablePrinter::Num(fd_sub, 8), TablePrinter::Num(rc_sub)});
    }
  }
  table.Print(std::cout);
  std::printf(
      "  cost-optimal m: superset(Dq=%lld) -> m=%lld (%.1f pages), "
      "subset(Dq=%lld) -> m=%lld (%.1f pages)\n",
      static_cast<long long>(dq_super), static_cast<long long>(best_super_m),
      best_super, static_cast<long long>(dq_sub),
      static_cast<long long>(best_sub_m), best_sub);
}

}  // namespace
}  // namespace sigsetdb

int main() {
  sigsetdb::PrintBenchHeader(
      "Ablation", "m-value sweep: false drops vs. total retrieval cost");
  sigsetdb::RunSweep(500, 10, 3, 100);
  sigsetdb::RunSweep(2500, 100, 3, 500);
  std::printf(
      "\nTakeaway (paper §6): \"we had better set a far smaller value to m "
      "of BSSF\" than the text-retrieval m_opt.\n");
  return 0;
}
