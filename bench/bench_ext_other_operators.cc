// Extension — other set operators via signatures (paper §6 future work).
//
// The paper's analysis covers ⊇ and ⊆; §6 lists "support of other set
// operations" as ongoing work.  This bench measures set equality (=) and
// overlap (∩ ≠ ∅) across all three facilities: candidates, false drops and
// page accesses per query at full paper scale.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_ext.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

struct Outcome {
  double cost = 0;
  double candidates = 0;
  double false_drops = 0;
  double results = 0;
};

Outcome Measure(BenchDb& bench, SetAccessFacility* facility, QueryKind kind,
                const std::vector<ElementSet>& queries) {
  Outcome o;
  for (const auto& query : queries) {
    bench.storage().ResetStats();
    auto result = ExecuteSetQuery(facility, bench.store(), kind, query);
    CheckOk(result.status(), "query");
    o.cost += static_cast<double>(bench.storage().TotalStats().total());
    o.candidates += static_cast<double>(result->num_candidates);
    o.false_drops += static_cast<double>(result->num_false_drops);
    o.results += static_cast<double>(result->oids.size());
  }
  double n = static_cast<double>(queries.size());
  return {o.cost / n, o.candidates / n, o.false_drops / n, o.results / n};
}

void Run() {
  BenchDb::Options options;
  options.dt = 10;
  options.sig = {500, 2};
  BenchDb bench(options);
  Rng rng(55);

  // Equality queries: half are stored set values (hits), half random.
  std::vector<ElementSet> eq_queries;
  for (int i = 0; i < 5; ++i) {
    eq_queries.push_back(bench.sets()[rng.NextBelow(bench.sets().size())]);
    eq_queries.push_back(rng.SampleWithoutReplacement(13000, 10));
  }
  // Overlap queries: 2-element query sets.
  std::vector<ElementSet> ov_queries;
  for (int i = 0; i < 10; ++i) {
    ov_queries.push_back(rng.SampleWithoutReplacement(13000, 2));
  }

  const DatabaseParams model_db;
  const NixParams model_nix;
  const SignatureParams model_sig{500, 2};
  for (auto [kind, queries, label, dq] :
       {std::tuple<QueryKind, const std::vector<ElementSet>*, const char*,
                   int64_t>{QueryKind::kEquals, &eq_queries, "T = Q (Dq=10)",
                            10},
        {QueryKind::kOverlaps, &ov_queries, "T ∩ Q ≠ ∅ (Dq=2)", 2}}) {
    std::printf("\n%s:\n", label);
    TablePrinter table({"facility", "RC model", "RC meas", "candidates",
                        "false drops", "results"});
    for (SetAccessFacility* facility :
         {static_cast<SetAccessFacility*>(&bench.ssf()),
          static_cast<SetAccessFacility*>(&bench.bssf()),
          static_cast<SetAccessFacility*>(&bench.nix())}) {
      Outcome o = Measure(bench, facility, kind, *queries);
      double model;
      if (kind == QueryKind::kEquals) {
        model = facility->name() == "ssf"
                    ? SsfRetrievalEquals(model_db, model_sig, 10, dq)
                : facility->name() == "bssf"
                    ? BssfRetrievalEquals(model_db, model_sig, 10, dq)
                    : NixRetrievalEquals(model_db, model_nix, 10, dq);
      } else {
        model = facility->name() == "ssf"
                    ? SsfRetrievalOverlap(model_db, model_sig, 10, dq)
                : facility->name() == "bssf"
                    ? BssfRetrievalOverlap(model_db, model_sig, 10, dq)
                    : NixRetrievalOverlap(model_db, model_nix, 10, dq);
      }
      table.AddRow({facility->name(), TablePrinter::Num(model),
                    TablePrinter::Num(o.cost),
                    TablePrinter::Num(o.candidates, 2),
                    TablePrinter::Num(o.false_drops, 2),
                    TablePrinter::Num(o.results, 2)});
    }
    table.Print(std::cout);
  }
  std::printf(
      "\nObservations: equality via BSSF needs all F slices (signature "
      "equality test) yet still beats SSF's full scan in pages; overlap "
      "favours NIX (the union of postings is the exact answer) while "
      "signatures pay per-element membership filters.\n");
}

}  // namespace
}  // namespace sigsetdb

int main() {
  sigsetdb::PrintBenchHeader(
      "Extension", "equality and overlap operators via signatures (§6)");
  sigsetdb::Run();
  return 0;
}
