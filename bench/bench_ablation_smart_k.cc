// Ablation — how many query elements should the smart T ⊇ Q strategy use?
//
// For a Dq=10 query, sweeps k (elements used to form the query signature /
// NIX look-ups) and prints the cost decomposition: index/slice reads grow
// with k while the candidate count shrinks.  The model says the sweet spot
// is tiny (k=2 for m=2); the measured column confirms it on the real
// structures.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/actual_drops.h"
#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/false_drop.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  const DatabaseParams db;
  const NixParams nix;
  const int64_t dt = 10;
  const int64_t dq = 10;
  const SignatureParams sig{500, 2};

  BenchDb::Options options;
  options.dt = dt;
  options.sig = {500, 2};
  options.build_ssf = false;
  BenchDb bench(options);
  const int kTrials = 5;

  TablePrinter table({"k", "slice reads", "candidates", "BSSF RC(k)",
                      "NIX RC(k)", "BSSF meas", "NIX meas"});
  for (int64_t k = 1; k <= dq; ++k) {
    double m_q = ExpectedSignatureWeight(sig, k);
    double a_k = ActualDropsSuperset(db, dt, k);
    double fd_k = FalseDropSuperset(sig, dt, k);
    double candidates = a_k + fd_k * (static_cast<double>(db.n) - a_k);
    double bssf_rc = BssfRetrievalSuperset(db, sig, dt, k);
    double nix_rc = static_cast<double>(NixLookupCost(db, nix, dt)) *
                        static_cast<double>(k) +
                    a_k;
    double bssf_meas = bench.MeasureMeanSmartSupersetBssf(
        dq, static_cast<size_t>(k), kTrials, 1300 + k);
    double nix_meas = bench.MeasureMeanSmartSupersetNix(
        dq, static_cast<size_t>(k), kTrials, 1400 + k);
    table.AddRow({TablePrinter::Int(k), TablePrinter::Num(m_q),
                  TablePrinter::Num(candidates, 2),
                  TablePrinter::Num(bssf_rc), TablePrinter::Num(nix_rc),
                  TablePrinter::Num(bssf_meas), TablePrinter::Num(nix_meas)});
  }
  table.Print(std::cout);
  int64_t best_k = 0;
  BssfSmartSupersetCost(db, sig, dt, dq, &best_k);
  std::printf("\nModel-chosen k for BSSF: %lld (paper §5.1.3: two arbitrary "
              "elements for m=2).\n",
              static_cast<long long>(best_k));
}

}  // namespace
}  // namespace sigsetdb

int main() {
  sigsetdb::PrintBenchHeader(
      "Ablation", "smart T ⊇ Q: choice of k (Dt=10, Dq=10, F=500, m=2)");
  sigsetdb::Run();
  return 0;
}
