// Table 5 — storage cost of NIX (lp, nlp, SC) for Dt ∈ {10, 100}.
//
// Model values must be exactly the paper's (685/5/690 and 6500/31/6531).
// The empirical columns bulk-build the real B+-tree at full scale with the
// paper's fanout cap and report its actual page counts; small deviations
// come from the binomial spread of posting-list lengths around d = Dt·N/V
// (the model assumes every key has exactly d postings).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "model/cost_nix.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

void Run() {
  const DatabaseParams db;
  const NixParams nix;

  TablePrinter table({"Dt", "lp", "nlp", "SC", "lp meas", "nlp meas",
                      "SC meas", "height meas"});
  for (int64_t dt : {10, 100}) {
    BenchDb::Options options;
    options.dt = dt;
    options.sig = {250, 2};
    options.build_ssf = false;
    options.build_bssf = false;
    BenchDb bench(options);
    const BTree& tree = bench.nix().tree();
    table.AddRow({TablePrinter::Int(dt),
                  TablePrinter::Int(NixLeafPages(db, nix, dt)),
                  TablePrinter::Int(NixNonLeafPages(db, nix, dt)),
                  TablePrinter::Int(NixStorageCost(db, nix, dt)),
                  TablePrinter::Int(static_cast<int64_t>(tree.leaf_pages())),
                  TablePrinter::Int(
                      static_cast<int64_t>(tree.internal_pages())),
                  TablePrinter::Int(static_cast<int64_t>(tree.total_pages())),
                  TablePrinter::Int(tree.height())});
    EmitBenchRecord(
        "nix.storage", {{"dt", static_cast<double>(dt)}},
        MeasuredCost{.pages = static_cast<double>(tree.total_pages()),
                     .wall_ms = -1},
        static_cast<double>(NixStorageCost(db, nix, dt)));
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper values: Dt=10 -> 685/5/690; Dt=100 -> 6500/31/6531; height 2 "
      "(rc = 3) in both cases.\n");
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) {
  sigsetdb::BenchJson::Global().Init("table5", argc, argv);
  sigsetdb::PrintBenchHeader("Table 5", "storage cost of NIX");
  sigsetdb::Run();
  return 0;
}
