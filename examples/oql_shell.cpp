// oql_shell: the paper's query language, runnable.
//
// Builds the §1 university database (Courses referenced by OID, string
// hobbies) inside a two-attribute Database, then executes queries written
// in the paper's SQL-like syntax — either the built-in demo script or lines
// read from stdin.
//
//   $ ./oql_shell
//   $ echo '<query>' | ./oql_shell -     (reads queries from stdin)
//
// Supported operators: has-subset (⊇), in-subset (⊆), has-proper-subset
// (⊋), in-proper-subset (⊊), equals, overlaps; conjunctions with `and`.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "query/language.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

struct Shell {
  StorageManager storage;
  std::unique_ptr<Database> db;
  std::map<Oid, std::string> names;
  std::map<std::string, uint64_t> course_ids;  // name -> element id (OID)

  Status Build() {
    Database::Options options;
    Database::AttributeOptions courses;
    courses.name = "courses";
    courses.sig = {128, 2};
    courses.domain_estimate = 64;
    Database::AttributeOptions hobbies;
    hobbies.name = "hobbies";
    hobbies.sig = {128, 2};
    hobbies.domain_estimate = 64;
    options.attributes = {courses, hobbies};
    options.capacity = 1024;
    SIGSET_ASSIGN_OR_RETURN(db, Database::Create(&storage, "Student",
                                                 options));

    // Courses get synthetic OIDs (their element ids).
    const char* kCourses[] = {"DBTheory", "DBSystems", "Datalog",
                              "Compilers", "Graphics"};
    for (size_t i = 0; i < 5; ++i) {
      course_ids[kCourses[i]] = 1000 + i;
    }
    ElementDictionary& hobby_dict = db->dictionary(1);

    struct Student {
      const char* name;
      std::vector<const char*> courses;
      std::vector<const char*> hobbies;
    };
    const Student kStudents[] = {
        {"Jeff", {"DBTheory", "Datalog", "Compilers"},
         {"Baseball", "Fishing"}},
        {"Aiko", {"DBTheory", "DBSystems", "Datalog"}, {"Tennis"}},
        {"Maria", {"DBTheory", "DBSystems"}, {"Baseball", "Golf"}},
        {"Chen", {"Compilers", "Graphics"}, {"Fishing"}},
        {"Tom", {"DBSystems"}, {"Baseball", "Fishing", "Tennis"}},
    };
    for (const Student& s : kStudents) {
      ElementSet course_set, hobby_set;
      for (const char* c : s.courses) course_set.push_back(course_ids[c]);
      for (const char* h : s.hobbies) {
        hobby_set.push_back(hobby_dict.IdForString(h));
      }
      SIGSET_ASSIGN_OR_RETURN(Oid oid, db->Insert({course_set, hobby_set}));
      names[oid] = s.name;
    }
    return Status::OK();
  }

  void RunLine(const std::string& line) {
    if (line.empty()) return;
    std::printf("oql> %s\n", line.c_str());
    if (line.rfind("join", 0) == 0) {
      RunJoinLine(line);
      return;
    }
    auto result = ExecuteQueryText(line, db.get());
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("  %zu result(s) | driver: %s | %llu page accesses\n",
                result->oids.size(), result->driver.c_str(),
                static_cast<unsigned long long>(result->page_accesses));
    for (Oid oid : result->oids) {
      std::printf("    %s\n", names.count(oid) ? names[oid].c_str()
                                               : oid.ToString().c_str());
    }
  }

  void RunJoinLine(const std::string& line) {
    auto result = ExecuteJoinQueryText(line, db.get());
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("  %zu pair(s) | plan: %s | %llu page accesses\n",
                result->join.pairs.size(), result->plan.c_str(),
                static_cast<unsigned long long>(result->page_accesses));
    for (const JoinPair& pair : result->join.pairs) {
      std::printf("    %s.set \xE2\x8A\x86 %s.set\n",
                  names.count(pair.r) ? names[pair.r].c_str()
                                      : pair.r.ToString().c_str(),
                  names.count(pair.s) ? names[pair.s].c_str()
                                      : pair.s.ToString().c_str());
    }
  }
};

int Run(int argc, char** argv) {
  Shell shell;
  if (Status status = shell.Build(); !status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Students: Jeff, Aiko, Maria, Chen, Tom\n");
  std::printf("Courses (element ids): DBTheory=1000 DBSystems=1001 "
              "Datalog=1002 Compilers=1003 Graphics=1004\n\n");

  if (argc > 1 && std::strcmp(argv[1], "-") == 0) {
    std::string line;
    while (std::getline(std::cin, line)) shell.RunLine(line);
    return 0;
  }
  // Demo script: the paper's two sample queries and friends.
  const char* kScript[] = {
      // Q1 (paper §2): T ⊇ Q on a string set attribute.
      "select Student where hobbies has-subset (\"Baseball\", \"Fishing\")",
      // Q2 (paper §2): T ⊆ Q.
      "select Student where hobbies in-subset (\"Baseball\", \"Fishing\", "
      "\"Tennis\")",
      // §1's first query, with the category pre-resolved to an OID list:
      // students taking ALL DB-category lectures {DBTheory, DBSystems}.
      "select Student where courses has-subset (1000, 1001)",
      // §1's second query with the strict operator.
      "select Student where courses in-proper-subset (1000, 1001, 1002)",
      // A conjunction across both set attributes.
      "select Student where courses overlaps (1000) and hobbies has-subset "
      "(\"Baseball\")",
      // Exact-match and error handling.
      "select Student where hobbies equals (\"Tennis\")",
      "select Student where hobbies has-subset (\"Cricket\")",
      "select Student where gpa has-subset (1)",
      "select Student where hobbies resembles (\"Baseball\")",
      // Set-containment self-join (DESIGN.md §17): whose course set is
      // contained in whose?  (Maria ⊆ Aiko; every student ⊆ themselves.)
      "join Student on courses in-subset courses",
      "join Student on courses in-subset courses using sig-hash",
      "join Student on gpa in-subset courses",
  };
  for (const char* line : kScript) shell.RunLine(line);
  return 0;
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) { return sigsetdb::Run(argc, argv); }
