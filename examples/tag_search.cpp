// Tag search: the paper's `hobbies` scenario at realistic scale.
//
// 20,000 "profile" objects each carry a set of string tags drawn from a
// 2,000-tag vocabulary.  The example interns strings through the
// ElementDictionary, indexes the tag sets in all three facilities, and runs
// the paper's two query types plus the equality/overlap extensions —
// printing, for each facility, results and measured page accesses so the
// cost differences of the paper are visible on application-level data.

#include <cstdio>
#include <string>
#include <vector>

#include "nix/nested_index.h"
#include "obj/object_store.h"
#include "obj/schema.h"
#include "query/executor.h"
#include "sig/bssf.h"
#include "sig/ssf.h"
#include "storage/storage_manager.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace sigsetdb {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunExample() {
  constexpr int64_t kProfiles = 20000;
  constexpr int64_t kVocabulary = 2000;
  constexpr int64_t kTagsPerProfile = 8;

  // Intern a synthetic vocabulary ("tag0000".."tag1999"); a real system
  // would intern user-supplied strings the same way.
  ElementDictionary dict;
  for (int64_t i = 0; i < kVocabulary; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "tag%04lld", static_cast<long long>(i));
    dict.IdForString(buf);
  }

  StorageManager storage;
  ObjectStore profiles(storage.CreateOrOpen("profiles"));
  auto ssf = SequentialSignatureFile::Create(
      SignatureConfig{250, 2}, storage.CreateOrOpen("tags.ssf.sig"),
      storage.CreateOrOpen("tags.ssf.oid"));
  if (!ssf.ok()) return Fail(ssf.status());
  auto bssf = BitSlicedSignatureFile::Create(
      SignatureConfig{250, 2}, kProfiles, storage.CreateOrOpen("tags.slices"),
      storage.CreateOrOpen("tags.bssf.oid"), BssfInsertMode::kSparse);
  if (!bssf.ok()) return Fail(bssf.status());
  auto nix = NestedIndex::Create(storage.CreateOrOpen("tags.nix"));
  if (!nix.ok()) return Fail(nix.status());

  // Populate with uniformly random tag sets (the paper's workload).
  WorkloadConfig wconfig{kProfiles, kVocabulary,
                         CardinalitySpec::Fixed(kTagsPerProfile),
                         SkewKind::kUniform, 0.99, 2026};
  std::vector<ElementSet> sets = MakeDatabase(wconfig);
  std::vector<Oid> oids;
  for (const ElementSet& set : sets) {
    auto oid = profiles.Insert(set);
    if (!oid.ok()) return Fail(oid.status());
    oids.push_back(*oid);
    if (auto st = (*ssf)->Insert(*oid, set); !st.ok()) return Fail(st);
    if (auto st = (*nix)->Insert(*oid, set); !st.ok()) return Fail(st);
  }
  if (auto st = (*bssf)->BulkLoad(oids, sets); !st.ok()) return Fail(st);
  storage.ResetStats();

  // Helper: run one query on every facility and print the comparison.
  auto run = [&](QueryKind kind, const ElementSet& query,
                 const std::string& description) -> Status {
    std::printf("\n%s\n", description.c_str());
    for (SetAccessFacility* facility :
         {static_cast<SetAccessFacility*>(ssf->get()),
          static_cast<SetAccessFacility*>(bssf->get()),
          static_cast<SetAccessFacility*>(nix->get())}) {
      storage.ResetStats();
      SIGSET_ASSIGN_OR_RETURN(QueryResult result,
                              ExecuteSetQuery(facility, profiles, kind,
                                              query));
      std::printf("  %-4s  %5zu results  %6llu page accesses  %5llu false "
                  "drops\n",
                  facility->name().c_str(), result.oids.size(),
                  static_cast<unsigned long long>(
                      storage.TotalStats().total()),
                  static_cast<unsigned long long>(result.num_false_drops));
    }
    return Status::OK();
  };

  // T ⊇ Q: everyone tagged with both tag0001 and tag0002.
  ElementSet both = {dict.LookupString("tag0001").value(),
                     dict.LookupString("tag0002").value()};
  NormalizeSet(&both);
  if (auto st = run(QueryKind::kSuperset, both,
                    "profiles tagged with BOTH tag0001 and tag0002 (T ⊇ Q):");
      !st.ok()) {
    return Fail(st);
  }

  // T ⊆ Q: profiles whose tags all come from a 100-tag allowlist.
  Rng rng(7);
  ElementSet allowlist = rng.SampleWithoutReplacement(kVocabulary, 100);
  if (auto st =
          run(QueryKind::kSubset, allowlist,
              "profiles fully inside a 100-tag allowlist (T ⊆ Q):");
      !st.ok()) {
    return Fail(st);
  }

  // Equality: exact duplicate of profile 0's tag set.
  if (auto st = run(QueryKind::kEquals, sets[0],
                    "profiles with EXACTLY profile#0's tags (T = Q):");
      !st.ok()) {
    return Fail(st);
  }

  // Overlap: anyone sharing a tag with a 3-tag query.
  ElementSet any = rng.SampleWithoutReplacement(kVocabulary, 3);
  if (auto st = run(QueryKind::kOverlaps, any,
                    "profiles sharing ANY of 3 tags (T ∩ Q ≠ ∅):");
      !st.ok()) {
    return Fail(st);
  }

  std::printf(
      "\nStorage: SSF %llu pages, BSSF %llu pages, NIX %llu pages\n",
      static_cast<unsigned long long>((*ssf)->StoragePages()),
      static_cast<unsigned long long>((*bssf)->StoragePages()),
      static_cast<unsigned long long>((*nix)->StoragePages()));
  return 0;
}

}  // namespace
}  // namespace sigsetdb

int main() { return sigsetdb::RunExample(); }
