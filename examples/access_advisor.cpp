// Access-path advisor: the paper's conclusions as a planning tool.
//
// Given database statistics (N, V, Dt) and a signature budget, prints the
// modeled retrieval cost of every facility/strategy across query shapes,
// plus the storage and update summary — the table a DBA (or a query
// optimizer) would consult before creating a set access facility.
//
// Usage: access_advisor [N V Dt F m]   (defaults: the paper's parameters)

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "model/cost_bssf.h"
#include "model/cost_nix.h"
#include "model/cost_ssf.h"
#include "query/advisor.h"
#include "util/table_printer.h"

namespace sigsetdb {
namespace {

int Run(int argc, char** argv) {
  DatabaseParams db;
  NixParams nix;
  int64_t dt = 10;
  SignatureParams sig{250, 2};
  if (argc == 6) {
    db.n = std::atoll(argv[1]);
    db.v = std::atoll(argv[2]);
    dt = std::atoll(argv[3]);
    sig.f = std::atoll(argv[4]);
    sig.m = std::atoll(argv[5]);
  } else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [N V Dt F m]\n", argv[0]);
    return 2;
  }
  std::printf("database: N=%lld V=%lld Dt=%lld | signature: F=%lld m=%lld\n\n",
              static_cast<long long>(db.n), static_cast<long long>(db.v),
              static_cast<long long>(dt), static_cast<long long>(sig.f),
              static_cast<long long>(sig.m));

  for (QueryKind kind : {QueryKind::kSuperset, QueryKind::kSubset}) {
    std::printf("--- %s queries ---\n", QueryKindName(kind));
    TablePrinter table({"Dq", "best plan", "cost", "runner-up", "cost "});
    std::vector<int64_t> dqs =
        kind == QueryKind::kSuperset
            ? std::vector<int64_t>{1, 2, 3, 5, 10}
            : std::vector<int64_t>{dt, 2 * dt, 5 * dt, 20 * dt, 50 * dt};
    for (int64_t dq : dqs) {
      auto choices = AdviseAccessPaths(db, sig, nix, dt, dq, kind, true);
      if (!choices.ok()) {
        std::fprintf(stderr, "advisor: %s\n",
                     choices.status().ToString().c_str());
        return 1;
      }
      const AccessPathChoice& best = (*choices)[0];
      const AccessPathChoice& second = (*choices)[1];
      table.AddRow({TablePrinter::Int(dq),
                    best.facility + " " + best.strategy,
                    TablePrinter::Num(best.cost_pages),
                    second.facility + " " + second.strategy,
                    TablePrinter::Num(second.cost_pages)});
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  std::printf("--- storage (pages) ---\n");
  TablePrinter storage({"facility", "pages", "vs NIX"});
  int64_t nix_sc = NixStorageCost(db, nix, dt);
  storage.AddRow({"ssf", TablePrinter::Int(SsfStorageCost(db, sig)),
                  TablePrinter::Num(
                      static_cast<double>(SsfStorageCost(db, sig)) / nix_sc,
                      2)});
  storage.AddRow({"bssf", TablePrinter::Int(BssfStorageCost(db, sig)),
                  TablePrinter::Num(
                      static_cast<double>(BssfStorageCost(db, sig)) / nix_sc,
                      2)});
  storage.AddRow({"nix", TablePrinter::Int(nix_sc), "1.00"});
  storage.Print(std::cout);

  std::printf("\n--- updates (page accesses) ---\n");
  TablePrinter updates({"facility", "insert", "insert (sparse)", "delete"});
  updates.AddRow({"ssf", TablePrinter::Num(SsfInsertCost()), "-",
                  TablePrinter::Num(SsfDeleteCost(db))});
  updates.AddRow({"bssf", TablePrinter::Num(BssfInsertCost(sig)),
                  TablePrinter::Num(BssfInsertCostSparse(sig, dt)),
                  TablePrinter::Num(BssfDeleteCost(db))});
  updates.AddRow({"nix", TablePrinter::Num(NixInsertCost(db, nix, dt)), "-",
                  TablePrinter::Num(NixDeleteCost(db, nix, dt))});
  updates.Print(std::cout);

  std::printf(
      "\nPaper verdict (§6): BSSF with a small m is the facility of choice; "
      "NIX only wins single-element superset queries.\n");
  return 0;
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) { return sigsetdb::Run(argc, argv); }
