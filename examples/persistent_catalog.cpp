// Persistent catalog: the SetIndex facade end to end.
//
// A "package registry" stores, per package, the set of feature flags it
// was built with.  The index lives on disk, survives process restarts
// (checkpoint + reopen), and routes each query through the paper's cost
// model — printing which plan the advisor chose.
//
// Usage: persistent_catalog [directory]   (default: a fresh /tmp dir)

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "db/set_index.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace sigsetdb {
namespace {

constexpr int64_t kPackages = 10000;
constexpr int64_t kFlags = 800;  // feature-flag vocabulary

SetIndex::Options Options() {
  SetIndex::Options options;
  options.maintain_ssf = false;  // the paper's verdict: bssf + nix suffice
  options.maintain_bssf = true;
  options.maintain_nix = true;
  options.sig = {250, 2};
  options.capacity = 1 << 16;
  // domain_estimate stays 0: the advisor uses the live HyperLogLog sketch.
  return options;
}

void PrintQuery(const char* label, const StatusOr<SetIndexResult>& result) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("  %-42s %5zu results | plan: %-18s | %llu page accesses\n",
              label, result->result.oids.size(), result->plan.c_str(),
              static_cast<unsigned long long>(result->page_accesses));
}

int Run(int argc, char** argv) {
  std::string dir;
  if (argc > 1) {
    dir = argv[1];
  } else {
    dir = "/tmp/sigsetdb_catalog_" + std::to_string(::getpid());
    if (::mkdir(dir.c_str(), 0755) != 0) {
      std::perror("mkdir");
      return 1;
    }
  }
  std::printf("catalog directory: %s\n", dir.c_str());

  // --- phase 1: build, query, checkpoint ---
  {
    StorageManager storage(dir);
    auto index = SetIndex::Create(&storage, "flags", Options());
    if (!index.ok()) {
      std::fprintf(stderr, "create: %s\n", index.status().ToString().c_str());
      return 1;
    }
    WorkloadConfig wconfig{kPackages, kFlags, CardinalitySpec{3, 12},
                           SkewKind::kZipf, 0.8, 99};
    SetGenerator gen(wconfig);
    for (int64_t i = 0; i < kPackages; ++i) {
      if (!(*index)->Insert(gen.NextSet()).ok()) return 1;
    }
    std::printf("indexed %llu packages (mean %.1f flags each; sketched "
                "domain ~%lld of %lld real flags)\n",
                static_cast<unsigned long long>((*index)->num_objects()),
                (*index)->mean_cardinality(),
                static_cast<long long>((*index)->DomainEstimate()),
                static_cast<long long>(kFlags));

    std::printf("\nqueries before restart:\n");
    PrintQuery("built with flags {1,2} (superset)",
               (*index)->Query(QueryKind::kSuperset, {1, 2}));
    ElementSet approved;
    for (uint64_t f = 0; f < 60; ++f) approved.push_back(f);
    PrintQuery("only approved flags 0..59 (subset)",
               (*index)->Query(QueryKind::kSubset, approved));
    PrintQuery("any deprecated flag {700,701,702} (overlap)",
               (*index)->Query(QueryKind::kOverlaps, {700, 701, 702}));

    if (!(*index)->Checkpoint().ok()) return 1;
    std::printf("\ncheckpointed.\n");
  }

  // --- phase 2: reopen from disk and keep working ---
  {
    StorageManager storage(dir);
    auto index = SetIndex::Open(&storage, "flags", Options());
    if (!index.ok()) {
      std::fprintf(stderr, "open: %s\n", index.status().ToString().c_str());
      return 1;
    }
    std::printf("\nreopened: %llu packages recovered\n",
                static_cast<unsigned long long>((*index)->num_objects()));
    PrintQuery("built with flags {1,2} (after restart)",
               (*index)->Query(QueryKind::kSuperset, {1, 2}));
    // The recovered index accepts new data.
    if (!(*index)->Insert({1, 2, 777}).ok()) return 1;
    PrintQuery("built with flags {1,2} (+1 new package)",
               (*index)->Query(QueryKind::kSuperset, {1, 2}));
  }
  std::printf("\n(data remains in %s)\n", dir.c_str());
  return 0;
}

}  // namespace
}  // namespace sigsetdb

int main(int argc, char** argv) { return sigsetdb::Run(argc, argv); }
