// Quickstart: index set-valued attributes with a bit-sliced signature file
// and answer subset/superset queries.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "obj/object_store.h"
#include "query/executor.h"
#include "sig/bssf.h"
#include "storage/storage_manager.h"

using sigsetdb::BitSlicedSignatureFile;
using sigsetdb::BssfInsertMode;
using sigsetdb::ElementSet;
using sigsetdb::ObjectStore;
using sigsetdb::Oid;
using sigsetdb::QueryKind;
using sigsetdb::SignatureConfig;
using sigsetdb::StorageManager;

int main() {
  // 1. A storage manager owns the page files of one database.
  StorageManager storage;
  ObjectStore objects(storage.CreateOrOpen("objects"));

  // 2. Create the access facility: a bit-sliced signature file with
  //    F = 64 bits per signature and m = 2 bits per element.
  auto bssf = BitSlicedSignatureFile::Create(
      SignatureConfig{64, 2}, /*capacity=*/1024,
      storage.CreateOrOpen("bssf.slices"), storage.CreateOrOpen("bssf.oid"),
      BssfInsertMode::kSparse);
  if (!bssf.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 bssf.status().ToString().c_str());
    return 1;
  }

  // 3. Store objects with set attributes and index them.
  //    Elements are 64-bit ids; see examples/university.cpp for mapping
  //    strings and OIDs into this space.
  const ElementSet values[] = {
      {1, 2, 3},     // object 0
      {2, 3},        // object 1
      {1, 4, 5, 6},  // object 2
      {2, 3, 7},     // object 3
  };
  std::vector<Oid> oids;
  for (const ElementSet& set : values) {
    auto oid = objects.Insert(set);
    if (!oid.ok()) return 1;
    if (!(*bssf)->Insert(*oid, set).ok()) return 1;
    oids.push_back(*oid);
  }

  // 4. T ⊇ Q: which objects contain both 2 and 3?
  auto superset = sigsetdb::ExecuteSetQuery(bssf->get(), objects,
                                            QueryKind::kSuperset, {2, 3});
  if (!superset.ok()) return 1;
  std::printf("objects with {2,3} ⊆ set: %zu (expected 3)\n",
              superset->oids.size());

  // 5. T ⊆ Q: which objects fit entirely inside {1,2,3,7}?
  auto subset = sigsetdb::ExecuteSetQuery(bssf->get(), objects,
                                          QueryKind::kSubset, {1, 2, 3, 7});
  if (!subset.ok()) return 1;
  std::printf("objects with set ⊆ {1,2,3,7}: %zu (expected 3)\n",
              subset->oids.size());
  std::printf("candidates fetched: %llu, false drops resolved away: %llu\n",
              static_cast<unsigned long long>(subset->num_candidates),
              static_cast<unsigned long long>(subset->num_false_drops));

  // 6. Every page access was counted — the currency of the paper's
  //    cost model.
  std::printf("total page accesses so far: %llu\n",
              static_cast<unsigned long long>(storage.TotalStats().total()));
  return 0;
}
