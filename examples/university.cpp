// The paper's running example (§1): a university OODB.
//
//   Course  [name, category, teacher]
//   Student [name, courses: set<Course>, hobbies: set<string>]
//
// Reproduces both motivating queries:
//   Q-A  "find all students who take ALL of the lectures in the DB
//         category"            -> Student.courses ⊇ OID-list   (T ⊇ Q)
//   Q-B  "find all students who take ONLY lectures in the DB category"
//                               -> Student.courses ⊆ OID-list   (T ⊆ Q)
//
// The set elements here are Course OIDs: the access facility indexes the
// `courses` set attribute directly over OID values.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "nix/nested_index.h"
#include "obj/object_store.h"
#include "obj/schema.h"
#include "query/executor.h"
#include "sig/bssf.h"
#include "storage/storage_manager.h"
#include "util/rng.h"

namespace sigsetdb {
namespace {

struct Course {
  Oid oid;
  std::string name;
  std::string category;
};

struct Student {
  Oid oid;
  std::string name;
  ElementSet course_oids;  // set attribute, elements are Course OID values
};

int Fail(const Status& status);
void CheckOkOrDie(const Status& status);

int RunExample() {
  // --- schema (the paper's class definitions) ---
  Schema schema;
  CheckOkOrDie(schema.AddClass(
      ClassDef{"Course",
               {{"name", AttributeKind::kString, ""},
                {"category", AttributeKind::kString, ""},
                {"teacher", AttributeKind::kRef, "Teacher"}}}));
  CheckOkOrDie(schema.AddClass(
      ClassDef{"Student",
               {{"name", AttributeKind::kString, ""},
                {"courses", AttributeKind::kSetOfRef, "Course"},
                {"hobbies", AttributeKind::kSetOfString, ""}}}));

  StorageManager storage;
  ObjectStore course_store(storage.CreateOrOpen("courses"));
  ObjectStore student_store(storage.CreateOrOpen("students"));

  // --- populate Courses (8 of them, 3 in the DB category) ---
  const char* kCourseNames[] = {"DB Theory",  "DB Systems",  "Datalog",
                                "Compilers",  "Graphics",    "Networks",
                                "OS",         "AI"};
  const char* kCategories[] = {"DB", "DB", "DB", "PL", "Media",
                               "Sys", "Sys", "AI"};
  std::vector<Course> courses;
  for (int i = 0; i < 8; ++i) {
    Course c;
    c.name = kCourseNames[i];
    c.category = kCategories[i];
    // Course objects carry no set attribute; store an empty set.
    auto oid = course_store.Insert({});
    if (!oid.ok()) return Fail(oid.status());
    c.oid = *oid;
    courses.push_back(c);
  }

  // --- populate Students ---
  struct Enrolment {
    const char* name;
    std::vector<int> course_idx;
  };
  const Enrolment kStudents[] = {
      {"Jeff", {0, 1, 2}},        // all three DB courses, nothing else
      {"Aiko", {0, 1, 2, 3}},     // all DB courses + Compilers
      {"Maria", {0, 2}},          // only DB courses, but not all of them
      {"Chen", {3, 4}},           // no DB courses
      {"Tom", {1, 2}},            // only DB courses
      {"Rika", {0, 1, 2, 7}},     // all DB courses + AI
  };

  // Access facility on the path Student.courses: a BSSF with a small m,
  // the paper's recommended configuration.
  auto bssf = BitSlicedSignatureFile::Create(
      SignatureConfig{128, 2}, 1024, storage.CreateOrOpen("courses.slices"),
      storage.CreateOrOpen("courses.oid"), BssfInsertMode::kSparse);
  if (!bssf.ok()) return Fail(bssf.status());
  // The baseline facility, for comparison.
  auto nix = NestedIndex::Create(storage.CreateOrOpen("courses.nix"));
  if (!nix.ok()) return Fail(nix.status());

  std::vector<Student> students;
  for (const Enrolment& e : kStudents) {
    Student s;
    s.name = e.name;
    for (int idx : e.course_idx) {
      s.course_oids.push_back(
          ElementDictionary::IdForOid(courses[idx].oid));
    }
    NormalizeSet(&s.course_oids);
    auto oid = student_store.Insert(s.course_oids);
    if (!oid.ok()) return Fail(oid.status());
    s.oid = *oid;
    if (auto st = (*bssf)->Insert(s.oid, s.course_oids); !st.ok()) {
      return Fail(st);
    }
    if (auto st = (*nix)->Insert(s.oid, s.course_oids); !st.ok()) {
      return Fail(st);
    }
    students.push_back(s);
  }
  std::map<Oid, std::string> names;
  for (const Student& s : students) names[s.oid] = s.name;

  // --- step 1 of the paper's query plan: evaluate Course.category = "DB"
  //     into OID-list (a plain scan over the Course extent) ---
  ElementSet db_oid_list;
  for (const Course& c : courses) {
    if (c.category == "DB") {
      db_oid_list.push_back(ElementDictionary::IdForOid(c.oid));
    }
  }
  NormalizeSet(&db_oid_list);
  std::printf("OID-list for category \"DB\": %zu courses\n",
              db_oid_list.size());

  // --- Q-A: Student.courses ⊇ OID-list ---
  for (SetAccessFacility* facility :
       {static_cast<SetAccessFacility*>(bssf->get()),
        static_cast<SetAccessFacility*>(nix->get())}) {
    storage.ResetStats();
    auto result = ExecuteSetQuery(facility, student_store,
                                  QueryKind::kSuperset, db_oid_list);
    if (!result.ok()) return Fail(result.status());
    std::printf("\n[%s] students taking ALL DB lectures (expect Jeff, "
                "Aiko, Rika):\n",
                facility->name().c_str());
    for (Oid oid : result->oids) {
      std::printf("  %s\n", names[oid].c_str());
    }
    std::printf("  (%llu page accesses, %llu false drops)\n",
                static_cast<unsigned long long>(
                    storage.TotalStats().total()),
                static_cast<unsigned long long>(result->num_false_drops));
  }

  // --- Q-B: Student.courses ⊆ OID-list ---
  for (SetAccessFacility* facility :
       {static_cast<SetAccessFacility*>(bssf->get()),
        static_cast<SetAccessFacility*>(nix->get())}) {
    storage.ResetStats();
    auto result = ExecuteSetQuery(facility, student_store,
                                  QueryKind::kSubset, db_oid_list);
    if (!result.ok()) return Fail(result.status());
    std::printf("\n[%s] students taking ONLY DB lectures (expect Jeff, "
                "Maria, Tom):\n",
                facility->name().c_str());
    for (Oid oid : result->oids) {
      std::printf("  %s\n", names[oid].c_str());
    }
    std::printf("  (%llu page accesses, %llu false drops)\n",
                static_cast<unsigned long long>(
                    storage.TotalStats().total()),
                static_cast<unsigned long long>(result->num_false_drops));
  }
  return 0;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void CheckOkOrDie(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "fatal: %s\n", status.ToString().c_str());
    std::abort();
  }
}

}  // namespace
}  // namespace sigsetdb

int main() { return sigsetdb::RunExample(); }
