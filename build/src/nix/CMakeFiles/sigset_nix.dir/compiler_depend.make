# Empty compiler generated dependencies file for sigset_nix.
# This may be replaced when dependencies are built.
