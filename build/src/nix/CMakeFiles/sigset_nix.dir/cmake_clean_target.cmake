file(REMOVE_RECURSE
  "libsigset_nix.a"
)
