# Empty dependencies file for sigset_nix.
# This may be replaced when dependencies are built.
