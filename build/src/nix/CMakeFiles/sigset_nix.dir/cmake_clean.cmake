file(REMOVE_RECURSE
  "CMakeFiles/sigset_nix.dir/btree.cc.o"
  "CMakeFiles/sigset_nix.dir/btree.cc.o.d"
  "CMakeFiles/sigset_nix.dir/nested_index.cc.o"
  "CMakeFiles/sigset_nix.dir/nested_index.cc.o.d"
  "libsigset_nix.a"
  "libsigset_nix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigset_nix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
