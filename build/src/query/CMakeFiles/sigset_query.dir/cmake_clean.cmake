file(REMOVE_RECURSE
  "CMakeFiles/sigset_query.dir/advisor.cc.o"
  "CMakeFiles/sigset_query.dir/advisor.cc.o.d"
  "CMakeFiles/sigset_query.dir/executor.cc.o"
  "CMakeFiles/sigset_query.dir/executor.cc.o.d"
  "libsigset_query.a"
  "libsigset_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigset_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
