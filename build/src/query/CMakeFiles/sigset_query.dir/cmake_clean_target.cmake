file(REMOVE_RECURSE
  "libsigset_query.a"
)
