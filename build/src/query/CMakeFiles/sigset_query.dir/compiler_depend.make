# Empty compiler generated dependencies file for sigset_query.
# This may be replaced when dependencies are built.
