file(REMOVE_RECURSE
  "CMakeFiles/sigset_lang.dir/language.cc.o"
  "CMakeFiles/sigset_lang.dir/language.cc.o.d"
  "libsigset_lang.a"
  "libsigset_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigset_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
