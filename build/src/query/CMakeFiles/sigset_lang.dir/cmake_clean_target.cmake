file(REMOVE_RECURSE
  "libsigset_lang.a"
)
