# Empty dependencies file for sigset_lang.
# This may be replaced when dependencies are built.
