file(REMOVE_RECURSE
  "CMakeFiles/sigset_db.dir/database.cc.o"
  "CMakeFiles/sigset_db.dir/database.cc.o.d"
  "CMakeFiles/sigset_db.dir/manifest.cc.o"
  "CMakeFiles/sigset_db.dir/manifest.cc.o.d"
  "CMakeFiles/sigset_db.dir/set_index.cc.o"
  "CMakeFiles/sigset_db.dir/set_index.cc.o.d"
  "libsigset_db.a"
  "libsigset_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigset_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
