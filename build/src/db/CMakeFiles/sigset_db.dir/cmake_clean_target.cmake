file(REMOVE_RECURSE
  "libsigset_db.a"
)
