# Empty compiler generated dependencies file for sigset_db.
# This may be replaced when dependencies are built.
