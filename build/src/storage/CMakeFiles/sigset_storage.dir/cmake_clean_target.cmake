file(REMOVE_RECURSE
  "libsigset_storage.a"
)
