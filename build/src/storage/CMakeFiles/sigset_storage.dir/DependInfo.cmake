
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/sigset_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/sigset_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_page_file.cc" "src/storage/CMakeFiles/sigset_storage.dir/disk_page_file.cc.o" "gcc" "src/storage/CMakeFiles/sigset_storage.dir/disk_page_file.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/storage/CMakeFiles/sigset_storage.dir/page_file.cc.o" "gcc" "src/storage/CMakeFiles/sigset_storage.dir/page_file.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/storage/CMakeFiles/sigset_storage.dir/slotted_page.cc.o" "gcc" "src/storage/CMakeFiles/sigset_storage.dir/slotted_page.cc.o.d"
  "/root/repo/src/storage/storage_manager.cc" "src/storage/CMakeFiles/sigset_storage.dir/storage_manager.cc.o" "gcc" "src/storage/CMakeFiles/sigset_storage.dir/storage_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sigset_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
