# Empty dependencies file for sigset_storage.
# This may be replaced when dependencies are built.
