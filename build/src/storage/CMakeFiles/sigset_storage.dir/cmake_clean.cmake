file(REMOVE_RECURSE
  "CMakeFiles/sigset_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/sigset_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/sigset_storage.dir/disk_page_file.cc.o"
  "CMakeFiles/sigset_storage.dir/disk_page_file.cc.o.d"
  "CMakeFiles/sigset_storage.dir/page_file.cc.o"
  "CMakeFiles/sigset_storage.dir/page_file.cc.o.d"
  "CMakeFiles/sigset_storage.dir/slotted_page.cc.o"
  "CMakeFiles/sigset_storage.dir/slotted_page.cc.o.d"
  "CMakeFiles/sigset_storage.dir/storage_manager.cc.o"
  "CMakeFiles/sigset_storage.dir/storage_manager.cc.o.d"
  "libsigset_storage.a"
  "libsigset_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigset_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
