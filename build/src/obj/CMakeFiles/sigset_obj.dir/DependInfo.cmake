
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obj/multi_object_store.cc" "src/obj/CMakeFiles/sigset_obj.dir/multi_object_store.cc.o" "gcc" "src/obj/CMakeFiles/sigset_obj.dir/multi_object_store.cc.o.d"
  "/root/repo/src/obj/object.cc" "src/obj/CMakeFiles/sigset_obj.dir/object.cc.o" "gcc" "src/obj/CMakeFiles/sigset_obj.dir/object.cc.o.d"
  "/root/repo/src/obj/object_store.cc" "src/obj/CMakeFiles/sigset_obj.dir/object_store.cc.o" "gcc" "src/obj/CMakeFiles/sigset_obj.dir/object_store.cc.o.d"
  "/root/repo/src/obj/oid_file.cc" "src/obj/CMakeFiles/sigset_obj.dir/oid_file.cc.o" "gcc" "src/obj/CMakeFiles/sigset_obj.dir/oid_file.cc.o.d"
  "/root/repo/src/obj/schema.cc" "src/obj/CMakeFiles/sigset_obj.dir/schema.cc.o" "gcc" "src/obj/CMakeFiles/sigset_obj.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/sigset_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sigset_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
