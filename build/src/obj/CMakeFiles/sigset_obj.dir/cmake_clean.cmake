file(REMOVE_RECURSE
  "CMakeFiles/sigset_obj.dir/multi_object_store.cc.o"
  "CMakeFiles/sigset_obj.dir/multi_object_store.cc.o.d"
  "CMakeFiles/sigset_obj.dir/object.cc.o"
  "CMakeFiles/sigset_obj.dir/object.cc.o.d"
  "CMakeFiles/sigset_obj.dir/object_store.cc.o"
  "CMakeFiles/sigset_obj.dir/object_store.cc.o.d"
  "CMakeFiles/sigset_obj.dir/oid_file.cc.o"
  "CMakeFiles/sigset_obj.dir/oid_file.cc.o.d"
  "CMakeFiles/sigset_obj.dir/schema.cc.o"
  "CMakeFiles/sigset_obj.dir/schema.cc.o.d"
  "libsigset_obj.a"
  "libsigset_obj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigset_obj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
