# Empty dependencies file for sigset_obj.
# This may be replaced when dependencies are built.
