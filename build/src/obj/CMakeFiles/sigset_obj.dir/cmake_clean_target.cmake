file(REMOVE_RECURSE
  "libsigset_obj.a"
)
