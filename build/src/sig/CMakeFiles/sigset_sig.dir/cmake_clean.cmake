file(REMOVE_RECURSE
  "CMakeFiles/sigset_sig.dir/bitpack.cc.o"
  "CMakeFiles/sigset_sig.dir/bitpack.cc.o.d"
  "CMakeFiles/sigset_sig.dir/bssf.cc.o"
  "CMakeFiles/sigset_sig.dir/bssf.cc.o.d"
  "CMakeFiles/sigset_sig.dir/compressed_bssf.cc.o"
  "CMakeFiles/sigset_sig.dir/compressed_bssf.cc.o.d"
  "CMakeFiles/sigset_sig.dir/facility.cc.o"
  "CMakeFiles/sigset_sig.dir/facility.cc.o.d"
  "CMakeFiles/sigset_sig.dir/signature.cc.o"
  "CMakeFiles/sigset_sig.dir/signature.cc.o.d"
  "CMakeFiles/sigset_sig.dir/ssf.cc.o"
  "CMakeFiles/sigset_sig.dir/ssf.cc.o.d"
  "CMakeFiles/sigset_sig.dir/wah.cc.o"
  "CMakeFiles/sigset_sig.dir/wah.cc.o.d"
  "libsigset_sig.a"
  "libsigset_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigset_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
