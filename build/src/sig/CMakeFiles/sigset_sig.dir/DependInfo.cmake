
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sig/bitpack.cc" "src/sig/CMakeFiles/sigset_sig.dir/bitpack.cc.o" "gcc" "src/sig/CMakeFiles/sigset_sig.dir/bitpack.cc.o.d"
  "/root/repo/src/sig/bssf.cc" "src/sig/CMakeFiles/sigset_sig.dir/bssf.cc.o" "gcc" "src/sig/CMakeFiles/sigset_sig.dir/bssf.cc.o.d"
  "/root/repo/src/sig/compressed_bssf.cc" "src/sig/CMakeFiles/sigset_sig.dir/compressed_bssf.cc.o" "gcc" "src/sig/CMakeFiles/sigset_sig.dir/compressed_bssf.cc.o.d"
  "/root/repo/src/sig/facility.cc" "src/sig/CMakeFiles/sigset_sig.dir/facility.cc.o" "gcc" "src/sig/CMakeFiles/sigset_sig.dir/facility.cc.o.d"
  "/root/repo/src/sig/signature.cc" "src/sig/CMakeFiles/sigset_sig.dir/signature.cc.o" "gcc" "src/sig/CMakeFiles/sigset_sig.dir/signature.cc.o.d"
  "/root/repo/src/sig/ssf.cc" "src/sig/CMakeFiles/sigset_sig.dir/ssf.cc.o" "gcc" "src/sig/CMakeFiles/sigset_sig.dir/ssf.cc.o.d"
  "/root/repo/src/sig/wah.cc" "src/sig/CMakeFiles/sigset_sig.dir/wah.cc.o" "gcc" "src/sig/CMakeFiles/sigset_sig.dir/wah.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/obj/CMakeFiles/sigset_obj.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sigset_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sigset_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
