# Empty dependencies file for sigset_sig.
# This may be replaced when dependencies are built.
