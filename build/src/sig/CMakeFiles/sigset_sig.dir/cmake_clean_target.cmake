file(REMOVE_RECURSE
  "libsigset_sig.a"
)
