file(REMOVE_RECURSE
  "libsigset_model.a"
)
