file(REMOVE_RECURSE
  "CMakeFiles/sigset_model.dir/actual_drops.cc.o"
  "CMakeFiles/sigset_model.dir/actual_drops.cc.o.d"
  "CMakeFiles/sigset_model.dir/cost_bssf.cc.o"
  "CMakeFiles/sigset_model.dir/cost_bssf.cc.o.d"
  "CMakeFiles/sigset_model.dir/cost_ext.cc.o"
  "CMakeFiles/sigset_model.dir/cost_ext.cc.o.d"
  "CMakeFiles/sigset_model.dir/cost_nix.cc.o"
  "CMakeFiles/sigset_model.dir/cost_nix.cc.o.d"
  "CMakeFiles/sigset_model.dir/cost_ssf.cc.o"
  "CMakeFiles/sigset_model.dir/cost_ssf.cc.o.d"
  "CMakeFiles/sigset_model.dir/false_drop.cc.o"
  "CMakeFiles/sigset_model.dir/false_drop.cc.o.d"
  "libsigset_model.a"
  "libsigset_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigset_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
