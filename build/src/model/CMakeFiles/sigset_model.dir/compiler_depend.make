# Empty compiler generated dependencies file for sigset_model.
# This may be replaced when dependencies are built.
