
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/actual_drops.cc" "src/model/CMakeFiles/sigset_model.dir/actual_drops.cc.o" "gcc" "src/model/CMakeFiles/sigset_model.dir/actual_drops.cc.o.d"
  "/root/repo/src/model/cost_bssf.cc" "src/model/CMakeFiles/sigset_model.dir/cost_bssf.cc.o" "gcc" "src/model/CMakeFiles/sigset_model.dir/cost_bssf.cc.o.d"
  "/root/repo/src/model/cost_ext.cc" "src/model/CMakeFiles/sigset_model.dir/cost_ext.cc.o" "gcc" "src/model/CMakeFiles/sigset_model.dir/cost_ext.cc.o.d"
  "/root/repo/src/model/cost_nix.cc" "src/model/CMakeFiles/sigset_model.dir/cost_nix.cc.o" "gcc" "src/model/CMakeFiles/sigset_model.dir/cost_nix.cc.o.d"
  "/root/repo/src/model/cost_ssf.cc" "src/model/CMakeFiles/sigset_model.dir/cost_ssf.cc.o" "gcc" "src/model/CMakeFiles/sigset_model.dir/cost_ssf.cc.o.d"
  "/root/repo/src/model/false_drop.cc" "src/model/CMakeFiles/sigset_model.dir/false_drop.cc.o" "gcc" "src/model/CMakeFiles/sigset_model.dir/false_drop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sig/CMakeFiles/sigset_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sigset_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obj/CMakeFiles/sigset_obj.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sigset_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
