# Empty dependencies file for sigset_model.
# This may be replaced when dependencies are built.
