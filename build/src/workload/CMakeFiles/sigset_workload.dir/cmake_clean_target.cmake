file(REMOVE_RECURSE
  "libsigset_workload.a"
)
