file(REMOVE_RECURSE
  "CMakeFiles/sigset_workload.dir/generator.cc.o"
  "CMakeFiles/sigset_workload.dir/generator.cc.o.d"
  "libsigset_workload.a"
  "libsigset_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigset_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
