# Empty compiler generated dependencies file for sigset_workload.
# This may be replaced when dependencies are built.
