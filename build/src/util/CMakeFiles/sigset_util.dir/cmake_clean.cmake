file(REMOVE_RECURSE
  "CMakeFiles/sigset_util.dir/hyperloglog.cc.o"
  "CMakeFiles/sigset_util.dir/hyperloglog.cc.o.d"
  "CMakeFiles/sigset_util.dir/math.cc.o"
  "CMakeFiles/sigset_util.dir/math.cc.o.d"
  "CMakeFiles/sigset_util.dir/rng.cc.o"
  "CMakeFiles/sigset_util.dir/rng.cc.o.d"
  "CMakeFiles/sigset_util.dir/status.cc.o"
  "CMakeFiles/sigset_util.dir/status.cc.o.d"
  "CMakeFiles/sigset_util.dir/table_printer.cc.o"
  "CMakeFiles/sigset_util.dir/table_printer.cc.o.d"
  "libsigset_util.a"
  "libsigset_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigset_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
