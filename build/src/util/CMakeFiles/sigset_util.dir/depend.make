# Empty dependencies file for sigset_util.
# This may be replaced when dependencies are built.
