file(REMOVE_RECURSE
  "libsigset_util.a"
)
