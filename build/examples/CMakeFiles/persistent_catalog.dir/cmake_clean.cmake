file(REMOVE_RECURSE
  "CMakeFiles/persistent_catalog.dir/persistent_catalog.cpp.o"
  "CMakeFiles/persistent_catalog.dir/persistent_catalog.cpp.o.d"
  "persistent_catalog"
  "persistent_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
