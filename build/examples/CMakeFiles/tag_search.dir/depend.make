# Empty dependencies file for tag_search.
# This may be replaced when dependencies are built.
