file(REMOVE_RECURSE
  "CMakeFiles/tag_search.dir/tag_search.cpp.o"
  "CMakeFiles/tag_search.dir/tag_search.cpp.o.d"
  "tag_search"
  "tag_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
