# Empty dependencies file for access_advisor.
# This may be replaced when dependencies are built.
