file(REMOVE_RECURSE
  "CMakeFiles/access_advisor.dir/access_advisor.cpp.o"
  "CMakeFiles/access_advisor.dir/access_advisor.cpp.o.d"
  "access_advisor"
  "access_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
