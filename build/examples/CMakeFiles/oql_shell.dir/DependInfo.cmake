
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/oql_shell.cpp" "examples/CMakeFiles/oql_shell.dir/oql_shell.cpp.o" "gcc" "examples/CMakeFiles/oql_shell.dir/oql_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/sigset_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/sigset_db.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/sigset_query.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sigset_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sigset_model.dir/DependInfo.cmake"
  "/root/repo/build/src/nix/CMakeFiles/sigset_nix.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/sigset_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/obj/CMakeFiles/sigset_obj.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sigset_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sigset_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
