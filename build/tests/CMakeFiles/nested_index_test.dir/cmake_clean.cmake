file(REMOVE_RECURSE
  "CMakeFiles/nested_index_test.dir/nested_index_test.cc.o"
  "CMakeFiles/nested_index_test.dir/nested_index_test.cc.o.d"
  "nested_index_test"
  "nested_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
