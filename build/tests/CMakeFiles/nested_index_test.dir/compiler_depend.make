# Empty compiler generated dependencies file for nested_index_test.
# This may be replaced when dependencies are built.
