# Empty dependencies file for language_fuzz_test.
# This may be replaced when dependencies are built.
