file(REMOVE_RECURSE
  "CMakeFiles/language_fuzz_test.dir/language_fuzz_test.cc.o"
  "CMakeFiles/language_fuzz_test.dir/language_fuzz_test.cc.o.d"
  "language_fuzz_test"
  "language_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/language_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
