file(REMOVE_RECURSE
  "CMakeFiles/disk_page_file_test.dir/disk_page_file_test.cc.o"
  "CMakeFiles/disk_page_file_test.dir/disk_page_file_test.cc.o.d"
  "disk_page_file_test"
  "disk_page_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_page_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
