# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for disk_page_file_test.
