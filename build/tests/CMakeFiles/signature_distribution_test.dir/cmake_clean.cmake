file(REMOVE_RECURSE
  "CMakeFiles/signature_distribution_test.dir/signature_distribution_test.cc.o"
  "CMakeFiles/signature_distribution_test.dir/signature_distribution_test.cc.o.d"
  "signature_distribution_test"
  "signature_distribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signature_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
