# Empty compiler generated dependencies file for signature_distribution_test.
# This may be replaced when dependencies are built.
