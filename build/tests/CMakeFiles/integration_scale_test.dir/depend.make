# Empty dependencies file for integration_scale_test.
# This may be replaced when dependencies are built.
