# Empty compiler generated dependencies file for false_drop_test.
# This may be replaced when dependencies are built.
