file(REMOVE_RECURSE
  "CMakeFiles/false_drop_test.dir/false_drop_test.cc.o"
  "CMakeFiles/false_drop_test.dir/false_drop_test.cc.o.d"
  "false_drop_test"
  "false_drop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/false_drop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
