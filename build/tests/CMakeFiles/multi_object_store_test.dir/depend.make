# Empty dependencies file for multi_object_store_test.
# This may be replaced when dependencies are built.
