file(REMOVE_RECURSE
  "CMakeFiles/multi_object_store_test.dir/multi_object_store_test.cc.o"
  "CMakeFiles/multi_object_store_test.dir/multi_object_store_test.cc.o.d"
  "multi_object_store_test"
  "multi_object_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_object_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
