file(REMOVE_RECURSE
  "CMakeFiles/cost_ext_test.dir/cost_ext_test.cc.o"
  "CMakeFiles/cost_ext_test.dir/cost_ext_test.cc.o.d"
  "cost_ext_test"
  "cost_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
