# Empty compiler generated dependencies file for actual_drops_test.
# This may be replaced when dependencies are built.
