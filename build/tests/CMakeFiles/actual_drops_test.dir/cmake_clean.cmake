file(REMOVE_RECURSE
  "CMakeFiles/actual_drops_test.dir/actual_drops_test.cc.o"
  "CMakeFiles/actual_drops_test.dir/actual_drops_test.cc.o.d"
  "actual_drops_test"
  "actual_drops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actual_drops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
