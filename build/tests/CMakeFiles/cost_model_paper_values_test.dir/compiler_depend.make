# Empty compiler generated dependencies file for cost_model_paper_values_test.
# This may be replaced when dependencies are built.
