file(REMOVE_RECURSE
  "CMakeFiles/cost_model_paper_values_test.dir/cost_model_paper_values_test.cc.o"
  "CMakeFiles/cost_model_paper_values_test.dir/cost_model_paper_values_test.cc.o.d"
  "cost_model_paper_values_test"
  "cost_model_paper_values_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_model_paper_values_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
