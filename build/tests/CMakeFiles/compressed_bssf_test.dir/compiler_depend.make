# Empty compiler generated dependencies file for compressed_bssf_test.
# This may be replaced when dependencies are built.
