file(REMOVE_RECURSE
  "CMakeFiles/compressed_bssf_test.dir/compressed_bssf_test.cc.o"
  "CMakeFiles/compressed_bssf_test.dir/compressed_bssf_test.cc.o.d"
  "compressed_bssf_test"
  "compressed_bssf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_bssf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
