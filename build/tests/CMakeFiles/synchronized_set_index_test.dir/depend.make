# Empty dependencies file for synchronized_set_index_test.
# This may be replaced when dependencies are built.
