file(REMOVE_RECURSE
  "CMakeFiles/synchronized_set_index_test.dir/synchronized_set_index_test.cc.o"
  "CMakeFiles/synchronized_set_index_test.dir/synchronized_set_index_test.cc.o.d"
  "synchronized_set_index_test"
  "synchronized_set_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchronized_set_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
