file(REMOVE_RECURSE
  "CMakeFiles/facility_recovery_test.dir/facility_recovery_test.cc.o"
  "CMakeFiles/facility_recovery_test.dir/facility_recovery_test.cc.o.d"
  "facility_recovery_test"
  "facility_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
