# Empty dependencies file for facility_recovery_test.
# This may be replaced when dependencies are built.
