file(REMOVE_RECURSE
  "CMakeFiles/hyperloglog_test.dir/hyperloglog_test.cc.o"
  "CMakeFiles/hyperloglog_test.dir/hyperloglog_test.cc.o.d"
  "hyperloglog_test"
  "hyperloglog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperloglog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
