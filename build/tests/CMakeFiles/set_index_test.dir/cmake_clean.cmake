file(REMOVE_RECURSE
  "CMakeFiles/set_index_test.dir/set_index_test.cc.o"
  "CMakeFiles/set_index_test.dir/set_index_test.cc.o.d"
  "set_index_test"
  "set_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
