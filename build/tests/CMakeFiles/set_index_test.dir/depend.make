# Empty dependencies file for set_index_test.
# This may be replaced when dependencies are built.
