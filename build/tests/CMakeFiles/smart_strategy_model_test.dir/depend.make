# Empty dependencies file for smart_strategy_model_test.
# This may be replaced when dependencies are built.
