file(REMOVE_RECURSE
  "CMakeFiles/smart_strategy_model_test.dir/smart_strategy_model_test.cc.o"
  "CMakeFiles/smart_strategy_model_test.dir/smart_strategy_model_test.cc.o.d"
  "smart_strategy_model_test"
  "smart_strategy_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_strategy_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
