file(REMOVE_RECURSE
  "CMakeFiles/facility_equivalence_test.dir/facility_equivalence_test.cc.o"
  "CMakeFiles/facility_equivalence_test.dir/facility_equivalence_test.cc.o.d"
  "facility_equivalence_test"
  "facility_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
