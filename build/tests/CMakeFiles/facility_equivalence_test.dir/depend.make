# Empty dependencies file for facility_equivalence_test.
# This may be replaced when dependencies are built.
