file(REMOVE_RECURSE
  "CMakeFiles/wah_test.dir/wah_test.cc.o"
  "CMakeFiles/wah_test.dir/wah_test.cc.o.d"
  "wah_test"
  "wah_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wah_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
