file(REMOVE_RECURSE
  "CMakeFiles/bssf_test.dir/bssf_test.cc.o"
  "CMakeFiles/bssf_test.dir/bssf_test.cc.o.d"
  "bssf_test"
  "bssf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bssf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
