# Empty dependencies file for bssf_test.
# This may be replaced when dependencies are built.
