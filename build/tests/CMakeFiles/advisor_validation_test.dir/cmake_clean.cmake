file(REMOVE_RECURSE
  "CMakeFiles/advisor_validation_test.dir/advisor_validation_test.cc.o"
  "CMakeFiles/advisor_validation_test.dir/advisor_validation_test.cc.o.d"
  "advisor_validation_test"
  "advisor_validation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
