# Empty compiler generated dependencies file for advisor_validation_test.
# This may be replaced when dependencies are built.
