file(REMOVE_RECURSE
  "CMakeFiles/btree_fuzz_test.dir/btree_fuzz_test.cc.o"
  "CMakeFiles/btree_fuzz_test.dir/btree_fuzz_test.cc.o.d"
  "btree_fuzz_test"
  "btree_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
