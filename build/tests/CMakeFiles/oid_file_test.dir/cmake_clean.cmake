file(REMOVE_RECURSE
  "CMakeFiles/oid_file_test.dir/oid_file_test.cc.o"
  "CMakeFiles/oid_file_test.dir/oid_file_test.cc.o.d"
  "oid_file_test"
  "oid_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oid_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
