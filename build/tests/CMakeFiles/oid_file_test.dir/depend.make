# Empty dependencies file for oid_file_test.
# This may be replaced when dependencies are built.
