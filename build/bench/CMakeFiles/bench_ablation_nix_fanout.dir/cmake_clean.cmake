file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nix_fanout.dir/bench_ablation_nix_fanout.cc.o"
  "CMakeFiles/bench_ablation_nix_fanout.dir/bench_ablation_nix_fanout.cc.o.d"
  "bench_ablation_nix_fanout"
  "bench_ablation_nix_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nix_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
