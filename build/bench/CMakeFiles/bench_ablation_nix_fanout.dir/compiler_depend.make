# Empty compiler generated dependencies file for bench_ablation_nix_fanout.
# This may be replaced when dependencies are built.
