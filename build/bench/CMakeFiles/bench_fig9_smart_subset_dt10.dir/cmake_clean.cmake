file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_smart_subset_dt10.dir/bench_fig9_smart_subset_dt10.cc.o"
  "CMakeFiles/bench_fig9_smart_subset_dt10.dir/bench_fig9_smart_subset_dt10.cc.o.d"
  "bench_fig9_smart_subset_dt10"
  "bench_fig9_smart_subset_dt10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_smart_subset_dt10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
