# Empty compiler generated dependencies file for bench_fig9_smart_subset_dt10.
# This may be replaced when dependencies are built.
