# Empty compiler generated dependencies file for bench_fig10_smart_subset_dt100.
# This may be replaced when dependencies are built.
