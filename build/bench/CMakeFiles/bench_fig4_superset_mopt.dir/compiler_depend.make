# Empty compiler generated dependencies file for bench_fig4_superset_mopt.
# This may be replaced when dependencies are built.
