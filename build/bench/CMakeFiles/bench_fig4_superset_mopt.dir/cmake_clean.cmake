file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_superset_mopt.dir/bench_fig4_superset_mopt.cc.o"
  "CMakeFiles/bench_fig4_superset_mopt.dir/bench_fig4_superset_mopt.cc.o.d"
  "bench_fig4_superset_mopt"
  "bench_fig4_superset_mopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_superset_mopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
