# Empty compiler generated dependencies file for bench_ablation_slice_count.
# This may be replaced when dependencies are built.
