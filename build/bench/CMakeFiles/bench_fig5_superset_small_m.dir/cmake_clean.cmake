file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_superset_small_m.dir/bench_fig5_superset_small_m.cc.o"
  "CMakeFiles/bench_fig5_superset_small_m.dir/bench_fig5_superset_small_m.cc.o.d"
  "bench_fig5_superset_small_m"
  "bench_fig5_superset_small_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_superset_small_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
