# Empty compiler generated dependencies file for bench_fig5_superset_small_m.
# This may be replaced when dependencies are built.
