file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_subset_trend.dir/bench_fig8_subset_trend.cc.o"
  "CMakeFiles/bench_fig8_subset_trend.dir/bench_fig8_subset_trend.cc.o.d"
  "bench_fig8_subset_trend"
  "bench_fig8_subset_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_subset_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
