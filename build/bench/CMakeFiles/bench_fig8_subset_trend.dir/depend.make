# Empty dependencies file for bench_fig8_subset_trend.
# This may be replaced when dependencies are built.
