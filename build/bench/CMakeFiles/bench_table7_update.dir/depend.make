# Empty dependencies file for bench_table7_update.
# This may be replaced when dependencies are built.
