# Empty dependencies file for bench_fig6_smart_superset_dt10.
# This may be replaced when dependencies are built.
