# Empty compiler generated dependencies file for bench_fig7_smart_superset_dt100.
# This may be replaced when dependencies are built.
