file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_smart_superset_dt100.dir/bench_fig7_smart_superset_dt100.cc.o"
  "CMakeFiles/bench_fig7_smart_superset_dt100.dir/bench_fig7_smart_superset_dt100.cc.o.d"
  "bench_fig7_smart_superset_dt100"
  "bench_fig7_smart_superset_dt100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_smart_superset_dt100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
