file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_variable_cardinality.dir/bench_ext_variable_cardinality.cc.o"
  "CMakeFiles/bench_ext_variable_cardinality.dir/bench_ext_variable_cardinality.cc.o.d"
  "bench_ext_variable_cardinality"
  "bench_ext_variable_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_variable_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
