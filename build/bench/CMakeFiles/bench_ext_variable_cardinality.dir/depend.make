# Empty dependencies file for bench_ext_variable_cardinality.
# This may be replaced when dependencies are built.
