# Empty compiler generated dependencies file for bench_ablation_bssf_insert.
# This may be replaced when dependencies are built.
