file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bssf_insert.dir/bench_ablation_bssf_insert.cc.o"
  "CMakeFiles/bench_ablation_bssf_insert.dir/bench_ablation_bssf_insert.cc.o.d"
  "bench_ablation_bssf_insert"
  "bench_ablation_bssf_insert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bssf_insert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
