# Empty dependencies file for bench_ablation_m_sweep.
# This may be replaced when dependencies are built.
