file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_fig2_drops.dir/bench_fig1_fig2_drops.cc.o"
  "CMakeFiles/bench_fig1_fig2_drops.dir/bench_fig1_fig2_drops.cc.o.d"
  "bench_fig1_fig2_drops"
  "bench_fig1_fig2_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fig2_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
