file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_other_operators.dir/bench_ext_other_operators.cc.o"
  "CMakeFiles/bench_ext_other_operators.dir/bench_ext_other_operators.cc.o.d"
  "bench_ext_other_operators"
  "bench_ext_other_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_other_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
