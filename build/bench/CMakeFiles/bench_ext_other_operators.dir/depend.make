# Empty dependencies file for bench_ext_other_operators.
# This may be replaced when dependencies are built.
