# Empty dependencies file for bench_table5_nix_storage.
# This may be replaced when dependencies are built.
