# Empty compiler generated dependencies file for bench_ext_compressed_slices.
# This may be replaced when dependencies are built.
