file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_compressed_slices.dir/bench_ext_compressed_slices.cc.o"
  "CMakeFiles/bench_ext_compressed_slices.dir/bench_ext_compressed_slices.cc.o.d"
  "bench_ext_compressed_slices"
  "bench_ext_compressed_slices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_compressed_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
