file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_storage.dir/bench_table6_storage.cc.o"
  "CMakeFiles/bench_table6_storage.dir/bench_table6_storage.cc.o.d"
  "bench_table6_storage"
  "bench_table6_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
