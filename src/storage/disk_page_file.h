// OnDiskPageFile: a PageFile backed by a real file via POSIX pread/pwrite.
//
// The experiments default to InMemoryPageFile (the metrics are access
// counts, not wall-clock), but the library is also usable as a persistent
// store: a StorageManager constructed with a directory creates these, and
// reopening the directory recovers every page written before.  Access
// counting is identical to the in-memory variant.

#ifndef SIGSET_STORAGE_DISK_PAGE_FILE_H_
#define SIGSET_STORAGE_DISK_PAGE_FILE_H_

#include <memory>
#include <string>

#include "storage/page_file.h"

namespace sigsetdb {

// A page file stored at a filesystem path.
class OnDiskPageFile : public PageFile {
 public:
  // Opens (or creates) the file at `path`.  An existing file must be a
  // whole number of pages.
  static StatusOr<std::unique_ptr<OnDiskPageFile>> Open(
      const std::string& name, const std::string& path);

  ~OnDiskPageFile() override;
  OnDiskPageFile(const OnDiskPageFile&) = delete;
  OnDiskPageFile& operator=(const OnDiskPageFile&) = delete;

  using PageFile::Read;
  using PageFile::Write;

  const std::string& name() const override { return name_; }
  PageId num_pages() const override { return num_pages_; }

  StatusOr<PageId> Allocate() override;
  Status Read(PageId id, Page* out, IoStats* io) override;
  Status Write(PageId id, const Page& page, IoStats* io) override;

  IoStats& stats() override { return stats_; }
  const IoStats& stats() const override { return stats_; }

  // Flushes OS buffers to stable storage.
  Status Sync() override;

 private:
  OnDiskPageFile(std::string name, int fd, PageId num_pages)
      : name_(std::move(name)), fd_(fd), num_pages_(num_pages) {}

  std::string name_;
  int fd_;
  PageId num_pages_;
  IoStats stats_;
};

}  // namespace sigsetdb

#endif  // SIGSET_STORAGE_DISK_PAGE_FILE_H_
