#include "storage/storage_manager.h"

#include <cstdio>
#include <cstdlib>

#include "storage/disk_page_file.h"
#include "util/failpoint.h"

namespace sigsetdb {

StatusOr<std::unique_ptr<PageFile>> StorageManager::MakeFile(
    const std::string& name) const {
  SIGSET_FAILPOINT("storage.make_file");
  std::unique_ptr<PageFile> file;
  if (directory_.empty()) {
    file = std::make_unique<InMemoryPageFile>(name);
  } else {
    SIGSET_ASSIGN_OR_RETURN(
        std::unique_ptr<OnDiskPageFile> disk,
        OnDiskPageFile::Open(name, directory_ + "/" + name + ".pages"));
    file = std::move(disk);
  }
  if (interceptor_) file = interceptor_(std::move(file));
  return file;
}

StatusOr<PageFile*> StorageManager::Create(const std::string& name) {
  if (files_.count(name) != 0) {
    return Status::AlreadyExists("file exists: " + name);
  }
  SIGSET_ASSIGN_OR_RETURN(std::unique_ptr<PageFile> file, MakeFile(name));
  PageFile* raw = file.get();
  files_.emplace(name, std::move(file));
  return raw;
}

StatusOr<PageFile*> StorageManager::Open(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  return it->second.get();
}

PageFile* StorageManager::CreateOrOpen(const std::string& name) {
  auto it = files_.find(name);
  if (it != files_.end()) return it->second.get();
  StatusOr<std::unique_ptr<PageFile>> file = MakeFile(name);
  if (!file.ok()) {
    std::fprintf(stderr, "StorageManager::CreateOrOpen(%s): %s\n",
                 name.c_str(), file.status().ToString().c_str());
    std::abort();
  }
  PageFile* raw = file->get();
  files_.emplace(name, std::move(*file));
  return raw;
}

StatusOr<PageFile*> StorageManager::OpenOrCreate(const std::string& name) {
  auto it = files_.find(name);
  if (it != files_.end()) return it->second.get();
  SIGSET_ASSIGN_OR_RETURN(std::unique_ptr<PageFile> file, MakeFile(name));
  PageFile* raw = file.get();
  files_.emplace(name, std::move(file));
  return raw;
}

IoStats StorageManager::TotalStats() const {
  IoStats total;
  for (const auto& [name, file] : files_) total += file->stats();
  return total;
}

void StorageManager::ForEachFile(
    const std::function<void(const PageFile&)>& fn) const {
  for (const auto& [name, file] : files_) fn(*file);
}

void StorageManager::ResetStats() {
  for (auto& [name, file] : files_) file->stats().Reset();
}

uint64_t StorageManager::TotalPages() const {
  uint64_t total = 0;
  for (const auto& [name, file] : files_) total += file->num_pages();
  return total;
}

}  // namespace sigsetdb
