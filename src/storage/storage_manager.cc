#include "storage/storage_manager.h"

#include <cstdio>
#include <cstdlib>

#include "storage/disk_page_file.h"

namespace sigsetdb {

StatusOr<std::unique_ptr<PageFile>> StorageManager::MakeFile(
    const std::string& name) const {
  if (directory_.empty()) {
    return std::unique_ptr<PageFile>(
        std::make_unique<InMemoryPageFile>(name));
  }
  SIGSET_ASSIGN_OR_RETURN(
      std::unique_ptr<OnDiskPageFile> file,
      OnDiskPageFile::Open(name, directory_ + "/" + name + ".pages"));
  return std::unique_ptr<PageFile>(std::move(file));
}

StatusOr<PageFile*> StorageManager::Create(const std::string& name) {
  if (files_.count(name) != 0) {
    return Status::AlreadyExists("file exists: " + name);
  }
  SIGSET_ASSIGN_OR_RETURN(std::unique_ptr<PageFile> file, MakeFile(name));
  PageFile* raw = file.get();
  files_.emplace(name, std::move(file));
  return raw;
}

StatusOr<PageFile*> StorageManager::Open(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  return it->second.get();
}

PageFile* StorageManager::CreateOrOpen(const std::string& name) {
  auto it = files_.find(name);
  if (it != files_.end()) return it->second.get();
  StatusOr<std::unique_ptr<PageFile>> file = MakeFile(name);
  if (!file.ok()) {
    std::fprintf(stderr, "StorageManager::CreateOrOpen(%s): %s\n",
                 name.c_str(), file.status().ToString().c_str());
    std::abort();
  }
  PageFile* raw = file->get();
  files_.emplace(name, std::move(*file));
  return raw;
}

IoStats StorageManager::TotalStats() const {
  IoStats total;
  for (const auto& [name, file] : files_) total += file->stats();
  return total;
}

void StorageManager::ResetStats() {
  for (auto& [name, file] : files_) file->stats().Reset();
}

uint64_t StorageManager::TotalPages() const {
  uint64_t total = 0;
  for (const auto& [name, file] : files_) total += file->num_pages();
  return total;
}

}  // namespace sigsetdb
