// Page-access accounting: the instrument behind every reproduced experiment.
//
// The paper measures all costs in *page accesses*.  Each PageFile owns an
// IoStats, incremented on every logical read/write.  Benchmarks snapshot the
// counters around a query and compare the delta with the analytical model.
//
// Counters are atomic so that concurrent readers (parallel slice scans,
// sharded buffer-pool lookups) never lose an increment; relaxed ordering
// suffices because only the totals matter, never cross-counter ordering.
// The hot parallel paths avoid even this contention by counting into a
// worker-local IoStats and merging via operator+= on join — see
// PageFile::Read(id, out, io).

#ifndef SIGSET_STORAGE_IO_STATS_H_
#define SIGSET_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace sigsetdb {

// Read/write page-access counters for one file, plus three out-of-band
// counters that are NOT part of total(): pages_skipped counts page reads the
// slice-page skip index proved unnecessary (an access that never happened),
// cow_copies counts copy-on-write page duplications made by the snapshot
// layer (in-memory copies, not page I/O), and pages_hot counts slice-page
// reads served from the pinned hot tier's cache-resident copies (served
// from memory, never reaching the buffer pool) — tracked separately so
// measured-vs-model comparisons stay honest about where accesses went.
// Copyable (snapshots load the counters); copies are value snapshots, not
// live views.
struct IoStats {
  std::atomic<uint64_t> page_reads{0};
  std::atomic<uint64_t> page_writes{0};
  std::atomic<uint64_t> pages_skipped{0};
  std::atomic<uint64_t> cow_copies{0};
  std::atomic<uint64_t> pages_hot{0};

  IoStats() = default;
  IoStats(uint64_t reads, uint64_t writes, uint64_t skips = 0,
          uint64_t cows = 0, uint64_t hots = 0)
      : page_reads(reads),
        page_writes(writes),
        pages_skipped(skips),
        cow_copies(cows),
        pages_hot(hots) {}
  IoStats(const IoStats& other)
      : page_reads(other.page_reads.load(std::memory_order_relaxed)),
        page_writes(other.page_writes.load(std::memory_order_relaxed)),
        pages_skipped(other.pages_skipped.load(std::memory_order_relaxed)),
        cow_copies(other.cow_copies.load(std::memory_order_relaxed)),
        pages_hot(other.pages_hot.load(std::memory_order_relaxed)) {}
  IoStats& operator=(const IoStats& other) {
    page_reads.store(other.page_reads.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    page_writes.store(other.page_writes.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    pages_skipped.store(other.pages_skipped.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    cow_copies.store(other.cow_copies.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    pages_hot.store(other.pages_hot.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }

  void AddRead(uint64_t n = 1) {
    page_reads.fetch_add(n, std::memory_order_relaxed);
  }
  void AddWrite(uint64_t n = 1) {
    page_writes.fetch_add(n, std::memory_order_relaxed);
  }
  void AddSkip(uint64_t n = 1) {
    pages_skipped.fetch_add(n, std::memory_order_relaxed);
  }
  void AddCow(uint64_t n = 1) {
    cow_copies.fetch_add(n, std::memory_order_relaxed);
  }
  void AddHot(uint64_t n = 1) {
    pages_hot.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t reads() const { return page_reads.load(std::memory_order_relaxed); }
  uint64_t writes() const {
    return page_writes.load(std::memory_order_relaxed);
  }
  uint64_t skips() const {
    return pages_skipped.load(std::memory_order_relaxed);
  }
  uint64_t cows() const { return cow_copies.load(std::memory_order_relaxed); }
  uint64_t hots() const { return pages_hot.load(std::memory_order_relaxed); }
  uint64_t total() const { return reads() + writes(); }

  void Reset() {
    page_reads.store(0, std::memory_order_relaxed);
    page_writes.store(0, std::memory_order_relaxed);
    pages_skipped.store(0, std::memory_order_relaxed);
    cow_copies.store(0, std::memory_order_relaxed);
    pages_hot.store(0, std::memory_order_relaxed);
  }

  // Snapshot delta.  Saturates at zero: a delta taken across a Reset(), or
  // between snapshots captured while concurrent increments were in flight,
  // must never underflow into an astronomically large page count.
  IoStats operator-(const IoStats& other) const {
    const uint64_t r = reads(), w = writes(), s = skips(), c = cows(),
                   h = hots();
    const uint64_t or_ = other.reads(), ow = other.writes(),
                   os = other.skips(), oc = other.cows(), oh = other.hots();
    return IoStats{r >= or_ ? r - or_ : 0, w >= ow ? w - ow : 0,
                   s >= os ? s - os : 0, c >= oc ? c - oc : 0,
                   h >= oh ? h - oh : 0};
  }
  IoStats& operator+=(const IoStats& other) {
    page_reads.fetch_add(other.reads(), std::memory_order_relaxed);
    page_writes.fetch_add(other.writes(), std::memory_order_relaxed);
    pages_skipped.fetch_add(other.skips(), std::memory_order_relaxed);
    cow_copies.fetch_add(other.cows(), std::memory_order_relaxed);
    pages_hot.fetch_add(other.hots(), std::memory_order_relaxed);
    return *this;
  }
};

}  // namespace sigsetdb

#endif  // SIGSET_STORAGE_IO_STATS_H_
