// Page-access accounting: the instrument behind every reproduced experiment.
//
// The paper measures all costs in *page accesses*.  Each PageFile owns an
// IoStats, incremented on every logical read/write.  Benchmarks snapshot the
// counters around a query and compare the delta with the analytical model.

#ifndef SIGSET_STORAGE_IO_STATS_H_
#define SIGSET_STORAGE_IO_STATS_H_

#include <cstdint>

namespace sigsetdb {

// Read/write page-access counters for one file.
struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;

  uint64_t total() const { return page_reads + page_writes; }

  void Reset() {
    page_reads = 0;
    page_writes = 0;
  }

  IoStats operator-(const IoStats& other) const {
    return IoStats{page_reads - other.page_reads,
                   page_writes - other.page_writes};
  }
  IoStats& operator+=(const IoStats& other) {
    page_reads += other.page_reads;
    page_writes += other.page_writes;
    return *this;
  }
};

}  // namespace sigsetdb

#endif  // SIGSET_STORAGE_IO_STATS_H_
