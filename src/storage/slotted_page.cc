#include "storage/slotted_page.h"

#include <cstring>

namespace sigsetdb {

void SlottedPage::Init(Page* page) {
  page->Zero();
  page->WriteAt<uint16_t>(0, 0);                             // num_slots
  page->WriteAt<uint16_t>(2, static_cast<uint16_t>(kPageSize));  // heap start
}

size_t SlottedPage::FreeSpace() const {
  size_t dir_end = SlotDirOffset(num_slots());
  size_t heap_start = page_->ReadAt<uint16_t>(2);
  if (heap_start < dir_end + kSlotEntryBytes) return 0;
  return heap_start - dir_end - kSlotEntryBytes;
}

std::optional<uint16_t> SlottedPage::Insert(const uint8_t* data, uint16_t len) {
  uint16_t slots = num_slots();
  size_t dir_end = SlotDirOffset(slots);
  size_t heap_start = page_->ReadAt<uint16_t>(2);
  // New directory entry plus the record must fit between dir_end and heap.
  if (dir_end + kSlotEntryBytes + len > heap_start) return std::nullopt;
  uint16_t rec_off = static_cast<uint16_t>(heap_start - len);
  std::memcpy(page_->data() + rec_off, data, len);
  page_->WriteAt<uint16_t>(SlotDirOffset(slots), rec_off);
  page_->WriteAt<uint16_t>(SlotDirOffset(slots) + 2, len);
  page_->WriteAt<uint16_t>(0, static_cast<uint16_t>(slots + 1));
  page_->WriteAt<uint16_t>(2, rec_off);
  return slots;
}

const uint8_t* SlottedPage::Get(uint16_t slot, uint16_t* len) const {
  if (slot >= num_slots()) return nullptr;
  uint16_t off = page_->ReadAt<uint16_t>(SlotDirOffset(slot));
  uint16_t l = page_->ReadAt<uint16_t>(SlotDirOffset(slot) + 2);
  if (l == 0) return nullptr;  // tombstone
  if (off + static_cast<size_t>(l) > kPageSize) return nullptr;
  *len = l;
  return page_->data() + off;
}

uint8_t* SlottedPage::GetMutable(uint16_t slot, uint16_t* len) {
  return const_cast<uint8_t*>(
      static_cast<const SlottedPage*>(this)->Get(slot, len));
}

void SlottedPage::Delete(uint16_t slot) {
  if (slot >= num_slots()) return;
  page_->WriteAt<uint16_t>(SlotDirOffset(slot) + 2, 0);
}

bool SlottedPage::Resurrect(uint16_t slot, const uint8_t* data, uint16_t len) {
  if (slot >= num_slots() || len == 0) return false;
  if (page_->ReadAt<uint16_t>(SlotDirOffset(slot) + 2) != 0) return false;
  uint16_t off = page_->ReadAt<uint16_t>(SlotDirOffset(slot));
  if (off < SlotDirOffset(num_slots()) ||
      off + static_cast<size_t>(len) > kPageSize) {
    return false;
  }
  std::memcpy(page_->data() + off, data, len);
  page_->WriteAt<uint16_t>(SlotDirOffset(slot) + 2, len);
  return true;
}

bool SlottedPage::UpdateInPlace(uint16_t slot, const uint8_t* data,
                                uint16_t len) {
  uint16_t old_len = 0;
  uint8_t* dst = GetMutable(slot, &old_len);
  if (dst == nullptr || len > old_len) return false;
  std::memcpy(dst, data, len);
  page_->WriteAt<uint16_t>(SlotDirOffset(slot) + 2, len);
  return true;
}

}  // namespace sigsetdb
