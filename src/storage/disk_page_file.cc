#include "storage/disk_page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sigsetdb {

namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

}  // namespace

StatusOr<std::unique_ptr<OnDiskPageFile>> OnDiskPageFile::Open(
    const std::string& name, const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError(Errno("open", path));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError(Errno("lseek", path));
  }
  if (size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::Corruption("file size is not page aligned: " + path);
  }
  PageId pages = static_cast<PageId>(size / static_cast<off_t>(kPageSize));
  return std::unique_ptr<OnDiskPageFile>(
      new OnDiskPageFile(name, fd, pages));
}

OnDiskPageFile::~OnDiskPageFile() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<PageId> OnDiskPageFile::Allocate() {
  if (num_pages_ >= kInvalidPage) {
    return Status::OutOfRange("page file full: " + name_);
  }
  // Extend by one zeroed page.
  static const Page kZero{};
  off_t offset = static_cast<off_t>(num_pages_) * kPageSize;
  ssize_t written = ::pwrite(fd_, kZero.data(), kPageSize, offset);
  if (written != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(Errno("pwrite(allocate)", name_));
  }
  return num_pages_++;
}

Status OnDiskPageFile::Read(PageId id, Page* out, IoStats* io) {
  if (id >= num_pages_) {
    return Status::OutOfRange("read past end of " + name_ + " page " +
                              std::to_string(id));
  }
  ssize_t n = ::pread(fd_, out->data(), kPageSize,
                      static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(Errno("pread", name_));
  }
  io->AddRead();
  return Status::OK();
}

Status OnDiskPageFile::Write(PageId id, const Page& page, IoStats* io) {
  if (id >= num_pages_) {
    return Status::OutOfRange("write past end of " + name_ + " page " +
                              std::to_string(id));
  }
  ssize_t n = ::pwrite(fd_, page.data(), kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(Errno("pwrite", name_));
  }
  io->AddWrite();
  return Status::OK();
}

Status OnDiskPageFile::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IoError(Errno("fsync", name_));
  }
  return Status::OK();
}

}  // namespace sigsetdb
