#include "storage/buffer_pool.h"

namespace sigsetdb {

Status CachedPageFile::Read(PageId id, Page* out) {
  ++logical_stats_.page_reads;
  auto it = index_.find(id);
  if (it != index_.end()) {
    ++hits_;
    Touch(id);
    *out = lru_.front().page;
    return Status::OK();
  }
  ++misses_;
  SIGSET_RETURN_IF_ERROR(base_->Read(id, out));
  InsertFrame(id, *out);
  return Status::OK();
}

Status CachedPageFile::Write(PageId id, const Page& page) {
  ++logical_stats_.page_writes;
  // Write-through: the base file always sees the write.
  SIGSET_RETURN_IF_ERROR(base_->Write(id, page));
  auto it = index_.find(id);
  if (it != index_.end()) {
    it->second->page = page;
    Touch(id);
  } else {
    InsertFrame(id, page);
  }
  return Status::OK();
}

void CachedPageFile::Invalidate() {
  lru_.clear();
  index_.clear();
}

void CachedPageFile::Touch(PageId id) {
  auto it = index_.find(id);
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
}

void CachedPageFile::InsertFrame(PageId id, const Page& page) {
  if (capacity_ == 0) return;
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().id);
    lru_.pop_back();
  }
  lru_.push_front(Frame{id, page});
  index_[id] = lru_.begin();
}

}  // namespace sigsetdb
