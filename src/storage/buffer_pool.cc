#include "storage/buffer_pool.h"

namespace sigsetdb {

CachedPageFile::CachedPageFile(PageFile* base, size_t capacity,
                               size_t num_shards)
    : base_(base) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Split capacity evenly; the first capacity % N shards get the remainder.
    shard->capacity =
        capacity / num_shards + (s < capacity % num_shards ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

Status CachedPageFile::Read(PageId id, Page* out, IoStats* io) {
  io->AddRead();
  Shard& shard = ShardFor(id);
  // The shard lock covers the base read on a miss so that one page is
  // fetched by one thread at a time per shard; other shards proceed freely.
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    ++shard.hits;
    Touch(shard, id);
    *out = shard.lru.front().page;
    return Status::OK();
  }
  ++shard.misses;
  SIGSET_RETURN_IF_ERROR(base_->Read(id, out));
  InsertFrame(shard, id, *out);
  return Status::OK();
}

Status CachedPageFile::Write(PageId id, const Page& page, IoStats* io) {
  io->AddWrite();
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Write-through: the base file always sees the write.
  SIGSET_RETURN_IF_ERROR(base_->Write(id, page));
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    it->second->page = page;
    Touch(shard, id);
  } else {
    InsertFrame(shard, id, page);
  }
  return Status::OK();
}

uint64_t CachedPageFile::hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->hits;
  }
  return total;
}

uint64_t CachedPageFile::misses() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->misses;
  }
  return total;
}

uint64_t CachedPageFile::shard_hits(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->hits;
}

uint64_t CachedPageFile::shard_misses(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->misses;
}

void CachedPageFile::Invalidate() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

void CachedPageFile::Touch(Shard& shard, PageId id) {
  auto it = shard.index.find(id);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  it->second = shard.lru.begin();
}

void CachedPageFile::InsertFrame(Shard& shard, PageId id, const Page& page) {
  if (shard.capacity == 0) return;
  if (shard.lru.size() >= shard.capacity) {
    shard.index.erase(shard.lru.back().id);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Frame{id, page});
  shard.index[id] = shard.lru.begin();
}

uint64_t CachedPageFile::evictions() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->evictions;
  }
  return total;
}

uint64_t CachedPageFile::shard_evictions(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->evictions;
}

}  // namespace sigsetdb
