// FaultInjectingPageFile: a PageFile decorator that turns storage faults into
// deterministic, scriptable events.
//
// A FaultInjector holds the fault schedule and a single operation counter
// shared by every decorated file, so "crash at the Nth I/O" means the Nth
// Read/Write across the whole database, in execution order — exactly what the
// crash-at-every-index recovery harness (tests/crash_recovery_test.cc)
// enumerates.  Supported faults:
//
//   FailAt(n)          the n-th I/O (0-based) returns kIoError; later I/O is
//                      untouched (a transient fault).
//   CrashAt(n)         the n-th and every later I/O fails (a crash: the
//                      process loses the device).  With SetTornWrite(k), a
//                      Write at the crash point first persists only the
//                      first k bytes of the new image over the old page —
//                      a torn sector write.
//   FailProbability(p) each I/O fails independently with probability p from
//                      a seeded Rng (for concurrency soak tests).
//
// The decorator forwards `io` and stats() to the base file untouched, so with
// the injector disarmed it adds zero page-access deltas and every
// figure/table benchmark reproduces unchanged through an injected stack.

#ifndef SIGSET_STORAGE_FAULT_INJECTING_PAGE_FILE_H_
#define SIGSET_STORAGE_FAULT_INJECTING_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "storage/page_file.h"
#include "util/rng.h"
#include "util/status.h"

namespace sigsetdb {

// Shared fault schedule + operation counter.  Thread-safe; one injector is
// typically shared by all files of a StorageManager via SetInterceptor.
class FaultInjector {
 public:
  FaultInjector() = default;

  // Schedules a single-shot failure of operation `op` (0-based, counted
  // across all attached files in execution order).
  void FailAt(uint64_t op);

  // Schedules a crash: operation `op` and every operation after it fail.
  void CrashAt(uint64_t op);

  // With a crash scheduled, makes the crashing operation — if it is a Write —
  // persist only the first `prefix_bytes` of the new page image before
  // failing (models a torn write).  0 restores the default (nothing of the
  // crashing write is persisted).
  void SetTornWrite(size_t prefix_bytes);

  // Each operation fails independently with probability `p` (seeded Rng, so
  // a fixed execution order reproduces the same fault pattern).
  void FailProbability(double p, uint64_t seed);

  // Clears the schedule and the crashed flag; the op counter keeps running.
  void Disarm();

  // Operations observed so far.  Post-crash operations are rejected without
  // advancing the counter, so the count at crash time is stable.
  uint64_t ops() const;

  // True once a CrashAt schedule has triggered.
  bool crashed() const;

  // Called by FaultInjectingPageFile for each Read/Write.  Returns the fault
  // to inject (OK = proceed).  `*torn_prefix` is set to the torn-write prefix
  // length when a crashing write should persist a prefix first.
  Status OnOp(bool is_write, const std::string& file, PageId id,
              size_t* torn_prefix);

 private:
  mutable std::mutex mu_;
  uint64_t ops_ = 0;
  uint64_t fail_at_ = kNever;
  uint64_t crash_at_ = kNever;
  bool crashed_ = false;
  size_t torn_prefix_ = 0;
  double fail_probability_ = 0.0;
  Rng rng_{0};

  static constexpr uint64_t kNever = ~uint64_t{0};
};

// PageFile decorator applying a FaultInjector's schedule.  Owns or borrows
// the base file; stats() and the `io` redirect pass straight through.
class FaultInjectingPageFile : public PageFile {
 public:
  // Owning: wraps `base`, e.g. via StorageManager::SetInterceptor.
  FaultInjectingPageFile(std::unique_ptr<PageFile> base,
                         FaultInjector* injector)
      : owned_(std::move(base)), base_(owned_.get()), injector_(injector) {}

  // Non-owning: wraps a file whose lifetime the caller manages.
  FaultInjectingPageFile(PageFile* base, FaultInjector* injector)
      : base_(base), injector_(injector) {}

  using PageFile::Read;
  using PageFile::Write;

  const std::string& name() const override { return base_->name(); }
  PageId num_pages() const override { return base_->num_pages(); }

  StatusOr<PageId> Allocate() override;
  Status Read(PageId id, Page* out, IoStats* io) override;
  Status Write(PageId id, const Page& page, IoStats* io) override;
  // Syncs are scheduled operations too (counted like a write, page id
  // kInvalidPage), so "crash at the Nth I/O" enumerates fsync points — the
  // WAL's commit durability is exactly what the crash matrix must cover.
  Status Sync() override;

  IoStats& stats() override { return base_->stats(); }
  const IoStats& stats() const override { return base_->stats(); }

  PageFile* base() { return base_; }

 private:
  std::unique_ptr<PageFile> owned_;
  PageFile* base_;
  FaultInjector* injector_;
};

}  // namespace sigsetdb

#endif  // SIGSET_STORAGE_FAULT_INJECTING_PAGE_FILE_H_
