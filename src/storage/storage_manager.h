// StorageManager: a registry of named page files forming one "database".
//
// Each access facility asks the manager for its files (signature file, OID
// file, bit-slice store, index file, object file...).  The manager owns them
// and can aggregate or reset access counters across the whole database — the
// benches use this to isolate the cost of a single query.
//
// Two backends:
//   StorageManager()            — in-memory pages (default; the experiment
//                                 metrics are access counts, not time)
//   StorageManager(directory)   — each file persisted at
//                                 <directory>/<name>.pages via
//                                 OnDiskPageFile; reopening the same
//                                 directory recovers the data.

#ifndef SIGSET_STORAGE_STORAGE_MANAGER_H_
#define SIGSET_STORAGE_STORAGE_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "storage/page_file.h"

namespace sigsetdb {

// Hook applied to every newly built PageFile before registration; lets tests
// wrap files in decorators (e.g. FaultInjectingPageFile) without the facility
// code knowing.  Must return a non-null file.
using PageFileInterceptor =
    std::function<std::unique_ptr<PageFile>(std::unique_ptr<PageFile>)>;

// Owns a set of page files addressed by name.
class StorageManager {
 public:
  // In-memory backend.
  StorageManager() = default;

  // Disk backend rooted at `directory` (must already exist).
  explicit StorageManager(std::string directory)
      : directory_(std::move(directory)) {}

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  // Creates a new empty file (or, on the disk backend, opens the backing
  // file which may already hold pages).  Fails with kAlreadyExists when the
  // name is already registered in this manager.
  StatusOr<PageFile*> Create(const std::string& name);

  // Returns a file previously registered in this manager, or kNotFound.
  StatusOr<PageFile*> Open(const std::string& name) const;

  // Creates the file if absent, otherwise returns the existing one.
  // Aborts on backend I/O errors (use OpenOrCreate for checked operation).
  PageFile* CreateOrOpen(const std::string& name);

  // Checked CreateOrOpen: creates the file if absent, otherwise returns the
  // existing one; backend and failpoint errors propagate as a Status instead
  // of aborting.  The database update/recovery paths use this form so that
  // injected storage faults surface at the Database API.
  StatusOr<PageFile*> OpenOrCreate(const std::string& name);

  // Installs (or clears, with nullptr) the decorator hook applied to files
  // built after this call; already-registered files are unaffected.
  void SetInterceptor(PageFileInterceptor interceptor) {
    interceptor_ = std::move(interceptor);
  }

  // Sum of access counters over all files.
  IoStats TotalStats() const;

  // Visits every registered file in name order (counter export, audits).
  void ForEachFile(const std::function<void(const PageFile&)>& fn) const;

  // Zeroes every file's counters.
  void ResetStats();

  // Total allocated pages over all files (database size).
  uint64_t TotalPages() const;

  // True when backed by a directory.
  bool persistent() const { return !directory_.empty(); }

 private:
  // Builds the backend-appropriate PageFile.
  StatusOr<std::unique_ptr<PageFile>> MakeFile(const std::string& name) const;

  std::string directory_;
  PageFileInterceptor interceptor_;
  std::map<std::string, std::unique_ptr<PageFile>> files_;
};

}  // namespace sigsetdb

#endif  // SIGSET_STORAGE_STORAGE_MANAGER_H_
