// SlottedPage: the classic variable-length record page layout used by the
// object store and the NIX leaf pages.
//
// Layout (offsets in bytes):
//   [0..2)   uint16 num_slots
//   [2..4)   uint16 free_space_offset (start of the record heap, grows down)
//   [4..)    slot directory: num_slots entries of (uint16 offset, uint16 len)
//   ...      free space
//   [free_space_offset..kPageSize)  record heap (records grow downward)
//
// A slot with length 0 is a tombstone.  Records never span pages.

#ifndef SIGSET_STORAGE_SLOTTED_PAGE_H_
#define SIGSET_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <optional>

#include "storage/page.h"

namespace sigsetdb {

// A non-owning view manipulating `page` in slotted layout.  All methods are
// bounds-checked against kPageSize; Insert returns nullopt when the record
// (plus a directory entry) does not fit.
class SlottedPage {
 public:
  // Wraps an existing page without reformatting it.
  explicit SlottedPage(Page* page) : page_(page) {}

  // Formats `page` as an empty slotted page.
  static void Init(Page* page);

  uint16_t num_slots() const { return page_->ReadAt<uint16_t>(0); }

  // Bytes available for one more record (including its directory entry).
  size_t FreeSpace() const;

  // Appends a record; returns its slot number, or nullopt if full.
  std::optional<uint16_t> Insert(const uint8_t* data, uint16_t len);

  // Returns a pointer into the page for slot `slot`, or nullptr for
  // tombstones / out-of-range slots.  `*len` receives the record length.
  const uint8_t* Get(uint16_t slot, uint16_t* len) const;
  uint8_t* GetMutable(uint16_t slot, uint16_t* len);

  // Marks `slot` as deleted (space is not reclaimed; callers that need
  // compaction rebuild the page).
  void Delete(uint16_t slot);

  // Undoes a Delete: rewrites the tombstoned slot's record at its retained
  // heap offset (Delete zeroes only the length field, so the offset — and
  // the heap bytes, which are never reclaimed in place — survive).  `len`
  // must equal the original record length.  Returns false if the slot is
  // out of range, not a tombstone, or the retained offset cannot hold
  // `len` bytes.  WAL recovery uses this to restore the victims of an
  // aborted delete from their logged preimages.
  bool Resurrect(uint16_t slot, const uint8_t* data, uint16_t len);

  // Replaces the record in `slot` when the new record has length <= the old
  // one (in-place); returns false otherwise.
  bool UpdateInPlace(uint16_t slot, const uint8_t* data, uint16_t len);

 private:
  static constexpr size_t kHeaderBytes = 4;
  static constexpr size_t kSlotEntryBytes = 4;

  size_t SlotDirOffset(uint16_t slot) const {
    return kHeaderBytes + static_cast<size_t>(slot) * kSlotEntryBytes;
  }

  Page* page_;
};

}  // namespace sigsetdb

#endif  // SIGSET_STORAGE_SLOTTED_PAGE_H_
