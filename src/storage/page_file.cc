#include "storage/page_file.h"

namespace sigsetdb {

StatusOr<PageId> InMemoryPageFile::Allocate() {
  if (pages_.size() >= kInvalidPage) {
    return Status::OutOfRange("page file full: " + name_);
  }
  pages_.push_back(std::make_unique<Page>());
  return static_cast<PageId>(pages_.size() - 1);
}

Status InMemoryPageFile::Read(PageId id, Page* out, IoStats* io) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("read past end of " + name_ + " page " +
                              std::to_string(id));
  }
  *out = *pages_[id];
  io->AddRead();
  return Status::OK();
}

Status InMemoryPageFile::Write(PageId id, const Page& page, IoStats* io) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("write past end of " + name_ + " page " +
                              std::to_string(id));
  }
  *pages_[id] = page;
  io->AddWrite();
  return Status::OK();
}

}  // namespace sigsetdb
