// VersionedPageFile: copy-on-write page versions for epoch-based snapshots.
//
// SynchronizedSetIndex serializes every scan against every write because the
// facilities mutate pages in place.  This decorator removes the conflict at
// the storage layer: every Write() pushes a fresh immutable version node
// tagged with the *write epoch* (published epoch + 1) onto a lock-free
// per-page chain instead of touching the base file, so a reader pinned at
// epoch E can walk the chain to the newest node with epoch <= E — without a
// lock, concurrently with the writer — and always sees the page exactly as
// it was when E was published.
//
// Protocol (see DESIGN.md §14):
//   - Adoption: construction copies every existing base page into an
//     epoch-0 node (charged to IoStats::cow_copies), so readers never touch
//     base pages and no read can race a base write.  Allocate() installs a
//     zeroed node immediately for the same reason.
//   - Writer: the single writer (the SetIndex write lock) pushes new head
//     nodes at write epoch W = published + 1; a second write to the same
//     page within one mutation updates the W-node in place (readers cannot
//     be pinned at W until it is published, and in-flight readers skip past
//     W-nodes without copying them).
//   - Publish: the EpochManager advances the published epoch only after the
//     mutation completed, so readers never observe a partial mutation.
//   - Reclaim(oldest_pinned): for each page, keep the newest node K with
//     epoch <= oldest_pinned and free everything strictly older.  Any
//     reader is pinned at some E >= oldest_pinned and stops its walk at or
//     before K, so the freed tail is unreachable.  The head is never freed
//     and the reclaimer only edits K->next while the writer only edits the
//     head pointer, so the two never contend.
//   - FlushToBase(): called under the write lock (Checkpoint) to write
//     dirty head versions through to the base file for durability; flush
//     I/O is physical background work charged to a scratch IoStats so the
//     paper's logical access counts stay clean.
//
// The chains live in RAM: with snapshots enabled the wrapped file is
// effectively duplicated in memory (one node per page minimum).  That is the
// deliberate trade — Options::enable_snapshots is off by default, and the
// workloads that turn it on (concurrent scans during churn) are bounded by
// the same capacity the bit-sliced store pre-allocates.

#ifndef SIGSET_STORAGE_VERSIONED_PAGE_FILE_H_
#define SIGSET_STORAGE_VERSIONED_PAGE_FILE_H_

#include <array>
#include <atomic>
#include <limits>
#include <memory>
#include <string>

#include "storage/page_file.h"

namespace sigsetdb {

// Epoch value meaning "read the newest version".
inline constexpr uint64_t kLatestEpoch = std::numeric_limits<uint64_t>::max();

// Copy-on-write decorator over a PageFile.  Not owned: `base` and
// `published_epoch` (the EpochManager's published-epoch cell) must outlive
// the wrapper.  Thread contract: Allocate/Write/FlushToBase from the single
// writer; ReadAtEpoch from any thread; Reclaim from one reclaimer thread.
class VersionedPageFile : public PageFile {
 public:
  static StatusOr<std::unique_ptr<VersionedPageFile>> Wrap(
      PageFile* base, const std::atomic<uint64_t>* published_epoch);

  ~VersionedPageFile() override;

  using PageFile::Read;
  using PageFile::Write;

  const std::string& name() const override { return base_->name(); }
  PageId num_pages() const override {
    return num_pages_.load(std::memory_order_acquire);
  }

  StatusOr<PageId> Allocate() override;
  // Read() serves the newest version (the writer's own view).
  Status Read(PageId id, Page* out, IoStats* io) override;
  Status Write(PageId id, const Page& page, IoStats* io) override;
  Status Sync() override;

  // Stats are shared with the base file so StorageManager::TotalStats()
  // aggregation (and the per-query deltas built on it) keep working.
  IoStats& stats() override { return base_->stats(); }
  const IoStats& stats() const override { return base_->stats(); }

  // Lock-free snapshot read: copies the newest version with epoch <= at
  // into `*out` (kLatestEpoch = newest).  A page allocated after `at` was
  // published reads as zeroes.  Charges one page read to `*io`.
  Status ReadAtEpoch(PageId id, uint64_t at, Page* out, IoStats* io) const;

  // Writes every dirty head version through to the base file (writer lock
  // context).  Flush I/O goes to an internal scratch IoStats.
  Status FlushToBase();

  // Frees, per page, every version strictly older than the newest one with
  // epoch <= oldest_pinned.  Returns the number of nodes freed.
  uint64_t Reclaim(uint64_t oldest_pinned);

  // Version nodes currently resident / freed so far (tests, metrics).
  uint64_t resident_versions() const {
    return resident_.load(std::memory_order_relaxed);
  }
  uint64_t reclaimed_versions() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  PageFile* base() const { return base_; }

 private:
  struct VersionNode {
    uint64_t epoch = 0;
    std::atomic<VersionNode*> next{nullptr};
    Page page;
  };
  struct PageMeta {
    std::atomic<VersionNode*> head{nullptr};
    std::atomic<bool> dirty{false};
  };
  // Lock-free growable page directory: a fixed array of lazily allocated
  // fixed-size segments.  Only the writer installs segments (release);
  // readers load acquire.
  static constexpr size_t kSegmentBits = 10;
  static constexpr size_t kSegmentSize = size_t{1} << kSegmentBits;  // 1024
  static constexpr size_t kMaxSegments = 1u << 14;  // 16M pages max
  struct Segment {
    std::array<PageMeta, kSegmentSize> pages;
  };

  explicit VersionedPageFile(PageFile* base,
                             const std::atomic<uint64_t>* published_epoch)
      : base_(base), published_(published_epoch) {}

  uint64_t WriteEpoch() const {
    return published_->load(std::memory_order_relaxed) + 1;
  }

  // The PageMeta for `id`; creates the segment if `create` (writer only).
  PageMeta* Meta(PageId id, bool create);
  const PageMeta* Meta(PageId id) const;

  // Installs `page` as the version at the current write epoch (new head
  // node, or in-place update when the head already carries this epoch).
  void PushVersion(PageMeta* meta, const Page& page);

  PageFile* base_;
  const std::atomic<uint64_t>* published_;
  std::atomic<PageId> num_pages_{0};
  std::array<std::atomic<Segment*>, kMaxSegments> segments_{};
  std::atomic<uint64_t> resident_{0};
  std::atomic<uint64_t> reclaimed_{0};
  // Sink for adoption/flush I/O so logical per-file counts stay clean.
  IoStats scratch_;
};

// A fixed-epoch, read-only PageFile adapter over a VersionedPageFile.  Each
// Snapshot builds one per wrapped file; the view keeps its OWN IoStats so a
// snapshot query's page accounting is isolated from the live index and from
// other concurrent snapshots.
class EpochReadView : public PageFile {
 public:
  EpochReadView(const VersionedPageFile* file, uint64_t epoch)
      : file_(file), epoch_(epoch), name_(file->name() + "@snapshot") {}

  using PageFile::Read;

  const std::string& name() const override { return name_; }
  PageId num_pages() const override { return file_->num_pages(); }

  StatusOr<PageId> Allocate() override {
    return Status::FailedPrecondition("snapshot view is read-only");
  }
  Status Read(PageId id, Page* out, IoStats* io) override {
    return file_->ReadAtEpoch(id, epoch_, out, io);
  }
  Status Write(PageId, const Page&, IoStats*) override {
    return Status::FailedPrecondition("snapshot view is read-only");
  }

  IoStats& stats() override { return stats_; }
  const IoStats& stats() const override { return stats_; }

  uint64_t epoch() const { return epoch_; }

 private:
  const VersionedPageFile* file_;
  uint64_t epoch_;
  std::string name_;
  IoStats stats_;
};

}  // namespace sigsetdb

#endif  // SIGSET_STORAGE_VERSIONED_PAGE_FILE_H_
