// The unit of I/O: a fixed 4 KiB page, matching the paper's parameter
// P = 4096 bytes.  All access facilities are built on files of such pages,
// and every experiment metric is a count of page accesses.

#ifndef SIGSET_STORAGE_PAGE_H_
#define SIGSET_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace sigsetdb {

// Page size in bytes (paper Table 2: P = 4096).
inline constexpr size_t kPageSize = 4096;
// Bits per byte (paper Table 2: b = 8).
inline constexpr size_t kBitsPerByte = 8;
// Bits per page.
inline constexpr size_t kPageBits = kPageSize * kBitsPerByte;

// Page numbers within a file.  Valid pages are 0-based; kInvalidPage marks
// "no page" (e.g. an absent child pointer).
using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xffffffffu;

// A raw page buffer with typed little-endian accessors.  The storage layer
// moves Pages by value only at the I/O boundary; higher layers operate on
// references.  The buffer is 64-byte aligned so the signature kernels'
// uint64_t views of page data (slice combination, summary recomputation)
// are always naturally aligned, wherever the Page lives.
struct Page {
  alignas(64) std::array<uint8_t, kPageSize> bytes{};

  void Zero() { bytes.fill(0); }

  uint8_t* data() { return bytes.data(); }
  const uint8_t* data() const { return bytes.data(); }

  // Unaligned little-endian reads/writes at byte offset `off`.
  template <typename T>
  T ReadAt(size_t off) const {
    T v;
    std::memcpy(&v, bytes.data() + off, sizeof(T));
    return v;
  }
  template <typename T>
  void WriteAt(size_t off, T v) {
    std::memcpy(bytes.data() + off, &v, sizeof(T));
  }
};

}  // namespace sigsetdb

#endif  // SIGSET_STORAGE_PAGE_H_
