#include "storage/fault_injecting_page_file.h"

namespace sigsetdb {

void FaultInjector::FailAt(uint64_t op) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_ = op;
}

void FaultInjector::CrashAt(uint64_t op) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_ = op;
}

void FaultInjector::SetTornWrite(size_t prefix_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  torn_prefix_ = prefix_bytes;
}

void FaultInjector::FailProbability(double p, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_probability_ = p;
  rng_.Seed(seed);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_ = kNever;
  crash_at_ = kNever;
  crashed_ = false;
  torn_prefix_ = 0;
  fail_probability_ = 0.0;
}

uint64_t FaultInjector::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool FaultInjector::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

Status FaultInjector::OnOp(bool is_write, const std::string& file, PageId id,
                           size_t* torn_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  *torn_prefix = 0;
  // After a crash every operation fails without advancing the counter, so
  // the op index at crash time is a stable, reportable quantity.
  if (crashed_) {
    return Status::IoError("crashed: I/O halted (" + file + " page " +
                           std::to_string(id) + ")");
  }
  const uint64_t op = ops_++;
  if (op >= crash_at_) {
    crashed_ = true;
    if (is_write && torn_prefix_ > 0) *torn_prefix = torn_prefix_;
    return Status::IoError("injected crash at op " + std::to_string(op) +
                           " (" + (is_write ? "write" : "read") + " " + file +
                           " page " + std::to_string(id) + ")");
  }
  if (op == fail_at_) {
    fail_at_ = kNever;
    return Status::IoError("injected fault at op " + std::to_string(op) +
                           " (" + (is_write ? "write" : "read") + " " + file +
                           " page " + std::to_string(id) + ")");
  }
  if (fail_probability_ > 0.0 && rng_.NextDouble() < fail_probability_) {
    return Status::IoError("injected random fault at op " +
                           std::to_string(op) + " (" +
                           (is_write ? "write" : "read") + " " + file +
                           " page " + std::to_string(id) + ")");
  }
  return Status::OK();
}

StatusOr<PageId> FaultInjectingPageFile::Allocate() {
  // Allocation extends the file without touching page contents; the paper's
  // cost model does not charge it, so neither does the injector's op counter.
  // A crashed device still refuses to grow.
  if (injector_ != nullptr && injector_->crashed()) {
    return Status::IoError("crashed: I/O halted (" + name() + " allocate)");
  }
  return base_->Allocate();
}

Status FaultInjectingPageFile::Read(PageId id, Page* out, IoStats* io) {
  if (injector_ != nullptr) {
    size_t torn = 0;
    Status fault = injector_->OnOp(/*is_write=*/false, name(), id, &torn);
    if (!fault.ok()) return fault;
  }
  return base_->Read(id, out, io);
}

Status FaultInjectingPageFile::Write(PageId id, const Page& page,
                                     IoStats* io) {
  if (injector_ == nullptr) return base_->Write(id, page, io);
  size_t torn = 0;
  Status fault = injector_->OnOp(/*is_write=*/true, name(), id, &torn);
  if (fault.ok()) return base_->Write(id, page, io);
  if (torn > 0 && id < base_->num_pages()) {
    // Torn write: persist only a prefix of the new image over the old page.
    // The scratch IoStats keeps the injected partial I/O out of the logical
    // page-access accounting (the caller sees the op as a failure, not as
    // extra accesses).
    IoStats scratch;
    Page merged;
    if (base_->Read(id, &merged, &scratch).ok()) {
      const size_t n = torn < kPageSize ? torn : kPageSize;
      std::memcpy(merged.data(), page.data(), n);
      (void)base_->Write(id, merged, &scratch);
    }
  }
  return fault;
}

Status FaultInjectingPageFile::Sync() {
  if (injector_ != nullptr) {
    size_t torn = 0;
    Status fault =
        injector_->OnOp(/*is_write=*/true, name(), kInvalidPage, &torn);
    if (!fault.ok()) return fault;
  }
  return base_->Sync();
}

}  // namespace sigsetdb
