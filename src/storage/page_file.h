// PageFile: a counted, page-granular file abstraction.
//
// The cost model of the paper charges one unit per page read or written, with
// no caching (it models cold random I/O on a 1993 disk).  InMemoryPageFile
// therefore keeps data in RAM but *counts every logical access*; the counts —
// not wall-clock time — are what the benchmarks compare against the model.
// CachedPageFile (see buffer_pool.h) layers an LRU cache on top for the
// buffer-pool ablation study.

#ifndef SIGSET_STORAGE_PAGE_FILE_H_
#define SIGSET_STORAGE_PAGE_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/io_stats.h"
#include "storage/page.h"
#include "util/status.h"

namespace sigsetdb {

// Abstract page-granular file.  Implementations must count one page access
// per Read/Write call — into `*io` when the caller supplies one, into the
// file's own stats() otherwise.  The redirect exists for parallel query
// workers: each counts into a thread-local IoStats and the owner merges the
// locals into stats() on join, keeping the paper's logical page-access
// totals exact without contending on shared counters.
class PageFile {
 public:
  virtual ~PageFile() = default;

  // File name (for diagnostics and the storage-manager registry).
  virtual const std::string& name() const = 0;

  // Number of allocated pages.
  virtual PageId num_pages() const = 0;

  // Appends a zeroed page; returns its id.
  virtual StatusOr<PageId> Allocate() = 0;

  // Reads page `id` into `*out`, charging one page read to `*io`.
  virtual Status Read(PageId id, Page* out, IoStats* io) = 0;

  // Writes `page` at `id`, charging one page write to `*io`.
  virtual Status Write(PageId id, const Page& page, IoStats* io) = 0;

  // Convenience forms charging this file's own counters.
  Status Read(PageId id, Page* out) { return Read(id, out, &stats()); }
  Status Write(PageId id, const Page& page) {
    return Write(id, page, &stats());
  }

  // Flushes buffered writes to stable storage.  The in-memory backend is
  // trivially "stable" (a no-op); OnDiskPageFile fsyncs; the fault-injecting
  // decorator counts the sync as an operation so crash schedules enumerate
  // fsync points.  The write-ahead log's commit point is a Sync.
  virtual Status Sync() { return Status::OK(); }

  // Access counters (mutable so callers can Reset between measurements).
  virtual IoStats& stats() = 0;
  virtual const IoStats& stats() const = 0;
};

// Heap-backed PageFile.  Deterministic and fast; all experiment I/O costs are
// taken from the access counters, so a RAM backing store does not distort
// any reproduced metric.  Concurrent Reads are safe; Allocate/Write must not
// race with other accesses to the same page (query execution is read-only).
class InMemoryPageFile : public PageFile {
 public:
  explicit InMemoryPageFile(std::string name) : name_(std::move(name)) {}

  using PageFile::Read;
  using PageFile::Write;

  const std::string& name() const override { return name_; }
  PageId num_pages() const override {
    return static_cast<PageId>(pages_.size());
  }

  StatusOr<PageId> Allocate() override;
  Status Read(PageId id, Page* out, IoStats* io) override;
  Status Write(PageId id, const Page& page, IoStats* io) override;

  IoStats& stats() override { return stats_; }
  const IoStats& stats() const override { return stats_; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Page>> pages_;
  IoStats stats_;
};

}  // namespace sigsetdb

#endif  // SIGSET_STORAGE_PAGE_FILE_H_
