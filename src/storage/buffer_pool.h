// CachedPageFile: a sharded LRU buffer pool layered over a PageFile.
//
// The paper's cost model deliberately assumes *no* caching (every logical
// page access costs one I/O).  This decorator exists for the buffer-pool
// ablation bench: it shows how far a modest cache moves the measured access
// counts away from the model's predictions.  Cache hits do not propagate to
// the underlying file's counters; the decorator's own stats() counts logical
// accesses, while the wrapped file's stats() counts misses (i.e. "physical"
// accesses).
//
// The cache is safe for concurrent readers: frames are partitioned into N
// shards by PageId % N, each shard owning its own LRU list, hash index,
// hit/miss counters, and mutex, so parallel slice scans touching disjoint
// pages rarely contend.  Logical stats are atomic and counted outside the
// shard locks; hence sum over shards of (hits + misses) == logical reads
// and writes at any quiescent point — the invariant the ablation relies on.
// The default of one shard preserves the exact global-LRU eviction order of
// the original single-threaded pool.

#ifndef SIGSET_STORAGE_BUFFER_POOL_H_
#define SIGSET_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/page_file.h"

namespace sigsetdb {

// Write-through LRU cache over `base` holding up to `capacity` pages,
// partitioned into `num_shards` independent LRU shards.
class CachedPageFile : public PageFile {
 public:
  // Does not take ownership of `base`, which must outlive this object.
  // `capacity` is split as evenly as possible across the shards.
  CachedPageFile(PageFile* base, size_t capacity, size_t num_shards = 1);

  using PageFile::Read;
  using PageFile::Write;

  const std::string& name() const override { return base_->name(); }
  PageId num_pages() const override { return base_->num_pages(); }

  StatusOr<PageId> Allocate() override { return base_->Allocate(); }

  Status Read(PageId id, Page* out, IoStats* io) override;
  Status Write(PageId id, const Page& page, IoStats* io) override;

  // Logical accesses issued against this decorator.
  IoStats& stats() override { return logical_stats_; }
  const IoStats& stats() const override { return logical_stats_; }

  // Physical (miss) accesses are the base file's counters.
  const IoStats& physical_stats() const { return base_->stats(); }

  // Aggregates over all shards.
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

  // Per-shard counters (for the shard-consistency invariant checks).
  size_t num_shards() const { return shards_.size(); }
  uint64_t shard_hits(size_t shard) const;
  uint64_t shard_misses(size_t shard) const;
  uint64_t shard_evictions(size_t shard) const;

  // Drops all cached pages (counters are kept).
  void Invalidate();

 private:
  // LRU list front = most recent.  Map values point into the list.
  struct Frame {
    PageId id;
    Page page;
  };
  struct Shard {
    mutable std::mutex mu;
    size_t capacity = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    std::list<Frame> lru;
    std::unordered_map<PageId, std::list<Frame>::iterator> index;
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }

  // Both require `shard.mu` held.
  static void Touch(Shard& shard, PageId id);
  static void InsertFrame(Shard& shard, PageId id, const Page& page);

  PageFile* base_;
  IoStats logical_stats_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sigsetdb

#endif  // SIGSET_STORAGE_BUFFER_POOL_H_
