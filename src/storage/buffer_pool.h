// CachedPageFile: an LRU buffer pool layered over a PageFile.
//
// The paper's cost model deliberately assumes *no* caching (every logical
// page access costs one I/O).  This decorator exists for the buffer-pool
// ablation bench: it shows how far a modest cache moves the measured access
// counts away from the model's predictions.  Cache hits do not propagate to
// the underlying file's counters; the decorator's own stats() counts logical
// accesses, while the wrapped file's stats() counts misses (i.e. "physical"
// accesses).

#ifndef SIGSET_STORAGE_BUFFER_POOL_H_
#define SIGSET_STORAGE_BUFFER_POOL_H_

#include <list>
#include <unordered_map>

#include "storage/page_file.h"

namespace sigsetdb {

// Write-through LRU cache over `base` holding up to `capacity` pages.
class CachedPageFile : public PageFile {
 public:
  // Does not take ownership of `base`, which must outlive this object.
  CachedPageFile(PageFile* base, size_t capacity)
      : base_(base), capacity_(capacity) {}

  const std::string& name() const override { return base_->name(); }
  PageId num_pages() const override { return base_->num_pages(); }

  StatusOr<PageId> Allocate() override { return base_->Allocate(); }

  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;

  // Logical accesses issued against this decorator.
  IoStats& stats() override { return logical_stats_; }
  const IoStats& stats() const override { return logical_stats_; }

  // Physical (miss) accesses are the base file's counters.
  const IoStats& physical_stats() const { return base_->stats(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  // Drops all cached pages (counters are kept).
  void Invalidate();

 private:
  void Touch(PageId id);
  void InsertFrame(PageId id, const Page& page);

  PageFile* base_;
  size_t capacity_;
  IoStats logical_stats_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;

  // LRU list front = most recent.  Map values point into the list.
  struct Frame {
    PageId id;
    Page page;
  };
  std::list<Frame> lru_;
  std::unordered_map<PageId, std::list<Frame>::iterator> index_;
};

}  // namespace sigsetdb

#endif  // SIGSET_STORAGE_BUFFER_POOL_H_
