#include "storage/versioned_page_file.h"

#include <cstring>

#include "util/failpoint.h"

namespace sigsetdb {

StatusOr<std::unique_ptr<VersionedPageFile>> VersionedPageFile::Wrap(
    PageFile* base, const std::atomic<uint64_t>* published_epoch) {
  std::unique_ptr<VersionedPageFile> file(
      new VersionedPageFile(base, published_epoch));
  // Adoption: every base page gets an epoch-0 version node, so readers walk
  // chains exclusively — a reader can never touch base-file bytes that a
  // later FlushToBase would overwrite.
  const PageId existing = base->num_pages();
  if (existing > kMaxSegments * kSegmentSize) {
    return Status::InvalidArgument("file too large for the version directory");
  }
  Page scratch_page;
  for (PageId id = 0; id < existing; ++id) {
    SIGSET_RETURN_IF_ERROR(base->Read(id, &scratch_page, &file->scratch_));
    PageMeta* meta = file->Meta(id, /*create=*/true);
    auto* node = new VersionNode();
    node->epoch = 0;
    std::memcpy(node->page.data(), scratch_page.data(), kPageSize);
    meta->head.store(node, std::memory_order_release);
    file->resident_.fetch_add(1, std::memory_order_relaxed);
  }
  base->stats().AddCow(existing);
  file->num_pages_.store(existing, std::memory_order_release);
  return file;
}

VersionedPageFile::~VersionedPageFile() {
  for (size_t s = 0; s < kMaxSegments; ++s) {
    Segment* seg = segments_[s].load(std::memory_order_acquire);
    if (seg == nullptr) continue;
    for (PageMeta& meta : seg->pages) {
      VersionNode* node = meta.head.load(std::memory_order_acquire);
      while (node != nullptr) {
        VersionNode* next = node->next.load(std::memory_order_acquire);
        delete node;
        node = next;
      }
    }
    delete seg;
  }
}

VersionedPageFile::PageMeta* VersionedPageFile::Meta(PageId id, bool create) {
  const size_t seg_idx = id >> kSegmentBits;
  if (seg_idx >= kMaxSegments) return nullptr;
  Segment* seg = segments_[seg_idx].load(std::memory_order_acquire);
  if (seg == nullptr) {
    if (!create) return nullptr;
    seg = new Segment();
    segments_[seg_idx].store(seg, std::memory_order_release);
  }
  return &seg->pages[id & (kSegmentSize - 1)];
}

const VersionedPageFile::PageMeta* VersionedPageFile::Meta(PageId id) const {
  const size_t seg_idx = id >> kSegmentBits;
  if (seg_idx >= kMaxSegments) return nullptr;
  Segment* seg = segments_[seg_idx].load(std::memory_order_acquire);
  if (seg == nullptr) return nullptr;
  return &seg->pages[id & (kSegmentSize - 1)];
}

void VersionedPageFile::PushVersion(PageMeta* meta, const Page& page) {
  const uint64_t we = WriteEpoch();
  VersionNode* head = meta->head.load(std::memory_order_relaxed);
  if (head != nullptr && head->epoch == we) {
    // Second write to this page within the same (unpublished) mutation: no
    // reader can be pinned at `we` yet, and pinned readers skip this node
    // by epoch without copying it, so updating in place is race-free and
    // keeps batches from growing the chain by one node per touch.
    std::memcpy(head->page.data(), page.data(), kPageSize);
    return;
  }
  auto* node = new VersionNode();
  node->epoch = we;
  std::memcpy(node->page.data(), page.data(), kPageSize);
  node->next.store(head, std::memory_order_relaxed);
  meta->head.store(node, std::memory_order_release);
  resident_.fetch_add(1, std::memory_order_relaxed);
  base_->stats().AddCow(1);
}

StatusOr<PageId> VersionedPageFile::Allocate() {
  SIGSET_FAILPOINT("versioned.allocate");
  SIGSET_ASSIGN_OR_RETURN(PageId id, base_->Allocate());
  PageMeta* meta = Meta(id, /*create=*/true);
  if (meta == nullptr) {
    return Status::InvalidArgument("page id exceeds the version directory");
  }
  // Install a zeroed node tagged with the write epoch before exposing the
  // page: readers pinned at earlier epochs fall through to the zero-page
  // default, matching "this page did not exist yet".
  auto* node = new VersionNode();
  node->epoch = WriteEpoch();
  node->page.Zero();
  node->next.store(nullptr, std::memory_order_relaxed);
  meta->head.store(node, std::memory_order_release);
  resident_.fetch_add(1, std::memory_order_relaxed);
  num_pages_.store(id + 1, std::memory_order_release);
  return id;
}

Status VersionedPageFile::Read(PageId id, Page* out, IoStats* io) {
  return ReadAtEpoch(id, kLatestEpoch, out, io);
}

Status VersionedPageFile::ReadAtEpoch(PageId id, uint64_t at, Page* out,
                                      IoStats* io) const {
  SIGSET_FAILPOINT("versioned.read");
  if (id >= num_pages()) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " out of range in " + name());
  }
  if (io != nullptr) io->AddRead(1);
  const PageMeta* meta = Meta(id);
  const VersionNode* node =
      meta != nullptr ? meta->head.load(std::memory_order_acquire) : nullptr;
  while (node != nullptr && node->epoch > at) {
    node = node->next.load(std::memory_order_acquire);
  }
  if (node == nullptr) {
    // Allocated after `at` was published (or never adopted): the page did
    // not exist at the pinned epoch — serve zeroes, the allocate-time image.
    out->Zero();
    return Status::OK();
  }
  std::memcpy(out->data(), node->page.data(), kPageSize);
  return Status::OK();
}

Status VersionedPageFile::Write(PageId id, const Page& page, IoStats* io) {
  SIGSET_FAILPOINT("versioned.write");
  if (id >= num_pages()) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " out of range in " + name());
  }
  PageMeta* meta = Meta(id, /*create=*/true);
  if (meta == nullptr) {
    return Status::InvalidArgument("page id exceeds the version directory");
  }
  PushVersion(meta, page);
  meta->dirty.store(true, std::memory_order_relaxed);
  if (io != nullptr) io->AddWrite(1);
  return Status::OK();
}

Status VersionedPageFile::FlushToBase() {
  SIGSET_FAILPOINT("versioned.flush");
  const PageId n = num_pages();
  for (PageId id = 0; id < n; ++id) {
    PageMeta* meta = Meta(id, /*create=*/false);
    if (meta == nullptr || !meta->dirty.load(std::memory_order_relaxed)) {
      continue;
    }
    VersionNode* head = meta->head.load(std::memory_order_relaxed);
    if (head == nullptr) continue;
    // Base may be shorter than the directory when the crashed base Allocate
    // path raced a failpoint; allocate up to `id` before writing through.
    while (base_->num_pages() <= id) {
      SIGSET_RETURN_IF_ERROR(base_->Allocate().status());
    }
    SIGSET_RETURN_IF_ERROR(base_->Write(id, head->page, &scratch_));
    meta->dirty.store(false, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status VersionedPageFile::Sync() {
  SIGSET_RETURN_IF_ERROR(FlushToBase());
  return base_->Sync();
}

uint64_t VersionedPageFile::Reclaim(uint64_t oldest_pinned) {
  uint64_t freed = 0;
  const PageId n = num_pages();
  for (PageId id = 0; id < n; ++id) {
    PageMeta* meta = Meta(id, /*create=*/false);
    if (meta == nullptr) continue;
    VersionNode* node = meta->head.load(std::memory_order_acquire);
    // Find K: the newest node with epoch <= oldest_pinned.  Every reader is
    // pinned at some E >= oldest_pinned and stops its chain walk at or
    // before K, so nodes strictly after K are unreachable to all readers.
    while (node != nullptr && node->epoch > oldest_pinned) {
      node = node->next.load(std::memory_order_acquire);
    }
    if (node == nullptr) continue;
    VersionNode* stale = node->next.exchange(nullptr,
                                             std::memory_order_acq_rel);
    while (stale != nullptr) {
      VersionNode* next = stale->next.load(std::memory_order_relaxed);
      delete stale;
      stale = next;
      ++freed;
    }
  }
  if (freed > 0) {
    resident_.fetch_sub(freed, std::memory_order_relaxed);
    reclaimed_.fetch_add(freed, std::memory_order_relaxed);
  }
  return freed;
}

}  // namespace sigsetdb
