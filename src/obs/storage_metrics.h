// Export of storage-layer counters into a MetricsRegistry.
//
// PageFiles and buffer pools keep their own counters (IoStats, per-shard
// hit/miss/eviction counts); this bridge snapshots them into the registry's
// naming conventions so that metrics dumps, the JSON exporter, and the
// advisor's live feedback all read one source:
//
//   io.<file>.reads / io.<file>.writes         per registered file
//   buffer.hits / buffer.misses / buffer.evictions   totals over all cached
//                                                    files
//   buffer.<file>.hits|misses|evictions        per cached file
//   buffer.<file>.shard<i>.hits|misses|evictions    per shard
//
// Registry counters are monotonic: each export raises them to the live
// value (never lowers), so repeated exports are idempotent and deltas
// between exports are meaningful.  The bridge lives in obs (not storage) to
// keep the dependency arrow pointing one way: obs -> storage.

#ifndef SIGSET_OBS_STORAGE_METRICS_H_
#define SIGSET_OBS_STORAGE_METRICS_H_

#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"

namespace sigsetdb {

// Snapshots one cached file's counters under `prefix` (e.g. "buffer.t.sig").
void ExportBufferPoolMetrics(const CachedPageFile& pool,
                             const std::string& prefix,
                             MetricsRegistry* registry);

// Snapshots every file registered in `storage`: per-file IoStats, and — for
// files wrapped in a CachedPageFile (e.g. via the manager's interceptor) —
// buffer-pool counters per file, per shard, and in total.
void ExportStorageMetrics(const StorageManager& storage,
                          MetricsRegistry* registry);

}  // namespace sigsetdb

#endif  // SIGSET_OBS_STORAGE_METRICS_H_
