// EXPLAIN rendering: a QueryTrace as a plan-style tree with measured and
// model-predicted page accesses side by side.
//
//   EXPLAIN superset Dq=2 — plan: bssf smart(k=2)
//   stage           pages  predicted  reads  writes  wall_ms  cand  fdrops
//   ------------------------------------------------------------------
//   candidates          3        3.0      3       0     0.04    14       -
//     slice scan        2          -      2       0        -     -       -
//     oid lookup        1          -      1       0        -     -       -
//   resolve            14       15.2     14       0     0.21    14      11
//   total              17       18.2     17       0     0.25     -       -
//
// The text form goes through the same TablePrinter as the reproduced paper
// figures; the JSON form is QueryTrace::ToJson().

#ifndef SIGSET_OBS_EXPLAIN_H_
#define SIGSET_OBS_EXPLAIN_H_

#include <string>

#include "obs/trace.h"

namespace sigsetdb {

// Renders the trace as the plan-style text tree shown above.
std::string RenderExplain(const QueryTrace& trace);

}  // namespace sigsetdb

#endif  // SIGSET_OBS_EXPLAIN_H_
