#include "obs/explain.h"

#include <sstream>

#include "util/table_printer.h"

namespace sigsetdb {

namespace {

constexpr const char* kNone = "-";

std::string CountCell(int64_t v) {
  return v < 0 ? kNone : TablePrinter::Int(v);
}

void AddSpanRow(TablePrinter* table, const TraceSpan& span, int depth) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  table->AddRow({indent + span.name,
                 TablePrinter::Int(static_cast<int64_t>(span.pages())),
                 span.predicted_pages < 0.0
                     ? kNone
                     : TablePrinter::Num(span.predicted_pages),
                 TablePrinter::Int(static_cast<int64_t>(span.page_reads)),
                 TablePrinter::Int(static_cast<int64_t>(span.page_writes)),
                 span.pages_skipped > 0
                     ? TablePrinter::Int(
                           static_cast<int64_t>(span.pages_skipped))
                     : kNone,
                 span.pages_cow > 0
                     ? TablePrinter::Int(static_cast<int64_t>(span.pages_cow))
                     : kNone,
                 span.pages_hot > 0
                     ? TablePrinter::Int(static_cast<int64_t>(span.pages_hot))
                     : kNone,
                 span.wall_ms > 0.0 ? TablePrinter::Num(span.wall_ms, 3)
                                    : kNone,
                 CountCell(span.candidates), CountCell(span.false_drops)});
  for (const TraceSpan& child : span.children) {
    AddSpanRow(table, child, depth + 1);
  }
}

}  // namespace

std::string RenderExplain(const QueryTrace& trace) {
  std::ostringstream os;
  os << "EXPLAIN " << trace.kind << " Dq=" << trace.dq
     << " — plan: " << trace.plan << "\n";
  TablePrinter table({"stage", "pages", "predicted", "reads", "writes",
                      "skipped", "cow", "hot", "wall_ms", "cand", "fdrops"});
  for (const TraceSpan& span : trace.stages()) {
    AddSpanRow(&table, span, 0);
  }
  TraceSpan total;
  total.name = "total";
  total.page_reads = trace.TotalReads();
  total.page_writes = trace.TotalWrites();
  total.pages_skipped = trace.TotalSkipped();
  total.pages_cow = trace.TotalCow();
  total.pages_hot = trace.TotalHot();
  total.wall_ms = trace.TotalWallMs();
  total.predicted_pages = trace.predicted_total;
  AddSpanRow(&table, total, 0);
  table.Print(os);
  return os.str();
}

}  // namespace sigsetdb
